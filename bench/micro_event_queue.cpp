// Microbenchmark of the event-kernel overhaul: the slab/timing-wheel
// EventQueue vs. the seed repo's std::priority_queue + std::function
// kernel (kept verbatim in event_kernel_compare.h), on three workload
// shapes. The acceptance bar for the overhaul is >= 1.3x events/sec on
// the steady-state churn scenario (the one resembling live simulation
// traffic); the measured ratio is also recorded into BENCH_sweep.json by
// bench/fig9_performance.
//
//   $ ./build/bench/micro_event_queue
#include <cstdio>
#include <cstdlib>

#include "common/atomic_file.h"
#include "common/json.h"
#include "event_kernel_compare.h"

using namespace eecc;
using namespace eecc::bench;

namespace {

void report(const char* scenario, double legacy, double wheel) {
  std::printf("%-22s %14.2f %14.2f %9.2fx\n", scenario, legacy / 1e6,
              wheel / 1e6, wheel / legacy);
}

}  // namespace

int main() {
  constexpr std::uint64_t kChurnEvents = 2'000'000;
  constexpr std::uint64_t kBurstEvents = 2'000'000;

  std::printf("event-kernel comparison (events/sec, higher is better)\n\n");
  std::printf("%-22s %14s %14s %9s\n", "scenario", "legacy (M/s)",
              "wheel (M/s)", "speedup");

  // Steady-state churn: Message-sized captures, short pseudo-random
  // delays, 64 concurrent chains, ~1% far-future events.
  runChurn<LegacyEventQueue>(kChurnEvents / 4, 64);
  const double churnLegacy = eventsPerSec(
      [&] { return runChurn<LegacyEventQueue>(kChurnEvents, 64); },
      kChurnEvents);
  runChurn<EventQueue>(kChurnEvents / 4, 64);
  const double churnWheel = eventsPerSec(
      [&] { return runChurn<EventQueue>(kChurnEvents, 64); }, kChurnEvents);
  report("steady-state churn", churnLegacy, churnWheel);

  // Burst: tiny captures (fit any SBO), schedule 1000 then drain — the
  // legacy kernel's best case (no allocation, shallow heap).
  runBurst<LegacyEventQueue>(kBurstEvents / 4);
  const double burstLegacy = eventsPerSec(
      [&] { return runBurst<LegacyEventQueue>(kBurstEvents); },
      kBurstEvents);
  runBurst<EventQueue>(kBurstEvents / 4);
  const double burstWheel = eventsPerSec(
      [&] { return runBurst<EventQueue>(kBurstEvents); }, kBurstEvents);
  report("burst schedule+drain", burstLegacy, burstWheel);

  // Single chain: latency-bound pointer chasing, no queue depth at all.
  const double soloLegacy = eventsPerSec(
      [&] { return runChurn<LegacyEventQueue>(kChurnEvents / 2, 1); },
      kChurnEvents / 2);
  const double soloWheel = eventsPerSec(
      [&] { return runChurn<EventQueue>(kChurnEvents / 2, 1); },
      kChurnEvents / 2);
  report("single chain", soloLegacy, soloWheel);

  const double speedup = churnWheel / churnLegacy;
  std::printf("\nheadline (steady-state churn): %.2fx %s 1.3x target\n",
              speedup, speedup >= 1.3 ? ">=" : "< BELOW");

  // Optional JSON record for the perf-smoke CI gate (see
  // scripts/check_perf.py and bench/perf_baselines.json).
  if (const char* jsonPath = std::getenv("EECC_EVENT_QUEUE_JSON")) {
    AtomicFile out(jsonPath);
    if (!out) return 1;
    JsonWriter w(out.get());
    w.beginObject();
    w.field("bench", "micro_event_queue");
    w.field("event_queue_churn_events_per_sec", churnWheel);
    w.field("event_queue_burst_events_per_sec", burstWheel);
    w.field("event_queue_solo_events_per_sec", soloWheel);
    w.field("event_queue_churn_speedup", speedup);
    w.endObject();
    w.finish();
    if (!out.commit()) return 1;
    std::printf("wrote %s\n", jsonPath);
  }
  return speedup >= 1.3 ? 0 : 1;
}
