// Microbenchmark guard for the conformance subsystem: the monitors must be
// zero-cost when disabled. With no checker attached the protocol hot path
// pays exactly one untaken, [[unlikely]]-hinted branch per access — the
// only difference from the pre-conformance hot path — so we bound the
// cost from above: even the *attached* null-hook configuration (virtual
// dispatch to empty bodies on every access and write commit, no monitor
// work) must stay within 3% of the detached run. If dispatch itself is in
// the noise, the lone untaken branch of the disabled path certainly is.
//
//   $ ./build/bench/micro_check_overhead        (EECC_QUICK=1 for a smoke run)
//
// Exits nonzero when attached-null drops below 0.97x detached.
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "check/hooks.h"
#include "check/monitor.h"
#include "core/cmp_system.h"

using namespace eecc;
using namespace eecc::bench;

namespace {

/// Hook dispatch with no observation behind it: the upper bound on what
/// the disabled fast path could possibly cost.
struct NullHooks final : CheckHooks {
  void onAccessIssued(NodeId, Addr, AccessType, Tick) override {}
  void onAccessDone(NodeId, Addr, AccessType, Tick, std::uint64_t,
                    bool) override {}
  void onWriteCommitted(Addr, std::uint64_t, Tick) override {}
};

enum class Mode { Detached, NullHooks, FullMonitors };

CmpConfig benchChip() {
  CmpConfig cfg;
  cfg.meshWidth = 4;
  cfg.meshHeight = 4;
  cfg.numAreas = 4;
  cfg.l1 = CacheGeometry{128, 4, 1, 2};
  cfg.l2 = CacheGeometry{512, 8, 2, 3};
  cfg.l1cEntries = 128;
  cfg.l2cEntries = 128;
  cfg.dirCacheEntries = 128;
  cfg.numMemControllers = 4;
  return cfg;
}

double eventsPerSec(Mode mode, Tick cycles) {
  const CmpConfig cfg = benchChip();
  CmpSystem system(cfg, ProtocolKind::DiCoProviders,
                   VmLayout::matched(cfg, 4),
                   profiles::uniform4(profiles::apache()), /*seed=*/7);
  NullHooks nullHooks;
  MonitorSet monitors;
  if (mode == Mode::NullHooks) {
    // Raw hook attach, no sweep chunking: isolates per-access dispatch.
    system.protocol().setCheckHooks(&nullHooks);
  } else if (mode == Mode::FullMonitors) {
    system.attachChecker(&monitors, /*sweepEvery=*/50'000);
  }
  const WallTimer timer;
  system.run(cycles);
  const double secs = timer.seconds();
  return secs > 0.0
             ? static_cast<double>(system.events().executedEvents()) / secs
             : 0.0;
}

/// Best-of-3 to damp scheduler noise (the gate compares two same-process
/// measurements, so systematic machine speed cancels out).
double bestOf3(Mode mode, Tick cycles) {
  double best = 0.0;
  for (int i = 0; i < 3; ++i) {
    const double r = eventsPerSec(mode, cycles);
    if (r > best) best = r;
  }
  return best;
}

}  // namespace

int main() {
  const Tick cycles = quickMode() ? 200'000 : 2'000'000;
  constexpr double kGate = 0.97;

  eventsPerSec(Mode::Detached, cycles / 4);  // warm the allocator/caches

  const double detached = bestOf3(Mode::Detached, cycles);
  const double nullAttached = bestOf3(Mode::NullHooks, cycles);
  const double fullMonitors = bestOf3(Mode::FullMonitors, cycles);

  std::printf("conformance-hook overhead (events/sec, best of 3)\n\n");
  std::printf("%-24s %12.2f M/s  %6.3fx\n", "monitors detached",
              detached / 1e6, 1.0);
  std::printf("%-24s %12.2f M/s  %6.3fx\n", "null hooks attached",
              nullAttached / 1e6, nullAttached / detached);
  std::printf("%-24s %12.2f M/s  %6.3fx\n", "full monitor battery",
              fullMonitors / 1e6, fullMonitors / detached);

  const double ratio = nullAttached / detached;
  std::printf("\ngate: null-attached/detached = %.3f %s %.2fx\n", ratio,
              ratio >= kGate ? ">=" : "< BELOW", kGate);
  return ratio >= kGate ? 0 : 1;
}
