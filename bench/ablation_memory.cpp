// Re-validates the paper's Section V-A claim: "we have performed
// simulations with a more detailed DDR memory controller model and we
// have found that this does not affect the results". Runs apache and jbb
// under the fixed-latency model and the detailed DDR model and compares
// the cross-protocol conclusions.
#include "bench_util.h"

using namespace eecc;

int main() {
  bench::banner(
      "Ablation — fixed-latency memory vs. detailed DDR controller "
      "(Section V-A validation)");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  const std::vector<std::string> workloads = {"apache4x16p", "jbb4x16p"};
  std::vector<ExperimentConfig> cfgs;
  for (const std::string& workload : workloads)
    for (const ProtocolKind kind : allProtocolKinds()) {
      auto cfg = bench::makeConfig(workload, kind);
      cfgs.push_back(cfg);  // fixed-latency model
      cfg.chip.memoryModel = CmpConfig::MemoryModel::Ddr;
      cfgs.push_back(cfg);  // detailed DDR model
    }

  ExperimentRunner runner;
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);

  std::size_t i = 0;
  for (const std::string& workload : workloads) {
    std::printf("\n%s\n", workload.c_str());
    std::printf("  %-15s %11s %11s %13s %13s\n", "protocol", "perf-fixed",
                "perf-ddr", "power-fixed", "power-ddr");
    double baseFixed = 0.0;
    double baseDdr = 0.0;
    for (const ProtocolKind kind : allProtocolKinds()) {
      const ExperimentResult& fixed = results[i++];
      const ExperimentResult& ddr = results[i++];
      if (kind == ProtocolKind::Directory) {
        baseFixed = fixed.throughput;
        baseDdr = ddr.throughput;
      }
      std::printf("  %-15s %11.3f %11.3f %12.1f %12.1f\n",
                  protocolName(kind), fixed.throughput / baseFixed,
                  ddr.throughput / baseDdr, fixed.totalDynamicMw(),
                  ddr.totalDynamicMw());
    }
  }
  std::printf(
      "\nExpected: the normalized protocol comparison is essentially "
      "unchanged between the two memory models — the protocols differ in "
      "on-chip behaviour, not in how DRAM serves the residual misses.\n");
  return 0;
}
