// Regenerates Table V: memory overhead introduced by coherence information
// (per tile) in the 8x8 tiled CMP with 4 areas. The paper's cells are
// printed next to ours; the storage model is bit-exact.
#include "bench_util.h"
#include "common/bits.h"
#include "energy/storage_model.h"

using namespace eecc;

namespace {

struct PaperRow {
  const char* structure;
  double paperKiB;
};

void printProtocol(ProtocolKind kind, const ChipParams& chip,
                   const std::vector<std::pair<const char*, double>>& rows,
                   double paperOverheadPct) {
  const StorageBreakdown s = storageFor(kind, chip);
  std::printf("%-15s", protocolName(kind));
  std::printf("  overhead: %6.2f%%  (paper: %5.2f%%)\n",
              s.overheadFraction() * 100.0, paperOverheadPct);
  const double ours[] = {bitsToKiB(s.l1DirBits), bitsToKiB(s.l2DirBits),
                         bitsToKiB(s.dirCacheBits), bitsToKiB(s.l1cBits),
                         bitsToKiB(s.l2cBits)};
  const char* names[] = {"L1 dir. inf.", "L2 dir. inf.", "Dir. cache",
                         "L1C$", "L2C$"};
  for (int i = 0; i < 5; ++i) {
    if (ours[i] == 0.0 && rows[static_cast<std::size_t>(i)].second == 0.0)
      continue;
    std::printf("    %-14s %8.2f KiB   (paper: %8.2f KiB)\n", names[i],
                ours[i], rows[static_cast<std::size_t>(i)].second);
  }
}

}  // namespace

int main() {
  bench::banner(
      "Table V — memory overhead of coherence information per tile "
      "(8x8 CMP, 4 areas, 40-bit addresses)");

  const ChipParams chip;  // Table III defaults
  const StorageBreakdown base = storageFor(ProtocolKind::Directory, chip);
  std::printf("Data arrays: L1 %.2f KiB (paper 134.25), L2 %.2f KiB "
              "(paper 1058)\n\n",
              bitsToKiB(base.l1DataBits), bitsToKiB(base.l2DataBits));

  // Rows: {L1 dir, L2 dir, dir cache, L1C$, L2C$} paper KiB values.
  printProtocol(ProtocolKind::Directory, chip,
                {{"", 0.0}, {"", 128.0}, {"", 21.75}, {"", 0.0}, {"", 0.0}},
                12.56);
  printProtocol(ProtocolKind::DiCo, chip,
                {{"", 16.0}, {"", 128.0}, {"", 0.0}, {"", 7.5}, {"", 6.0}},
                13.21);
  printProtocol(ProtocolKind::DiCoProviders, chip,
                {{"", 7.75}, {"", 40.0}, {"", 0.0}, {"", 7.5}, {"", 6.0}},
                5.14);
  printProtocol(ProtocolKind::DiCoArin, chip,
                {{"", 4.0}, {"", 36.0}, {"", 0.0}, {"", 7.5}, {"", 6.0}},
                4.49);

  const auto dir = storageFor(ProtocolKind::Directory, chip);
  const auto prov = storageFor(ProtocolKind::DiCoProviders, chip);
  const auto arin = storageFor(ProtocolKind::DiCoArin, chip);
  std::printf(
      "\nDirectory-information reduction vs. flat directory: "
      "DiCo-Providers %.0f%% (paper 59%%), DiCo-Arin %.0f%% (paper 64%%)\n",
      100.0 * (1.0 - static_cast<double>(prov.coherenceBits()) /
                         static_cast<double>(dir.coherenceBits())),
      100.0 * (1.0 - static_cast<double>(arin.coherenceBits()) /
                         static_cast<double>(dir.coherenceBits())));
  return 0;
}
