// NoC model fidelity check (the paper's NoC is a Garnet flit-level
// simulator; ours defaults to a message-level wormhole approximation with
// per-link contention). Runs apache under both models and compares the
// cross-protocol conclusions — the reproduction's analog of validating
// against the detailed reference.
#include "bench_util.h"

using namespace eecc;

int main() {
  bench::banner(
      "Ablation — message-level vs. flit-level NoC arbitration (apache)");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  std::vector<ExperimentConfig> cfgs;
  for (const ProtocolKind kind : allProtocolKinds()) {
    auto cfg = bench::makeConfig("apache4x16p", kind);
    cfgs.push_back(cfg);  // message-level
    cfg.chip.net.flitLevel = true;
    cfgs.push_back(cfg);  // flit-level
  }

  ExperimentRunner runner;
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);

  std::printf("\n%-15s %11s %11s %13s %13s %13s\n", "protocol", "perf-msg",
              "perf-flit", "missLat-msg", "missLat-flit", "power-flit");
  double baseMsg = 0.0;
  double baseFlit = 0.0;
  std::size_t i = 0;
  for (const ProtocolKind kind : allProtocolKinds()) {
    const ExperimentResult& msg = results[i++];
    const ExperimentResult& flit = results[i++];
    if (kind == ProtocolKind::Directory) {
      baseMsg = msg.throughput;
      baseFlit = flit.throughput;
    }
    std::printf("%-15s %11.3f %11.3f %13.1f %13.1f %13.1f\n",
                protocolName(kind), msg.throughput / baseMsg,
                flit.throughput / baseFlit, msg.stats.missLatency.mean(),
                flit.stats.missLatency.mean(), flit.totalDynamicMw());
  }
  std::printf(
      "\nExpected: flit-level arbitration relieves head-of-line blocking "
      "slightly (equal when uncontended), leaving the normalized protocol "
      "comparison unchanged — energy counts are identical by "
      "construction.\n");
  return 0;
}
