// Quantifies the paper's Section I claim that keeping coherence per area
// "provides (partial) isolation among cores of different VMs": the share
// of unicast coherence messages that cross a static area boundary, plus
// the per-VM throughput spread, under the matched placement.
//
// A flat directory sprays every miss at a chip-wide home; the DiCo family
// keeps owners (and providers) inside the VM's area, so most traffic
// should stay home. The four systems run concurrently on the pool.
#include "bench_util.h"
#include "core/cmp_system.h"

using namespace eecc;

int main() {
  bench::banner(
      "Isolation — inter-area message share and per-VM throughput spread "
      "(apache, matched placement)");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  struct Row {
    double interArea = 0.0;
    double vmOps[4] = {0, 0, 0, 0};
  };
  const auto& kinds = allProtocolKinds();
  std::vector<Row> rows(kinds.size());

  ExperimentRunner runner;
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < kinds.size(); ++i)
    tasks.push_back([i, &kinds, &rows] {
      CmpConfig chip;
      const VmLayout layout = VmLayout::matched(chip, 4);
      CmpSystem sys(chip, kinds[i], layout,
                    profiles::byWorkloadName("apache4x16p"), 1);
      sys.warmup(bench::warmupFor("apache4x16p"));
      sys.run(bench::windowFor());
      Row& row = rows[i];
      row.interArea = sys.protocol().interAreaFraction();
      for (NodeId t = 0; t < chip.tiles(); ++t)
        row.vmOps[layout.vmOf(t)] +=
            static_cast<double>(sys.opsCompleted(t));
    });
  runner.runTasks(std::move(tasks));

  std::printf("\n%-15s %14s %14s %14s\n", "protocol", "inter-area",
              "per-VM min/max", "spread");
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const Row& row = rows[i];
    double lo = row.vmOps[0];
    double hi = row.vmOps[0];
    for (const double v : row.vmOps) {
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    std::printf("%-15s %13.1f%% %8.0f/%6.0f %13.2f%%\n",
                protocolName(kinds[i]), 100.0 * row.interArea, lo, hi,
                100.0 * (hi / lo - 1.0));
  }
  std::printf(
      "\nExpected: the flat directory sends roughly the chip-uniform "
      "share of its traffic across area boundaries (home banks are "
      "interleaved chip-wide), while the DiCo family confines most "
      "coherence activity to the VM's own area; identical VMs see "
      "near-identical throughput either way.\n");
  return 0;
}
