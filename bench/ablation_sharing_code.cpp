// Re-validates the paper's Section II-A baseline choice: "we use a
// full-map bit-vector ... because the full-map provides the best
// performance and lowest traffic for the base architecture. Other sharing
// codes trade off reduced directory overhead for extra network traffic
// and worse performance." Runs the flat directory under each code.
#include "bench_util.h"
#include "energy/storage_model.h"

using namespace eecc;

int main() {
  bench::banner(
      "Ablation — directory sharing codes (Section II-A baseline choice, "
      "apache)");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  const SharingCode codes[] = {SharingCode::FullMap,
                               SharingCode::CoarseVector2,
                               SharingCode::CoarseVector4,
                               SharingCode::LimitedPtr4};
  std::vector<ExperimentConfig> cfgs;
  for (const SharingCode code : codes) {
    auto cfg = bench::makeConfig("apache4x16p", ProtocolKind::Directory);
    cfg.chip.dirSharingCode = code;
    cfgs.push_back(cfg);
  }

  ExperimentRunner runner;
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);

  std::printf("\n%-12s %10s %12s %12s %12s %12s\n", "code", "perf",
              "invals", "links", "power(mW)", "storage-ovh");
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    const ExperimentResult& r = results[i];
    const SharingCode code = codes[i];
    const ChipParams p = chipParamsOf(cfgs[i].chip);
    std::printf("%-12s %10.3f %12llu %12llu %12.1f %11.2f%%\n",
                sharingCodeName(code), r.throughput,
                static_cast<unsigned long long>(r.stats.invalidationsSent),
                static_cast<unsigned long long>(r.noc.linksTraversed),
                r.totalDynamicMw(),
                storageFor(ProtocolKind::Directory, p, code)
                        .overheadFraction() *
                    100.0);
  }
  std::printf(
      "\nExpected: the full map sends the fewest invalidations and the "
      "least traffic; coarse vectors and limited pointers shrink the "
      "storage column but inflate invalidations — the trade-off the "
      "area-based protocols escape by shrinking the *tracked domain* "
      "instead of the code.\n");
  return 0;
}
