// Ablation for the Section V-B trade-off: "using smaller areas implies
// that providers will be closer to the requestors but also that finding a
// provider in the area is less likely". Sweeps the static area count on
// the 64-tile chip for DiCo-Providers and DiCo-Arin, reporting the
// provider-resolution rate, the mean links of provider-resolved misses,
// dynamic power, and the (analytic) storage overhead per split.
#include "bench_util.h"
#include "energy/storage_model.h"

using namespace eecc;

int main() {
  bench::banner(
      "Ablation — area count trade-off on the 64-tile chip (apache)");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  const ProtocolKind kinds[] = {ProtocolKind::DiCoProviders,
                                ProtocolKind::DiCoArin};
  const std::uint32_t areaCounts[] = {2u, 4u, 8u, 16u};

  std::vector<ExperimentConfig> cfgs;
  for (const ProtocolKind kind : kinds)
    for (const std::uint32_t areas : areaCounts) {
      auto cfg = bench::makeConfig("apache4x16p", kind);
      cfg.chip.numAreas = areas;
      cfg.contiguousLayout = true;  // VMs keep 16 tiles at any granularity
      cfgs.push_back(cfg);
    }

  ExperimentRunner runner;
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);

  std::size_t i = 0;
  for (const ProtocolKind kind : kinds) {
    std::printf("\n%s\n", protocolName(kind));
    std::printf("  %5s %10s %12s %12s %12s %12s\n", "areas", "perf",
                "prov-res", "links(prov)", "power(mW)", "storage-ovh");
    for (const std::uint32_t areas : areaCounts) {
      const ExperimentResult& r = results[i];
      const ChipParams p = chipParamsOf(cfgs[i].chip);
      ++i;
      const double provFrac =
          r.stats.l1Misses()
              ? 100.0 * static_cast<double>(
                            r.stats.providerResolvedMisses) /
                    static_cast<double>(r.stats.l1Misses())
              : 0.0;
      std::printf("  %5u %10.3f %11.1f%% %12.1f %12.1f %11.2f%%\n", areas,
                  r.throughput, provFrac,
                  r.meanLinks(MissClass::PredProviderHit),
                  r.totalDynamicMw(),
                  storageFor(kind, p).overheadFraction() * 100.0);
    }
  }
  std::printf(
      "\nExpected: smaller areas (more of them) shorten provider-resolved "
      "misses but find a provider less often; DiCo-Providers' storage "
      "overhead grows with the area count while DiCo-Arin's is minimized "
      "at the 4-area split the paper uses.\n");
  return 0;
}
