// Head-to-head harness for the event-kernel overhaul: the pre-overhaul
// std::priority_queue/std::function kernel (kept here verbatim as the
// reference) against the production slab/timing-wheel EventQueue, on
// workloads shaped like the simulator's real traffic.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/event_queue.h"

namespace eecc::bench {

/// The seed-repo event kernel (src/sim/event_queue.h before the hot-path
/// overhaul): binary heap of events, one std::function per event — which
/// heap-allocates for any capture beyond the small-buffer optimization.
class LegacyEventQueue {
 public:
  using Action = std::function<void()>;

  Tick now() const { return now_; }

  void scheduleAt(Tick when, Action action) {
    heap_.push(Event{when, next_seq_++, std::move(action)});
  }
  void scheduleAfter(Tick delay, Action action) {
    scheduleAt(now_ + delay, std::move(action));
  }

  bool step() {
    if (heap_.empty()) return false;
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ev.action();
    ++executed_;
    return true;
  }

  void runToCompletion() {
    while (step()) {
    }
  }

  std::uint64_t executedEvents() const { return executed_; }

 private:
  struct Event {
    Tick when;
    std::uint64_t seq;
    Action action;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

/// Steady-state churn shaped like coherence traffic: `chains` concurrent
/// event chains (cores/transactions), each event rescheduling its
/// successor a short pseudo-random delay ahead while carrying a
/// Message-sized payload — the capture size that defeats std::function's
/// small-buffer optimization. A slice of events lands far in the future
/// (DRAM-horizon wakeups) to exercise the overflow path too.
template <class Queue>
std::uint64_t runChurn(std::uint64_t totalEvents, std::uint32_t chains) {
  struct Payload {  // stand-in for a captured Message (48 bytes)
    std::uint64_t a, b, c, d, e, f;
  };
  Queue q;
  std::uint64_t executed = 0;
  std::uint64_t sink = 0;
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  std::function<void(Tick)> chainStep = [&](Tick delayHint) {
    q.scheduleAfter(delayHint, [&, p = Payload{rng, 1, 2, 3, 4, 5}] {
      sink += p.a;
      ++executed;
      if (executed >= totalEvents) return;
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      // 1-in-128 events jumps past the near window (far-future wakeup).
      const Tick delay = (rng & 127u) == 0 ? Tick{100'000}
                                           : Tick{1 + (rng % 100)};
      chainStep(delay);
    });
  };
  for (std::uint32_t c = 0; c < chains; ++c) chainStep(Tick{1 + c});
  q.runToCompletion();
  return sink;
}

/// Burst pattern of the old micro_benchmarks: schedule a block of events
/// across a small time window, then drain.
template <class Queue>
std::uint64_t runBurst(std::uint64_t totalEvents) {
  std::uint64_t sink = 0;
  std::uint64_t done = 0;
  while (done < totalEvents) {
    Queue q;
    for (int i = 0; i < 1000; ++i)
      q.scheduleAt(static_cast<Tick>(i % 97), [&sink] { ++sink; });
    q.runToCompletion();
    done += 1000;
  }
  return sink;
}

struct KernelComparison {
  double legacyEventsPerSec = 0.0;
  double wheelEventsPerSec = 0.0;
  double speedup() const {
    return legacyEventsPerSec > 0.0 ? wheelEventsPerSec / legacyEventsPerSec
                                    : 0.0;
  }
};

template <class Fn>
double eventsPerSec(Fn&& run, std::uint64_t events) {
  const auto start = std::chrono::steady_clock::now();
  volatile std::uint64_t guard = run();
  (void)guard;
  const double s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return s > 0.0 ? static_cast<double>(events) / s : 0.0;
}

/// The headline comparison recorded in BENCH_sweep.json: steady-state
/// churn, `events` events per kernel (one warmup pass each).
inline KernelComparison compareEventKernels(std::uint64_t events = 400'000,
                                            std::uint32_t chains = 64) {
  KernelComparison cmp;
  runChurn<LegacyEventQueue>(events / 4, chains);  // warmup
  cmp.legacyEventsPerSec = eventsPerSec(
      [&] { return runChurn<LegacyEventQueue>(events, chains); }, events);
  runChurn<EventQueue>(events / 4, chains);  // warmup
  cmp.wheelEventsPerSec = eventsPerSec(
      [&] { return runChurn<EventQueue>(events, chains); }, events);
  return cmp;
}

}  // namespace eecc::bench
