// Regenerates the "-alt" experiment of Sections V-C/V-D (Figure 6 right):
// the VMs deliberately straddle the hard-wired areas. The paper's claims:
// no significant performance change for any protocol, a visible increase
// in DiCo-Arin broadcast traffic (read/write data now shared between
// areas), and DiCo-Providers still cheaper than the directory.
#include "bench_util.h"

using namespace eecc;

int main() {
  bench::banner(
      "Alternative VM placement (Figure 6 right): VMs straddle areas");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  const std::vector<std::string> workloads = {"apache4x16p", "radix4x16p"};
  std::vector<ExperimentConfig> cfgs;
  for (const std::string& workload : workloads)
    for (const ProtocolKind kind : allProtocolKinds()) {
      auto cfg = bench::makeConfig(workload, kind);
      cfgs.push_back(cfg);  // matched placement
      cfg.altLayout = true;
      cfgs.push_back(cfg);  // alternative placement
    }

  ExperimentRunner runner;
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);

  std::size_t i = 0;
  for (const std::string& workload : workloads) {
    std::printf("\n%s\n", workload.c_str());
    std::printf("  %-15s %10s %10s %12s %12s %12s\n", "protocol",
                "perf", "perf-alt", "power(mW)", "power-alt", "bcasts m/a");
    for (const ProtocolKind kind : allProtocolKinds()) {
      const ExperimentResult& matched = results[i++];
      const ExperimentResult& alt = results[i++];
      std::printf("  %-15s %10.3f %10.3f %12.1f %12.1f %6llu/%llu\n",
                  protocolName(kind), matched.throughput, alt.throughput,
                  matched.totalDynamicMw(), alt.totalDynamicMw(),
                  static_cast<unsigned long long>(matched.noc.broadcasts),
                  static_cast<unsigned long long>(alt.noc.broadcasts));
    }
  }
  std::printf(
      "\nPaper shape: performance is essentially unchanged under the "
      "alternative placement (owners stay within the VM; providers now "
      "also serve VM-private data), while DiCo-Arin's broadcast count "
      "rises because ordinary read/write data is now shared between "
      "areas.\n");
  return 0;
}
