// Dense-virtualization scale-up (Section V-D closing projection).
//
// The paper argues the provider advantage grows with virtualization
// density and projects link counts for a 256-tile CMP. This bench
// actually *simulates* a 256-tile (16x16) chip running 16 consolidated
// 16-core VMs on 16 areas, with a 4x-scaled-down L2 so the footprints
// exercise the hierarchy within bench-sized windows, and reports the same
// quantities as Figure 9b plus the inter-area traffic share. The paper's
// 64-VM arithmetic projection (32 / 21.3 / 2.6 links) is printed
// alongside from the mesh geometry. The four 256-tile systems run
// concurrently on the pool.
#include "bench_util.h"
#include "core/cmp_system.h"
#include "noc/mesh.h"

using namespace eecc;

int main() {
  bench::banner(
      "Dense virtualization — 256-tile CMP, 16 areas, 16 Apache VMs");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  CmpConfig chip;
  chip.meshWidth = 16;
  chip.meshHeight = 16;
  chip.numAreas = 16;
  chip.l2 = CacheGeometry{4096, 8, 2, 3};  // scaled L2 (see header)
  chip.numMemControllers = 16;
  chip.validate();

  auto profile = profiles::apache();
  profile.privatePagesPerThread /= 2;  // keep per-VM footprints in scale
  profile.vmSharedPages /= 2;
  const std::vector<BenchmarkProfile> perVm(16, profile);
  const VmLayout layout = VmLayout::matched(chip, 16);

  const Tick warmup = bench::quickMode() ? 60'000 : 400'000;
  const Tick window = bench::quickMode() ? 40'000 : 150'000;

  struct Row {
    double throughput = 0.0;
    double provFrac = 0.0;
    double provLinks = 0.0;
    double ownerLinks = 0.0;
    double interArea = 0.0;
    double mw = 0.0;
  };
  const auto& kinds = allProtocolKinds();
  std::vector<Row> rows(kinds.size());

  ExperimentRunner runner;
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < kinds.size(); ++i)
    tasks.push_back([i, &kinds, &rows, &chip, &layout, &perVm, warmup,
                     window] {
      CmpSystem sys(chip, kinds[i], layout, perVm, 1);
      sys.warmup(warmup);
      sys.run(window);
      const ProtocolStats& s = sys.protocol().stats();
      const EnergyModel energy(kinds[i], chipParamsOf(chip));
      const auto cachePj = energy.cacheEnergy(sys.protocol().energyEvents());
      const auto nocPj = energy.nocEnergy(sys.network().stats());
      Row& row = rows[i];
      row.throughput = sys.throughput();
      row.provFrac =
          s.l1Misses() ? 100.0 *
                             static_cast<double>(s.providerResolvedMisses) /
                             static_cast<double>(s.l1Misses())
                       : 0.0;
      row.provLinks =
          s.linksByClass[static_cast<std::size_t>(MissClass::PredProviderHit)]
              .mean();
      row.ownerLinks =
          s.linksByClass[static_cast<std::size_t>(MissClass::PredOwnerHit)]
              .mean();
      row.interArea = sys.protocol().interAreaFraction();
      row.mw = EnergyModel::pjToMw(cachePj.total() + nocPj.total(),
                                   sys.cycles());
    });
  runner.runTasks(std::move(tasks));

  std::printf("\n%-15s %8s %10s %12s %12s %12s %12s\n", "protocol", "perf",
              "prov-res", "links(prov)", "links(own)", "inter-area",
              "power(mW)");
  const double basePerf = rows[0].throughput;  // Directory is first
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const Row& row = rows[i];
    std::printf("%-15s %8.3f %9.1f%% %12.1f %12.1f %11.1f%% %12.1f\n",
                protocolName(kinds[i]), row.throughput / basePerf,
                row.provFrac, row.provLinks, row.ownerLinks,
                100.0 * row.interArea, row.mw);
  }

  const MeshTopology big(16, 16);
  std::printf(
      "\nPaper's 64-VM projection from the same geometry (4-tile areas):\n"
      "  indirect miss %.1f links (paper 32), two-hop %.1f (21.3), "
      "shortened %.1f (2.6)\n",
      3.0 * big.averageDistance(), 2.0 * big.averageDistance(),
      2.0 * MeshTopology(2, 2).averageDistance());
  std::printf(
      "Expected: with denser virtualization the in-area/provider misses "
      "stay as short as on the 64-tile chip while chip-wide home "
      "indirection roughly doubles — the provider advantage grows with "
      "the tile count, as Section V-D argues.\n");
  return 0;
}
