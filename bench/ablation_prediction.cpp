// Ablation of the L1C$ supplier prediction (Section IV-A2 / Fig. 5):
// disabling it sends every DiCo-family miss through the home, removing
// the two-hop fast path the protocols are built around.
#include "bench_util.h"

using namespace eecc;

int main() {
  bench::banner("Ablation — L1C$ supplier prediction on/off (apache)");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  const ProtocolKind kinds[] = {ProtocolKind::DiCo,
                                ProtocolKind::DiCoProviders,
                                ProtocolKind::DiCoArin};
  std::vector<ExperimentConfig> cfgs;
  for (const ProtocolKind kind : kinds) {
    auto cfg = bench::makeConfig("apache4x16p", kind);
    cfgs.push_back(cfg);  // prediction on
    cfg.chip.enablePrediction = false;
    cfgs.push_back(cfg);  // prediction off
  }

  ExperimentRunner runner;
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);

  std::printf("\n%-15s %10s %10s %14s %14s %12s\n", "protocol", "perf",
              "perf-off", "missLat(cyc)", "missLat-off", "power Δ");
  std::size_t i = 0;
  for (const ProtocolKind kind : kinds) {
    const ExperimentResult& on = results[i++];
    const ExperimentResult& off = results[i++];
    std::printf("%-15s %10.3f %10.3f %14.1f %14.1f %+10.1f%%\n",
                protocolName(kind), on.throughput, off.throughput,
                on.stats.missLatency.mean(), off.stats.missLatency.mean(),
                100.0 * (off.totalDynamicMw() / on.totalDynamicMw() - 1.0));
  }
  std::printf(
      "\nExpected: without prediction every miss pays the home "
      "indirection — higher miss latency and more network energy; the "
      "prediction is what lets DiCo-family protocols beat the 3-hop "
      "directory path.\n");
  return 0;
}
