// Shared plumbing for the table/figure regeneration benches: per-workload
// warmup budgets, parallel sweep execution, and text-table formatting.
//
// Set EECC_QUICK=1 to cut warmup/measurement windows 10x (smoke runs).
// Set EECC_JOBS=N to bound the experiment pool (default: all hardware
// threads); results are bit-identical at any width.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/journal.h"
#include "core/runner.h"
#include "workload/profile.h"

namespace eecc::bench {

inline bool quickMode() {
  const char* q = std::getenv("EECC_QUICK");
  return q != nullptr && q[0] == '1';
}

/// Warmup budget per workload: the L2-thrashing configurations need to
/// actually fill the 64 MB L2 before the measured window (see DESIGN.md).
inline Tick warmupFor(const std::string& workload) {
  Tick t = 500'000;
  if (workload == "jbb4x16p") t = 8'000'000;
  if (workload == "mixed-com") t = 5'000'000;
  return quickMode() ? t / 10 : t;
}

inline Tick windowFor() { return quickMode() ? 100'000 : 250'000; }

inline ExperimentConfig makeConfig(const std::string& workload,
                                   ProtocolKind kind) {
  ExperimentConfig cfg;
  cfg.workloadName = workload;
  cfg.protocol = kind;
  cfg.warmupCycles = warmupFor(workload);
  cfg.windowCycles = windowFor();
  return cfg;
}

/// The workload x protocol sweep grid of the figure benches, in print
/// order: for workload index w and protocol index p the result of a
/// runMany() over this grid sits at w * allProtocolKinds().size() + p.
inline std::vector<ExperimentConfig> protocolGrid(
    const std::vector<std::string>& workloads) {
  std::vector<ExperimentConfig> cfgs;
  cfgs.reserve(workloads.size() * allProtocolKinds().size());
  for (const std::string& workload : workloads)
    for (const ProtocolKind kind : allProtocolKinds())
      cfgs.push_back(makeConfig(workload, kind));
  return cfgs;
}

/// EECC_JOURNAL=FILE attaches a crash-safe sweep journal to the runner
/// (DESIGN.md §12), always in resume mode: a killed bench run re-executed
/// with the same journal path skips every experiment that already
/// finished and its output stays bit-identical. Keep the returned handle
/// alive for as long as the runner executes.
inline std::unique_ptr<SweepJournal> attachEnvJournal(
    ExperimentRunner& runner) {
  const char* path = std::getenv("EECC_JOURNAL");
  if (path == nullptr || path[0] == '\0') return nullptr;
  auto journal = std::make_unique<SweepJournal>();
  std::string error;
  if (!journal->open(path, /*resume=*/true, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return nullptr;
  }
  if (journal->restoredCount() > 0)
    std::printf("(EECC_JOURNAL: %zu experiments already journaled in %s)\n",
                journal->restoredCount(), path);
  runner.setJournal(journal.get());
  return journal;
}

/// Monotonic wall clock for sweep timing.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void hr(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void banner(const char* title) {
  std::printf("\n");
  hr();
  std::printf("%s\n", title);
  hr();
}

}  // namespace eecc::bench
