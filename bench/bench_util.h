// Shared plumbing for the table/figure regeneration benches: per-workload
// warmup budgets, protocol iteration, and text-table formatting.
//
// Set EECC_QUICK=1 to cut warmup/measurement windows 10x (smoke runs).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "workload/profile.h"

namespace eecc::bench {

inline bool quickMode() {
  const char* q = std::getenv("EECC_QUICK");
  return q != nullptr && q[0] == '1';
}

/// Warmup budget per workload: the L2-thrashing configurations need to
/// actually fill the 64 MB L2 before the measured window (see DESIGN.md).
inline Tick warmupFor(const std::string& workload) {
  Tick t = 500'000;
  if (workload == "jbb4x16p") t = 8'000'000;
  if (workload == "mixed-com") t = 5'000'000;
  return quickMode() ? t / 10 : t;
}

inline Tick windowFor() { return quickMode() ? 100'000 : 250'000; }

inline const std::vector<ProtocolKind>& allProtocols() {
  static const std::vector<ProtocolKind> kinds = {
      ProtocolKind::Directory, ProtocolKind::DiCo,
      ProtocolKind::DiCoProviders, ProtocolKind::DiCoArin};
  return kinds;
}

inline ExperimentConfig makeConfig(const std::string& workload,
                                   ProtocolKind kind) {
  ExperimentConfig cfg;
  cfg.workloadName = workload;
  cfg.protocol = kind;
  cfg.warmupCycles = warmupFor(workload);
  cfg.windowCycles = windowFor();
  return cfg;
}

inline void hr(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline void banner(const char* title) {
  std::printf("\n");
  hr();
  std::printf("%s\n", title);
  hr();
}

}  // namespace eecc::bench
