// Microbenchmark guard for the observability layer: tracing and the
// attribution ledger must be zero-cost when detached. With nothing
// attached the protocol and network hot paths each pay exactly one
// untaken, [[unlikely]]-hinted branch per access/message for the trace
// sink plus one for the ledger — the same pattern micro_check_overhead
// guards for the conformance hooks — so we bound the cost from above:
// even the *attached* null-sink configuration (virtual dispatch to empty
// bodies on every transaction completion and message send, no recording)
// must stay within 3% of the detached run. The detached baseline includes
// the ledger's untaken branches, so the gate covers them. The
// ring-recording and ledger-attached configurations are reported for
// information only; they are opt-in diagnostic modes, not gates.
//
//   $ ./build/bench/micro_obs_overhead        (EECC_QUICK=1 for a smoke run)
//
// Exits nonzero when attached-null drops below 0.97x detached.
#include <cstdio>

#include "bench_util.h"
#include "core/cmp_system.h"
#include "obs/ledger.h"
#include "obs/trace.h"

using namespace eecc;
using namespace eecc::bench;

namespace {

/// Sink dispatch with no recording behind it: the upper bound on what the
/// disabled fast path could possibly cost.
struct NullTraceSink final : TraceSink {
  void onTransaction(NodeId, Addr, AccessType, Tick, Tick, bool, MissClass,
                     std::uint32_t) override {}
  void onMessage(const Message&, Tick, Tick, std::uint32_t) override {}
  void onBroadcast(const Message&, Tick, Tick) override {}
};

enum class Mode { Detached, NullSink, RingSink, Ledger };

CmpConfig benchChip() {
  CmpConfig cfg;
  cfg.meshWidth = 4;
  cfg.meshHeight = 4;
  cfg.numAreas = 4;
  cfg.l1 = CacheGeometry{128, 4, 1, 2};
  cfg.l2 = CacheGeometry{512, 8, 2, 3};
  cfg.l1cEntries = 128;
  cfg.l2cEntries = 128;
  cfg.dirCacheEntries = 128;
  cfg.numMemControllers = 4;
  return cfg;
}

double eventsPerSec(Mode mode, Tick cycles) {
  const CmpConfig cfg = benchChip();
  const VmLayout layout = VmLayout::matched(cfg, 4);
  CmpSystem system(cfg, ProtocolKind::DiCoProviders, layout,
                   profiles::uniform4(profiles::apache()), /*seed=*/7);
  NullTraceSink nullSink;
  RingTraceSink ring(/*capacity=*/1 << 16, /*recordHits=*/true);
  AttributionLedger ledger(
      cfg, layout,
      [&system](Addr page) { return system.workload().vmOfPage(page); });
  if (mode == Mode::NullSink) {
    system.attachTrace(&nullSink);
  } else if (mode == Mode::RingSink) {
    system.attachTrace(&ring);
  } else if (mode == Mode::Ledger) {
    system.attachLedger(&ledger);
  }
  const WallTimer timer;
  system.run(cycles);
  const double secs = timer.seconds();
  return secs > 0.0
             ? static_cast<double>(system.events().executedEvents()) / secs
             : 0.0;
}

/// Best-of-3 to damp scheduler noise (the gate compares two same-process
/// measurements, so systematic machine speed cancels out).
double bestOf3(Mode mode, Tick cycles) {
  double best = 0.0;
  for (int i = 0; i < 3; ++i) {
    const double r = eventsPerSec(mode, cycles);
    if (r > best) best = r;
  }
  return best;
}

}  // namespace

int main() {
  const Tick cycles = quickMode() ? 200'000 : 2'000'000;
  constexpr double kGate = 0.97;

  eventsPerSec(Mode::Detached, cycles / 4);  // warm the allocator/caches

  const double detached = bestOf3(Mode::Detached, cycles);
  const double nullAttached = bestOf3(Mode::NullSink, cycles);
  const double ringAttached = bestOf3(Mode::RingSink, cycles);
  const double ledgerAttached = bestOf3(Mode::Ledger, cycles);

  std::printf("observability overhead (events/sec, best of 3)\n\n");
  std::printf("%-24s %12.2f M/s  %6.3fx\n", "all detached",
              detached / 1e6, 1.0);
  std::printf("%-24s %12.2f M/s  %6.3fx\n", "null sink attached",
              nullAttached / 1e6, nullAttached / detached);
  std::printf("%-24s %12.2f M/s  %6.3fx\n", "ring sink (hits too)",
              ringAttached / 1e6, ringAttached / detached);
  std::printf("%-24s %12.2f M/s  %6.3fx\n", "ledger attached",
              ledgerAttached / 1e6, ledgerAttached / detached);

  const double ratio = nullAttached / detached;
  std::printf("\ngate: null-attached/detached = %.3f %s %.2fx\n", ratio,
              ratio >= kGate ? ">=" : "< BELOW", kGate);
  return ratio >= kGate ? 0 : 1;
}
