// Regenerates Figure 9: (a) performance normalized to the directory
// protocol, and (b) the breakdown of L1 misses by prediction outcome and
// supplier kind, with the mean mesh links traversed per class (the
// "shortened misses" analysis of Section V-D).
//
// The full workload x protocol grid runs on the ExperimentRunner pool
// (EECC_JOBS-wide) and the per-experiment wall-clock / events-per-second
// instrumentation is written to BENCH_sweep.json (path overridable via
// EECC_SWEEP_JSON) — the perf-trajectory record for this repository.
#include <cstdlib>

#include "bench_util.h"
#include "core/experiment.h"
#include "event_kernel_compare.h"
#include "noc/mesh.h"

using namespace eecc;

int main() {
  bench::banner("Figure 9a — performance normalized to the directory");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  const std::vector<std::string> workloads = profiles::allWorkloadNames();
  const std::size_t numKinds = allProtocolKinds().size();

  ExperimentRunner runner;
  const auto journal = bench::attachEnvJournal(runner);
  std::printf("(%u experiment jobs)\n", runner.jobs());
  const bench::WallTimer timer;
  const std::vector<ExperimentResult> results =
      runner.runMany(bench::protocolGrid(workloads));
  const double sweepSeconds = timer.seconds();

  std::printf("\n%-14s", "workload");
  for (const ProtocolKind kind : allProtocolKinds())
    std::printf("%16s", protocolName(kind));
  std::printf("\n");
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::printf("%-14s", workloads[w].c_str());
    const double dirThr = results[w * numKinds].throughput;
    for (std::size_t p = 0; p < numKinds; ++p)
      std::printf("%16.3f", results[w * numKinds + p].throughput / dirThr);
    std::printf("\n");
  }

  bench::banner(
      "Figure 9b — L1 miss breakdown (fraction of misses | mean links "
      "traversed)");
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::printf("\n%s\n  %-15s", workloads[w].c_str(), "protocol");
    for (std::size_t c = 0; c < static_cast<std::size_t>(MissClass::kCount);
         ++c)
      std::printf("  %18s", missClassName(static_cast<MissClass>(c)));
    std::printf("  %12s\n", "prov-resolved");
    for (std::size_t p = 0; p < numKinds; ++p) {
      const ExperimentResult& r = results[w * numKinds + p];
      std::printf("  %-15s", protocolName(r.protocol));
      for (std::size_t c = 0;
           c < static_cast<std::size_t>(MissClass::kCount); ++c) {
        const auto cls = static_cast<MissClass>(c);
        std::printf("  %8.1f%% | %5.1f", 100.0 * r.missFraction(cls),
                    r.meanLinks(cls));
      }
      const double provFrac =
          r.stats.l1Misses()
              ? 100.0 *
                    static_cast<double>(r.stats.providerResolvedMisses) /
                    static_cast<double>(r.stats.l1Misses())
              : 0.0;
      std::printf("  %11.1f%%\n", provFrac);
    }
  }

  // Section V-D theory: average distances on the default mesh.
  const MeshTopology mesh(8, 8);
  std::printf(
      "\nSection V-D link arithmetic (8x8 mesh, 16-tile areas):\n"
      "  chip-wide two-hop miss: %.1f links on average (paper: 10.6)\n"
      "  in-area two-hop miss:   %.1f links on average (paper: 5.4)\n",
      2.0 * mesh.averageDistance(), 2.0 * MeshTopology(4, 4).averageDistance());
  std::printf(
      "Paper shape: a visible share of apache misses resolves at an "
      "in-area provider (21%% in the paper) and those misses traverse "
      "roughly half the links of a chip-wide two-hop miss.\n");

  // The dense-virtualization projection the paper closes V-D with: a
  // 256-tile CMP divided into 4-tile areas (64 VMs).
  const MeshTopology big(16, 16);
  const MeshTopology area(2, 2);
  std::printf(
      "\nDense-virtualization projection (256 tiles, 4-tile areas):\n"
      "  indirect (3-hop) miss: %.1f links (paper: 32)\n"
      "  normal (2-hop) miss:   %.1f links (paper: 21.3)\n"
      "  shortened miss:        %.1f links (paper: 2.6)\n",
      3.0 * big.averageDistance(), 2.0 * big.averageDistance(),
      2.0 * area.averageDistance());

  // Miss-path fast lane vs the legacy per-message delivery path, on the
  // broadcast-heavy DiCo-Arin jbb window the fast lane targets (the full
  // per-protocol table lives in bench/micro_miss_path). The env var is
  // read in the Network constructor, so toggling between in-process runs
  // selects the path cleanly.
  const auto missPathRun = [] {
    ExperimentConfig cfg;
    cfg.workloadName = "jbb4x16p";
    cfg.protocol = ProtocolKind::DiCoArin;
    // Wider than the sweep window: the A/B difference is a few percent,
    // so a short run drowns it in timer noise.
    cfg.warmupCycles = bench::quickMode() ? 20'000 : 200'000;
    cfg.windowCycles = bench::quickMode() ? 50'000 : 500'000;
    const bench::WallTimer t;
    const ExperimentResult r = runExperiment(cfg);
    const double secs = t.seconds();
    return secs > 0.0 ? static_cast<double>(r.simEvents) / secs : 0.0;
  };
  ::unsetenv("EECC_NOC_UNBATCHED");
  missPathRun();  // warm caches/predictors once
  const double missPathFast = missPathRun();
  ::setenv("EECC_NOC_UNBATCHED", "1", 1);
  const double missPathLegacy = missPathRun();
  ::unsetenv("EECC_NOC_UNBATCHED");

  // Perf-trajectory record: per-experiment wall clock + events/sec, plus
  // the event-kernel microbenchmark headline (see bench/micro_event_queue).
  const bench::KernelComparison kernelCmp = bench::compareEventKernels();
  const char* sweepPath = std::getenv("EECC_SWEEP_JSON");
  if (sweepPath == nullptr) sweepPath = "BENCH_sweep.json";
  const bool sweepOk = writeSweepJson(
      sweepPath, "fig9_performance", runner.jobs(), sweepSeconds,
      runner.metrics(),
      {{"event_kernel_legacy_events_per_sec", kernelCmp.legacyEventsPerSec},
       {"event_kernel_wheel_events_per_sec", kernelCmp.wheelEventsPerSec},
       {"event_kernel_speedup", kernelCmp.speedup()},
       {"miss_path_arin_legacy_events_per_sec", missPathLegacy},
       {"miss_path_arin_fast_events_per_sec", missPathFast},
       {"miss_path_arin_speedup",
        missPathLegacy > 0.0 ? missPathFast / missPathLegacy : 0.0}});
  std::printf(
      "\nsweep: %zu experiments in %.2fs on %u jobs; event-kernel "
      "speedup %.2fx -> %s\n",
      results.size(), sweepSeconds, runner.jobs(), kernelCmp.speedup(),
      sweepPath);
  return sweepOk ? 0 : 1;
}
