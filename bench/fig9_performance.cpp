// Regenerates Figure 9: (a) performance normalized to the directory
// protocol, and (b) the breakdown of L1 misses by prediction outcome and
// supplier kind, with the mean mesh links traversed per class (the
// "shortened misses" analysis of Section V-D).
#include "bench_util.h"
#include "noc/mesh.h"

using namespace eecc;

int main() {
  bench::banner("Figure 9a — performance normalized to the directory");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  struct Row {
    std::string workload;
    ProtocolKind kind;
    ExperimentResult r;
  };
  std::vector<Row> rows;

  std::printf("\n%-14s", "workload");
  for (const ProtocolKind kind : bench::allProtocols())
    std::printf("%16s", protocolName(kind));
  std::printf("\n");
  for (const auto& workload : profiles::allWorkloadNames()) {
    std::printf("%-14s", workload.c_str());
    double dirThr = 0.0;
    for (const ProtocolKind kind : bench::allProtocols()) {
      const auto r = runExperiment(bench::makeConfig(workload, kind));
      if (kind == ProtocolKind::Directory) dirThr = r.throughput;
      std::printf("%16.3f", r.throughput / dirThr);
      rows.push_back({workload, kind, r});
    }
    std::printf("\n");
  }

  bench::banner(
      "Figure 9b — L1 miss breakdown (fraction of misses | mean links "
      "traversed)");
  std::string current;
  for (const Row& row : rows) {
    if (row.workload != current) {
      current = row.workload;
      std::printf("\n%s\n  %-15s", current.c_str(), "protocol");
      for (std::size_t c = 0; c < static_cast<std::size_t>(MissClass::kCount);
           ++c)
        std::printf("  %18s", missClassName(static_cast<MissClass>(c)));
      std::printf("  %12s\n", "prov-resolved");
    }
    std::printf("  %-15s", protocolName(row.kind));
    for (std::size_t c = 0; c < static_cast<std::size_t>(MissClass::kCount);
         ++c) {
      const auto cls = static_cast<MissClass>(c);
      std::printf("  %8.1f%% | %5.1f",
                  100.0 * row.r.missFraction(cls), row.r.meanLinks(cls));
    }
    const double provFrac =
        row.r.stats.l1Misses()
            ? 100.0 * static_cast<double>(
                          row.r.stats.providerResolvedMisses) /
                  static_cast<double>(row.r.stats.l1Misses())
            : 0.0;
    std::printf("  %11.1f%%\n", provFrac);
  }

  // Section V-D theory: average distances on the default mesh.
  const MeshTopology mesh(8, 8);
  std::printf(
      "\nSection V-D link arithmetic (8x8 mesh, 16-tile areas):\n"
      "  chip-wide two-hop miss: %.1f links on average (paper: 10.6)\n"
      "  in-area two-hop miss:   %.1f links on average (paper: 5.4)\n",
      2.0 * mesh.averageDistance(), 2.0 * MeshTopology(4, 4).averageDistance());
  std::printf(
      "Paper shape: a visible share of apache misses resolves at an "
      "in-area provider (21%% in the paper) and those misses traverse "
      "roughly half the links of a chip-wide two-hop miss.\n");

  // The dense-virtualization projection the paper closes V-D with: a
  // 256-tile CMP divided into 4-tile areas (64 VMs).
  const MeshTopology big(16, 16);
  const MeshTopology area(2, 2);
  std::printf(
      "\nDense-virtualization projection (256 tiles, 4-tile areas):\n"
      "  indirect (3-hop) miss: %.1f links (paper: 32)\n"
      "  normal (2-hop) miss:   %.1f links (paper: 21.3)\n"
      "  shortened miss:        %.1f links (paper: 2.6)\n",
      3.0 * big.averageDistance(), 2.0 * big.averageDistance(),
      2.0 * area.averageDistance());
  return 0;
}
