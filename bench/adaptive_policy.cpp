// Invalidate vs. update vs. per-line adaptive snooping on the two
// sharing patterns that separate them (extension beyond the paper's
// figures; DESIGN.md §15, docs/PROTOCOLS.md):
//
//  * producer-consumer — one tile writes a working set, three tiles
//    read every block back, repeatedly. Invalidation throws the
//    consumers' copies away every round (each re-read is a broadcast
//    miss); update delivers the new value in place (every re-read is an
//    L1 hit). Hybrid-Adapt starts on invalidate and must *learn* the
//    pattern, so its energy lands strictly between the pure policies:
//    invalidate-priced rounds until the classifier flips, update-priced
//    rounds after.
//
//  * migratory — ownership hops across four tiles with no reads in
//    between. Update is the wrong policy here (every write pushes data
//    into stale copies nobody will read); Hybrid-Adapt keeps the lines
//    on invalidate and tracks MOESI, not Dragon.
//
// The run is cold on purpose: the adaptation transient is the point.
// Exits non-zero if either bracket fails, so the bench doubles as the
// acceptance check for the adaptive protocol.
#include <cstdio>

#include "bench_util.h"
#include "core/experiment.h"
#include "energy/energy_model.h"
#include "noc/network.h"
#include "protocols/protocol.h"
#include "sim/event_queue.h"

using namespace eecc;

namespace {

/// Same small chip the protocol tests use: 4x4 mesh, tiny caches.
CmpConfig smallConfig() {
  CmpConfig cfg;
  cfg.meshWidth = 4;
  cfg.meshHeight = 4;
  cfg.numAreas = 4;
  cfg.l1 = CacheGeometry{64, 4, 1, 2};
  cfg.l2 = CacheGeometry{256, 8, 2, 3};
  cfg.l1cEntries = 64;
  cfg.l2cEntries = 64;
  cfg.dirCacheEntries = 64;
  cfg.numMemControllers = 4;
  return cfg;
}

struct Result {
  const char* name = "";
  std::uint64_t l1Misses = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t linkFlits = 0;
  double cachePj = 0;
  double nocPj = 0;
  double totalPj() const { return cachePj + nocPj; }
};

class Driver {
 public:
  explicit Driver(ProtocolKind kind)
      : cfg_(smallConfig()),
        topo_(cfg_.meshWidth, cfg_.meshHeight),
        net_(events_, topo_, cfg_.net),
        proto_(makeProtocol(kind, events_, net_, cfg_)) {}

  void access(NodeId tile, Addr block, AccessType type) {
    bool done = false;
    proto_->access(tile, block, type, [&done] { done = true; });
    events_.runToCompletion();
    EECC_CHECK(done);
  }

  Result finish() {
    proto_->checkInvariants();
    const EnergyModel model(proto_->kind(), chipParamsOf(cfg_));
    Result r;
    r.name = protocolName(proto_->kind());
    r.l1Misses = proto_->stats().l1Misses();
    r.broadcasts = net_.stats().broadcasts;
    r.linkFlits = net_.stats().linkFlits;
    r.cachePj = model.cacheEnergy(proto_->energyEvents()).total();
    r.nocPj = model.nocEnergy(net_.stats()).total();
    return r;
  }

 private:
  CmpConfig cfg_;
  EventQueue events_;
  MeshTopology topo_;
  Network net_;
  std::unique_ptr<Protocol> proto_;
};

constexpr NodeId kProducer = 0;
constexpr NodeId kConsumers[] = {5, 10, 15};
constexpr int kBlocks = 8;

Addr blockAddr(int i) { return static_cast<Addr>(i) * kBlockBytes; }

Result producerConsumer(ProtocolKind kind, int rounds) {
  Driver d(kind);
  for (int r = 0; r < rounds; ++r) {
    for (int b = 0; b < kBlocks; ++b)
      d.access(kProducer, blockAddr(b), AccessType::Write);
    for (const NodeId c : kConsumers)
      for (int b = 0; b < kBlocks; ++b)
        d.access(c, blockAddr(b), AccessType::Read);
  }
  return d.finish();
}

Result migratory(ProtocolKind kind, int rounds) {
  Driver d(kind);
  constexpr NodeId kWriters[] = {0, 5, 10, 15};
  for (int r = 0; r < rounds; ++r)
    for (const NodeId w : kWriters)
      for (int b = 0; b < kBlocks; ++b)
        d.access(w, blockAddr(b), AccessType::Write);
  return d.finish();
}

void printTable(const char* title, const Result* rows, int n,
                double baselinePj) {
  std::printf("\n%s\n", title);
  std::printf("  %-13s %9s %10s %10s %10s %10s %10s %8s\n", "protocol",
              "l1Misses", "broadcasts", "linkFlits", "cache pJ", "noc pJ",
              "total pJ", "vs. inv");
  for (int i = 0; i < n; ++i) {
    const Result& r = rows[i];
    std::printf("  %-13s %9llu %10llu %10llu %10.0f %10.0f %10.0f %7.2fx\n",
                r.name, static_cast<unsigned long long>(r.l1Misses),
                static_cast<unsigned long long>(r.broadcasts),
                static_cast<unsigned long long>(r.linkFlits), r.cachePj,
                r.nocPj, r.totalPj(), r.totalPj() / baselinePj);
  }
}

}  // namespace

int main() {
  bench::banner(
      "Adaptive coherence — producer-consumer and migratory sharing under "
      "invalidate (MESI/MOESI), update (Dragon) and per-line adaptive "
      "(Hybrid-Adapt) snooping");
  const int rounds = bench::quickMode() ? 8 : 16;
  std::printf("(cold start, %d rounds, %d blocks, 1 producer / %d consumers"
              ")\n", rounds, kBlocks,
              static_cast<int>(sizeof kConsumers / sizeof kConsumers[0]));

  const Result pc[] = {
      producerConsumer(ProtocolKind::Mesi, rounds),
      producerConsumer(ProtocolKind::Moesi, rounds),
      producerConsumer(ProtocolKind::Dragon, rounds),
      producerConsumer(ProtocolKind::Adapt, rounds),
  };
  printTable("producer-consumer (writer 0; readers 5,10,15 re-read every "
             "round)", pc, 4, pc[1].totalPj());
  const Result mig[] = {
      migratory(ProtocolKind::Mesi, rounds),
      migratory(ProtocolKind::Moesi, rounds),
      migratory(ProtocolKind::Dragon, rounds),
      migratory(ProtocolKind::Adapt, rounds),
  };
  printTable("migratory (writers 0,5,10,15 take turns, no reads between)",
             mig, 4, mig[1].totalPj());

  const Result& pcInv = pc[1];     // MOESI — Adapt's own read side.
  const Result& pcUpd = pc[2];     // Dragon.
  const Result& pcAdapt = pc[3];
  const bool pcBracketPj = pcUpd.totalPj() < pcAdapt.totalPj() &&
                           pcAdapt.totalPj() < pcInv.totalPj();
  const bool pcBracketFlits = pcUpd.linkFlits < pcAdapt.linkFlits &&
                              pcAdapt.linkFlits < pcInv.linkFlits;
  const bool migTracksInvalidate = mig[3].totalPj() < mig[2].totalPj();

  std::printf(
      "\nbracket: producer-consumer Hybrid-Adapt between Dragon and MOESI "
      "— energy %s, traffic %s; migratory Hybrid-Adapt below Dragon — %s\n",
      pcBracketPj ? "yes" : "NO", pcBracketFlits ? "yes" : "NO",
      migTracksInvalidate ? "yes" : "NO");
  if (!pcBracketPj || !pcBracketFlits || !migTracksInvalidate) {
    std::printf("FAIL: adaptive policy did not land between the pure "
                "policies\n");
    return 1;
  }
  return 0;
}
