// Microbenchmark of the scale-out wrapper (DESIGN.md §14): how much host
// cost does running chips behind the ServerSystem boundary loop add over
// the untouched single-chip path? Three timed runs on the same small
// chip / workload:
//
//   single  chips=1, no churn — the legacy runExperiment() path
//   2-chip  chips=2, no churn — two federated chips, cross-chip dedup and
//           the inter-chip link live, but no lifecycle events
//   churn   chips=2 under a full lifecycle schedule (shutdown, live
//           migration, boot, CoW storm)
//
// Events/sec counts kernel events over wall clock, so if the wrapper were
// free the 2-chip run would match the single-chip rate (twice the events
// in twice the time). The ratio is an in-process A/B and machine
// independent; the exit gate flags a real regression (2-chip below 0.80x
// of single-chip). Results are written as JSON for the perf-smoke CI gate
// (path overridable via EECC_INTERCHIP_JSON, default micro_interchip.json).
//
//   $ ./build/bench/micro_interchip
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "check/fuzzer.h"
#include "common/atomic_file.h"
#include "common/json.h"
#include "core/experiment.h"

using namespace eecc;

namespace {

// Shutdown first: slots start full, so the migration and boot would be
// skipped otherwise (chip 1 holds VMs 4..7 under chip-major placement).
const char* kChurn =
    "shutdown@5000:vm=4;migrate@15000:vm=0:to=1;boot@35000:profile=jbb;"
    "storm@40000:vm=1:len=10000";

ExperimentConfig makeConfig(std::uint32_t chips, const char* churn,
                            Tick warmup, Tick window) {
  ExperimentConfig cfg;
  cfg.chip = fuzzChip();
  cfg.protocol = ProtocolKind::DiCo;
  cfg.workloadName = "apache4x16p";
  cfg.warmupCycles = warmup;
  cfg.windowCycles = window;
  cfg.scaleout.chips = chips;
  cfg.scaleout.churn = churn;
  return cfg;
}

struct Timed {
  double eps = 0.0;
  ExperimentResult result;
};

/// One timed experiment run; returns events/sec (executed kernel events
/// over wall clock) plus the result for the traffic printout.
Timed timedRun(const ExperimentConfig& cfg) {
  const bench::WallTimer timer;
  Timed t;
  t.result = runExperiment(cfg);
  const double secs = timer.seconds();
  t.eps = secs > 0.0 ? static_cast<double>(t.result.simEvents) / secs : 0.0;
  return t;
}

}  // namespace

int main() {
  const Tick warmup = bench::quickMode() ? 10'000 : 50'000;
  const Tick window = bench::quickMode() ? 60'000 : 200'000;

  const ExperimentConfig single = makeConfig(1, "", warmup, window);
  const ExperimentConfig twoChip = makeConfig(2, "", warmup, window);
  const ExperimentConfig churned = makeConfig(2, kChurn, warmup, window);

  std::printf("scale-out wrapper vs single-chip path (events/sec)\n");
  std::printf("workload apache4x16p on the fuzz-sized chip, warmup %llu, "
              "window %llu\n\n",
              static_cast<unsigned long long>(warmup),
              static_cast<unsigned long long>(window));

  // Warm once, then alternate configurations and keep each one's best
  // run: in-process repetitions speed up as the heap and branch
  // predictors settle, so a fixed order would favor whichever runs last.
  timedRun(single);
  Timed best1, best2, bestChurn;
  for (int rep = 0; rep < 2; ++rep) {
    const Timed t1 = timedRun(single);
    if (t1.eps > best1.eps) best1 = t1;
    const Timed t2 = timedRun(twoChip);
    if (t2.eps > best2.eps) best2 = t2;
    const Timed tc = timedRun(churned);
    if (tc.eps > bestChurn.eps) bestChurn = tc;
  }

  const double ratio = best1.eps > 0.0 ? best2.eps / best1.eps : 0.0;
  std::printf("%-24s %14s %12s\n", "configuration", "events (M/s)", "ratio");
  std::printf("%-24s %14.2f %11.2fx\n", "single-chip (legacy)",
              best1.eps / 1e6, 1.0);
  std::printf("%-24s %14.2f %11.2fx\n", "2-chip, no churn",
              best2.eps / 1e6, ratio);
  std::printf("%-24s %14.2f %11.2fx\n", "2-chip, full churn",
              bestChurn.eps / 1e6,
              best1.eps > 0.0 ? bestChurn.eps / best1.eps : 0.0);

  const ExperimentResult& c = bestChurn.result;
  std::printf("\nchurned run: churn=%llu  interchip msgs=%llu flits=%llu "
              "remote=%llu migrations=%llu lat=%.1f\n",
              static_cast<unsigned long long>(c.churnApplied),
              static_cast<unsigned long long>(c.interchip.messages),
              static_cast<unsigned long long>(c.interchip.flits),
              static_cast<unsigned long long>(c.interchip.remoteFetches),
              static_cast<unsigned long long>(c.interchip.migrations),
              c.interchip.latency.mean());

  // The 2-chip event mix differs slightly from single-chip (remote
  // fetches, cross-chip dedup), so ~1.0x is expected rather than exact;
  // below 0.80x the wrapper itself has regressed beyond noise.
  const bool slower = ratio < 0.80;
  std::printf("\nscale-out wrapper ratio: %.2fx %s\n", ratio,
              slower ? "(2-chip path SLOWER than single-chip gate)" : "");

  const char* jsonPath = std::getenv("EECC_INTERCHIP_JSON");
  if (jsonPath == nullptr) jsonPath = "micro_interchip.json";
  AtomicFile out(jsonPath);
  if (!out) return 1;
  JsonWriter w(out.get());
  w.beginObject();
  w.field("bench", "micro_interchip");
  w.field("workload", "apache4x16p");
  w.field("warmup_cycles", static_cast<std::uint64_t>(warmup));
  w.field("window_cycles", static_cast<std::uint64_t>(window));
  w.field("interchip_single_chip_events_per_sec", best1.eps);
  w.field("interchip_two_chip_events_per_sec", best2.eps);
  w.field("interchip_churn_events_per_sec", bestChurn.eps);
  w.field("interchip_wrapper_speedup", ratio);
  w.endObject();
  w.finish();
  if (!out.commit()) return 1;
  std::printf("wrote %s\n", jsonPath);
  return slower ? 1 : 0;
}
