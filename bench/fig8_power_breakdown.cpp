// Regenerates Figure 8: (a) cache dynamic power broken down by the event
// classes that cause it, and (b) network dynamic power broken down into
// link usage and routing — both normalized per workload to the directory.
// One parallel grid run feeds both sub-figures.
#include "bench_util.h"

using namespace eecc;

int main() {
  bench::banner(
      "Figure 8a — cache dynamic power breakdown (normalized to the "
      "directory's cache power)");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  const std::vector<std::string> workloads = profiles::allWorkloadNames();
  const std::size_t numKinds = allProtocolKinds().size();
  ExperimentRunner runner;
  const auto journal = bench::attachEnvJournal(runner);
  const std::vector<ExperimentResult> results =
      runner.runMany(bench::protocolGrid(workloads));

  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::printf("\n%s\n", workloads[w].c_str());
    std::printf("  %-15s %7s %7s %7s %7s %7s %8s\n", "protocol", "L1",
                "L1dir", "L2", "L2dir", "ptr$", "total");
    const double dirCachePj = results[w * numKinds].cachePj.total();
    for (std::size_t p = 0; p < numKinds; ++p) {
      const ExperimentResult& r = results[w * numKinds + p];
      std::printf("  %-15s %7.3f %7.3f %7.3f %7.3f %7.3f %8.3f\n",
                  protocolName(r.protocol), r.cachePj.l1Pj / dirCachePj,
                  r.cachePj.l1DirPj / dirCachePj,
                  r.cachePj.l2Pj / dirCachePj,
                  r.cachePj.l2DirPj / dirCachePj,
                  r.cachePj.pointerPj / dirCachePj,
                  r.cachePj.total() / dirCachePj);
    }
  }

  bench::banner(
      "Figure 8b — network dynamic power breakdown (normalized to the "
      "directory's network power)");
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::printf("\n%s\n", workloads[w].c_str());
    std::printf("  %-15s %9s %9s %9s %12s\n", "protocol", "links",
                "routing", "total", "broadcasts");
    const double dirNetPj = results[w * numKinds].nocPj.total();
    for (std::size_t p = 0; p < numKinds; ++p) {
      const ExperimentResult& r = results[w * numKinds + p];
      std::printf("  %-15s %9.3f %9.3f %9.3f %12llu\n",
                  protocolName(r.protocol), r.nocPj.linkPj / dirNetPj,
                  r.nocPj.routingPj / dirNetPj, r.nocPj.total() / dirNetPj,
                  static_cast<unsigned long long>(r.noc.broadcasts));
    }
  }
  std::printf(
      "\nPaper shape (8a): DiCo-family L1 energy exceeds the directory's "
      "(sharing codes ride in the L1 tags) while Providers/Arin L2 energy "
      "is lower (smaller L2 tags). (8b): DiCo-family link energy is below "
      "the directory; DiCo-Arin's broadcasts push its jbb network power "
      "back toward the directory.\n");
  return 0;
}
