// Regenerates Figure 8: (a) cache dynamic power broken down by the event
// classes that cause it, and (b) network dynamic power broken down into
// link usage and routing — both normalized per workload to the directory.
#include "bench_util.h"

using namespace eecc;

int main() {
  bench::banner(
      "Figure 8a — cache dynamic power breakdown (normalized to the "
      "directory's cache power)");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  // Keep results for 8b without re-simulating.
  struct Row {
    std::string workload;
    ProtocolKind kind;
    ExperimentResult r;
  };
  std::vector<Row> rows;

  for (const auto& workload : profiles::allWorkloadNames()) {
    std::printf("\n%s\n", workload.c_str());
    std::printf("  %-15s %7s %7s %7s %7s %7s %8s\n", "protocol", "L1",
                "L1dir", "L2", "L2dir", "ptr$", "total");
    double dirCachePj = 0.0;
    for (const ProtocolKind kind : bench::allProtocols()) {
      const auto r = runExperiment(bench::makeConfig(workload, kind));
      if (kind == ProtocolKind::Directory) dirCachePj = r.cachePj.total();
      std::printf("  %-15s %7.3f %7.3f %7.3f %7.3f %7.3f %8.3f\n",
                  protocolName(kind), r.cachePj.l1Pj / dirCachePj,
                  r.cachePj.l1DirPj / dirCachePj,
                  r.cachePj.l2Pj / dirCachePj,
                  r.cachePj.l2DirPj / dirCachePj,
                  r.cachePj.pointerPj / dirCachePj,
                  r.cachePj.total() / dirCachePj);
      rows.push_back({workload, kind, r});
    }
  }

  bench::banner(
      "Figure 8b — network dynamic power breakdown (normalized to the "
      "directory's network power)");
  std::string current;
  double dirNetPj = 0.0;
  for (const Row& row : rows) {
    if (row.workload != current) {
      current = row.workload;
      std::printf("\n%s\n", current.c_str());
      std::printf("  %-15s %9s %9s %9s %12s\n", "protocol", "links",
                  "routing", "total", "broadcasts");
    }
    if (row.kind == ProtocolKind::Directory)
      dirNetPj = row.r.nocPj.total();
    std::printf("  %-15s %9.3f %9.3f %9.3f %12llu\n",
                protocolName(row.kind), row.r.nocPj.linkPj / dirNetPj,
                row.r.nocPj.routingPj / dirNetPj,
                row.r.nocPj.total() / dirNetPj,
                static_cast<unsigned long long>(row.r.noc.broadcasts));
  }
  std::printf(
      "\nPaper shape (8a): DiCo-family L1 energy exceeds the directory's "
      "(sharing codes ride in the L1 tags) while Providers/Arin L2 energy "
      "is lower (smaller L2 tags). (8b): DiCo-family link energy is below "
      "the directory; DiCo-Arin's broadcasts push its jbb network power "
      "back toward the directory.\n");
  return 0;
}
