// Microbenchmark of the table-engine interpreter (DESIGN.md §15): the
// same MESI stable-state automaton is driven two ways over an identical
// deterministic event stream — once through ProtocolTable::run() with an
// inlined Ops adapter (how every protocol dispatches since the refactor)
// and once through a hand-written switch (the pre-refactor dispatch
// shape). Both sides mutate the same per-line state array and fold their
// actions into a checksum, so events/sec is an apples-to-apples measure
// of pure dispatch cost and the checksums double as a semantic
// cross-check.
//
// Results are printed and written as JSON for the perf-smoke CI gate
// (path overridable via EECC_TABLE_ENGINE_JSON, default
// micro_table_engine.json). The exit gate holds the refactor's promise:
// the interpreter must stay within 0.95x of the switch.
//
//   $ ./build/bench/micro_table_engine
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "common/atomic_file.h"
#include "common/json.h"
#include "protocols/mesi.h"
#include "protocols/table_engine.h"

using namespace eecc;

namespace {

constexpr std::size_t kLines = 1024;
constexpr std::uint8_t kS = 0, kE = 1, kM = 2;

/// Minimal adapter: actions fold into a checksum, guards are trivially
/// true (the MESI table is guard-free anyway), state writes hit the
/// shared line array — the same work the switch below does by hand.
struct BenchOps {
  std::uint8_t* state;
  std::uint64_t* checksum;
  bool guard(tbl::Guard) const { return true; }
  void setState(std::uint8_t s) { *state = s; }
  void act(tbl::Action a) {
    *checksum += static_cast<std::uint64_t>(a);
  }
};

/// The pre-refactor dispatch shape: the same automaton, hand-coded.
tbl::Outcome handDispatch(std::uint8_t& state, tbl::Event ev,
                          std::uint64_t& checksum) {
  const auto chg = [&checksum](tbl::Action a) {
    checksum += static_cast<std::uint64_t>(a);
  };
  switch (ev) {
    case tbl::Event::LocalRead:
      chg(tbl::Action::ChargeL1Read);
      chg(tbl::Action::Touch);
      chg(tbl::Action::RecordRead);
      return tbl::Outcome::Hit;
    case tbl::Event::LocalWrite:
      if (state == kS) return tbl::Outcome::Miss;
      state = kM;
      chg(tbl::Action::CommitWrite);
      chg(tbl::Action::ChargeL1Write);
      chg(tbl::Action::Touch);
      return tbl::Outcome::Hit;
    case tbl::Event::Replace:
      if (state == kM) chg(tbl::Action::WritebackData);
      chg(tbl::Action::Invalidate);
      return tbl::Outcome::Handled;
    case tbl::Event::Inval:
      chg(tbl::Action::Invalidate);
      return tbl::Outcome::Handled;
    case tbl::Event::SnoopRead:
      if (state == kS) return tbl::Outcome::Handled;
      if (state == kM) {
        state = kS;
        chg(tbl::Action::ChargeL1Read);
        chg(tbl::Action::SupplyData);
        chg(tbl::Action::WritebackData);
        return tbl::Outcome::Handled;
      }
      state = kS;
      chg(tbl::Action::ChargeL1Read);
      chg(tbl::Action::SupplyData);
      return tbl::Outcome::Handled;
    case tbl::Event::SnoopWrite:
      if (state != kS) {
        chg(tbl::Action::ChargeL1Read);
        chg(tbl::Action::SupplyData);
      }
      chg(tbl::Action::Invalidate);
      return tbl::Outcome::Handled;
  }
  return tbl::Outcome::Miss;
}

struct Stream {
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  std::uint64_t next() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  }
};

/// Both drivers re-insert evicted/missed lines the same way so the state
/// distributions stay identical (validated by the checksum comparison).
template <class Dispatch>
double timedRun(std::uint64_t events, Dispatch&& dispatch,
                std::uint64_t& checksum) {
  std::uint8_t state[kLines];
  for (std::size_t i = 0; i < kLines; ++i)
    state[i] = static_cast<std::uint8_t>(i % 3);
  Stream stream;
  checksum = 0;
  const bench::WallTimer timer;
  for (std::uint64_t n = 0; n < events; ++n) {
    const std::uint64_t r = stream.next();
    const std::size_t line = static_cast<std::size_t>(r >> 32) % kLines;
    const auto ev = static_cast<tbl::Event>(r % tbl::kEventCount);
    const tbl::Outcome out = dispatch(state[line], ev, checksum);
    if (out == tbl::Outcome::Miss) state[line] = kM;  // miss "completes"
    checksum += static_cast<std::uint64_t>(out);
  }
  const double secs = timer.seconds();
  return secs > 0.0 ? static_cast<double>(events) / secs : 0.0;
}

}  // namespace

int main() {
  const std::uint64_t events = bench::quickMode() ? 5'000'000 : 50'000'000;
  const tbl::ProtocolTable table = MesiProtocol::makeStableTable();

  std::printf("table-engine interpreter vs hand-written switch "
              "(%llu events, %zu lines)\n\n",
              static_cast<unsigned long long>(events), kLines);

  // Alternate and keep each side's best to cancel warm-up drift.
  double tableEps = 0.0, switchEps = 0.0;
  std::uint64_t tableSum = 0, switchSum = 0;
  const auto runTable = [&table](std::uint8_t& st, tbl::Event ev,
                                 std::uint64_t& sum) {
    return table.run(st, ev, BenchOps{&st, &sum});
  };
  timedRun(events / 4, runTable, tableSum);  // warm
  for (int rep = 0; rep < 3; ++rep) {
    switchEps = std::max(switchEps, timedRun(events, handDispatch, switchSum));
    tableEps = std::max(tableEps, timedRun(events, runTable, tableSum));
  }
  if (tableSum != switchSum) {
    std::fprintf(stderr,
                 "checksum mismatch: interpreter %llu vs switch %llu — the "
                 "two dispatchers disagree on the automaton\n",
                 static_cast<unsigned long long>(tableSum),
                 static_cast<unsigned long long>(switchSum));
    return 1;
  }

  const double speedup = switchEps > 0.0 ? tableEps / switchEps : 0.0;
  std::printf("%-24s %14.2f M events/s\n", "hand-written switch",
              switchEps / 1e6);
  std::printf("%-24s %14.2f M events/s\n", "table interpreter",
              tableEps / 1e6);
  std::printf("%-24s %13.2fx %s\n\n", "interpreter / switch", speedup,
              speedup < 0.95 ? "(interpreter SLOWER than the gate allows)"
                             : "");

  const char* jsonPath = std::getenv("EECC_TABLE_ENGINE_JSON");
  if (jsonPath == nullptr) jsonPath = "micro_table_engine.json";
  AtomicFile out(jsonPath);
  if (!out) return 1;
  JsonWriter w(out.get());
  w.beginObject();
  w.field("bench", "micro_table_engine");
  w.field("events", events);
  w.field("table_engine_switch_events_per_sec", switchEps);
  w.field("table_engine_interpreter_events_per_sec", tableEps);
  w.field("table_engine_interpreter_speedup", speedup);
  w.endObject();
  w.finish();
  if (!out.commit()) return 1;
  std::printf("wrote %s\n", jsonPath);
  return speedup < 0.95 ? 1 : 0;
}
