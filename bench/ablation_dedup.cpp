// Ablation of hypervisor memory deduplication (Section I, claim from [6]):
// with dedup off, every VM gets private copies of its shared-content
// pages, so the same logical data occupies ~25% more physical memory and
// puts more pressure on the shared L2. With dedup on, one copy serves all
// VMs — the scenario the provider mechanism targets.
#include "bench_util.h"

using namespace eecc;

int main() {
  bench::banner("Ablation — memory deduplication on/off");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  const std::vector<std::string> workloads = {"apache4x16p", "jbb4x16p"};
  const ProtocolKind kinds[] = {ProtocolKind::Directory,
                                ProtocolKind::DiCoProviders,
                                ProtocolKind::DiCoArin};
  std::vector<ExperimentConfig> cfgs;
  for (const std::string& workload : workloads)
    for (const ProtocolKind kind : kinds) {
      auto cfg = bench::makeConfig(workload, kind);
      cfgs.push_back(cfg);  // dedup on
      cfg.dedupEnabled = false;
      cfgs.push_back(cfg);  // dedup off
    }

  ExperimentRunner runner;
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);

  std::size_t i = 0;
  for (const std::string& workload : workloads) {
    std::printf("\n%s\n", workload.c_str());
    std::printf("  %-15s %10s %10s %10s %10s %12s %12s\n", "protocol",
                "perf", "perf-off", "l2miss", "l2miss-off", "saved-mem",
                "prov-res");
    for (const ProtocolKind kind : kinds) {
      const ExperimentResult& on = results[i++];
      const ExperimentResult& off = results[i++];
      const double provFrac =
          on.stats.l1Misses()
              ? 100.0 * static_cast<double>(
                            on.stats.providerResolvedMisses) /
                    static_cast<double>(on.stats.l1Misses())
              : 0.0;
      std::printf("  %-15s %10.3f %10.3f %9.1f%% %9.1f%% %11.1f%% %11.1f%%\n",
                  protocolName(kind), on.throughput, off.throughput,
                  100.0 * on.stats.l2MissRate(),
                  100.0 * off.stats.l2MissRate(),
                  100.0 * on.dedupSavedFraction, provFrac);
    }
  }
  std::printf(
      "\nExpected: deduplication saves ~15-37%% of memory (Table IV "
      "column) and relieves L2 pressure (lower L2 miss rate), which [6] "
      "reports as a ~6.6%% performance gain for a flat directory; the "
      "provider mechanisms specifically exploit the surviving single "
      "copy.\n");
  return 0;
}
