// Regenerates Table VII: storage overhead of the four protocols for
// 64..1024 cores and every power-of-two area count — the scalability
// argument of Section V-B.
#include "bench_util.h"
#include "energy/storage_model.h"

using namespace eecc;

int main() {
  bench::banner(
      "Table VII — storage overhead vs. number of cores and areas");

  for (const std::uint32_t cores : {64u, 128u, 256u, 512u, 1024u}) {
    std::printf("\n%u cores\n%-15s", cores, "areas:");
    std::vector<std::uint32_t> areaCounts;
    for (std::uint32_t a = 2; a <= cores; a *= 2) areaCounts.push_back(a);
    for (const std::uint32_t a : areaCounts) std::printf("%9u", a);
    std::printf("\n");
    for (const ProtocolKind kind : allProtocolKinds()) {
      std::printf("%-15s", protocolName(kind));
      for (const std::uint32_t areas : areaCounts) {
        ChipParams p;
        p.tiles = cores;
        p.areas = areas;
        std::printf("%8.1f%%", storageFor(kind, p).overheadFraction() * 100);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nShape checks (paper, Section V-B): the directory/DiCo overheads "
      "are area-independent and explode with the core count; "
      "DiCo-Providers grows with the area count; DiCo-Arin is minimized "
      "by intermediate area counts and stays far below the full map.\n");

  // Extension (Section II-A): the paper notes its proposals compose with
  // alternative sharing codes. Overheads for a 256-core, 16-area chip:
  bench::banner(
      "Extension — alternative sharing codes (256 cores, 16 areas)");
  const SharingCode codes[] = {SharingCode::FullMap,
                               SharingCode::CoarseVector2,
                               SharingCode::CoarseVector4,
                               SharingCode::LimitedPtr4};
  const char* codeNames[] = {"full-map", "coarse/2", "coarse/4",
                             "4-pointer"};
  std::printf("%-15s", "code:");
  for (const char* n : codeNames) std::printf("%12s", n);
  std::printf("\n");
  for (const ProtocolKind kind : allProtocolKinds()) {
    std::printf("%-15s", protocolName(kind));
    for (const SharingCode code : codes) {
      ChipParams p;
      p.tiles = 256;
      p.areas = 16;
      std::printf("%11.1f%%",
                  storageFor(kind, p, code).overheadFraction() * 100);
    }
    std::printf("\n");
  }
  std::printf(
      "\nThe area division composes with every code: DiCo-Providers/Arin "
      "apply the code to a 16-tile map instead of a 256-tile one, so the "
      "absolute win of coarser codes shrinks while theirs remains.\n");
  return 0;
}
