// Microbenchmark of the miss-path fast lane (DESIGN.md §13): each protocol
// runs the same miss-heavy experiment twice — once through the legacy
// per-message NoC delivery path (EECC_NOC_UNBATCHED=1, the pre-fast-lane
// scheduling shape) and once through the batched delivery ring with cached
// multicast trees and the arena-backed line-serialization table. The two
// runs produce bit-identical simulation results (tests/noc_batch_test.cpp
// pins that), so events/sec is an apples-to-apples measure of per-event
// host cost on the protocol/NoC path.
//
// Results are printed as a table and written as JSON (for the perf-smoke
// CI gate; path overridable via EECC_MISS_PATH_JSON, default
// micro_miss_path.json). Only broadcasts ride the delivery ring (see
// network.h), so unicast-only protocols measure ~1.0x by design and the
// broadcast-heavy DiCo-Arin carries the speedup; the exit gate therefore
// flags only a real regression (any protocol below 0.95x).
//
//   $ ./build/bench/micro_miss_path
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/atomic_file.h"
#include "common/json.h"
#include "core/experiment.h"

using namespace eecc;

namespace {

struct Row {
  std::string name;
  double legacyEps = 0.0;
  double fastEps = 0.0;
  double speedup() const { return legacyEps > 0.0 ? fastEps / legacyEps : 0.0; }
};

/// One timed experiment run; returns events/sec (executed kernel events
/// over wall clock — identical event counts on both paths).
double timedRun(const ExperimentConfig& cfg) {
  const bench::WallTimer timer;
  const ExperimentResult r = runExperiment(cfg);
  const double secs = timer.seconds();
  return secs > 0.0 ? static_cast<double>(r.simEvents) / secs : 0.0;
}

std::string jsonKey(std::string name) {
  for (char& c : name) {
    if (c == '-') c = '_';
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return name;
}

}  // namespace

int main() {
  // jbb4x16p is the miss-heavy outlier the fast lane targets (the
  // DiCo-Arin broadcast storm); the short window keeps the bench under a
  // minute while still executing millions of miss-path events.
  const Tick warmup = bench::quickMode() ? 20'000 : 100'000;
  const Tick window = bench::quickMode() ? 20'000 : 100'000;

  std::printf("miss-path fast lane vs legacy delivery (events/sec)\n");
  std::printf("workload jbb4x16p, warmup %llu, window %llu\n\n",
              static_cast<unsigned long long>(warmup),
              static_cast<unsigned long long>(window));
  std::printf("%-16s %14s %14s %9s\n", "protocol", "legacy (M/s)",
              "fast (M/s)", "speedup");

  std::vector<Row> rows;
  for (const ProtocolKind kind : allProtocolKinds()) {
    ExperimentConfig cfg;
    cfg.workloadName = "jbb4x16p";
    cfg.protocol = kind;
    cfg.warmupCycles = warmup;
    cfg.windowCycles = window;

    // Warm once, then alternate legacy/fast and keep each path's best
    // run. In-process repetitions of the same experiment speed up as the
    // heap and branch predictors settle, so a fixed measurement order
    // would systematically favor whichever path runs later — alternation
    // plus best-of-N cancels that drift. The env var is read in the
    // Network constructor, so toggling between runs selects the path.
    ::unsetenv("EECC_NOC_UNBATCHED");
    timedRun(cfg);
    double fastEps = 0.0;
    double legacyEps = 0.0;
    for (int rep = 0; rep < 2; ++rep) {
      ::setenv("EECC_NOC_UNBATCHED", "1", 1);
      legacyEps = std::max(legacyEps, timedRun(cfg));
      ::unsetenv("EECC_NOC_UNBATCHED");
      fastEps = std::max(fastEps, timedRun(cfg));
    }

    rows.push_back({protocolName(kind), legacyEps, fastEps});
    std::printf("%-16s %14.2f %14.2f %8.2fx\n", protocolName(kind),
                legacyEps / 1e6, fastEps / 1e6, rows.back().speedup());
  }

  double logSum = 0.0;
  bool anySlower = false;
  for (const Row& r : rows) {
    logSum += std::log(r.speedup());
    // Unicast-only protocols are expected at ~1.0x (both paths are one
    // allocation-free event per message); below 0.95x means the fast
    // lane regressed for real, beyond run-to-run noise.
    if (r.speedup() < 0.95) anySlower = true;
  }
  const double geomean = std::exp(logSum / static_cast<double>(rows.size()));
  std::printf("\ngeomean speedup: %.2fx %s\n", geomean,
              anySlower ? "(fast lane SLOWER than legacy on some protocol)"
                        : "");

  const char* jsonPath = std::getenv("EECC_MISS_PATH_JSON");
  if (jsonPath == nullptr) jsonPath = "micro_miss_path.json";
  AtomicFile out(jsonPath);
  if (!out) return 1;
  JsonWriter w(out.get());
  w.beginObject();
  w.field("bench", "micro_miss_path");
  w.field("workload", "jbb4x16p");
  w.field("warmup_cycles", static_cast<std::uint64_t>(warmup));
  w.field("window_cycles", static_cast<std::uint64_t>(window));
  for (const Row& r : rows) {
    const std::string key = jsonKey(r.name);
    w.field("miss_path_" + key + "_events_per_sec", r.fastEps);
    w.field("miss_path_" + key + "_legacy_events_per_sec", r.legacyEps);
  }
  w.field("geomean_speedup", geomean);
  w.endObject();
  w.finish();
  if (!out.commit()) return 1;
  std::printf("wrote %s\n", jsonPath);
  return anySlower ? 1 : 0;
}
