// Regenerates Figure 7: total dynamic power consumption by protocol for
// every Table IV workload, normalized to the *cache* dynamic power of the
// directory protocol (as in the paper), broken down into cache, network
// links and network routing. The grid runs on the EECC_JOBS-wide pool.
#include "bench_util.h"

using namespace eecc;

int main() {
  bench::banner(
      "Figure 7 — total dynamic power by protocol, normalized to the "
      "directory's cache power (cache + links + routing)");
  if (bench::quickMode()) std::printf("(EECC_QUICK: reduced windows)\n");

  const std::vector<std::string> workloads = profiles::allWorkloadNames();
  const std::size_t numKinds = allProtocolKinds().size();
  ExperimentRunner runner;
  const auto journal = bench::attachEnvJournal(runner);
  const std::vector<ExperimentResult> results =
      runner.runMany(bench::protocolGrid(workloads));

  for (std::size_t w = 0; w < workloads.size(); ++w) {
    std::printf("\n%s\n", workloads[w].c_str());
    std::printf("  %-15s %8s %8s %8s %8s %12s\n", "protocol", "cache",
                "links", "routing", "total", "vs. dir");
    const double dirCacheMw = results[w * numKinds].cacheMw;
    const double dirTotal = results[w * numKinds].totalDynamicMw();
    for (std::size_t p = 0; p < numKinds; ++p) {
      const ExperimentResult& r = results[w * numKinds + p];
      std::printf("  %-15s %8.2f %8.2f %8.2f %8.2f %+10.1f%%\n",
                  protocolName(r.protocol), r.cacheMw / dirCacheMw,
                  r.linkMw / dirCacheMw, r.routingMw / dirCacheMw,
                  r.totalDynamicMw() / dirCacheMw,
                  100.0 * (r.totalDynamicMw() / dirTotal - 1.0));
    }
  }
  std::printf(
      "\nPaper shape: every workload has DiCo-Providers/DiCo-Arin at or "
      "below the directory; savings are largest in the L2-power-dominated "
      "workloads (apache, jbb) and small in the L1-dominated ones "
      "(radix, lu, volrend, tomcatv). JBB is DiCo-Arin's worst case "
      "(broadcast invalidations).\n");
  return 0;
}
