// Microbenchmark guard for the miss-path flight recorder and the
// simulator self-profiler (DESIGN.md §16): both must be zero-cost when
// detached. With neither attached the protocol hot paths pay exactly one
// untaken, [[unlikely]]-hinted null-pointer branch per stage hook, and
// every ProfScope costs one relaxed atomic load — the same pattern
// micro_obs_overhead gates for the trace sink. The gated configuration
// is a *paused* attached recorder: every hook call crosses into the
// recorder but begin() records nothing, so marks and ends degrade to
// the unknown-block fast path (one empty-table lookup) — dispatch with
// no recording behind it, the measurable upper bound on what the
// detached branches could possibly cost and the analogue of
// micro_obs_overhead's null sink. The live-recorder and
// self-profiler-installed configurations are reported for information
// only; they are opt-in diagnostic modes, not gates.
//
// Results are printed as a table and written as JSON for the perf-smoke
// CI gate (path overridable via EECC_STAGE_TRACE_JSON, default
// micro_stage_trace.json).
//
//   $ ./build/bench/micro_stage_trace        (EECC_QUICK=1 for a smoke run)
//
// Exits nonzero when paused-recorder dispatch drops below 0.97x
// detached.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "common/atomic_file.h"
#include "common/json.h"
#include "core/cmp_system.h"
#include "obs/selfprof.h"
#include "obs/stage.h"

using namespace eecc;
using namespace eecc::bench;

namespace {

enum class Mode { Detached, Paused, StageAttached, SelfProf };

CmpConfig benchChip() {
  CmpConfig cfg;
  cfg.meshWidth = 4;
  cfg.meshHeight = 4;
  cfg.numAreas = 4;
  cfg.l1 = CacheGeometry{128, 4, 1, 2};
  cfg.l2 = CacheGeometry{512, 8, 2, 3};
  cfg.l1cEntries = 128;
  cfg.l2cEntries = 128;
  cfg.dirCacheEntries = 128;
  cfg.numMemControllers = 4;
  return cfg;
}

double eventsPerSec(Mode mode, Tick cycles) {
  const CmpConfig cfg = benchChip();
  const VmLayout layout = VmLayout::matched(cfg, 4);
  // DiCo-Arin on purpose: its miss path touches the most stage hooks
  // (request, service, fanout, ack-wait, data-return and memory-fetch
  // marks all fire), so the attached measurement is the worst case.
  CmpSystem system(cfg, ProtocolKind::DiCoArin, layout,
                   profiles::uniform4(profiles::apache()), /*seed=*/7);
  StageRecorder recorder;
  SelfProfiler profiler;
  if (mode == Mode::Paused) {
    recorder.setPaused(true);
    system.attachStageRecorder(&recorder);
  } else if (mode == Mode::StageAttached) {
    system.attachStageRecorder(&recorder);
  } else if (mode == Mode::SelfProf) {
    profiler.install();
  }
  const WallTimer timer;
  system.run(cycles);
  const double secs = timer.seconds();
  if (mode == Mode::SelfProf) profiler.uninstall();
  return secs > 0.0
             ? static_cast<double>(system.events().executedEvents()) / secs
             : 0.0;
}

/// Best-of-3 to damp scheduler noise (the gate compares two same-process
/// measurements, so systematic machine speed cancels out).
double bestOf3(Mode mode, Tick cycles) {
  double best = 0.0;
  for (int i = 0; i < 3; ++i) {
    const double r = eventsPerSec(mode, cycles);
    if (r > best) best = r;
  }
  return best;
}

}  // namespace

int main() {
  const Tick cycles = quickMode() ? 200'000 : 2'000'000;
  constexpr double kGate = 0.97;

  eventsPerSec(Mode::Detached, cycles / 4);  // warm the allocator/caches

  const double detached = bestOf3(Mode::Detached, cycles);
  const double paused = bestOf3(Mode::Paused, cycles);
  const double stageAttached = bestOf3(Mode::StageAttached, cycles);
  const double selfprof = bestOf3(Mode::SelfProf, cycles);

  std::printf("flight-recorder overhead (events/sec, best of 3)\n\n");
  std::printf("%-26s %12.2f M/s  %6.3fx\n", "all detached",
              detached / 1e6, 1.0);
  std::printf("%-26s %12.2f M/s  %6.3fx\n", "paused recorder (dispatch)",
              paused / 1e6, paused / detached);
  std::printf("%-26s %12.2f M/s  %6.3fx\n", "stage recorder attached",
              stageAttached / 1e6, stageAttached / detached);
  std::printf("%-26s %12.2f M/s  %6.3fx\n", "self-profiler installed",
              selfprof / 1e6, selfprof / detached);

  const double ratio = paused / detached;
  std::printf("\ngate: paused-dispatch/detached = %.3f %s %.2fx\n", ratio,
              ratio >= kGate ? ">=" : "< BELOW", kGate);

  const char* jsonPath = std::getenv("EECC_STAGE_TRACE_JSON");
  if (jsonPath == nullptr) jsonPath = "micro_stage_trace.json";
  AtomicFile out(jsonPath);
  if (!out) return 1;
  JsonWriter w(out.get());
  w.beginObject();
  w.field("bench", "micro_stage_trace");
  w.field("window_cycles", static_cast<std::uint64_t>(cycles));
  w.field("stage_trace_detached_events_per_sec", detached);
  w.field("stage_trace_paused_events_per_sec", paused);
  w.field("stage_trace_paused_speedup", ratio);
  w.field("stage_trace_attached_events_per_sec", stageAttached);
  w.field("stage_trace_attached_speedup", stageAttached / detached);
  w.field("stage_trace_selfprof_events_per_sec", selfprof);
  w.field("stage_trace_selfprof_speedup", selfprof / detached);
  w.endObject();
  w.finish();
  if (!out.commit()) return 1;
  std::printf("wrote %s\n", jsonPath);
  return ratio >= kGate ? 0 : 1;
}
