// Regenerates Table VI: leakage power of the caches per tile, from the
// CactiLite model calibrated once on the Directory row (239 mW total /
// 37 mW tags); every other cell is a prediction of the model.
#include "bench_util.h"
#include "energy/energy_model.h"

using namespace eecc;

int main() {
  bench::banner("Table VI — leakage power of the caches per tile (32 nm)");

  struct PaperCell {
    double total;
    double tags;
  };
  const PaperCell paper[] = {{239, 37}, {241, 39}, {222, 20}, {219, 17}};

  std::printf("%-15s %14s %14s %16s %16s\n", "Protocol", "Total (mW)",
              "paper", "Tags (mW)", "paper");
  const ChipParams chip;
  const double dirTotal =
      EnergyModel(ProtocolKind::Directory, chip).totalLeakagePerTileMw();
  const double dirTags =
      EnergyModel(ProtocolKind::Directory, chip).tagLeakagePerTileMw();
  int i = 0;
  for (const ProtocolKind kind : allProtocolKinds()) {
    const EnergyModel m(kind, chip);
    const double total = m.totalLeakagePerTileMw();
    const double tags = m.tagLeakagePerTileMw();
    std::printf("%-15s %9.1f (%+3.0f%%) %8.0f %11.1f (%+3.0f%%) %8.0f\n",
                protocolName(kind), total,
                100.0 * (total / dirTotal - 1.0), paper[i].total, tags,
                100.0 * (tags / dirTags - 1.0), paper[i].tags);
    ++i;
  }
  std::printf(
      "\nPaper headline: static (tag) power reduced by 45%% "
      "(DiCo-Providers) and 54%% (DiCo-Arin); the linear-leakage model "
      "reproduces %.0f%% and %.0f%%.\n",
      100.0 * (1.0 - EnergyModel(ProtocolKind::DiCoProviders, chip)
                             .tagLeakagePerTileMw() /
                         dirTags),
      100.0 * (1.0 - EnergyModel(ProtocolKind::DiCoArin, chip)
                             .tagLeakagePerTileMw() /
                         dirTags));
  return 0;
}
