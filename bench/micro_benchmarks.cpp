// Google-benchmark microbenchmarks of the simulator's hot primitives:
// event-queue throughput, XY routing, cache-array lookups, NodeSet
// operations, and end-to-end coherence transactions per second.
#include <benchmark/benchmark.h>

#include "cache/cache_array.h"
#include "cache/node_set.h"
#include "common/rng.h"
#include "noc/mesh.h"
#include "protocols/protocol.h"
#include "sim/event_queue.h"

namespace eecc {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int sink = 0;
    for (int i = 0; i < 1000; ++i)
      q.scheduleAt(static_cast<Tick>(i % 97), [&sink] { ++sink; });
    q.runToCompletion();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_MeshRoute(benchmark::State& state) {
  const MeshTopology mesh(8, 8);
  Rng rng(1);
  for (auto _ : state) {
    const auto a = static_cast<NodeId>(rng.below(64));
    const auto b = static_cast<NodeId>(rng.below(64));
    benchmark::DoNotOptimize(mesh.route(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshRoute);

void BM_MeshBroadcastTree(benchmark::State& state) {
  const MeshTopology mesh(8, 8);
  Rng rng(2);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        mesh.broadcastTree(static_cast<NodeId>(rng.below(64))));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeshBroadcastTree);

struct BenchLine : CacheLineBase {
  std::uint64_t payload = 0;
};

void BM_CacheArrayLookup(benchmark::State& state) {
  CacheArray<BenchLine> cache(2048, 4);
  Rng rng(3);
  for (std::uint64_t i = 0; i < 2048; ++i) {
    const Addr block = i * kBlockBytes;
    BenchLine* v = cache.selectVictim(block, nullptr);
    cache.install(*v, block);
  }
  for (auto _ : state) {
    const Addr block = rng.below(4096) * kBlockBytes;
    benchmark::DoNotOptimize(cache.find(block));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheArrayLookup);

void BM_NodeSetOps(benchmark::State& state) {
  Rng rng(4);
  for (auto _ : state) {
    NodeSet set;
    for (int i = 0; i < 16; ++i)
      set.insert(static_cast<NodeId>(rng.below(64)));
    int sum = 0;
    set.forEach([&sum](NodeId n) { sum += n; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_NodeSetOps);

// End-to-end: coherence transactions per second through the full
// event-driven stack (small 4x4 chip so construction stays cheap).
void BM_ProtocolTransactions(benchmark::State& state) {
  const auto kind = static_cast<ProtocolKind>(state.range(0));
  CmpConfig cfg;
  cfg.meshWidth = 4;
  cfg.meshHeight = 4;
  cfg.numAreas = 4;
  cfg.l1 = CacheGeometry{256, 4, 1, 2};
  cfg.l2 = CacheGeometry{1024, 8, 2, 3};
  cfg.l1cEntries = 256;
  cfg.l2cEntries = 256;
  cfg.dirCacheEntries = 256;
  cfg.numMemControllers = 4;
  EventQueue events;
  MeshTopology topo(4, 4);
  Network net(events, topo, cfg.net);
  auto proto = makeProtocol(kind, events, net, cfg);
  Rng rng(5);
  std::uint64_t ops = 0;
  for (auto _ : state) {
    const auto tile = static_cast<NodeId>(rng.below(16));
    const Addr block = rng.below(512) * kBlockBytes;
    proto->access(tile, block,
                  rng.chance(0.3) ? AccessType::Write : AccessType::Read,
                  [] {});
    events.runToCompletion();
    ++ops;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.SetLabel(protocolName(kind));
}
BENCHMARK(BM_ProtocolTransactions)->DenseRange(0, 3);

}  // namespace
}  // namespace eecc

BENCHMARK_MAIN();
