// Bit-identical ExperimentResult comparison, shared by runner_test (the
// parallel-equals-sequential contract) and fault_tolerance_test (journal
// splice and retry must reproduce the same bits).
//
// Doubles compared with EXPECT_EQ on purpose — these paths must produce
// the *same bits*, not merely close values. `restored` is deliberately
// not compared: it is provenance metadata and differs between a live run
// and its journal-spliced twin.
#pragma once

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace eecc {

inline void expectAccumulatorEq(const Accumulator& a, const Accumulator& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum(), b.sum());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
  EXPECT_EQ(a.variance(), b.variance());
}

inline void expectResultsIdentical(const ExperimentResult& a,
                                   const ExperimentResult& b) {
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.throughput, b.throughput);
  EXPECT_EQ(a.simEvents, b.simEvents);

  const ProtocolStats& s = a.stats;
  const ProtocolStats& t = b.stats;
  EXPECT_EQ(s.reads, t.reads);
  EXPECT_EQ(s.writes, t.writes);
  EXPECT_EQ(s.l1ReadHits, t.l1ReadHits);
  EXPECT_EQ(s.l1WriteHits, t.l1WriteHits);
  EXPECT_EQ(s.readMisses, t.readMisses);
  EXPECT_EQ(s.writeMisses, t.writeMisses);
  EXPECT_EQ(s.upgrades, t.upgrades);
  EXPECT_EQ(s.l2DataHits, t.l2DataHits);
  EXPECT_EQ(s.memoryFetches, t.memoryFetches);
  EXPECT_EQ(s.invalidationsSent, t.invalidationsSent);
  EXPECT_EQ(s.broadcastInvalidations, t.broadcastInvalidations);
  EXPECT_EQ(s.ownershipTransfers, t.ownershipTransfers);
  EXPECT_EQ(s.providershipTransfers, t.providershipTransfers);
  EXPECT_EQ(s.hintMessages, t.hintMessages);
  EXPECT_EQ(s.providerResolvedMisses, t.providerResolvedMisses);
  EXPECT_EQ(s.writebacks, t.writebacks);
  EXPECT_EQ(s.l2Evictions, t.l2Evictions);
  EXPECT_EQ(s.dirEvictionInvalidations, t.dirEvictionInvalidations);
  for (std::size_t c = 0; c < static_cast<std::size_t>(MissClass::kCount);
       ++c) {
    EXPECT_EQ(s.missByClass[c], t.missByClass[c]);
    expectAccumulatorEq(s.latencyByClass[c], t.latencyByClass[c]);
    expectAccumulatorEq(s.linksByClass[c], t.linksByClass[c]);
  }
  expectAccumulatorEq(s.missLatency, t.missLatency);

  EXPECT_EQ(a.noc.messages, b.noc.messages);
  EXPECT_EQ(a.noc.broadcasts, b.noc.broadcasts);
  EXPECT_EQ(a.noc.routings, b.noc.routings);
  EXPECT_EQ(a.noc.linkFlits, b.noc.linkFlits);
  EXPECT_EQ(a.noc.linksTraversed, b.noc.linksTraversed);
  expectAccumulatorEq(a.noc.unicastLatency, b.noc.unicastLatency);
  expectAccumulatorEq(a.noc.contentionWait, b.noc.contentionWait);

  // Energy, down to the picojoule breakdowns.
  EXPECT_EQ(a.cachePj.l1Pj, b.cachePj.l1Pj);
  EXPECT_EQ(a.cachePj.l1DirPj, b.cachePj.l1DirPj);
  EXPECT_EQ(a.cachePj.l2Pj, b.cachePj.l2Pj);
  EXPECT_EQ(a.cachePj.l2DirPj, b.cachePj.l2DirPj);
  EXPECT_EQ(a.cachePj.pointerPj, b.cachePj.pointerPj);
  EXPECT_EQ(a.nocPj.routingPj, b.nocPj.routingPj);
  EXPECT_EQ(a.nocPj.linkPj, b.nocPj.linkPj);
  EXPECT_EQ(a.cacheMw, b.cacheMw);
  EXPECT_EQ(a.linkMw, b.linkMw);
  EXPECT_EQ(a.routingMw, b.routingMw);
  EXPECT_EQ(a.dedupSavedFraction, b.dedupSavedFraction);

  // Scale-out runs: chip count, churn and the inter-chip link.
  EXPECT_EQ(a.chips, b.chips);
  EXPECT_EQ(a.churnApplied, b.churnApplied);
  EXPECT_EQ(a.interchip.messages, b.interchip.messages);
  EXPECT_EQ(a.interchip.dataMessages, b.interchip.dataMessages);
  EXPECT_EQ(a.interchip.flits, b.interchip.flits);
  EXPECT_EQ(a.interchip.flitHops, b.interchip.flitHops);
  EXPECT_EQ(a.interchip.remoteFetches, b.interchip.remoteFetches);
  EXPECT_EQ(a.interchip.migrations, b.interchip.migrations);
  EXPECT_EQ(a.interchip.migrationPages, b.interchip.migrationPages);
  expectAccumulatorEq(a.interchip.latency, b.interchip.latency);
  expectAccumulatorEq(a.interchip.wait, b.interchip.wait);
  EXPECT_EQ(a.interchipPj, b.interchipPj);
  EXPECT_EQ(a.interchipMw, b.interchipMw);

  // Metric snapshots, name for name and bit for bit — the stage-recorder
  // decomposition ("stage.*") and the trace-ring health counters ride
  // this. The self-profiler fields (selfprof, selfprofWallNs) are
  // wall-clock measurements of the *simulator*, not the simulation, and
  // are deliberately never compared (DESIGN.md §16).
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    const MetricRegistry::Sample& ma = a.metrics[i];
    const MetricRegistry::Sample& mb = b.metrics[i];
    ASSERT_EQ(ma.name, mb.name);
    EXPECT_EQ(ma.kind, mb.kind) << ma.name;
    EXPECT_EQ(ma.u64, mb.u64) << ma.name;
    EXPECT_EQ(ma.f64, mb.f64) << ma.name;
  }
}

}  // namespace eecc
