// DiCo-specific behaviour: ownership migration, L1C$ prediction, two-hop
// misses, owner-side invalidation, L2C$ precision.
#include <gtest/gtest.h>

#include "protocol_harness.h"
#include "protocols/dico.h"

namespace eecc {
namespace {

using testutil::Harness;
using testutil::smallConfig;

constexpr Addr kB = 5 * kBlockBytes;

DiCoProtocol& dico(Harness& h) {
  return dynamic_cast<DiCoProtocol&>(h.proto());
}

TEST(DiCo, ReadFromMemoryGrantsOwnership) {
  Harness h(ProtocolKind::DiCo);
  h.read(3, kB);
  EXPECT_EQ(dico(h).l1Line(3, kB).state, 'E');
  EXPECT_EQ(dico(h).l2cOwner(kB), 3);
}

TEST(DiCo, OwnerServesSecondReaderInTwoHops) {
  Harness h(ProtocolKind::DiCo);
  h.read(3, kB);   // 3 becomes owner
  h.read(7, kB);   // 7 reads: home forwards to owner
  EXPECT_EQ(dico(h).l1Line(3, kB).state, 'O');
  EXPECT_EQ(dico(h).l1Line(7, kB).state, 'S');
  EXPECT_EQ(dico(h).l1Line(3, kB).sharerCount, 1);
  EXPECT_EQ(h.proto().stats().missCount(MissClass::UnpredOwner), 1u);
}

TEST(DiCo, PredictionResolvesMissWithoutHome) {
  Harness h(ProtocolKind::DiCo);
  h.read(3, kB);
  h.read(7, kB);   // 7 learns supplier = 3 from the data message
  // Force 7's line out by filling its set, keeping the L1C$ entry.
  // Simpler: write from 3 invalidates 7 and tells it the new owner.
  // The owner upgrade itself counts as a PredOwnerHit-resolved miss
  // (the requestor is the ordering point), and 7's re-read predicts the
  // new owner directly: two prediction-resolved misses total.
  h.write(3, kB);  // owner upgrade; 7 invalidated, l1c[7] <- 3
  h.read(7, kB);   // must predict 3 and hit the owner directly
  EXPECT_EQ(h.proto().stats().missCount(MissClass::PredOwnerHit), 2u);
}

TEST(DiCo, WriteMigratesOwnershipAndInvalidates) {
  Harness h(ProtocolKind::DiCo);
  h.read(3, kB);
  h.read(7, kB);
  h.read(9, kB);
  h.write(12, kB);
  EXPECT_EQ(dico(h).l2cOwner(kB), 12);
  EXPECT_EQ(dico(h).l1Line(12, kB).state, 'M');
  EXPECT_FALSE(dico(h).l1Line(3, kB).valid);
  EXPECT_FALSE(dico(h).l1Line(7, kB).valid);
  EXPECT_FALSE(dico(h).l1Line(9, kB).valid);
  h.check();
}

TEST(DiCo, InvalidationTeachesSharersTheNewOwner) {
  Harness h(ProtocolKind::DiCo);
  h.read(3, kB);
  h.read(7, kB);
  h.write(12, kB);  // 7 sees the invalidation naming 12
  h.read(7, kB);    // prediction goes straight to 12
  EXPECT_EQ(h.proto().stats().missCount(MissClass::PredOwnerHit), 1u);
  EXPECT_EQ(dico(h).l1Line(7, kB).state, 'S');
}

TEST(DiCo, MispredictionDetoursThroughHome) {
  Harness h(ProtocolKind::DiCo);
  h.read(3, kB);
  h.read(7, kB);   // supplier pred: 3
  // Ownership moves away silently from 7's point of view: evict 3's line
  // by filling its set in 3's L1 (64 entries, 4-way, 16 sets: same-set
  // blocks are kB + i*16*64).
  for (int i = 1; i <= 4; ++i)
    h.read(3, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  // 3 no longer has the line (ownership went to sharer 7 or home).
  // 7 still holds its S copy; make it miss: fill 7's set too.
  for (int i = 5; i <= 8; ++i)
    h.read(7, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  h.read(7, kB);
  h.check();
  EXPECT_EQ(h.proto().committedValue(kB), dico(h).l1Line(7, kB).value);
}

TEST(DiCo, OwnerEvictionHandsOwnershipToSharer) {
  Harness h(ProtocolKind::DiCo);
  h.read(3, kB);   // 3 owner
  h.read(7, kB);   // 7 sharer
  const auto transfersBefore = h.proto().stats().ownershipTransfers;
  // Evict 3's line by conflict pressure. Conflict blocks are chosen to
  // collide with kB in the 16-set L1 but NOT in the 64-set L2C$ (an index
  // 69 block would displace kB's owner pointer and recall the ownership
  // instead — also correct, but not what this test exercises).
  for (const int i : {1, 2, 3, 5})
    h.read(3, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  EXPECT_GT(h.proto().stats().ownershipTransfers, transfersBefore);
  EXPECT_EQ(dico(h).l1Line(7, kB).state, 'O');
  EXPECT_EQ(dico(h).l2cOwner(kB), 7);
  h.check();
}

TEST(DiCo, OwnerEvictionWithoutSharersGoesHome) {
  Harness h(ProtocolKind::DiCo);
  h.write(3, kB);  // dirty owner, no sharers
  for (int i = 1; i <= 4; ++i)
    h.read(3, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  EXPECT_FALSE(dico(h).l1Line(3, kB).valid);
  EXPECT_EQ(dico(h).l2cOwner(kB), kInvalidNode);
  // Value survives at the home, which keeps the ownership on reads
  // (only writes, memory fills and replacements migrate it).
  EXPECT_EQ(h.read(9, kB), h.proto().committedValue(kB));
  EXPECT_EQ(dico(h).l2cOwner(kB), kInvalidNode);
  EXPECT_EQ(dico(h).l1Line(9, kB).state, 'S');
  h.check();
}

TEST(DiCo, UpgradeAtOwnerInvalidatesLocally) {
  Harness h(ProtocolKind::DiCo);
  h.read(3, kB);
  h.read(7, kB);
  const auto missesBefore = h.net().stats().messages;
  h.write(3, kB);  // owner with sharers: invalidation only, no request
  EXPECT_GT(h.net().stats().messages, missesBefore);  // inval + ack
  EXPECT_EQ(dico(h).l1Line(3, kB).state, 'M');
  EXPECT_FALSE(dico(h).l1Line(7, kB).valid);
  h.check();
}

TEST(DiCo, HintsFollowOwnershipTransfers) {
  Harness h(ProtocolKind::DiCo);
  h.read(3, kB);
  h.read(7, kB);
  h.read(9, kB);
  const auto hintsBefore = h.proto().stats().hintMessages;
  for (const int i : {1, 2, 3, 5})  // evict the owner: transfer + hints
    h.read(3, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  EXPECT_GT(h.proto().stats().hintMessages, hintsBefore);
  h.check();
}

TEST(DiCo, TwoHopMissUsesFewerLinksThanDirectory) {
  // The core DiCo claim: predicted misses avoid the home indirection.
  Harness hd(ProtocolKind::Directory);
  Harness hc(ProtocolKind::DiCo);
  for (auto* h : {&hd, &hc}) {
    h->read(3, kB);
    h->read(7, kB);
    h->write(3, kB);
    h->read(7, kB);  // DiCo predicts owner 3; Directory goes via home
  }
  const auto linksOf = [](Harness& h) {
    double total = 0;
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(MissClass::kCount); ++c)
      total += h.proto().stats().linksByClass[c].sum();
    return total;
  };
  EXPECT_LT(linksOf(hc), linksOf(hd));
}

}  // namespace
}  // namespace eecc
