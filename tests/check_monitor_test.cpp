// Unit tests for the conformance monitors (src/check/monitor.h): each
// monitor must fire — with a diagnostic naming the culprit — when a known
// violation is injected through a mock protocol, and stay silent on
// healthy state.
#include <gtest/gtest.h>

#include "check/monitor.h"
#include "protocol_harness.h"

namespace eecc {
namespace {

/// A protocol whose observable state (L1 copies, audit failures) is set
/// directly by the test — no coherence engine behind it.
class MockProtocol final : public Protocol {
 public:
  MockProtocol(EventQueue& events, Network& net, const CmpConfig& cfg)
      : Protocol(events, net, cfg) {}

  ProtocolKind kind() const override { return ProtocolKind::Directory; }
  bool tryHit(NodeId, Addr, AccessType) override { return false; }
  void auditInvariants(const AuditFailFn& fail) const override {
    for (const std::string& m : auditFailures) fail(m);
  }
  void forEachL1Copy(
      const std::function<void(const L1CopyView&)>& fn) const override {
    for (const L1CopyView& c : copies) fn(c);
  }

  std::vector<L1CopyView> copies;
  std::vector<std::string> auditFailures;

 protected:
  void startMiss(NodeId, Addr, AccessType, DoneFn done) override { done(); }
  void onMessage(const Message&) override {}
};

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest()
      : cfg_(testutil::smallConfig()),
        topo_(cfg_.meshWidth, cfg_.meshHeight),
        net_(events_, topo_, cfg_.net),
        proto_(events_, net_, cfg_) {}

  CmpConfig cfg_;
  EventQueue events_;
  MeshTopology topo_;
  Network net_;
  MockProtocol proto_;
  ViolationLog log_;
};

constexpr Addr kBlock = 4 * kBlockBytes;

TEST_F(MonitorTest, SwmrFiresOnTwoWritableCopies) {
  proto_.copies = {{0, kBlock, 'M', 7, false}, {3, kBlock, 'M', 7, false}};
  SwmrMonitor swmr;
  swmr.sweep(proto_, 100, log_);
  // Two M copies violate both ways: a second writer, and a writable copy
  // that is not alone.
  ASSERT_EQ(log_.total(), 2u);
  EXPECT_EQ(log_.entries()[0].monitor, "swmr");
  EXPECT_EQ(log_.entries()[0].block, kBlock);
  EXPECT_NE(log_.entries()[0].message.find("two writable"),
            std::string::npos);
  EXPECT_NE(log_.entries()[0].message.find("0"), std::string::npos);
  EXPECT_NE(log_.entries()[0].message.find("3"), std::string::npos);
}

TEST_F(MonitorTest, SwmrFiresWhenWriterCoexistsWithReader) {
  proto_.copies = {{1, kBlock, 'E', 0, false}, {2, kBlock, 'S', 0, false}};
  SwmrMonitor swmr;
  swmr.sweep(proto_, 100, log_);
  ASSERT_EQ(log_.total(), 1u);
  EXPECT_NE(log_.entries()[0].message.find("coexists"), std::string::npos);
  EXPECT_EQ(log_.entries()[0].tile, 1);
}

TEST_F(MonitorTest, SwmrAcceptsLegalStates) {
  // O owner + S sharers is legal (DiCo); so is a lone M; busy copies of a
  // mid-transaction block are skipped.
  proto_.copies = {{0, kBlock, 'O', 5, false},
                   {1, kBlock, 'S', 5, false},
                   {2, kBlock + kBlockBytes, 'M', 9, false},
                   {3, kBlock + kBlockBytes, 'M', 9, true}};
  SwmrMonitor swmr;
  swmr.sweep(proto_, 100, log_);
  EXPECT_EQ(log_.total(), 0u);
}

TEST_F(MonitorTest, ValueMonitorFlagsStaleRead) {
  ValueMonitor value;
  value.setLog(&log_);
  value.onWriteCommitted(kBlock, 5, 10);
  value.onAccessDone(2, kBlock, AccessType::Read, 20, /*value=*/3,
                     /*lineBusy=*/false);
  ASSERT_EQ(log_.total(), 1u);
  EXPECT_EQ(log_.entries()[0].monitor, "value");
  EXPECT_NE(log_.entries()[0].message.find("stale"), std::string::npos);
  EXPECT_EQ(log_.entries()[0].tile, 2);
}

TEST_F(MonitorTest, ValueMonitorRelaxesToMonotonicUnderRacingLine) {
  ValueMonitor value;
  value.setLog(&log_);
  value.onWriteCommitted(kBlock, 5, 10);
  // A load serialized before the in-flight write may still see an older
  // value — not a violation while the line is busy...
  value.onAccessDone(2, kBlock, AccessType::Read, 20, 3, /*lineBusy=*/true);
  EXPECT_EQ(log_.total(), 0u);
  // ...but going backwards per tile always is.
  value.onAccessDone(2, kBlock, AccessType::Read, 25, 5, true);
  value.onAccessDone(2, kBlock, AccessType::Read, 30, 3, true);
  ASSERT_EQ(log_.total(), 1u);
  EXPECT_NE(log_.entries()[0].message.find("backwards"), std::string::npos);
}

TEST_F(MonitorTest, ValueSweepFlagsDivergedCopy) {
  ValueMonitor value;
  value.setLog(&log_);
  value.onWriteCommitted(kBlock, 5, 10);
  proto_.copies = {{1, kBlock, 'S', /*value=*/4, false}};
  value.sweep(proto_, 50, log_);
  ASSERT_EQ(log_.total(), 1u);
  EXPECT_NE(log_.entries()[0].message.find("diverged"), std::string::npos);
}

TEST_F(MonitorTest, MetadataMonitorReportsAuditFailures) {
  proto_.auditFailures = {"L1 line not covered by its L2 bank "
                          "(inclusion violated): tile 4, block 0x1c0"};
  MetadataMonitor meta;
  meta.sweep(proto_, 77, log_);
  ASSERT_EQ(log_.total(), 1u);
  EXPECT_EQ(log_.entries()[0].monitor, "metadata");
  EXPECT_NE(log_.entries()[0].message.find("inclusion"), std::string::npos);
  EXPECT_EQ(log_.entries()[0].tick, 77u);
}

TEST_F(MonitorTest, ProgressMonitorFiresBeyondBoundOnce) {
  ProgressMonitor progress(/*bound=*/1000);
  progress.onAccessIssued(6, kBlock, AccessType::Write, 0);
  progress.sweep(proto_, 500, log_);
  EXPECT_EQ(log_.total(), 0u);  // still within the bound
  progress.sweep(proto_, 1500, log_);
  ASSERT_EQ(log_.total(), 1u);
  EXPECT_EQ(log_.entries()[0].monitor, "progress");
  EXPECT_EQ(log_.entries()[0].tile, 6);
  EXPECT_NE(log_.entries()[0].message.find("outstanding"), std::string::npos);
  progress.sweep(proto_, 2000, log_);
  EXPECT_EQ(log_.total(), 1u);  // reported once, not every sweep
  progress.onAccessDone(6, kBlock, AccessType::Write, 2100, 1, false);
  EXPECT_EQ(progress.outstanding(), 0u);
}

TEST_F(MonitorTest, ViolationLogCapsEntriesButCountsAll) {
  ViolationLog capped(4);
  for (int i = 0; i < 10; ++i)
    capped.report({"swmr", "msg", 0, 0, kInvalidNode});
  EXPECT_EQ(capped.entries().size(), 4u);
  EXPECT_EQ(capped.total(), 10u);
  EXPECT_FALSE(capped.empty());
}

TEST_F(MonitorTest, MonitorSetFansOutAndStaysCleanOnHealthyState) {
  MonitorSet set;
  set.onWriteCommitted(kBlock, 1, 5);
  set.onAccessIssued(0, kBlock, AccessType::Read, 6);
  set.onAccessDone(0, kBlock, AccessType::Read, 12, 1, false);
  proto_.copies = {{0, kBlock, 'S', 1, false}};
  set.sweep(proto_, 20);
  EXPECT_TRUE(set.ok());
  EXPECT_EQ(set.outstandingAccesses(), 0u);
  ASSERT_EQ(set.image().count(kBlock), 1u);
  EXPECT_EQ(set.image().at(kBlock).writes, 1u);
  EXPECT_EQ(set.image().at(kBlock).reads, 1u);
}

TEST_F(MonitorTest, MonitorSetCollectsAcrossMonitors) {
  MonitorSet set;
  set.onWriteCommitted(kBlock, 3, 5);
  proto_.copies = {{0, kBlock, 'M', 2, false},  // diverged value
                   {1, kBlock, 'M', 3, false}};  // second writable copy
  proto_.auditFailures = {"dangling owner pointer"};
  set.sweep(proto_, 30);
  EXPECT_FALSE(set.ok());
  // SWMR (two M copies) + value (copy 2 != golden 3) + metadata.
  EXPECT_GE(set.log().total(), 3u);
}

TEST_F(MonitorTest, HooksAttachAndDetachOnProtocol) {
  MonitorSet set;
  EXPECT_EQ(proto_.checkHooks(), nullptr);  // zero-cost default
  proto_.setCheckHooks(&set);
  EXPECT_EQ(proto_.checkHooks(), &set);
  proto_.setCheckHooks(nullptr);
  EXPECT_EQ(proto_.checkHooks(), nullptr);
}

}  // namespace
}  // namespace eecc
