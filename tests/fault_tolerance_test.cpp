// Tests for the sweep robustness layer (DESIGN.md §12): per-task
// exception containment in the runner, bounded retry, deterministic
// fault injection, the crash-safe sweep journal with bit-identical
// resume, and the atomic file writer the exporters sit on.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "common/json.h"
#include "core/journal.h"
#include "core/runner.h"
#include "result_compare.h"

namespace eecc {
namespace {

ExperimentConfig smallConfig(ProtocolKind kind, const std::string& workload,
                             std::uint64_t seed = 1) {
  ExperimentConfig cfg;
  cfg.workloadName = workload;
  cfg.protocol = kind;
  cfg.seed = seed;
  cfg.warmupCycles = 30'000;
  cfg.windowCycles = 20'000;
  return cfg;
}

std::vector<ExperimentConfig> smallGrid() {
  return {smallConfig(ProtocolKind::Directory, "apache4x16p"),
          smallConfig(ProtocolKind::DiCo, "apache4x16p"),
          smallConfig(ProtocolKind::DiCoProviders, "mixed-com"),
          smallConfig(ProtocolKind::DiCoArin, "mixed-com", 7)};
}

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "eecc_ft_" + name;
}

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

bool exists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
}

// ---------------------------------------------------------------------------
// Containment: throwing tasks neither terminate nor deadlock the pool
// ---------------------------------------------------------------------------

TEST(FaultTolerance, RunTasksCollectCapturesEveryThrowingTask) {
  // Pre-PR-5 regression: a throwing task escaped workerLoop into
  // std::terminate, and even a caught throw skipped the remaining--
  // decrement, leaving the submitter blocked forever. Every slot must
  // now run, and errors land in submission order.
  ExperimentRunner runner(4);
  std::vector<int> ran(16, 0);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < ran.size(); ++i)
    tasks.push_back([&ran, i] {
      ran[i] = 1;
      if (i % 3 == 0) throw std::runtime_error("task " + std::to_string(i));
    });
  const std::vector<std::exception_ptr> errors =
      runner.runTasksCollect(std::move(tasks));
  ASSERT_EQ(errors.size(), ran.size());
  for (std::size_t i = 0; i < ran.size(); ++i) {
    EXPECT_EQ(ran[i], 1) << "task " << i << " never ran";
    EXPECT_EQ(errors[i] != nullptr, i % 3 == 0) << "slot " << i;
  }
  for (std::size_t i = 0; i < errors.size(); i += 3) {
    try {
      std::rethrow_exception(errors[i]);
      FAIL() << "expected an exception in slot " << i;
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "task " + std::to_string(i));
    }
  }
  // The pool survived: it still executes follow-up batches.
  int after = 0;
  runner.runTasks({[&after] { after = 1; }});
  EXPECT_EQ(after, 1);
}

TEST(FaultTolerance, RunTasksRethrowsSubmissionOrderFirstFailure) {
  ExperimentRunner runner(4);
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] {});
  tasks.push_back([] { throw std::runtime_error("first"); });
  tasks.push_back([] { throw std::runtime_error("second"); });
  try {
    runner.runTasks(std::move(tasks));
    FAIL() << "expected runTasks to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

// ---------------------------------------------------------------------------
// runMany: contained failures, deterministic injection, bounded retry
// ---------------------------------------------------------------------------

TEST(FaultTolerance, RunManyContainsInjectedFailure) {
  const std::vector<ExperimentConfig> cfgs = smallGrid();
  ExperimentRunner clean(2);
  const std::vector<ExperimentResult> expected = clean.runMany(cfgs);

  ExperimentRunner runner(2);
  runner.setInjectFault(2);  // second submitted experiment throws
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);
  ASSERT_EQ(results.size(), cfgs.size());
  EXPECT_TRUE(anyFailed(results));

  EXPECT_TRUE(results[1].failed);
  EXPECT_EQ(results[1].attempts, 1u);
  EXPECT_EQ(results[1].workload, cfgs[1].workloadName);
  EXPECT_EQ(results[1].protocol, cfgs[1].protocol);
  EXPECT_EQ(results[1].seed, cfgs[1].seed);
  EXPECT_NE(results[1].error.find("injected fault"), std::string::npos);
  EXPECT_EQ(results[1].ops, 0u);

  // The rest of the batch completed, bit-identical to a clean sweep.
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    SCOPED_TRACE(i);
    EXPECT_FALSE(results[i].failed);
    expectResultsIdentical(results[i], expected[i]);
  }

  // Metrics rows mirror the outcome in submission order.
  ASSERT_EQ(runner.metrics().size(), cfgs.size());
  EXPECT_TRUE(runner.metrics()[1].failed);
  EXPECT_FALSE(runner.metrics()[0].failed);
}

TEST(FaultTolerance, RetryRecoversInjectedFaultBitIdentically) {
  const std::vector<ExperimentConfig> cfgs = smallGrid();
  ExperimentRunner clean(2);
  const std::vector<ExperimentResult> expected = clean.runMany(cfgs);

  ExperimentRunner runner(2);
  runner.setInjectFault(3);  // fires on attempt 0 only
  runner.setRetries(1);
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);
  EXPECT_FALSE(anyFailed(results));
  EXPECT_EQ(results[2].attempts, 2u);
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    SCOPED_TRACE(i);
    // attempts differs by design for the retried slot; compare the rest.
    ExperimentResult got = results[i];
    got.attempts = expected[i].attempts;
    expectResultsIdentical(got, expected[i]);
  }
}

TEST(FaultTolerance, FaultRateEnvironmentIsDeterministic) {
  const std::vector<ExperimentConfig> cfgs = smallGrid();
  ::setenv("EECC_FAULT_RATE", "1", 1);
  ExperimentRunner allFail(2);
  allFail.setRetries(0);
  const std::vector<ExperimentResult> failed = allFail.runMany(cfgs);
  for (std::size_t i = 0; i < failed.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_TRUE(failed[i].failed);
    EXPECT_NE(failed[i].error.find("EECC_FAULT_RATE"), std::string::npos);
  }
  ::unsetenv("EECC_FAULT_RATE");
  ExperimentRunner none(2);
  EXPECT_FALSE(anyFailed(none.runMany(cfgs)));
}

TEST(FaultTolerance, DefaultRetriesFromEnvironment) {
  ::setenv("EECC_RETRIES", "3", 1);
  EXPECT_EQ(ExperimentRunner::defaultRetries(), 3u);
  ExperimentRunner fromEnv(1);
  EXPECT_EQ(fromEnv.retries(), 3u);
  ::unsetenv("EECC_RETRIES");
  EXPECT_EQ(ExperimentRunner::defaultRetries(), 0u);
}

// ---------------------------------------------------------------------------
// Sweep journal: digest, round trip, resume splice, crash tolerance
// ---------------------------------------------------------------------------

TEST(FaultTolerance, ConfigDigestIsStableAndSensitive) {
  const ExperimentConfig base = smallConfig(ProtocolKind::DiCo, "apache4x16p");
  const std::string d = SweepJournal::configDigest(base);
  EXPECT_EQ(d.size(), 16u);
  EXPECT_EQ(d, SweepJournal::configDigest(base));

  ExperimentConfig m = base;
  m.seed = 2;
  EXPECT_NE(SweepJournal::configDigest(m), d);
  m = base;
  m.protocol = ProtocolKind::Directory;
  EXPECT_NE(SweepJournal::configDigest(m), d);
  m = base;
  m.workloadName = "mixed-com";
  EXPECT_NE(SweepJournal::configDigest(m), d);
  m = base;
  m.windowCycles += 1;
  EXPECT_NE(SweepJournal::configDigest(m), d);
  m = base;
  m.chip.numAreas = 2;
  EXPECT_NE(SweepJournal::configDigest(m), d);
  m = base;
  m.obs.snapshotMetrics = true;
  EXPECT_NE(SweepJournal::configDigest(m), d);
  // A stage-traced run adds "stage.*" metrics to the journaled snapshot,
  // so it must not splice into a journal written without the recorder.
  m = base;
  m.obs.stageTrace = true;
  EXPECT_NE(SweepJournal::configDigest(m), d);
  // The self-profiler's output is never journaled: same digest.
  m = base;
  m.obs.selfProf = true;
  EXPECT_EQ(SweepJournal::configDigest(m), d);
}

TEST(FaultTolerance, JournalResumeSplicesStageTracedMetrics) {
  const std::string path = tempPath("resume_stage.jsonl");
  std::remove(path.c_str());
  std::vector<ExperimentConfig> cfgs = smallGrid();
  for (ExperimentConfig& cfg : cfgs) {
    cfg.obs.snapshotMetrics = true;
    cfg.obs.stageTrace = true;
  }

  ExperimentRunner clean(2);
  const std::vector<ExperimentResult> expected = clean.runMany(cfgs);

  {
    SweepJournal journal;
    std::string error;
    ASSERT_TRUE(journal.open(path, /*resume=*/false, &error)) << error;
    ExperimentRunner runner(2);
    runner.setJournal(&journal);
    runner.runMany(cfgs);
  }

  SweepJournal resumed;
  std::string error;
  ASSERT_TRUE(resumed.open(path, /*resume=*/true, &error)) << error;
  EXPECT_EQ(resumed.restoredCount(), cfgs.size());
  ExperimentRunner runner(2);
  runner.setJournal(&resumed);
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);
  ASSERT_EQ(results.size(), expected.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_TRUE(results[i].restored);
    // expectResultsIdentical covers the metric snapshot, so the spliced
    // stage decomposition comes back bit for bit.
    expectResultsIdentical(results[i], expected[i]);
  }
  // The comparison was not vacuous: the splice carried stage metrics.
  bool sawStage = false;
  for (const MetricRegistry::Sample& s : results[0].metrics)
    if (s.name == "stage.transactions") sawStage = s.u64 > 0;
  EXPECT_TRUE(sawStage);
  std::remove(path.c_str());
}

TEST(FaultTolerance, JournalResumeSplicesBitIdenticalResults) {
  const std::string path = tempPath("resume.jsonl");
  std::remove(path.c_str());
  const std::vector<ExperimentConfig> cfgs = smallGrid();

  ExperimentRunner clean(2);
  const std::vector<ExperimentResult> expected = clean.runMany(cfgs);

  {
    SweepJournal journal;
    std::string error;
    ASSERT_TRUE(journal.open(path, /*resume=*/false, &error)) << error;
    ExperimentRunner runner(2);
    runner.setJournal(&journal);
    runner.runMany(cfgs);
  }

  SweepJournal resumed;
  std::string error;
  ASSERT_TRUE(resumed.open(path, /*resume=*/true, &error)) << error;
  EXPECT_EQ(resumed.restoredCount(), cfgs.size());
  ExperimentRunner runner(2);
  runner.setJournal(&resumed);
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);
  ASSERT_EQ(results.size(), expected.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_TRUE(results[i].restored);
    expectResultsIdentical(results[i], expected[i]);
  }
  // Spliced experiments report zero-wall metrics rows, in order.
  ASSERT_EQ(runner.metrics().size(), cfgs.size());
  for (const RunMetrics& m : runner.metrics()) {
    EXPECT_TRUE(m.restored);
    EXPECT_EQ(m.wallSeconds, 0.0);
  }
  std::remove(path.c_str());
}

TEST(FaultTolerance, JournalPartialResumeRunsOnlyTheRemainder) {
  const std::string path = tempPath("partial.jsonl");
  std::remove(path.c_str());
  const std::vector<ExperimentConfig> cfgs = smallGrid();

  ExperimentRunner clean(2);
  const std::vector<ExperimentResult> expected = clean.runMany(cfgs);

  {
    // Journal only the first two experiments — an interrupted sweep.
    SweepJournal journal;
    std::string error;
    ASSERT_TRUE(journal.open(path, /*resume=*/false, &error)) << error;
    ExperimentRunner runner(2);
    runner.setJournal(&journal);
    runner.runMany({cfgs[0], cfgs[1]});
  }

  SweepJournal resumed;
  std::string error;
  ASSERT_TRUE(resumed.open(path, /*resume=*/true, &error)) << error;
  EXPECT_EQ(resumed.restoredCount(), 2u);
  ExperimentRunner runner(2);
  runner.setJournal(&resumed);
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);
  ASSERT_EQ(results.size(), expected.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(results[i].restored, i < 2);
    expectResultsIdentical(results[i], expected[i]);
  }
  // The completed remainder was journaled too: a second resume splices
  // the full grid.
  SweepJournal full;
  ASSERT_TRUE(full.open(path, /*resume=*/true, &error)) << error;
  EXPECT_EQ(full.restoredCount(), cfgs.size());
  std::remove(path.c_str());
}

TEST(FaultTolerance, JournalSkipsTruncatedTrailingLine) {
  const std::string path = tempPath("truncated.jsonl");
  std::remove(path.c_str());
  const std::vector<ExperimentConfig> cfgs = smallGrid();
  {
    SweepJournal journal;
    std::string error;
    ASSERT_TRUE(journal.open(path, /*resume=*/false, &error)) << error;
    ExperimentRunner runner(2);
    runner.setJournal(&journal);
    runner.runMany(cfgs);
  }
  // Simulate a crash mid-append: keep the first record intact and half of
  // the second.
  const std::string whole = slurp(path);
  const std::size_t firstEnd = whole.find('\n');
  ASSERT_NE(firstEnd, std::string::npos);
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(whole.data(), 1, firstEnd + 1 + 40, f);
    std::fclose(f);
  }
  SweepJournal resumed;
  std::string error;
  ASSERT_TRUE(resumed.open(path, /*resume=*/true, &error)) << error;
  EXPECT_EQ(resumed.restoredCount(), 1u);
  std::remove(path.c_str());
}

TEST(FaultTolerance, JournalWithoutResumeTruncates) {
  const std::string path = tempPath("fresh.jsonl");
  std::remove(path.c_str());
  {
    SweepJournal journal;
    std::string error;
    ASSERT_TRUE(journal.open(path, /*resume=*/false, &error)) << error;
    ExperimentRunner runner(1);
    runner.setJournal(&journal);
    runner.runMany({smallConfig(ProtocolKind::Directory, "apache4x16p")});
  }
  SweepJournal again;
  std::string error;
  ASSERT_TRUE(again.open(path, /*resume=*/false, &error)) << error;
  EXPECT_EQ(again.restoredCount(), 0u);
  std::remove(path.c_str());
}

TEST(FaultTolerance, FailedExperimentsAreNeverJournaled) {
  const std::string path = tempPath("failed.jsonl");
  std::remove(path.c_str());
  const std::vector<ExperimentConfig> cfgs = smallGrid();
  {
    SweepJournal journal;
    std::string error;
    ASSERT_TRUE(journal.open(path, /*resume=*/false, &error)) << error;
    ExperimentRunner runner(2);
    runner.setJournal(&journal);
    runner.setInjectFault(1);
    const std::vector<ExperimentResult> results = runner.runMany(cfgs);
    EXPECT_TRUE(results[0].failed);
  }
  SweepJournal resumed;
  std::string error;
  ASSERT_TRUE(resumed.open(path, /*resume=*/true, &error)) << error;
  // Only the three successes persisted; resume retries the failed one.
  EXPECT_EQ(resumed.restoredCount(), cfgs.size() - 1);
  ExperimentRunner runner(2);
  runner.setJournal(&resumed);
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);
  EXPECT_FALSE(anyFailed(results));
  EXPECT_FALSE(results[0].restored);
  EXPECT_TRUE(results[1].restored);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// AtomicFile and the bit-exact double encoding under it
// ---------------------------------------------------------------------------

TEST(FaultTolerance, AtomicFileCommitsWholeFileAndCleansUp) {
  const std::string path = tempPath("atomic.txt");
  std::remove(path.c_str());
  {
    AtomicFile out(path);
    ASSERT_TRUE(static_cast<bool>(out));
    std::fprintf(out.get(), "hello\n");
    // Before commit the destination does not exist (only path.tmp does).
    EXPECT_FALSE(exists(path));
    EXPECT_TRUE(out.commit());
  }
  EXPECT_EQ(slurp(path), "hello\n");
  EXPECT_FALSE(exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(FaultTolerance, AtomicFileAbandonedWriteLeavesOldContent) {
  const std::string path = tempPath("abandon.txt");
  std::remove(path.c_str());
  {
    AtomicFile out(path);
    std::fprintf(out.get(), "v1\n");
    ASSERT_TRUE(out.commit());
  }
  {
    AtomicFile out(path);
    std::fprintf(out.get(), "v2 partial");
    // No commit: destructor discards the temporary.
  }
  EXPECT_EQ(slurp(path), "v1\n");
  EXPECT_FALSE(exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(FaultTolerance, AtomicFileFailsCleanlyOnBadDirectory) {
  const std::string path =
      tempPath("no_such_dir") + "/sub/never/out.json";
  AtomicFile out(path);
  EXPECT_FALSE(static_cast<bool>(out));
  EXPECT_FALSE(out.commit());
  EXPECT_FALSE(exists(path));
}

TEST(FaultTolerance, DoubleBitsRoundTripExactly) {
  const double values[] = {0.0,
                           -0.0,
                           1.0,
                           -1.5,
                           3.141592653589793,
                           1e308,
                           5e-324,
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity()};
  for (const double v : values) {
    const std::string s = jsonDoubleBits(v);
    const double back = jsonDoubleFromBits(s);
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << s;
  }
  // NaN round-trips to a NaN with the same bits.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double back = jsonDoubleFromBits(jsonDoubleBits(nan));
  EXPECT_EQ(std::memcmp(&nan, &back, sizeof nan), 0);
  // Malformed encodings parse to 0.0 instead of garbage.
  EXPECT_EQ(jsonDoubleFromBits(""), 0.0);
  EXPECT_EQ(jsonDoubleFromBits("x12"), 0.0);
  EXPECT_EQ(jsonDoubleFromBits("3.5"), 0.0);
}

}  // namespace
}  // namespace eecc
