// Tests for common/json (escaping + streaming writer) and the sweep-JSON
// regression: hostile workload/sweep names used to reach BENCH_sweep.json
// unescaped and break every downstream parser.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <functional>
#include <string>

#include "common/json.h"
#include "core/runner.h"
#include "json_checker.h"

namespace eecc {
namespace {

std::string capture(const std::function<void(JsonWriter&)>& body) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  {
    JsonWriter w(f);
    body(w);
  }
  std::fflush(f);
  std::rewind(f);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(JsonEscape, PassesPlainStringsThrough) {
  EXPECT_EQ(jsonEscape("apache4x16p"), "apache4x16p");
  EXPECT_EQ(jsonEscape(""), "");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonEscape(std::string("a\x01z", 3)), "a\\u0001z");
}

TEST(JsonEscape, RoundTripsHostileNames) {
  const std::string hostile = "mix\"ed\\com\nwork\tload\x02!";
  const std::string escaped = jsonEscape(hostile);
  EXPECT_TRUE(testjson::jsonValid("\"" + escaped + "\""));
  EXPECT_EQ(testjson::jsonUnescape(escaped), hostile);
}

TEST(JsonWriter, NestedDocumentIsValid) {
  const std::string doc = capture([](JsonWriter& w) {
    w.beginObject();
    w.field("name", "run \"1\"");
    w.field("count", std::uint64_t{42});
    w.field("ratio", 0.125);
    w.field("ok", true);
    w.key("tags");
    w.beginArray();
    w.value("a");
    w.value("b\\c");
    w.endArray();
    w.key("inner");
    w.beginObject();
    w.field("neg", std::int64_t{-7});
    w.endObject();
    w.endObject();
  });
  std::string err;
  EXPECT_TRUE(testjson::jsonValid(doc, &err)) << err << "\n" << doc;
  EXPECT_EQ(testjson::jsonFindString(doc, "name"), "run \"1\"");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  const std::string doc = capture([](JsonWriter& w) {
    w.beginObject();
    w.field("nan", std::nan(""));
    w.field("inf", INFINITY);
    w.field("fine", 1.5);
    w.endObject();
  });
  std::string err;
  EXPECT_TRUE(testjson::jsonValid(doc, &err)) << err << "\n" << doc;
  EXPECT_NE(doc.find("\"nan\": null"), std::string::npos);
  EXPECT_NE(doc.find("\"inf\": null"), std::string::npos);
  EXPECT_EQ(doc.find("nan,"), std::string::npos);  // no bare nan tokens
}

TEST(JsonWriter, EmptyContainers) {
  const std::string doc = capture([](JsonWriter& w) {
    w.beginObject();
    w.key("empty_arr");
    w.beginArray();
    w.endArray();
    w.key("empty_obj");
    w.beginObject();
    w.endObject();
    w.endObject();
  });
  EXPECT_TRUE(testjson::jsonValid(doc)) << doc;
}

// Regression: writeSweepJson interpolated names verbatim, so a sweep or
// workload name containing `"` or `\` produced unparseable JSON.
TEST(SweepJson, HostileNamesRoundTrip) {
  const std::string path = ::testing::TempDir() + "eecc_hostile_sweep.json";
  const std::string sweepName = "table\"iv\\sweep\n2026";
  RunMetrics m;
  m.workload = "mixed\"com\\";
  m.protocol = ProtocolKind::DiCoProviders;
  m.simEvents = 1000;
  m.ops = 500;
  m.wallSeconds = 0.25;
  writeSweepJson(path, sweepName, 4, 1.5, {m},
                 {{"kernel_speedup", 1.75}});

  const std::string doc = testjson::readFile(path);
  ASSERT_FALSE(doc.empty());
  std::string err;
  ASSERT_TRUE(testjson::jsonValid(doc, &err)) << err << "\n" << doc;
  EXPECT_EQ(testjson::jsonFindString(doc, "sweep"), sweepName);
  EXPECT_EQ(testjson::jsonFindString(doc, "workload"), m.workload);
  std::remove(path.c_str());
}

TEST(SweepJson, EmptyMetricsStillValid) {
  const std::string path = ::testing::TempDir() + "eecc_empty_sweep.json";
  writeSweepJson(path, "empty", 1, 0.0, {});
  const std::string doc = testjson::readFile(path);
  ASSERT_FALSE(doc.empty());
  std::string err;
  EXPECT_TRUE(testjson::jsonValid(doc, &err)) << err << "\n" << doc;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eecc
