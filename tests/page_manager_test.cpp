// Unit tests for hypervisor-style page deduplication and copy-on-write.
#include <gtest/gtest.h>

#include "vm/page_manager.h"

namespace eecc {
namespace {

TEST(PageManager, PrivatePagesAreUnique) {
  PageManager pm;
  const Addr a = pm.allocPrivatePage();
  const Addr b = pm.allocPrivatePage();
  EXPECT_NE(a, b);
  EXPECT_EQ(a % kPageBytes, 0u);
  EXPECT_EQ(pm.physicalPages(), 2u);
  EXPECT_EQ(pm.savedFraction(), 0.0);
}

TEST(PageManager, IdenticalContentDeduplicates) {
  PageManager pm;
  const Addr a = pm.mapContent(/*contentKey=*/42, /*vm=*/0);
  const Addr b = pm.mapContent(42, 1);
  const Addr c = pm.mapContent(42, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(pm.physicalPages(), 1u);
  EXPECT_EQ(pm.logicalMappings(), 3u);
  EXPECT_NEAR(pm.savedFraction(), 2.0 / 3.0, 1e-12);
}

TEST(PageManager, DifferentContentDoesNot) {
  PageManager pm;
  EXPECT_NE(pm.mapContent(1, 0), pm.mapContent(2, 0));
  EXPECT_EQ(pm.physicalPages(), 2u);
}

TEST(PageManager, CopyOnWriteGivesPrivateCopy) {
  PageManager pm;
  const Addr shared = pm.mapContent(42, 0);
  pm.mapContent(42, 1);
  const Addr copy = pm.copyOnWrite(42, 0);
  EXPECT_NE(copy, shared);
  // Writer reads its copy; the other VM keeps the shared original.
  EXPECT_EQ(pm.translate(42, 0), copy);
  EXPECT_EQ(pm.translate(42, 1), shared);
  EXPECT_EQ(pm.cowEvents(), 1u);
}

TEST(PageManager, CopyOnWriteIsStablePerVm) {
  PageManager pm;
  pm.mapContent(7, 0);
  const Addr first = pm.copyOnWrite(7, 0);
  const Addr second = pm.copyOnWrite(7, 0);
  EXPECT_EQ(first, second);
  EXPECT_EQ(pm.cowEvents(), 1u);
}

TEST(PageManager, SavedFractionMatchesTableIVShape) {
  // 4 VMs, each mapping 100 private + 30 deduplicated pages:
  // saved = 3*30 / (4*130) = 17.3%.
  PageManager pm;
  for (VmId vm = 0; vm < 4; ++vm) {
    for (int i = 0; i < 100; ++i) pm.allocPrivatePage();
    for (std::uint64_t k = 0; k < 30; ++k) pm.mapContent(1000 + k, vm);
  }
  EXPECT_NEAR(pm.savedFraction(), 3.0 * 30 / (4 * 130), 1e-12);
}

TEST(PageManager, PagesAreDistinctAcrossKinds) {
  PageManager pm;
  const Addr priv = pm.allocPrivatePage();
  const Addr shared = pm.mapContent(9, 0);
  const Addr cow = pm.copyOnWrite(9, 0);
  EXPECT_NE(priv, shared);
  EXPECT_NE(priv, cow);
  EXPECT_NE(shared, cow);
}

TEST(PageManager, SharerSetsTrackMappingVms) {
  PageManager pm;
  pm.mapContent(42, 3);
  pm.mapContent(42, 1);
  pm.mapContent(42, 7);
  EXPECT_EQ(pm.sharerCount(42), 3u);
  EXPECT_TRUE(pm.isSharer(42, 1));
  EXPECT_FALSE(pm.isSharer(42, 2));
  EXPECT_EQ(pm.soleSharer(42), kInvalidVm);  // several sharers
  const std::vector<VmId> sharers = pm.sharersOf(42);
  ASSERT_EQ(sharers.size(), 3u);
  EXPECT_EQ(sharers[0], 3);  // map order
  EXPECT_EQ(sharers[1], 1);
  EXPECT_EQ(sharers[2], 7);
}

TEST(PageManager, UnmapFreesPageOnLastSharer) {
  PageManager pm;
  pm.mapContent(5, 0);
  pm.mapContent(5, 1);
  EXPECT_EQ(pm.physicalPages(), 1u);
  EXPECT_FALSE(pm.unmapContent(5, 0));  // VM 1 still maps it: not freed
  EXPECT_EQ(pm.physicalPages(), 1u);
  EXPECT_EQ(pm.soleSharer(5), 1);
  EXPECT_TRUE(pm.unmapContent(5, 1));
  EXPECT_EQ(pm.physicalPages(), 0u);
  EXPECT_EQ(pm.reclaimedPages(), 1u);
  EXPECT_EQ(pm.sharerCount(5), 0u);
  EXPECT_FALSE(pm.unmapContent(5, 1));  // already gone
}

TEST(PageManager, ReclaimVmDropsMappingsAndCowCopies) {
  PageManager pm;
  const Addr shared = pm.mapContent(10, 0);
  pm.mapContent(10, 1);
  pm.mapContent(11, 0);       // VM 0 is sole sharer
  pm.copyOnWrite(10, 0);      // VM 0's private copy of content 10
  EXPECT_EQ(pm.physicalPages(), 3u);
  const std::uint64_t freed = pm.reclaimVm(0);
  // Freed: content 11's page and the CoW copy; content 10 survives via
  // VM 1's mapping.
  EXPECT_EQ(freed, 2u);
  EXPECT_EQ(pm.physicalPages(), 1u);
  EXPECT_FALSE(pm.isSharer(10, 0));
  EXPECT_TRUE(pm.isSharer(10, 1));
  EXPECT_EQ(pm.sharerCount(11), 0u);
  // The survivor's view is the shared original, untouched by the reclaim.
  EXPECT_EQ(pm.translate(10, 1), shared);
}

TEST(PageManager, VmSavedPagesSplitsDedupBenefit) {
  PageManager pm;
  // Content shared by 2 VMs: each "saves" half of the avoided copy... the
  // convention is saved = (n-1)/n per sharer.
  pm.mapContent(20, 0);
  pm.mapContent(20, 1);
  EXPECT_NEAR(pm.vmSavedPages(0), 0.5, 1e-12);
  EXPECT_NEAR(pm.vmSavedPages(1), 0.5, 1e-12);
  EXPECT_NEAR(pm.vmSavedPages(0) + pm.vmSavedPages(1), 1.0, 1e-12);
  EXPECT_EQ(pm.vmLogicalMappings(0), 1u);
  EXPECT_EQ(pm.vmSavedPages(2), 0.0);
}

TEST(PageManager, LegacyCountersUnchangedBySharerTracking) {
  // The PR-7 sharer sets must not perturb the counters the paper tables
  // are built from.
  PageManager pm;
  for (VmId vm = 0; vm < 4; ++vm) {
    for (int i = 0; i < 10; ++i) pm.allocPrivatePage();
    for (std::uint64_t k = 0; k < 3; ++k) pm.mapContent(500 + k, vm);
  }
  EXPECT_EQ(pm.physicalPages(), 4u * 10u + 3u);
  EXPECT_EQ(pm.logicalMappings(), 4u * 13u);
  EXPECT_NEAR(pm.savedFraction(), 3.0 * 3 / (4 * 13), 1e-12);
}

}  // namespace
}  // namespace eecc
