// Unit tests for hypervisor-style page deduplication and copy-on-write.
#include <gtest/gtest.h>

#include "vm/page_manager.h"

namespace eecc {
namespace {

TEST(PageManager, PrivatePagesAreUnique) {
  PageManager pm;
  const Addr a = pm.allocPrivatePage();
  const Addr b = pm.allocPrivatePage();
  EXPECT_NE(a, b);
  EXPECT_EQ(a % kPageBytes, 0u);
  EXPECT_EQ(pm.physicalPages(), 2u);
  EXPECT_EQ(pm.savedFraction(), 0.0);
}

TEST(PageManager, IdenticalContentDeduplicates) {
  PageManager pm;
  const Addr a = pm.mapContent(/*contentKey=*/42, /*vm=*/0);
  const Addr b = pm.mapContent(42, 1);
  const Addr c = pm.mapContent(42, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  EXPECT_EQ(pm.physicalPages(), 1u);
  EXPECT_EQ(pm.logicalMappings(), 3u);
  EXPECT_NEAR(pm.savedFraction(), 2.0 / 3.0, 1e-12);
}

TEST(PageManager, DifferentContentDoesNot) {
  PageManager pm;
  EXPECT_NE(pm.mapContent(1, 0), pm.mapContent(2, 0));
  EXPECT_EQ(pm.physicalPages(), 2u);
}

TEST(PageManager, CopyOnWriteGivesPrivateCopy) {
  PageManager pm;
  const Addr shared = pm.mapContent(42, 0);
  pm.mapContent(42, 1);
  const Addr copy = pm.copyOnWrite(42, 0);
  EXPECT_NE(copy, shared);
  // Writer reads its copy; the other VM keeps the shared original.
  EXPECT_EQ(pm.translate(42, 0), copy);
  EXPECT_EQ(pm.translate(42, 1), shared);
  EXPECT_EQ(pm.cowEvents(), 1u);
}

TEST(PageManager, CopyOnWriteIsStablePerVm) {
  PageManager pm;
  pm.mapContent(7, 0);
  const Addr first = pm.copyOnWrite(7, 0);
  const Addr second = pm.copyOnWrite(7, 0);
  EXPECT_EQ(first, second);
  EXPECT_EQ(pm.cowEvents(), 1u);
}

TEST(PageManager, SavedFractionMatchesTableIVShape) {
  // 4 VMs, each mapping 100 private + 30 deduplicated pages:
  // saved = 3*30 / (4*130) = 17.3%.
  PageManager pm;
  for (VmId vm = 0; vm < 4; ++vm) {
    for (int i = 0; i < 100; ++i) pm.allocPrivatePage();
    for (std::uint64_t k = 0; k < 30; ++k) pm.mapContent(1000 + k, vm);
  }
  EXPECT_NEAR(pm.savedFraction(), 3.0 * 30 / (4 * 130), 1e-12);
}

TEST(PageManager, PagesAreDistinctAcrossKinds) {
  PageManager pm;
  const Addr priv = pm.allocPrivatePage();
  const Addr shared = pm.mapContent(9, 0);
  const Addr cow = pm.copyOnWrite(9, 0);
  EXPECT_NE(priv, shared);
  EXPECT_NE(priv, cow);
  EXPECT_NE(shared, cow);
}

}  // namespace
}  // namespace eecc
