// Walkthroughs of the paper's illustrated scenarios with explicit
// link-count assertions:
//   Figure 2 — a read to a deduplicated block under the three protocols
//              (directory indirection vs. DiCo's 2-hop vs. an in-area
//              provider hit);
//   Figure 4 — a write whose supplier prediction succeeds, with the owner
//              invalidating its area's sharers and the providers
//              invalidating theirs.
#include <gtest/gtest.h>

#include "protocol_harness.h"
#include "protocols/dico.h"
#include "protocols/dico_providers.h"
#include "protocols/directory.h"

namespace eecc {
namespace {

using testutil::Harness;

// 4x4 mesh, areas = 2x2 quadrants. Figure 2's cast, placed so the
// geometry matches the drawing: the home is far from the requestor
// (tile 0 vs. tile 15, 6 links), the owner sits in another VM's area
// (tile 5, 4 links from the requestor), and a provider already exists in
// the requestor's own area (tile 10, 2 links away).
constexpr Addr kB = 9 * kBlockBytes;
constexpr Addr kFig2Block = 16 * kBlockBytes;  // home = tile 0

double sumLinks(const ProtocolStats& s) {
  double total = 0;
  for (std::size_t c = 0; c < static_cast<std::size_t>(MissClass::kCount);
       ++c)
    total += s.linksByClass[c].sum();
  return total;
}

TEST(Figure2, ProvidersResolveTheDedupReadInsideTheArea) {
  // Measured request: tile 15 re-reads the deduplicated block after its
  // own copy was evicted (prediction retained). Expected links:
  //   directory      15 -> home(0) -> 15            = 12 links
  //   DiCo           15 -> owner(5) -> 15           =  8 links
  //   DiCo-Providers 15 -> provider(10) -> 15       =  4 links
  double linksUsed[3] = {0, 0, 0};
  int i = 0;
  for (const ProtocolKind kind :
       {ProtocolKind::Directory, ProtocolKind::DiCo,
        ProtocolKind::DiCoProviders}) {
    Harness h(kind);
    h.write(5, kFig2Block);   // the owner ("VM 1") holds the only copy
    h.read(10, kFig2Block);   // first area-3 reader (provider there)
    h.read(15, kFig2Block);   // the requestor learns its supplier
    // Evict 15's line only, keeping its prediction.
    for (const int j : {2, 3, 4, 5})
      h.read(15, kFig2Block + static_cast<Addr>(j) * 16 * kBlockBytes);
    const double before = sumLinks(h.proto().stats());
    h.read(15, kFig2Block);
    linksUsed[i++] = sumLinks(h.proto().stats()) - before;
    h.check();
  }
  EXPECT_LE(linksUsed[2], 4.0) << "provider hit should stay in the area";
  EXPECT_LT(linksUsed[2], linksUsed[1]);
  EXPECT_LT(linksUsed[1], linksUsed[0]);
}

TEST(Figure2, MissClassesMatchTheThreeDrawings) {
  // (a) directory: home-indirected; (b) DiCo: predicted owner hit;
  // (c) Providers: predicted provider hit.
  {
    Harness h(ProtocolKind::Directory);
    h.read(0, kB);
    h.read(10, kB);
    EXPECT_GT(h.proto().stats().missCount(MissClass::UnpredOwner) +
                  h.proto().stats().missCount(MissClass::UnpredL2),
              0u);
  }
  {
    Harness h(ProtocolKind::DiCo);
    h.read(0, kB);
    h.read(10, kB);  // learns owner 0
    for (const int j : {1, 2, 3, 5})
      h.read(10, kB + static_cast<Addr>(j) * 16 * kBlockBytes);
    h.read(10, kB);  // predicted straight to the owner
    EXPECT_GE(h.proto().stats().missCount(MissClass::PredOwnerHit), 1u);
  }
  {
    Harness h(ProtocolKind::DiCoProviders);
    h.read(0, kB);
    h.read(10, kB);  // provider for area 3
    h.read(11, kB);  // supplier identity = 10
    for (const int j : {1, 2, 3, 5})
      h.read(11, kB + static_cast<Addr>(j) * 16 * kBlockBytes);
    h.read(11, kB);
    EXPECT_GE(h.proto().stats().missCount(MissClass::PredProviderHit), 1u);
  }
}

TEST(Figure4, WriteInvalidationFlowsThroughOwnerAndProviders) {
  // Figure 4: the writer predicts the owner; the owner invalidates the
  // sharers of its area and the providers; the providers invalidate the
  // sharers of their areas; all acks converge on the writer.
  Harness h(ProtocolKind::DiCoProviders);
  auto& p = dynamic_cast<DiCoProvidersProtocol&>(h.proto());

  h.read(0, kB);    // owner, area 0
  h.read(1, kB);    // sharer in the owner's area
  h.read(10, kB);   // provider, area 3
  h.read(11, kB);   // sharer under provider 10
  h.read(2, kB);    // provider, area 1 (2 is in area 1)
  h.check();

  const auto invalsBefore = h.proto().stats().invalidationsSent;
  h.write(2, kB);   // the area-1 provider writes
  h.check();

  // Everyone else is gone; the writer owns the block.
  for (const NodeId t : {0, 1, 10, 11})
    EXPECT_FALSE(p.l1Line(t, kB).valid) << "tile " << t;
  EXPECT_EQ(p.l1Line(2, kB).state, 'M');
  EXPECT_EQ(p.l2cOwner(kB), 2);
  // Invalidate owner-area sharer (1), provider (10) and its sharer (11),
  // plus the old owner's self-invalidation: at least 3 invalidations.
  EXPECT_GE(h.proto().stats().invalidationsSent - invalsBefore, 3u);
  // And everyone re-reads the committed value afterwards.
  for (const NodeId t : {0, 1, 10, 11})
    EXPECT_EQ(h.read(t, kB), h.proto().committedValue(kB));
  h.check();
}

TEST(Figure4, AcknowledgementsUseTwoCounters) {
  // The provider acks carry their area's sharer count; the write cannot
  // complete before both counters drain. Observable externally: the write
  // completes and no stale copy survives even with sharers behind
  // several providers.
  Harness h(ProtocolKind::DiCoProviders);
  h.read(4, kB);                      // owner area 0 (tile 4)
  for (const NodeId t : {2, 3, 6}) h.read(t, kB);    // area 1 copies
  for (const NodeId t : {8, 9, 12}) h.read(t, kB);   // area 2 copies
  for (const NodeId t : {10, 11}) h.read(t, kB);     // area 3 copies
  h.check();
  h.write(5, kB);
  h.check();
  const std::uint64_t committed = h.proto().committedValue(kB);
  for (const NodeId t : {2, 3, 6, 8, 9, 12, 10, 11, 4})
    EXPECT_EQ(h.read(t, kB), committed) << "tile " << t;
  h.check();
}

}  // namespace
}  // namespace eecc
