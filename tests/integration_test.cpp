// Integration tests: the full CmpSystem stack (workload generator ->
// cores -> protocol -> NoC -> memory) on a small chip, for every protocol.
#include <gtest/gtest.h>

#include "core/cmp_system.h"
#include "core/experiment.h"
#include "protocol_harness.h"
#include "workload/profile.h"

namespace eecc {
namespace {

using testutil::smallChip;

BenchmarkProfile tinyProfile() {
  return testutil::tinyProfile(profiles::apache(), 2, 6);
}

class SystemTest : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(
    Kinds, SystemTest,
    ::testing::Values(ProtocolKind::Directory, ProtocolKind::DiCo,
                      ProtocolKind::DiCoProviders, ProtocolKind::DiCoArin),
    [](const auto& info) {
      std::string n = protocolName(info.param);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST_P(SystemTest, RunsAndStaysCoherent) {
  const CmpConfig cfg = smallChip();
  CmpSystem system(cfg, GetParam(), VmLayout::matched(cfg, 4),
                   profiles::uniform4(tinyProfile()), 42);
  system.run(30'000);
  EXPECT_GT(system.opsCompleted(), 1000u);
  system.protocol().checkInvariants();
}

TEST_P(SystemTest, WarmupResetsCountersButKeepsState) {
  const CmpConfig cfg = smallChip();
  CmpSystem system(cfg, GetParam(), VmLayout::matched(cfg, 4),
                   profiles::uniform4(tinyProfile()), 42);
  system.warmup(20'000);
  EXPECT_EQ(system.opsCompleted(), 0u);
  EXPECT_EQ(system.protocol().stats().l1Accesses(), 0u);
  EXPECT_EQ(system.network().stats().messages, 0u);
  system.run(20'000);
  // Warm caches: the measured miss rate must be lower than a cold run's.
  CmpSystem cold(cfg, GetParam(), VmLayout::matched(cfg, 4),
                 profiles::uniform4(tinyProfile()), 42);
  cold.run(20'000);
  EXPECT_LT(system.protocol().stats().l1MissRate(),
            cold.protocol().stats().l1MissRate());
  system.protocol().checkInvariants();
}

TEST_P(SystemTest, EveryCoreMakesProgress) {
  const CmpConfig cfg = smallChip();
  CmpSystem system(cfg, GetParam(), VmLayout::matched(cfg, 4),
                   profiles::uniform4(tinyProfile()), 7);
  system.run(30'000);
  for (NodeId t = 0; t < cfg.tiles(); ++t)
    EXPECT_GT(system.opsCompleted(t), 100u) << "tile " << t << " starved";
}

TEST_P(SystemTest, AltLayoutRunsAndStaysCoherent) {
  const CmpConfig cfg = smallChip();
  CmpSystem system(cfg, GetParam(), VmLayout::alternative(cfg, 4),
                   profiles::uniform4(tinyProfile()), 42);
  system.run(30'000);
  EXPECT_GT(system.opsCompleted(), 1000u);
  system.protocol().checkInvariants();
}

TEST_P(SystemTest, DedupOffRunsAndStaysCoherent) {
  const CmpConfig cfg = smallChip();
  CmpSystem system(cfg, GetParam(), VmLayout::matched(cfg, 4),
                   profiles::uniform4(tinyProfile()), 42,
                   /*dedupEnabled=*/false);
  system.run(30'000);
  EXPECT_EQ(system.workload().pages().savedFraction(), 0.0);
  system.protocol().checkInvariants();
}

TEST_P(SystemTest, PredictionOffStillCorrect) {
  CmpConfig cfg = smallChip();
  cfg.enablePrediction = false;
  CmpSystem system(cfg, GetParam(), VmLayout::matched(cfg, 4),
                   profiles::uniform4(tinyProfile()), 42);
  system.run(30'000);
  const ProtocolStats& s = system.protocol().stats();
  // No prediction: no predicted classes (DiCo family only; the upgrade
  // path at an owner is local and still classified as a prediction hit).
  EXPECT_EQ(s.missCount(MissClass::PredMiss), 0u);
  system.protocol().checkInvariants();
}

TEST_P(SystemTest, MixedWorkloadRuns) {
  const CmpConfig cfg = smallChip();
  auto mixed = profiles::mixedSci();
  for (auto& p : mixed) {
    p.privatePagesPerThread = 2;
    p.vmSharedPages = 4;
  }
  CmpSystem system(cfg, GetParam(), VmLayout::matched(cfg, 4), mixed, 11);
  system.run(30'000);
  EXPECT_GT(system.opsCompleted(), 1000u);
  system.protocol().checkInvariants();
}

TEST(ExperimentRunner, ProducesConsistentResult) {
  ExperimentConfig cfg;
  cfg.chip = smallChip();
  cfg.workloadName = "radix4x16p";
  cfg.warmupCycles = 10'000;
  cfg.windowCycles = 20'000;
  cfg.protocol = ProtocolKind::DiCoProviders;
  const ExperimentResult r = runExperiment(cfg);
  EXPECT_EQ(r.workload, "radix4x16p");
  EXPECT_EQ(r.cycles, 20'000u);
  EXPECT_GT(r.ops, 0u);
  EXPECT_GT(r.throughput, 0.0);
  EXPECT_GT(r.cacheMw, 0.0);
  EXPECT_GT(r.linkMw, 0.0);
  EXPECT_GT(r.routingMw, 0.0);
  double fractions = 0.0;
  for (std::size_t c = 0; c < static_cast<std::size_t>(MissClass::kCount);
       ++c)
    fractions += r.missFraction(static_cast<MissClass>(c));
  EXPECT_NEAR(fractions, 1.0, 1e-9);
}

TEST(ExperimentRunner, DeterministicAcrossRuns) {
  ExperimentConfig cfg;
  cfg.chip = smallChip();
  cfg.workloadName = "lu4x16p";
  cfg.warmupCycles = 5'000;
  cfg.windowCycles = 10'000;
  cfg.protocol = ProtocolKind::DiCo;
  const ExperimentResult a = runExperiment(cfg);
  const ExperimentResult b = runExperiment(cfg);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.noc.messages, b.noc.messages);
  EXPECT_EQ(a.stats.l1Misses(), b.stats.l1Misses());
}

TEST(ExperimentRunner, RunAllProtocolsCoversEveryKind) {
  ExperimentConfig cfg;
  cfg.chip = smallChip();
  cfg.workloadName = "volrend4x16p";
  cfg.warmupCycles = 5'000;
  cfg.windowCycles = 10'000;
  const auto results = runAllProtocols(cfg);
  ASSERT_EQ(results.size(), allProtocolKinds().size());
  EXPECT_EQ(results[0].protocol, ProtocolKind::Directory);
  EXPECT_EQ(results[3].protocol, ProtocolKind::DiCoArin);
  EXPECT_EQ(results.back().protocol, ProtocolKind::Adapt);
}

}  // namespace
}  // namespace eecc
