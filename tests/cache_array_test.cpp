// Unit tests for the generic set-associative cache array.
#include <gtest/gtest.h>

#include "cache/cache_array.h"

namespace eecc {
namespace {

struct TestLine : CacheLineBase {
  int payload = 0;
};

Addr blk(std::uint64_t i) { return i * kBlockBytes; }

TEST(CacheArray, FindMissOnEmpty) {
  CacheArray<TestLine> c(64, 4);
  EXPECT_EQ(c.find(blk(1)), nullptr);
  EXPECT_EQ(c.validCount(), 0u);
}

TEST(CacheArray, InstallAndFind) {
  CacheArray<TestLine> c(64, 4);
  TestLine* slot = c.selectVictim(blk(5), nullptr);
  ASSERT_NE(slot, nullptr);
  c.install(*slot, blk(5)).payload = 42;
  TestLine* found = c.find(blk(5));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->payload, 42);
  EXPECT_EQ(c.validCount(), 1u);
}

TEST(CacheArray, SetIndexSeparatesBlocks) {
  CacheArray<TestLine> c(64, 4);  // 16 sets
  // Blocks 0 and 16 map to the same set; 0 and 1 to different sets.
  c.install(*c.selectVictim(blk(0), nullptr), blk(0));
  c.install(*c.selectVictim(blk(1), nullptr), blk(1));
  EXPECT_NE(c.find(blk(0)), nullptr);
  EXPECT_NE(c.find(blk(1)), nullptr);
  EXPECT_EQ(c.find(blk(16)), nullptr);
}

TEST(CacheArray, LruEvictsOldest) {
  CacheArray<TestLine> c(16, 4);  // 4 sets; same set: blocks 0,4,8,12,16...
  for (std::uint64_t i = 0; i < 4; ++i) {
    TestLine* v = c.selectVictim(blk(i * 4), nullptr);
    EXPECT_FALSE(v->valid);  // invalid ways first
    c.install(*v, blk(i * 4));
  }
  // Touch block 0 so block 4 becomes LRU.
  c.touch(*c.find(blk(0)));
  TestLine* victim = c.selectVictim(blk(16 * 4), nullptr);
  ASSERT_NE(victim, nullptr);
  EXPECT_TRUE(victim->valid);
  EXPECT_EQ(victim->addr, blk(4));
}

TEST(CacheArray, BusyLinesAreNotVictims) {
  CacheArray<TestLine> c(4, 4);  // one set
  for (std::uint64_t i = 0; i < 4; ++i)
    c.install(*c.selectVictim(blk(i), nullptr), blk(i));
  // Mark the LRU line (block 0) busy: victim must be block 1 instead.
  TestLine* victim = c.selectVictim(
      blk(9), [](const TestLine& l) { return l.addr == blk(0); });
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->addr, blk(1));
  // All busy -> nullptr.
  EXPECT_EQ(c.selectVictim(blk(9), [](const TestLine&) { return true; }),
            nullptr);
}

TEST(CacheArray, InstallResetsLineState) {
  CacheArray<TestLine> c(16, 4);
  TestLine* slot = c.selectVictim(blk(0), nullptr);
  c.install(*slot, blk(0)).payload = 99;
  // Re-install another block over it: payload must reset.
  c.invalidate(*c.find(blk(0)));
  TestLine* again = c.selectVictim(blk(0), nullptr);
  c.install(*again, blk(0));
  EXPECT_EQ(c.find(blk(0))->payload, 0);
}

TEST(CacheArray, ForEachValidVisitsAll) {
  CacheArray<TestLine> c(64, 4);
  for (std::uint64_t i = 0; i < 10; ++i)
    c.install(*c.selectVictim(blk(i), nullptr), blk(i));
  int count = 0;
  c.forEachValid([&](TestLine&) { ++count; });
  EXPECT_EQ(count, 10);
}

TEST(CacheArray, InvalidateFreesSlot) {
  CacheArray<TestLine> c(16, 4);
  c.install(*c.selectVictim(blk(3), nullptr), blk(3));
  c.invalidate(*c.find(blk(3)));
  EXPECT_EQ(c.find(blk(3)), nullptr);
  EXPECT_EQ(c.validCount(), 0u);
}

TEST(CacheArray, DirectMapped) {
  CacheArray<TestLine> c(8, 1);
  c.install(*c.selectVictim(blk(1), nullptr), blk(1));
  // Conflicting block (same set, 8 sets -> blocks 1 and 9 collide).
  TestLine* v = c.selectVictim(blk(9), nullptr);
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(v->valid);
  EXPECT_EQ(v->addr, blk(1));
}

}  // namespace
}  // namespace eecc
