// Unit tests for the timed NoC model: latency, contention, broadcast and
// the statistics the energy model consumes.
#include <gtest/gtest.h>

#include <vector>

#include "noc/network.h"
#include "sim/event_queue.h"

namespace eecc {
namespace {

struct NetFixture {
  EventQueue events;
  MeshTopology topo{8, 8};
  Network net{events, topo};
  std::vector<Message> delivered;

  NetFixture() {
    net.setHandler([this](const Message& m) { delivered.push_back(m); });
  }
};

TEST(Network, UnicastLatencyNoContention) {
  NetFixture f;
  Message m;
  m.src = 0;
  m.dst = 7;  // 7 hops across the top row
  m.cls = MsgClass::Control;
  f.net.send(m);
  f.events.runToCompletion();
  ASSERT_EQ(f.delivered.size(), 1u);
  // 7 hops * (2 link + 2 switch + 1 router) + (1 flit - 1) = 35 cycles.
  EXPECT_EQ(f.events.now(), 35u);
}

TEST(Network, DataMessageSerialization) {
  NetFixture f;
  Message m;
  m.src = 0;
  m.dst = 1;
  m.cls = MsgClass::Data;
  f.net.send(m);
  f.events.runToCompletion();
  // 1 hop * 5 + (5 flits - 1) = 9 cycles.
  EXPECT_EQ(f.events.now(), 9u);
}

TEST(Network, SelfMessageUsesNoNetwork) {
  NetFixture f;
  Message m;
  m.src = 5;
  m.dst = 5;
  f.net.send(m);
  f.events.runToCompletion();
  EXPECT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.net.stats().messages, 0u);
  EXPECT_EQ(f.net.stats().routings, 0u);
}

TEST(Network, StatsCountLinksFlitsRoutings) {
  NetFixture f;
  Message m;
  m.src = 0;
  m.dst = 9;  // distance 2
  m.cls = MsgClass::Data;
  f.net.send(m);
  f.events.runToCompletion();
  const NocStats& s = f.net.stats();
  EXPECT_EQ(s.messages, 1u);
  EXPECT_EQ(s.dataMessages, 1u);
  EXPECT_EQ(s.linksTraversed, 2u);
  EXPECT_EQ(s.linkFlits, 10u);   // 2 links * 5 flits
  EXPECT_EQ(s.routings, 3u);     // 3 routers on the path
}

TEST(Network, ContentionDelaysSecondMessage) {
  NetFixture f;
  Message a;
  a.src = 0;
  a.dst = 1;
  a.cls = MsgClass::Data;  // occupies link 0->1 for 5 cycles
  Message b = a;
  f.net.send(a);
  f.net.send(b);
  f.events.runToCompletion();
  ASSERT_EQ(f.delivered.size(), 2u);
  EXPECT_GT(f.net.stats().contentionWait.max(), 0.0);
}

TEST(Network, ContentionCanBeDisabled) {
  EventQueue events;
  MeshTopology topo(8, 8);
  NetworkConfig cfg;
  cfg.modelContention = false;
  Network net(events, topo, cfg);
  int count = 0;
  net.setHandler([&](const Message&) { ++count; });
  Message m;
  m.src = 0;
  m.dst = 1;
  m.cls = MsgClass::Data;
  net.send(m);
  net.send(m);
  events.runToCompletion();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(net.stats().contentionWait.max(), 0.0);
}

TEST(Network, BroadcastReachesEveryNode) {
  NetFixture f;
  Message m;
  m.src = 27;
  m.cls = MsgClass::Control;
  f.net.broadcast(m);
  f.events.runToCompletion();
  EXPECT_EQ(f.delivered.size(), 64u);
  std::vector<bool> seen(64, false);
  for (const Message& d : f.delivered) {
    EXPECT_FALSE(seen[static_cast<size_t>(d.dst)]);
    seen[static_cast<size_t>(d.dst)] = true;
  }
}

TEST(Network, BroadcastChargesTreeOnce) {
  NetFixture f;
  Message m;
  m.src = 0;
  m.cls = MsgClass::Control;
  f.net.broadcast(m);
  f.events.runToCompletion();
  const NocStats& s = f.net.stats();
  EXPECT_EQ(s.broadcasts, 1u);
  EXPECT_EQ(s.linksTraversed, 63u);  // spanning tree edges
  EXPECT_EQ(s.linkFlits, 63u);       // 1 flit each
  EXPECT_EQ(s.routings, 64u);        // every router forwards/replicates
}

TEST(Network, FarthestBroadcastTargetArrivesLast) {
  NetFixture f;
  Message m;
  m.src = 0;
  f.net.broadcast(m);
  f.events.runToCompletion();
  // Farthest node (63) is at distance 14: 14 * 5 = 70 cycles.
  EXPECT_EQ(f.events.now(), 70u);
}

TEST(FlitLevelNetwork, UncontendedLatencyMatchesMessageLevel) {
  for (const MsgClass cls : {MsgClass::Control, MsgClass::Data}) {
    EventQueue e1;
    EventQueue e2;
    MeshTopology topo(8, 8);
    NetworkConfig msgCfg;
    NetworkConfig flitCfg;
    flitCfg.flitLevel = true;
    Network msgNet(e1, topo, msgCfg);
    Network flitNet(e2, topo, flitCfg);
    msgNet.setHandler([](const Message&) {});
    flitNet.setHandler([](const Message&) {});
    Message m;
    m.src = 0;
    m.dst = 42;
    m.cls = cls;
    msgNet.send(m);
    flitNet.send(m);
    e1.runToCompletion();
    e2.runToCompletion();
    EXPECT_EQ(e1.now(), e2.now())
        << "uncontended flit-level must equal message-level";
  }
}

TEST(FlitLevelNetwork, FlitsInterleaveUnderContention) {
  // Two data messages sharing a link: flit-level interleaving delivers
  // the second no later than the message-level wholesale occupancy.
  auto lastArrival = [](bool flitLevel) {
    EventQueue e;
    MeshTopology topo(8, 8);
    NetworkConfig cfg;
    cfg.flitLevel = flitLevel;
    Network net(e, topo, cfg);
    net.setHandler([](const Message&) {});
    Message a;
    a.src = 0;
    a.dst = 3;
    a.cls = MsgClass::Data;
    Message b = a;
    net.send(a);
    net.send(b);
    e.runToCompletion();
    return e.now();
  };
  EXPECT_LE(lastArrival(true), lastArrival(false));
  EXPECT_GT(lastArrival(true), 0u);
}

TEST(FlitLevelNetwork, StatsIdenticalToMessageLevel) {
  EventQueue e;
  MeshTopology topo(8, 8);
  NetworkConfig cfg;
  cfg.flitLevel = true;
  Network net(e, topo, cfg);
  net.setHandler([](const Message&) {});
  Message m;
  m.src = 0;
  m.dst = 9;  // 2 hops
  m.cls = MsgClass::Data;
  net.send(m);
  e.runToCompletion();
  EXPECT_EQ(net.stats().linkFlits, 10u);
  EXPECT_EQ(net.stats().routings, 3u);
  EXPECT_EQ(net.stats().linksTraversed, 2u);
}

// ---------------------------------------------------------------------------
// reset() vs resetStats(): occupancy semantics (DESIGN.md §12 satellite)
// ---------------------------------------------------------------------------

TEST(Network, ResetStatsKeepsMessageLevelOccupancy) {
  // CmpSystem::warmup() clears counters but must keep in-flight link
  // occupancy so the measured window starts on a warm NoC.
  NetFixture f;
  Message m;
  m.src = 0;
  m.dst = 1;
  m.cls = MsgClass::Data;  // occupies link 0->1 for 5 cycles
  f.net.send(m);
  f.net.resetStats();
  f.net.send(m);  // still queues behind the first message's flits
  EXPECT_EQ(f.net.stats().messages, 1u);
  EXPECT_EQ(f.net.stats().contentionWait.max(), 5.0);
  f.events.runToCompletion();
}

TEST(Network, ResetClearsMessageLevelOccupancy) {
  NetFixture f;
  Message m;
  m.src = 0;
  m.dst = 1;
  m.cls = MsgClass::Data;
  f.net.send(m);
  f.net.send(m);
  f.net.reset();
  f.net.send(m);  // links are idle again: uncontended latency
  EXPECT_EQ(f.net.stats().messages, 1u);
  EXPECT_EQ(f.net.stats().contentionWait.max(), 0.0);
  EXPECT_EQ(f.net.stats().unicastLatency.max(), 9.0);  // 1 hop * 5 + 4
  f.events.runToCompletion();
}

TEST(Network, ResetClearsFlitLevelOccupancy) {
  // Regression: linkFlitSlot_ used to be lazily initialized inside
  // flitLevelArrival, so no reset path could clear it and a reused
  // network dragged stale flit-slot reservations into the next run.
  EventQueue events;
  MeshTopology topo(8, 8);
  NetworkConfig cfg;
  cfg.flitLevel = true;
  Network net(events, topo, cfg);
  int count = 0;
  net.setHandler([&](const Message&) { ++count; });
  Message m;
  m.src = 0;
  m.dst = 1;
  m.cls = MsgClass::Data;
  net.send(m);
  net.send(m);
  EXPECT_GT(net.stats().contentionWait.count(), 0u);
  net.reset();
  net.send(m);  // flit slots idle again: uncontended latency
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_EQ(net.stats().contentionWait.count(), 0u);
  EXPECT_EQ(net.stats().unicastLatency.max(), 9.0);
  events.runToCompletion();
  EXPECT_EQ(count, 3);
}

TEST(Network, ResetStatsKeepsFlitLevelOccupancy) {
  EventQueue events;
  MeshTopology topo(8, 8);
  NetworkConfig cfg;
  cfg.flitLevel = true;
  Network net(events, topo, cfg);
  net.setHandler([](const Message&) {});
  Message m;
  m.src = 0;
  m.dst = 1;
  m.cls = MsgClass::Data;
  net.send(m);
  net.resetStats();
  net.send(m);  // flit slots of the first message still reserved
  EXPECT_GT(net.stats().contentionWait.count(), 0u);
  events.runToCompletion();
}

}  // namespace
}  // namespace eecc
