// End-to-end conformance tests: clean fuzzing runs across all eight
// protocols, the differential cross-check, and the seeded-bug selftest
// (EECC_CHECK_SELFTEST) with its counterexample round-trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include "check/fuzzer.h"
#include "core/experiment.h"
#include "protocol_harness.h"

namespace eecc {
namespace {

FuzzOptions quickOptions() {
  FuzzOptions opt;
  opt.opsPerTile = 150;
  opt.sweepEvery = 10'000;
  opt.outDir = ::testing::TempDir();
  return opt;
}

TEST(Conformance, CleanRunHasNoViolationsUnderEveryProtocol) {
  const FuzzOptions opt = quickOptions();
  const Trace trace =
      makeFuzzTrace(opt.chip, opt.workloadName, /*seed=*/11, opt.opsPerTile);
  for (const ProtocolKind kind : allProtocolKinds()) {
    const ProtocolRunReport r = runTraceChecked(
        opt.chip, kind, trace, opt.sweepEvery, opt.progressBound);
    EXPECT_EQ(r.violationCount, 0u) << protocolName(kind);
    EXPECT_EQ(r.ops, trace.records().size()) << protocolName(kind);
  }
}

TEST(Conformance, DifferentialImagesAgreeAcrossProtocols) {
  SeedReport rep = fuzzOneSeed(quickOptions(), /*seed=*/5);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.mismatches.empty());
  EXPECT_TRUE(rep.counterexample.empty());
  ASSERT_EQ(rep.runs.size(), allProtocolKinds().size());
  // The per-block golden counts are the protocol-independent image.
  for (std::size_t i = 1; i < rep.runs.size(); ++i) {
    EXPECT_EQ(rep.runs[i].ops, rep.runs[0].ops);
    EXPECT_EQ(rep.runs[i].image.size(), rep.runs[0].image.size());
  }
}

TEST(Conformance, WorkloadDrivenExperimentPassesWithMonitorsAttached) {
  ExperimentConfig cfg;
  cfg.chip = testutil::smallChip();
  cfg.protocol = ProtocolKind::DiCoProviders;
  cfg.warmupCycles = 5'000;
  cfg.windowCycles = 20'000;
  cfg.conformanceCheck = true;
  cfg.checkSweepEvery = 5'000;
  const ExperimentResult r = runExperiment(cfg);
  EXPECT_EQ(r.checkViolations, 0u);
  EXPECT_GT(r.ops, 0u);
}

class ConformanceSelftest : public ::testing::Test {
 protected:
  void SetUp() override { setenv("EECC_CHECK_SELFTEST", "1", 1); }
  void TearDown() override { unsetenv("EECC_CHECK_SELFTEST"); }
};

TEST_F(ConformanceSelftest, SeededBugIsCaughtAndCounterexampleReplays) {
  FuzzOptions opt = quickOptions();
  opt.protocols = {ProtocolKind::DiCo};
  const SeedReport rep = fuzzOneSeed(opt, /*seed=*/2);
  ASSERT_FALSE(rep.ok());
  ASSERT_EQ(rep.runs.size(), 1u);
  EXPECT_GT(rep.runs[0].violationCount, 0u);
  ASSERT_FALSE(rep.counterexample.empty());

  // Round-trip: the dumped (minimized) trace still reproduces under the
  // buggy protocol...
  const Trace cex = Trace::load(rep.counterexample);
  EXPECT_GT(cex.records().size(), 0u);
  EXPECT_LE(cex.records().size(), rep.records);
  const ProtocolRunReport buggy = runTraceChecked(
      opt.chip, ProtocolKind::DiCo, cex, opt.sweepEvery, opt.progressBound);
  EXPECT_GT(buggy.violationCount, 0u);

  // ...and passes once the fault is disabled (protocols read the env at
  // construction).
  unsetenv("EECC_CHECK_SELFTEST");
  const ProtocolRunReport fixed = runTraceChecked(
      opt.chip, ProtocolKind::DiCo, cex, opt.sweepEvery, opt.progressBound);
  EXPECT_EQ(fixed.violationCount, 0u);

  std::remove(rep.counterexample.c_str());
}

TEST_F(ConformanceSelftest, MinimizationShrinksTheFailingStream) {
  FuzzOptions opt = quickOptions();
  opt.protocols = {ProtocolKind::DiCo};
  const Trace trace =
      makeFuzzTrace(opt.chip, opt.workloadName, /*seed=*/2, opt.opsPerTile);
  const Trace minimized = minimizeTrace(opt.chip, ProtocolKind::DiCo, trace,
                                        opt.sweepEvery, opt.progressBound);
  EXPECT_LT(minimized.records().size(), trace.records().size());
  EXPECT_GT(minimized.records().size(), 0u);
  const ProtocolRunReport r =
      runTraceChecked(opt.chip, ProtocolKind::DiCo, minimized,
                      opt.sweepEvery, opt.progressBound);
  EXPECT_GT(r.violationCount, 0u);
}

TEST(Conformance, FuzzCampaignRunsSeedsInParallel) {
  FuzzOptions opt = quickOptions();
  opt.seeds = 4;
  opt.opsPerTile = 80;
  const FuzzReport report = fuzz(opt);
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.seeds.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(report.seeds[i].seed, opt.baseSeed + i);
  EXPECT_EQ(report.totalViolations(), 0u);
}

}  // namespace
}  // namespace eecc
