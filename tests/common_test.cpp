// Unit tests for common/: bit helpers, RNG determinism, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>

#include "common/bits.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace eecc {
namespace {

TEST(Bits, Log2Ceil) {
  EXPECT_EQ(log2ceil(1), 0u);
  EXPECT_EQ(log2ceil(2), 1u);
  EXPECT_EQ(log2ceil(3), 2u);
  EXPECT_EQ(log2ceil(4), 2u);
  EXPECT_EQ(log2ceil(5), 3u);
  EXPECT_EQ(log2ceil(64), 6u);
  EXPECT_EQ(log2ceil(1024), 10u);
  EXPECT_EQ(log2ceil(1025), 11u);
}

TEST(Bits, Log2Floor) {
  EXPECT_EQ(log2floor(1), 0u);
  EXPECT_EQ(log2floor(2), 1u);
  EXPECT_EQ(log2floor(3), 1u);
  EXPECT_EQ(log2floor(64), 6u);
  EXPECT_EQ(log2floor(65), 6u);
}

TEST(Bits, IsPow2) {
  EXPECT_TRUE(isPow2(1));
  EXPECT_TRUE(isPow2(2));
  EXPECT_TRUE(isPow2(4096));
  EXPECT_FALSE(isPow2(0));
  EXPECT_FALSE(isPow2(3));
  EXPECT_FALSE(isPow2(4097));
}

TEST(Bits, BitsToKiB) {
  EXPECT_DOUBLE_EQ(bitsToKiB(8192), 1.0);
  EXPECT_DOUBLE_EQ(bitsToKiB(8 * 1024 * 134), 134.0);
}

TEST(Types, BlockAndPageArithmetic) {
  const Addr a = 0x12345678;
  EXPECT_EQ(blockAddr(a) % kBlockBytes, 0u);
  EXPECT_LE(blockAddr(a), a);
  EXPECT_LT(a - blockAddr(a), kBlockBytes);
  EXPECT_EQ(pageAddr(a) % kPageBytes, 0u);
  EXPECT_EQ(blockIndex(kBlockBytes * 7), 7u);
}

TEST(Types, ProtocolNames) {
  EXPECT_STREQ(protocolName(ProtocolKind::Directory), "Directory");
  EXPECT_STREQ(protocolName(ProtocolKind::DiCo), "DiCo");
  EXPECT_STREQ(protocolName(ProtocolKind::DiCoProviders), "DiCo-Providers");
  EXPECT_STREQ(protocolName(ProtocolKind::DiCoArin), "DiCo-Arin");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values reachable
}

TEST(Rng, ChanceFrequencies) {
  Rng r(99);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) acc.add(v);
  EXPECT_EQ(acc.count(), 4u);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 1.25, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, Merge) {
  Accumulator a;
  Accumulator b;
  a.add(1.0);
  a.add(2.0);
  b.add(10.0);
  a += b;
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_NEAR(a.mean(), 13.0 / 3.0, 1e-12);
}

TEST(Histogram, BucketsAndSaturation) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(-3.0);   // saturates low
  h.add(100.0);  // saturates high
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[5], 1u);
  EXPECT_EQ(h.buckets()[9], 1u);
  EXPECT_EQ(h.summary().count(), 4u);
  EXPECT_DOUBLE_EQ(h.bucketLow(5), 5.0);
}

// Regression: the pre-Welford `sumsq/n - mean^2` form cancels
// catastrophically on tight distributions around a large mean and went
// negative (1e7 samples of 1e9 +/- 1 has true variance exactly 1).
TEST(Accumulator, WelfordSurvivesLargeMeanTightSpread) {
  Accumulator acc;
  for (int i = 0; i < 10'000'000; ++i)
    acc.add(1e9 + ((i & 1) ? 1.0 : -1.0));
  EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
  EXPECT_GE(acc.variance(), 0.0);
  EXPECT_NEAR(acc.mean(), 1e9, 1e-3);
}

TEST(Accumulator, VarianceNeverNegativeOnConstantSamples) {
  // Identical samples: the centered moment must stay exactly clamped at
  // zero no matter how the rounding residue lands.
  Accumulator acc;
  for (int i = 0; i < 1'000'000; ++i) acc.add(1234567.89);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 1234567.89);
}

TEST(Accumulator, ChanMergeMatchesSequential) {
  // Chan's parallel merge must reproduce the single-stream moments —
  // the ExperimentRunner merges per-thread accumulators this way.
  Accumulator seq;
  Accumulator a;
  Accumulator b;
  for (int i = 0; i < 1000; ++i) {
    const double v = 100.0 + 0.001 * static_cast<double>(i * i % 97);
    seq.add(v);
    (i < 400 ? a : b).add(v);
  }
  a += b;
  EXPECT_EQ(a.count(), seq.count());
  // Sums differ by rounding only (FP addition is not associative).
  EXPECT_NEAR(a.sum(), seq.sum(), 1e-6);
  EXPECT_NEAR(a.mean(), seq.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), seq.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), seq.min());
  EXPECT_DOUBLE_EQ(a.max(), seq.max());
}

TEST(Accumulator, MergeWithEmptySides) {
  Accumulator a;
  Accumulator empty;
  a.add(3.0);
  a.add(5.0);
  a += empty;  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  Accumulator c;
  c += a;  // empty left side adopts the right side wholesale
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 4.0);
  EXPECT_DOUBLE_EQ(c.min(), 3.0);
  EXPECT_DOUBLE_EQ(c.max(), 5.0);
  EXPECT_NEAR(c.variance(), 1.0, 1e-12);
}

// Regression: add() used to cast the sample to int64 *before* clamping —
// undefined behaviour for values outside int64 range and for NaN/inf.
// The clamp now happens in floating point and non-finite samples route
// deterministically to the edge buckets.
TEST(Histogram, HugeValuesSaturateWithoutUb) {
  Histogram h(0.0, 10.0, 10);
  h.add(1e300);   // far beyond int64 range
  h.add(-1e300);
  h.add(9.999e18);  // just past int64 max
  EXPECT_EQ(h.buckets()[9], 2u);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.summary().count(), 3u);  // finite samples hit the summary
}

TEST(Histogram, NonFiniteRoutesToEdgeBuckets) {
  Histogram h(0.0, 10.0, 4);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(std::nan(""));
  EXPECT_EQ(h.buckets()[3], 2u);  // +inf and NaN: highest bucket
  EXPECT_EQ(h.buckets()[0], 1u);  // -inf: lowest bucket
  // Non-finite samples must not poison the summary moments.
  EXPECT_EQ(h.summary().count(), 0u);
  h.add(2.5);
  EXPECT_EQ(h.summary().count(), 1u);
  EXPECT_DOUBLE_EQ(h.summary().mean(), 2.5);
  EXPECT_FALSE(std::isnan(h.summary().variance()));
}

TEST(Histogram, DegenerateRangeStillDeterministic) {
  Histogram h(5.0, 5.0, 3);  // zero span: pos is NaN or inf
  h.add(5.0);
  h.add(4.0);
  h.add(6.0);
  std::uint64_t total = 0;
  for (const std::uint64_t c : h.buckets()) total += c;
  EXPECT_EQ(total, 3u);  // every sample lands somewhere, no UB
  EXPECT_EQ(h.summary().count(), 3u);
}

TEST(CounterSet, AccumulateAndMerge) {
  CounterSet a;
  a["x"] += 3;
  a["y"] += 1;
  CounterSet b;
  b["x"] += 2;
  b["z"] += 7;
  a.merge(b);
  EXPECT_EQ(a.get("x"), 5u);
  EXPECT_EQ(a.get("y"), 1u);
  EXPECT_EQ(a.get("z"), 7u);
  EXPECT_EQ(a.get("missing"), 0u);
}

}  // namespace
}  // namespace eecc
