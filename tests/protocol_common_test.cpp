// Protocol-independent correctness tests, run against all four protocols:
// basic read/write semantics, coherence across tiles, invalidation on
// writes, eviction pressure, and invariant preservation.
#include <gtest/gtest.h>

#include "protocol_harness.h"

namespace eecc {
namespace {

using testutil::Harness;
using testutil::smallConfig;

class AllProtocols : public ::testing::TestWithParam<ProtocolKind> {};

INSTANTIATE_TEST_SUITE_P(
    Kinds, AllProtocols,
    ::testing::Values(ProtocolKind::Directory, ProtocolKind::DiCo,
                      ProtocolKind::DiCoProviders, ProtocolKind::DiCoArin),
    [](const auto& info) {
      std::string n = protocolName(info.param);
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

constexpr Addr kB0 = 0 * kBlockBytes;
constexpr Addr kB1 = 17 * kBlockBytes;

TEST_P(AllProtocols, ColdReadReturnsZero) {
  Harness h(GetParam());
  EXPECT_EQ(h.read(0, kB0), 0u);
  EXPECT_EQ(h.proto().stats().readMisses, 1u);
  EXPECT_EQ(h.proto().stats().missCount(MissClass::Memory), 1u);
  h.check();
}

TEST_P(AllProtocols, SecondReadIsAnL1Hit) {
  Harness h(GetParam());
  h.read(0, kB0);
  const auto missesBefore = h.proto().stats().l1Misses();
  h.read(0, kB0);
  EXPECT_EQ(h.proto().stats().l1Misses(), missesBefore);
  EXPECT_EQ(h.proto().stats().l1ReadHits, 1u);
  h.check();
}

TEST_P(AllProtocols, ReadAfterWriteSeesTheValue) {
  Harness h(GetParam());
  h.write(0, kB0);
  const std::uint64_t committed = h.proto().committedValue(kB0);
  EXPECT_GT(committed, 0u);
  EXPECT_EQ(h.read(0, kB0), committed);
  EXPECT_EQ(h.read(5, kB0), committed);  // remote reader
  h.check();
}

TEST_P(AllProtocols, RemoteReadAfterRemoteWrite) {
  Harness h(GetParam());
  h.write(3, kB1);
  EXPECT_EQ(h.read(12, kB1), h.proto().committedValue(kB1));
  h.check();
}

TEST_P(AllProtocols, WriteInvalidatesAllSharers) {
  Harness h(GetParam());
  // Spread copies across several tiles (and areas).
  for (const NodeId t : {0, 1, 4, 5, 10, 15}) h.read(t, kB0);
  h.check();
  h.write(7, kB0);
  h.check();
  const std::uint64_t committed = h.proto().committedValue(kB0);
  for (const NodeId t : {0, 1, 4, 5, 10, 15})
    EXPECT_EQ(h.read(t, kB0), committed) << "tile " << t << " read stale";
  h.check();
}

TEST_P(AllProtocols, WriteAfterWriteChain) {
  Harness h(GetParam());
  for (const NodeId t : {0, 5, 10, 15, 3, 12}) {
    h.write(t, kB0);
    h.check();
  }
  EXPECT_EQ(h.read(8, kB0), h.proto().committedValue(kB0));
}

TEST_P(AllProtocols, UpgradeFromSharedState) {
  Harness h(GetParam());
  h.read(0, kB0);
  h.read(1, kB0);
  h.write(0, kB0);  // 0 holds S: upgrade path
  EXPECT_GE(h.proto().stats().upgrades, 1u);
  EXPECT_EQ(h.read(1, kB0), h.proto().committedValue(kB0));
  h.check();
}

TEST_P(AllProtocols, InterleavedReadersAndWriters) {
  Harness h(GetParam());
  std::uint64_t ops = 0;
  for (int round = 0; round < 8; ++round) {
    for (NodeId t = 0; t < 16; ++t) {
      if ((round + t) % 5 == 0) h.write(t, kB0);
      else EXPECT_EQ(h.read(t, kB0), h.proto().committedValue(kB0));
      ++ops;
    }
    h.check();
  }
  EXPECT_EQ(h.proto().stats().l1Accesses(), ops);
}

TEST_P(AllProtocols, ManyBlocksForceL1Evictions) {
  Harness h(GetParam());
  // 64-entry L1, 4-way: 64 distinct blocks mapping everywhere + reuse.
  for (std::uint64_t i = 0; i < 200; ++i) h.read(0, i * kBlockBytes);
  h.check();
  // Everything still readable and consistent.
  for (std::uint64_t i = 0; i < 200; i += 7)
    EXPECT_EQ(h.read(0, i * kBlockBytes),
              h.proto().committedValue(i * kBlockBytes));
  h.check();
}

TEST_P(AllProtocols, DirtyEvictionsPreserveValues) {
  Harness h(GetParam());
  // Write many blocks from one tile so dirty lines get evicted.
  for (std::uint64_t i = 0; i < 120; ++i) h.write(2, i * kBlockBytes);
  h.check();
  for (std::uint64_t i = 0; i < 120; i += 3)
    EXPECT_EQ(h.read(9, i * kBlockBytes),
              h.proto().committedValue(i * kBlockBytes));
  h.check();
}

TEST_P(AllProtocols, L2PressureForcesL2Evictions) {
  Harness h(GetParam());
  // 256-entry L2 banks x 16 = 4096 chip lines; write 6000 blocks from
  // varied tiles to force L2/dir evictions and their invalidations.
  for (std::uint64_t i = 0; i < 6000; ++i)
    h.write(static_cast<NodeId>(i % 16), i * kBlockBytes);
  h.check();
  // Write-once streams exercise capacity management either as L2 data
  // evictions (DiCo family stores relinquished blocks at the home) or as
  // directory-entry evictions (the flat directory's NCID dir cache).
  EXPECT_GT(h.proto().stats().l2Evictions +
                h.proto().stats().dirEvictionInvalidations,
            0u);
  for (std::uint64_t i = 0; i < 6000; i += 101)
    EXPECT_EQ(h.read(static_cast<NodeId>((i + 3) % 16), i * kBlockBytes),
              h.proto().committedValue(i * kBlockBytes));
  h.check();
}

TEST_P(AllProtocols, ConcurrentAccessesToSameBlockSerialize) {
  Harness h(GetParam());
  int completed = 0;
  for (NodeId t = 0; t < 16; ++t)
    h.issue(t, kB0, t % 3 == 0 ? AccessType::Write : AccessType::Read,
            [&completed] { ++completed; });
  h.drain();
  EXPECT_EQ(completed, 16);
  h.check();
  const std::uint64_t committed = h.proto().committedValue(kB0);
  for (NodeId t = 0; t < 16; ++t) EXPECT_EQ(h.read(t, kB0), committed);
}

TEST_P(AllProtocols, ConcurrentAccessesToManyBlocks) {
  Harness h(GetParam());
  int completed = 0;
  for (int round = 0; round < 10; ++round) {
    for (NodeId t = 0; t < 16; ++t) {
      const Addr block = ((t * 7 + round) % 40) * kBlockBytes;
      h.issue(t, block, (t + round) % 4 == 0 ? AccessType::Write
                                             : AccessType::Read,
              [&completed] { ++completed; });
    }
    h.drain();
    h.check();
  }
  EXPECT_EQ(completed, 160);
}

TEST_P(AllProtocols, MemoryFetchCountsAndTraffic) {
  Harness h(GetParam());
  h.read(0, kB0);
  EXPECT_EQ(h.proto().stats().memoryFetches, 1u);
  EXPECT_GT(h.net().stats().messages, 0u);
  EXPECT_GT(h.net().stats().dataMessages, 0u);  // the fill
}

TEST_P(AllProtocols, MissLatencyIsPlausible) {
  Harness h(GetParam());
  h.read(0, kB0);  // memory miss: >= 300 cycles
  EXPECT_GE(h.proto().stats().missLatency.min(), 300.0);
  h.read(1, kB0);  // on-chip: far less
  EXPECT_LT(h.proto().stats().missLatency.min(), 300.0);
}

TEST_P(AllProtocols, StatsAccounting) {
  Harness h(GetParam());
  h.read(0, kB0);
  h.read(0, kB0);
  h.write(0, kB0);
  h.write(1, kB0);
  const ProtocolStats& s = h.proto().stats();
  EXPECT_EQ(s.reads, 2u);
  EXPECT_EQ(s.writes, 2u);
  EXPECT_EQ(s.l1ReadHits, 1u);
  EXPECT_EQ(s.readMisses, 1u);
  // First write hits (tile 0 owns the block exclusively after its read in
  // Directory/DiCo-family: E->M silent upgrade); the remote write misses.
  EXPECT_GE(s.writeMisses, 1u);
  std::uint64_t classified = 0;
  for (std::size_t c = 0; c < s.missByClass.size(); ++c)
    classified += s.missByClass[c];
  EXPECT_EQ(classified, s.l1Misses());
}

// Differential test: every protocol must observe the same values for the
// same access pattern.
TEST(ProtocolDifferential, SameStreamSameValues) {
  const auto kinds = {ProtocolKind::Directory, ProtocolKind::DiCo,
                      ProtocolKind::DiCoProviders, ProtocolKind::DiCoArin};
  // Deterministic mixed stream.
  struct Op {
    NodeId tile;
    Addr block;
    bool write;
  };
  std::vector<Op> ops;
  Rng rng(123);
  for (int i = 0; i < 3000; ++i)
    ops.push_back({static_cast<NodeId>(rng.below(16)),
                   rng.below(96) * kBlockBytes, rng.chance(0.3)});

  std::vector<std::vector<std::uint64_t>> observed;
  for (const ProtocolKind kind : kinds) {
    Harness h(kind);
    std::vector<std::uint64_t> values;
    for (const Op& op : ops) {
      if (op.write) h.write(op.tile, op.block);
      else values.push_back(h.read(op.tile, op.block));
    }
    h.check();
    observed.push_back(std::move(values));
  }
  for (std::size_t k = 1; k < observed.size(); ++k)
    EXPECT_EQ(observed[0], observed[k])
        << "protocol " << k << " diverged from the directory baseline";
}

}  // namespace
}  // namespace eecc
