// Attribution-ledger tests (DESIGN.md §11). The ledger is only useful if
// it is a *decomposition* of the legacy chip-level stats, so the core
// battery here is exact reconciliation: summing every ledger matrix over
// all rows × areas must reproduce the corresponding ProtocolStats /
// NocStats / CacheEnergyEvents counter bit-for-bit, on every protocol ×
// workload pair. Plus the two harness properties every observability
// attachment owes us: attaching changes no simulation counter, and
// results are bit-identical regardless of EECC_JOBS.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "core/experiment.h"
#include "core/runner.h"
#include "obs/ledger.h"
#include "protocols/protocol_stats.h"

namespace eecc {
namespace {

ExperimentConfig ledgerConfig(ProtocolKind kind,
                              const std::string& workload) {
  ExperimentConfig cfg;
  cfg.chip = fuzzChip();
  cfg.protocol = kind;
  cfg.workloadName = workload;
  cfg.warmupCycles = 10'000;
  cfg.windowCycles = 30'000;
  cfg.obs.ledger = true;
  cfg.obs.ledgerOccupancyEvery = 5'000;
  return cfg;
}

const std::vector<std::string> kWorkloads = {"apache4x16p", "mixed-com"};

TEST(Ledger, MissMatrixReconcilesExactly) {
  for (const ProtocolKind kind : allProtocolKinds()) {
    for (const std::string& wl : kWorkloads) {
      const ExperimentResult r = runExperiment(ledgerConfig(kind, wl));
      ASSERT_NE(r.ledger, nullptr);
      const AttributionLedger& l = *r.ledger;
      for (std::size_t c = 0;
           c < static_cast<std::size_t>(MissClass::kCount); ++c) {
        std::uint64_t sum = 0;
        for (std::size_t row = 0; row < l.rows(); ++row)
          for (std::size_t a = 0; a < l.numAreas(); ++a)
            sum += l.missCount(row, a, static_cast<MissClass>(c));
        EXPECT_EQ(sum, r.stats.missByClass[c])
            << protocolName(kind) << " " << wl << " class " << c;
      }
      // Latency accumulators and per-row histograms count every miss
      // exactly once.
      std::uint64_t latCount = 0;
      for (std::size_t row = 0; row < l.rows(); ++row) {
        std::uint64_t rowCount = 0;
        for (std::size_t a = 0; a < l.numAreas(); ++a) {
          latCount += l.missLatency(row, a).count();
          rowCount += l.missLatency(row, a).count();
        }
        std::uint64_t histCount = 0;
        for (const std::uint64_t b : l.latencyHistogram(row).buckets())
          histCount += b;
        EXPECT_EQ(histCount, rowCount)
            << protocolName(kind) << " " << wl << " row " << row;
      }
      EXPECT_EQ(latCount, r.stats.missLatency.count())
          << protocolName(kind) << " " << wl;
    }
  }
}

TEST(Ledger, NetworkMatrixReconcilesExactly) {
  for (const ProtocolKind kind : allProtocolKinds()) {
    for (const std::string& wl : kWorkloads) {
      const ExperimentResult r = runExperiment(ledgerConfig(kind, wl));
      ASSERT_NE(r.ledger, nullptr);
      const AttributionLedger& l = *r.ledger;
      AttributionLedger::NetCell sum;
      for (std::size_t row = 0; row < l.rows(); ++row)
        for (std::size_t a = 0; a < l.numAreas(); ++a) {
          const AttributionLedger::NetCell& n = l.net(row, a);
          sum.messages += n.messages;
          sum.broadcasts += n.broadcasts;
          sum.hops += n.hops;
          sum.flits += n.flits;
          sum.routings += n.routings;
        }
      EXPECT_EQ(sum.messages, r.noc.messages) << protocolName(kind) << wl;
      EXPECT_EQ(sum.broadcasts, r.noc.broadcasts)
          << protocolName(kind) << wl;
      EXPECT_EQ(sum.hops, r.noc.linksTraversed) << protocolName(kind) << wl;
      EXPECT_EQ(sum.flits, r.noc.linkFlits) << protocolName(kind) << wl;
      EXPECT_EQ(sum.routings, r.noc.routings) << protocolName(kind) << wl;
    }
  }
}

TEST(Ledger, EnergyMatrixReconcilesExactly) {
  for (const ProtocolKind kind : allProtocolKinds()) {
    for (const std::string& wl : kWorkloads) {
      const ExperimentResult r = runExperiment(ledgerConfig(kind, wl));
      ASSERT_NE(r.ledger, nullptr);
      const AttributionLedger& l = *r.ledger;
      for (const EnergyEventField& f : energyEventFields()) {
        std::uint64_t sum = 0;
        for (std::size_t row = 0; row < l.rows(); ++row)
          for (std::size_t a = 0; a < l.numAreas(); ++a)
            sum += l.energy(row, a).*f.field;
        EXPECT_EQ(sum, r.events.*f.field)
            << protocolName(kind) << " " << wl << " " << f.name;
      }
    }
  }
}

TEST(Ledger, AttachingChangesNoSimulationCounter) {
  for (const ProtocolKind kind : allProtocolKinds()) {
    ExperimentConfig with = ledgerConfig(kind, "apache4x16p");
    ExperimentConfig without = with;
    without.obs.ledger = false;
    const ExperimentResult a = runExperiment(with);
    const ExperimentResult b = runExperiment(without);
    EXPECT_EQ(a.ops, b.ops) << protocolName(kind);
    EXPECT_EQ(a.cycles, b.cycles) << protocolName(kind);
    EXPECT_EQ(a.simEvents, b.simEvents) << protocolName(kind);
    EXPECT_EQ(std::memcmp(&a.events, &b.events, sizeof a.events), 0)
        << protocolName(kind);
    EXPECT_EQ(a.noc.messages, b.noc.messages) << protocolName(kind);
    EXPECT_EQ(a.noc.linkFlits, b.noc.linkFlits) << protocolName(kind);
    EXPECT_EQ(a.stats.l1Misses(), b.stats.l1Misses()) << protocolName(kind);
    EXPECT_EQ(a.stats.missLatency.sum(), b.stats.missLatency.sum())
        << protocolName(kind);
  }
}

TEST(Ledger, BitIdenticalAcrossPoolWidths) {
  std::vector<ExperimentConfig> cfgs;
  for (const ProtocolKind kind : allProtocolKinds())
    cfgs.push_back(ledgerConfig(kind, "apache4x16p"));
  for (ExperimentConfig& cfg : cfgs) cfg.obs.snapshotMetrics = true;

  ExperimentRunner narrow(1);
  ExperimentRunner wide(4);
  const auto a = narrow.runMany(cfgs);
  const auto b = wide.runMany(cfgs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].metrics.size(), b[i].metrics.size()) << i;
    for (std::size_t m = 0; m < a[i].metrics.size(); ++m) {
      const auto& sa = a[i].metrics[m];
      const auto& sb = b[i].metrics[m];
      ASSERT_EQ(sa.name, sb.name) << i;
      EXPECT_EQ(sa.kind, sb.kind) << sa.name;
      if (sa.kind == MetricRegistry::Kind::Counter) {
        EXPECT_EQ(sa.u64, sb.u64) << sa.name;
      } else {
        // Bitwise, not ==: the determinism claim is bit-identity.
        EXPECT_EQ(std::memcmp(&sa.f64, &sb.f64, sizeof sa.f64), 0)
            << sa.name;
      }
    }
  }
}

TEST(Ledger, OccupancyAndLayoutSanity) {
  const ExperimentResult r =
      runExperiment(ledgerConfig(ProtocolKind::DiCo, "apache4x16p"));
  ASSERT_NE(r.ledger, nullptr);
  const AttributionLedger& l = *r.ledger;
  EXPECT_GT(l.occupancySamples(), 0u);

  // The layout partitions the chip: tile assignments over all rows and
  // areas cover every tile exactly once.
  std::uint64_t tiles = 0;
  for (std::size_t row = 0; row < l.rows(); ++row)
    for (std::size_t a = 0; a < l.numAreas(); ++a)
      tiles += l.layoutTiles(row, a);
  EXPECT_EQ(tiles, static_cast<std::uint64_t>(fuzzChip().tiles()));

  // Occupancy never exceeds capacity: accumulated line counts are bounded
  // by samples × total lines of the level.
  const CmpConfig chip = fuzzChip();
  std::uint64_t l1 = 0;
  std::uint64_t l2 = 0;
  for (std::size_t row = 0; row < l.rows(); ++row) {
    l1 += l.l1OccupiedLines(row);
    for (std::size_t a = 0; a < l.numAreas(); ++a)
      l2 += l.l2OccupiedLines(row, a);
  }
  const std::uint64_t tilesN = static_cast<std::uint64_t>(chip.tiles());
  EXPECT_LE(l1, l.occupancySamples() * tilesN * chip.l1.entries);
  EXPECT_LE(l2, l.occupancySamples() * tilesN * chip.l2.entries);
  // A warmed-up run has real cached footprint attributed to the VMs.
  EXPECT_GT(l1 + l2, 0u);
}

}  // namespace
}  // namespace eecc
