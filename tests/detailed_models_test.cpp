// Full-stack integration under the detailed substrate models: DDR memory
// controllers and flit-level NoC arbitration, alone and combined, across
// all four protocols.
#include <gtest/gtest.h>

#include "core/cmp_system.h"
#include "protocol_harness.h"
#include "workload/profile.h"

namespace eecc {
namespace {

using testutil::smallChip;

BenchmarkProfile tinyProfile() {
  // 24 shared pages: larger than the tiny L2 share, forcing memory traffic.
  return testutil::tinyProfile(profiles::jbb(), 4, 24);
}

struct ModelCase {
  ProtocolKind kind;
  bool ddr;
  bool flit;
};

class DetailedModels : public ::testing::TestWithParam<ModelCase> {};

std::string caseName(const ::testing::TestParamInfo<ModelCase>& info) {
  std::string n = protocolName(info.param.kind);
  for (auto& c : n)
    if (c == '-') c = '_';
  if (info.param.ddr) n += "_ddr";
  if (info.param.flit) n += "_flit";
  return n;
}

std::vector<ModelCase> makeCases() {
  std::vector<ModelCase> cases;
  for (const ProtocolKind k :
       {ProtocolKind::Directory, ProtocolKind::DiCo,
        ProtocolKind::DiCoProviders, ProtocolKind::DiCoArin}) {
    cases.push_back({k, true, false});
    cases.push_back({k, false, true});
    cases.push_back({k, true, true});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Combos, DetailedModels,
                         ::testing::ValuesIn(makeCases()), caseName);

TEST_P(DetailedModels, RunsCoherently) {
  CmpConfig cfg = smallChip();
  if (GetParam().ddr) cfg.memoryModel = CmpConfig::MemoryModel::Ddr;
  if (GetParam().flit) cfg.net.flitLevel = true;
  CmpSystem sys(cfg, GetParam().kind, VmLayout::matched(cfg, 4),
                profiles::uniform4(tinyProfile()), 21);
  sys.run(30'000);
  EXPECT_GT(sys.opsCompleted(), 1000u);
  sys.protocol().checkInvariants();
  if (GetParam().ddr) {
    std::uint64_t requests = 0;
    for (const DdrController& c : sys.protocol().ddrControllers())
      requests += c.requests();
    EXPECT_GT(requests, 0u) << "DDR model never exercised";
  }
}

TEST(DetailedModels, DdrRowLocalityIsVisible) {
  CmpConfig cfg = smallChip();
  cfg.memoryModel = CmpConfig::MemoryModel::Ddr;
  CmpSystem sys(cfg, ProtocolKind::Directory, VmLayout::matched(cfg, 4),
                profiles::uniform4(tinyProfile()), 3);
  sys.run(40'000);
  std::uint64_t hits = 0;
  std::uint64_t requests = 0;
  for (const DdrController& c : sys.protocol().ddrControllers()) {
    hits += c.rowHits();
    requests += c.requests();
  }
  ASSERT_GT(requests, 100u);
  // Page-grained workload locality must produce some row-buffer hits.
  EXPECT_GT(hits, 0u);
}

TEST(DetailedModels, DdrChangesLatencyNotValues) {
  // Same stream under both memory models: identical observed values,
  // (possibly) different timing.
  CmpConfig fixedCfg = smallChip();
  CmpConfig ddrCfg = smallChip();
  ddrCfg.memoryModel = CmpConfig::MemoryModel::Ddr;
  CmpSystem a(fixedCfg, ProtocolKind::DiCo, VmLayout::matched(fixedCfg, 4),
              profiles::uniform4(tinyProfile()), 9);
  CmpSystem b(ddrCfg, ProtocolKind::DiCo, VmLayout::matched(ddrCfg, 4),
              profiles::uniform4(tinyProfile()), 9);
  a.run(30'000);
  b.run(30'000);
  a.protocol().checkInvariants();
  b.protocol().checkInvariants();
  EXPECT_GT(a.opsCompleted(), 0u);
  EXPECT_GT(b.opsCompleted(), 0u);
}

}  // namespace
}  // namespace eecc
