// Unit tests for the chip configuration: area division, home mapping,
// memory controllers and the matched / "-alt" VM layouts of Figure 6.
#include <gtest/gtest.h>

#include <set>

#include "core/config.h"

namespace eecc {
namespace {

TEST(CmpConfig, DefaultsMatchTableIII) {
  CmpConfig cfg;
  cfg.validate();
  EXPECT_EQ(cfg.tiles(), 64);
  EXPECT_EQ(cfg.tilesPerArea(), 16);
  EXPECT_EQ(cfg.l1.entries * kBlockBytes, 128u * 1024u);  // 128 KB
  EXPECT_EQ(cfg.l2.entries * kBlockBytes, 1024u * 1024u);  // 1 MB per bank
  EXPECT_EQ(cfg.memLatency, 300u);
}

TEST(CmpConfig, FourAreasAreQuadrants) {
  CmpConfig cfg;
  // Corners of the 8x8 mesh land in the four distinct quadrants.
  EXPECT_EQ(cfg.areaOf(0), 0);                // (0,0)
  EXPECT_EQ(cfg.areaOf(7), 1);                // (7,0)
  EXPECT_EQ(cfg.areaOf(56), 2);               // (0,7)
  EXPECT_EQ(cfg.areaOf(63), 3);               // (7,7)
  // Every area has exactly 16 tiles.
  for (AreaId a = 0; a < 4; ++a)
    EXPECT_EQ(cfg.tilesInArea(a).size(), 16u);
}

TEST(CmpConfig, AreaCountVariants) {
  for (const std::uint32_t areas : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    CmpConfig cfg;
    cfg.numAreas = areas;
    cfg.validate();
    std::set<AreaId> seen;
    for (NodeId t = 0; t < cfg.tiles(); ++t) seen.insert(cfg.areaOf(t));
    EXPECT_EQ(seen.size(), areas);
    for (AreaId a = 0; a < static_cast<AreaId>(areas); ++a)
      EXPECT_EQ(cfg.tilesInArea(a).size(), 64u / areas);
  }
}

TEST(CmpConfig, AreasAreContiguousRectangles) {
  CmpConfig cfg;
  cfg.numAreas = 4;
  // Tiles of area 0 are the 4x4 top-left quadrant.
  const auto tiles = cfg.tilesInArea(0);
  for (const NodeId t : tiles) {
    EXPECT_LT(t % 8, 4);
    EXPECT_LT(t / 8, 4);
  }
}

TEST(CmpConfig, HomeInterleavesAllBanks) {
  CmpConfig cfg;
  std::set<NodeId> homes;
  for (std::uint64_t i = 0; i < 64; ++i)
    homes.insert(cfg.homeOf(i * kBlockBytes));
  EXPECT_EQ(homes.size(), 64u);
  // Stable mapping.
  EXPECT_EQ(cfg.homeOf(kBlockBytes * 5), cfg.homeOf(kBlockBytes * 5));
}

TEST(CmpConfig, MemControllersOnBorders) {
  CmpConfig cfg;
  const auto mcs = cfg.memControllerTiles();
  EXPECT_EQ(mcs.size(), 8u);
  std::set<NodeId> unique(mcs.begin(), mcs.end());
  EXPECT_EQ(unique.size(), 8u);
  for (const NodeId mc : mcs) {
    const std::int32_t y = mc / 8;
    EXPECT_TRUE(y == 0 || y == 7) << "controller not on a border row";
  }
}

TEST(CmpConfig, MemControllerOfSpreadsPages) {
  CmpConfig cfg;
  std::set<NodeId> used;
  for (std::uint64_t p = 0; p < 16; ++p)
    used.insert(cfg.memControllerOf(p * kPageBytes));
  EXPECT_EQ(used.size(), 8u);
}

TEST(VmLayout, MatchedLayoutFollowsAreas) {
  CmpConfig cfg;
  const VmLayout layout = VmLayout::matched(cfg, 4);
  EXPECT_EQ(layout.numVms, 4u);
  for (NodeId t = 0; t < cfg.tiles(); ++t)
    EXPECT_EQ(layout.vmOf(t), cfg.areaOf(t));
  for (VmId vm = 0; vm < 4; ++vm)
    EXPECT_EQ(layout.tilesOfVm(vm).size(), 16u);
}

TEST(VmLayout, AlternativeLayoutStraddlesAreas) {
  CmpConfig cfg;
  const VmLayout layout = VmLayout::alternative(cfg, 4);
  // Every VM must use tiles from more than one area (Figure 6, right).
  for (VmId vm = 0; vm < 4; ++vm) {
    std::set<AreaId> areas;
    for (const NodeId t : layout.tilesOfVm(vm)) areas.insert(cfg.areaOf(t));
    EXPECT_GT(areas.size(), 1u) << "VM " << vm << " fits one area";
  }
  // Still a partition: 16 tiles each.
  for (VmId vm = 0; vm < 4; ++vm)
    EXPECT_EQ(layout.tilesOfVm(vm).size(), 16u);
}

TEST(VmLayout, FewerVmsThanAreasLeavesIdleTiles) {
  CmpConfig cfg;
  const VmLayout layout = VmLayout::matched(cfg, 2);
  int idle = 0;
  for (NodeId t = 0; t < cfg.tiles(); ++t)
    if (layout.vmOf(t) < 0) ++idle;
  EXPECT_EQ(idle, 32);
}

}  // namespace
}  // namespace eecc
