// Flat-directory specific behaviour: MESI states, home indirection, NCID
// directory cache semantics.
#include <gtest/gtest.h>

#include "protocol_harness.h"
#include "protocols/directory.h"

namespace eecc {
namespace {

using testutil::Harness;

constexpr Addr kB = 5 * kBlockBytes;

DirectoryProtocol& dir(Harness& h) {
  return dynamic_cast<DirectoryProtocol&>(h.proto());
}

TEST(Directory, ColdReadInstallsExclusive) {
  Harness h(ProtocolKind::Directory);
  h.read(3, kB);
  EXPECT_EQ(dir(h).l1Line(3, kB).state, 'E');
}

TEST(Directory, SecondReaderDowngradesToShared) {
  Harness h(ProtocolKind::Directory);
  h.read(3, kB);
  h.read(7, kB);
  EXPECT_EQ(dir(h).l1Line(3, kB).state, 'S');
  EXPECT_EQ(dir(h).l1Line(7, kB).state, 'S');
  h.check();
}

TEST(Directory, SilentExclusiveWriteUpgrade) {
  Harness h(ProtocolKind::Directory);
  h.read(3, kB);
  const auto missesBefore = h.proto().stats().l1Misses();
  h.write(3, kB);  // E -> M without any message
  EXPECT_EQ(h.proto().stats().l1Misses(), missesBefore);
  EXPECT_EQ(dir(h).l1Line(3, kB).state, 'M');
  h.check();
}

TEST(Directory, DirtyForwardWritesBackToHome) {
  Harness h(ProtocolKind::Directory);
  h.write(3, kB);
  const auto wbBefore = h.proto().stats().writebacks;
  h.read(7, kB);  // forwarded read: the M owner must write back
  EXPECT_EQ(h.proto().stats().writebacks, wbBefore + 1);
  EXPECT_EQ(dir(h).l1Line(3, kB).state, 'S');
  h.check();
}

TEST(Directory, ThreeHopMissClassification) {
  Harness h(ProtocolKind::Directory);
  h.write(3, kB);
  h.read(7, kB);
  EXPECT_EQ(h.proto().stats().missCount(MissClass::UnpredOwner), 1u);
  // Reads served from the home's L2 are two-hop.
  h.read(9, kB);
  EXPECT_EQ(h.proto().stats().missCount(MissClass::UnpredL2), 1u);
}

TEST(Directory, UpgradeGetsAckCountOnly) {
  Harness h(ProtocolKind::Directory);
  h.read(3, kB);
  h.read(7, kB);
  const auto dataBefore = h.net().stats().dataMessages;
  h.write(3, kB);  // upgrade: no data message needed
  EXPECT_EQ(h.net().stats().dataMessages, dataBefore);
  EXPECT_FALSE(dir(h).l1Line(7, kB).valid);
  h.check();
}

TEST(Directory, NcidKeepsDirInfoAcrossL2DataEviction) {
  Harness h(ProtocolKind::Directory);
  // Park dirty data at the home (write + forward-read), then thrash the
  // home bank's set so the L2 data is evicted while 3 and 7 keep copies.
  const NodeId home = h.cfg().homeOf(kB);
  h.write(3, kB);
  h.read(7, kB);  // dirty data now also at home L2; 3,7 sharers
  std::uint64_t filled = 0;
  for (std::uint64_t i = 1; filled < 10; ++i) {
    const Addr other = kB + i * 16 * 32 * kBlockBytes;  // same home+set
    if (h.cfg().homeOf(other) != home) continue;
    h.write(2, other);
    for (int j = 1; j <= 4; ++j)  // push dirty data home
      h.read(static_cast<NodeId>(8 + (filled % 4)), other);
    ++filled;
  }
  h.check();
  // Copies must still be valid & consistent (NCID kept the dir alive, or
  // the dir eviction invalidated them — either way values stay correct).
  EXPECT_EQ(h.read(3, kB), h.proto().committedValue(kB));
  EXPECT_EQ(h.read(7, kB), h.proto().committedValue(kB));
  h.check();
}

TEST(Directory, MemoryFillFromBorderController) {
  Harness h(ProtocolKind::Directory);
  h.read(0, kB);
  // Exactly one memory fetch; request and response messages traverse the
  // mesh (2 extra messages beyond request to home).
  EXPECT_EQ(h.proto().stats().memoryFetches, 1u);
  EXPECT_GE(h.net().stats().messages, 3u);
}

TEST(Directory, WriteMissCollectsAllSharerAcks) {
  Harness h(ProtocolKind::Directory);
  for (NodeId t = 0; t < 10; ++t) h.read(t, kB);
  const auto invalsBefore = h.proto().stats().invalidationsSent;
  h.write(12, kB);
  EXPECT_GE(h.proto().stats().invalidationsSent - invalsBefore, 10u);
  h.check();
  for (NodeId t = 0; t < 10; ++t)
    EXPECT_EQ(h.read(t, kB), h.proto().committedValue(kB));
}

class DirectorySharingCode : public ::testing::TestWithParam<SharingCode> {};

INSTANTIATE_TEST_SUITE_P(Codes, DirectorySharingCode,
                         ::testing::Values(SharingCode::FullMap,
                                           SharingCode::CoarseVector2,
                                           SharingCode::CoarseVector4,
                                           SharingCode::LimitedPtr2,
                                           SharingCode::LimitedPtr4),
                         [](const auto& info) {
                           std::string n = sharingCodeName(info.param);
                           for (auto& c : n)
                             if (c == '/' || c == '-') c = '_';
                           return n;
                         });

TEST_P(DirectorySharingCode, StaysCoherentUnderSpuriousInvalidations) {
  CmpConfig cfg = testutil::smallConfig();
  cfg.dirSharingCode = GetParam();
  Harness h(ProtocolKind::Directory, cfg);
  Rng rng(31);
  for (int round = 0; round < 30; ++round) {
    for (int i = 0; i < 24; ++i) {
      const auto tile = static_cast<NodeId>(rng.below(16));
      const Addr block = rng.below(60) * kBlockBytes;
      h.issue(tile, block,
              rng.chance(0.3) ? AccessType::Write : AccessType::Read);
    }
    h.drain();
    h.check();
  }
  for (std::uint64_t b = 0; b < 60; b += 2) {
    const Addr block = b * kBlockBytes;
    EXPECT_EQ(h.read(static_cast<NodeId>(b % 16), block),
              h.proto().committedValue(block));
  }
  h.check();
}

TEST(DirectorySharingCodes, CoarserCodesSendMoreInvalidations) {
  // Section II-A's trade-off: same access pattern, wider invalidation
  // fan-out under a coarser code.
  auto invalsUnder = [](SharingCode code) {
    CmpConfig cfg = testutil::smallConfig();
    cfg.dirSharingCode = code;
    Harness h(ProtocolKind::Directory, cfg);
    const Addr block = 5 * kBlockBytes;
    for (NodeId t = 0; t < 8; t += 2) h.read(t, block);  // sharers 0,2,4,6
    h.write(15, block);
    return h.proto().stats().invalidationsSent;
  };
  const auto full = invalsUnder(SharingCode::FullMap);
  const auto coarse = invalsUnder(SharingCode::CoarseVector2);
  const auto ptr = invalsUnder(SharingCode::LimitedPtr2);
  EXPECT_EQ(full, 4u);
  EXPECT_EQ(coarse, 8u);  // 4 groups of 2 fully invalidated
  EXPECT_GT(ptr, full);   // overflow: broadcast to the whole chip
}

}  // namespace
}  // namespace eecc
