// Tests for the parallel experiment runner and the timing-wheel half of
// the event kernel it leans on.
//
// The determinism contract is the load-bearing property: results coming
// off the worker pool must be bit-identical to a sequential loop, down to
// every statistics counter and energy picojoule, or every figure in the
// paper reproduction would silently depend on EECC_JOBS. The first half
// of this file pins that contract; the second half pins the timing-wheel
// behaviours the contract rests on (same-tick FIFO across the far->near
// migration boundary, runUntil semantics).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/runner.h"
#include "result_compare.h"
#include "sim/event_queue.h"

namespace eecc {
namespace {

// ---------------------------------------------------------------------------
// Parallel determinism
// ---------------------------------------------------------------------------

ExperimentConfig smallConfig(ProtocolKind kind, const std::string& workload,
                             bool altLayout = false) {
  ExperimentConfig cfg;
  cfg.workloadName = workload;
  cfg.protocol = kind;
  cfg.altLayout = altLayout;
  cfg.warmupCycles = 30'000;
  cfg.windowCycles = 20'000;
  // Snapshot with the flight recorder attached so the bit-identity
  // contract (expectResultsIdentical) also covers the per-stage latency
  // decomposition across pool widths.
  cfg.obs.snapshotMetrics = true;
  cfg.obs.stageTrace = true;
  return cfg;
}

TEST(ExperimentRunner, ParallelBitIdenticalToSequential) {
  std::vector<ExperimentConfig> cfgs;
  for (const ProtocolKind kind : allProtocolKinds()) {
    cfgs.push_back(smallConfig(kind, "apache4x16p"));
    cfgs.push_back(smallConfig(kind, "mixed-com", kind == ProtocolKind::DiCo));
  }

  std::vector<ExperimentResult> sequential;
  sequential.reserve(cfgs.size());
  for (const ExperimentConfig& cfg : cfgs)
    sequential.push_back(runExperiment(cfg));

  ExperimentRunner runner(4);
  const std::vector<ExperimentResult> parallel = runner.runMany(cfgs);

  ASSERT_EQ(parallel.size(), sequential.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    SCOPED_TRACE(i);
    expectResultsIdentical(parallel[i], sequential[i]);
  }
}

TEST(ExperimentRunner, SingleJobPoolMatchesWiderPool) {
  const ExperimentConfig cfg = smallConfig(ProtocolKind::DiCoArin, "apache4x16p");
  ExperimentRunner narrow(1);
  ExperimentRunner wide(3);
  const auto a = narrow.runAllProtocols(cfg);
  const auto b = wide.runAllProtocols(cfg);
  ASSERT_EQ(a.size(), allProtocolKinds().size());
  ASSERT_EQ(b.size(), allProtocolKinds().size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(i);
    // runAllProtocols overrides cfg.protocol slot by slot, in order.
    EXPECT_EQ(a[i].protocol, allProtocolKinds()[i]);
    expectResultsIdentical(a[i], b[i]);
  }
}

TEST(ExperimentRunner, MetricsRecordedInSubmissionOrder) {
  ExperimentRunner runner(2);
  const auto results =
      runner.runMany({smallConfig(ProtocolKind::Directory, "apache4x16p"),
                      smallConfig(ProtocolKind::DiCo, "mixed-com")});
  ASSERT_EQ(runner.metrics().size(), 2u);
  EXPECT_EQ(runner.metrics()[0].workload, "apache4x16p");
  EXPECT_EQ(runner.metrics()[0].protocol, ProtocolKind::Directory);
  EXPECT_EQ(runner.metrics()[1].workload, "mixed-com");
  EXPECT_EQ(runner.metrics()[1].protocol, ProtocolKind::DiCo);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(runner.metrics()[i].simEvents, results[i].simEvents);
    EXPECT_EQ(runner.metrics()[i].ops, results[i].ops);
    EXPECT_GT(runner.metrics()[i].simEvents, 0u);
    EXPECT_GE(runner.metrics()[i].wallSeconds, 0.0);
  }
  runner.clearMetrics();
  EXPECT_TRUE(runner.metrics().empty());
}

TEST(ExperimentRunner, RunTasksExecutesEveryTask) {
  ExperimentRunner runner(4);
  std::vector<int> slots(64, 0);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < slots.size(); ++i)
    tasks.push_back([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
  runner.runTasks(std::move(tasks));
  for (std::size_t i = 0; i < slots.size(); ++i)
    EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
}

TEST(ExperimentRunner, JobsFromEnvironment) {
  ::setenv("EECC_JOBS", "7", 1);
  EXPECT_EQ(ExperimentRunner::defaultJobs(), 7u);
  ExperimentRunner fromEnv;
  EXPECT_EQ(fromEnv.jobs(), 7u);
  ::setenv("EECC_JOBS", "0", 1);  // invalid: fall back to hardware
  EXPECT_GE(ExperimentRunner::defaultJobs(), 1u);
  ::unsetenv("EECC_JOBS");
  EXPECT_GE(ExperimentRunner::defaultJobs(), 1u);
  ExperimentRunner explicitWidth(3);
  EXPECT_EQ(explicitWidth.jobs(), 3u);
}

// ---------------------------------------------------------------------------
// Timing wheel: behaviours beyond event_queue_test's near-future basics
// ---------------------------------------------------------------------------

TEST(TimingWheel, FarFutureEventsExecuteInOrder) {
  EventQueue q;
  std::vector<Tick> order;
  // All of these start on the overflow heap (>= kWheelSize ahead).
  const Tick base = EventQueue::kWheelSize * 3;
  q.scheduleAt(base + 700, [&] { order.push_back(q.now()); });
  q.scheduleAt(base + 100, [&] { order.push_back(q.now()); });
  q.scheduleAt(base + 400, [&] { order.push_back(q.now()); });
  q.runToCompletion();
  EXPECT_EQ(order, (std::vector<Tick>{base + 100, base + 400, base + 700}));
  EXPECT_EQ(q.now(), base + 700);
}

TEST(TimingWheel, SameTickFifoAcrossMigrationBoundary) {
  // Events for tick T arrive via both paths: scheduled far ahead (overflow
  // heap, migrated later) and scheduled from inside the near window
  // (direct wheel append). FIFO across the boundary must hold: the far
  // events were scheduled first, so they run first.
  EventQueue q;
  const Tick target = EventQueue::kWheelSize + 1000;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    q.scheduleAt(target, [&order, i] { order.push_back(i); });  // far path
  // At `target - 10` the target tick is well inside the near window, so
  // these appends land behind the already-migrated far events.
  q.scheduleAt(target - 10, [&] {
    for (int i = 5; i < 10; ++i)
      q.scheduleAt(target, [&order, i] { order.push_back(i); });
  });
  q.runToCompletion();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(TimingWheel, WheelSlotAliasingKeepsTicksSeparate) {
  // Ticks T and T + kWheelSize alias to the same ring slot. The far event
  // must not run during the first pass of the wheel over that slot.
  EventQueue q;
  std::vector<Tick> order;
  const Tick t = 42;
  q.scheduleAt(t + EventQueue::kWheelSize, [&] { order.push_back(q.now()); });
  q.scheduleAt(t, [&] { order.push_back(q.now()); });
  q.runToCompletion();
  EXPECT_EQ(order,
            (std::vector<Tick>{t, t + EventQueue::kWheelSize}));
}

TEST(TimingWheel, RunUntilDoesNotTouchFarEvents) {
  EventQueue q;
  int ran = 0;
  q.scheduleAt(10, [&] { ++ran; });
  q.scheduleAt(EventQueue::kWheelSize * 2, [&] { ++ran; });
  q.runUntil(EventQueue::kWheelSize);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.now(), EventQueue::kWheelSize);
  EXPECT_EQ(q.pending(), 1u);
  q.runToCompletion();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.now(), EventQueue::kWheelSize * 2);
}

TEST(TimingWheel, RunUntilBoundaryIsInclusive) {
  EventQueue q;
  int ran = 0;
  q.scheduleAt(EventQueue::kWheelSize + 5, [&] { ++ran; });
  q.runUntil(EventQueue::kWheelSize + 5);  // event exactly at the limit runs
  EXPECT_EQ(ran, 1);
  q.scheduleAfter(1, [&] { ++ran; });
  q.runUntil(q.now());  // limit == now: the future event must not run
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(TimingWheel, StressRandomInterleaveMatchesReferenceOrder) {
  // Deterministic xorshift schedule of near, far, and boundary delays;
  // execution order must equal a stable sort by time (FIFO within a tick).
  EventQueue q;
  struct Ref {
    Tick when;
    int id;
  };
  std::vector<Ref> expected;
  std::vector<int> order;
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto nextRand = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  int id = 0;
  for (int batch = 0; batch < 8; ++batch) {
    const int n = 200;
    for (int i = 0; i < n; ++i) {
      // Mix: mostly near, some straddling kWheelSize, some far out.
      Tick delay = nextRand() % 64;
      if (i % 7 == 0) delay = EventQueue::kWheelSize - 2 + (nextRand() % 5);
      if (i % 13 == 0) delay = EventQueue::kWheelSize * (1 + nextRand() % 3);
      const Tick when = q.now() + delay;
      expected.push_back({when, id});
      q.scheduleAt(when, [&order, id] { order.push_back(id); });
      ++id;
    }
    // Drain partially so later batches schedule from a moved clock.
    q.runUntil(q.now() + 96);
  }
  q.runToCompletion();

  std::stable_sort(expected.begin(), expected.end(),
                   [](const Ref& a, const Ref& b) { return a.when < b.when; });
  ASSERT_EQ(order.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(order[i], expected[i].id) << "at position " << i;
}

TEST(TimingWheel, OversizedCallableUsesHeapFallback) {
  // A capture larger than the inline storage goes through the heap-fallback
  // path of emplaceAction; it must still run and destruct exactly once.
  EventQueue q;
  auto guard = std::make_shared<int>(7);
  struct Big {
    std::shared_ptr<int> p;
    std::byte pad[EventQueue::kInlineActionBytes];
  };
  static_assert(sizeof(Big) > EventQueue::kInlineActionBytes);
  int seen = 0;
  q.scheduleAt(3, [big = Big{guard, {}}, &seen] { seen = *big.p; });
  EXPECT_EQ(guard.use_count(), 2);
  q.runToCompletion();
  EXPECT_EQ(seen, 7);
  EXPECT_EQ(guard.use_count(), 1);  // callable destroyed after running
}

TEST(TimingWheel, DestructorReleasesPendingCallables) {
  auto nearGuard = std::make_shared<int>(1);
  auto farGuard = std::make_shared<int>(2);
  {
    EventQueue q;
    q.scheduleAt(5, [p = nearGuard] { (void)p; });
    q.scheduleAt(EventQueue::kWheelSize * 4, [p = farGuard] { (void)p; });
    EXPECT_EQ(nearGuard.use_count(), 2);
    EXPECT_EQ(farGuard.use_count(), 2);
  }
  EXPECT_EQ(nearGuard.use_count(), 1);
  EXPECT_EQ(farGuard.use_count(), 1);
}

TEST(TimingWheel, NodeRecyclingSurvivesChurn) {
  // Heavy schedule/run churn recycles slab nodes; counters must stay exact.
  EventQueue q;
  std::uint64_t chainRan = 0;
  std::uint64_t extraRan = 0;
  std::function<void()> chain = [&] {
    if (++chainRan < 20'000) q.scheduleAfter(1 + (chainRan % 90), chain);
  };
  q.scheduleAt(0, chain);
  for (int i = 0; i < 1000; ++i)
    q.scheduleAfter(i % 50, [&extraRan] { ++extraRan; });
  q.runToCompletion();
  EXPECT_EQ(chainRan, 20'000u);
  EXPECT_EQ(extraRan, 1'000u);
  EXPECT_EQ(q.executedEvents(), 21'000u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace eecc
