// Tests for the miss-path fast-lane foundations (DESIGN.md §13): the
// open-addressing FlatHash (backward-shift deletion is the subtle part),
// the small-buffer InlineFn callable, and the arena-backed LineLockTable
// that replaces the unordered_set/deque line-serialization structures.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/flat_hash.h"
#include "common/inline_fn.h"
#include "common/rng.h"
#include "protocols/line_table.h"

namespace eecc {
namespace {

// ---------------------------------------------------------------------------
// FlatHash
// ---------------------------------------------------------------------------

TEST(FlatHash, PutFindEraseBasics) {
  FlatHash<int> h;
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(h.put(42, 7));
  EXPECT_FALSE(h.put(42, 9));  // overwrite, not insert
  ASSERT_NE(h.find(42), nullptr);
  EXPECT_EQ(*h.find(42), 9);
  EXPECT_EQ(h.find(43), nullptr);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_TRUE(h.erase(42));
  EXPECT_FALSE(h.erase(42));
  EXPECT_TRUE(h.empty());
}

TEST(FlatHash, GetOrDefaultsAbsentKeys) {
  FlatHash<std::uint64_t> h;
  EXPECT_EQ(h.getOr(123, 0), 0u);
  h.put(123, 55);
  EXPECT_EQ(h.getOr(123, 0), 55u);
  // The memory-value-oracle pattern: absent means "never written" == 0.
  EXPECT_EQ(h.getOr(0, 0), 0u);  // key 0 is an ordinary key, not reserved
  h.put(0, 11);
  EXPECT_EQ(h.getOr(0, 0), 11u);
}

TEST(FlatHash, AtDefaultConstructsAndIsStableUntilGrowth) {
  FlatHash<std::vector<int>> h;
  h.at(5).push_back(1);
  h.at(5).push_back(2);
  ASSERT_NE(h.find(5), nullptr);
  EXPECT_EQ(h.find(5)->size(), 2u);
}

TEST(FlatHash, MatchesUnorderedMapUnderChurn) {
  // Randomized differential test against std::unordered_map, with
  // block-address-shaped keys (low 6 bits zero) to exercise the mixer and
  // enough erases to stress backward-shift deletion chains.
  FlatHash<std::uint64_t> h;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(0xfeedULL);
  for (int iter = 0; iter < 200'000; ++iter) {
    const std::uint64_t key = (rng.below(4096)) << 6;
    switch (rng.below(4)) {
      case 0:
      case 1: {  // insert/overwrite
        const std::uint64_t v = rng.next();
        h.put(key, v);
        ref[key] = v;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(h.erase(key), ref.erase(key) > 0);
        break;
      }
      default: {  // lookup
        const auto it = ref.find(key);
        const std::uint64_t* p = h.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(p, nullptr);
        } else {
          ASSERT_NE(p, nullptr);
          EXPECT_EQ(*p, it->second);
        }
        break;
      }
    }
  }
  EXPECT_EQ(h.size(), ref.size());
  std::size_t visited = 0;
  h.forEach([&](std::uint64_t k, const std::uint64_t& v) {
    ++visited;
    const auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatHash, ReservePreventsMidStreamRehash) {
  FlatHash<int> h;
  h.reserve(10'000);
  const std::size_t cap = h.capacity();
  for (std::uint64_t k = 0; k < 10'000; ++k) h.put(k * 64, 1);
  EXPECT_EQ(h.capacity(), cap);  // no growth during the reserved fill
  EXPECT_EQ(h.size(), 10'000u);
}

TEST(FlatHash, SupportsMoveOnlyValues) {
  FlatHash<std::unique_ptr<int>> h;
  h.put(1, std::make_unique<int>(42));
  ASSERT_NE(h.find(1), nullptr);
  EXPECT_EQ(**h.find(1), 42);
  std::unique_ptr<int> out = std::move(*h.find(1));
  h.erase(1);
  EXPECT_EQ(*out, 42);
  EXPECT_TRUE(h.empty());
}

TEST(FlatHash, ClearEmptiesButKeepsCapacity) {
  FlatHash<int> h;
  for (std::uint64_t k = 0; k < 100; ++k) h.put(k, 1);
  const std::size_t cap = h.capacity();
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.capacity(), cap);
  EXPECT_EQ(h.find(5), nullptr);
}

// ---------------------------------------------------------------------------
// InlineFn
// ---------------------------------------------------------------------------

TEST(InlineFn, InvokesInlineAndHeapCallables) {
  int hits = 0;
  InlineFn<void(), 64> small([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(small));
  small();
  EXPECT_EQ(hits, 1);

  // Oversized capture: falls back to a heap box, still invocable.
  std::array<std::uint64_t, 16> big{};
  big[15] = 9;
  InlineFn<std::uint64_t(), 64> boxed([big] { return big[15]; });
  EXPECT_EQ(boxed(), 9u);
}

TEST(InlineFn, MovePreservesStateAndEmptiesSource) {
  auto counter = std::make_shared<int>(0);
  InlineFn<void(), 64> a([counter] { ++*counter; });
  InlineFn<void(), 64> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  b();
  EXPECT_EQ(*counter, 1);
  a = std::move(b);
  a();
  EXPECT_EQ(*counter, 2);
}

TEST(InlineFn, DestroysCapturesExactlyOnce) {
  auto token = std::make_shared<int>(7);
  {
    InlineFn<void(), 64> fn([token] {});
    EXPECT_EQ(token.use_count(), 2);
    fn.reset();
    EXPECT_EQ(token.use_count(), 1);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFn, ForwardsArgumentsAndReturns) {
  InlineFn<std::uint64_t(std::uint64_t), 40> f(
      [](std::uint64_t v) { return v * 2; });
  EXPECT_EQ(f(21), 42u);
}

// ---------------------------------------------------------------------------
// LineLockTable
// ---------------------------------------------------------------------------

TEST(LineLockTable, AcquireReleaseCycle) {
  LineLockTable t;
  EXPECT_FALSE(t.busy(0x40));
  EXPECT_TRUE(t.tryAcquire(0x40));
  EXPECT_TRUE(t.busy(0x40));
  EXPECT_FALSE(t.tryAcquire(0x40));
  EXPECT_EQ(t.heldCount(), 1u);
  LineLockTable::Waiter next;
  EXPECT_FALSE(t.release(0x40, &next));  // no waiter: lock freed
  EXPECT_FALSE(t.busy(0x40));
  EXPECT_EQ(t.heldCount(), 0u);
}

TEST(LineLockTable, WaitersRunInFifoOrder) {
  LineLockTable t;
  ASSERT_TRUE(t.tryAcquire(0x80));
  std::vector<int> order;
  t.enqueue(0x80, [&order] { order.push_back(1); });
  t.enqueue(0x80, [&order] { order.push_back(2); });
  t.enqueue(0x80, [&order] { order.push_back(3); });

  LineLockTable::Waiter next;
  int handoffs = 0;
  while (t.release(0x80, &next)) {
    ++handoffs;
    EXPECT_TRUE(t.busy(0x80));  // lock stays held on the waiter's behalf
    next();
  }
  EXPECT_EQ(handoffs, 3);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(t.busy(0x80));
}

TEST(LineLockTable, SlabNodesAreRecycledAcrossLines) {
  // Interleaved acquire/enqueue/release across many blocks must keep the
  // table consistent (the slab free list is shared by all lines).
  LineLockTable t;
  int ran = 0;
  for (int round = 0; round < 50; ++round) {
    for (Addr b = 0; b < 16; ++b) {
      const Addr block = 0x1000 + b * 64;
      ASSERT_TRUE(t.tryAcquire(block));
      t.enqueue(block, [&ran] { ++ran; });
      t.enqueue(block, [&ran] { ++ran; });
    }
    for (Addr b = 0; b < 16; ++b) {
      const Addr block = 0x1000 + b * 64;
      LineLockTable::Waiter next;
      while (t.release(block, &next)) next();
    }
  }
  EXPECT_EQ(ran, 50 * 16 * 2);
  EXPECT_EQ(t.heldCount(), 0u);
}

}  // namespace
}  // namespace eecc
