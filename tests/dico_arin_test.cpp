// DiCo-Arin specific behaviour (Sections III-B, IV-B): global transition
// on remote reads, home as permanent ordering point, provider repair via
// forwarder identity, and the three-way broadcast invalidation.
#include <gtest/gtest.h>

#include "protocol_harness.h"
#include "protocols/dico_arin.h"

namespace eecc {
namespace {

using testutil::Harness;

constexpr Addr kB = 5 * kBlockBytes;

DiCoArinProtocol& arin(Harness& h) {
  return dynamic_cast<DiCoArinProtocol&>(h.proto());
}

TEST(Arin, SingleAreaBlocksBehaveLikeDiCo) {
  Harness h(ProtocolKind::DiCoArin);
  h.read(0, kB);
  h.read(1, kB);  // same area
  EXPECT_EQ(arin(h).l1Line(0, kB).state, 'O');
  EXPECT_EQ(arin(h).l1Line(1, kB).state, 'S');
  EXPECT_FALSE(arin(h).isGlobal(kB));
  EXPECT_EQ(arin(h).l2cOwner(kB), 0);
  h.check();
}

TEST(Arin, RemoteReadDissolvesOwnership) {
  Harness h(ProtocolKind::DiCoArin);
  h.read(0, kB);    // owner in area 0
  h.read(10, kB);   // remote read (area 3): global transition
  EXPECT_TRUE(arin(h).isGlobal(kB));
  EXPECT_EQ(arin(h).l1Line(0, kB).state, 'P');   // former owner
  EXPECT_EQ(arin(h).l1Line(10, kB).state, 'P');  // new copy = provider
  EXPECT_EQ(arin(h).l2cOwner(kB), kInvalidNode); // no L1 owner anymore
  h.check();
}

TEST(Arin, GlobalBlockAlwaysPresentAtHome) {
  Harness h(ProtocolKind::DiCoArin);
  h.write(0, kB);   // make the data dirty first
  h.read(0, kB);
  h.read(10, kB);   // globalize: dirty data must reach the home L2
  EXPECT_TRUE(arin(h).isGlobal(kB));
  // Every subsequent reader gets the committed value.
  for (const NodeId t : {2, 6, 9, 13})
    EXPECT_EQ(h.read(t, kB), h.proto().committedValue(kB));
  h.check();
}

TEST(Arin, EveryGlobalCopyIsAProvider) {
  Harness h(ProtocolKind::DiCoArin);
  h.read(0, kB);
  h.read(10, kB);  // global now
  h.read(6, kB);   // served by the home: becomes provider
  EXPECT_EQ(arin(h).l1Line(6, kB).state, 'P');
  h.read(7, kB);   // area 1: home hints at provider 6, or serves directly
  EXPECT_EQ(arin(h).l1Line(7, kB).state, 'P');
  h.check();
}

TEST(Arin, ProviderServesPredictedReads) {
  Harness h(ProtocolKind::DiCoArin);
  h.read(0, kB);
  h.read(10, kB);   // global
  h.read(11, kB);   // area 3: home sends provider hint (10)
  // Evict 11's copy by set pressure; its L1C$ remembers a provider.
  for (int i = 1; i <= 4; ++i)
    h.read(11, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  const auto before = h.proto().stats().missCount(MissClass::PredProviderHit);
  h.read(11, kB);
  EXPECT_GT(h.proto().stats().missCount(MissClass::PredProviderHit), before);
  h.check();
}

TEST(Arin, WriteToGlobalBlockBroadcasts) {
  Harness h(ProtocolKind::DiCoArin);
  h.read(0, kB);
  h.read(10, kB);  // global
  h.read(6, kB);
  const auto bcastsBefore = h.net().stats().broadcasts;
  h.write(9, kB);
  // Three-way protocol: invalidate broadcast + unblock broadcast.
  EXPECT_EQ(h.net().stats().broadcasts, bcastsBefore + 2);
  EXPECT_GE(h.proto().stats().broadcastInvalidations, 1u);
  // All copies gone; the writer owns the block single-area again.
  for (const NodeId t : {0, 10, 6})
    EXPECT_FALSE(arin(h).l1Line(t, kB).valid);
  EXPECT_EQ(arin(h).l1Line(9, kB).state, 'M');
  EXPECT_EQ(arin(h).l2cOwner(kB), 9);
  EXPECT_FALSE(arin(h).isGlobal(kB));
  h.check();
  for (const NodeId t : {0, 10, 6})
    EXPECT_EQ(h.read(t, kB), h.proto().committedValue(kB));
  h.check();
}

TEST(Arin, SingleAreaWriteDoesNotBroadcast) {
  Harness h(ProtocolKind::DiCoArin);
  h.read(0, kB);
  h.read(1, kB);
  const auto bcastsBefore = h.net().stats().broadcasts;
  h.write(4, kB);  // all in area 0: targeted DiCo-style invalidation
  EXPECT_EQ(h.net().stats().broadcasts, bcastsBefore);
  h.check();
}

TEST(Arin, L2EvictionOfGlobalBlockBroadcasts) {
  Harness h(ProtocolKind::DiCoArin);
  const NodeId home = h.cfg().homeOf(kB);
  h.read(0, kB);
  h.read(10, kB);  // global: pinned at home bank
  const auto bcastsBefore = h.net().stats().broadcasts;
  // Force eviction of the home L2 line: the bank has 32 sets, 8 ways;
  // write blocks that collide with kB's set at the same home.
  std::uint64_t filled = 0;
  for (std::uint64_t i = 1; filled < 10; ++i) {
    const Addr other = kB + i * 16 * 32 * kBlockBytes;  // same home, same set
    if (h.cfg().homeOf(other) != home) continue;
    h.write(2, other);
    // Relinquish dirty data to the home so it occupies an L2 slot.
    for (int j = 1; j <= 4; ++j)
      h.read(2, other + static_cast<Addr>(j) * 16 * kBlockBytes);
    ++filled;
  }
  EXPECT_GT(h.net().stats().broadcasts, bcastsBefore);
  h.check();
  // The invalidated copies are gone but the value survives in memory.
  EXPECT_EQ(h.read(5, kB), h.proto().committedValue(kB));
  h.check();
}

TEST(Arin, ForwarderIdentityRepairsStaleProvider) {
  Harness h(ProtocolKind::DiCoArin);
  h.read(0, kB);
  h.read(10, kB);   // providers: 0 (area 0), 10 (area 3)
  h.read(11, kB);   // 11 learns provider 10
  // Silently evict provider 10 (providers evict silently in Arin).
  for (int i = 1; i <= 4; ++i)
    h.read(10, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  EXPECT_FALSE(arin(h).l1Line(10, kB).valid);
  // Evict 11's own copy, keeping its (now stale) prediction of 10.
  for (int i = 5; i <= 8; ++i)
    h.read(11, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  // 11 rereads: predicts 10, which cannot serve, forwards to home with
  // its identity; the home repairs the area-3 pointer.
  h.read(11, kB);
  EXPECT_EQ(h.proto().committedValue(kB), arin(h).l1Line(11, kB).value);
  EXPECT_GE(h.proto().stats().missCount(MissClass::PredMiss), 1u);
  h.check();
}

TEST(Arin, RemoteReadOfL2OwnedBlockMakesL2Provider) {
  Harness h(ProtocolKind::DiCoArin);
  h.write(0, kB);
  h.read(1, kB);  // sharer in area 0
  // Evict the owner; ownership falls to the home... owner has a live
  // sharer (1), so it transfers within the area instead. Evict both.
  for (int i = 1; i <= 4; ++i) {
    h.read(0, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
    h.read(1, kB + static_cast<Addr>(i + 4) * 16 * kBlockBytes);
  }
  h.check();
  // Now a remote read: if the L2 owns it, it becomes a provider at once.
  h.read(10, kB);
  EXPECT_EQ(h.read(10, kB), h.proto().committedValue(kB));
  h.check();
}

TEST(Arin, BroadcastCostScalesWithChip) {
  // Broadcast traffic reaches every router once: 64 routings on 4x4=16
  // tiles would be wrong; expect tiles() routings per broadcast.
  Harness h(ProtocolKind::DiCoArin);
  h.read(0, kB);
  h.read(10, kB);
  const auto routingsBefore = h.net().stats().routings;
  const auto linksBefore = h.net().stats().linksTraversed;
  h.write(9, kB);
  // 2 broadcasts (inval + unblock) = 2*16 routings + 2*15 tree links,
  // plus the unicast request/grant/ack traffic.
  EXPECT_GE(h.net().stats().routings - routingsBefore, 32u);
  EXPECT_GE(h.net().stats().linksTraversed - linksBefore, 30u);
}

}  // namespace
}  // namespace eecc
