// Shared test harness: a small chip configuration (to exercise evictions
// quickly) with synchronous-looking read/write helpers over the
// event-driven protocol engines.
#pragma once

#include <memory>

#include "noc/network.h"
#include "protocols/protocol.h"
#include "sim/event_queue.h"
#include "workload/profile.h"

namespace eecc::testutil {

/// 4x4 mesh, 4 areas of 2x2 tiles, small caches.
inline CmpConfig smallConfig() {
  CmpConfig cfg;
  cfg.meshWidth = 4;
  cfg.meshHeight = 4;
  cfg.numAreas = 4;
  cfg.l1 = CacheGeometry{64, 4, 1, 2};
  cfg.l2 = CacheGeometry{256, 8, 2, 3};
  cfg.l1cEntries = 64;
  cfg.l2cEntries = 64;
  cfg.dirCacheEntries = 64;
  cfg.numMemControllers = 4;
  return cfg;
}

/// smallConfig with doubled caches — the full-stack integration chip
/// (enough capacity that a synthetic workload makes forward progress,
/// small enough that evictions still happen within a short run).
inline CmpConfig smallChip() {
  CmpConfig cfg = smallConfig();
  cfg.l1 = CacheGeometry{128, 4, 1, 2};
  cfg.l2 = CacheGeometry{512, 8, 2, 3};
  cfg.l1cEntries = 128;
  cfg.l2cEntries = 128;
  cfg.dirCacheEntries = 128;
  return cfg;
}

/// Shrinks a Table IV profile to a footprint the small test chips churn
/// through quickly.
inline BenchmarkProfile tinyProfile(BenchmarkProfile base,
                                    std::uint64_t privatePagesPerThread,
                                    std::uint64_t vmSharedPages) {
  base.privatePagesPerThread = privatePagesPerThread;
  base.vmSharedPages = vmSharedPages;
  base.historyWindow = 256;
  return base;
}

class Harness {
 public:
  explicit Harness(ProtocolKind kind, CmpConfig cfg = smallConfig())
      : cfg_(cfg),
        topo_(cfg.meshWidth, cfg.meshHeight),
        net_(events_, topo_, cfg.net),
        proto_(makeProtocol(kind, events_, net_, cfg_)) {}

  Protocol& proto() { return *proto_; }
  EventQueue& events() { return events_; }
  Network& net() { return net_; }
  const CmpConfig& cfg() const { return cfg_; }

  /// Issues a read on `tile` and runs the system until it (and everything
  /// it triggered) completes. Returns the value observed.
  std::uint64_t read(NodeId tile, Addr block) {
    bool done = false;
    proto_->access(tile, block, AccessType::Read, [&done] { done = true; });
    events_.runToCompletion();
    EECC_CHECK(done);
    return proto_->lastReadValue(tile);
  }

  /// Issues a write on `tile` and drains the system.
  void write(NodeId tile, Addr block) {
    bool done = false;
    proto_->access(tile, block, AccessType::Write, [&done] { done = true; });
    events_.runToCompletion();
    EECC_CHECK(done);
  }

  /// Issues an access without draining (for overlap tests).
  void issue(NodeId tile, Addr block, AccessType type,
             Protocol::DoneFn done = [] {}) {
    proto_->access(tile, block, type, std::move(done));
  }

  void drain() { events_.runToCompletion(); }

  void check() { proto_->checkInvariants(); }

 private:
  CmpConfig cfg_;
  EventQueue events_;
  MeshTopology topo_;
  Network net_;
  std::unique_ptr<Protocol> proto_;
};

/// A block whose home is `home` (scanning block indices).
inline Addr blockWithHome(const CmpConfig& cfg, NodeId home,
                          std::uint64_t nth = 0) {
  std::uint64_t found = 0;
  for (std::uint64_t i = 0;; ++i) {
    const Addr block = i * kBlockBytes;
    if (cfg.homeOf(block) == home) {
      if (found == nth) return block;
      ++found;
    }
  }
}

}  // namespace eecc::testutil
