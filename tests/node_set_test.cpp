// Unit tests for the full-map sharing-vector representation.
#include <gtest/gtest.h>

#include <vector>

#include "cache/node_set.h"

namespace eecc {
namespace {

TEST(NodeSet, EmptyByDefault) {
  NodeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.first(), kInvalidNode);
}

TEST(NodeSet, InsertEraseContains) {
  NodeSet s;
  s.insert(3);
  s.insert(63);
  s.insert(200);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(200));
  EXPECT_FALSE(s.contains(4));
  EXPECT_EQ(s.size(), 3);
  s.erase(63);
  EXPECT_FALSE(s.contains(63));
  EXPECT_EQ(s.size(), 2);
}

TEST(NodeSet, InsertIsIdempotent) {
  NodeSet s;
  s.insert(5);
  s.insert(5);
  EXPECT_EQ(s.size(), 1);
}

TEST(NodeSet, FirstIsLowest) {
  NodeSet s;
  s.insert(100);
  s.insert(7);
  s.insert(64);
  EXPECT_EQ(s.first(), 7);
  s.erase(7);
  EXPECT_EQ(s.first(), 64);
}

TEST(NodeSet, ForEachAscending) {
  NodeSet s;
  for (const NodeId n : {250, 1, 64, 65, 13}) s.insert(n);
  std::vector<NodeId> seen;
  s.forEach([&](NodeId n) { seen.push_back(n); });
  EXPECT_EQ(seen, (std::vector<NodeId>{1, 13, 64, 65, 250}));
}

TEST(NodeSet, UnionOperator) {
  NodeSet a;
  NodeSet b;
  a.insert(1);
  b.insert(2);
  b.insert(1);
  a |= b;
  EXPECT_EQ(a.size(), 2);
  EXPECT_TRUE(a.contains(2));
}

TEST(NodeSet, ClearAndEquality) {
  NodeSet a;
  a.insert(42);
  NodeSet b;
  EXPECT_NE(a, b);
  a.clear();
  EXPECT_EQ(a, b);
}

TEST(NodeSet, WordBoundaries) {
  NodeSet s;
  for (const NodeId n : {0, 63, 64, 127, 128, 191, 192, 255}) s.insert(n);
  EXPECT_EQ(s.size(), 8);
  for (const NodeId n : {0, 63, 64, 127, 128, 191, 192, 255})
    EXPECT_TRUE(s.contains(n));
}

}  // namespace
}  // namespace eecc
