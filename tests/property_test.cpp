// Property-based tests: randomized access streams across all protocols,
// several chip shapes and sharing patterns, with the full invariant
// checker (SWMR, value coherence, pointer precision, area coverage) run
// at quiesce points — plus cross-protocol differential value checks.
#include <gtest/gtest.h>

#include "protocol_harness.h"

namespace eecc {
namespace {

using testutil::Harness;

struct FuzzCase {
  ProtocolKind kind;
  std::int32_t meshW;
  std::int32_t meshH;
  std::uint32_t areas;
  std::uint64_t blocks;      // address pool size
  double writeFraction;
  std::uint64_t seed;
};

CmpConfig fuzzConfig(const FuzzCase& c) {
  CmpConfig cfg;
  cfg.meshWidth = c.meshW;
  cfg.meshHeight = c.meshH;
  cfg.numAreas = c.areas;
  cfg.l1 = CacheGeometry{32, 4, 1, 2};     // tiny: maximal eviction churn
  cfg.l2 = CacheGeometry{128, 8, 2, 3};
  cfg.l1cEntries = 32;
  cfg.l2cEntries = 32;
  cfg.dirCacheEntries = 32;
  cfg.numMemControllers = 2;
  return cfg;
}

class Fuzz : public ::testing::TestWithParam<FuzzCase> {};

std::string fuzzName(const ::testing::TestParamInfo<FuzzCase>& info) {
  std::string n = protocolName(info.param.kind);
  for (auto& c : n)
    if (c == '-') c = '_';
  return n + "_m" + std::to_string(info.param.meshW) + "x" +
         std::to_string(info.param.meshH) + "_a" +
         std::to_string(info.param.areas) + "_s" +
         std::to_string(info.param.seed);
}

TEST_P(Fuzz, RandomStreamKeepsInvariants) {
  const FuzzCase& c = GetParam();
  Harness h(c.kind, fuzzConfig(c));
  Rng rng(c.seed);
  const auto tiles = static_cast<std::uint64_t>(c.meshW * c.meshH);

  for (int round = 0; round < 40; ++round) {
    // A burst of concurrent accesses, then quiesce and check everything.
    const int burst = 1 + static_cast<int>(rng.below(48));
    for (int i = 0; i < burst; ++i) {
      const auto tile = static_cast<NodeId>(rng.below(tiles));
      const Addr block = rng.below(c.blocks) * kBlockBytes;
      const AccessType type = rng.chance(c.writeFraction)
                                  ? AccessType::Write
                                  : AccessType::Read;
      h.issue(tile, block, type);
    }
    h.drain();
    h.check();
  }

  // Every block's final readable value equals the committed value.
  for (std::uint64_t b = 0; b < c.blocks; b += 3) {
    const Addr block = b * kBlockBytes;
    const auto tile = static_cast<NodeId>(b % tiles);
    EXPECT_EQ(h.read(tile, block), h.proto().committedValue(block));
  }
  h.check();
}

std::vector<FuzzCase> makeCases() {
  std::vector<FuzzCase> cases;
  const ProtocolKind kinds[] = {ProtocolKind::Directory, ProtocolKind::DiCo,
                                ProtocolKind::DiCoProviders,
                                ProtocolKind::DiCoArin};
  std::uint64_t seed = 100;
  for (const ProtocolKind k : kinds) {
    cases.push_back({k, 4, 4, 4, 48, 0.3, seed++});   // hot pool, square
    cases.push_back({k, 4, 4, 2, 200, 0.15, seed++}); // wide pool, 2 areas
    cases.push_back({k, 4, 2, 4, 64, 0.5, seed++});   // rectangular mesh
    cases.push_back({k, 8, 8, 16, 96, 0.25, seed++}); // many small areas
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Shapes, Fuzz, ::testing::ValuesIn(makeCases()),
                         fuzzName);

// Differential fuzz: identical streams must read identical values under
// every protocol, across several seeds.
class DifferentialFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialFuzz, AllProtocolsAgree) {
  const std::uint64_t seed = GetParam();
  struct Op {
    NodeId tile;
    Addr block;
    bool write;
  };
  std::vector<Op> ops;
  Rng rng(seed);
  for (int i = 0; i < 1500; ++i)
    ops.push_back({static_cast<NodeId>(rng.below(16)),
                   rng.below(80) * kBlockBytes, rng.chance(0.35)});

  std::vector<std::uint64_t> reference;
  bool first = true;
  for (const ProtocolKind kind :
       {ProtocolKind::Directory, ProtocolKind::DiCo,
        ProtocolKind::DiCoProviders, ProtocolKind::DiCoArin}) {
    FuzzCase c{kind, 4, 4, 4, 80, 0.0, seed};
    Harness h(kind, fuzzConfig(c));
    std::vector<std::uint64_t> values;
    for (const Op& op : ops) {
      if (op.write) h.write(op.tile, op.block);
      else values.push_back(h.read(op.tile, op.block));
    }
    h.check();
    if (first) {
      reference = std::move(values);
      first = false;
    } else {
      EXPECT_EQ(values, reference)
          << protocolName(kind) << " diverged (seed " << seed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

}  // namespace
}  // namespace eecc
