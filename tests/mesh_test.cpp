// Unit tests for the 2D mesh topology and XY routing.
#include <gtest/gtest.h>

#include <set>

#include "noc/mesh.h"

namespace eecc {
namespace {

TEST(Mesh, GeometryBasics) {
  MeshTopology m(8, 8);
  EXPECT_EQ(m.nodeCount(), 64);
  // Interior node: 4 out-links; 8x8 mesh has 2*2*(8*7) = 224 directed links.
  EXPECT_EQ(m.linkCount(), 224);
  EXPECT_EQ(m.coordOf(0).x, 0);
  EXPECT_EQ(m.coordOf(0).y, 0);
  EXPECT_EQ(m.coordOf(63).x, 7);
  EXPECT_EQ(m.coordOf(63).y, 7);
  EXPECT_EQ(m.nodeAt({3, 2}), 19);
}

TEST(Mesh, DistanceIsManhattan) {
  MeshTopology m(8, 8);
  EXPECT_EQ(m.distance(0, 0), 0);
  EXPECT_EQ(m.distance(0, 7), 7);
  EXPECT_EQ(m.distance(0, 63), 14);
  EXPECT_EQ(m.distance(9, 18), 2);
  // Symmetry.
  for (NodeId a = 0; a < 64; a += 7)
    for (NodeId b = 0; b < 64; b += 5) EXPECT_EQ(m.distance(a, b),
                                                 m.distance(b, a));
}

TEST(Mesh, RouteLengthEqualsDistance) {
  MeshTopology m(8, 8);
  for (NodeId a = 0; a < 64; a += 3) {
    for (NodeId b = 0; b < 64; b += 5) {
      const auto route = m.route(a, b);
      EXPECT_EQ(static_cast<std::int32_t>(route.size()), m.distance(a, b));
    }
  }
}

TEST(Mesh, RouteIsConnectedAndXYOrdered) {
  MeshTopology m(8, 8);
  const auto route = m.route(0, 63);
  NodeId cur = 0;
  bool seenY = false;
  for (const LinkId l : route) {
    EXPECT_EQ(m.linkSource(l), cur);
    const MeshCoord a = m.coordOf(m.linkSource(l));
    const MeshCoord b = m.coordOf(m.linkDest(l));
    if (a.y != b.y) seenY = true;
    else EXPECT_FALSE(seenY) << "X move after Y move violates XY routing";
    cur = m.linkDest(l);
  }
  EXPECT_EQ(cur, 63);
}

TEST(Mesh, BroadcastTreeSpansAllNodes) {
  MeshTopology m(8, 8);
  for (const NodeId root : {NodeId{0}, NodeId{27}, NodeId{63}}) {
    const auto tree = m.broadcastTree(root);
    // A spanning tree of n nodes has n-1 edges.
    EXPECT_EQ(tree.size(), 63u);
    std::set<NodeId> reached{root};
    // Tree links are emitted in forwardable order (row first, then columns).
    for (const LinkId l : tree) {
      EXPECT_TRUE(reached.contains(m.linkSource(l)))
          << "tree link from unreached node";
      reached.insert(m.linkDest(l));
    }
    EXPECT_EQ(reached.size(), 64u);
  }
}

TEST(Mesh, AverageDistanceMatchesTheory) {
  // The paper quotes ~ (2/3)*sqrt(ntc) ≈ 5.33 for the 8x8 mesh.
  MeshTopology m(8, 8);
  EXPECT_NEAR(m.averageDistance(), 5.25, 0.01);  // exact: 2*(n-1)(n+?)/...
  // And the 2-hop round trip the paper calls "10.6 links".
  EXPECT_NEAR(2 * m.averageDistance(), 10.5, 0.1);
}

TEST(Mesh, LinkBetweenAdjacentNodes) {
  MeshTopology m(4, 4);
  const LinkId l = m.linkBetween(5, 6);
  EXPECT_EQ(m.linkSource(l), 5);
  EXPECT_EQ(m.linkDest(l), 6);
  const LinkId back = m.linkBetween(6, 5);
  EXPECT_NE(l, back);
}

TEST(Mesh, OneByOneMesh) {
  MeshTopology m(1, 1);
  EXPECT_EQ(m.nodeCount(), 1);
  EXPECT_EQ(m.linkCount(), 0);
  EXPECT_TRUE(m.route(0, 0).empty());
}

TEST(Mesh, RectangularMesh) {
  MeshTopology m(4, 2);
  EXPECT_EQ(m.nodeCount(), 8);
  EXPECT_EQ(m.distance(0, 7), 4);
  EXPECT_EQ(m.route(0, 7).size(), 4u);
  EXPECT_EQ(m.broadcastTree(0).size(), 7u);
}

}  // namespace
}  // namespace eecc
