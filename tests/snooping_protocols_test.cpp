// The three newer table-driven snooping protocols: MOESI-Snoop (owned
// state, dirty sharing without a memory writeback), Dragon (write-update
// waves) and Hybrid-Adapt (per-line classifier switching each line between
// invalidate and update policy). Each gets harness-level behaviour checks
// against the protocol's defining transitions plus a monitored fuzz run
// (SWMR, value, metadata, progress).
#include <gtest/gtest.h>

#include "check/fuzzer.h"
#include "protocol_harness.h"
#include "protocols/adapt.h"
#include "protocols/dragon.h"
#include "protocols/moesi.h"

namespace eecc {
namespace {

using testutil::Harness;

constexpr Addr kB = 5 * kBlockBytes;

ProtocolRunReport fuzzOnce(ProtocolKind kind) {
  FuzzOptions opt;
  opt.opsPerTile = 150;
  opt.sweepEvery = 10'000;
  const Trace trace =
      makeFuzzTrace(opt.chip, opt.workloadName, /*seed=*/17, opt.opsPerTile);
  return runTraceChecked(opt.chip, kind, trace, opt.sweepEvery,
                         opt.progressBound);
}

// ------------------------------------------------------------ MOESI-Snoop

MoesiProtocol& moesi(Harness& h) {
  return dynamic_cast<MoesiProtocol&>(h.proto());
}

TEST(Moesi, SnoopedDirtyLineBecomesOwnedWithoutWriteback) {
  Harness h(ProtocolKind::Moesi);
  h.write(3, kB);
  const auto wbBefore = h.proto().stats().writebacks;
  h.read(7, kB);  // the M holder supplies and keeps the dirty data as O
  EXPECT_EQ(h.proto().stats().writebacks, wbBefore)
      << "MOESI's point: no write-through on a snooped dirty line";
  EXPECT_EQ(moesi(h).l1Line(3, kB).state, 'O');
  EXPECT_EQ(moesi(h).l1Line(7, kB).state, 'S');
  h.check();
}

TEST(Moesi, OwnerKeepsSupplyingLaterReaders) {
  Harness h(ProtocolKind::Moesi);
  h.write(3, kB);
  h.read(7, kB);
  const auto c2cBefore = h.proto().stats().missCount(MissClass::UnpredOwner);
  h.read(11, kB);  // the O holder answers again, cache-to-cache
  EXPECT_EQ(h.proto().stats().missCount(MissClass::UnpredOwner),
            c2cBefore + 1);
  EXPECT_EQ(moesi(h).l1Line(3, kB).state, 'O');
  EXPECT_EQ(moesi(h).l1Line(11, kB).state, 'S');
  h.check();
}

TEST(Moesi, OwnedEvictionWritesBackAndHomeServes) {
  Harness h(ProtocolKind::Moesi);
  h.write(3, kB);
  h.read(7, kB);  // 3 now owns kB dirty
  const auto wbBefore = h.proto().stats().writebacks;
  // Evict 3's O copy by filling its set: the deferred writeback finally
  // happens, and the home can serve a fresh reader.
  const CacheGeometry& l1 = h.cfg().l1;
  for (std::uint64_t i = 1; i <= l1.assoc; ++i)
    h.read(3, kB + i * l1.entries / l1.assoc * kBlockBytes);
  ASSERT_FALSE(moesi(h).l1Line(3, kB).valid);
  EXPECT_EQ(h.proto().stats().writebacks, wbBefore + 1);
  const std::uint64_t v = h.read(11, kB);
  EXPECT_EQ(v, h.read(7, kB));
  h.check();
}

TEST(Moesi, WriteInvalidatesOwnerAndSharers) {
  Harness h(ProtocolKind::Moesi);
  h.write(3, kB);
  h.read(7, kB);
  h.read(11, kB);
  h.write(7, kB);  // upgrade: O at 3 and sharer at 11 both die
  EXPECT_EQ(moesi(h).l1Line(7, kB).state, 'M');
  EXPECT_FALSE(moesi(h).l1Line(3, kB).valid);
  EXPECT_FALSE(moesi(h).l1Line(11, kB).valid);
  h.check();
}

TEST(Moesi, ValuesSurviveTheFullSharingDance) {
  Harness h(ProtocolKind::Moesi);
  h.write(3, kB);
  h.write(7, kB);
  h.write(3, kB);
  const std::uint64_t v = h.read(11, kB);
  EXPECT_EQ(v, h.read(7, kB));
  EXPECT_EQ(v, h.read(3, kB));
  h.check();
}

TEST(Moesi, MonitoredFuzzRunIsViolationFree) {
  const ProtocolRunReport r = fuzzOnce(ProtocolKind::Moesi);
  EXPECT_EQ(r.violationCount, 0u);
}

// ----------------------------------------------------------------- Dragon

DragonProtocol& dragon(Harness& h) {
  return dynamic_cast<DragonProtocol&>(h.proto());
}

TEST(Dragon, WriteUpdatesSharersInsteadOfInvalidating) {
  Harness h(ProtocolKind::Dragon);
  h.read(3, kB);
  h.read(7, kB);
  h.read(11, kB);
  h.write(7, kB);  // the update wave refreshes 3 and 11 in place
  EXPECT_EQ(dragon(h).l1Line(7, kB).state, 'O');  // Sm: shared owner
  ASSERT_TRUE(dragon(h).l1Line(3, kB).valid);
  ASSERT_TRUE(dragon(h).l1Line(11, kB).valid);
  // Every surviving copy already holds the new value: the consumers'
  // next reads are pure L1 hits.
  EXPECT_EQ(dragon(h).l1Line(3, kB).value, dragon(h).l1Line(7, kB).value);
  EXPECT_EQ(dragon(h).l1Line(11, kB).value, dragon(h).l1Line(7, kB).value);
  const auto missesBefore = h.proto().stats().l1Misses();
  EXPECT_EQ(h.read(3, kB), dragon(h).l1Line(7, kB).value);
  EXPECT_EQ(h.proto().stats().l1Misses(), missesBefore);
  h.check();
}

TEST(Dragon, SoleCopyWritesStayExclusive) {
  Harness h(ProtocolKind::Dragon);
  h.read(3, kB);
  EXPECT_EQ(dragon(h).l1Line(3, kB).state, 'E');
  const auto bcastsBefore = h.net().stats().broadcasts;
  h.write(3, kB);  // E -> M silently, like any invalidation protocol
  EXPECT_EQ(dragon(h).l1Line(3, kB).state, 'M');
  EXPECT_EQ(h.net().stats().broadcasts, bcastsBefore);
  h.check();
}

TEST(Dragon, SharedWriteBroadcastsEveryTime) {
  Harness h(ProtocolKind::Dragon);
  h.read(3, kB);
  h.read(7, kB);
  const auto bcastsBefore = h.net().stats().broadcasts;
  h.write(3, kB);
  h.write(3, kB);
  h.write(3, kB);
  // Dragon's cost model: a shared line never goes quiet — every write
  // pays the chip-wide update broadcast (MESI would broadcast once and
  // then write locally in M).
  EXPECT_EQ(h.net().stats().broadcasts, bcastsBefore + 3);
  EXPECT_EQ(dragon(h).l1Line(3, kB).state, 'O');
  EXPECT_EQ(dragon(h).l1Line(7, kB).state, 'S');
  h.check();
}

TEST(Dragon, OwnedEvictionWritesBack) {
  Harness h(ProtocolKind::Dragon);
  h.read(7, kB);
  h.write(3, kB);  // 3 becomes Sm over 7's updated Sc copy
  ASSERT_EQ(dragon(h).l1Line(3, kB).state, 'O');
  const auto wbBefore = h.proto().stats().writebacks;
  const CacheGeometry& l1 = h.cfg().l1;
  for (std::uint64_t i = 1; i <= l1.assoc; ++i)
    h.read(3, kB + i * l1.entries / l1.assoc * kBlockBytes);
  ASSERT_FALSE(dragon(h).l1Line(3, kB).valid);
  EXPECT_EQ(h.proto().stats().writebacks, wbBefore + 1);
  // 7's copy was kept fresh by the wave, and the home is fresh too.
  EXPECT_EQ(h.read(11, kB), h.read(7, kB));
  h.check();
}

TEST(Dragon, ValuesSurviveTheFullSharingDance) {
  Harness h(ProtocolKind::Dragon);
  h.write(3, kB);
  h.write(7, kB);
  h.write(3, kB);
  const std::uint64_t v = h.read(11, kB);
  EXPECT_EQ(v, h.read(7, kB));
  EXPECT_EQ(v, h.read(3, kB));
  h.check();
}

TEST(Dragon, MonitoredFuzzRunIsViolationFree) {
  const ProtocolRunReport r = fuzzOnce(ProtocolKind::Dragon);
  EXPECT_EQ(r.violationCount, 0u);
}

// ----------------------------------------------------------- Hybrid-Adapt

AdaptProtocol& adapt(Harness& h) {
  return dynamic_cast<AdaptProtocol&>(h.proto());
}

/// One producer-consumer round: `producer` writes, `consumer` reads.
void pcRound(Harness& h, NodeId producer, NodeId consumer, Addr block) {
  h.write(producer, block);
  h.read(consumer, block);
}

TEST(Adapt, StartsOnInvalidatePolicy) {
  Harness h(ProtocolKind::Adapt);
  h.read(3, kB);
  h.read(7, kB);
  h.write(3, kB);  // no history yet -> invalidate mode
  EXPECT_FALSE(adapt(h).wouldUpdate(kB));
  EXPECT_EQ(adapt(h).l1Line(3, kB).state, 'M');
  EXPECT_FALSE(adapt(h).l1Line(7, kB).valid);
  h.check();
}

TEST(Adapt, ProducerConsumerLineLearnsUpdatePolicy) {
  Harness h(ProtocolKind::Adapt);
  // Tile 3 produces, tile 7 consumes. Each round under invalidation:
  // the write sees a remaining copy and a remote read since the last
  // write -> the classifier walks the score up to the threshold.
  pcRound(h, 3, 7, kB);
  ASSERT_FALSE(adapt(h).wouldUpdate(kB));
  pcRound(h, 3, 7, kB);
  pcRound(h, 3, 7, kB);
  EXPECT_TRUE(adapt(h).wouldUpdate(kB)) << "score after three rounds: "
      << static_cast<int>(adapt(h).classifierScore(kB));
  // Now the line runs Dragon-style: the write updates 7's copy in place
  // and the consumer's read is a pure L1 hit.
  h.write(3, kB);
  EXPECT_EQ(adapt(h).l1Line(3, kB).state, 'O');
  ASSERT_TRUE(adapt(h).l1Line(7, kB).valid);
  EXPECT_EQ(adapt(h).l1Line(7, kB).value, adapt(h).l1Line(3, kB).value);
  const auto missesBefore = h.proto().stats().l1Misses();
  h.read(7, kB);
  EXPECT_EQ(h.proto().stats().l1Misses(), missesBefore);
  h.check();
}

TEST(Adapt, MigratoryLineFallsBackToInvalidate) {
  Harness h(ProtocolKind::Adapt);
  // Learn the update policy first...
  pcRound(h, 3, 7, kB);
  pcRound(h, 3, 7, kB);
  pcRound(h, 3, 7, kB);
  ASSERT_TRUE(adapt(h).wouldUpdate(kB));
  // ...then turn migratory: writers hop with no reads in between. Each
  // hop decrements the score until the line is invalidate-mode again.
  h.write(5, kB);
  h.write(9, kB);
  h.write(13, kB);
  EXPECT_FALSE(adapt(h).wouldUpdate(kB));
  h.check();
}

TEST(Adapt, ReadSideIsMoesiOwnedSharing) {
  Harness h(ProtocolKind::Adapt);
  h.write(3, kB);
  const auto wbBefore = h.proto().stats().writebacks;
  h.read(7, kB);
  EXPECT_EQ(h.proto().stats().writebacks, wbBefore);
  EXPECT_EQ(adapt(h).l1Line(3, kB).state, 'O');
  EXPECT_EQ(adapt(h).l1Line(7, kB).state, 'S');
  h.check();
}

TEST(Adapt, ValuesSurviveThePolicyFlip) {
  Harness h(ProtocolKind::Adapt);
  pcRound(h, 3, 7, kB);
  pcRound(h, 3, 7, kB);
  pcRound(h, 3, 7, kB);  // now update mode
  h.write(3, kB);        // update-mode write
  h.write(9, kB);        // a different writer, still update mode
  const std::uint64_t v = h.read(11, kB);
  EXPECT_EQ(v, h.read(7, kB));
  EXPECT_EQ(v, h.read(3, kB));
  h.check();
}

TEST(Adapt, MonitoredFuzzRunIsViolationFree) {
  const ProtocolRunReport r = fuzzOnce(ProtocolKind::Adapt);
  EXPECT_EQ(r.violationCount, 0u);
}

}  // namespace
}  // namespace eecc
