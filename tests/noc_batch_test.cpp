// The delivery-batching contract (DESIGN.md §13): the per-tick delivery
// ring must be a pure scheduling optimization. A small fig9-style sweep is
// run through both the batched path and the legacy per-message path
// (EECC_NOC_UNBATCHED=1) and compared bit-for-bit — every counter, every
// accumulator moment, every picojoule, and the executed-event count.
//
// Also pins the mesh-side caches the batch path leans on: the precomputed
// broadcast trees, the (distance, node)-sorted broadcast schedules, and the
// flattened route table must all be golden-equal to the fresh per-call
// computations they replaced.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "noc/mesh.h"
#include "protocols/protocol.h"
#include "result_compare.h"

namespace eecc {
namespace {

// ---------------------------------------------------------------------------
// Batched vs legacy delivery: bit-identical experiment results
// ---------------------------------------------------------------------------

/// Runs `cfg` with the legacy per-message delivery path. The env var is
/// read in the Network constructor, so toggling it between in-process
/// runs selects the path per experiment.
ExperimentResult runUnbatched(const ExperimentConfig& cfg) {
  ::setenv("EECC_NOC_UNBATCHED", "1", 1);
  ExperimentResult r = runExperiment(cfg);
  ::unsetenv("EECC_NOC_UNBATCHED");
  return r;
}

ExperimentConfig sweepConfig(ProtocolKind kind, const std::string& workload) {
  ExperimentConfig cfg;
  cfg.workloadName = workload;
  cfg.protocol = kind;
  cfg.warmupCycles = 30'000;
  cfg.windowCycles = 20'000;
  return cfg;
}

TEST(NocBatching, SweepBitIdenticalToLegacyPath) {
  ::unsetenv("EECC_NOC_UNBATCHED");
  std::vector<ExperimentConfig> cfgs;
  for (const ProtocolKind kind : allProtocolKinds()) {
    cfgs.push_back(sweepConfig(kind, "apache4x16p"));
    cfgs.push_back(sweepConfig(kind, "mixed-com"));
  }
  for (const ExperimentConfig& cfg : cfgs) {
    SCOPED_TRACE(cfg.workloadName + "/" + protocolName(cfg.protocol));
    const ExperimentResult batched = runExperiment(cfg);
    const ExperimentResult legacy = runUnbatched(cfg);
    expectResultsIdentical(batched, legacy);
  }
}

TEST(NocBatching, FlitLevelBitIdenticalToLegacyPath) {
  // The flit-level arbitration path computes arrival times differently but
  // delivers through the same ring.
  ::unsetenv("EECC_NOC_UNBATCHED");
  ExperimentConfig cfg = sweepConfig(ProtocolKind::DiCoArin, "jbb4x16p");
  cfg.chip.net.flitLevel = true;
  const ExperimentResult batched = runExperiment(cfg);
  const ExperimentResult legacy = runUnbatched(cfg);
  expectResultsIdentical(batched, legacy);
}

TEST(NocBatching, BroadcastHeavyProtocolBitIdentical) {
  // DiCo-Arin's chip-wide three-way invalidations are the main consumer of
  // the cached-tree + batched-broadcast path; radix is write-heavy enough
  // to trigger plenty of them.
  ::unsetenv("EECC_NOC_UNBATCHED");
  const ExperimentConfig cfg =
      sweepConfig(ProtocolKind::DiCoArin, "radix4x16p");
  const ExperimentResult batched = runExperiment(cfg);
  const ExperimentResult legacy = runUnbatched(cfg);
  expectResultsIdentical(batched, legacy);
}

// ---------------------------------------------------------------------------
// Mesh cache golden tests
// ---------------------------------------------------------------------------

void expectTreeCacheGolden(std::int32_t w, std::int32_t h) {
  const MeshTopology topo(w, h);
  for (NodeId src = 0; src < topo.nodeCount(); ++src) {
    SCOPED_TRACE(src);
    EXPECT_EQ(topo.broadcastTreeCached(src), topo.broadcastTree(src));
  }
}

TEST(MeshCaches, CachedBroadcastTreesMatchFreshComputation4x4) {
  expectTreeCacheGolden(4, 4);
}

TEST(MeshCaches, CachedBroadcastTreesMatchFreshComputation8x8) {
  expectTreeCacheGolden(8, 8);
}

TEST(MeshCaches, BroadcastScheduleCoversAllNodesSortedByDistance) {
  for (const std::int32_t dim : {4, 8}) {
    const MeshTopology topo(dim, dim);
    for (NodeId src = 0; src < topo.nodeCount(); ++src) {
      SCOPED_TRACE(std::to_string(dim) + "x" + std::to_string(dim) +
                   " src=" + std::to_string(src));
      const auto& sched = topo.broadcastSchedule(src);
      ASSERT_EQ(sched.size(), static_cast<std::size_t>(topo.nodeCount()));
      std::vector<bool> seen(static_cast<std::size_t>(topo.nodeCount()));
      for (std::size_t i = 0; i < sched.size(); ++i) {
        EXPECT_EQ(sched[i].dist, topo.distance(src, sched[i].node));
        EXPECT_FALSE(seen[static_cast<std::size_t>(sched[i].node)]);
        seen[static_cast<std::size_t>(sched[i].node)] = true;
        if (i > 0) {
          // Sorted by (distance, node): same-tick deliveries are
          // consecutive AND keep the legacy node-ascending FIFO order.
          const bool ordered =
              sched[i - 1].dist < sched[i].dist ||
              (sched[i - 1].dist == sched[i].dist &&
               sched[i - 1].node < sched[i].node);
          EXPECT_TRUE(ordered);
        }
      }
    }
  }
}

TEST(MeshCaches, RouteSpansMatchFreshRoutes) {
  for (const std::int32_t dim : {4, 8}) {
    const MeshTopology topo(dim, dim);
    for (NodeId s = 0; s < topo.nodeCount(); ++s) {
      for (NodeId d = 0; d < topo.nodeCount(); ++d) {
        const std::vector<LinkId> fresh = topo.route(s, d);
        const MeshTopology::RouteSpan span = topo.routeSpan(s, d);
        ASSERT_EQ(span.size(), fresh.size());
        for (std::size_t i = 0; i < fresh.size(); ++i)
          EXPECT_EQ(span.links[i], fresh[i]);
      }
    }
  }
}

}  // namespace
}  // namespace eecc
