// Report-generator tests: the common/json DOM parser (the read half of
// the JSON layer — the writer half is covered in json_test), the
// buildReport reductions on a handcrafted stats fixture with known
// arithmetic, and golden byte-compares of every writer output (the
// fixture is under tests/fixtures; regenerate the goldens with
// `eecc_report tests/fixtures/report_stats.json --out-dir
// tests/fixtures/golden` after an intentional format change).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/json.h"
#include "obs/report.h"
#include "obs/stage.h"

namespace eecc {
namespace {

std::string fixtureDir() { return std::string(EECC_TEST_DIR) + "/fixtures"; }

std::string readFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

// --- JSON DOM parser ---

TEST(JsonParse, ParsesScalarsAndStructure) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(jsonParse(
      R"({"a": 1.5, "b": [true, false, null, "x\ny"], "c": {"d": -2e3}})", v,
      err))
      << err;
  ASSERT_TRUE(v.isObject());
  EXPECT_DOUBLE_EQ(v.find("a")->asNumber(), 1.5);
  const auto& arr = v.find("b")->asArray();
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_TRUE(arr[0].asBool());
  EXPECT_FALSE(arr[1].asBool());
  EXPECT_TRUE(arr[2].isNull());
  EXPECT_EQ(arr[3].asString(), "x\ny");
  EXPECT_DOUBLE_EQ(v.find("c")->find("d")->asNumber(), -2000.0);
}

TEST(JsonParse, LookupHelpers) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(jsonParse(R"({"n": 7, "s": "hi"})", v, err)) << err;
  EXPECT_DOUBLE_EQ(v.numberOr("n", -1), 7.0);
  EXPECT_DOUBLE_EQ(v.numberOr("missing", -1), -1.0);
  EXPECT_DOUBLE_EQ(v.numberOr("s", -1), -1.0);  // wrong kind -> fallback
  EXPECT_EQ(v.stringOr("s", "?"), "hi");
  EXPECT_EQ(v.stringOr("n", "?"), "?");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonParse, DecodesEscapes) {
  JsonValue v;
  std::string err;
  ASSERT_TRUE(jsonParse(R"(["\" \\ \/ \n \t A é"])", v, err))
      << err;
  EXPECT_EQ(v.asArray()[0].asString(), "\" \\ / \n \t A \xc3\xa9");
}

TEST(JsonParse, RejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",          "[1,]",       "{\"a\": }", "[1 2]",
      "{\"a\" 1}",  "tru",        "\"open",     "01a",       "[1] x",
      "{\"a\": 1,}", "[\x01]",
  };
  for (const char* text : bad) {
    JsonValue v;
    std::string err;
    EXPECT_FALSE(jsonParse(text, v, err)) << "accepted: " << text;
    EXPECT_FALSE(err.empty()) << text;
  }
}

TEST(JsonParse, RoundTripsWriterOutput) {
  // The reader exists to consume our own writer's files — non-finite
  // doubles become null, escapes decode back.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  {
    JsonWriter w(f);
    w.beginObject();
    w.field("name", "a\"b\\c\n");
    w.field("v", 0.1);
    w.key("inf");
    w.value(std::numeric_limits<double>::infinity());
    w.endObject();
  }
  std::fflush(f);
  std::rewind(f);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);

  JsonValue v;
  std::string err;
  ASSERT_TRUE(jsonParse(text, v, err)) << err;
  EXPECT_EQ(v.find("name")->asString(), "a\"b\\c\n");
  EXPECT_DOUBLE_EQ(v.find("v")->asNumber(), 0.1);
  EXPECT_TRUE(v.find("inf")->isNull());
}

// --- Fixture loading + report arithmetic ---

std::vector<StatsRun> loadFixture() {
  std::vector<StatsRun> runs;
  std::string err;
  EXPECT_TRUE(
      loadStatsRuns(fixtureDir() + "/report_stats.json", runs, err))
      << err;
  return runs;
}

TEST(Report, LoadsStatsRuns) {
  const std::vector<StatsRun> runs = loadFixture();
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].workload, "toy");
  EXPECT_EQ(runs[0].protocol, "Directory");
  EXPECT_TRUE(runs[0].has("ledger.rows"));
  EXPECT_FALSE(runs[1].has("ledger.rows"));
  EXPECT_DOUBLE_EQ(runs[1].metric("energy.pj.cache.pointer"), 150.0);
}

TEST(Report, EnergyBreakdownNormalizesAgainstDirectory) {
  const Report rep = buildReport(loadFixture());
  ASSERT_EQ(rep.energy.size(), 2u);
  const EnergyBreakdownRow& dir = rep.energy[0];
  const EnergyBreakdownRow& dico = rep.energy[1];
  // Directory: 1800 cache + 1000 noc + 3 mW * 30000 cyc / 3 GHz = 30000 pJ.
  EXPECT_DOUBLE_EQ(dir.leakagePj, 30000.0);
  EXPECT_DOUBLE_EQ(dir.totalPj(), 32800.0);
  EXPECT_DOUBLE_EQ(dir.normalized, 1.0);
  // DiCo: 1500 + 800 + 24000 = 26300 pJ, normalized to Directory.
  EXPECT_DOUBLE_EQ(dico.totalPj(), 26300.0);
  EXPECT_DOUBLE_EQ(dico.normalized, 26300.0 / 32800.0);
}

TEST(Report, PerVmSharesAndLeakageApportioning) {
  const Report rep = buildReport(loadFixture());
  ASSERT_EQ(rep.perVm.size(), 4u);  // vm0, vm1, shared, other (ledger run)
  const PerVmRow& vm0 = rep.perVm[0];
  const PerVmRow& vm1 = rep.perVm[1];
  const PerVmRow& shared = rep.perVm[2];
  const PerVmRow& other = rep.perVm[3];

  EXPECT_EQ(vm0.row, "vm0");
  EXPECT_DOUBLE_EQ(vm0.tiles, 8.0);
  EXPECT_DOUBLE_EQ(vm0.misses, 150.0);
  EXPECT_DOUBLE_EQ(vm0.missShare, 0.75);
  EXPECT_DOUBLE_EQ(vm0.missLatencyMean, 35000.0 / 150.0);
  EXPECT_DOUBLE_EQ(vm0.dynamicPj, 1900.0);
  EXPECT_DOUBLE_EQ(vm0.dynamicShare, 1900.0 / 2800.0);
  // Mean occupancy 2048 of 16*(128+512)=10240 lines -> 20%.
  EXPECT_DOUBLE_EQ(vm0.occShare, 0.2);
  EXPECT_DOUBLE_EQ(vm0.leakageMw, 0.6);
  ASSERT_EQ(vm0.latencyHist.size(), 16u);
  EXPECT_DOUBLE_EQ(vm0.latencyHist[2], 150.0);

  EXPECT_DOUBLE_EQ(vm1.missShare, 0.25);
  EXPECT_DOUBLE_EQ(vm1.occShare, 0.1);
  EXPECT_DOUBLE_EQ(vm1.leakageMw, 0.3);

  EXPECT_DOUBLE_EQ(shared.leakageMw, 0.0);
  // Unoccupied capacity leaks into `other`: 3.0 - 0.6 - 0.3.
  EXPECT_DOUBLE_EQ(other.leakageMw, 3.0 - 0.6 - 0.3);
  // The decomposition is exact.
  EXPECT_DOUBLE_EQ(
      vm0.leakageMw + vm1.leakageMw + shared.leakageMw + other.leakageMw,
      3.0);
}

TEST(Report, InterferenceMatrixFlitShares) {
  const Report rep = buildReport(loadFixture());
  ASSERT_EQ(rep.interference.size(), 4u);
  EXPECT_EQ(rep.areas, 2u);
  const InterferenceRow& vm0 = rep.interference[0];
  ASSERT_EQ(vm0.flitShareByArea.size(), 2u);
  EXPECT_DOUBLE_EQ(vm0.flitShareByArea[0], 0.75);
  EXPECT_DOUBLE_EQ(vm0.flitShareByArea[1], 0.25);
  // vm0 owns tiles only in area 0 -> everything in area 1 is remote.
  EXPECT_DOUBLE_EQ(vm0.remoteShare, 0.25);
  const InterferenceRow& vm1 = rep.interference[1];
  EXPECT_DOUBLE_EQ(vm1.flitShareByArea[1], 1.0);
  EXPECT_DOUBLE_EQ(vm1.remoteShare, 0.0);
  // Rows with no traffic have all-zero shares, not NaN.
  const InterferenceRow& shared = rep.interference[2];
  EXPECT_DOUBLE_EQ(shared.flitShareByArea[0], 0.0);
  EXPECT_DOUBLE_EQ(shared.remoteShare, 0.0);
}

TEST(Report, StageDecompositionPoolsClassesAndConditionsPercentiles) {
  const Report rep = buildReport(loadFixture());
  // Two stage-traced runs × eight stages, in critical-path order.
  ASSERT_EQ(rep.stageLatency.size(), 2 * kStageCount);
  const auto row = [&](const std::string& protocol, const char* stage) {
    for (const StageLatencyRow& r : rep.stageLatency)
      if (r.protocol == protocol && r.stage == stage) return r;
    ADD_FAILURE() << protocol << "." << stage << " missing";
    return StageLatencyRow{};
  };

  // Directory: request 1000/100, memFetch 20000/100, complete 0/100.
  const StageLatencyRow req = row("Directory", "request");
  EXPECT_DOUBLE_EQ(req.mean, 10.0);
  // All 100 participating samples in hist bucket 0 ([0, 64)): linear
  // interpolation puts p50 mid-bucket.
  EXPECT_DOUBLE_EQ(req.p50, 32.0);
  EXPECT_DOUBLE_EQ(req.share, 1000.0 / 21000.0);
  const StageLatencyRow fetch = row("Directory", "memFetch");
  EXPECT_DOUBLE_EQ(fetch.mean, 200.0);
  // Bucket 3 spans [192, 256): p50 = 192 + 0.5*64, p99 = 192 + 0.99*64.
  EXPECT_DOUBLE_EQ(fetch.p50, 224.0);
  EXPECT_DOUBLE_EQ(fetch.p99, 192.0 + 0.99 * 64.0);
  // A stage that never participates reports zero percentiles, not the
  // bucket-0 midpoint: the histograms hold nonzero samples only.
  const StageLatencyRow done = row("Directory", "complete");
  EXPECT_DOUBLE_EQ(done.mean, 0.0);
  EXPECT_DOUBLE_EQ(done.p50, 0.0);
  EXPECT_DOUBLE_EQ(done.p99, 0.0);
  // Stages with no metrics at all still get a (zero) row.
  EXPECT_DOUBLE_EQ(row("Directory", "ackWait").count, 0.0);

  // DiCo memFetch: 98 samples in bucket 4, 2 in the saturating top
  // bucket. p50 interpolates inside bucket 4; p99 lands past the last
  // finite bucket, so it clamps to the top bucket's lower edge and is
  // flagged saturated (a lower bound, not an estimate).
  const StageLatencyRow dfetch = row("DiCo", "memFetch");
  EXPECT_DOUBLE_EQ(dfetch.p50, 256.0 + 64.0 * 50.0 / 98.0);
  EXPECT_FALSE(dfetch.p50Saturated);
  EXPECT_DOUBLE_EQ(dfetch.p99, StageRecorder::kHistMax - 64.0);
  EXPECT_TRUE(dfetch.p99Saturated);
  EXPECT_FALSE(fetch.p99Saturated);  // fully-binned runs stay unflagged

  // The verdict: DiCo's mean gaps vs Directory are request +10,
  // fanout +50, memFetch +100 -> memFetch dominates.
  ASSERT_EQ(rep.stageDominant.size(), 1u);
  const StageDominantRow& dom = rep.stageDominant[0];
  EXPECT_EQ(dom.protocol, "DiCo");
  EXPECT_EQ(dom.base, "Directory");
  EXPECT_EQ(dom.dominantStage, "memFetch");
  EXPECT_DOUBLE_EQ(dom.stageDeltaCycles, 100.0);
  EXPECT_DOUBLE_EQ(dom.totalDeltaCycles, 160.0);
}

// --- Golden byte-compares ---

TEST(Report, WritersMatchGoldenFiles) {
  std::vector<StatsRun> runs = loadFixture();
  const Report rep = buildReport(runs);
  const std::string out = ::testing::TempDir();
  ASSERT_TRUE(writeReportJson(out + "/report.json", rep));
  ASSERT_TRUE(writeEnergyBreakdownCsv(out + "/energy_breakdown.csv", rep));
  ASSERT_TRUE(writePerVmCsv(out + "/per_vm.csv", rep));
  ASSERT_TRUE(writeInterferenceCsv(out + "/interference.csv", rep));
  ASSERT_TRUE(writeStageLatencyCsv(out + "/stage_latency.csv", rep));
  ASSERT_TRUE(writeReportMarkdown(out + "/report.md", rep));
  const char* files[] = {"report.json",       "energy_breakdown.csv",
                         "per_vm.csv",        "interference.csv",
                         "stage_latency.csv", "report.md"};
  for (const char* name : files) {
    const std::string got = readFile(out + "/" + name);
    const std::string want = readFile(fixtureDir() + "/golden/" + name);
    EXPECT_EQ(got, want) << name;
  }
}

TEST(Report, ReportJsonIsValidJson) {
  const Report rep = buildReport(loadFixture());
  const std::string path = ::testing::TempDir() + "/report_valid.json";
  ASSERT_TRUE(writeReportJson(path, rep));
  JsonValue v;
  std::string err;
  ASSERT_TRUE(jsonParseFile(path, v, err)) << err;
  ASSERT_TRUE(v.isObject());
  EXPECT_EQ(v.find("energyBreakdown")->asArray().size(), 2u);
  EXPECT_EQ(v.find("perVm")->asArray().size(), 4u);
  EXPECT_EQ(v.find("stageLatency")->asArray().size(), 2 * kStageCount);
  EXPECT_EQ(v.find("stageDominant")->asArray().size(), 1u);
}

}  // namespace
}  // namespace eecc
