// Unit tests for the discrete-event kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace eecc {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.scheduleAt(30, [&] { order.push_back(3); });
  q.scheduleAt(10, [&] { order.push_back(1); });
  q.scheduleAt(20, [&] { order.push_back(2); });
  q.runToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    q.scheduleAt(5, [&order, i] { order.push_back(i); });
  q.runToCompletion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesNow) {
  EventQueue q;
  Tick seen = 0;
  q.scheduleAt(100, [&] {
    q.scheduleAfter(5, [&] { seen = q.now(); });
  });
  q.runToCompletion();
  EXPECT_EQ(seen, 105u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 50) q.scheduleAfter(1, recurse);
  };
  q.scheduleAt(0, recurse);
  q.runToCompletion();
  EXPECT_EQ(depth, 50);
  EXPECT_EQ(q.now(), 49u);
}

TEST(EventQueue, RunUntilStopsAtLimit) {
  EventQueue q;
  int ran = 0;
  q.scheduleAt(10, [&] { ++ran; });
  q.scheduleAt(20, [&] { ++ran; });
  q.scheduleAt(30, [&] { ++ran; });
  q.runUntil(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.now(), 20u);
  EXPECT_EQ(q.pending(), 1u);
  q.runToCompletion();
  EXPECT_EQ(ran, 3);
}

TEST(EventQueue, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.runUntil(500);
  EXPECT_EQ(q.now(), 500u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.scheduleAt(1, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(q.executedEvents(), 1u);
}

}  // namespace
}  // namespace eecc
