// Tests that the storage model reproduces the paper bit-for-bit:
// every row of Table V and every cell of Table VII.
#include <gtest/gtest.h>

#include <tuple>

#include "common/bits.h"
#include "energy/storage_model.h"

namespace eecc {
namespace {

ChipParams defaultChip() { return ChipParams{}; }

TEST(StorageModel, TagWidthsMatchSectionVB) {
  const ChipParams p = defaultChip();
  EXPECT_EQ(p.l1TagBits(), 25u);
  EXPECT_EQ(p.l2TagBits(), 17u);
  EXPECT_EQ(p.dirTagBits(), 17u);
  EXPECT_EQ(p.l1cTagBits(), 23u);
  EXPECT_EQ(p.l2cTagBits(), 17u);
  EXPECT_EQ(p.genPoBits(), 6u);
  EXPECT_EQ(p.proPoBits(), 4u);
}

TEST(StorageModel, DataArraysMatchTableV) {
  const auto s = storageFor(ProtocolKind::Directory, defaultChip());
  EXPECT_DOUBLE_EQ(bitsToKiB(s.l1DataBits), 134.25);
  EXPECT_DOUBLE_EQ(bitsToKiB(s.l2DataBits), 1058.0);
}

TEST(StorageModel, DirectoryRowOfTableV) {
  const auto s = storageFor(ProtocolKind::Directory, defaultChip());
  EXPECT_EQ(s.l2DirEntryBits, 64u);                    // 8 bytes
  EXPECT_DOUBLE_EQ(bitsToKiB(s.l2DirBits), 128.0);
  EXPECT_EQ(s.dirCacheEntryBits, 17u + 64u + 6u);      // DirTag+map+GenPo
  EXPECT_DOUBLE_EQ(bitsToKiB(s.dirCacheBits), 21.75);
  EXPECT_NEAR(s.overheadFraction(), 0.1256, 0.0001);
}

TEST(StorageModel, DiCoRowOfTableV) {
  const auto s = storageFor(ProtocolKind::DiCo, defaultChip());
  EXPECT_DOUBLE_EQ(bitsToKiB(s.l1DirBits), 16.0);
  EXPECT_DOUBLE_EQ(bitsToKiB(s.l2DirBits), 128.0);
  EXPECT_EQ(s.l1cEntryBits, 23u + 6u + 1u);
  EXPECT_DOUBLE_EQ(bitsToKiB(s.l1cBits), 7.5);
  EXPECT_EQ(s.l2cEntryBits, 17u + 6u + 1u);
  EXPECT_DOUBLE_EQ(bitsToKiB(s.l2cBits), 6.0);
  EXPECT_NEAR(s.overheadFraction(), 0.1321, 0.0001);
}

TEST(StorageModel, DiCoProvidersRowOfTableV) {
  const auto s = storageFor(ProtocolKind::DiCoProviders, defaultChip());
  // 2 bytes + 3 ProPos (3x4 bits) + 3 valid bits = 31 bits.
  EXPECT_EQ(s.l1DirEntryBits, 31u);
  EXPECT_DOUBLE_EQ(bitsToKiB(s.l1DirBits), 7.75);
  // 4 ProPos + 4 valid bits = 20 bits.
  EXPECT_EQ(s.l2DirEntryBits, 20u);
  EXPECT_DOUBLE_EQ(bitsToKiB(s.l2DirBits), 40.0);
  EXPECT_NEAR(s.overheadFraction(), 0.0514, 0.0001);
}

TEST(StorageModel, DiCoArinRowOfTableV) {
  const auto s = storageFor(ProtocolKind::DiCoArin, defaultChip());
  EXPECT_EQ(s.l1DirEntryBits, 16u);
  EXPECT_DOUBLE_EQ(bitsToKiB(s.l1DirBits), 4.0);
  // max(16-bit map + 2-bit area number, 4 ProPos of 4 bits) = 18 bits.
  EXPECT_EQ(s.l2DirEntryBits, 18u);
  EXPECT_DOUBLE_EQ(bitsToKiB(s.l2DirBits), 36.0);
  EXPECT_NEAR(s.overheadFraction(), 0.0449, 0.0001);
}

TEST(StorageModel, PaperHeadlineReductions) {
  // "Our protocols achieve a 59-64% reduction in directory information."
  const auto dir = storageFor(ProtocolKind::Directory, defaultChip());
  const auto prov = storageFor(ProtocolKind::DiCoProviders, defaultChip());
  const auto arin = storageFor(ProtocolKind::DiCoArin, defaultChip());
  const double provReduction =
      1.0 - static_cast<double>(prov.coherenceBits()) /
                static_cast<double>(dir.coherenceBits());
  const double arinReduction =
      1.0 - static_cast<double>(arin.coherenceBits()) /
                static_cast<double>(dir.coherenceBits());
  EXPECT_NEAR(provReduction, 0.59, 0.01);
  EXPECT_NEAR(arinReduction, 0.64, 0.01);
}

// ---- Table VII: the full (cores x areas) sweep --------------------------

struct TableVIICase {
  std::uint32_t cores;
  std::uint32_t areas;
  ProtocolKind kind;
  double expectPct;   // paper value
  double tolerance;   // paper rounds to 0.1 (or whole) percent
};

class TableVII : public ::testing::TestWithParam<TableVIICase> {};

TEST_P(TableVII, MatchesPaperCell) {
  const auto& c = GetParam();
  ChipParams p;
  p.tiles = c.cores;
  p.areas = c.areas;
  const auto s = storageFor(c.kind, p);
  EXPECT_NEAR(s.overheadFraction() * 100.0, c.expectPct, c.tolerance)
      << c.cores << " cores, " << c.areas << " areas, "
      << protocolName(c.kind);
}

INSTANTIATE_TEST_SUITE_P(
    Directory, TableVII,
    ::testing::Values(
        TableVIICase{64, 2, ProtocolKind::Directory, 12.6, 0.1},
        TableVIICase{64, 64, ProtocolKind::Directory, 12.6, 0.1},
        TableVIICase{128, 4, ProtocolKind::Directory, 24.7, 0.1},
        TableVIICase{256, 8, ProtocolKind::Directory, 48.9, 0.1},
        TableVIICase{512, 16, ProtocolKind::Directory, 97.5, 0.1},
        TableVIICase{1024, 2, ProtocolKind::Directory, 195.0, 1.0}));

INSTANTIATE_TEST_SUITE_P(
    DiCo, TableVII,
    ::testing::Values(TableVIICase{64, 4, ProtocolKind::DiCo, 13.2, 0.1},
                      TableVIICase{128, 8, ProtocolKind::DiCo, 25.3, 0.1},
                      TableVIICase{256, 2, ProtocolKind::DiCo, 49.6, 0.1},
                      TableVIICase{512, 32, ProtocolKind::DiCo, 98.2, 0.15},
                      TableVIICase{1024, 64, ProtocolKind::DiCo, 195.6, 1.0}));

// Note on tolerances: Table V explicitly counts one valid bit per L1 ProPo
// (31-bit entries, 7.75 KB), which we implement, but several many-area
// Table VII cells only reproduce exactly when those L1 valid bits are
// dropped — the published numbers are internally inconsistent on this
// point. Those cells carry a tolerance of (na-1) L1 valid bits' worth of
// overhead; every other cell matches to the paper's printed precision.
INSTANTIATE_TEST_SUITE_P(
    Providers, TableVII,
    ::testing::Values(
        TableVIICase{64, 2, ProtocolKind::DiCoProviders, 4.0, 0.1},
        TableVIICase{64, 4, ProtocolKind::DiCoProviders, 5.1, 0.1},
        TableVIICase{64, 8, ProtocolKind::DiCoProviders, 7.2, 0.1},
        TableVIICase{64, 16, ProtocolKind::DiCoProviders, 10.0, 0.3},
        TableVIICase{64, 32, ProtocolKind::DiCoProviders, 12.6, 0.7},
        TableVIICase{64, 64, ProtocolKind::DiCoProviders, 12.0, 0.2},
        TableVIICase{128, 2, ProtocolKind::DiCoProviders, 5.0, 0.1},
        TableVIICase{128, 128, ProtocolKind::DiCoProviders, 22.7, 0.2},
        TableVIICase{256, 32, ProtocolKind::DiCoProviders, 24.8, 0.8},
        TableVIICase{512, 8, ProtocolKind::DiCoProviders, 12.8, 0.3},
        TableVIICase{512, 512, ProtocolKind::DiCoProviders, 87.5, 0.3},
        TableVIICase{1024, 4, ProtocolKind::DiCoProviders, 13.1, 0.3},
        TableVIICase{1024, 256, ProtocolKind::DiCoProviders, 141.7, 5.6}));

INSTANTIATE_TEST_SUITE_P(
    Arin, TableVII,
    ::testing::Values(
        TableVIICase{64, 2, ProtocolKind::DiCoArin, 7.3, 0.1},
        TableVIICase{64, 4, ProtocolKind::DiCoArin, 4.5, 0.1},
        TableVIICase{64, 8, ProtocolKind::DiCoArin, 5.3, 0.1},
        TableVIICase{64, 16, ProtocolKind::DiCoArin, 6.6, 0.1},
        TableVIICase{64, 64, ProtocolKind::DiCoArin, 2.3, 0.1},
        TableVIICase{128, 4, ProtocolKind::DiCoArin, 7.5, 0.1},
        TableVIICase{128, 128, ProtocolKind::DiCoArin, 2.5, 0.1},
        TableVIICase{256, 8, ProtocolKind::DiCoArin, 8.5, 0.2},
        TableVIICase{512, 2, ProtocolKind::DiCoArin, 49.8, 0.3},
        TableVIICase{512, 512, ProtocolKind::DiCoArin, 2.8, 0.2},
        TableVIICase{1024, 16, ProtocolKind::DiCoArin, 18.6, 0.4},
        TableVIICase{1024, 512, ProtocolKind::DiCoArin, 87.6, 0.5}));

TEST(StorageModel, ProvidersOverheadGrowsWithAreas) {
  // Section V-B: "as the number of areas increases ... the overhead of
  // DiCo-Providers increases" (up to the degenerate all-areas point).
  ChipParams p;
  double prev = 0.0;
  for (const std::uint32_t areas : {2u, 4u, 8u, 16u, 32u}) {
    p.areas = areas;
    const double o =
        storageFor(ProtocolKind::DiCoProviders, p).overheadFraction();
    EXPECT_GT(o, prev);
    prev = o;
  }
}

TEST(StorageModel, ArinAlwaysBelowDiCo) {
  for (const std::uint32_t cores : {64u, 128u, 256u}) {
    for (std::uint32_t areas = 2; areas <= cores; areas *= 2) {
      ChipParams p;
      p.tiles = cores;
      p.areas = areas;
      EXPECT_LT(storageFor(ProtocolKind::DiCoArin, p).coherenceBits(),
                storageFor(ProtocolKind::DiCo, p).coherenceBits());
    }
  }
}

TEST(SharingCodes, BitWidths) {
  EXPECT_EQ(sharingCodeBits(SharingCode::FullMap, 64), 64u);
  EXPECT_EQ(sharingCodeBits(SharingCode::CoarseVector2, 64), 32u);
  EXPECT_EQ(sharingCodeBits(SharingCode::CoarseVector4, 64), 16u);
  EXPECT_EQ(sharingCodeBits(SharingCode::CoarseVector4, 15), 4u);  // ceil
  EXPECT_EQ(sharingCodeBits(SharingCode::LimitedPtr2, 64), 13u);   // 2*6+1
  EXPECT_EQ(sharingCodeBits(SharingCode::LimitedPtr4, 1024), 41u);
}

TEST(SharingCodes, DefaultIsFullMap) {
  const ChipParams p;
  EXPECT_EQ(storageFor(ProtocolKind::Directory, p).coherenceBits(),
            storageFor(ProtocolKind::Directory, p, SharingCode::FullMap)
                .coherenceBits());
}

TEST(SharingCodes, CoarserCodesShrinkEveryProtocol) {
  ChipParams p;
  p.tiles = 256;
  p.areas = 16;
  for (const ProtocolKind kind :
       {ProtocolKind::Directory, ProtocolKind::DiCo,
        ProtocolKind::DiCoProviders, ProtocolKind::DiCoArin}) {
    const auto full = storageFor(kind, p, SharingCode::FullMap);
    const auto c2 = storageFor(kind, p, SharingCode::CoarseVector2);
    const auto c4 = storageFor(kind, p, SharingCode::CoarseVector4);
    EXPECT_LE(c2.coherenceBits(), full.coherenceBits()) << protocolName(kind);
    EXPECT_LE(c4.coherenceBits(), c2.coherenceBits()) << protocolName(kind);
  }
}

TEST(SharingCodes, AreaDivisionComposesWithCodes) {
  // Section II-A: the proposals keep their advantage under any code —
  // DiCo-Arin with a coarse/4 code still beats the directory with the
  // same code.
  ChipParams p;
  p.tiles = 256;
  p.areas = 16;
  EXPECT_LT(
      storageFor(ProtocolKind::DiCoArin, p, SharingCode::CoarseVector4)
          .coherenceBits(),
      storageFor(ProtocolKind::Directory, p, SharingCode::CoarseVector4)
          .coherenceBits());
}

}  // namespace
}  // namespace eecc
