// DiCo-Providers specific behaviour (Tables I and II): provider creation
// on remote reads, in-area serving ("shortened misses"), the two-counter
// write invalidation, providership/ownership replacements.
//
// Small chip: 4x4 mesh, 4 areas of 2x2 tiles.
//   area 0: tiles 0,1,4,5     area 1: tiles 2,3,6,7
//   area 2: tiles 8,9,12,13   area 3: tiles 10,11,14,15
#include <gtest/gtest.h>

#include "protocol_harness.h"
#include "protocols/dico_providers.h"

namespace eecc {
namespace {

using testutil::Harness;

constexpr Addr kB = 5 * kBlockBytes;

DiCoProvidersProtocol& prov(Harness& h) {
  return dynamic_cast<DiCoProvidersProtocol&>(h.proto());
}

TEST(Providers, RemoteReadCreatesProvider) {
  Harness h(ProtocolKind::DiCoProviders);
  h.read(0, kB);   // owner in area 0
  h.read(10, kB);  // remote read from area 3
  EXPECT_EQ(prov(h).l1Line(10, kB).state, 'P');
  EXPECT_EQ(prov(h).providerOf(kB, h.cfg().areaOf(10)), 10);
  EXPECT_EQ(prov(h).l1Line(0, kB).providerCount, 1);
  h.check();
}

TEST(Providers, LocalReadBecomesPlainSharer) {
  Harness h(ProtocolKind::DiCoProviders);
  h.read(0, kB);
  h.read(1, kB);  // same area as the owner
  EXPECT_EQ(prov(h).l1Line(1, kB).state, 'S');
  EXPECT_EQ(prov(h).l1Line(0, kB).state, 'O');
  EXPECT_EQ(prov(h).l1Line(0, kB).sharerCount, 1);
  h.check();
}

TEST(Providers, ProviderServesItsAreaShorteningTheMiss) {
  Harness h(ProtocolKind::DiCoProviders);
  h.read(0, kB);    // owner, area 0
  h.read(10, kB);   // provider for area 3
  h.read(11, kB);   // area 3: owner forwards... or direct? 11 has no
                    // prediction -> home -> owner -> provider -> 11
  EXPECT_EQ(prov(h).l1Line(11, kB).state, 'S');
  h.check();
  // 11's prediction now names the provider; after invalidation-free reuse
  // a new read from 14 (area 3, no prediction) goes home->owner->provider.
  h.read(14, kB);
  EXPECT_EQ(prov(h).l1Line(14, kB).state, 'S');
  // The provider's map covers its area's sharers.
  EXPECT_GE(prov(h).l1Line(10, kB).sharerCount, 2);
  h.check();
}

TEST(Providers, PredictedProviderHitIsClassified) {
  Harness h(ProtocolKind::DiCoProviders);
  h.read(0, kB);
  h.read(10, kB);  // provider in area 3
  h.read(11, kB);  // sharer in area 3, learns supplier via data message
  // Invalidate 11's copy via a write, which also teaches it the writer;
  // instead evict 11's line by set pressure so its L1C$ keeps pointing at
  // the provider 10.
  for (int i = 1; i <= 4; ++i)
    h.read(11, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  const auto before = h.proto().stats().missCount(MissClass::PredProviderHit);
  h.read(11, kB);  // predicts 10 (provider) -> shortened miss
  EXPECT_EQ(h.proto().stats().missCount(MissClass::PredProviderHit),
            before + 1);
  h.check();
}

TEST(Providers, ShortenedMissTraversesFewerLinks) {
  Harness h(ProtocolKind::DiCoProviders);
  h.read(0, kB);
  h.read(15, kB);  // provider in area 3 (corner)
  for (int i = 1; i <= 4; ++i)
    h.read(14, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  h.read(14, kB);  // area 3 read
  h.check();
  const auto& stats = h.proto().stats();
  const auto pp =
      static_cast<std::size_t>(MissClass::PredProviderHit);
  if (stats.missByClass[pp] > 0) {
    // Round trip inside a 2x2 area: at most 2*2 links..
    EXPECT_LE(stats.linksByClass[pp].max(), 4.0);
  }
}

TEST(Providers, WriteInvalidatesProvidersAndTheirSharers) {
  Harness h(ProtocolKind::DiCoProviders);
  h.read(0, kB);    // owner area 0
  h.read(1, kB);    // local sharer
  h.read(10, kB);   // provider area 3
  h.read(11, kB);   // sharer under provider 10
  h.read(8, kB);    // provider area 2
  h.check();
  h.write(6, kB);   // writer in area 1
  h.check();
  for (const NodeId t : {0, 1, 10, 11, 8})
    EXPECT_FALSE(prov(h).l1Line(t, kB).valid) << "tile " << t;
  EXPECT_EQ(prov(h).l1Line(6, kB).state, 'M');
  EXPECT_EQ(prov(h).l2cOwner(kB), 6);
  const std::uint64_t committed = h.proto().committedValue(kB);
  for (const NodeId t : {0, 1, 10, 11, 8})
    EXPECT_EQ(h.read(t, kB), committed);
  h.check();
}

TEST(Providers, WritingProviderInvalidatesItsOwnSharersAfterGrant) {
  Harness h(ProtocolKind::DiCoProviders);
  h.read(0, kB);   // owner area 0
  h.read(10, kB);  // provider area 3
  h.read(11, kB);  // sharer under the provider
  h.write(10, kB); // the provider writes (Section IV-A special case)
  EXPECT_EQ(prov(h).l1Line(10, kB).state, 'M');
  EXPECT_FALSE(prov(h).l1Line(11, kB).valid);
  EXPECT_FALSE(prov(h).l1Line(0, kB).valid);
  h.check();
}

TEST(Providers, ProviderEvictionTransfersProvidership) {
  Harness h(ProtocolKind::DiCoProviders);
  h.read(0, kB);
  h.read(10, kB);  // provider area 3
  h.read(11, kB);  // sharer area 3
  const auto before = h.proto().stats().providershipTransfers;
  for (int i = 1; i <= 4; ++i)  // evict 10's line
    h.read(10, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  EXPECT_EQ(h.proto().stats().providershipTransfers, before + 1);
  EXPECT_EQ(prov(h).l1Line(11, kB).state, 'P');
  EXPECT_EQ(prov(h).providerOf(kB, 3), 11);
  h.check();
}

TEST(Providers, ProviderWithoutSharersEvictsSilentlyAndRepairs) {
  Harness h(ProtocolKind::DiCoProviders);
  h.read(0, kB);
  h.read(10, kB);  // provider area 3, no sharers
  for (int i = 1; i <= 4; ++i)
    h.read(10, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  // The eviction is silent: the owner's ProPo is stale for a while...
  EXPECT_EQ(prov(h).providerOf(kB, 3), 10);
  EXPECT_FALSE(prov(h).l1Line(10, kB).valid);
  // ...until the next area-3 request bounces off the stale provider and
  // the forwarder identity repairs the pointer (the requestor takes over).
  h.read(11, kB);
  EXPECT_EQ(prov(h).providerOf(kB, 3), 11);
  EXPECT_EQ(h.proto().committedValue(kB), prov(h).l1Line(11, kB).value);
  h.check();
}

TEST(Providers, OwnerEvictionKeepsProvidersAlive) {
  Harness h(ProtocolKind::DiCoProviders);
  h.read(0, kB);   // owner area 0
  h.read(10, kB);  // provider area 3
  for (int i = 1; i <= 4; ++i)  // evict the owner; no local sharers
    h.read(0, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  // Ownership fell back to the home L2, providers preserved there.
  EXPECT_EQ(prov(h).l2cOwner(kB), kInvalidNode);
  EXPECT_EQ(prov(h).providerOf(kB, 3), 10);
  h.check();
  // A read from area 3 is forwarded by the home to the provider.
  h.read(11, kB);
  EXPECT_EQ(prov(h).l1Line(11, kB).state, 'S');
  h.check();
}

TEST(Providers, L2OwnerReadWithoutProviderMigratesOwnership) {
  Harness h(ProtocolKind::DiCoProviders);
  h.write(0, kB);  // dirty owner
  for (int i = 1; i <= 4; ++i)  // relinquish to home
    h.read(0, kB + static_cast<Addr>(i) * 16 * kBlockBytes);
  h.read(9, kB);   // area 2, no provider: requestor becomes owner
  EXPECT_EQ(prov(h).l2cOwner(kB), 9);
  EXPECT_EQ(prov(h).l1Line(9, kB).state, 'M');  // inherited dirty data
  h.check();
}

TEST(Providers, FiveHopChainResolvesCorrectly) {
  // Misprediction + owner + provider: the Section III-B complaint.
  Harness h(ProtocolKind::DiCoProviders);
  h.read(2, kB);    // owner in area 1
  h.read(8, kB);    // provider in area 2
  h.read(9, kB);    // sharer in area 2 (prediction: 8)
  h.write(2, kB);   // invalidate everyone; 9's l1c now points at 2
  h.read(13, kB);   // area 2 again: fresh provider
  // 9's prediction (2) is stale only in role: 2 is still owner, remote to
  // 9 -> forwarded to provider 13 -> serves.
  h.read(9, kB);
  EXPECT_EQ(h.proto().committedValue(kB), prov(h).l1Line(9, kB).value);
  h.check();
}

TEST(Providers, AreaSharingMapsStayLocal) {
  Harness h(ProtocolKind::DiCoProviders);
  h.read(0, kB);
  for (const NodeId t : {1, 4, 5}) h.read(t, kB);   // owner's area
  for (const NodeId t : {2, 3}) h.read(t, kB);      // area 1
  h.check();  // includes the coverage invariant per area
  EXPECT_EQ(prov(h).l1Line(0, kB).sharerCount, 3);  // only area-0 sharers
}

}  // namespace
}  // namespace eecc
