// Unit tests for the detailed DDR controller timing model.
#include <gtest/gtest.h>

#include "mem/ddr_controller.h"

namespace eecc {
namespace {

DdrConfig cfg() { return DdrConfig{}; }

Tick serviceOf(DdrController& ddr, Addr block, Tick now) {
  return ddr.schedule(block, now) - now;
}

TEST(Ddr, RowBufferHitIsFasterThanMiss) {
  DdrController ddr(cfg());
  const Addr a = 0;
  const Tick first = serviceOf(ddr, a, 0);        // closed bank
  const Tick done1 = ddr.schedule(a, 10'000);     // same row: hit
  const Tick second = done1 - 10'000;
  EXPECT_LT(second, first);
  EXPECT_EQ(ddr.rowHits(), 1u);
  EXPECT_EQ(ddr.rowMisses(), 1u);
}

TEST(Ddr, RowConflictIsSlowest) {
  DdrController ddr(cfg());
  const DdrConfig& c = ddr.config();
  const Addr a = 0;
  // Same bank, different row: banks are block-interleaved, so stride by
  // banks * rowBytes * banks to stay in bank 0 with a new row.
  const Addr conflict =
      static_cast<Addr>(c.rowBytes) * c.banks * c.banks;
  ddr.schedule(a, 0);
  const Tick hit = serviceOf(ddr, a, 100'000);
  const Tick conf = serviceOf(ddr, conflict, 200'000);
  EXPECT_GT(conf, hit);
  EXPECT_EQ(ddr.rowConflicts(), 1u);
}

TEST(Ddr, BankLevelParallelism) {
  DdrController ddr(cfg());
  // Two requests to different banks at the same instant do not serialize;
  // two to the same bank do.
  const Addr bank0 = 0;
  const Addr bank1 = kBlockBytes;  // next block -> next bank
  const Tick doneA = ddr.schedule(bank0, 0);
  const Tick doneB = ddr.schedule(bank1, 0);
  EXPECT_EQ(doneA, doneB);  // independent banks, identical timing
  DdrController ddr2(cfg());
  const Tick c1 = ddr2.schedule(bank0, 0);
  const Addr sameBankOtherRow = static_cast<Addr>(
      ddr2.config().rowBytes) * ddr2.config().banks * ddr2.config().banks;
  const Tick c2 = ddr2.schedule(sameBankOtherRow, 0);
  EXPECT_GT(c2, c1);  // queued behind the first request's bank occupancy
}

TEST(Ddr, ServiceTimesAreInTheFixedModelsBallpark) {
  // The paper's fixed model uses 300 cycles; the detailed model's range
  // should straddle that (hits faster, conflicts slower).
  DdrController ddr(cfg());
  const DdrConfig& c = ddr.config();
  const Tick hitLat = c.frontEndCycles +
                      static_cast<Tick>(c.tCas + c.burst) *
                          c.coreCyclesPerMemCycle;
  const Tick confLat = c.frontEndCycles +
                       static_cast<Tick>(c.tRp + c.tRcd + c.tCas + c.burst) *
                           c.coreCyclesPerMemCycle;
  EXPECT_GT(hitLat, 80u);
  EXPECT_LT(confLat, 300u);
}

TEST(Ddr, StatsAccumulate) {
  DdrController ddr(cfg());
  for (int i = 0; i < 10; ++i) ddr.schedule(0, static_cast<Tick>(i) * 5000);
  EXPECT_EQ(ddr.requests(), 10u);
  EXPECT_EQ(ddr.rowHits(), 9u);
  EXPECT_NEAR(ddr.rowHitRate(), 0.9, 1e-12);
}

TEST(Ddr, DeterministicSchedule) {
  DdrController a(cfg());
  DdrController b(cfg());
  for (int i = 0; i < 50; ++i) {
    const Addr block = static_cast<Addr>(i * 37) * kBlockBytes;
    EXPECT_EQ(a.schedule(block, static_cast<Tick>(i) * 100),
              b.schedule(block, static_cast<Tick>(i) * 100));
  }
}

}  // namespace
}  // namespace eecc
