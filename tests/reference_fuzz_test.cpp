// Reference-model fuzz tests: the compact data structures are checked
// against straightforward std:: containers under long random operation
// sequences.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cache/coherence_cache.h"
#include "cache/node_set.h"
#include "common/rng.h"

namespace eecc {
namespace {

TEST(NodeSetFuzz, MatchesStdSet) {
  Rng rng(2024);
  NodeSet set;
  std::set<NodeId> ref;
  for (int i = 0; i < 20000; ++i) {
    const auto n = static_cast<NodeId>(rng.below(NodeSet::kCapacity));
    switch (rng.below(3)) {
      case 0:
        set.insert(n);
        ref.insert(n);
        break;
      case 1:
        set.erase(n);
        ref.erase(n);
        break;
      default:
        ASSERT_EQ(set.contains(n), ref.contains(n)) << "node " << n;
    }
    if (i % 500 == 0) {
      ASSERT_EQ(set.size(), static_cast<std::int32_t>(ref.size()));
      ASSERT_EQ(set.empty(), ref.empty());
      ASSERT_EQ(set.first(),
                ref.empty() ? kInvalidNode : *ref.begin());
      std::vector<NodeId> walked;
      set.forEach([&walked](NodeId x) { walked.push_back(x); });
      ASSERT_EQ(walked, std::vector<NodeId>(ref.begin(), ref.end()));
    }
  }
}

TEST(CoherenceCacheFuzz, NeverLiesAboutPointers) {
  // The pointer cache may forget entries (finite capacity) but must never
  // return a value different from the most recent update.
  Rng rng(77);
  CoherenceCache cc(64, 4);
  std::map<Addr, NodeId> ref;
  for (int i = 0; i < 20000; ++i) {
    const Addr block = rng.below(256) * kBlockBytes;
    switch (rng.below(3)) {
      case 0: {
        const auto node = static_cast<NodeId>(rng.below(64));
        const auto displaced = cc.update(block, node);
        ref[block] = node;
        if (displaced) ref.erase(displaced->first);
        break;
      }
      case 1:
        cc.invalidate(block);
        ref.erase(block);
        break;
      default: {
        const auto got = cc.lookup(block);
        if (got) {
          auto it = ref.find(block);
          ASSERT_TRUE(it != ref.end()) << "cache invented an entry";
          ASSERT_EQ(*got, it->second) << "cache returned a stale pointer";
        }
        break;
      }
    }
  }
}

TEST(CoherenceCacheFuzz, BusyEntriesSurviveAnyChurn) {
  Rng rng(123);
  CoherenceCache cc(32, 2);
  // Pin four blocks as permanently busy and hammer the cache; the pinned
  // pointers must remain correct throughout.
  // Distinct sets (32 entries, 2-way -> 16 sets): indices 1..4.
  const Addr pinned[] = {1 * kBlockBytes, 2 * kBlockBytes, 3 * kBlockBytes,
                         4 * kBlockBytes};
  for (const Addr p : pinned)
    cc.update(p, static_cast<NodeId>(blockIndex(p) % 60));
  const auto busy = [&](Addr a) {
    for (const Addr p : pinned)
      if (p == a) return true;
    return false;
  };
  for (int i = 0; i < 10000; ++i) {
    const Addr block = rng.below(512) * kBlockBytes;
    if (busy(block)) continue;
    cc.update(block, static_cast<NodeId>(rng.below(60)), busy);
    if (i % 100 == 0) {
      for (const Addr p : pinned) {
        const auto got = cc.lookup(p);
        ASSERT_TRUE(got.has_value()) << "busy entry evicted";
        ASSERT_EQ(*got, static_cast<NodeId>(blockIndex(p) % 60));
      }
    }
  }
}

TEST(RngFuzz, BelowIsUnbiasedEnough) {
  Rng rng(5);
  int counts[7] = {};
  const int n = 700000;
  for (int i = 0; i < n; ++i) counts[rng.below(7)] += 1;
  for (const int c : counts) EXPECT_NEAR(c, n / 7, n / 7 / 20);
}

}  // namespace
}  // namespace eecc
