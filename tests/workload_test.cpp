// Unit tests for the synthetic consolidated workloads: dedup sizing against
// Table IV, stream determinism, address-pool structure and access mixes.
#include <gtest/gtest.h>

#include <set>

#include "workload/workload.h"
#include "workload/zipf.h"

namespace eecc {
namespace {

TEST(Zipf, SkewFavoursLowRanks) {
  ZipfSampler z(100, 1.0);
  Rng rng(1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) counts[z.sample(rng)] += 1;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
}

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  Rng rng(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) counts[z.sample(rng)] += 1;
  for (const int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Zipf, SingleElement) {
  ZipfSampler z(1, 1.2);
  Rng rng(3);
  EXPECT_EQ(z.sample(rng), 0u);
}

TEST(WorkloadDedup, PagesMatchTableIVTargets) {
  // Closed-form check: with the derived D, 4 identical VMs hit the target.
  for (const auto& p :
       {profiles::apache(), profiles::jbb(), profiles::radix(),
        profiles::lu(), profiles::volrend(), profiles::tomcatv()}) {
    const double d = static_cast<double>(Workload::dedupPagesFor(p, 4));
    const double base =
        static_cast<double>(16 * p.privatePagesPerThread + p.vmSharedPages);
    const double saved = 3.0 * d / (4.0 * (base + d));
    EXPECT_NEAR(saved, p.dedupSavedTarget, 0.01) << p.name;
  }
}

TEST(WorkloadDedup, HomogeneousSavingsEmergeFromPageManager) {
  CmpConfig cfg;
  const VmLayout layout = VmLayout::matched(cfg, 4);
  Workload w(cfg, layout, profiles::uniform4(profiles::apache()), 1);
  EXPECT_NEAR(w.pages().savedFraction(), 0.2172, 0.02);
}

TEST(WorkloadDedup, MixedComSavesLessThanHomogeneous) {
  CmpConfig cfg;
  const VmLayout layout = VmLayout::matched(cfg, 4);
  Workload mixed(cfg, layout, profiles::mixedCom(), 1);
  // Table IV: 15.74% for mixed-com vs 21.7/23.9% for the pure workloads.
  EXPECT_NEAR(mixed.pages().savedFraction(), 0.1574, 0.03);
  Workload pureJbb(cfg, layout, profiles::uniform4(profiles::jbb()), 1);
  EXPECT_LT(mixed.pages().savedFraction(), pureJbb.pages().savedFraction());
}

TEST(WorkloadDedup, MixedSciSavingsComeFromOsPages) {
  CmpConfig cfg;
  const VmLayout layout = VmLayout::matched(cfg, 4);
  Workload mixed(cfg, layout, profiles::mixedSci(), 1);
  EXPECT_NEAR(mixed.pages().savedFraction(), 0.1521, 0.04);
}

TEST(Workload, DeterministicStreams) {
  CmpConfig cfg;
  const VmLayout layout = VmLayout::matched(cfg, 4);
  Workload a(cfg, layout, profiles::uniform4(profiles::apache()), 7);
  Workload b(cfg, layout, profiles::uniform4(profiles::apache()), 7);
  for (int i = 0; i < 2000; ++i) {
    const MemOp oa = a.next(5);
    const MemOp ob = b.next(5);
    EXPECT_EQ(oa.addr, ob.addr);
    EXPECT_EQ(oa.type, ob.type);
    EXPECT_EQ(oa.computeCycles, ob.computeCycles);
  }
}

TEST(Workload, AllTilesActiveInMatched4VmLayout) {
  CmpConfig cfg;
  const VmLayout layout = VmLayout::matched(cfg, 4);
  Workload w(cfg, layout, profiles::uniform4(profiles::lu()), 1);
  for (NodeId t = 0; t < cfg.tiles(); ++t) EXPECT_TRUE(w.tileActive(t));
}

TEST(Workload, AddressesAreBlockAligned) {
  CmpConfig cfg;
  const VmLayout layout = VmLayout::matched(cfg, 4);
  Workload w(cfg, layout, profiles::uniform4(profiles::radix()), 1);
  for (int i = 0; i < 5000; ++i) {
    const MemOp op = w.next(0);
    EXPECT_EQ(op.addr % kBlockBytes, 0u);
    EXPECT_NE(op.addr, 0u);
  }
}

TEST(Workload, WriteFractionIsReasonable) {
  CmpConfig cfg;
  const VmLayout layout = VmLayout::matched(cfg, 4);
  Workload w(cfg, layout, profiles::uniform4(profiles::apache()), 1);
  int writes = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (w.next(3).type == AccessType::Write) ++writes;
  const double frac = static_cast<double>(writes) / n;
  EXPECT_GT(frac, 0.02);
  EXPECT_LT(frac, 0.40);
}

TEST(Workload, VmsUseDisjointNonDedupPages) {
  CmpConfig cfg;
  const VmLayout layout = VmLayout::matched(cfg, 4);
  Workload w(cfg, layout, profiles::uniform4(profiles::tomcatv()), 1);
  // Tiles 0 (VM 0) and 7 (VM 1): private/shared pools must not overlap;
  // only dedup pages may be common.
  std::set<Addr> vm0;
  std::set<Addr> vm1;
  for (int i = 0; i < 20000; ++i) {
    vm0.insert(pageAddr(w.next(0).addr));
    vm1.insert(pageAddr(w.next(7).addr));
  }
  std::set<Addr> common;
  for (const Addr p : vm0)
    if (vm1.contains(p)) common.insert(p);
  // Some shared dedup pages expected, but the bulk must be disjoint.
  EXPECT_LT(common.size(), std::min(vm0.size(), vm1.size()) / 2);
}

TEST(Workload, DedupSharingAcrossVmsExists) {
  CmpConfig cfg;
  const VmLayout layout = VmLayout::matched(cfg, 4);
  Workload w(cfg, layout, profiles::uniform4(profiles::volrend()), 1);
  std::set<Addr> vm0;
  std::set<Addr> vm1;
  for (int i = 0; i < 50000; ++i) {
    vm0.insert(pageAddr(w.next(0).addr));
    vm1.insert(pageAddr(w.next(7).addr));
  }
  int common = 0;
  for (const Addr p : vm0)
    if (vm1.contains(p)) ++common;
  EXPECT_GT(common, 0) << "no deduplicated pages shared across VMs";
}

TEST(Workload, CowRedirectsDedupWrites) {
  CmpConfig cfg;
  const VmLayout layout = VmLayout::matched(cfg, 4);
  auto p = profiles::apache();
  p.dedupWriteFraction = 0.05;  // force COW events quickly
  Workload w(cfg, layout, profiles::uniform4(p), 1);
  for (int i = 0; i < 200000 && w.pages().cowEvents() == 0; ++i) w.next(1);
  EXPECT_GT(w.pages().cowEvents(), 0u);
}

TEST(Workload, ByNameCoversAllTableIVRows) {
  for (const auto& name : profiles::allWorkloadNames()) {
    const auto perVm = profiles::byWorkloadName(name);
    EXPECT_EQ(perVm.size(), 4u) << name;
  }
}

}  // namespace
}  // namespace eecc
