// Scale-out subsystem tests (DESIGN.md §14): churn-schedule grammar,
// lifecycle semantics (boot/shutdown/migration/storm), bit-exact
// determinism of churned multi-chip runs, the per-chip and inter-chip
// decompositions of the aggregate result, and journal round-tripping of
// the scale-out fields.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "core/experiment.h"
#include "core/journal.h"
#include "obs/ledger.h"
#include "result_compare.h"
#include "scaleout/server.h"
#include "scaleout/vm_lifecycle.h"

namespace eecc {
namespace {

ExperimentConfig scaleoutConfig(std::uint32_t chips,
                                const std::string& churn) {
  ExperimentConfig cfg;
  cfg.chip = fuzzChip();
  cfg.protocol = ProtocolKind::DiCo;
  cfg.workloadName = "apache4x16p";
  cfg.warmupCycles = 10'000;
  cfg.windowCycles = 60'000;
  cfg.scaleout.chips = chips;
  cfg.scaleout.churn = churn;
  return cfg;
}

// A schedule exercising every event kind. Slots start full, so the
// shutdown must come first to make the migration and boot feasible; the
// initial consolidation is chip-major (chip 1 holds VMs 4..7).
const char* kFullChurn =
    "shutdown@5000:vm=4;migrate@15000:vm=0:to=1;boot@35000:profile=jbb;"
    "storm@40000:vm=1:len=10000";

TEST(ChurnSchedule, ParsesGrammarAndSortsByTick) {
  const ChurnSchedule s = ChurnSchedule::parse(
      "storm@500:vm=2:len=100;boot@100:chip=1:profile=jbb;"
      "migrate@300:vm=0:to=1;shutdown@200",
      /*seed=*/1, /*windowCycles=*/100'000);
  ASSERT_EQ(s.events.size(), 4u);
  EXPECT_EQ(s.events[0].kind, ChurnEvent::Kind::Boot);
  EXPECT_EQ(s.events[0].at, 100u);
  EXPECT_EQ(s.events[0].chip, 1);
  EXPECT_EQ(s.events[0].profile, "jbb");
  EXPECT_EQ(s.events[1].kind, ChurnEvent::Kind::Shutdown);
  EXPECT_EQ(s.events[1].vm, kInvalidVm);  // random pick at apply time
  EXPECT_EQ(s.events[2].kind, ChurnEvent::Kind::Migrate);
  EXPECT_EQ(s.events[2].vm, 0);
  EXPECT_EQ(s.events[2].chip, 1);
  EXPECT_EQ(s.events[3].kind, ChurnEvent::Kind::Storm);
  EXPECT_EQ(s.events[3].stormLen, 100u);
  EXPECT_EQ(s.bootEvents(), 1u);
}

TEST(ChurnSchedule, RejectsMalformedSpecs) {
  const auto parse = [](const char* spec) {
    return ChurnSchedule::parse(spec, 1, 100'000);
  };
  EXPECT_THROW(parse("reboot@100"), std::runtime_error);
  EXPECT_THROW(parse("boot"), std::runtime_error);
  EXPECT_THROW(parse("boot@abc"), std::runtime_error);
  EXPECT_THROW(parse("boot@100:profile=notabenchmark"), std::runtime_error);
  EXPECT_THROW(parse("boot@100:flavor=blue"), std::runtime_error);
  EXPECT_THROW(parse("storm@100:len=0"), std::runtime_error);
  EXPECT_THROW(parse("random:until=500"), std::runtime_error);  // no events
  EXPECT_THROW(parse("migrate@100:to="), std::runtime_error);
}

TEST(ChurnSchedule, RandomSynthesisIsSeedDeterministic) {
  const ChurnSchedule a =
      ChurnSchedule::parse("random:events=25:until=50000", 7, 100'000);
  const ChurnSchedule b =
      ChurnSchedule::parse("random:events=25:until=50000", 7, 100'000);
  ASSERT_EQ(a.events.size(), 25u);
  ASSERT_EQ(b.events.size(), 25u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_LT(a.events[i].at, 50'000u);
  }
}

TEST(ScaleoutConfigTest, ActiveOnlyWhenMultiChipOrChurned) {
  ScaleoutConfig cfg;
  EXPECT_FALSE(cfg.active());  // chips=1, no churn: the legacy path
  cfg.chips = 2;
  EXPECT_TRUE(cfg.active());
  cfg.chips = 1;
  cfg.churn = "storm@100";
  EXPECT_TRUE(cfg.active());
}

TEST(Scaleout, ChurnedMultiChipRunIsBitIdentical) {
  const ExperimentConfig cfg = scaleoutConfig(2, kFullChurn);
  const ExperimentResult a = runExperiment(cfg);
  const ExperimentResult b = runExperiment(cfg);
  EXPECT_EQ(a.chips, 2u);
  EXPECT_GT(a.churnApplied, 0u);
  expectResultsIdentical(a, b);
  ASSERT_NE(a.scaleout, nullptr);
  ASSERT_NE(b.scaleout, nullptr);
  EXPECT_EQ(a.scaleout->migrationsCompleted, b.scaleout->migrationsCompleted);
  EXPECT_EQ(a.scaleout->totalVms, b.scaleout->totalVms);
  EXPECT_EQ(a.scaleout->interchipRowFlits, b.scaleout->interchipRowFlits);
}

TEST(Scaleout, ChipCountersSumToAggregateResult) {
  const ExperimentResult r = runExperiment(scaleoutConfig(2, kFullChurn));
  ASSERT_NE(r.scaleout, nullptr);
  ASSERT_EQ(r.scaleout->chips.size(), 2u);
  std::uint64_t ops = 0, reads = 0, misses = 0, messages = 0, flits = 0;
  for (const ScaleoutChipSummary& chip : r.scaleout->chips) {
    ops += chip.ops;
    reads += chip.stats.reads;
    misses += chip.stats.missLatency.count();
    messages += chip.noc.messages;
    flits += chip.noc.linkFlits;
  }
  EXPECT_EQ(ops, r.ops);
  EXPECT_EQ(reads, r.stats.reads);
  EXPECT_EQ(misses, r.stats.missLatency.count());
  EXPECT_EQ(messages, r.noc.messages);
  EXPECT_EQ(flits, r.noc.linkFlits);
}

TEST(Scaleout, InterchipRowTrafficDecomposesExactly) {
  const ExperimentResult r = runExperiment(scaleoutConfig(2, kFullChurn));
  ASSERT_NE(r.scaleout, nullptr);
  EXPECT_GT(r.interchip.messages, 0u);
  std::uint64_t rowFlits = 0, rowMessages = 0;
  for (const std::uint64_t f : r.scaleout->interchipRowFlits) rowFlits += f;
  for (const std::uint64_t m : r.scaleout->interchipRowMessages)
    rowMessages += m;
  EXPECT_EQ(rowFlits, r.interchip.flits);
  EXPECT_EQ(rowMessages, r.interchip.messages);
  // The energy charged for the link is exactly flitHops * per-flit-hop pJ.
  EXPECT_GT(r.interchipPj, 0.0);
  EXPECT_GT(r.interchipMw, 0.0);
}

TEST(Scaleout, PerChipLedgerDecomposesChipCounters) {
  ExperimentConfig cfg = scaleoutConfig(2, kFullChurn);
  cfg.obs.ledger = true;
  cfg.obs.ledgerOccupancyEvery = 5'000;
  const ExperimentResult r = runExperiment(cfg);
  ASSERT_NE(r.scaleout, nullptr);
  for (std::size_t c = 0; c < r.scaleout->chips.size(); ++c) {
    const ScaleoutChipSummary& chip = r.scaleout->chips[c];
    ASSERT_NE(chip.ledger, nullptr) << "chip " << c;
    const AttributionLedger& l = *chip.ledger;
    // Rows are the server-wide VM id space, shared by every chip.
    EXPECT_EQ(l.rows(), r.scaleout->interchipRowFlits.size());
    std::uint64_t misses = 0;
    AttributionLedger::NetCell net;
    for (std::size_t row = 0; row < l.rows(); ++row)
      for (std::size_t a = 0; a < l.numAreas(); ++a) {
        misses += l.missLatency(row, a).count();
        net.messages += l.net(row, a).messages;
        net.flits += l.net(row, a).flits;
      }
    EXPECT_EQ(misses, chip.stats.missLatency.count()) << "chip " << c;
    EXPECT_EQ(net.messages, chip.noc.messages) << "chip " << c;
    EXPECT_EQ(net.flits, chip.noc.linkFlits) << "chip " << c;
  }
}

TEST(Scaleout, MigrationMovesVmAndItsStreamFollows) {
  ExperimentConfig cfg =
      scaleoutConfig(2, "shutdown@5000:vm=4;migrate@15000:vm=0:to=1");
  ServerSystem server(cfg);
  server.warmup(cfg.warmupCycles);
  const std::uint64_t opsBefore = server.workload().opsGenerated(0);
  EXPECT_EQ(server.workload().chipOf(0), 0);
  server.run(cfg.windowCycles);
  ASSERT_NE(server.lifecycle(), nullptr);
  EXPECT_EQ(server.lifecycle()->migrationsCompleted(), 1u);
  // VM 0 now lives on chip 1 (in VM 4's old slot) and kept generating:
  // its thread state traveled, the stream follows the VM.
  EXPECT_EQ(server.workload().chipOf(0), 1);
  EXPECT_TRUE(server.workload().vmRunning(0));
  EXPECT_FALSE(server.workload().vmRunning(4));
  EXPECT_GT(server.workload().opsGenerated(0), opsBefore);
  EXPECT_EQ(server.link().stats().migrations, 1u);
  EXPECT_GT(server.link().stats().migrationPages, 0u);
}

TEST(Scaleout, CowStormBreaksDeduplication) {
  const ExperimentConfig quiet = scaleoutConfig(2, "");
  ExperimentConfig stormy = scaleoutConfig(2, "storm@1000:vm=0:len=40000");
  // chips=2 alone activates the scale-out path for both.
  const ExperimentResult a = runExperiment(quiet);
  const ExperimentResult b = runExperiment(stormy);
  // The storm floors VM 0's dedup write fraction, so it must produce at
  // least as many copy-on-write breaks; with apache's low write fraction
  // the difference is strict.
  EXPECT_GT(b.scaleout->cowEvents, a.scaleout->cowEvents);
}

TEST(Scaleout, SingleChipWithChurnUsesScaleoutPath) {
  // chips=1 with a churn spec is still a scale-out run (the lifecycle
  // needs the boundary loop); migration is impossible with one chip and
  // must be skipped, not crash.
  const ExperimentResult r = runExperiment(
      scaleoutConfig(1, "shutdown@5000;migrate@10000;storm@20000:len=5000"));
  EXPECT_EQ(r.chips, 1u);
  ASSERT_NE(r.scaleout, nullptr);
  EXPECT_EQ(r.scaleout->migrationsCompleted, 0u);
  EXPECT_GT(r.scaleout->skippedEvents, 0u);
  EXPECT_EQ(r.scaleout->shutdowns, 1u);
  EXPECT_EQ(r.interchip.messages, 0u);  // nothing to cross
}

TEST(Scaleout, JournalRoundTripsScaleoutFields) {
  const ExperimentConfig cfg = scaleoutConfig(2, kFullChurn);
  const ExperimentResult r = runExperiment(cfg);
  const std::string digest = SweepJournal::configDigest(cfg);
  // The scale-out knobs are result-affecting, so they must change the
  // digest (a resumed sweep must not splice a single-chip record in).
  EXPECT_NE(digest, SweepJournal::configDigest(scaleoutConfig(2, "")));
  EXPECT_NE(digest,
            SweepJournal::configDigest(scaleoutConfig(4, kFullChurn)));
  {
    ExperimentConfig tweaked = cfg;
    tweaked.scaleout.link.hopCycles += 1;
    EXPECT_NE(digest, SweepJournal::configDigest(tweaked));
  }

  const std::string path =
      std::string(::testing::TempDir()) + "/scaleout_journal.jsonl";
  {
    SweepJournal journal;
    std::string error;
    ASSERT_TRUE(journal.open(path, /*resume=*/false, &error)) << error;
    ASSERT_TRUE(journal.append(digest, r));
  }
  SweepJournal reloaded;
  std::string error;
  ASSERT_TRUE(reloaded.open(path, /*resume=*/true, &error)) << error;
  ASSERT_EQ(reloaded.restoredCount(), 1u);
  const ExperimentResult* restored = reloaded.find(digest);
  ASSERT_NE(restored, nullptr);
  expectResultsIdentical(*restored, r);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace eecc
