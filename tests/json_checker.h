// Test-side JSON tools: a strict recursive-descent validator (the
// in-process stand-in for CI's `python3 -m json.tool` gate) plus the
// unescape/lookup helpers the round-trip tests use. Lives under tests/ on
// purpose as an *independent* check: common/json now has its own DOM
// parser (used by tools/eecc_report), and validating the writers with a
// second, separately written grammar keeps the two from vouching for
// each other.
#pragma once

#include <cctype>
#include <cstdio>
#include <optional>
#include <string>
#include <string_view>

namespace eecc::testjson {

class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == s_.size();  // trailing garbage is a failure
  }

  const std::string& error() const { return err_; }

 private:
  bool fail(const char* what) {
    if (err_.empty())
      err_ = std::string(what) + " at offset " + std::to_string(pos_);
    return false;
  }

  void skipWs() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return fail("bad literal");
    pos_ += word.size();
    return true;
  }

  bool value() {
    if (pos_ >= s_.size()) return fail("unexpected end");
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') return fail("expected key");
      if (!string()) return false;
      skipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (pos_ >= s_.size()) return fail("unterminated object");
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return fail("expected ',' or '}'");
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (pos_ >= s_.size()) return fail("unterminated array");
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return fail("expected ',' or ']'");
    }
  }

  bool string() {
    ++pos_;  // opening quote
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return fail("dangling escape");
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_])))
              return fail("bad \\u escape");
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      }
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && s_[start] == '-'))
      return fail("expected number");
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
  std::string err_;
};

inline bool jsonValid(std::string_view text, std::string* err = nullptr) {
  Parser p(text);
  const bool ok = p.valid();
  if (!ok && err != nullptr) *err = p.error();
  return ok;
}

/// Reverses jsonEscape (handles the \u00XX form it emits for control
/// characters; other \uXXXX escapes are out of scope for these tests).
inline std::string jsonUnescape(std::string_view s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') { out += s[i]; continue; }
    ++i;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        const int hi = std::stoi(std::string(s.substr(i + 1, 2)), nullptr, 16);
        const int lo = std::stoi(std::string(s.substr(i + 3, 2)), nullptr, 16);
        out += static_cast<char>(hi * 16 * 16 + lo);  // \u00XX only
        i += 4;
        break;
      }
      default: out += s[i]; break;
    }
  }
  return out;
}

/// Finds `"key": "<string>"` anywhere in `text` and returns the unescaped
/// string value (the keys our exporters emit are unique per document).
inline std::optional<std::string> jsonFindString(std::string_view text,
                                                 std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  std::size_t at = text.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  at += needle.size();
  while (at < text.size() && (text[at] == ' ' || text[at] == '\n')) ++at;
  if (at >= text.size() || text[at] != '"') return std::nullopt;
  ++at;
  std::string raw;
  while (at < text.size()) {
    if (text[at] == '\\') {
      raw += text[at];
      raw += text[at + 1];
      at += 2;
      continue;
    }
    if (text[at] == '"') return jsonUnescape(raw);
    raw += text[at];
    ++at;
  }
  return std::nullopt;
}

/// Slurps a file (tests only; returns empty on failure).
inline std::string readFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

}  // namespace eecc::testjson
