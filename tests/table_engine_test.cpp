// Table-engine well-formedness and interpreter semantics, plus the MESI
// snooping protocol the engine made cheap to add: its stable-state table,
// harness-level behaviour, and a monitored fuzz run (SWMR, value,
// metadata, progress).
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "check/fuzzer.h"
#include "protocol_harness.h"
#include "protocols/adapt.h"
#include "protocols/dico.h"
#include "protocols/dico_arin.h"
#include "protocols/dico_providers.h"
#include "protocols/directory.h"
#include "protocols/dragon.h"
#include "protocols/mesi.h"
#include "protocols/moesi.h"
#include "protocols/table_engine.h"

namespace eecc {
namespace {

using testutil::Harness;

// ------------------------------------------------------- well-formedness

TEST(TableEngine, AllProtocolTablesAreWellFormed) {
  const struct {
    const char* name;
    tbl::ProtocolTable table;
  } tables[] = {
      {"dir", DirectoryProtocol::makeStableTable()},
      {"dico", DiCoProtocol::makeStableTable()},
      {"providers", DiCoProvidersProtocol::makeStableTable()},
      {"arin", DiCoArinProtocol::makeStableTable()},
      {"mesi", MesiProtocol::makeStableTable()},
      {"moesi", MoesiProtocol::makeStableTable()},
      {"dragon", DragonProtocol::makeStableTable()},
      {"adapt", AdaptProtocol::makeStableTable()},
  };
  for (const auto& t : tables) {
    const std::vector<std::string> defects = t.table.validate();
    EXPECT_TRUE(defects.empty()) << t.name << ": " << defects.front();
  }
}

TEST(TableEngine, NoRowWritesAStateOutsideTheProtocolEnum) {
  const tbl::ProtocolTable tables[] = {
      DirectoryProtocol::makeStableTable(),
      DiCoProtocol::makeStableTable(),
      DiCoProvidersProtocol::makeStableTable(),
      DiCoArinProtocol::makeStableTable(),
      MesiProtocol::makeStableTable(),
      MoesiProtocol::makeStableTable(),
      DragonProtocol::makeStableTable(),
      AdaptProtocol::makeStableTable(),
  };
  for (const tbl::ProtocolTable& table : tables) {
    for (const tbl::Transition& row : table.rows()) {
      EXPECT_LT(row.state, table.numStates());
      if (row.next != tbl::kKeepState) EXPECT_LT(row.next, table.numStates());
    }
  }
}

// ------------------------------------------------- interpreter semantics

/// A deliberately partial two-state table for interpreter-level tests:
/// state 0 read -> hit; state 0 write guarded by SoleCopy -> state 1;
/// nothing else covered.
constexpr tbl::Transition kToyRows[] = {
    {0, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState, {tbl::Action::ChargeL1Read, tbl::Action::Touch}},
    {0, tbl::Event::LocalWrite, tbl::Guard::SoleCopy, tbl::Outcome::Hit, 1,
     {tbl::Action::CommitWrite}},
    {0, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
};

struct ToyOps {
  bool sole = false;
  std::uint8_t state = 0xee;  // 0xee = setState never called
  std::vector<tbl::Action> ran;
  bool guard(tbl::Guard g) const {
    EXPECT_EQ(g, tbl::Guard::SoleCopy);
    return sole;
  }
  void setState(std::uint8_t s) { state = s; }
  void act(tbl::Action a) { ran.push_back(a); }
};

TEST(TableEngine, AppliesFirstMatchingRowActionsInOrder) {
  const tbl::ProtocolTable table("toy", kToyRows, 2, 0, 1);
  ToyOps ops;
  EXPECT_EQ(table.run(0, tbl::Event::LocalRead, ops), tbl::Outcome::Hit);
  ASSERT_EQ(ops.ran.size(), 2u);
  EXPECT_EQ(ops.ran[0], tbl::Action::ChargeL1Read);
  EXPECT_EQ(ops.ran[1], tbl::Action::Touch);
  EXPECT_EQ(ops.state, 0xee) << "kKeepState must not call setState";
}

TEST(TableEngine, GuardFailureFallsThroughToTheAlwaysRow) {
  const tbl::ProtocolTable table("toy", kToyRows, 2, 0, 1);
  ToyOps miss;
  miss.sole = false;
  EXPECT_EQ(table.run(0, tbl::Event::LocalWrite, miss), tbl::Outcome::Miss);
  EXPECT_TRUE(miss.ran.empty());

  ToyOps hit;
  hit.sole = true;
  EXPECT_EQ(table.run(0, tbl::Event::LocalWrite, hit), tbl::Outcome::Hit);
  EXPECT_EQ(hit.state, 1) << "next-state applies before the actions run";
  ASSERT_EQ(hit.ran.size(), 1u);
  EXPECT_EQ(hit.ran[0], tbl::Action::CommitWrite);
}

TEST(TableEngine, UncoveredPairReturnsMiss) {
  const tbl::ProtocolTable table("toy", kToyRows, 2, 0, 1);
  ToyOps ops;
  EXPECT_EQ(table.run(1, tbl::Event::LocalRead, ops), tbl::Outcome::Miss);
  EXPECT_TRUE(ops.ran.empty());
}

TEST(TableEngine, ValidateRejectsThePartialToyTable) {
  const tbl::ProtocolTable table("toy", kToyRows, 2, 0, 1);
  EXPECT_FALSE(table.validate().empty());
}

TEST(TableEngine, SelftestEnvCorruptsOnlyTheNamedProtocol) {
  setenv("EECC_TABLE_SELFTEST", "mesi", /*overwrite=*/1);
  EXPECT_TRUE(MesiProtocol::makeStableTable().typoInjected());
  EXPECT_FALSE(DirectoryProtocol::makeStableTable().typoInjected());
  unsetenv("EECC_TABLE_SELFTEST");
  EXPECT_FALSE(MesiProtocol::makeStableTable().typoInjected());
}

// ------------------------------------------------------------ MESI-Snoop

constexpr Addr kB = 5 * kBlockBytes;

MesiProtocol& mesi(Harness& h) {
  return dynamic_cast<MesiProtocol&>(h.proto());
}

TEST(Mesi, ColdReadInstallsExclusiveAndBroadcasts) {
  Harness h(ProtocolKind::Mesi);
  const auto bcastsBefore = h.net().stats().broadcasts;
  h.read(3, kB);
  EXPECT_EQ(mesi(h).l1Line(3, kB).state, 'E');
  EXPECT_EQ(h.net().stats().broadcasts, bcastsBefore + 1);
  h.check();
}

TEST(Mesi, SecondReaderSeesSharedAndCacheToCacheTransfer) {
  Harness h(ProtocolKind::Mesi);
  h.read(3, kB);
  h.read(7, kB);
  EXPECT_EQ(mesi(h).l1Line(3, kB).state, 'S');
  EXPECT_EQ(mesi(h).l1Line(7, kB).state, 'S');
  // The E holder supplied the line: a cache-to-cache miss, not a home one.
  EXPECT_EQ(h.proto().stats().missCount(MissClass::UnpredOwner), 1u);
  h.check();
}

TEST(Mesi, SilentExclusiveWriteUpgrade) {
  Harness h(ProtocolKind::Mesi);
  h.read(3, kB);
  const auto missesBefore = h.proto().stats().l1Misses();
  const auto bcastsBefore = h.net().stats().broadcasts;
  h.write(3, kB);  // E -> M with no traffic at all
  EXPECT_EQ(h.proto().stats().l1Misses(), missesBefore);
  EXPECT_EQ(h.net().stats().broadcasts, bcastsBefore);
  EXPECT_EQ(mesi(h).l1Line(3, kB).state, 'M');
  h.check();
}

TEST(Mesi, WriteBroadcastInvalidatesEverySharer) {
  Harness h(ProtocolKind::Mesi);
  h.read(3, kB);
  h.read(7, kB);
  h.read(11, kB);
  h.write(7, kB);
  EXPECT_EQ(mesi(h).l1Line(7, kB).state, 'M');
  EXPECT_FALSE(mesi(h).l1Line(3, kB).valid);
  EXPECT_FALSE(mesi(h).l1Line(11, kB).valid);
  // Upgrade from S: the broadcast carries no data.
  EXPECT_EQ(h.proto().stats().upgrades, 1u);
  h.check();
}

TEST(Mesi, SnoopedDirtyLineWritesThroughToHome) {
  Harness h(ProtocolKind::Mesi);
  h.write(3, kB);
  const auto wbBefore = h.proto().stats().writebacks;
  h.read(7, kB);  // the M holder supplies, downgrades, writes through
  EXPECT_EQ(h.proto().stats().writebacks, wbBefore + 1);
  EXPECT_EQ(mesi(h).l1Line(3, kB).state, 'S');
  EXPECT_EQ(mesi(h).l1Line(7, kB).state, 'S');
  h.check();
}

TEST(Mesi, HomeServesWhenNoCacheHolds) {
  Harness h(ProtocolKind::Mesi);
  h.write(3, kB);
  h.read(7, kB);      // parks the value at the home L2 (write-through)
  h.write(9, kB);     // invalidate both sharers again
  h.read(9, kB);      // hit
  // Evict 9's M copy by filling its set, then re-read from a fourth tile:
  // nobody caches kB, the home L2 serves.
  const CacheGeometry& l1 = h.cfg().l1;
  for (std::uint64_t i = 1; i <= l1.assoc; ++i)
    h.read(9, kB + i * l1.entries / l1.assoc * kBlockBytes);
  ASSERT_FALSE(mesi(h).l1Line(9, kB).valid);
  const auto l2HitsBefore = h.proto().stats().missCount(MissClass::UnpredL2);
  h.read(5, kB);
  EXPECT_EQ(h.proto().stats().missCount(MissClass::UnpredL2),
            l2HitsBefore + 1);
  h.check();
}

TEST(Mesi, ValuesSurviveTheFullSharingDance) {
  Harness h(ProtocolKind::Mesi);
  h.write(3, kB);
  h.write(7, kB);
  h.write(3, kB);
  const std::uint64_t v = h.read(11, kB);
  EXPECT_EQ(v, h.read(7, kB));
  EXPECT_EQ(v, h.read(3, kB));
  h.check();
}

TEST(Mesi, MonitoredFuzzRunIsViolationFree) {
  FuzzOptions opt;
  opt.opsPerTile = 150;
  opt.sweepEvery = 10'000;
  const Trace trace =
      makeFuzzTrace(opt.chip, opt.workloadName, /*seed=*/17, opt.opsPerTile);
  const ProtocolRunReport r = runTraceChecked(
      opt.chip, ProtocolKind::Mesi, trace, opt.sweepEvery, opt.progressBound);
  EXPECT_EQ(r.violationCount, 0u);
  EXPECT_EQ(r.ops, trace.records().size());
}

}  // namespace
}  // namespace eecc
