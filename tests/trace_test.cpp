// Tests for trace capture/replay: round-trip fidelity, determinism, and
// per-tile splitting.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/cmp_system.h"
#include "protocol_harness.h"
#include "workload/profile.h"
#include "workload/trace.h"

namespace eecc {
namespace {

using testutil::smallConfig;

std::string tempTracePath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name + ".eecctrc";
}

TEST(Trace, RoundTripPreservesRecords) {
  Trace trace;
  trace.setTileCount(16);
  trace.append({3, AccessType::Read, 5, 0x1000});
  trace.append({7, AccessType::Write, 0, 0xdeadbe40});
  trace.append({0, AccessType::Read, 123456, kBlockBytes});
  const std::string path = tempTracePath("roundtrip");
  trace.save(path);
  const Trace loaded = Trace::load(path);
  EXPECT_EQ(loaded.tileCount(), 16u);
  ASSERT_EQ(loaded.records().size(), 3u);
  EXPECT_EQ(loaded.records()[0], trace.records()[0]);
  EXPECT_EQ(loaded.records()[1], trace.records()[1]);
  EXPECT_EQ(loaded.records()[2], trace.records()[2]);
  std::remove(path.c_str());
}

TEST(Trace, WriteTraceFromWorkloadIsDeterministic) {
  const CmpConfig cfg = smallConfig();
  const VmLayout layout = VmLayout::matched(cfg, 4);
  const std::string pathA = tempTracePath("wlA");
  const std::string pathB = tempTracePath("wlB");
  {
    Workload w(cfg, layout, profiles::uniform4(profiles::radix()), 9);
    EXPECT_EQ(writeTrace(w, cfg, 50, pathA), 50u * 16u);
  }
  {
    Workload w(cfg, layout, profiles::uniform4(profiles::radix()), 9);
    writeTrace(w, cfg, 50, pathB);
  }
  const Trace a = Trace::load(pathA);
  const Trace b = Trace::load(pathB);
  EXPECT_EQ(a.records(), b.records());
  std::remove(pathA.c_str());
  std::remove(pathB.c_str());
}

TEST(Trace, SplitByTilePartitionsRecords) {
  Trace trace;
  trace.setTileCount(4);
  for (int i = 0; i < 20; ++i)
    trace.append({static_cast<NodeId>(i % 4), AccessType::Read, 1,
                  static_cast<Addr>(i) * kBlockBytes});
  const auto split = trace.splitByTile();
  ASSERT_EQ(split.size(), 4u);
  for (const auto& stream : split) EXPECT_EQ(stream.size(), 5u);
  EXPECT_EQ(split[2][1].addr, 6u * kBlockBytes);
}

TEST(Trace, AddressesAreBlockAlignedInWorkloadTraces) {
  const CmpConfig cfg = smallConfig();
  const VmLayout layout = VmLayout::matched(cfg, 4);
  Workload w(cfg, layout, profiles::uniform4(profiles::lu()), 3);
  const std::string path = tempTracePath("aligned");
  writeTrace(w, cfg, 20, path);
  const Trace t = Trace::load(path);
  for (const TraceRecord& r : t.records()) {
    EXPECT_EQ(r.addr % kBlockBytes, 0u);
    EXPECT_LT(r.tile, 16);
  }
  std::remove(path.c_str());
}

TEST(TraceReplay, DrivesTheFullSystemCoherently) {
  const CmpConfig cfg = smallConfig();
  const VmLayout layout = VmLayout::matched(cfg, 4);
  const std::string path = tempTracePath("replay");
  {
    Workload w(cfg, layout, profiles::uniform4(profiles::apache()), 5);
    writeTrace(w, cfg, 300, path);
  }
  const Trace trace = Trace::load(path);
  for (const ProtocolKind kind :
       {ProtocolKind::Directory, ProtocolKind::DiCoProviders}) {
    CmpSystem sys(cfg, kind, std::make_unique<TraceSource>(trace));
    sys.run(20'000);
    EXPECT_GT(sys.opsCompleted(), 1000u) << protocolName(kind);
    sys.protocol().checkInvariants();
  }
  std::remove(path.c_str());
}

TEST(TraceReplay, ReplayIsDeterministic) {
  const CmpConfig cfg = smallConfig();
  const VmLayout layout = VmLayout::matched(cfg, 4);
  const std::string path = tempTracePath("replay_det");
  {
    Workload w(cfg, layout, profiles::uniform4(profiles::lu()), 8);
    writeTrace(w, cfg, 200, path);
  }
  const Trace trace = Trace::load(path);
  std::uint64_t ops[2];
  std::uint64_t msgs[2];
  for (int i = 0; i < 2; ++i) {
    CmpSystem sys(cfg, ProtocolKind::DiCoArin,
                  std::make_unique<TraceSource>(trace));
    sys.run(15'000);
    ops[i] = sys.opsCompleted();
    msgs[i] = sys.network().stats().messages;
  }
  EXPECT_EQ(ops[0], ops[1]);
  EXPECT_EQ(msgs[0], msgs[1]);
  std::remove(path.c_str());
}

TEST(TraceReplay, BoundedReplayOnLargerChipLeavesExtraTilesIdle) {
  // Record on the small fuzzing-sized chip, replay bounded on a chip with
  // more tiles: the extra tiles must be inactive (and report exhausted)
  // and the replay must complete exactly the recorded operations.
  const CmpConfig small = smallConfig();
  const VmLayout layout = VmLayout::matched(small, 4);
  const std::string path = tempTracePath("bounded_larger");
  {
    Workload w(small, layout, profiles::uniform4(profiles::apache()), 5);
    writeTrace(w, small, 100, path);
  }
  const Trace trace = Trace::load(path);

  CmpConfig big = smallConfig();
  big.meshWidth = small.meshWidth * 2;  // twice the tiles
  big.validate();
  ASSERT_GT(big.tiles(), small.tiles());

  TraceSource probe(trace, /*bounded=*/true);
  for (NodeId t = static_cast<NodeId>(trace.tileCount());
       t < big.tiles(); ++t) {
    EXPECT_FALSE(probe.tileActive(t));
    EXPECT_TRUE(probe.exhausted(t));
  }

  CmpSystem sys(big, ProtocolKind::DiCo,
                std::make_unique<TraceSource>(trace, /*bounded=*/true));
  sys.run(Tick{1} << 40);  // runs dry, then the queue drains
  EXPECT_EQ(sys.opsCompleted(), trace.records().size());
  for (NodeId t = static_cast<NodeId>(trace.tileCount());
       t < big.tiles(); ++t)
    EXPECT_EQ(sys.opsCompleted(t), 0u);
  sys.protocol().checkInvariants();
  std::remove(path.c_str());
}

std::string tempTextPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name + ".txt";
}

void writeTextFile(const std::string& path, const char* body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(body, f);
  std::fclose(f);
}

TEST(TextTrace, IngestsProcOpAddrLines) {
  const std::string path = tempTextPath("ingest");
  writeTextFile(path,
                "# comment line\n"
                "0 R 0x1000\n"
                "\n"
                "1 READ 0x1008\n"   // op matched by first letter
                "0 W 0x1040\n"
                "2 w 4096\n"        // decimal address, same page 0x1000
                "1 R 0x2000\n");
  const TextTraceImage image = loadTextTrace(path);
  EXPECT_EQ(image.opLines, 5u);
  EXPECT_EQ(image.processes, 3u);
  EXPECT_EQ(image.trace.tileCount(), 3u);
  ASSERT_EQ(image.trace.records().size(), 5u);
  // Page 0x1000 is referenced by procs 0, 1 and 2 -> deduplicated.
  EXPECT_EQ(image.sharedPages, 1u);
  EXPECT_EQ(image.trace.records()[0].tile, 0);
  EXPECT_EQ(image.trace.records()[0].type, AccessType::Read);
  EXPECT_EQ(image.trace.records()[2].type, AccessType::Write);
  // Reads of the shared page by different procs hit the same physical
  // page (offsets preserved)...
  const Addr r0 = image.trace.records()[0].addr;  // proc 0 reads 0x1000
  const Addr r1 = image.trace.records()[1].addr;  // proc 1 reads 0x1008
  EXPECT_EQ(r0 & ~(kPageBytes - 1), r1 & ~(kPageBytes - 1));
  EXPECT_EQ(r1 & (kPageBytes - 1), 0x8u);
  // ...while writes trigger copy-on-write onto private copies.
  const Addr w0 = image.trace.records()[2].addr;  // proc 0 writes 0x1040
  EXPECT_NE(w0 & ~(kPageBytes - 1), r0 & ~(kPageBytes - 1));
  EXPECT_EQ(image.pages.cowEvents(), 2u);  // procs 0 and 2 wrote
  // Private page 0x2000 of proc 1 is its own physical page.
  EXPECT_EQ(image.pages.logicalMappings(), 3u + 1u);
  std::remove(path.c_str());
}

TEST(TextTrace, ImageReplaysThroughASystem) {
  const std::string path = tempTextPath("replayable");
  std::string body;
  // 4 procs walking a shared read-only region plus a private one: enough
  // records to exercise the memory system without wrapping surprises.
  for (int i = 0; i < 200; ++i) {
    const int proc = i % 4;
    char line[64];
    std::snprintf(line, sizeof line, "%d %c 0x%x\n", proc,
                  i % 7 == 0 ? 'W' : 'R',
                  0x10000 + (i % 16) * 64 + (i % 7 == 0 ? proc * 0x4000 : 0));
    body += line;
  }
  writeTextFile(path, body.c_str());
  const TextTraceImage image = loadTextTrace(path);
  EXPECT_EQ(image.opLines, 200u);
  CmpSystem sys(smallConfig(), ProtocolKind::DiCoProviders,
                std::make_unique<TraceSource>(image.trace));
  sys.run(20'000);
  EXPECT_GT(sys.opsCompleted(), 500u);
  sys.protocol().checkInvariants();
  std::remove(path.c_str());
}

TEST(TextTrace, IngestionIsDeterministic) {
  const std::string path = tempTextPath("determ");
  writeTextFile(path,
                "0 R 0x5000\n1 R 0x5000\n0 W 0x5010\n1 W 0x6000\n");
  const TextTraceImage a = loadTextTrace(path);
  const TextTraceImage b = loadTextTrace(path);
  EXPECT_EQ(a.trace.records(), b.trace.records());
  EXPECT_EQ(a.pages.physicalPages(), b.pages.physicalPages());
  std::remove(path.c_str());
}

TEST(TextTrace, ArbitrarilyLongLinesRoundTrip) {
  // Regression: the loader used a fixed 256-byte fgets buffer, so a line
  // longer than that was silently split into two records (the tail parsed
  // as a fresh line). Pad the line out past 300 bytes with trailing
  // whitespace — it must still parse as exactly one record per line.
  const std::string path = tempTextPath("longline");
  std::string body = "0 R 0x1000";
  body.append(300, ' ');
  body += "\n1 W 0x2000";
  body.append(400, ' ');
  body += "\n";
  writeTextFile(path, body.c_str());
  const TextTraceImage image = loadTextTrace(path);
  EXPECT_EQ(image.opLines, 2u);
  ASSERT_EQ(image.trace.records().size(), 2u);
  EXPECT_EQ(image.trace.records()[0].type, AccessType::Read);
  EXPECT_EQ(image.trace.records()[1].type, AccessType::Write);
  std::remove(path.c_str());
}

TEST(TextTraceDeathTest, RejectsNegativeFieldsWithLineNumbers) {
  // Regression: strtoull accepts a leading '-' and wraps the value, so
  // "-1 R 0x1000" used to parse as process 2^64-1 (then die on the
  // process cap with a useless message) and a negative address wrapped
  // into a huge one silently.
  const std::string negProc = tempTextPath("negproc");
  writeTextFile(negProc, "0 R 0x1000\n-1 R 0x1000\n");
  EXPECT_DEATH(loadTextTrace(negProc),
               "text trace line 2: process id must not be negative");
  const std::string negAddr = tempTextPath("negaddr");
  writeTextFile(negAddr, "0 R 0x1000\n0 W -0x40\n");
  EXPECT_DEATH(loadTextTrace(negAddr),
               "text trace line 2: address must not be negative");
  std::remove(negProc.c_str());
  std::remove(negAddr.c_str());
}

TEST(TextTraceDeathTest, RejectsOverflowingFieldsWithLineNumbers) {
  // Regression: strtoull clamps out-of-range values to ULLONG_MAX and
  // reports via errno, which the loader ignored.
  const std::string path = tempTextPath("overflow");
  writeTextFile(path, "0 R 0x1000\n0 R 999999999999999999999999999999\n");
  EXPECT_DEATH(loadTextTrace(path), "text trace line 2: address out of range");
  std::remove(path.c_str());
}

TEST(TraceReplay, WrapsAroundShortTraces) {
  Trace trace;
  trace.setTileCount(2);
  trace.append({0, AccessType::Read, 1, kBlockBytes});
  trace.append({0, AccessType::Write, 1, 2 * kBlockBytes});
  TraceSource source(trace);
  EXPECT_TRUE(source.tileActive(0));
  EXPECT_FALSE(source.tileActive(1));
  for (int i = 0; i < 5; ++i) source.next(0);
  EXPECT_EQ(source.wraparounds(), 2u);
  EXPECT_EQ(source.next(0).addr, 2 * kBlockBytes);
}

}  // namespace
}  // namespace eecc
