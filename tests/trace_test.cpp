// Tests for trace capture/replay: round-trip fidelity, determinism, and
// per-tile splitting.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/cmp_system.h"
#include "protocol_harness.h"
#include "workload/profile.h"
#include "workload/trace.h"

namespace eecc {
namespace {

using testutil::smallConfig;

std::string tempTracePath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name + ".eecctrc";
}

TEST(Trace, RoundTripPreservesRecords) {
  Trace trace;
  trace.setTileCount(16);
  trace.append({3, AccessType::Read, 5, 0x1000});
  trace.append({7, AccessType::Write, 0, 0xdeadbe40});
  trace.append({0, AccessType::Read, 123456, kBlockBytes});
  const std::string path = tempTracePath("roundtrip");
  trace.save(path);
  const Trace loaded = Trace::load(path);
  EXPECT_EQ(loaded.tileCount(), 16u);
  ASSERT_EQ(loaded.records().size(), 3u);
  EXPECT_EQ(loaded.records()[0], trace.records()[0]);
  EXPECT_EQ(loaded.records()[1], trace.records()[1]);
  EXPECT_EQ(loaded.records()[2], trace.records()[2]);
  std::remove(path.c_str());
}

TEST(Trace, WriteTraceFromWorkloadIsDeterministic) {
  const CmpConfig cfg = smallConfig();
  const VmLayout layout = VmLayout::matched(cfg, 4);
  const std::string pathA = tempTracePath("wlA");
  const std::string pathB = tempTracePath("wlB");
  {
    Workload w(cfg, layout, profiles::uniform4(profiles::radix()), 9);
    EXPECT_EQ(writeTrace(w, cfg, 50, pathA), 50u * 16u);
  }
  {
    Workload w(cfg, layout, profiles::uniform4(profiles::radix()), 9);
    writeTrace(w, cfg, 50, pathB);
  }
  const Trace a = Trace::load(pathA);
  const Trace b = Trace::load(pathB);
  EXPECT_EQ(a.records(), b.records());
  std::remove(pathA.c_str());
  std::remove(pathB.c_str());
}

TEST(Trace, SplitByTilePartitionsRecords) {
  Trace trace;
  trace.setTileCount(4);
  for (int i = 0; i < 20; ++i)
    trace.append({static_cast<NodeId>(i % 4), AccessType::Read, 1,
                  static_cast<Addr>(i) * kBlockBytes});
  const auto split = trace.splitByTile();
  ASSERT_EQ(split.size(), 4u);
  for (const auto& stream : split) EXPECT_EQ(stream.size(), 5u);
  EXPECT_EQ(split[2][1].addr, 6u * kBlockBytes);
}

TEST(Trace, AddressesAreBlockAlignedInWorkloadTraces) {
  const CmpConfig cfg = smallConfig();
  const VmLayout layout = VmLayout::matched(cfg, 4);
  Workload w(cfg, layout, profiles::uniform4(profiles::lu()), 3);
  const std::string path = tempTracePath("aligned");
  writeTrace(w, cfg, 20, path);
  const Trace t = Trace::load(path);
  for (const TraceRecord& r : t.records()) {
    EXPECT_EQ(r.addr % kBlockBytes, 0u);
    EXPECT_LT(r.tile, 16);
  }
  std::remove(path.c_str());
}

TEST(TraceReplay, DrivesTheFullSystemCoherently) {
  const CmpConfig cfg = smallConfig();
  const VmLayout layout = VmLayout::matched(cfg, 4);
  const std::string path = tempTracePath("replay");
  {
    Workload w(cfg, layout, profiles::uniform4(profiles::apache()), 5);
    writeTrace(w, cfg, 300, path);
  }
  const Trace trace = Trace::load(path);
  for (const ProtocolKind kind :
       {ProtocolKind::Directory, ProtocolKind::DiCoProviders}) {
    CmpSystem sys(cfg, kind, std::make_unique<TraceSource>(trace));
    sys.run(20'000);
    EXPECT_GT(sys.opsCompleted(), 1000u) << protocolName(kind);
    sys.protocol().checkInvariants();
  }
  std::remove(path.c_str());
}

TEST(TraceReplay, ReplayIsDeterministic) {
  const CmpConfig cfg = smallConfig();
  const VmLayout layout = VmLayout::matched(cfg, 4);
  const std::string path = tempTracePath("replay_det");
  {
    Workload w(cfg, layout, profiles::uniform4(profiles::lu()), 8);
    writeTrace(w, cfg, 200, path);
  }
  const Trace trace = Trace::load(path);
  std::uint64_t ops[2];
  std::uint64_t msgs[2];
  for (int i = 0; i < 2; ++i) {
    CmpSystem sys(cfg, ProtocolKind::DiCoArin,
                  std::make_unique<TraceSource>(trace));
    sys.run(15'000);
    ops[i] = sys.opsCompleted();
    msgs[i] = sys.network().stats().messages;
  }
  EXPECT_EQ(ops[0], ops[1]);
  EXPECT_EQ(msgs[0], msgs[1]);
  std::remove(path.c_str());
}

TEST(TraceReplay, WrapsAroundShortTraces) {
  Trace trace;
  trace.setTileCount(2);
  trace.append({0, AccessType::Read, 1, kBlockBytes});
  trace.append({0, AccessType::Write, 1, 2 * kBlockBytes});
  TraceSource source(trace);
  EXPECT_TRUE(source.tileActive(0));
  EXPECT_FALSE(source.tileActive(1));
  for (int i = 0; i < 5; ++i) source.next(0);
  EXPECT_EQ(source.wraparounds(), 2u);
  EXPECT_EQ(source.next(0).addr, 2 * kBlockBytes);
}

}  // namespace
}  // namespace eecc
