// Observability-layer tests (DESIGN.md §10): MetricRegistry semantics, the
// timeline sampler, the ring trace sink, the exporters' JSON validity, and
// the two system-level properties the layer is built on —
//  1. registry snapshots reconcile bit-for-bit with the legacy aggregate
//     structs on every protocol × workload pair, and
//  2. attaching a trace sink or timeline sampler changes no counter.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "check/fuzzer.h"
#include "core/experiment.h"
#include "json_checker.h"
#include "obs/exporters.h"
#include "obs/metric_registry.h"
#include "obs/selfprof.h"
#include "obs/stage.h"
#include "obs/system_metrics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "protocols/protocol_stats.h"

namespace eecc {
namespace {

using SampleMap = std::map<std::string, MetricRegistry::Sample>;

SampleMap byName(const std::vector<MetricRegistry::Sample>& samples) {
  SampleMap m;
  for (const auto& s : samples) m[s.name] = s;
  return m;
}

std::uint64_t counterOf(const SampleMap& m, const std::string& name) {
  const auto it = m.find(name);
  EXPECT_NE(it, m.end()) << "missing metric " << name;
  if (it == m.end()) return 0;
  EXPECT_EQ(it->second.kind, MetricRegistry::Kind::Counter) << name;
  return it->second.u64;
}

double gaugeOf(const SampleMap& m, const std::string& name) {
  const auto it = m.find(name);
  EXPECT_NE(it, m.end()) << "missing metric " << name;
  return it == m.end() ? 0.0 : it->second.f64;
}

ExperimentConfig obsConfig(ProtocolKind kind, const std::string& workload) {
  ExperimentConfig cfg;
  cfg.chip = fuzzChip();
  cfg.protocol = kind;
  cfg.workloadName = workload;
  cfg.warmupCycles = 10'000;
  cfg.windowCycles = 30'000;
  cfg.obs.snapshotMetrics = true;
  return cfg;
}

// --- MetricRegistry unit tests ---

TEST(MetricRegistry, CountersAndGauges) {
  MetricRegistry reg;
  std::uint64_t hits = 7;
  reg.addCounter("cache.hits", [&] { return hits; });
  reg.addGauge("cache.rate", [&] { return 0.5; });
  EXPECT_TRUE(reg.contains("cache.hits"));
  EXPECT_FALSE(reg.contains("cache.misses"));
  EXPECT_EQ(reg.counter("cache.hits"), 7u);
  hits = 9;  // live accessor, not a stored value
  EXPECT_EQ(reg.counter("cache.hits"), 9u);
  EXPECT_DOUBLE_EQ(reg.value("cache.rate"), 0.5);
  EXPECT_DOUBLE_EQ(reg.value("cache.hits"), 9.0);
}

TEST(MetricRegistry, SnapshotIsSortedByName) {
  MetricRegistry reg;
  reg.addCounter("z.last", [] { return std::uint64_t{1}; });
  reg.addCounter("a.first", [] { return std::uint64_t{2}; });
  reg.addGauge("m.mid", [] { return 3.0; });
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a.first");
  EXPECT_EQ(snap[1].name, "m.mid");
  EXPECT_EQ(snap[2].name, "z.last");
}

TEST(MetricRegistry, AccumulatorExpansion) {
  MetricRegistry reg;
  Accumulator acc;
  acc.add(2.0);
  acc.add(4.0);
  reg.addAccumulator("lat", &acc);
  EXPECT_EQ(reg.counter("lat.count"), 2u);
  EXPECT_DOUBLE_EQ(reg.value("lat.sum"), 6.0);
  EXPECT_DOUBLE_EQ(reg.value("lat.mean"), 3.0);
  EXPECT_DOUBLE_EQ(reg.value("lat.min"), 2.0);
  EXPECT_DOUBLE_EQ(reg.value("lat.max"), 4.0);
  EXPECT_DOUBLE_EQ(reg.value("lat.variance"), 1.0);
  acc.add(6.0);  // live view
  EXPECT_EQ(reg.counter("lat.count"), 3u);
}

// --- RingTraceSink unit tests ---

TEST(RingTraceSink, OverwritesOldestWhenFull) {
  RingTraceSink sink(/*capacity=*/4, /*recordHits=*/true);
  for (std::uint64_t i = 0; i < 10; ++i)
    sink.onTransaction(0, /*block=*/i, AccessType::Read, /*start=*/i,
                       /*end=*/i + 1, /*hit=*/true, MissClass::kCount, 0);
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.recorded(), 10u);
  EXPECT_EQ(sink.dropped(), 6u);
  std::vector<Addr> blocks;
  sink.forEach([&](const RingTraceSink::Record& r) {
    blocks.push_back(r.block);
  });
  EXPECT_EQ(blocks, (std::vector<Addr>{6, 7, 8, 9}));  // oldest first
}

TEST(RingTraceSink, HitsSkippedUnlessRequested) {
  RingTraceSink sink(/*capacity=*/8, /*recordHits=*/false);
  sink.onTransaction(0, 1, AccessType::Read, 0, 0, /*hit=*/true,
                     MissClass::kCount, 0);
  sink.onTransaction(0, 2, AccessType::Write, 0, 5, /*hit=*/false,
                     MissClass::Memory, 3);
  EXPECT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.recorded(), 1u);
  sink.forEach([&](const RingTraceSink::Record& r) {
    EXPECT_EQ(r.kind, RingTraceSink::Record::Kind::Miss);
    EXPECT_EQ(r.cls, MissClass::Memory);
    EXPECT_EQ(r.links, 3u);
  });
}

// --- The reconciliation property (satellite test task) ---

class ObsReconcile
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, const char*>> {
};

TEST_P(ObsReconcile, RegistryMatchesLegacyAggregatesBitForBit) {
  const auto [kind, workload] = GetParam();
  const ExperimentResult r = runExperiment(obsConfig(kind, workload));
  ASSERT_FALSE(r.metrics.empty());
  const SampleMap m = byName(r.metrics);

  // System-level counters.
  EXPECT_EQ(counterOf(m, "sys.cycles"), static_cast<std::uint64_t>(r.cycles));
  EXPECT_EQ(counterOf(m, "sys.ops"), r.ops);
  EXPECT_EQ(counterOf(m, "sys.events"), r.simEvents);
  EXPECT_EQ(gaugeOf(m, "sys.throughput"), r.throughput);

  // Per-tile core progress sums to the system total.
  std::uint64_t tileSum = 0;
  for (std::uint32_t t = 0; t < 16; ++t)
    tileSum += counterOf(m, "tile." + std::to_string(t) + ".core.opsDone");
  EXPECT_EQ(tileSum, r.ops);

  // Every ProtocolStats scalar, bit for bit.
  const ProtocolStats& s = r.stats;
  EXPECT_EQ(counterOf(m, "proto.reads"), s.reads);
  EXPECT_EQ(counterOf(m, "proto.writes"), s.writes);
  EXPECT_EQ(counterOf(m, "proto.l1ReadHits"), s.l1ReadHits);
  EXPECT_EQ(counterOf(m, "proto.l1WriteHits"), s.l1WriteHits);
  EXPECT_EQ(counterOf(m, "proto.readMisses"), s.readMisses);
  EXPECT_EQ(counterOf(m, "proto.writeMisses"), s.writeMisses);
  EXPECT_EQ(counterOf(m, "proto.upgrades"), s.upgrades);
  EXPECT_EQ(counterOf(m, "proto.l2DataHits"), s.l2DataHits);
  EXPECT_EQ(counterOf(m, "proto.memoryFetches"), s.memoryFetches);
  EXPECT_EQ(counterOf(m, "proto.invalidationsSent"), s.invalidationsSent);
  EXPECT_EQ(counterOf(m, "proto.broadcastInvalidations"),
            s.broadcastInvalidations);
  EXPECT_EQ(counterOf(m, "proto.ownershipTransfers"), s.ownershipTransfers);
  EXPECT_EQ(counterOf(m, "proto.providershipTransfers"),
            s.providershipTransfers);
  EXPECT_EQ(counterOf(m, "proto.hintMessages"), s.hintMessages);
  EXPECT_EQ(counterOf(m, "proto.providerResolvedMisses"),
            s.providerResolvedMisses);
  EXPECT_EQ(counterOf(m, "proto.writebacks"), s.writebacks);
  EXPECT_EQ(counterOf(m, "proto.l2Evictions"), s.l2Evictions);
  EXPECT_EQ(counterOf(m, "proto.dirEvictionInvalidations"),
            s.dirEvictionInvalidations);

  // Figure-9b miss classification and latency moments.
  std::uint64_t classSum = 0;
  for (std::size_t c = 0; c < static_cast<std::size_t>(MissClass::kCount);
       ++c) {
    const std::string base =
        std::string("proto.miss.") + missClassName(static_cast<MissClass>(c));
    EXPECT_EQ(counterOf(m, base + ".count"), s.missByClass[c]) << base;
    EXPECT_EQ(counterOf(m, base + ".latency.count"),
              s.latencyByClass[c].count());
    EXPECT_EQ(gaugeOf(m, base + ".latency.mean"), s.latencyByClass[c].mean());
    EXPECT_EQ(gaugeOf(m, base + ".links.mean"), s.linksByClass[c].mean());
    classSum += s.missByClass[c];
  }
  EXPECT_EQ(classSum, s.l1Misses());
  EXPECT_EQ(counterOf(m, "proto.missLatency.count"), s.missLatency.count());
  EXPECT_EQ(gaugeOf(m, "proto.missLatency.mean"), s.missLatency.mean());
  EXPECT_EQ(gaugeOf(m, "proto.missLatency.variance"),
            s.missLatency.variance());
  EXPECT_GE(gaugeOf(m, "proto.missLatency.variance"), 0.0);
  EXPECT_EQ(gaugeOf(m, "proto.l1MissRate"), s.l1MissRate());
  EXPECT_EQ(gaugeOf(m, "proto.l2MissRate"), s.l2MissRate());

  // NoC aggregates.
  EXPECT_EQ(counterOf(m, "net.messages"), r.noc.messages);
  EXPECT_EQ(counterOf(m, "net.controlMessages"), r.noc.controlMessages);
  EXPECT_EQ(counterOf(m, "net.dataMessages"), r.noc.dataMessages);
  EXPECT_EQ(counterOf(m, "net.broadcasts"), r.noc.broadcasts);
  EXPECT_EQ(counterOf(m, "net.routings"), r.noc.routings);
  EXPECT_EQ(counterOf(m, "net.linkFlits"), r.noc.linkFlits);
  EXPECT_EQ(counterOf(m, "net.linksTraversed"), r.noc.linksTraversed);
  EXPECT_EQ(counterOf(m, "net.unicastLatency.count"),
            r.noc.unicastLatency.count());
  EXPECT_EQ(gaugeOf(m, "net.unicastLatency.mean"),
            r.noc.unicastLatency.mean());

  // Cache energy events.
  EXPECT_EQ(counterOf(m, "energy.l1TagProbe"), r.events.l1TagProbe);
  EXPECT_EQ(counterOf(m, "energy.l1DataRead"), r.events.l1DataRead);
  EXPECT_EQ(counterOf(m, "energy.l1DataWrite"), r.events.l1DataWrite);
  EXPECT_EQ(counterOf(m, "energy.l2TagProbe"), r.events.l2TagProbe);
  EXPECT_EQ(counterOf(m, "energy.l1cProbe"), r.events.l1cProbe);
  EXPECT_EQ(counterOf(m, "energy.l2cProbe"), r.events.l2cProbe);

  // The run did real work (the comparisons above aren't vacuous 0 == 0).
  EXPECT_GT(r.ops, 0u);
  EXPECT_GT(s.reads + s.writes, 0u);
  EXPECT_GT(r.noc.messages, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, ObsReconcile,
    ::testing::Combine(::testing::Values(ProtocolKind::Directory,
                                         ProtocolKind::DiCo,
                                         ProtocolKind::DiCoProviders,
                                         ProtocolKind::DiCoArin),
                       ::testing::Values("apache4x16p", "mixed-com")),
    [](const auto& info) {
      std::string name = std::string(protocolName(std::get<0>(info.param))) +
                         "_" +
                         (std::string(std::get<1>(info.param)) == "apache4x16p"
                              ? "apache"
                              : "mixedcom");
      std::erase_if(name, [](char c) { return !std::isalnum(
                        static_cast<unsigned char>(c)) && c != '_'; });
      return name;
    });

// --- Observation purity: attaching obs must change nothing ---

TEST(ObsPurity, TraceAndTimelineChangeNoCounter) {
  for (const ProtocolKind kind :
       {ProtocolKind::Directory, ProtocolKind::DiCoProviders}) {
    ExperimentConfig plain = obsConfig(kind, "apache4x16p");
    ExperimentConfig instrumented = plain;
    instrumented.obs.timelineEvery = 2'000;
    instrumented.obs.traceCapacity = 1 << 12;
    instrumented.obs.traceHits = true;

    const ExperimentResult a = runExperiment(plain);
    const ExperimentResult b = runExperiment(instrumented);
    ASSERT_NE(b.trace, nullptr);
    EXPECT_GT(b.trace->recorded(), 0u);
    ASSERT_NE(b.timeline, nullptr);
    EXPECT_GT(b.timeline->rows().size(), 1u);

    // Identical snapshots for every shared name: counters bit for bit,
    // gauges exactly equal. The instrumented run may only *add* the trace
    // sink's own health counters ("trace.*") — no simulation metric may
    // appear, vanish or change.
    const SampleMap ma = byName(a.metrics);
    const SampleMap mb = byName(b.metrics);
    for (const auto& [name, sa] : ma) {
      const auto it = mb.find(name);
      ASSERT_NE(it, mb.end()) << "metric vanished: " << name;
      EXPECT_EQ(sa.kind, it->second.kind) << name;
      EXPECT_EQ(sa.u64, it->second.u64) << name;
      EXPECT_EQ(sa.f64, it->second.f64) << name;
    }
    for (const auto& [name, sb] : mb)
      if (!ma.count(name))
        EXPECT_EQ(name.rfind("trace.", 0), 0u)
            << "unexpected new metric: " << name;
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.noc.messages, b.noc.messages);
  }
}

// --- TimelineSampler behaviour ---

TEST(Timeline, SamplesAtRequestedCadence) {
  ExperimentConfig cfg = obsConfig(ProtocolKind::DiCo, "apache4x16p");
  cfg.obs.timelineEvery = 5'000;
  cfg.obs.timelineMetrics = {"sys.ops", "net.messages", "proto.reads"};
  const ExperimentResult r = runExperiment(cfg);
  ASSERT_NE(r.timeline, nullptr);
  const TimelineSampler& tl = *r.timeline;
  EXPECT_EQ(tl.period(), 5'000u);
  EXPECT_EQ(tl.names(),
            (std::vector<std::string>{"sys.ops", "net.messages",
                                      "proto.reads"}));
  ASSERT_GE(tl.rows().size(), 30'000u / 5'000u);
  Tick prev = 0;
  double prevOps = -1.0;
  for (const auto& row : tl.rows()) {
    EXPECT_GT(row.tick, prev);  // strictly increasing, no duplicate rows
    prev = row.tick;
    ASSERT_EQ(row.values.size(), 3u);
    EXPECT_GE(row.values[0], prevOps);  // counters are monotone
    prevOps = row.values[0];
  }
  // The post-drain row captures the final totals.
  EXPECT_EQ(tl.rows().back().values[0], static_cast<double>(r.ops));
}

// --- Exporters ---

class ObsExportFiles : public ::testing::Test {
 protected:
  std::string path(const char* name) {
    return ::testing::TempDir() + "eecc_obs_" + name;
  }
};

TEST_F(ObsExportFiles, StatsJsonAndCsvAreValid) {
  ExperimentConfig cfg = obsConfig(ProtocolKind::DiCoProviders, "mixed-com");
  const ExperimentResult r = runExperiment(cfg);
  const std::vector<MetricsDoc> docs = {
      {r.workload, protocolName(r.protocol), r.metrics, {}, 0},
      {"hostile\"name\\", "proto,with\"commas", r.metrics, {}, 0}};

  const std::string jsonPath = path("stats.json");
  ASSERT_TRUE(writeStatsJson(jsonPath, docs));
  const std::string doc = testjson::readFile(jsonPath);
  std::string err;
  ASSERT_TRUE(testjson::jsonValid(doc, &err)) << err;
  EXPECT_EQ(testjson::jsonFindString(doc, "workload"), r.workload);
  EXPECT_NE(doc.find("proto.readMisses"), std::string::npos);
  std::remove(jsonPath.c_str());

  const std::string csvPath = path("stats.csv");
  ASSERT_TRUE(writeStatsCsv(csvPath, docs));
  const std::string csv = testjson::readFile(csvPath);
  // Header + one row per metric per doc.
  std::size_t lines = 0;
  for (const char c : csv) lines += c == '\n';
  EXPECT_EQ(lines, 1 + docs.size() * r.metrics.size());
  std::remove(csvPath.c_str());
}

TEST_F(ObsExportFiles, TimelineAndChromeTraceAreValid) {
  ExperimentConfig cfg = obsConfig(ProtocolKind::DiCoArin, "apache4x16p");
  cfg.obs.timelineEvery = 5'000;
  cfg.obs.traceCapacity = 1 << 12;
  const ExperimentResult r = runExperiment(cfg);
  ASSERT_NE(r.timeline, nullptr);
  ASSERT_NE(r.trace, nullptr);
  EXPECT_GT(r.trace->recorded(), 0u);

  const std::string tlPath = path("timeline.json");
  ASSERT_TRUE(writeTimelineJson(tlPath, *r.timeline, r.workload,
                                protocolName(r.protocol)));
  std::string err;
  ASSERT_TRUE(testjson::jsonValid(testjson::readFile(tlPath), &err)) << err;
  std::remove(tlPath.c_str());

  const std::string trPath = path("trace.json");
  ASSERT_TRUE(writeChromeTrace(trPath, *r.trace));
  const std::string doc = testjson::readFile(trPath);
  ASSERT_TRUE(testjson::jsonValid(doc, &err)) << err;
  // trace_event essentials: metadata + complete events with timestamps.
  EXPECT_NE(doc.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ts\":"), std::string::npos);
  std::remove(trPath.c_str());
}

TEST_F(ObsExportFiles, OpenFailureReturnsFalse) {
  const std::vector<MetricsDoc> docs;
  EXPECT_FALSE(writeStatsJson("/nonexistent-dir/x.json", docs));
  EXPECT_FALSE(writeStatsCsv("/nonexistent-dir/x.csv", docs));
}

// --- StageRecorder unit tests (DESIGN.md §16) ---

TEST(StageRecorder, MarkTransitionsPartitionTheTransaction) {
  StageRecorder rec;
  rec.begin(0x100, 10);
  rec.mark(0x100, Stage::Request, 25);      // 15 cycles of request routing
  rec.mark(0x100, Stage::Service, 31);      // 6 cycles of home occupancy
  rec.mark(0x100, Stage::DataReturn, 51);   // 20 cycles of data return
  rec.end(0x100, MissClass::UnpredL2, 58);  // 7 residual cycles
  EXPECT_EQ(rec.transactions(), 1u);
  EXPECT_EQ(rec.inFlight(), 0u);
  const auto lat = [&](Stage s) {
    return rec.latency(MissClass::UnpredL2, s).sum();
  };
  EXPECT_EQ(lat(Stage::Request), 15.0);
  EXPECT_EQ(lat(Stage::Service), 6.0);
  EXPECT_EQ(lat(Stage::DataReturn), 20.0);
  EXPECT_EQ(lat(Stage::Complete), 7.0);
  EXPECT_EQ(lat(Stage::Fanout), 0.0);
  // Every stage commits one sample per transaction, zeros included...
  for (std::size_t s = 0; s < kStageCount; ++s)
    EXPECT_EQ(
        rec.latency(MissClass::UnpredL2, static_cast<Stage>(s)).count(), 1u);
  // ...and the stage sums partition [begin, end] exactly.
  double total = 0;
  for (std::size_t s = 0; s < kStageCount; ++s)
    total += lat(static_cast<Stage>(s));
  EXPECT_EQ(total, 48.0);
  // Histograms hold participating (nonzero) samples only.
  std::uint64_t fanoutHist = 0;
  for (const std::uint64_t b :
       rec.histogram(MissClass::UnpredL2, Stage::Fanout).buckets())
    fanoutHist += b;
  EXPECT_EQ(fanoutHist, 0u);
}

TEST(StageRecorder, BackgroundTrafficIsASilentNoOp) {
  StageRecorder rec;
  // Marks, credits and ends for a block that never began: no samples.
  rec.mark(0x200, Stage::Fanout, 100);
  rec.credit(0x200, Stage::InterChip, 50);
  rec.end(0x200, MissClass::Memory, 200);
  EXPECT_EQ(rec.transactions(), 0u);
  EXPECT_EQ(rec.latency(MissClass::Memory, Stage::Complete).count(), 0u);
}

TEST(StageRecorder, CreditPeelsAnalyticLatencyOffTheNextMark) {
  StageRecorder rec;
  rec.begin(0x300, 0);
  // 100 cycles elapse before the next mark; 60 of them are the banked
  // inter-chip round trip, the rest is genuine memory fetch.
  rec.credit(0x300, Stage::InterChip, 60);
  rec.mark(0x300, Stage::MemFetch, 100);
  rec.end(0x300, MissClass::Memory, 100);
  EXPECT_EQ(rec.latency(MissClass::Memory, Stage::InterChip).sum(), 60.0);
  EXPECT_EQ(rec.latency(MissClass::Memory, Stage::MemFetch).sum(), 40.0);
}

TEST(StageRecorder, FlowIdsAreSequentialAndSurviveCompletion) {
  StageRecorder rec;
  EXPECT_EQ(rec.flowOf(0x400), 0u);
  rec.begin(0x400, 0);
  rec.begin(0x500, 5);
  EXPECT_EQ(rec.flowOf(0x400), 1u);
  EXPECT_EQ(rec.flowOf(0x500), 2u);
  rec.end(0x400, MissClass::UnpredL2, 50);
  // The completion wrapper and its unblock messages trace after end(),
  // in the same call chain: the just-ended id remains resolvable.
  EXPECT_EQ(rec.flowOf(0x400), 1u);
  rec.end(0x500, MissClass::UnpredL2, 60);
  EXPECT_EQ(rec.flowOf(0x400), 0u);  // displaced by the next completion
  EXPECT_EQ(rec.flowOf(0x500), 2u);
}

// --- The flight-recorder reconciliation property (all eight protocols) ---

class StageReconcile : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(StageReconcile, StageSumsReconcileExactlyWithMissAccumulators) {
  ExperimentConfig cfg = obsConfig(GetParam(), "apache4x16p");
  cfg.obs.stageTrace = true;
  const ExperimentResult r = runExperiment(cfg);
  ASSERT_NE(r.stageRec, nullptr);
  const StageRecorder& rec = *r.stageRec;
  ASSERT_GT(rec.transactions(), 0u);
  EXPECT_EQ(rec.transactions(), r.stats.missLatency.count());

  double totalSum = 0;
  for (std::size_t c = 0; c < static_cast<std::size_t>(MissClass::kCount);
       ++c) {
    const auto cls = static_cast<MissClass>(c);
    double classSum = 0;
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const auto stage = static_cast<Stage>(s);
      const Accumulator& lat = rec.latency(cls, stage);
      // One sample per stage per completed transaction of the class.
      EXPECT_EQ(lat.count(), r.stats.missByClass[c])
          << missClassName(cls) << "." << stageName(stage);
      classSum += lat.sum();
      std::uint64_t histN = 0;
      for (const std::uint64_t b : rec.histogram(cls, stage).buckets())
        histN += b;
      EXPECT_LE(histN, lat.count());
    }
    // EXPECT_EQ on doubles on purpose: the partition must be EXACT, not
    // approximately right (integer tick values far below 2^53).
    EXPECT_EQ(classSum, r.stats.latencyByClass[c].sum())
        << missClassName(cls);
    totalSum += classSum;
  }
  EXPECT_EQ(totalSum, r.stats.missLatency.sum());

  // The snapshot carries the same decomposition under "stage.".
  const SampleMap m = byName(r.metrics);
  EXPECT_EQ(counterOf(m, "stage.transactions"), rec.transactions());
  EXPECT_EQ(gaugeOf(m, "stage.memory.memFetch.lat.sum"),
            rec.latency(MissClass::Memory, Stage::MemFetch).sum());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, StageReconcile,
                         ::testing::ValuesIn(allProtocolKinds()),
                         [](const auto& info) {
                           std::string name = protocolName(info.param);
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(
                                 static_cast<unsigned char>(c));
                           });
                           return name;
                         });

// --- Stage-trace purity: attaching the recorder changes nothing ---

TEST(StageRecorder, AttachingChangesNoSimulationOutcome) {
  for (const ProtocolKind kind :
       {ProtocolKind::DiCoArin, ProtocolKind::Mesi}) {
    ExperimentConfig plain = obsConfig(kind, "apache4x16p");
    ExperimentConfig traced = plain;
    traced.obs.stageTrace = true;
    const ExperimentResult a = runExperiment(plain);
    const ExperimentResult b = runExperiment(traced);
    EXPECT_EQ(a.ops, b.ops);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(a.noc.messages, b.noc.messages);
    EXPECT_EQ(a.stats.missLatency.sum(), b.stats.missLatency.sum());
  }
}

// --- Trace-ring overflow visibility (satellite task) ---

TEST(ObsOverflow, DroppedRecordsSurfaceInTheSnapshot) {
  ExperimentConfig cfg = obsConfig(ProtocolKind::Directory, "apache4x16p");
  cfg.obs.traceCapacity = 64;  // tiny ring: guaranteed overflow
  const ExperimentResult r = runExperiment(cfg);
  ASSERT_NE(r.trace, nullptr);
  EXPECT_GT(r.trace->dropped(), 0u);
  const SampleMap m = byName(r.metrics);
  EXPECT_EQ(counterOf(m, "trace.capacity"), 64u);
  EXPECT_EQ(counterOf(m, "trace.recorded"), r.trace->recorded());
  EXPECT_EQ(counterOf(m, "trace.retained"), 64u);
  EXPECT_EQ(counterOf(m, "trace.dropped"), r.trace->dropped());
  EXPECT_EQ(counterOf(m, "trace.recorded"),
            counterOf(m, "trace.retained") + counterOf(m, "trace.dropped"));
}

// --- Perfetto flow events: messages link to their parent transaction ---

TEST_F(ObsExportFiles, FlowEventsLinkMessagesToTransactions) {
  ExperimentConfig cfg = obsConfig(ProtocolKind::DiCoArin, "apache4x16p");
  cfg.obs.stageTrace = true;
  cfg.obs.traceCapacity = 1 << 14;
  const ExperimentResult r = runExperiment(cfg);
  ASSERT_NE(r.trace, nullptr);
  ASSERT_NE(r.stageRec, nullptr);

  // Records written while their transaction was in flight carry its id.
  std::uint64_t missFlows = 0;
  std::uint64_t msgFlows = 0;
  r.trace->forEach([&](const RingTraceSink::Record& rec) {
    if (rec.flow == 0) return;
    if (rec.kind == RingTraceSink::Record::Kind::Miss) ++missFlows;
    else ++msgFlows;
  });
  EXPECT_GT(missFlows, 0u);
  EXPECT_GT(msgFlows, 0u);

  const std::string trPath = path("flow_trace.json");
  ASSERT_TRUE(writeChromeTrace(trPath, *r.trace));
  const std::string doc = testjson::readFile(trPath);
  std::string err;
  ASSERT_TRUE(testjson::jsonValid(doc, &err)) << err;
  // Flow phases: a start on the miss span, enclosing-slice steps on its
  // messages.
  EXPECT_NE(doc.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\": \"t\""), std::string::npos);
  EXPECT_NE(doc.find("\"bp\": \"e\""), std::string::npos);
  std::remove(trPath.c_str());
}

// --- Self-profiler (DESIGN.md §16) ---

TEST(SelfProfiler, DetachedScopesAreNoOps) {
  EXPECT_FALSE(SelfProfiler::anyActive());
  { ProfScope scope(ProfSection::CacheLookup); }  // must not crash
  SelfProfiler prof;
  EXPECT_TRUE(prof.rows().empty());
}

TEST(SelfProfiler, NestedScopesAttributeSelfTimeByCallPath) {
  SelfProfiler prof;
  prof.install();
  {
    ProfScope outer(ProfSection::KernelDispatch);
    { ProfScope inner(ProfSection::TableInterpret); }
    { ProfScope inner(ProfSection::TableInterpret); }
  }
  prof.uninstall();
  const auto rows = prof.rows();
  ASSERT_EQ(rows.size(), 2u);
  // Sorted by path; nested frames join with ';' for flamegraph folding.
  EXPECT_EQ(rows[0].path, "kernel.dispatch");
  EXPECT_EQ(rows[0].calls, 1u);
  EXPECT_EQ(rows[1].path, "kernel.dispatch;table.interpret");
  EXPECT_EQ(rows[1].calls, 2u);
  const auto folded = prof.foldedStacks();
  ASSERT_EQ(folded.size(), 2u);
  EXPECT_EQ(folded[0].rfind("eecc;kernel.dispatch ", 0), 0u);
}

TEST(SelfProfiler, ExperimentAttributionIsExportedButNeverAMetric) {
  ExperimentConfig cfg = obsConfig(ProtocolKind::DiCo, "apache4x16p");
  cfg.obs.selfProf = true;
  const ExperimentResult r = runExperiment(cfg);
  ASSERT_FALSE(r.selfprof.empty());
  EXPECT_GT(r.selfprofWallNs, 0u);
  std::uint64_t calls = 0;
  for (const SelfProfiler::Row& row : r.selfprof) calls += row.calls;
  EXPECT_GT(calls, 0u);
  // Wall-clock attribution never leaks into the deterministic snapshot.
  for (const MetricRegistry::Sample& s : r.metrics)
    EXPECT_EQ(s.name.rfind("selfprof", 0), std::string::npos) << s.name;

  // Stats JSON gains its own "selfprof" section; folded stacks export.
  const std::string jsonPath =
      ::testing::TempDir() + "eecc_obs_selfprof.json";
  const std::vector<MetricsDoc> docs = {{r.workload,
                                         protocolName(r.protocol), r.metrics,
                                         r.selfprof, r.selfprofWallNs}};
  ASSERT_TRUE(writeStatsJson(jsonPath, docs));
  const std::string doc = testjson::readFile(jsonPath);
  std::string err;
  ASSERT_TRUE(testjson::jsonValid(doc, &err)) << err;
  EXPECT_NE(doc.find("\"selfprof\""), std::string::npos);
  EXPECT_NE(doc.find("\"wallNs\""), std::string::npos);
  std::remove(jsonPath.c_str());

  const std::string foldedPath =
      ::testing::TempDir() + "eecc_obs_selfprof.folded";
  ASSERT_TRUE(writeFoldedStacks(foldedPath, r.selfprof));
  const std::string folded = testjson::readFile(foldedPath);
  EXPECT_EQ(folded.rfind("eecc;", 0), 0u);
  std::remove(foldedPath.c_str());
}

}  // namespace
}  // namespace eecc
