// Energy model tests: Table VI leakage reproduction and the [22] network
// energy relations.
#include <gtest/gtest.h>

#include "energy/energy_model.h"

namespace eecc {
namespace {

EnergyModel model(ProtocolKind k) { return EnergyModel(k, ChipParams{}); }

TEST(Leakage, DirectoryMatchesCalibration) {
  // The calibration point itself: 239 mW total, 37 mW tags (Table VI).
  const auto m = model(ProtocolKind::Directory);
  EXPECT_NEAR(m.tagLeakagePerTileMw(), 37.0, 0.01);
  EXPECT_NEAR(m.totalLeakagePerTileMw(), 239.0, 0.01);
}

TEST(Leakage, TableVIRows) {
  // DiCo: 241 mW / 39 mW (+1% / +5%); Providers: 222 / 20 (-7% / -45%);
  // Arin: 219 / 17 (-8% / -54%). Our linear-leakage model lands within
  // ~1.5 mW of each printed cell.
  const auto dico = model(ProtocolKind::DiCo);
  EXPECT_NEAR(dico.tagLeakagePerTileMw(), 39.0, 1.0);
  EXPECT_NEAR(dico.totalLeakagePerTileMw(), 241.0, 1.5);

  const auto prov = model(ProtocolKind::DiCoProviders);
  EXPECT_NEAR(prov.tagLeakagePerTileMw(), 20.0, 1.0);
  EXPECT_NEAR(prov.totalLeakagePerTileMw(), 222.0, 1.5);

  const auto arin = model(ProtocolKind::DiCoArin);
  EXPECT_NEAR(arin.tagLeakagePerTileMw(), 17.0, 1.5);
  EXPECT_NEAR(arin.totalLeakagePerTileMw(), 219.0, 1.5);
}

TEST(Leakage, PaperHeadlinePercentages) {
  // "reduces static power consumption by 45-54%" (tags).
  const double dirTags = model(ProtocolKind::Directory).tagLeakagePerTileMw();
  const double prov =
      model(ProtocolKind::DiCoProviders).tagLeakagePerTileMw();
  const double arin = model(ProtocolKind::DiCoArin).tagLeakagePerTileMw();
  EXPECT_NEAR(1.0 - prov / dirTags, 0.466, 0.03);  // paper: -45%
  EXPECT_NEAR(1.0 - arin / dirTags, 0.507, 0.04);  // paper: -54%
}

TEST(AccessEnergy, L2ReadCostsMoreThanL1) {
  // Section V-C: "L2 block reads ... are more power consuming than L1
  // block reads".
  const auto m = model(ProtocolKind::Directory);
  EXPECT_GT(m.l2DataPj(), m.l1DataPj());
  EXPECT_LT(m.l2DataPj(), 3.0 * m.l1DataPj());  // sane ratio
}

TEST(AccessEnergy, TagProbesAreCheaperThanData) {
  const auto m = model(ProtocolKind::Directory);
  EXPECT_LT(m.l1TagProbePj(), m.l1DataPj());
  EXPECT_LT(m.l2TagProbePj(), m.l2DataPj());
}

TEST(AccessEnergy, DirInfoCostScalesWithEntryWidth) {
  // DiCo's 64-bit L1 sharing code costs more to touch than Arin's 16-bit
  // area map.
  const auto dico = model(ProtocolKind::DiCo);
  const auto arin = model(ProtocolKind::DiCoArin);
  EXPECT_GT(dico.l1DirPj(), arin.l1DirPj());
}

TEST(NocEnergy, PaperRelations) {
  const auto m = model(ProtocolKind::Directory);
  // [22]: routing == one L1 block read; flit-link == routing / 4.
  EXPECT_DOUBLE_EQ(m.routingPj(), m.l1DataPj());
  EXPECT_DOUBLE_EQ(m.flitLinkPj(), m.routingPj() / 4.0);
}

TEST(NocEnergy, AggregatesStats) {
  const auto m = model(ProtocolKind::Directory);
  NocStats stats;
  stats.routings = 10;
  stats.linkFlits = 40;
  const auto b = m.nocEnergy(stats);
  EXPECT_DOUBLE_EQ(b.routingPj, 10 * m.routingPj());
  EXPECT_DOUBLE_EQ(b.linkPj, 40 * m.flitLinkPj());
  EXPECT_DOUBLE_EQ(b.total(), b.routingPj + b.linkPj);
}

TEST(CacheEnergy, AggregatesEvents) {
  const auto m = model(ProtocolKind::DiCo);
  CacheEnergyEvents ev;
  ev.l1TagProbe = 100;
  ev.l1DataRead = 80;
  ev.l2DataRead = 5;
  ev.l1cProbe = 20;
  const auto b = m.cacheEnergy(ev);
  EXPECT_GT(b.l1Pj, 0.0);
  EXPECT_GT(b.l2Pj, 0.0);
  EXPECT_GT(b.pointerPj, 0.0);
  EXPECT_DOUBLE_EQ(b.l1DirPj, 0.0);
  EXPECT_NEAR(b.total(),
              b.l1Pj + b.l2Pj + b.pointerPj + b.l1DirPj + b.l2DirPj, 1e-9);
}

TEST(Power, PjToMw) {
  // 3 GHz: 1e6 cycles = 333.3 us; 1e9 pJ = 1 mJ -> 3 W = 3000 mW.
  EXPECT_NEAR(EnergyModel::pjToMw(1e9, 1000000, 3.0), 3000.0, 0.1);
  EXPECT_EQ(EnergyModel::pjToMw(1e9, 0), 0.0);
}

}  // namespace
}  // namespace eecc
