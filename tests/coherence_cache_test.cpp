// Unit tests for the L1C$/L2C$ pointer caches, including the busy-entry
// overflow behaviour the precise L2C$ relies on.
#include <gtest/gtest.h>

#include "cache/coherence_cache.h"

namespace eecc {
namespace {

Addr blk(std::uint64_t i) { return i * kBlockBytes; }

TEST(CoherenceCache, LookupMissThenHit) {
  CoherenceCache cc(16, 1);
  EXPECT_FALSE(cc.lookup(blk(1)).has_value());
  cc.update(blk(1), 7);
  auto hit = cc.lookup(blk(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 7);
}

TEST(CoherenceCache, UpdateRefreshesExisting) {
  CoherenceCache cc(16, 1);
  cc.update(blk(1), 7);
  const auto displaced = cc.update(blk(1), 9);
  EXPECT_FALSE(displaced.has_value());
  EXPECT_EQ(*cc.lookup(blk(1)), 9);
  EXPECT_EQ(cc.validCount(), 1u);
}

TEST(CoherenceCache, DirectMappedDisplacementReported) {
  CoherenceCache cc(16, 1);  // blocks 1 and 17 collide
  cc.update(blk(1), 7);
  const auto displaced = cc.update(blk(17), 8);
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->first, blk(1));
  EXPECT_EQ(displaced->second, 7);
  EXPECT_FALSE(cc.lookup(blk(1)).has_value());
  EXPECT_EQ(*cc.lookup(blk(17)), 8);
}

TEST(CoherenceCache, BusyEntryParksNewcomerInOverflow) {
  CoherenceCache cc(16, 1);
  cc.update(blk(1), 7);
  const auto displaced =
      cc.update(blk(17), 8, [](Addr a) { return a == blk(1); });
  EXPECT_FALSE(displaced.has_value());  // nothing displaced
  EXPECT_EQ(*cc.lookup(blk(1)), 7);     // busy entry survives
  EXPECT_EQ(*cc.lookup(blk(17)), 8);    // newcomer still findable
  EXPECT_EQ(cc.overflowSize(), 1u);
}

TEST(CoherenceCache, OverflowEntryCanBeInvalidated) {
  CoherenceCache cc(16, 1);
  cc.update(blk(1), 7);
  cc.update(blk(17), 8, [](Addr a) { return a == blk(1); });
  cc.invalidate(blk(17));
  EXPECT_FALSE(cc.lookup(blk(17)).has_value());
  EXPECT_EQ(cc.overflowSize(), 0u);
}

TEST(CoherenceCache, ReinsertionClearsOverflow) {
  CoherenceCache cc(16, 1);
  cc.update(blk(1), 7);
  cc.update(blk(17), 8, [](Addr a) { return a == blk(1); });
  cc.invalidate(blk(1));
  cc.update(blk(17), 9);  // slot now free; must not duplicate
  EXPECT_EQ(*cc.lookup(blk(17)), 9);
  EXPECT_EQ(cc.overflowSize(), 0u);
  EXPECT_EQ(cc.validCount(), 1u);
}

TEST(CoherenceCache, InvalidateMissingIsNoop) {
  CoherenceCache cc(16, 1);
  cc.invalidate(blk(3));
  EXPECT_EQ(cc.validCount(), 0u);
}

TEST(CoherenceCache, ForEachVisitsArrayAndOverflow) {
  CoherenceCache cc(16, 1);
  cc.update(blk(1), 7);
  cc.update(blk(17), 8, [](Addr) { return true; });
  int n = 0;
  cc.forEach([&](Addr, NodeId) { ++n; });
  EXPECT_EQ(n, 2);
}

TEST(CoherenceCache, SetAssociativeKeepsMultiple) {
  CoherenceCache cc(16, 4);
  cc.update(blk(1), 1);
  cc.update(blk(5), 2);   // same set (4 sets), different ways
  cc.update(blk(9), 3);
  cc.update(blk(13), 4);
  EXPECT_EQ(cc.validCount(), 4u);
  EXPECT_EQ(*cc.lookup(blk(5)), 2);
}

TEST(CoherenceCache, HeavySetAliasingOverflowSurvivesAndDrainsBack) {
  // Regression for the overflow table under heavy set aliasing: hundreds
  // of blocks mapping to the same (fully busy) set must all park in
  // overflow (well past its pre-sized capacity), stay findable, survive
  // the table's internal rehashing, and drain back out via invalidate.
  CoherenceCache cc(16, 4);  // 4 sets
  const int kAliased = 600;
  // Fill one set, then pin every entry busy so no way can be victimized.
  for (int w = 0; w < 4; ++w)
    cc.update(blk(static_cast<std::uint64_t>(w) * 4), 1);
  const auto allBusy = [](Addr) { return true; };
  for (int i = 1; i <= kAliased; ++i) {
    const auto displaced = cc.update(
        blk(static_cast<std::uint64_t>(4 + i) * 4), static_cast<NodeId>(i % 60),
        allBusy);
    EXPECT_FALSE(displaced.has_value());  // parked, nobody evicted
  }
  EXPECT_EQ(cc.overflowSize(), static_cast<std::size_t>(kAliased));
  EXPECT_EQ(cc.validCount(), 4u + kAliased);
  for (int i = 1; i <= kAliased; ++i) {
    const auto hit = cc.lookup(blk(static_cast<std::uint64_t>(4 + i) * 4));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, static_cast<NodeId>(i % 60));
  }
  // Drain: invalidations must find the parked entries, not the array.
  for (int i = 1; i <= kAliased; ++i)
    cc.invalidate(blk(static_cast<std::uint64_t>(4 + i) * 4));
  EXPECT_EQ(cc.overflowSize(), 0u);
  EXPECT_EQ(cc.validCount(), 4u);
}

}  // namespace
}  // namespace eecc
