// Unit tests for the L1C$/L2C$ pointer caches, including the busy-entry
// overflow behaviour the precise L2C$ relies on.
#include <gtest/gtest.h>

#include "cache/coherence_cache.h"

namespace eecc {
namespace {

Addr blk(std::uint64_t i) { return i * kBlockBytes; }

TEST(CoherenceCache, LookupMissThenHit) {
  CoherenceCache cc(16, 1);
  EXPECT_FALSE(cc.lookup(blk(1)).has_value());
  cc.update(blk(1), 7);
  auto hit = cc.lookup(blk(1));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 7);
}

TEST(CoherenceCache, UpdateRefreshesExisting) {
  CoherenceCache cc(16, 1);
  cc.update(blk(1), 7);
  const auto displaced = cc.update(blk(1), 9);
  EXPECT_FALSE(displaced.has_value());
  EXPECT_EQ(*cc.lookup(blk(1)), 9);
  EXPECT_EQ(cc.validCount(), 1u);
}

TEST(CoherenceCache, DirectMappedDisplacementReported) {
  CoherenceCache cc(16, 1);  // blocks 1 and 17 collide
  cc.update(blk(1), 7);
  const auto displaced = cc.update(blk(17), 8);
  ASSERT_TRUE(displaced.has_value());
  EXPECT_EQ(displaced->first, blk(1));
  EXPECT_EQ(displaced->second, 7);
  EXPECT_FALSE(cc.lookup(blk(1)).has_value());
  EXPECT_EQ(*cc.lookup(blk(17)), 8);
}

TEST(CoherenceCache, BusyEntryParksNewcomerInOverflow) {
  CoherenceCache cc(16, 1);
  cc.update(blk(1), 7);
  const auto displaced =
      cc.update(blk(17), 8, [](Addr a) { return a == blk(1); });
  EXPECT_FALSE(displaced.has_value());  // nothing displaced
  EXPECT_EQ(*cc.lookup(blk(1)), 7);     // busy entry survives
  EXPECT_EQ(*cc.lookup(blk(17)), 8);    // newcomer still findable
  EXPECT_EQ(cc.overflowSize(), 1u);
}

TEST(CoherenceCache, OverflowEntryCanBeInvalidated) {
  CoherenceCache cc(16, 1);
  cc.update(blk(1), 7);
  cc.update(blk(17), 8, [](Addr a) { return a == blk(1); });
  cc.invalidate(blk(17));
  EXPECT_FALSE(cc.lookup(blk(17)).has_value());
  EXPECT_EQ(cc.overflowSize(), 0u);
}

TEST(CoherenceCache, ReinsertionClearsOverflow) {
  CoherenceCache cc(16, 1);
  cc.update(blk(1), 7);
  cc.update(blk(17), 8, [](Addr a) { return a == blk(1); });
  cc.invalidate(blk(1));
  cc.update(blk(17), 9);  // slot now free; must not duplicate
  EXPECT_EQ(*cc.lookup(blk(17)), 9);
  EXPECT_EQ(cc.overflowSize(), 0u);
  EXPECT_EQ(cc.validCount(), 1u);
}

TEST(CoherenceCache, InvalidateMissingIsNoop) {
  CoherenceCache cc(16, 1);
  cc.invalidate(blk(3));
  EXPECT_EQ(cc.validCount(), 0u);
}

TEST(CoherenceCache, ForEachVisitsArrayAndOverflow) {
  CoherenceCache cc(16, 1);
  cc.update(blk(1), 7);
  cc.update(blk(17), 8, [](Addr) { return true; });
  int n = 0;
  cc.forEach([&](Addr, NodeId) { ++n; });
  EXPECT_EQ(n, 2);
}

TEST(CoherenceCache, SetAssociativeKeepsMultiple) {
  CoherenceCache cc(16, 4);
  cc.update(blk(1), 1);
  cc.update(blk(5), 2);   // same set (4 sets), different ways
  cc.update(blk(9), 3);
  cc.update(blk(13), 4);
  EXPECT_EQ(cc.validCount(), 4u);
  EXPECT_EQ(*cc.lookup(blk(5)), 2);
}

}  // namespace
}  // namespace eecc
