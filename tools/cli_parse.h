// Checked numeric parsing for command-line flags.
//
// Bare strtoull silently accepts "12abc", wraps out-of-range values, and
// converts negative inputs to huge unsigned ones; a typo'd flag then runs a
// multi-minute experiment with a nonsense parameter instead of failing.
// Flags fed through these helpers reject anything but a fully-consumed,
// in-range, non-negative decimal and exit with a pointed usage error.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace eecc::cli {

[[noreturn]] inline void badFlagValue(const char* flag, const char* text,
                                      const char* what) {
  std::fprintf(stderr, "%s: expected %s, got '%s'\n", flag, what,
               text == nullptr ? "" : text);
  std::exit(2);
}

inline std::uint64_t parseU64(const char* flag, const char* text) {
  if (text == nullptr || *text == '\0' || *text == '-')
    badFlagValue(flag, text, "a non-negative integer");
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0')
    badFlagValue(flag, text, "a non-negative integer");
  if (errno == ERANGE || v > std::numeric_limits<std::uint64_t>::max())
    badFlagValue(flag, text, "an integer that fits in 64 bits");
  return static_cast<std::uint64_t>(v);
}

inline std::uint32_t parseU32(const char* flag, const char* text) {
  const std::uint64_t v = parseU64(flag, text);
  if (v > std::numeric_limits<std::uint32_t>::max())
    badFlagValue(flag, text, "an integer that fits in 32 bits");
  return static_cast<std::uint32_t>(v);
}

inline double parseF64(const char* flag, const char* text) {
  if (text == nullptr || *text == '\0')
    badFlagValue(flag, text, "a number");
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0' || errno == ERANGE)
    badFlagValue(flag, text, "a number");
  return v;
}

}  // namespace eecc::cli
