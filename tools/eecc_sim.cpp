// eecc_sim — command-line driver for one-off simulations.
//
//   eecc_sim [options]
//     --workload NAME     Table IV workload (default apache4x16p)
//     --protocol P        dir | dico | providers | arin | mesi | all (default all)
//     --warmup N          warmup cycles (default 500000)
//     --cycles N          measured cycles (default 250000)
//     --areas N           static areas on the chip (default 4)
//     --alt               use the Figure-6-right misaligned VM placement
//     --contiguous        area-aligned VMs covering all tiles (ablations)
//     --no-dedup          disable hypervisor page deduplication
//     --no-prediction     disable the L1C$ supplier prediction
//     --ddr               detailed DDR memory controllers
//     --flit-level        flit-level NoC arbitration
//     --seed N            workload seed (default 1)
//     --csv               machine-readable one-line-per-protocol output
//     --dump-trace FILE   write a reference trace instead of simulating
//     --trace-ops N       operations per tile for --dump-trace (default
//                         10000)
//     --replay FILE       drive the cores from a recorded trace (streams
//                         wrap around when exhausted; with --check the
//                         trace is replayed bounded, exactly once)
//     --replay-text FILE  ingest an external text trace (`proc op addr`
//                         per line, # comments) — rebuilds a deduplicated
//                         memory image from it, prints the page accounting
//                         and replays it like --replay
//
//   Scale-out (DESIGN.md §14):
//     --chips N           simulate N chips, each a full mesh CMP, joined
//                         by an inter-chip link (default 1 = single chip)
//     --churn SPEC        VM lifecycle schedule: `;`-separated
//                         boot@T[:chip=C][:profile=NAME] | shutdown@T[:vm=V]
//                         | migrate@T[:vm=V][:to=C] | storm@T[:vm=V][:len=L]
//                         | random:events=N[:until=T] (ticks are window-
//                         relative; see DESIGN.md §14)
//     --interchip-hop N   inter-chip link latency per chip hop in cycles
//                         (default 48)
//     --interchip-flit N  inter-chip serialization cycles per flit
//                         (default 4)
//     --interchip-energy-x X  inter-chip energy per flit-hop as a multiple
//                         of an on-chip link traversal (default 8)
//     --check             attach the conformance monitors (SWMR, data
//                         value, metadata, progress); exit nonzero on any
//                         violation
//     --fuzz-chip         use eecc_check's small 4x4 fuzzing chip (needed
//                         to replay its counterexample traces faithfully)
//
//   Observability exports (DESIGN.md §10; all JSON passes json.tool):
//     --stats-json FILE   full metric-registry snapshot, every protocol
//     --stats-csv FILE    same snapshot as workload,protocol,metric,value
//     --timeline FILE     per-run metric time series (JSON); with several
//                         protocols the protocol name is inserted before
//                         the extension (timeline.json -> timeline.dir.json)
//     --timeline-every N  timeline sample period in cycles (default 10000)
//     --trace-out FILE    Chrome trace_event JSON of the measured window
//                         (chrome://tracing / Perfetto); per-protocol
//                         suffixing as for --timeline
//     --trace-capacity N  trace ring size in records (default 65536)
//     --trace-hits        include L1 hits in the trace
//     --stage-trace       attach the miss-path flight recorder: per-stage
//                         latency decomposition of every completed miss
//                         (DESIGN.md §16). Prints a per-protocol stage
//                         summary; the full per-(class x stage)
//                         accumulators and histograms land in the stats
//                         exports under "stage." and the Chrome trace
//                         gains Perfetto flow arrows linking messages to
//                         their parent transaction
//     --selfprof          install the simulator self-profiler around the
//                         measured window: wall-time attribution of the
//                         simulator's own hot components, printed per
//                         experiment and exported as a "selfprof" section
//                         of --stats-json (never mixed into metrics)
//     --selfprof-folded FILE  also write the attribution as collapsed
//                         stacks for flamegraph tooling (implies
//                         --selfprof; per-protocol suffixing as for
//                         --timeline)
//     --ledger            attach the per-VM/per-area attribution ledger;
//                         its matrices land in the stats exports under
//                         "ledger." (feed the file to eecc_report)
//     --ledger-occupancy N  occupancy sampling period in cycles
//                         (default 50000; 0 = end-of-run sample only)
//     --progress          per-experiment heartbeat on stderr (never
//                         stdout; off by default)
//
//   Fault tolerance (DESIGN.md §12):
//     --journal FILE      append every completed experiment to a crash-
//                         safe sweep journal (JSON Lines, fsync'd per
//                         record)
//     --resume            with --journal: load the journal first and skip
//                         experiments it already holds; the spliced
//                         results are bit-identical to a fresh run
//     --retries N         re-attempt a throwing experiment up to N extra
//                         times (default $EECC_RETRIES, else 0)
//     --inject-fault N    deterministically fail the N-th submitted
//                         experiment (1-based) on its first attempt —
//                         exercises containment/retry/resume
//
//   A contained experiment failure prints a per-experiment report and
//   exits nonzero; the rest of the batch still runs and exports.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "check/fuzzer.h"
#include "check/monitor.h"
#include "core/cmp_system.h"
#include "core/journal.h"
#include "core/runner.h"
#include "obs/exporters.h"
#include "cli_parse.h"
#include "workload/profile.h"
#include "workload/trace.h"

using namespace eecc;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workload NAME] [--protocol "
               "dir|dico|providers|arin|mesi|moesi|dragon|adapt|all]\n"
               "       [--warmup N] [--cycles N] [--areas N] [--alt] "
               "[--contiguous]\n"
               "       [--no-dedup] [--no-prediction] [--ddr] "
               "[--flit-level] [--seed N] [--csv]\n"
               "       [--dump-trace FILE] [--trace-ops N] "
               "[--replay FILE] [--replay-text FILE] [--check] "
               "[--fuzz-chip]\n"
               "       [--chips N] [--churn SPEC] [--interchip-hop N] "
               "[--interchip-flit N] [--interchip-energy-x X]\n"
               "       [--stats-json FILE] [--stats-csv FILE] "
               "[--timeline FILE] [--timeline-every N]\n"
               "       [--trace-out FILE] [--trace-capacity N] "
               "[--trace-hits]\n"
               "       [--stage-trace] [--selfprof] "
               "[--selfprof-folded FILE]\n"
               "       [--ledger] [--ledger-occupancy N] [--progress]\n"
               "       [--journal FILE] [--resume] [--retries N] "
               "[--inject-fault N]\n",
               argv0);
  std::exit(2);
}

std::vector<ProtocolKind> parseProtocols(const std::string& p) {
  if (p == "dir" || p == "directory") return {ProtocolKind::Directory};
  if (p == "dico") return {ProtocolKind::DiCo};
  if (p == "providers") return {ProtocolKind::DiCoProviders};
  if (p == "arin") return {ProtocolKind::DiCoArin};
  if (p == "mesi") return {ProtocolKind::Mesi};
  if (p == "moesi") return {ProtocolKind::Moesi};
  if (p == "dragon") return {ProtocolKind::Dragon};
  if (p == "adapt") return {ProtocolKind::Adapt};
  if (p == "all") {
    const auto& kinds = allProtocolKinds();
    return {kinds.begin(), kinds.end()};
  }
  std::fprintf(stderr, "unknown protocol '%s'\n", p.c_str());
  std::exit(2);
}

void printHuman(const ExperimentResult& r) {
  std::printf("%-15s perf=%7.3f ops/cyc  L1miss=%5.2f%%  L2miss=%5.2f%%  "
              "missLat=%6.1f  dyn=%7.1f mW  bcasts=%llu\n",
              protocolName(r.protocol), r.throughput,
              100.0 * r.stats.l1MissRate(), 100.0 * r.stats.l2MissRate(),
              r.stats.missLatency.mean(), r.totalDynamicMw(),
              static_cast<unsigned long long>(r.noc.broadcasts));
  if (r.chips > 1) {
    std::printf("  scale-out: chips=%u churn=%llu  interchip msgs=%llu "
                "flits=%llu remote=%llu migrations=%llu lat=%6.1f  "
                "%7.3f mW\n",
                r.chips, static_cast<unsigned long long>(r.churnApplied),
                static_cast<unsigned long long>(r.interchip.messages),
                static_cast<unsigned long long>(r.interchip.flits),
                static_cast<unsigned long long>(r.interchip.remoteFetches),
                static_cast<unsigned long long>(r.interchip.migrations),
                r.interchip.latency.mean(), r.interchipMw);
  }
}

// One line of per-stage mean latency (cycles per miss, all classes
// pooled) — the quick-look view of the flight recorder; the full
// per-(class x stage) decomposition rides the stats exports.
void printStageSummary(const ExperimentResult& r) {
  if (r.stageRec == nullptr || r.stageRec->transactions() == 0) return;
  const double n = static_cast<double>(r.stageRec->transactions());
  std::printf("  stages (cyc/miss):");
  for (std::size_t s = 0; s < kStageCount; ++s) {
    double sum = 0.0;
    for (std::size_t c = 0;
         c < static_cast<std::size_t>(MissClass::kCount); ++c)
      sum += r.stageRec
                 ->latency(static_cast<MissClass>(c), static_cast<Stage>(s))
                 .sum();
    std::printf(" %s=%.1f", stageName(static_cast<Stage>(s)), sum / n);
  }
  std::printf("  over %llu txns\n",
              static_cast<unsigned long long>(r.stageRec->transactions()));
}

// Per-experiment wall-time attribution of the simulator itself
// (--selfprof). Exclusive (self) time per instrumented call path.
void printSelfprof(const ExperimentResult& r) {
  if (r.selfprof.empty()) return;
  std::printf("  self-profile: wall %.1f ms\n",
              static_cast<double>(r.selfprofWallNs) * 1e-6);
  for (const SelfProfiler::Row& row : r.selfprof) {
    const double pct =
        r.selfprofWallNs != 0
            ? 100.0 * static_cast<double>(row.selfNs) /
                  static_cast<double>(r.selfprofWallNs)
            : 0.0;
    std::printf("    %-40s %12llu calls %10.3f ms %5.1f%%\n",
                row.path.c_str(),
                static_cast<unsigned long long>(row.calls),
                static_cast<double>(row.selfNs) * 1e-6, pct);
  }
}

void printCsvHeader() {
  std::printf(
      "workload,protocol,throughput,l1_miss_rate,l2_miss_rate,"
      "miss_latency,cache_mw,link_mw,routing_mw,broadcasts,"
      "provider_resolved,dedup_saved\n");
}

void printCsv(const ExperimentResult& r) {
  const double prov =
      r.stats.l1Misses()
          ? static_cast<double>(r.stats.providerResolvedMisses) /
                static_cast<double>(r.stats.l1Misses())
          : 0.0;
  std::printf("%s,%s,%.6f,%.6f,%.6f,%.2f,%.3f,%.3f,%.3f,%llu,%.6f,%.6f\n",
              r.workload.c_str(), protocolName(r.protocol), r.throughput,
              r.stats.l1MissRate(), r.stats.l2MissRate(),
              r.stats.missLatency.mean(), r.cacheMw, r.linkMw, r.routingMw,
              static_cast<unsigned long long>(r.noc.broadcasts), prov,
              r.dedupSavedFraction);
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentConfig cfg;
  std::string protocols = "all";
  bool csv = false;
  std::string tracePath;
  std::string replayPath;
  std::string replayTextPath;
  bool check = false;
  std::uint64_t traceOps = 10'000;
  std::string statsJsonPath;
  std::string statsCsvPath;
  std::string timelinePath;
  Tick timelineEvery = 10'000;
  std::string traceOutPath;
  std::size_t traceCapacity = 1 << 16;
  bool traceHits = false;
  std::string selfprofFoldedPath;
  bool progress = false;
  std::string journalPath;
  bool resume = false;
  unsigned retries = ExperimentRunner::defaultRetries();
  std::uint64_t injectFault = 0;
  cfg.warmupCycles = 500'000;
  cfg.windowCycles = 250'000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--workload") cfg.workloadName = next();
    else if (arg == "--protocol") protocols = next();
    else if (arg == "--warmup") cfg.warmupCycles = cli::parseU64("--warmup", next());
    else if (arg == "--cycles") cfg.windowCycles = cli::parseU64("--cycles", next());
    else if (arg == "--areas") cfg.chip.numAreas = cli::parseU32("--areas", next());
    else if (arg == "--alt") cfg.altLayout = true;
    else if (arg == "--contiguous") cfg.contiguousLayout = true;
    else if (arg == "--no-dedup") cfg.dedupEnabled = false;
    else if (arg == "--no-prediction") cfg.chip.enablePrediction = false;
    else if (arg == "--ddr") cfg.chip.memoryModel = CmpConfig::MemoryModel::Ddr;
    else if (arg == "--flit-level") cfg.chip.net.flitLevel = true;
    else if (arg == "--seed") cfg.seed = cli::parseU64("--seed", next());
    else if (arg == "--csv") csv = true;
    else if (arg == "--dump-trace") tracePath = next();
    else if (arg == "--replay") replayPath = next();
    else if (arg == "--replay-text") replayTextPath = next();
    else if (arg == "--chips") {
      cfg.scaleout.chips = cli::parseU32("--chips", next());
      if (cfg.scaleout.chips == 0) usage(argv[0]);
    }
    else if (arg == "--churn") cfg.scaleout.churn = next();
    else if (arg == "--interchip-hop") cfg.scaleout.link.hopCycles = cli::parseU64("--interchip-hop", next());
    else if (arg == "--interchip-flit") cfg.scaleout.link.cyclesPerFlit = cli::parseU64("--interchip-flit", next());
    else if (arg == "--interchip-energy-x") cfg.scaleout.link.energyPerFlitX = cli::parseF64("--interchip-energy-x", next());
    else if (arg == "--trace-ops") traceOps = cli::parseU64("--trace-ops", next());
    else if (arg == "--check") check = true;
    else if (arg == "--fuzz-chip") cfg.chip = fuzzChip();
    else if (arg == "--stats-json") statsJsonPath = next();
    else if (arg == "--stats-csv") statsCsvPath = next();
    else if (arg == "--timeline") timelinePath = next();
    else if (arg == "--timeline-every") timelineEvery = cli::parseU64("--timeline-every", next());
    else if (arg == "--trace-out") traceOutPath = next();
    else if (arg == "--trace-capacity") traceCapacity = cli::parseU64("--trace-capacity", next());
    else if (arg == "--trace-hits") traceHits = true;
    else if (arg == "--stage-trace") cfg.obs.stageTrace = true;
    else if (arg == "--selfprof") cfg.obs.selfProf = true;
    else if (arg == "--selfprof-folded") {
      selfprofFoldedPath = next();
      cfg.obs.selfProf = true;
    }
    else if (arg == "--ledger") cfg.obs.ledger = true;
    else if (arg == "--ledger-occupancy") cfg.obs.ledgerOccupancyEvery = cli::parseU64("--ledger-occupancy", next());
    else if (arg == "--progress") progress = true;
    else if (arg == "--journal") journalPath = next();
    else if (arg == "--resume") resume = true;
    else if (arg == "--retries") retries = cli::parseU32("--retries", next());
    else if (arg == "--inject-fault") injectFault = cli::parseU64("--inject-fault", next());
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
    }
  }
  cfg.chip.validate();

  if (!tracePath.empty()) {
    const auto perVm = profiles::byWorkloadName(cfg.workloadName);
    const auto numVms = static_cast<std::uint32_t>(perVm.size());
    const VmLayout layout =
        cfg.altLayout ? VmLayout::alternative(cfg.chip, numVms)
                      : VmLayout::matched(cfg.chip, numVms);
    Workload workload(cfg.chip, layout, perVm, cfg.seed, cfg.dedupEnabled);
    const std::uint64_t n =
        writeTrace(workload, cfg.chip, traceOps, tracePath);
    std::printf("wrote %llu records (%s, %llu ops/tile) to %s\n",
                static_cast<unsigned long long>(n),
                cfg.workloadName.c_str(),
                static_cast<unsigned long long>(traceOps),
                tracePath.c_str());
    return 0;
  }

  if (!replayPath.empty() || !replayTextPath.empty()) {
    Trace trace;
    if (!replayTextPath.empty()) {
      TextTraceImage image = loadTextTrace(replayTextPath);
      std::printf(
          "ingested %llu ops from %u processes (%llu shared pages)\n"
          "  image: %llu physical pages, %llu logical mappings, "
          "%llu CoW copies, dedup saved %.1f%%\n",
          static_cast<unsigned long long>(image.opLines), image.processes,
          static_cast<unsigned long long>(image.sharedPages),
          static_cast<unsigned long long>(image.pages.physicalPages()),
          static_cast<unsigned long long>(image.pages.logicalMappings()),
          static_cast<unsigned long long>(image.pages.cowEvents()),
          100.0 * image.pages.savedFraction());
      trace = std::move(image.trace);
    } else {
      trace = Trace::load(replayPath);
    }
    bool anyViolation = false;
    for (const ProtocolKind kind : parseProtocols(protocols)) {
      if (check) {
        // Counterexample replay: the exact recorded stream, once, under
        // the full monitor battery (the path eecc_check prints on failure).
        CmpSystem sys(cfg.chip, kind,
                      std::make_unique<TraceSource>(trace, /*bounded=*/true));
        MonitorSet monitors;
        sys.attachChecker(&monitors, /*sweepEvery=*/20'000);
        sys.run(Tick{1} << 40);
        std::printf("%-15s replayed %llu/%llu ops  violations=%llu\n",
                    protocolName(kind),
                    static_cast<unsigned long long>(sys.opsCompleted()),
                    static_cast<unsigned long long>(trace.records().size()),
                    static_cast<unsigned long long>(monitors.log().total()));
        for (const Violation& v : monitors.log().entries())
          std::printf("  %s\n", v.str().c_str());
        anyViolation = anyViolation || !monitors.ok();
        continue;
      }
      CmpSystem sys(cfg.chip, kind, std::make_unique<TraceSource>(trace));
      sys.warmup(cfg.warmupCycles);
      sys.run(cfg.windowCycles);
      std::printf("%-15s perf=%7.3f ops/cyc  L1miss=%5.2f%%  msgs=%llu\n",
                  protocolName(kind), sys.throughput(),
                  100.0 * sys.protocol().stats().l1MissRate(),
                  static_cast<unsigned long long>(
                      sys.network().stats().messages));
      sys.protocol().checkInvariants();
    }
    return anyViolation ? 1 : 0;
  }

  if (csv) printCsvHeader();
  // The requested protocols run concurrently on the experiment pool;
  // results print in request order, identical to a sequential loop.
  cfg.conformanceCheck = check;
  cfg.obs.snapshotMetrics = !statsJsonPath.empty() || !statsCsvPath.empty();
  if (!timelinePath.empty()) cfg.obs.timelineEvery = timelineEvery;
  if (!traceOutPath.empty()) {
    cfg.obs.traceCapacity = traceCapacity;
    cfg.obs.traceHits = traceHits;
  }
  std::vector<ExperimentConfig> cfgs;
  for (const ProtocolKind kind : parseProtocols(protocols)) {
    cfg.protocol = kind;
    cfgs.push_back(cfg);
  }
  ExperimentRunner runner;
  runner.enableProgress(progress);
  runner.setRetries(retries);
  runner.setInjectFault(injectFault);
  SweepJournal journal;
  if (resume && journalPath.empty()) {
    std::fprintf(stderr, "--resume requires --journal FILE\n");
    return 2;
  }
  if (!journalPath.empty()) {
    std::string error;
    if (!journal.open(journalPath, resume, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    runner.setJournal(&journal);
  }
  const std::vector<ExperimentResult> results = runner.runMany(cfgs);
  std::uint64_t violations = 0;
  for (const ExperimentResult& r : results) {
    if (r.failed) {
      std::printf("%-15s FAILED after %u attempt(s): %s\n",
                  protocolName(r.protocol), r.attempts, r.error.c_str());
      continue;
    }
    if (csv) printCsv(r);
    else {
      printHuman(r);
      printStageSummary(r);
      printSelfprof(r);
    }
    violations += r.checkViolations;
    if (r.checkViolations != 0) {
      std::printf("%-15s CHECK FAILED: %llu violation(s)\n",
                  protocolName(r.protocol),
                  static_cast<unsigned long long>(r.checkViolations));
      for (const std::string& msg : r.checkMessages)
        std::printf("  %s\n", msg.c_str());
    }
  }

  // Submission-order failure report on stderr; failed experiments have
  // no metric snapshot and are left out of the stats exports.
  if (anyFailed(results)) {
    std::size_t failures = 0;
    for (const ExperimentResult& r : results) failures += r.failed ? 1 : 0;
    std::fprintf(stderr, "[eecc] %zu/%zu experiments failed:\n", failures,
                 results.size());
    for (const ExperimentResult& r : results)
      if (r.failed)
        std::fprintf(stderr, "  %s %s seed=%llu attempts=%u: %s\n",
                     r.workload.c_str(), protocolName(r.protocol),
                     static_cast<unsigned long long>(r.seed), r.attempts,
                     r.error.c_str());
  }

  bool exportFailed = false;
  if (cfg.obs.snapshotMetrics) {
    std::vector<MetricsDoc> docs;
    for (const ExperimentResult& r : results)
      if (!r.failed)
        docs.push_back({r.workload, protocolName(r.protocol), r.metrics,
                        r.selfprof, r.selfprofWallNs});
    if (!statsJsonPath.empty() && !writeStatsJson(statsJsonPath, docs))
      exportFailed = true;
    if (!statsCsvPath.empty() && !writeStatsCsv(statsCsvPath, docs))
      exportFailed = true;
  }
  // Timeline and trace files are per-run; with several protocols the
  // protocol name goes before the extension (out.json -> out.dico.json).
  const auto suffixed = [&](const std::string& path,
                            const ExperimentResult& r) -> std::string {
    if (results.size() == 1) return path;
    const std::size_t dot = path.rfind('.');
    const std::string tag = std::string(".") + protocolName(r.protocol);
    if (dot == std::string::npos || path.find('/', dot) != std::string::npos)
      return path + tag;
    return path.substr(0, dot) + tag + path.substr(dot);
  };
  for (const ExperimentResult& r : results) {
    if (r.timeline != nullptr && !timelinePath.empty() &&
        !writeTimelineJson(suffixed(timelinePath, r), *r.timeline,
                           r.workload, protocolName(r.protocol)))
      exportFailed = true;
    if (r.trace != nullptr && !traceOutPath.empty() &&
        !writeChromeTrace(suffixed(traceOutPath, r), *r.trace))
      exportFailed = true;
    if (!r.selfprof.empty() && !selfprofFoldedPath.empty() &&
        !writeFoldedStacks(suffixed(selfprofFoldedPath, r), r.selfprof))
      exportFailed = true;
  }
  if (exportFailed) return 1;
  if (violations != 0) return 1;
  return anyFailed(results) ? 1 : 0;
}
