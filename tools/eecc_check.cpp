// eecc_check — differential conformance fuzzer driver.
//
// Replays randomized bounded reference streams through all eight coherence
// protocols with the invariant monitors attached and cross-checks their
// final memory images. On a violation, dumps a minimized counterexample
// trace replayable with `eecc_sim --replay FILE --protocol P --check`.
//
//   eecc_check [options]
//     --seeds N        number of randomized streams (default 10)
//     --base-seed N    first seed (default 1)
//     --ops N          operations per tile per stream (default 300)
//     --workload NAME  Table IV workload to draw streams from
//                      (default apache4x16p)
//     --protocol P     dir | dico | providers | arin | mesi | moesi |
//                      dragon | adapt | all (default all)
//     --out DIR        counterexample dump directory (default .)
//     --jobs N         fuzz-pool width (default EECC_JOBS / hw threads)
//     --sweep N        full-state sweep period in cycles (default 20000)
//     --no-minimize    dump the full failing trace without ddmin
//     --selftest       seed a known DiCo coherence bug (drops a sharer
//                      registration) and expect the monitors to catch it:
//                      exits 0 iff the bug IS caught and a counterexample
//                      is dumped
//     --table-selftest P  seed a one-row transcription typo into protocol
//                      P's transition table (write hit on Shared without
//                      invalidating the sharers) and expect the monitors
//                      to catch it — the drill that proves the fuzzer
//                      would notice a real table transcription slip
#include <cstdio>
#include <cstdlib>
#include <string>

#include "check/fuzzer.h"
#include "cli_parse.h"
#include "protocols/protocol.h"

using namespace eecc;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--base-seed N] [--ops N] "
               "[--workload NAME]\n"
               "       [--protocol dir|dico|providers|arin|mesi|moesi|"
               "dragon|adapt|all] [--out DIR] [--jobs N]\n"
               "       [--sweep N] [--no-minimize] [--selftest]\n"
               "       [--table-selftest "
               "dir|dico|providers|arin|mesi|moesi|dragon|adapt]\n",
               argv0);
  std::exit(2);
}

std::vector<ProtocolKind> parseProtocols(const std::string& p) {
  if (p == "dir" || p == "directory") return {ProtocolKind::Directory};
  if (p == "dico") return {ProtocolKind::DiCo};
  if (p == "providers") return {ProtocolKind::DiCoProviders};
  if (p == "arin") return {ProtocolKind::DiCoArin};
  if (p == "mesi") return {ProtocolKind::Mesi};
  if (p == "moesi") return {ProtocolKind::Moesi};
  if (p == "dragon") return {ProtocolKind::Dragon};
  if (p == "adapt") return {ProtocolKind::Adapt};
  if (p == "all") {
    const auto& kinds = allProtocolKinds();
    return {kinds.begin(), kinds.end()};
  }
  std::fprintf(stderr, "unknown protocol '%s'\n", p.c_str());
  std::exit(2);
}

void printSeed(const SeedReport& s) {
  std::printf("seed %llu: %llu records, %s\n",
              static_cast<unsigned long long>(s.seed),
              static_cast<unsigned long long>(s.records),
              s.ok() ? "ok" : "FAILED");
  for (const ProtocolRunReport& run : s.runs) {
    if (run.violationCount == 0) continue;
    std::printf("  %s: %llu violation(s)\n", protocolName(run.kind),
                static_cast<unsigned long long>(run.violationCount));
    for (const Violation& v : run.violations)
      std::printf("    %s\n", v.str().c_str());
  }
  for (const std::string& m : s.mismatches)
    std::printf("  image mismatch: %s\n", m.c_str());
  if (!s.counterexample.empty())
    std::printf("  counterexample: %s\n  replay: eecc_sim --fuzz-chip "
                "--replay %s --protocol all --check\n",
                s.counterexample.c_str(), s.counterexample.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FuzzOptions opt;
  opt.seeds = 10;
  opt.sweepEvery = 20'000;
  bool selftest = false;
  std::string tableSelftest;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--seeds") opt.seeds = cli::parseU64("--seeds", next());
    else if (arg == "--base-seed") opt.baseSeed = cli::parseU64("--base-seed", next());
    else if (arg == "--ops") opt.opsPerTile = cli::parseU64("--ops", next());
    else if (arg == "--workload") opt.workloadName = next();
    else if (arg == "--protocol") opt.protocols = parseProtocols(next());
    else if (arg == "--out") opt.outDir = next();
    else if (arg == "--jobs") opt.jobs = cli::parseU32("--jobs", next());
    else if (arg == "--sweep") opt.sweepEvery = cli::parseU64("--sweep", next());
    else if (arg == "--no-minimize") opt.minimize = false;
    else if (arg == "--selftest") selftest = true;
    else if (arg == "--table-selftest") tableSelftest = next();
    else if (arg == "--help" || arg == "-h") usage(argv[0]);
    else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
    }
  }

  if (selftest) {
    // The DiCo protocols read this at construction: the owner "forgets"
    // to register a reader, leaving an untracked stale copy.
    setenv("EECC_CHECK_SELFTEST", "1", /*overwrite=*/1);
    opt.protocols = {ProtocolKind::DiCo};
  }
  if (!tableSelftest.empty()) {
    // The table engine corrupts one transition of the named protocol's
    // stable-state table at construction (write hit on Shared without
    // invalidating the sharers): the monitors must catch the resulting
    // stale copies within the seed budget, under the same inverted
    // verdict as --selftest.
    opt.protocols = parseProtocols(tableSelftest);
    if (opt.protocols.size() != 1) {
      std::fprintf(stderr, "--table-selftest needs one protocol\n");
      usage(argv[0]);
    }
    setenv("EECC_TABLE_SELFTEST", tableSelftest.c_str(), /*overwrite=*/1);
    selftest = true;
  }

  const FuzzReport report = fuzz(opt);
  std::uint64_t failedSeeds = 0;
  bool haveCounterexample = false;
  for (const SeedReport& s : report.seeds) {
    printSeed(s);
    if (!s.ok()) ++failedSeeds;
    haveCounterexample = haveCounterexample || !s.counterexample.empty();
  }
  std::printf("%llu/%llu seeds ok, %llu total violation(s)\n",
              static_cast<unsigned long long>(report.seeds.size() -
                                              failedSeeds),
              static_cast<unsigned long long>(report.seeds.size()),
              static_cast<unsigned long long>(report.totalViolations()));

  if (selftest) {
    // Inverted verdict: the seeded bug must be detected and reproducible.
    if (failedSeeds == 0 || !haveCounterexample) {
      std::fprintf(stderr,
                   "selftest FAILED: seeded bug was not caught "
                   "(%llu failed seeds, counterexample=%d)\n",
                   static_cast<unsigned long long>(failedSeeds),
                   haveCounterexample ? 1 : 0);
      return 1;
    }
    std::printf("selftest ok: seeded bug caught and dumped\n");
    return 0;
  }
  return report.ok() ? 0 : 1;
}
