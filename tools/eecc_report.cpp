// eecc_report — paper-figure report generator (DESIGN.md §11).
//
//   eecc_report STATS.json [STATS2.json ...] [--out-dir DIR]
//
// Reads one or more --stats-json files written by eecc_sim (runs from
// several files are concatenated in argument order) and writes into
// --out-dir (default "."):
//
//   report.json            every table, machine-readable
//   energy_breakdown.csv   Figure 8 normalized energy breakdown
//   per_vm.csv             per-VM misses/latency/energy/leakage shares
//   interference.csv       inter-VM interference (flit shares by area)
//   stage_latency.csv      miss-latency stage decomposition (runs
//                          recorded with --stage-trace): mean/p50/p99
//                          cycles per stage, plus the dominant-stage
//                          verdict vs Directory in report.{json,md}
//   scaleout.csv           multi-chip runs: churn tallies, inter-chip
//                          link traffic/energy, per-chip rollups
//   report.md              all tables as markdown
//
// The per-VM and interference tables need runs recorded with
// `eecc_sim --ledger`; runs without ledger metrics still contribute to
// the energy breakdown. Output is deterministic: byte-identical files
// for bit-identical simulations.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/report.h"

using namespace eecc;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s STATS.json [STATS2.json ...] [--out-dir DIR]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  std::string outDir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out-dir") {
      if (i + 1 >= argc) usage(argv[0]);
      outDir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage(argv[0]);
    } else {
      inputs.push_back(arg);
    }
  }
  if (inputs.empty()) usage(argv[0]);

  std::vector<StatsRun> runs;
  for (const std::string& path : inputs) {
    std::vector<StatsRun> fileRuns;
    std::string error;
    if (!loadStatsRuns(path, fileRuns, error)) {
      std::fprintf(stderr, "eecc_report: %s\n", error.c_str());
      return 1;
    }
    for (StatsRun& r : fileRuns) runs.push_back(std::move(r));
  }

  const Report report = buildReport(runs);
  const std::string base = outDir + "/";
  bool ok = true;
  ok = writeReportJson(base + "report.json", report) && ok;
  ok = writeEnergyBreakdownCsv(base + "energy_breakdown.csv", report) && ok;
  ok = writePerVmCsv(base + "per_vm.csv", report) && ok;
  ok = writeInterferenceCsv(base + "interference.csv", report) && ok;
  ok = writeStageLatencyCsv(base + "stage_latency.csv", report) && ok;
  ok = writeScaleoutCsv(base + "scaleout.csv", report) && ok;
  ok = writeReportMarkdown(base + "report.md", report) && ok;
  if (!ok) return 1;

  std::size_t ledgerRuns = 0;
  std::size_t stageRuns = 0;
  for (const StatsRun& r : runs) {
    if (r.has("ledger.rows")) ++ledgerRuns;
    if (r.has("stage.transactions")) ++stageRuns;
  }
  std::fprintf(stderr,
               "eecc_report: %zu run(s) (%zu with ledger, %zu with stages, "
               "%zu scale-out) -> %sreport.{json,md} + 5 csv\n",
               runs.size(), ledgerRuns, stageRuns, report.scaleout.size(),
               base.c_str());
  return 0;
}
