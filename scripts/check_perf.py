#!/usr/bin/env python3
"""Perf-smoke regression gate: compare bench JSON records against
bench/perf_baselines.json.

Every numeric key in the baselines file that also appears in one of the
result files is checked; all gated metrics are higher-is-better
(events/sec or speedup ratios), and a current value below
baseline / tolerance fails the gate. Keys present in the results but not
in the baselines are informational only, so adding a new bench field
never breaks CI until a baseline is recorded for it.

Usage:
    scripts/check_perf.py [--baselines bench/perf_baselines.json]
                          [--tolerance 1.15] result.json [result2.json ...]

Exit status: 0 when every gated metric is within tolerance, 1 on any
regression (or on a baseline key missing from every result file, which
usually means a bench was skipped).
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("results", nargs="+", help="bench JSON output files")
    parser.add_argument("--baselines", default="bench/perf_baselines.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=1.15,
        help="allowed slowdown factor before the gate fails (default 1.15)",
    )
    parser.add_argument(
        "--ratio-tolerance",
        type=float,
        default=1.15,
        help="tolerance for *_speedup keys; these are machine-independent "
        "ratios, so they keep a tight gate even when --tolerance is "
        "widened for noisy shared runners (default 1.15)",
    )
    args = parser.parse_args()

    baselines = load(args.baselines)
    merged = {}
    for path in args.results:
        merged.update(load(path))

    failures = []
    missing = []
    print(f"{'metric':48s} {'baseline':>14s} {'current':>14s} {'ratio':>7s}")
    for key, base in sorted(baselines.items()):
        if not isinstance(base, (int, float)) or isinstance(base, bool):
            continue  # comments / metadata entries
        if key not in merged:
            missing.append(key)
            continue
        cur = merged[key]
        tol = args.ratio_tolerance if key.endswith("_speedup") else args.tolerance
        ratio = cur / base if base else float("inf")
        ok = cur >= base / tol
        print(f"{key:48s} {base:14.2f} {cur:14.2f} {ratio:6.2f}x"
              f"{'' if ok else '  << REGRESSION'}")
        if not ok:
            failures.append((key, base, cur))

    if missing:
        print(f"\nbaseline keys absent from results: {', '.join(missing)}")
    if failures:
        print(f"\n{len(failures)} metric(s) regressed beyond "
              f"{args.tolerance:.2f}x tolerance")
    return 1 if failures or missing else 0


if __name__ == "__main__":
    sys.exit(main())
