// Discrete-event simulation kernel.
//
// All timed behaviour in the simulator — message delivery, cache access
// latencies, memory-controller responses, core wakeups — is expressed as
// events scheduled on a single global queue. Events at the same tick are
// executed in FIFO order of scheduling, which keeps runs deterministic.
//
// Hot-path design (see DESIGN.md §8): events live in 128-byte slab-allocated
// nodes whose callable is constructed directly into kInlineActionBytes
// (= 88) bytes of inline storage. A callable larger than that does not
// abort and is not rejected: emplaceAction() falls back to a single heap
// allocation with the pointer stored inline — every lambda the simulator
// currently schedules fits, so the fallback is cold by construction.
// Nodes are organized as a two-level structure: a near-future timing wheel
// of kWheelSize one-tick FIFO buckets for the dense short-latency traffic,
// and an overflow min-heap (`far_`) for events scheduled kWheelSize or
// more ticks out (multi-million-cycle warmup horizons, idle-core wakeups).
// Overflow events keep their (when, seq) order in the heap and migrate
// into the wheel as the clock approaches — strictly before any near-window
// insert can target their tick, so same-tick FIFO order is preserved
// across the two structures. The wheel turns scheduling and dispatch into
// O(1) pointer pushes/pops in the common case (~2x events/sec over the
// previous std::priority_queue kernel, see bench/micro_event_queue).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <queue>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/types.h"
#include "obs/selfprof.h"

namespace eecc {

class EventQueue {
 public:
  /// Type-erased action (kept only for signatures that store callbacks,
  /// e.g. Protocol::DoneFn). Scheduling does NOT go through this type:
  /// scheduleAt/scheduleAfter are templated and construct the caller's
  /// callable directly into the event node's inline storage.
  using Action = std::function<void()>;

  /// Inline callable storage per event node: 88 bytes, which pads Node to
  /// two cache lines (128 B) and covers every lambda the simulator
  /// schedules (worst case: `this` plus a ~56-byte Message plus a couple
  /// of words). Larger callables are not an error — emplaceAction() falls
  /// back to one heap allocation with the pointer stored inline.
  static constexpr std::size_t kInlineActionBytes = 88;

  /// Near-future window of the timing wheel, in ticks. Events scheduled
  /// further out than this go to the overflow heap and migrate into the
  /// wheel as the clock approaches them. Must be a power of two.
  static constexpr Tick kWheelSize = 4096;

  EventQueue() : ring_(static_cast<std::size_t>(kWheelSize)) {}

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  ~EventQueue() {
    // Destroy callables of never-executed events; slab storage frees itself.
    for (Slot& s : ring_)
      for (Node* n = s.head; n != nullptr; n = n->next) n->destroy(n);
    while (!far_.empty()) {
      far_.top().node->destroy(far_.top().node);
      far_.pop();
    }
  }

  /// Current simulated time.
  Tick now() const { return now_; }

  /// Schedules `fn` to run at absolute time `when` (>= now()). Returns the
  /// event's sequence number — the global FIFO ordering ticket that
  /// tailIs() checks against (used by the NoC delivery batcher).
  template <class F>
  std::uint64_t scheduleAt(Tick when, F&& fn) {
    EECC_CHECK_MSG(when >= now_, "event scheduled in the past");
    Node* n = acquireNode();
    n->when = when;
    n->seq = nextSeq_++;
    n->next = nullptr;
    emplaceAction(n, std::forward<F>(fn));
    if (when - now_ < kWheelSize) {
      appendToSlot(n);
    } else {
      far_.push(FarRef{when, n->seq, n});
    }
    ++pending_;
    return n->seq;
  }

  /// Schedules `fn` to run `delay` ticks from now. Returns the sequence
  /// number (see scheduleAt).
  template <class F>
  std::uint64_t scheduleAfter(Tick delay, F&& fn) {
    return scheduleAt(now_ + delay, std::forward<F>(fn));
  }

  /// True while the event scheduled with sequence number `seq` for tick
  /// `when` is still the LAST event pending at `when`: nothing has been
  /// scheduled into that tick after it (near-window ticks only). The NoC
  /// delivery batcher appends a message to an open batch exactly while its
  /// drain event satisfies this — the moment any other event lands on the
  /// tick the batch closes, preserving global same-tick FIFO order. The
  /// tail's `when` is compared too: wheel slots alias every kWheelSize
  /// ticks, so a matching slot tail may belong to tick `when` + kWheelSize.
  bool tailIs(Tick when, std::uint64_t seq) const {
    const Slot& s = ring_[static_cast<std::size_t>(when & (kWheelSize - 1))];
    return s.tail != nullptr && s.tail->when == when && s.tail->seq == seq;
  }

  /// Credits `n` logically executed events that were coalesced into one
  /// physical event (the NoC delivery batcher delivers k messages from a
  /// single drain event and credits k-1), keeping executedEvents() — an
  /// externally compared result field — identical to the unbatched run.
  void creditExecuted(std::uint64_t n) { executed_ += n; }

  bool empty() const { return pending_ == 0; }
  std::size_t pending() const { return pending_; }

  /// Executes the next event. Returns false if the queue is empty.
  bool step() { return runOne(kTickMax); }

  /// Runs until the queue drains or simulated time reaches `limit`.
  /// Events scheduled exactly at `limit` do run.
  void runUntil(Tick limit) {
    while (runOne(limit)) {
    }
    if (now_ < limit) now_ = limit;
  }

  /// Runs until the queue is empty.
  void runToCompletion() {
    while (runOne(kTickMax)) {
    }
  }

  std::uint64_t executedEvents() const { return executed_; }

 private:
  struct Node {
    Tick when;
    std::uint64_t seq;  // FIFO tie-break (used by the overflow heap)
    Node* next;         // intrusive bucket / free-list chain
    void (*invoke)(Node*);
    void (*destroy)(Node*);
    alignas(std::max_align_t) std::byte storage[kInlineActionBytes];
  };

  struct Slot {
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  struct FarRef {
    Tick when;
    std::uint64_t seq;
    Node* node;
    bool operator>(const FarRef& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  static constexpr std::size_t kSlabNodes = 512;

  // --- Slab pool -----------------------------------------------------------
  Node* acquireNode() {
    if (freeList_ == nullptr) growSlab();
    Node* n = freeList_;
    freeList_ = n->next;
    return n;
  }

  void releaseNode(Node* n) {
    n->next = freeList_;
    freeList_ = n;
  }

  void growSlab() {
    slabs_.push_back(std::make_unique<Node[]>(kSlabNodes));
    Node* slab = slabs_.back().get();
    for (std::size_t i = 0; i < kSlabNodes; ++i) {
      slab[i].next = freeList_;
      freeList_ = &slab[i];
    }
  }

  // --- Callable storage ----------------------------------------------------
  template <class F>
  void emplaceAction(Node* n, F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_v<Fn&>, "event action must be callable");
    if constexpr (sizeof(Fn) <= kInlineActionBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(n->storage)) Fn(std::forward<F>(fn));
      n->invoke = [](Node* node) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(node->storage));
        (*f)();
        f->~Fn();
      };
      n->destroy = [](Node* node) {
        std::launder(reinterpret_cast<Fn*>(node->storage))->~Fn();
      };
    } else {
      // Oversized callable: one heap allocation, pointer stored inline.
      ::new (static_cast<void*>(n->storage))
          Fn*(new Fn(std::forward<F>(fn)));
      n->invoke = [](Node* node) {
        Fn* f = *std::launder(reinterpret_cast<Fn**>(node->storage));
        (*f)();
        delete f;
      };
      n->destroy = [](Node* node) {
        delete *std::launder(reinterpret_cast<Fn**>(node->storage));
      };
    }
  }

  // --- Timing wheel --------------------------------------------------------
  void appendToSlot(Node* n) {
    Slot& s = ring_[static_cast<std::size_t>(n->when & (kWheelSize - 1))];
    if (s.tail == nullptr) {
      s.head = s.tail = n;
    } else {
      s.tail->next = n;
      s.tail = n;
    }
  }

  /// Moves overflow events whose time entered the near window into the
  /// wheel. Heap order (when, seq) preserves same-tick FIFO: a near insert
  /// for tick T is only possible once now_ > T - kWheelSize, by which point
  /// every far event for T has already migrated.
  void migrateFar() {
    while (!far_.empty() && far_.top().when - now_ < kWheelSize) {
      Node* n = far_.top().node;
      far_.pop();
      n->next = nullptr;
      appendToSlot(n);
    }
  }

  /// Executes the earliest pending event if its time is <= limit.
  bool runOne(Tick limit) {
    Node* n;
    {
      ProfScope prof(ProfSection::KernelPop);
      n = popEarliest(limit);
    }
    if (n == nullptr) return false;
    now_ = n->when;
    {
      ProfScope prof(ProfSection::KernelDispatch);
      n->invoke(n);  // may schedule further events; the node stays off-list
    }
    releaseNode(n);
    ++executed_;
    return true;
  }

  Node* popEarliest(Tick limit) {
    if (pending_ == 0) return nullptr;
    for (;;) {
      if (farOnly()) {
        const Tick t = far_.top().when;
        if (t > limit) return nullptr;
        now_ = t;
        migrateFar();
      }
      Slot& s = ring_[static_cast<std::size_t>(now_ & (kWheelSize - 1))];
      if (s.head != nullptr && s.head->when == now_) {
        Node* n = s.head;
        s.head = n->next;
        if (s.head == nullptr) s.tail = nullptr;
        --pending_;
        return n;
      }
      if (now_ >= limit) return nullptr;  // nothing left at or before limit
      ++now_;  // empty tick: turn the wheel
      migrateFar();
    }
  }

  /// True when every pending event sits in the overflow heap (the wheel is
  /// empty), so the clock may jump straight to the heap minimum.
  bool farOnly() const { return far_.size() == pending_; }

  std::vector<Slot> ring_;
  std::priority_queue<FarRef, std::vector<FarRef>, std::greater<>> far_;
  std::vector<std::unique_ptr<Node[]>> slabs_;
  Node* freeList_ = nullptr;
  std::size_t pending_ = 0;
  Tick now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace eecc
