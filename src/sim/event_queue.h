// Discrete-event simulation kernel.
//
// All timed behaviour in the simulator — message delivery, cache access
// latencies, memory-controller responses, core wakeups — is expressed as
// events scheduled on a single global queue. Events at the same tick are
// executed in FIFO order of scheduling, which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace eecc {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulated time.
  Tick now() const { return now_; }

  /// Schedules `action` to run at absolute time `when` (>= now()).
  void scheduleAt(Tick when, Action action) {
    EECC_CHECK_MSG(when >= now_, "event scheduled in the past");
    heap_.push(Event{when, next_seq_++, std::move(action)});
  }

  /// Schedules `action` to run `delay` ticks from now.
  void scheduleAfter(Tick delay, Action action) {
    scheduleAt(now_ + delay, std::move(action));
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Executes the next event. Returns false if the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    // Move the event out before popping so the action may schedule others.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ev.action();
    ++executed_;
    return true;
  }

  /// Runs until the queue drains or simulated time reaches `limit`.
  /// Events scheduled exactly at `limit` do run.
  void runUntil(Tick limit) {
    while (!heap_.empty() && heap_.top().when <= limit) step();
    if (now_ < limit) now_ = limit;
  }

  /// Runs until the queue is empty.
  void runToCompletion() {
    while (step()) {
    }
  }

  std::uint64_t executedEvents() const { return executed_; }

 private:
  struct Event {
    Tick when;
    std::uint64_t seq;  // FIFO tie-break for same-tick events
    Action action;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace eecc
