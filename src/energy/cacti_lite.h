// CactiLite — a small analytic stand-in for CACTI 6.5 at 32 nm.
//
// The paper uses CACTI to turn structure geometries into leakage power and
// per-access energy (Section V-A). Every *cross-protocol* difference in its
// Tables VI and Figures 7-8 comes from bit counts and event counts, which
// this reproduction computes exactly; CactiLite only supplies the per-bit
// constants:
//
//  * Leakage is proportional to stored bits, with separate constants for
//    tag-class arrays (tags + coherence info; small, highly-ported,
//    leakier per bit) and data-class arrays. Both constants are calibrated
//    once against the paper's Directory row of Table VI — 239 mW total and
//    37 mW of tags per tile — and then applied unchanged to all four
//    protocols, so the reductions reported for DiCo-Providers/Arin are
//    genuine predictions of the model, not fits.
//
//  * A read or write of B bits from an array of N total bits costs
//        E = e0 + eBit * B + eWire * sqrt(N)   [pJ]
//    the sqrt(N) term standing for word/bit-line and H-tree wire length,
//    which is what makes an L2 block read more expensive than an L1 block
//    read (a relation the paper relies on in Section V-C).
#pragma once

#include <cmath>
#include <cstdint>

namespace eecc {

class CactiLite {
 public:
  // --- Leakage calibration (Table VI, Directory row) -------------------
  // Directory tag-class bits per tile: L1 tags (2048 x 25) + L2 tags
  // (16384 x 17) + L2 dir info (16384 x 64) + dir cache (2048 x 87)
  //   = 1,556,480 bits  ->  37 mW.
  // Data-class bits per tile: (2048 + 16384) x 512 = 9,437,184 bits
  //   -> 239 - 37 = 202 mW.
  static constexpr double kTagLeakMwPerBit = 37.0 / 1556480.0;
  static constexpr double kDataLeakMwPerBit = 202.0 / 9437184.0;

  // --- Dynamic access energy constants (32 nm, pJ) ---------------------
  static constexpr double kAccessBasePj = 1.0;
  static constexpr double kAccessPerBitPj = 0.025;
  static constexpr double kAccessWirePj = 0.006;  // * sqrt(total bits)

  /// Leakage of a tag-class array (tags, directory info, pointer caches).
  static double tagLeakageMw(std::uint64_t bits) {
    return kTagLeakMwPerBit * static_cast<double>(bits);
  }
  /// Leakage of a data array.
  static double dataLeakageMw(std::uint64_t bits) {
    return kDataLeakMwPerBit * static_cast<double>(bits);
  }

  /// Energy (pJ) of touching `bitsTouched` bits in an array holding
  /// `totalBits`.
  static double accessPj(std::uint64_t totalBits, std::uint64_t bitsTouched) {
    return kAccessBasePj +
           kAccessPerBitPj * static_cast<double>(bitsTouched) +
           kAccessWirePj * std::sqrt(static_cast<double>(totalBits));
  }
};

}  // namespace eecc
