// Binds a protocol's storage layout (storage_model) to CactiLite constants
// and turns simulation event counts into the power numbers of the paper:
// Table VI (leakage), Figure 7 (total dynamic power: caches + network
// links + routing) and Figure 8 (per-event-class breakdowns).
//
// Network energy follows Barrow-Williams et al. [22], as in the paper:
// routing a message through one router costs as much as reading an L1
// block, and transmitting one flit across one link costs a quarter of that.
#pragma once

#include "energy/cacti_lite.h"
#include "energy/storage_model.h"
#include "noc/network.h"
#include "protocols/protocol_stats.h"

namespace eecc {

/// Figure 8a's cache-energy breakdown, in picojoules.
struct CacheEnergyBreakdown {
  double l1Pj = 0;        ///< L1 tag probes + block reads/writes.
  double l1DirPj = 0;     ///< Sharing-code reads/updates in L1.
  double l2Pj = 0;        ///< L2 tag probes + block reads/writes.
  double l2DirPj = 0;     ///< L2 dir info + (flat) directory cache.
  double pointerPj = 0;   ///< L1C$ + L2C$ probes/updates.
  double total() const {
    return l1Pj + l1DirPj + l2Pj + l2DirPj + pointerPj;
  }
};

/// Figure 8b's network-energy breakdown, in picojoules.
struct NocEnergyBreakdown {
  double routingPj = 0;
  double linkPj = 0;
  double total() const { return routingPj + linkPj; }
};

class EnergyModel {
 public:
  EnergyModel(ProtocolKind kind, const ChipParams& chip,
              SharingCode code = SharingCode::FullMap)
      : chip_(chip), storage_(storageFor(kind, chip, code)) {}

  const StorageBreakdown& storage() const { return storage_; }

  // ---- Table VI ----
  /// Leakage of all tag-class structures of one tile (tags + coherence).
  double tagLeakagePerTileMw() const {
    return CactiLite::tagLeakageMw(storage_.tagClassBits(chip_));
  }
  /// Total cache leakage of one tile (tag-class + data arrays).
  double totalLeakagePerTileMw() const {
    const std::uint64_t dataBits =
        static_cast<std::uint64_t>(chip_.l1Entries + chip_.l2Entries) *
        kBlockBytes * 8;
    return tagLeakagePerTileMw() + CactiLite::dataLeakageMw(dataBits);
  }

  // ---- Per-access energies (pJ) ----
  // The coherence information lives inside the tag arrays (Section V-B:
  // "the directory information ... is included in the tag structures of
  // the tile"): a probe reads tag + state of every way plus the sharing
  // code of the hit way — this is what makes DiCo-family L1 probes dearer
  // than the flat directory's and Providers/Arin L2 probes cheaper
  // (Fig. 8a).
  double l1TagProbePj() const {
    return CactiLite::accessPj(
        l1TagArrayBits(),
        chip_.l1Assoc * (chip_.l1TagBits() + 2) + storage_.l1DirEntryBits);
  }
  double l1DataPj() const {
    return CactiLite::accessPj(l1DataArrayBits(), kBlockBytes * 8);
  }
  /// Sharing-code *update* (writes entry bits back); reads are already
  /// part of the tag probe.
  double l1DirPj() const {
    return CactiLite::accessPj(l1TagArrayBits(), storage_.l1DirEntryBits);
  }
  double l2TagProbePj() const {
    return CactiLite::accessPj(
        l2TagArrayBits(),
        chip_.l2Assoc * (chip_.l2TagBits() + 2) + storage_.l2DirEntryBits);
  }
  double l2DataPj() const {
    return CactiLite::accessPj(l2DataArrayBits(), kBlockBytes * 8);
  }
  double l2DirPj() const {
    return CactiLite::accessPj(l2TagArrayBits(), storage_.l2DirEntryBits);
  }
  double dirCachePj() const {
    return CactiLite::accessPj(
        storage_.dirCacheBits,
        chip_.dirCacheAssocForEnergy * storage_.dirCacheEntryBits);
  }
  double l1cPj() const {
    return CactiLite::accessPj(storage_.l1cBits, storage_.l1cEntryBits);
  }
  double l2cPj() const {
    return CactiLite::accessPj(storage_.l2cBits, storage_.l2cEntryBits);
  }
  /// [22]: routing one message through one router == one L1 block read.
  double routingPj() const { return l1DataPj(); }
  /// [22]: one flit across one link == a quarter of a routing.
  double flitLinkPj() const { return routingPj() / 4.0; }

  // ---- Event aggregation ----
  CacheEnergyBreakdown cacheEnergy(const CacheEnergyEvents& ev) const {
    CacheEnergyBreakdown b;
    b.l1Pj = static_cast<double>(ev.l1TagProbe) * l1TagProbePj() +
             static_cast<double>(ev.l1DataRead + ev.l1DataWrite) * l1DataPj();
    // Dir reads ride along with the tag probe; only updates pay extra.
    b.l1DirPj = static_cast<double>(ev.l1DirUpdate) * l1DirPj();
    b.l2Pj = static_cast<double>(ev.l2TagProbe) * l2TagProbePj() +
             static_cast<double>(ev.l2DataRead + ev.l2DataWrite) * l2DataPj();
    b.l2DirPj =
        static_cast<double>(ev.l2DirUpdate) * l2DirPj() +
        static_cast<double>(ev.dirCacheProbe + ev.dirCacheUpdate) *
            dirCachePj();
    b.pointerPj =
        static_cast<double>(ev.l1cProbe + ev.l1cUpdate) * l1cPj() +
        static_cast<double>(ev.l2cProbe + ev.l2cUpdate) * l2cPj();
    return b;
  }

  NocEnergyBreakdown nocEnergy(const NocStats& stats) const {
    NocEnergyBreakdown b;
    b.routingPj = static_cast<double>(stats.routings) * routingPj();
    b.linkPj = static_cast<double>(stats.linkFlits) * flitLinkPj();
    return b;
  }

  /// Average power in mW of `pj` picojoules spent over `cycles` cycles at
  /// `ghz` gigahertz.
  static double pjToMw(double pj, Tick cycles, double ghz = 3.0) {
    if (cycles == 0) return 0.0;
    const double seconds = static_cast<double>(cycles) / (ghz * 1e9);
    return pj * 1e-12 / seconds * 1e3;
  }

 private:
  std::uint64_t l1TagArrayBits() const {
    return static_cast<std::uint64_t>(chip_.l1Entries) *
           (chip_.l1TagBits() + 2 + storage_.l1DirEntryBits);
  }
  std::uint64_t l2TagArrayBits() const {
    return static_cast<std::uint64_t>(chip_.l2Entries) *
           (chip_.l2TagBits() + 2 + storage_.l2DirEntryBits);
  }
  std::uint64_t l1DataArrayBits() const {
    return static_cast<std::uint64_t>(chip_.l1Entries) * kBlockBytes * 8;
  }
  std::uint64_t l2DataArrayBits() const {
    return static_cast<std::uint64_t>(chip_.l2Entries) * kBlockBytes * 8;
  }

  ChipParams chip_;
  StorageBreakdown storage_;
};

}  // namespace eecc
