#include "energy/storage_model.h"

#include <algorithm>

#include "common/bits.h"
#include "common/check.h"

namespace eecc {

std::uint32_t ChipParams::genPoBits() const { return log2ceil(tiles); }
std::uint32_t ChipParams::proPoBits() const { return log2ceil(tilesPerArea()); }

std::uint32_t ChipParams::l1TagBits() const {
  // Private cache: tag = addr - block offset - set index.
  return physAddrBits - kBlockOffsetBits - log2ceil(l1Entries / l1Assoc);
}
std::uint32_t ChipParams::l2TagBits() const {
  // Bank-interleaved shared cache: the home-bank bits drop out of the tag.
  return physAddrBits - kBlockOffsetBits - log2ceil(tiles) -
         log2ceil(l2Entries / l2Assoc);
}
std::uint32_t ChipParams::dirTagBits() const {
  return physAddrBits - kBlockOffsetBits - log2ceil(tiles) -
         log2ceil(dirCacheEntries);
}
std::uint32_t ChipParams::l1cTagBits() const {
  // Tile-local structure (no bank interleaving), direct-mapped.
  return physAddrBits - kBlockOffsetBits - log2ceil(l1cEntries);
}
std::uint32_t ChipParams::l2cTagBits() const {
  return physAddrBits - kBlockOffsetBits - log2ceil(tiles) -
         log2ceil(l2cEntries);
}

std::uint64_t StorageBreakdown::tagClassBits(const ChipParams& p) const {
  const std::uint64_t l1Tags =
      static_cast<std::uint64_t>(p.l1Entries) * p.l1TagBits();
  const std::uint64_t l2Tags =
      static_cast<std::uint64_t>(p.l2Entries) * p.l2TagBits();
  return l1Tags + l2Tags + coherenceBits();
}

namespace {

StorageBreakdown dataArrays(const ChipParams& p) {
  StorageBreakdown s;
  s.l1DataBits = static_cast<std::uint64_t>(p.l1Entries) *
                 (p.l1TagBits() + kBlockBytes * 8);
  s.l2DataBits = static_cast<std::uint64_t>(p.l2Entries) *
                 (p.l2TagBits() + kBlockBytes * 8);
  return s;
}

std::uint32_t l1cEntryBits(const ChipParams& p) {
  return p.l1cTagBits() + p.genPoBits() + 1;  // tag + GenPo + valid
}
std::uint32_t l2cEntryBits(const ChipParams& p) {
  return p.l2cTagBits() + p.genPoBits() + 1;
}

void addPointerCaches(StorageBreakdown& s, const ChipParams& p) {
  s.l1cEntryBits = l1cEntryBits(p);
  s.l2cEntryBits = l2cEntryBits(p);
  s.l1cBits = static_cast<std::uint64_t>(p.l1cEntries) * s.l1cEntryBits;
  s.l2cBits = static_cast<std::uint64_t>(p.l2cEntries) * s.l2cEntryBits;
}

}  // namespace

std::uint32_t sharingCodeBits(SharingCode code, std::uint32_t nodes) {
  switch (code) {
    case SharingCode::FullMap:
      return nodes;
    case SharingCode::CoarseVector2:
      return (nodes + 1) / 2;
    case SharingCode::CoarseVector4:
      return (nodes + 3) / 4;
    case SharingCode::LimitedPtr2:
      return 2 * log2ceil(nodes) + 1;
    case SharingCode::LimitedPtr4:
      return 4 * log2ceil(nodes) + 1;
  }
  return nodes;
}

StorageBreakdown storageFor(ProtocolKind kind, const ChipParams& p,
                            SharingCode code) {
  EECC_CHECK(p.tiles % p.areas == 0);
  StorageBreakdown s = dataArrays(p);
  const std::uint32_t ntc = p.tiles;
  const std::uint32_t na = p.areas;
  const std::uint32_t nta = p.tilesPerArea();
  const std::uint32_t propo = p.proPoBits();

  switch (kind) {
    case ProtocolKind::Directory:
      // Sharing code per L2 entry; a directory cache (NCID-style extra
      // tags) tracks blocks held exclusively in L1s: tag + sharing code
      // + GenPo for the owner.
      s.l2DirEntryBits = sharingCodeBits(code, ntc);
      s.dirCacheEntryBits =
          p.dirTagBits() + sharingCodeBits(code, ntc) + p.genPoBits();
      s.l2DirBits = static_cast<std::uint64_t>(p.l2Entries) * s.l2DirEntryBits;
      s.dirCacheBits = static_cast<std::uint64_t>(p.dirCacheEntries) *
                       s.dirCacheEntryBits;
      break;

    case ProtocolKind::DiCo:
      // Sharing code with the data, in both L1 (the owner tracks sharers)
      // and L2 (when the home holds the ownership), plus pointer caches.
      s.l1DirEntryBits = sharingCodeBits(code, ntc);
      s.l2DirEntryBits = sharingCodeBits(code, ntc);
      s.l1DirBits = static_cast<std::uint64_t>(p.l1Entries) * s.l1DirEntryBits;
      s.l2DirBits = static_cast<std::uint64_t>(p.l2Entries) * s.l2DirEntryBits;
      addPointerCaches(s, p);
      break;

    case ProtocolKind::DiCoProviders:
      // L1 entry: full map of the local area + one (ProPo + valid) per
      // remote area. L2 entry: one (ProPo + valid) per area, for when the
      // home holds the ownership. Zero-width ProPos disappear from the L1
      // but keep their presence bit at the home (Section V-B numbers).
      s.l1DirEntryBits = sharingCodeBits(code, nta) +
                         (propo > 0 ? (na - 1) * (propo + 1) : 0);
      s.l2DirEntryBits = na * (propo + 1);
      s.l1DirBits = static_cast<std::uint64_t>(p.l1Entries) * s.l1DirEntryBits;
      s.l2DirBits = static_cast<std::uint64_t>(p.l2Entries) * s.l2DirEntryBits;
      addPointerCaches(s, p);
      break;

    case ProtocolKind::DiCoArin:
      // L1 entry: full map of the local area only. L2 entry: the larger of
      // (area map + area number) for single-area blocks and (one ProPo per
      // area) for blocks shared between areas — never needed together.
      s.l1DirEntryBits = sharingCodeBits(code, nta);
      s.l2DirEntryBits =
          std::max(sharingCodeBits(code, nta) + log2ceil(na), na * propo);
      s.l1DirBits = static_cast<std::uint64_t>(p.l1Entries) * s.l1DirEntryBits;
      s.l2DirBits = static_cast<std::uint64_t>(p.l2Entries) * s.l2DirEntryBits;
      addPointerCaches(s, p);
      break;

    case ProtocolKind::Mesi:
    case ProtocolKind::Moesi:
    case ProtocolKind::Dragon:
      // Broadcast snooping keeps no sharing information anywhere — every
      // miss interrogates all caches — so only the plain data arrays
      // (already accounted above) exist. The flip side is paid in network
      // energy, not storage.
      break;

    case ProtocolKind::Adapt:
      // Hybrid-Adapt is broadcast snooping too, but each L1 line carries
      // the sharing-pattern classifier: a 2-bit saturating policy score,
      // a 2-bit remote-read counter and the last-writer tile id.
      s.l1DirEntryBits = 2 + 2 + log2ceil(ntc);
      s.l1DirBits = static_cast<std::uint64_t>(p.l1Entries) * s.l1DirEntryBits;
      break;
  }
  return s;
}

}  // namespace eecc
