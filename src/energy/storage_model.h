// Bit-exact accounting of the coherence-information storage each protocol
// adds to a tile (Section V-B, Tables V and VII).
//
// Tag widths follow the paper's organization: the L1 is 4-way (512 sets),
// the L2 bank is 8-way (2048 sets) and bank-interleaved (log2(ntc) address
// bits select the home bank before indexing), and the directory cache,
// L1C$ and L2C$ are direct-mapped with 2048 sets. With 40-bit physical
// addresses and a 64-tile chip this yields the paper's
// L1Tag=25, L2Tag=17, DirTag=17, L1CTag=23, L2CTag=17.
//
// Pointer sizes: GenPo = log2(ntc) names any tile; ProPo = log2(nta) names
// a tile within one area. ProPo-bearing structures carry a valid bit per
// pointer, with the quirk the published numbers imply: when areas shrink to
// a single tile (ProPo width 0), the L1's per-area pointers vanish
// entirely while the home L2 still spends one presence bit per area.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace eecc {

struct ChipParams {
  std::uint32_t tiles = 64;
  std::uint32_t areas = 4;
  std::uint32_t physAddrBits = kPhysAddrBits;
  std::uint32_t l1Entries = 2048;
  std::uint32_t l1Assoc = 4;
  std::uint32_t l2Entries = 16384;
  std::uint32_t l2Assoc = 8;
  std::uint32_t l1cEntries = 2048;   // direct-mapped
  std::uint32_t l2cEntries = 2048;   // direct-mapped
  std::uint32_t dirCacheEntries = 2048;  // direct-mapped (storage tables)
  /// The simulator's dir cache is set-associative ("highly-optimized
  /// directory"); its probes read that many entries' worth of bits.
  std::uint32_t dirCacheAssocForEnergy = 8;

  std::uint32_t tilesPerArea() const { return tiles / areas; }
  std::uint32_t genPoBits() const;
  std::uint32_t proPoBits() const;
  std::uint32_t l1TagBits() const;
  std::uint32_t l2TagBits() const;
  std::uint32_t dirTagBits() const;
  std::uint32_t l1cTagBits() const;
  std::uint32_t l2cTagBits() const;
};

/// Per-tile storage of one protocol, in bits; mirrors a Table V row group.
struct StorageBreakdown {
  // Data arrays (identical across protocols).
  std::uint64_t l1DataBits = 0;  ///< L1Tag + 64-byte block, all entries.
  std::uint64_t l2DataBits = 0;  ///< L2Tag + 64-byte block, all entries.

  // Coherence information.
  std::uint64_t l1DirBits = 0;      ///< Sharing code stored in L1 entries.
  std::uint64_t l2DirBits = 0;      ///< Sharing code stored in L2 entries.
  std::uint64_t dirCacheBits = 0;   ///< Flat directory's dir cache.
  std::uint64_t l1cBits = 0;        ///< L1 Coherence Cache.
  std::uint64_t l2cBits = 0;        ///< L2 Coherence Cache.

  // Per-entry coherence widths (for reporting next to Table V).
  std::uint32_t l1DirEntryBits = 0;
  std::uint32_t l2DirEntryBits = 0;
  std::uint32_t dirCacheEntryBits = 0;
  std::uint32_t l1cEntryBits = 0;
  std::uint32_t l2cEntryBits = 0;

  std::uint64_t coherenceBits() const {
    return l1DirBits + l2DirBits + dirCacheBits + l1cBits + l2cBits;
  }
  std::uint64_t dataBits() const { return l1DataBits + l2DataBits; }
  /// The Table V "Overhead" column: coherence bits over data-array bits.
  double overheadFraction() const {
    return static_cast<double>(coherenceBits()) /
           static_cast<double>(dataBits());
  }
  /// All bits that live in tag-class arrays (tags + coherence info), the
  /// quantity behind the "Tag Leakage Power" column of Table VI.
  std::uint64_t tagClassBits(const ChipParams& p) const;
};

/// Bits needed to track sharers among `nodes` under `code`
/// (SharingCode lives in common/types.h).
std::uint32_t sharingCodeBits(SharingCode code, std::uint32_t nodes);

/// Computes the Table V row group for `kind` on chip `p`.
StorageBreakdown storageFor(ProtocolKind kind, const ChipParams& p,
                            SharingCode code = SharingCode::FullMap);

}  // namespace eecc
