// Generic set-associative cache array with true-LRU replacement.
//
// Protocols define their own line types (embedding protocol-specific
// coherence state) derived from CacheLineBase; the array handles indexing,
// lookup, LRU ordering and victim selection. Victim selection can exclude
// lines named "busy" by a caller-supplied predicate so that a line with an
// in-flight coherence transaction is not torn out from under it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "common/types.h"

namespace eecc {

struct CacheLineBase {
  Addr addr = 0;        ///< Block address (tag+index combined).
  bool valid = false;
  std::uint64_t lruStamp = 0;
};

template <typename LineT>
class CacheArray {
  static_assert(std::is_base_of_v<CacheLineBase, LineT>);

 public:
  /// `indexShift` drops low block-index bits before set selection — a
  /// bank-interleaved structure (L2 bank, L2C$, directory cache) must
  /// index with the bits *above* the bank-select bits or it would only
  /// ever touch 1/nbanks of its sets.
  CacheArray(std::uint32_t entries, std::uint32_t assoc,
             std::uint32_t indexShift = 0)
      : assoc_(assoc), sets_(entries / assoc), indexShift_(indexShift) {
    EECC_CHECK(assoc >= 1 && entries % assoc == 0);
    EECC_CHECK_MSG(isPow2(sets_), "set count must be a power of two");
    lines_.resize(entries);
  }

  std::uint32_t entries() const {
    return static_cast<std::uint32_t>(lines_.size());
  }
  std::uint32_t associativity() const { return assoc_; }
  std::uint32_t sets() const { return sets_; }

  /// Returns the valid line holding `block`, or nullptr. Does not touch LRU.
  LineT* find(Addr block) {
    const auto [begin, end] = setRange(block);
    for (std::size_t i = begin; i < end; ++i)
      if (lines_[i].valid && lines_[i].addr == block) return &lines_[i];
    return nullptr;
  }
  const LineT* find(Addr block) const {
    return const_cast<CacheArray*>(this)->find(block);
  }

  /// Marks a line most-recently-used.
  void touch(LineT& line) { line.lruStamp = ++clock_; }

  /// Selects the victim slot for installing `block`: an invalid way if one
  /// exists, otherwise the LRU way among those for which `busy` is false.
  /// Returns nullptr only when every way of the set is busy.
  LineT* selectVictim(Addr block,
                      const std::function<bool(const LineT&)>& busy) {
    const auto [begin, end] = setRange(block);
    LineT* best = nullptr;
    for (std::size_t i = begin; i < end; ++i) {
      LineT& line = lines_[i];
      if (!line.valid) return &line;
      if (busy && busy(line)) continue;
      if (best == nullptr || line.lruStamp < best->lruStamp) best = &line;
    }
    return best;
  }

  /// Resets `slot` to an invalid default-state line tagged with `block`,
  /// marks it valid and most-recently-used. The caller must already have
  /// dealt with the previous occupant.
  LineT& install(LineT& slot, Addr block) {
    slot = LineT{};
    slot.addr = block;
    slot.valid = true;
    touch(slot);
    return slot;
  }

  void invalidate(LineT& line) { line.valid = false; }

  /// Visits every valid line (for invariant checking and statistics).
  template <typename Fn>
  void forEachValid(Fn&& fn) {
    for (auto& line : lines_)
      if (line.valid) fn(line);
  }
  template <typename Fn>
  void forEachValid(Fn&& fn) const {
    for (const auto& line : lines_)
      if (line.valid) fn(line);
  }

  std::uint64_t validCount() const {
    std::uint64_t n = 0;
    forEachValid([&n](const LineT&) { ++n; });
    return n;
  }

 private:
  std::pair<std::size_t, std::size_t> setRange(Addr block) const {
    const std::size_t set =
        static_cast<std::size_t>(blockIndex(block) >> indexShift_) &
        (sets_ - 1);
    return {set * assoc_, set * assoc_ + assoc_};
  }

  std::uint32_t assoc_;
  std::uint32_t sets_;
  std::uint32_t indexShift_ = 0;
  std::uint64_t clock_ = 0;
  std::vector<LineT> lines_;
};

}  // namespace eecc
