// Generic set-associative cache array with true-LRU replacement.
//
// Protocols define their own line types (embedding protocol-specific
// coherence state) derived from CacheLineBase; the array handles indexing,
// lookup, LRU ordering and victim selection. Victim selection can exclude
// lines named "busy" by a caller-supplied predicate so that a line with an
// in-flight coherence transaction is not torn out from under it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "common/types.h"
#include "obs/selfprof.h"

namespace eecc {

struct CacheLineBase {
  Addr addr = 0;        ///< Block address (tag+index combined).
  /// NEVER write these directly: CacheArray mirrors them into packed
  /// side arrays that find/selectVictim scan (one cache line per set
  /// instead of one per way). Invalidate through CacheArray::invalidate
  /// and refresh LRU through CacheArray::touch, or the mirrors desync
  /// and lookups return stale lines. Reading them is always fine.
  bool valid = false;
  std::uint64_t lruStamp = 0;
};

template <typename LineT>
class CacheArray {
  static_assert(std::is_base_of_v<CacheLineBase, LineT>);

 public:
  /// `indexShift` drops low block-index bits before set selection — a
  /// bank-interleaved structure (L2 bank, L2C$, directory cache) must
  /// index with the bits *above* the bank-select bits or it would only
  /// ever touch 1/nbanks of its sets.
  CacheArray(std::uint32_t entries, std::uint32_t assoc,
             std::uint32_t indexShift = 0)
      : assoc_(assoc), sets_(entries / assoc), indexShift_(indexShift) {
    EECC_CHECK(assoc >= 1 && entries % assoc == 0);
    EECC_CHECK_MSG(isPow2(sets_), "set count must be a power of two");
    lines_.resize(entries);
    meta_.resize(entries);
  }

  std::uint32_t entries() const {
    return static_cast<std::uint32_t>(lines_.size());
  }
  std::uint32_t associativity() const { return assoc_; }
  std::uint32_t sets() const { return sets_; }

  /// Returns the valid line holding `block`, or nullptr. Does not touch LRU.
  ///
  /// The scan runs over the packed metadata array — one 16-byte
  /// {tag, stamp} record per way means a single cache line covers a
  /// whole 4-way set (two cover an 8-way one), where scanning the wide
  /// LineT structs would touch one cache line per way. Tags are written
  /// only by install() (the sole writer of line.addr) and a stamp of 0
  /// encodes an invalid way (maintained by install/touch/invalidate;
  /// every valid line has been touched at least once, so live stamps are
  /// never 0). This is why CacheLineBase forbids writing valid/lruStamp
  /// directly.
  LineT* find(Addr block) {
    ProfScope prof(ProfSection::CacheLookup);
    const auto [begin, end] = setRange(block);
    for (std::size_t i = begin; i < end; ++i)
      if (meta_[i].tag == block && meta_[i].stamp != 0) return &lines_[i];
    return nullptr;
  }
  const LineT* find(Addr block) const {
    return const_cast<CacheArray*>(this)->find(block);
  }

  /// Marks a line most-recently-used.
  void touch(LineT& line) {
    line.lruStamp = ++clock_;
    meta_[indexOf(line)].stamp = clock_;
  }

  /// Selects the victim slot for installing `block`: an invalid way if one
  /// exists, otherwise the LRU way among those for which `busy` is false.
  /// Returns nullptr only when every way of the set is busy. `busy` is any
  /// callable bool(const LineT&), invoked directly — victim selection runs
  /// on every miss, so the predicate is not boxed into a std::function.
  template <typename BusyP>
  LineT* selectVictim(Addr block, BusyP&& busy) {
    ProfScope prof(ProfSection::CacheVictim);
    const auto [begin, end] = setRange(block);
    // Scan the packed stamps only: invalid ways (stamp 0) win outright,
    // otherwise the minimum stamp is the overall-LRU way. `busy` is
    // deferred to that single way — predicates are pure (transaction-
    // table probes), so when the overall-LRU way is not busy (the common
    // case) one predicate call decides, instead of one per valid way.
    std::size_t lru = begin;
    for (std::size_t i = begin; i < end; ++i) {
      if (meta_[i].stamp == 0) return &lines_[i];
      if (meta_[i].stamp < meta_[lru].stamp) lru = i;
    }
    if (!busy(lines_[lru])) return &lines_[lru];
    // The overall-LRU way is busy: fall back to the LRU non-busy way.
    LineT* best = nullptr;
    for (std::size_t i = begin; i < end; ++i) {
      LineT& line = lines_[i];
      if (i == lru || busy(line)) continue;
      if (best == nullptr || line.lruStamp < best->lruStamp) best = &line;
    }
    return best;
  }

  /// No-exclusions overload (callers pass nullptr for "nothing is busy").
  LineT* selectVictim(Addr block, std::nullptr_t) {
    return selectVictim(block, [](const LineT&) { return false; });
  }

  /// Resets `slot` to an invalid default-state line tagged with `block`,
  /// marks it valid and most-recently-used. The caller must already have
  /// dealt with the previous occupant.
  LineT& install(LineT& slot, Addr block) {
    slot = LineT{};
    slot.addr = block;
    slot.valid = true;
    meta_[static_cast<std::size_t>(&slot - lines_.data())].tag = block;
    touch(slot);
    return slot;
  }

  void invalidate(LineT& line) {
    line.valid = false;
    meta_[indexOf(line)].stamp = 0;
  }

  /// Visits every valid line (for invariant checking and statistics).
  template <typename Fn>
  void forEachValid(Fn&& fn) {
    for (auto& line : lines_)
      if (line.valid) fn(line);
  }
  template <typename Fn>
  void forEachValid(Fn&& fn) const {
    for (const auto& line : lines_)
      if (line.valid) fn(line);
  }

  std::uint64_t validCount() const {
    std::uint64_t n = 0;
    forEachValid([&n](const LineT&) { ++n; });
    return n;
  }

 private:
  std::size_t indexOf(const LineT& line) const {
    return static_cast<std::size_t>(&line - lines_.data());
  }

  std::pair<std::size_t, std::size_t> setRange(Addr block) const {
    const std::size_t set =
        static_cast<std::size_t>(blockIndex(block) >> indexShift_) &
        (sets_ - 1);
    return {set * assoc_, set * assoc_ + assoc_};
  }

  /// Never a block address (block addresses are byte addresses of aligned
  /// blocks; all-ones is not). Keeps a never-installed way from matching.
  static constexpr Addr kNoTag = ~Addr{0};

  /// Packed copy of {lines_[i].addr, lines_[i].lruStamp}, with stamp 0
  /// when the way is invalid — the only state find/selectVictim scans
  /// touch. Interleaved in one record so a set probe reads tag and stamp
  /// from the same cache line.
  struct WayMeta {
    Addr tag = kNoTag;
    std::uint64_t stamp = 0;
  };

  std::uint32_t assoc_;
  std::uint32_t sets_;
  std::uint32_t indexShift_ = 0;
  std::uint64_t clock_ = 0;
  std::vector<LineT> lines_;
  std::vector<WayMeta> meta_;
};

}  // namespace eecc
