// The L1 Coherence Cache (L1C$) and L2 Coherence Cache (L2C$) of DiCo-based
// protocols (Section IV): small set-associative caches of pointers indexed
// by block address. An L1C$ entry holds a *prediction* of the supplier of a
// block; an L2C$ entry holds the *precise* identity of the L1 cache owning
// a block when the ownership is not at the home L2.
//
// Precise pointers must never vanish while a transaction is mid-flight on
// their block, so update() takes a busy predicate: busy entries are never
// chosen as victims, and when every candidate way is busy the new pointer
// parks in a small overflow table (the stand-in for the MSHR entry a real
// implementation would hold it in) until it is invalidated or re-inserted.
#pragma once

#include <optional>
#include <unordered_map>

#include "cache/cache_array.h"
#include "common/types.h"

namespace eecc {

class CoherenceCache {
 public:
  CoherenceCache(std::uint32_t entries, std::uint32_t assoc,
                 std::uint32_t indexShift = 0)
      : array_(entries, assoc, indexShift) {
    // All-ways-busy overflow parking is rare but bursty; pre-sizing keeps
    // the first burst from rehashing mid-transaction.
    overflow_.reserve(256);
  }

  /// Probes for a pointer; refreshes LRU on hit.
  std::optional<NodeId> lookup(Addr block) {
    if (Entry* e = array_.find(block)) {
      array_.touch(*e);
      return e->node;
    }
    // Overflow parking is rare: skip the hash probe while the table is
    // empty (the common case on every miss-path lookup).
    if (!overflow_.empty()) [[unlikely]]
      if (auto it = overflow_.find(block); it != overflow_.end())
        return it->second;
    return std::nullopt;
  }

  /// Installs or refreshes the pointer for `block`. Returns the evicted
  /// (block, node) pair when a valid victim had to be displaced — the L2C$
  /// uses this to trigger an ownership recall (Section IV-A1). Entries for
  /// which `busy` returns true are never displaced. `busy` is any callable
  /// bool(Addr), invoked directly (no std::function boxing per update).
  template <typename BusyT>
  std::optional<std::pair<Addr, NodeId>> update(Addr block, NodeId node,
                                                BusyT&& busy) {
    if (!overflow_.empty()) [[unlikely]]
      overflow_.erase(block);
    if (Entry* e = array_.find(block)) {
      e->node = node;
      array_.touch(*e);
      return std::nullopt;
    }
    Entry* slot = array_.selectVictim(
        block, [&busy](const Entry& e) { return busy(e.addr); });
    if (slot == nullptr) {
      overflow_.emplace(block, node);
      return std::nullopt;
    }
    std::optional<std::pair<Addr, NodeId>> displaced;
    if (slot->valid) displaced = {slot->addr, slot->node};
    array_.install(*slot, block).node = node;
    return displaced;
  }

  std::optional<std::pair<Addr, NodeId>> update(Addr block, NodeId node) {
    return update(block, node, [](Addr) { return false; });
  }

  /// True when inserting `block` would displace a live (non-busy) entry —
  /// i.e. there is no room without evicting someone else's pointer.
  template <typename BusyT>
  bool wouldDisplace(Addr block, BusyT&& busy) {
    if (array_.find(block) != nullptr) return false;
    Entry* slot = array_.selectVictim(
        block, [&busy](const Entry& e) { return busy(e.addr); });
    return slot == nullptr || slot->valid;
  }

  bool wouldDisplace(Addr block) {
    return wouldDisplace(block, [](Addr) { return false; });
  }

  /// Drops the entry for `block` if present.
  void invalidate(Addr block) {
    if (Entry* e = array_.find(block)) array_.invalidate(*e);
    if (!overflow_.empty()) [[unlikely]]
      overflow_.erase(block);
  }

  std::uint32_t entries() const { return array_.entries(); }
  std::uint64_t validCount() const {
    return array_.validCount() + overflow_.size();
  }
  std::size_t overflowSize() const { return overflow_.size(); }

  /// Visits every (block, node) pair (invariant checks).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    array_.forEachValid([&fn](const auto& e) { fn(e.addr, e.node); });
    for (const auto& [block, node] : overflow_) fn(block, node);
  }

 private:
  struct Entry : CacheLineBase {
    NodeId node = kInvalidNode;
  };
  CacheArray<Entry> array_;
  std::unordered_map<Addr, NodeId> overflow_;
};

}  // namespace eecc
