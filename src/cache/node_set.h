// Fixed-capacity set of tile identifiers — the in-simulator representation
// of a full-map sharing bit-vector. Capacity covers up to 256 tiles, the
// largest chip we simulate (storage *accounting* for bigger chips is
// analytic, see energy/storage_model.h, and does not use this type).
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "common/check.h"
#include "common/types.h"

namespace eecc {

class NodeSet {
 public:
  static constexpr std::int32_t kCapacity = 256;

  constexpr NodeSet() : words_{} {}

  void insert(NodeId n) { word(n) |= bit(n); }
  void erase(NodeId n) { word(n) &= ~bit(n); }
  bool contains(NodeId n) const { return (word(n) & bit(n)) != 0; }
  void clear() { words_ = {}; }

  std::int32_t size() const {
    std::int32_t total = 0;
    for (const auto w : words_) total += std::popcount(w);
    return total;
  }
  bool empty() const {
    for (const auto w : words_)
      if (w != 0) return false;
    return true;
  }

  /// Lowest-numbered member, or kInvalidNode when empty.
  NodeId first() const {
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] != 0)
        return static_cast<NodeId>(i * 64 +
                                   static_cast<std::size_t>(
                                       std::countr_zero(words_[i])));
    return kInvalidNode;
  }

  NodeSet& operator|=(const NodeSet& o) {
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  bool operator==(const NodeSet&) const = default;

  /// Visits every member in ascending order.
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i];
      while (w != 0) {
        const int b = std::countr_zero(w);
        fn(static_cast<NodeId>(i * 64 + static_cast<std::size_t>(b)));
        w &= w - 1;
      }
    }
  }

 private:
  std::uint64_t& word(NodeId n) {
    EECC_CHECK(n >= 0 && n < kCapacity);
    return words_[static_cast<std::size_t>(n) / 64];
  }
  const std::uint64_t& word(NodeId n) const {
    EECC_CHECK(n >= 0 && n < kCapacity);
    return words_[static_cast<std::size_t>(n) / 64];
  }
  static constexpr std::uint64_t bit(NodeId n) {
    return std::uint64_t{1} << (static_cast<std::uint32_t>(n) % 64);
  }

  std::array<std::uint64_t, kCapacity / 64> words_;
};

}  // namespace eecc
