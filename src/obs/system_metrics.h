// Registration walkers: enumerate every statistic a live CmpSystem (or
// one of its building blocks) keeps into a MetricRegistry under the stable
// hierarchical naming scheme of DESIGN.md §10:
//
//   sys.cycles / sys.ops / sys.events
//   tile.<n>.core.opsDone
//   proto.<counter>                       (ProtocolStats uint64 fields)
//   proto.miss.<Class>.count              (Figure 9b classification)
//   proto.miss.<Class>.latency.*          (Accumulator expansion)
//   proto.miss.<Class>.links.*
//   proto.missLatency.*
//   proto.msg.<opcode>.{count,links}      (per-opcode traffic)
//   proto.unicastMessages / proto.interAreaMessages
//   net.<counter>  net.unicastLatency.*  net.contentionWait.*
//   energy.<event>                        (CacheEnergyEvents fields)
//   ddr.<i>.{requests,rowHits,rowMisses,rowConflicts}
//
// The registry holds accessors into the walked objects, which must outlive
// it (in practice: build the registry next to the CmpSystem, snapshot
// before tearing either down).
#pragma once

#include <string>

#include "obs/metric_registry.h"

namespace eecc {

class CmpSystem;
class Protocol;
struct ProtocolStats;
struct NocStats;
struct CacheEnergyEvents;

/// Registers every metric of a full system: sys/tile totals plus the
/// protocol, network, energy and DDR walkers below.
void registerSystem(MetricRegistry& reg, const CmpSystem& sys);

/// Individual walkers (prefix, e.g. "proto", is prepended to every name).
void registerProtocolStats(MetricRegistry& reg, const std::string& prefix,
                           const ProtocolStats& stats);
void registerProtocol(MetricRegistry& reg, const std::string& prefix,
                      const Protocol& proto);
void registerNocStats(MetricRegistry& reg, const std::string& prefix,
                      const NocStats& stats);
void registerCacheEnergy(MetricRegistry& reg, const std::string& prefix,
                         const CacheEnergyEvents& events);

}  // namespace eecc
