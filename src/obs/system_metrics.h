// Registration walkers: enumerate every statistic a live CmpSystem (or
// one of its building blocks) keeps into a MetricRegistry under the stable
// hierarchical naming scheme of DESIGN.md §10:
//
//   sys.cycles / sys.ops / sys.events
//   tile.<n>.core.opsDone
//   proto.<counter>                       (ProtocolStats uint64 fields)
//   proto.miss.<Class>.count              (Figure 9b classification)
//   proto.miss.<Class>.latency.*          (Accumulator expansion)
//   proto.miss.<Class>.links.*
//   proto.missLatency.*
//   proto.msg.<opcode>.{count,links}      (per-opcode traffic)
//   proto.unicastMessages / proto.interAreaMessages
//   net.<counter>  net.unicastLatency.*  net.contentionWait.*
//   energy.<event>                        (CacheEnergyEvents fields)
//   energy.pj.cache.{l1,l1Dir,l2,l2Dir,pointer,total}   (EnergyModel)
//   energy.pj.noc.{routing,link,total}
//   energy.mw.{cache,link,routing,totalDynamic}
//   energy.leakage.{tagPerTileMw,totalPerTileMw,chipMw}
//   ddr.<i>.{requests,rowHits,rowMisses,rowConflicts}
//   ddr.total.{requests,rowHits,rowMisses,rowConflicts}
//   cfg.{tiles,areas,l1Entries,l2Entries}
//   ledger.*                              (attribution matrices, §11)
//
// The registry holds accessors into the walked objects, which must outlive
// it (in practice: build the registry next to the CmpSystem, snapshot
// before tearing either down).
#pragma once

#include <string>

#include "obs/metric_registry.h"

namespace eecc {

class CmpSystem;
class Protocol;
struct ProtocolStats;
struct NocStats;
struct CacheEnergyEvents;
class AttributionLedger;
class RingTraceSink;

/// Registers every metric of a full system: sys/tile totals plus the
/// protocol, network, energy and DDR walkers below.
void registerSystem(MetricRegistry& reg, const CmpSystem& sys);

/// Derived energy gauges: the analytic EnergyModel applied to the live
/// counters. Dynamic picojoules (Fig. 8 cache + NoC breakdowns), average
/// milliwatts over the elapsed window (Fig. 7), and the constant leakage
/// terms of Table VI. `prefix` is normally "energy" (see the header map).
void registerEnergyModel(MetricRegistry& reg, const std::string& prefix,
                         const CmpSystem& sys);

/// Attribution-ledger walker (DESIGN.md §11). Per (row, area) cell:
///   ledger.<row>.<a>.miss.<Class>.count   ledger.<row>.<a>.missLatency.*
///   ledger.<row>.<a>.net.{messages,broadcasts,hops,flits,routings}
///   ledger.<row>.<a>.energy.<event>       ledger.<row>.<a>.occ.l2Lines
///   ledger.<row>.<a>.tiles
/// Per row: ledger.<row>.occ.l1Lines, ledger.<row>.hist.<bucket>.
/// Chip-wide: ledger.{vms,areas,rows}, ledger.occ.samples.
/// <row> is the ledger's row label ("vm0".."shared","other").
/// With `sys`, adds per-cell dynamic-energy gauges (the EnergyModel
/// applied to the cell's event counts): ledger.<row>.<a>.pj.{cache,noc}.
void registerLedger(MetricRegistry& reg, const AttributionLedger& ledger,
                    const CmpSystem* sys = nullptr);

/// Trace-ring health counters (overflow visibility, DESIGN.md §16):
///   trace.recorded   records ever pushed into the ring
///   trace.retained   records still held (<= capacity)
///   trace.dropped    records overwritten because the ring was full
///   trace.capacity   configured ring size
void registerTraceSink(MetricRegistry& reg, const RingTraceSink& sink);

/// Individual walkers (prefix, e.g. "proto", is prepended to every name).
void registerProtocolStats(MetricRegistry& reg, const std::string& prefix,
                           const ProtocolStats& stats);
void registerProtocol(MetricRegistry& reg, const std::string& prefix,
                      const Protocol& proto);
void registerNocStats(MetricRegistry& reg, const std::string& prefix,
                      const NocStats& stats);
void registerCacheEnergy(MetricRegistry& reg, const std::string& prefix,
                         const CacheEnergyEvents& events);

}  // namespace eecc
