#include "obs/stage.h"

#include <string>

#include "obs/metric_registry.h"

namespace eecc {

void registerStageRecorder(MetricRegistry& reg, const StageRecorder& rec) {
  const StageRecorder* r = &rec;
  reg.addCounter("stage.transactions", [r] { return r->transactions(); });
  for (std::size_t c = 0; c < static_cast<std::size_t>(MissClass::kCount);
       ++c) {
    const auto cls = static_cast<MissClass>(c);
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const auto stage = static_cast<Stage>(s);
      const std::string base = std::string("stage.") + missClassName(cls) +
                               "." + stageName(stage);
      reg.addAccumulator(base + ".lat", &r->latency(cls, stage));
      for (std::size_t b = 0; b < StageRecorder::kHistBuckets; ++b)
        reg.addCounter(base + ".hist." + std::to_string(b), [r, cls, stage,
                                                             b] {
          return r->histogram(cls, stage).buckets()[b];
        });
    }
  }
}

}  // namespace eecc
