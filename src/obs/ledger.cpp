#include "obs/ledger.h"

#include "noc/message.h"
#include "protocols/protocol.h"

namespace eecc {

const std::array<EnergyEventField, 16>& energyEventFields() {
  static const std::array<EnergyEventField, 16> fields = {{
      {"l1TagProbe", &CacheEnergyEvents::l1TagProbe},
      {"l1DataRead", &CacheEnergyEvents::l1DataRead},
      {"l1DataWrite", &CacheEnergyEvents::l1DataWrite},
      {"l1DirRead", &CacheEnergyEvents::l1DirRead},
      {"l1DirUpdate", &CacheEnergyEvents::l1DirUpdate},
      {"l2TagProbe", &CacheEnergyEvents::l2TagProbe},
      {"l2DataRead", &CacheEnergyEvents::l2DataRead},
      {"l2DataWrite", &CacheEnergyEvents::l2DataWrite},
      {"l2DirRead", &CacheEnergyEvents::l2DirRead},
      {"l2DirUpdate", &CacheEnergyEvents::l2DirUpdate},
      {"dirCacheProbe", &CacheEnergyEvents::dirCacheProbe},
      {"dirCacheUpdate", &CacheEnergyEvents::dirCacheUpdate},
      {"l1cProbe", &CacheEnergyEvents::l1cProbe},
      {"l1cUpdate", &CacheEnergyEvents::l1cUpdate},
      {"l2cProbe", &CacheEnergyEvents::l2cProbe},
      {"l2cUpdate", &CacheEnergyEvents::l2cUpdate},
  }};
  return fields;
}

AttributionLedger::AttributionLedger(const CmpConfig& cfg,
                                     const VmLayout& layout,
                                     std::function<VmId(Addr)> vmOfPage,
                                     Tick occupancyEvery)
    : numVms_(layout.numVms),
      numAreas_(cfg.numAreas),
      occupancyEvery_(occupancyEvery),
      vmOfPage_(std::move(vmOfPage)),
      tilesMod_(static_cast<std::uint32_t>(cfg.tiles())) {
  const auto tiles = static_cast<std::size_t>(cfg.tiles());
  rowOfTile_.resize(tiles);
  areaOfTile_.resize(tiles);
  layoutTiles_.assign(rows() * numAreas_, 0);
  for (std::size_t t = 0; t < tiles; ++t) {
    const VmId vm = layout.vmOfTile[t];
    rowOfTile_[t] = static_cast<std::uint32_t>(rowOfVm(vm));
    areaOfTile_[t] = static_cast<std::uint32_t>(
        cfg.areaOf(static_cast<NodeId>(t)));
    layoutTiles_[cell(rowOfTile_[t], areaOfTile_[t])] += 1;
  }

  const std::size_t cells = rows() * numAreas_;
  missByClass_.assign(cells, {});
  missLatency_.assign(cells, Accumulator{});
  net_.assign(cells, NetCell{});
  energy_.assign(cells, CacheEnergyEvents{});
  latencyHist_.assign(rows(),
                      Histogram(0.0, kHistMaxLatency, kHistBuckets));
  l1Occ_.assign(rows(), 0);
  l2Occ_.assign(cells, 0);
  scopes_.reserve(8);
}

std::string AttributionLedger::rowLabel(std::size_t row) const {
  if (row < numVms_) return "vm" + std::to_string(row);
  return row == sharedRow() ? "shared" : "other";
}

void AttributionLedger::retile(const VmLayout& layout) {
  EECC_CHECK_MSG(layout.numVms == numVms_, "retile must keep the row count");
  EECC_CHECK(layout.vmOfTile.size() == rowOfTile_.size());
  EECC_CHECK_MSG(scopes_.empty(), "retile inside a work scope");
  flushEnergy();  // energy so far belongs to the old assignment
  layoutTiles_.assign(rows() * numAreas_, 0);
  for (std::size_t t = 0; t < rowOfTile_.size(); ++t) {
    rowOfTile_[t] = static_cast<std::uint32_t>(rowOfVm(layout.vmOfTile[t]));
    layoutTiles_[cell(rowOfTile_[t], areaOfTile_[t])] += 1;
  }
}

void AttributionLedger::bindEnergy(const CacheEnergyEvents* live) {
  live_ = live;
  snap_ = live != nullptr ? *live : CacheEnergyEvents{};
}

std::size_t AttributionLedger::rowOfMsg(const Message& msg) const {
  const NodeId cause = msg.origin != kInvalidNode ? msg.origin : msg.src;
  if (cause < 0 || static_cast<std::size_t>(cause) >= rowOfTile_.size())
    return otherRow();
  return rowOfTile_[static_cast<std::size_t>(cause)];
}

void AttributionLedger::msgWorkBegin(const Message& msg) {
  flushEnergy();
  // Energy of a message handler is paid at the destination tile's
  // structures, on behalf of the message's originating VM.
  std::uint32_t area = 0;
  if (msg.dst >= 0 && static_cast<std::size_t>(msg.dst) < areaOfTile_.size())
    area = areaOfTile_[static_cast<std::size_t>(msg.dst)];
  scopes_.push_back(
      Scope{static_cast<std::uint32_t>(rowOfMsg(msg)), area});
}

void AttributionLedger::onMiss(NodeId tile, Addr block, MissClass cls,
                               double latency, std::uint32_t links) {
  (void)links;
  // Area of a miss: where its home bank sits — the paper's in-area vs
  // cross-area distinction for miss resolution.
  const std::size_t homeArea =
      areaOfTile_[static_cast<std::size_t>(blockIndex(block) % tilesMod_)];
  const std::size_t row = rowOfTile(tile);
  const std::size_t c = cell(row, homeArea);
  missByClass_[c][static_cast<std::size_t>(cls)] += 1;
  missLatency_[c].add(latency);
  latencyHist_[row].add(latency);
}

void AttributionLedger::onUnicast(const Message& msg, std::uint32_t hops,
                                  std::uint32_t flits) {
  // Cost is charged where the wires are: the destination's area (the
  // route ends there; XY routes stay within the src/dst bounding box).
  NetCell& n = net_[cell(rowOfMsg(msg),
                         areaOfTile_[static_cast<std::size_t>(msg.dst)])];
  n.messages += 1;
  n.hops += hops;
  n.flits += static_cast<std::uint64_t>(hops) * flits;
  n.routings += static_cast<std::uint64_t>(hops) + 1;
}

void AttributionLedger::onBroadcast(const Message& msg,
                                    std::uint32_t treeLinks,
                                    std::uint32_t flits, std::int32_t nodes) {
  NetCell& n = net_[cell(rowOfMsg(msg),
                         areaOfTile_[static_cast<std::size_t>(msg.src)])];
  n.messages += 1;
  n.broadcasts += 1;
  n.hops += treeLinks;
  n.flits += static_cast<std::uint64_t>(treeLinks) * flits;
  n.routings += static_cast<std::uint64_t>(nodes);
}

void AttributionLedger::sampleOccupancy(const Protocol& proto) {
  proto.forEachL1Copy([this](const Protocol::L1CopyView& v) {
    l1Occ_[rowOfTile(v.tile)] += 1;
  });
  proto.forEachL2Block([this](NodeId tile, Addr block) {
    std::size_t row = otherRow();
    if (vmOfPage_) row = rowOfVm(vmOfPage_(pageAddr(block)));
    l2Occ_[cell(row, areaOfTile_[static_cast<std::size_t>(tile)])] += 1;
  });
  occSamples_ += 1;
}

void AttributionLedger::resetWindow() {
  const std::size_t cells = rows() * numAreas_;
  missByClass_.assign(cells, {});
  missLatency_.assign(cells, Accumulator{});
  net_.assign(cells, NetCell{});
  energy_.assign(cells, CacheEnergyEvents{});
  latencyHist_.assign(rows(),
                      Histogram(0.0, kHistMaxLatency, kHistBuckets));
  l1Occ_.assign(rows(), 0);
  l2Occ_.assign(cells, 0);
  occSamples_ = 0;
  if (live_ != nullptr) snap_ = *live_;
}

void AttributionLedger::flushEnergy() {
  if (live_ == nullptr) return;
  const CacheEnergyEvents& live = *live_;
  CacheEnergyEvents& into =
      energy_[scopes_.empty()
                  ? cell(otherRow(), 0)
                  : cell(scopes_.back().row, scopes_.back().area)];
  for (const EnergyEventField& f : energyEventFields()) {
    const std::uint64_t delta = live.*(f.field) - snap_.*(f.field);
    if (delta != 0) into.*(f.field) += delta;
  }
  snap_ = live;
}

}  // namespace eecc
