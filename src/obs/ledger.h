// AttributionLedger — per-VM × per-area accounting of coherence activity
// (DESIGN.md §11).
//
// The chip-level structs (ProtocolStats, NocStats, CacheEnergyEvents)
// answer "what did the chip do"; the ledger answers "on whose behalf and
// where": every classified L1 miss, every NoC message and every cache
// energy event is attributed to the VM that caused it and to the static
// chip area where the cost was paid. Summing any ledger matrix over all
// rows (including the `shared` and `other` rows) reproduces the
// corresponding chip-level counter bit-for-bit — ledger_test enforces this
// for every protocol — so the ledger is a *decomposition* of the legacy
// stats, never a second (and eventually divergent) bookkeeping.
//
// Attribution rules:
//  * Misses: the issuing tile's VM; the area of the block's home bank.
//  * Messages: the VM of Message::origin (the tile whose activity caused
//    the message — protocols tag responses/forwards explicitly, see
//    noc/message.h); the area of the destination (unicast) or the source
//    (broadcast) — where the wires are.
//  * Cache energy: bracket-based. The protocol opens a work scope around
//    each access and each message handler (workBegin/msgWorkBegin …
//    workEnd); on every scope boundary the delta of the protocol's live
//    CacheEnergyEvents since the previous boundary is flushed into the
//    scope's cell. Energy charged outside any scope lands in the `other`
//    row, so the decomposition stays exact without touching the ~170
//    energy charge sites in the protocol engines.
//  * Leakage: not accumulated here — it is a function of time, not events.
//    The ledger samples per-VM cache occupancy (L1 copies by tile, L2
//    blocks by owning page) on the chunked CmpSystem::run cadence;
//    consumers (obs/report.h) apportion the chip's leakage power by mean
//    occupancy share.
//
// Hot-path contract: same as TraceSink/CheckHooks — a detached ledger
// costs one untaken [[unlikely]] branch per access/message
// (bench/micro_obs_overhead gates this); attached cost is array indexing
// only, no allocation, no hashing.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "core/config.h"
#include "protocols/protocol_stats.h"

namespace eecc {

class Protocol;
struct Message;

/// Name/pointer-to-member table over CacheEnergyEvents — the single place
/// that enumerates its fields, shared by the ledger's delta flush, the
/// registry walkers and the report generator.
struct EnergyEventField {
  const char* name;
  std::uint64_t CacheEnergyEvents::*field;
};
const std::array<EnergyEventField, 16>& energyEventFields();

class AttributionLedger {
 public:
  /// Per-cell NoC usage, mirroring the NocStats counters it decomposes.
  struct NetCell {
    std::uint64_t messages = 0;
    std::uint64_t broadcasts = 0;
    std::uint64_t hops = 0;      ///< NocStats::linksTraversed share.
    std::uint64_t flits = 0;     ///< NocStats::linkFlits share.
    std::uint64_t routings = 0;  ///< NocStats::routings share.
  };

  /// `vmOfPage` resolves a page address to its owning VM (kVmShared for
  /// hypervisor-deduplicated pages, kInvalidVm for unknown); only used by
  /// occupancy sampling, may be empty. `occupancyEvery` is the sampling
  /// period in cycles (0 = only the end-of-run sample).
  AttributionLedger(const CmpConfig& cfg, const VmLayout& layout,
                    std::function<VmId(Addr)> vmOfPage = {},
                    Tick occupancyEvery = 50'000);

  // --- Geometry ---
  std::size_t numVms() const { return numVms_; }
  std::size_t numAreas() const { return numAreas_; }
  /// Rows: one per VM, then `shared` (deduplicated pages), then `other`
  /// (unassigned tiles and unattributed energy).
  std::size_t rows() const { return numVms_ + 2; }
  std::size_t sharedRow() const { return numVms_; }
  std::size_t otherRow() const { return numVms_ + 1; }
  /// "vm0".."vmN-1", "shared", "other" — the stable row labels of the
  /// registry names and report tables.
  std::string rowLabel(std::size_t row) const;
  Tick occupancyEvery() const { return occupancyEvery_; }

  /// Tiles the layout statically assigns to (row, area) — the denominator
  /// for per-VM normalizations. Unassigned tiles count under `other`.
  std::uint64_t layoutTiles(std::size_t row, std::size_t area) const {
    return layoutTiles_[cell(row, area)];
  }

  // --- Attach-time binding (CmpSystem::attachLedger) ---
  /// Binds the protocol's live energy counters for the delta flush; snaps
  /// the current values so only energy from now on is attributed.
  void bindEnergy(const CacheEnergyEvents* live);

  // --- Protocol hooks (hot path; callers guard with [[unlikely]]) ---
  /// Opens a work scope for core-issued work on `tile`.
  void workBegin(NodeId tile) {
    flushEnergy();
    scopes_.push_back(scopeOfTile(tile));
  }
  /// Opens a work scope for handling `msg` at its destination.
  void msgWorkBegin(const Message& msg);
  /// Closes the innermost scope, attributing energy since the last
  /// boundary to it.
  void workEnd() {
    flushEnergy();
    scopes_.pop_back();
  }

  /// One classified miss completion (same values recordMiss() fed the
  /// chip-level stats, so the sums reconcile exactly).
  void onMiss(NodeId tile, Addr block, MissClass cls, double latency,
              std::uint32_t links);

  // --- Network hooks ---
  /// Mirrors Network::send's stat increments for one unicast.
  void onUnicast(const Message& msg, std::uint32_t hops, std::uint32_t flits);
  /// Mirrors Network::broadcast's: `treeLinks` tree links crossed,
  /// `nodes` routers visited.
  void onBroadcast(const Message& msg, std::uint32_t treeLinks,
                   std::uint32_t flits, std::int32_t nodes);

  // --- Sampling / lifecycle ---
  /// Accumulates one occupancy sample: L1 lines per VM (by tile), L2
  /// blocks per VM × area (by owning page via vmOfPage).
  void sampleOccupancy(const Protocol& proto);
  /// Flushes energy accrued since the last scope boundary into `other`.
  /// CmpSystem::run calls this after the final drain so the energy
  /// decomposition is exact at snapshot time.
  void finalize() { flushEnergy(); }
  /// Clears every accumulated matrix and re-snaps the energy baseline
  /// (CmpSystem::warmup: measurement restarts, attachment stays).
  void resetWindow();

  /// Re-reads the tile-to-VM assignment from a new layout (the VM
  /// lifecycle engine calls this at churn boundaries, after threads
  /// repin). Accumulated matrices are kept — rows are VM identities, not
  /// placements — only the attribution of *future* events changes. The
  /// layout must keep the ledger's row count (pad numVms to the original
  /// upper bound). Only legal between work scopes (drained system).
  void retile(const VmLayout& layout);

  // --- Results ---
  std::uint64_t missCount(std::size_t row, std::size_t area,
                          MissClass cls) const {
    return missByClass_[cell(row, area)][static_cast<std::size_t>(cls)];
  }
  const Accumulator& missLatency(std::size_t row, std::size_t area) const {
    return missLatency_[cell(row, area)];
  }
  /// Miss-latency histogram per row (16 buckets over [0, 2048) cycles).
  const Histogram& latencyHistogram(std::size_t row) const {
    return latencyHist_[row];
  }
  const NetCell& net(std::size_t row, std::size_t area) const {
    return net_[cell(row, area)];
  }
  const CacheEnergyEvents& energy(std::size_t row, std::size_t area) const {
    return energy_[cell(row, area)];
  }
  std::uint64_t l1OccupiedLines(std::size_t row) const { return l1Occ_[row]; }
  std::uint64_t l2OccupiedLines(std::size_t row, std::size_t area) const {
    return l2Occ_[cell(row, area)];
  }
  std::uint64_t occupancySamples() const { return occSamples_; }

  /// Histogram geometry (report/export constants).
  static constexpr std::size_t kHistBuckets = 16;
  static constexpr double kHistMaxLatency = 2048.0;

 private:
  struct Scope {
    std::uint32_t row;
    std::uint32_t area;
  };

  std::size_t cell(std::size_t row, std::size_t area) const {
    return row * numAreas_ + area;
  }
  std::size_t rowOfTile(NodeId tile) const {
    return rowOfTile_[static_cast<std::size_t>(tile)];
  }
  Scope scopeOfTile(NodeId tile) const {
    const auto t = static_cast<std::size_t>(tile);
    return Scope{rowOfTile_[t], areaOfTile_[t]};
  }
  std::size_t rowOfVm(VmId vm) const {
    if (vm >= 0 && static_cast<std::size_t>(vm) < numVms_)
      return static_cast<std::size_t>(vm);
    return vm == kVmShared ? sharedRow() : otherRow();
  }
  /// Attribution row of a message: the VM of its origin tile (falling
  /// back to the sender for untagged messages).
  std::size_t rowOfMsg(const Message& msg) const;

  /// Moves the live-counter delta since the last boundary into the
  /// innermost scope's cell (`other` when no scope is open).
  void flushEnergy();

  std::size_t numVms_;
  std::size_t numAreas_;
  Tick occupancyEvery_;
  std::function<VmId(Addr)> vmOfPage_;
  std::vector<std::uint32_t> rowOfTile_;   // [tile]
  std::vector<std::uint32_t> areaOfTile_;  // [tile]
  std::uint32_t tilesMod_;                 // homeOf() divisor
  std::vector<std::uint64_t> layoutTiles_;  // [cell]

  // Matrices, indexed by cell(row, area).
  std::vector<std::array<std::uint64_t,
                         static_cast<std::size_t>(MissClass::kCount)>>
      missByClass_;
  std::vector<Accumulator> missLatency_;
  std::vector<NetCell> net_;
  std::vector<CacheEnergyEvents> energy_;
  std::vector<Histogram> latencyHist_;  // [row]
  std::vector<std::uint64_t> l1Occ_;    // [row]
  std::vector<std::uint64_t> l2Occ_;    // [cell]
  std::uint64_t occSamples_ = 0;

  const CacheEnergyEvents* live_ = nullptr;
  CacheEnergyEvents snap_{};
  std::vector<Scope> scopes_;
};

}  // namespace eecc
