#include "obs/exporters.h"

#include <cinttypes>
#include <cstdio>

#include "common/atomic_file.h"
#include "common/json.h"
#include "common/types.h"

namespace eecc {

namespace {

/// RFC-4180 CSV field quoting: quoted iff the value contains a comma,
/// quote or newline; embedded quotes double.
std::string csvField(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string hexBlock(Addr block) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%" PRIx64, block);
  return buf;
}

}  // namespace

bool writeStatsJson(const std::string& path,
                    const std::vector<MetricsDoc>& runs) {
  AtomicFile out(path);
  if (!out) return false;
  {
    JsonWriter w(out.get());
    w.beginObject();
    w.key("runs");
    w.beginArray();
    for (const MetricsDoc& run : runs) {
      w.beginObject();
      w.field("workload", run.workload);
      w.field("protocol", run.protocol);
      w.key("metrics");
      w.beginObject();
      for (const MetricRegistry::Sample& s : run.samples) {
        w.key(s.name);
        if (s.kind == MetricRegistry::Kind::Counter) w.value(s.u64);
        else w.value(s.f64);
      }
      w.endObject();
      if (!run.selfprof.empty()) {
        w.key("selfprof");
        w.beginObject();
        w.field("wallNs", run.selfprofWallNs);
        w.key("sections");
        w.beginArray();
        for (const SelfProfiler::Row& row : run.selfprof) {
          w.beginObject();
          w.field("path", row.path);
          w.field("calls", row.calls);
          w.field("selfNs", row.selfNs);
          w.endObject();
        }
        w.endArray();
        w.endObject();
      }
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  return out.commit();
}

bool writeStatsCsv(const std::string& path,
                   const std::vector<MetricsDoc>& runs) {
  AtomicFile out(path);
  if (!out) return false;
  std::FILE* f = out.get();
  std::fprintf(f, "workload,protocol,metric,value\n");
  for (const MetricsDoc& run : runs) {
    const std::string prefix =
        csvField(run.workload) + "," + csvField(run.protocol) + ",";
    for (const MetricRegistry::Sample& s : run.samples) {
      if (s.kind == MetricRegistry::Kind::Counter) {
        std::fprintf(f, "%s%s,%llu\n", prefix.c_str(),
                     csvField(s.name).c_str(),
                     static_cast<unsigned long long>(s.u64));
      } else {
        std::fprintf(f, "%s%s,%.17g\n", prefix.c_str(),
                     csvField(s.name).c_str(), s.f64);
      }
    }
  }
  return out.commit();
}

bool writeTimelineJson(const std::string& path, const TimelineSampler& tl,
                       const std::string& workload,
                       const std::string& protocol) {
  AtomicFile out(path);
  if (!out) return false;
  {
    JsonWriter w(out.get());
    w.beginObject();
    w.field("workload", workload);
    w.field("protocol", protocol);
    w.field("every", static_cast<std::uint64_t>(tl.period()));
    w.key("metrics");
    w.beginArray();
    for (const std::string& name : tl.names()) w.value(name);
    w.endArray();
    w.key("rows");
    w.beginArray();
    for (const TimelineSampler::Row& row : tl.rows()) {
      w.beginObject();
      w.field("tick", static_cast<std::uint64_t>(row.tick));
      w.key("values");
      w.beginArray();
      for (const double v : row.values) w.value(v);
      w.endArray();
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  return out.commit();
}

bool writeChromeTrace(const std::string& path, const RingTraceSink& sink) {
  AtomicFile out(path);
  if (!out) return false;
  {
    JsonWriter w(out.get());
    w.beginArray();

    // Process-name metadata so the two lanes are labeled in the viewer.
    for (const auto& [pid, name] :
         {std::pair<int, const char*>{0, "coherence transactions"},
          std::pair<int, const char*>{1, "network messages"}}) {
      w.beginObject();
      w.field("name", "process_name");
      w.field("ph", "M");
      w.field("pid", pid);
      w.field("tid", 0);
      w.key("args");
      w.beginObject();
      w.field("name", name);
      w.endObject();
      w.endObject();
    }

    sink.forEach([&w](const RingTraceSink::Record& r) {
      using Kind = RingTraceSink::Record::Kind;
      w.beginObject();
      switch (r.kind) {
        case Kind::Hit:
        case Kind::Miss: {
          const bool hit = r.kind == Kind::Hit;
          w.field("name", hit              ? "l1-hit"
                          : r.cls == MissClass::kCount
                              ? "queued-hit"
                              : missClassName(r.cls));
          w.field("cat", hit ? "hit" : "miss");
          w.field("ph", "X");
          w.field("ts", static_cast<std::uint64_t>(r.start));
          w.field("dur", static_cast<std::uint64_t>(r.end - r.start));
          w.field("pid", 0);
          w.field("tid", static_cast<std::int64_t>(r.tile));
          w.key("args");
          w.beginObject();
          w.field("block", hexBlock(r.block));
          w.field("type", r.access == AccessType::Read ? "R" : "W");
          if (!hit) w.field("links", static_cast<std::uint64_t>(r.links));
          w.endObject();
          break;
        }
        case Kind::Message:
        case Kind::Broadcast: {
          const bool bcast = r.kind == Kind::Broadcast;
          w.field("name", (bcast ? "bcast." : "msg.") +
                              std::to_string(r.msgType));
          w.field("cat", r.msgClass == 0 ? "control" : "data");
          w.field("ph", "X");
          w.field("ts", static_cast<std::uint64_t>(r.start));
          w.field("dur", static_cast<std::uint64_t>(r.end - r.start));
          w.field("pid", 1);
          w.field("tid", static_cast<std::int64_t>(r.tile));
          w.key("args");
          w.beginObject();
          w.field("block", hexBlock(r.block));
          if (bcast) {
            w.field("dst", "all");
          } else {
            w.field("dst", static_cast<std::int64_t>(r.dst));
            w.field("hops", static_cast<std::uint64_t>(r.links));
          }
          w.endObject();
          break;
        }
      }
      w.endObject();

      // Flow events stitch the transaction's causal tree: a flow starts
      // ("s") on the miss span and steps ("t", bound to the enclosing
      // slice) through every message carrying the same id. Perfetto draws
      // the arrows; records without a flow source keep flow == 0.
      if (r.flow != 0 && r.kind != Kind::Hit) {
        const bool miss = r.kind == Kind::Miss;
        w.beginObject();
        w.field("name", "txn");
        w.field("cat", "flow");
        w.field("ph", miss ? "s" : "t");
        if (!miss) w.field("bp", "e");
        w.field("id", r.flow);
        w.field("ts", static_cast<std::uint64_t>(r.start));
        w.field("pid", miss ? 0 : 1);
        w.field("tid", static_cast<std::int64_t>(r.tile));
        w.endObject();
      }
    });
    w.endArray();
  }
  return out.commit();
}

bool writeFoldedStacks(const std::string& path,
                       const std::vector<SelfProfiler::Row>& rows) {
  AtomicFile out(path);
  if (!out) return false;
  std::FILE* f = out.get();
  for (const SelfProfiler::Row& row : rows) {
    std::fprintf(f, "eecc;%s %llu\n", row.path.c_str(),
                 static_cast<unsigned long long>(row.selfNs));
  }
  return out.commit();
}

}  // namespace eecc
