#include "obs/report.h"

#include <cstdio>
#include <string>

#include <array>

#include "common/atomic_file.h"
#include "common/json.h"
#include "obs/ledger.h"
#include "obs/stage.h"

namespace eecc {

namespace {

/// Simulated core clock the mW gauges assume (EnergyModel::pjToMw).
constexpr double kGhz = 3.0;

/// The one number formatting of every report file: %.10g round-trips all
/// values we care about and is byte-stable for bit-identical inputs.
std::string fmt(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string cellName(const std::string& row, std::size_t area,
                     const char* leaf) {
  return "ledger." + row + "." + std::to_string(area) + "." + leaf;
}

/// Linear interpolation of the q-quantile inside the flight recorder's
/// uniform histogram (bucket width kHistMax / kHistBuckets). The top
/// bucket saturates — it holds every sample >= its lower edge — so a
/// quantile landing there has no knowable value. Instead of clamping to
/// a plausible-looking number (the old behavior silently understated
/// p99, sometimes below the exact mean), such a quantile reports the top
/// bucket's lower edge and sets `*saturated`; the writers render it as a
/// `>=` bound.
double histPercentile(
    const std::array<double, StageRecorder::kHistBuckets>& hist,
    double count, double q, bool* saturated) {
  *saturated = false;
  if (count <= 0) return 0.0;
  const double width =
      StageRecorder::kHistMax / StageRecorder::kHistBuckets;
  const double target = q * count;
  double cum = 0;
  for (std::size_t b = 0; b + 1 < StageRecorder::kHistBuckets; ++b) {
    if (hist[b] > 0 && cum + hist[b] >= target)
      return static_cast<double>(b) * width +
             width * (target - cum) / hist[b];
    cum += hist[b];
  }
  *saturated = true;
  return StageRecorder::kHistMax - width;
}

}  // namespace

std::vector<StatsRun> statsRunsFromJson(const JsonValue& doc) {
  std::vector<StatsRun> out;
  const JsonValue* runs = doc.find("runs");
  if (runs == nullptr || !runs->isArray()) return out;
  for (const JsonValue& r : runs->asArray()) {
    if (!r.isObject()) continue;
    StatsRun run;
    run.workload = r.stringOr("workload", "");
    run.protocol = r.stringOr("protocol", "");
    const JsonValue* metrics = r.find("metrics");
    if (metrics != nullptr && metrics->isObject())
      for (const auto& [name, v] : metrics->asObject())
        if (v.isNumber()) run.metrics.emplace(name, v.asNumber());
    out.push_back(std::move(run));
  }
  return out;
}

bool loadStatsRuns(const std::string& path, std::vector<StatsRun>& out,
                   std::string& error) {
  JsonValue doc;
  if (!jsonParseFile(path, doc, error)) return false;
  out = statsRunsFromJson(doc);
  if (out.empty()) {
    error = path + ": no runs (expected {\"runs\": [...]})";
    return false;
  }
  return true;
}

Report buildReport(const std::vector<StatsRun>& runs) {
  Report rep;

  // --- Figure 8: energy breakdown, normalized against Directory ---
  for (const StatsRun& run : runs) {
    EnergyBreakdownRow row;
    row.workload = run.workload;
    row.protocol = run.protocol;
    row.l1Pj = run.metric("energy.pj.cache.l1");
    row.l1DirPj = run.metric("energy.pj.cache.l1Dir");
    row.l2Pj = run.metric("energy.pj.cache.l2");
    row.l2DirPj = run.metric("energy.pj.cache.l2Dir");
    row.pointerPj = run.metric("energy.pj.cache.pointer");
    row.routingPj = run.metric("energy.pj.noc.routing");
    row.linkPj = run.metric("energy.pj.noc.link");
    // mW over `cycles` at kGhz back to pJ: pJ = mW * cycles / GHz.
    row.leakagePj = run.metric("energy.leakage.chipMw") *
                    run.metric("sys.cycles") / kGhz;
    rep.energy.push_back(row);
  }
  for (EnergyBreakdownRow& row : rep.energy) {
    // Normalization base: the workload's Directory run, else its first run.
    const EnergyBreakdownRow* base = nullptr;
    for (const EnergyBreakdownRow& cand : rep.energy) {
      if (cand.workload != row.workload) continue;
      if (base == nullptr || cand.protocol == "Directory") base = &cand;
      if (cand.protocol == "Directory") break;
    }
    row.normalized = (base != nullptr && base->totalPj() > 0.0)
                         ? row.totalPj() / base->totalPj()
                         : 0.0;
  }

  // --- Per-VM attribution + interference (ledger runs only) ---
  for (const StatsRun& run : runs) {
    if (!run.has("ledger.rows")) continue;
    const auto rows = static_cast<std::size_t>(run.metric("ledger.rows"));
    const auto vms = static_cast<std::size_t>(run.metric("ledger.vms"));
    const auto areas = static_cast<std::size_t>(run.metric("ledger.areas"));
    if (areas > rep.areas) rep.areas = areas;

    const auto label = [vms](std::size_t r) -> std::string {
      if (r < vms) return "vm" + std::to_string(r);
      return r == vms ? "shared" : "other";
    };

    // Chip-level denominators.
    double chipMisses = 0;
    const double chipDynamicPj = run.metric("energy.pj.cache.total") +
                                 run.metric("energy.pj.noc.total");
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t a = 0; a < areas; ++a)
        chipMisses += run.metric(cellName(label(r), a, "missLatency.count"));
    const double chipLeakMw = run.metric("energy.leakage.chipMw");
    const double occSamples = run.metric("ledger.occ.samples");
    const double chipLines =
        run.metric("cfg.tiles") *
        (run.metric("cfg.l1Entries") + run.metric("cfg.l2Entries"));

    double apportionedMw = 0;
    std::size_t otherIdx = rep.perVm.size();
    bool haveOther = false;
    for (std::size_t r = 0; r < rows; ++r) {
      PerVmRow row;
      row.workload = run.workload;
      row.protocol = run.protocol;
      row.row = label(r);
      double latSum = 0;
      double occLines = run.metric("ledger." + row.row + ".occ.l1Lines");
      for (std::size_t a = 0; a < areas; ++a) {
        row.tiles += run.metric(cellName(row.row, a, "tiles"));
        row.misses += run.metric(cellName(row.row, a, "missLatency.count"));
        latSum += run.metric(cellName(row.row, a, "missLatency.sum"));
        row.dynamicPj += run.metric(cellName(row.row, a, "pj.cache")) +
                         run.metric(cellName(row.row, a, "pj.noc"));
        occLines += run.metric(cellName(row.row, a, "occ.l2Lines"));
      }
      row.missShare = chipMisses > 0 ? row.misses / chipMisses : 0.0;
      row.missLatencyMean = row.misses > 0 ? latSum / row.misses : 0.0;
      row.dynamicShare =
          chipDynamicPj > 0 ? row.dynamicPj / chipDynamicPj : 0.0;
      row.occShare = (occSamples > 0 && chipLines > 0)
                         ? occLines / occSamples / chipLines
                         : 0.0;
      row.leakageMw = chipLeakMw * row.occShare;
      apportionedMw += row.leakageMw;
      for (std::size_t b = 0; b < AttributionLedger::kHistBuckets; ++b)
        row.latencyHist.push_back(
            run.metric("ledger." + row.row + ".hist." + std::to_string(b)));
      if (row.row == "other") {
        otherIdx = rep.perVm.size();
        haveOther = true;
      }
      rep.perVm.push_back(std::move(row));
    }
    // Leakage of unoccupied capacity lands in `other`, so the per-row
    // leakage sums exactly to the chip's leakage power.
    if (haveOther)
      rep.perVm[otherIdx].leakageMw += chipLeakMw - apportionedMw;

    for (std::size_t r = 0; r < rows; ++r) {
      InterferenceRow row;
      row.workload = run.workload;
      row.protocol = run.protocol;
      row.row = label(r);
      double total = 0;
      std::vector<double> flits(areas, 0.0);
      for (std::size_t a = 0; a < areas; ++a) {
        flits[a] = run.metric(cellName(row.row, a, "net.flits"));
        total += flits[a];
      }
      for (std::size_t a = 0; a < areas; ++a) {
        const double share = total > 0 ? flits[a] / total : 0.0;
        row.flitShareByArea.push_back(share);
        if (run.metric(cellName(row.row, a, "tiles")) == 0.0)
          row.remoteShare += share;
      }
      rep.interference.push_back(std::move(row));
    }
  }
  // --- Miss-latency stage decomposition (--stage-trace runs) ---
  // Per run and stage, pooled over miss classes: the per-class stage
  // accumulators and histograms of stage.<class>.<stage>.* reduce to one
  // mean/p50/p99 row per stage, in critical-path order.
  struct StageAgg {
    std::string workload;
    std::string protocol;
    std::array<double, kStageCount> mean{};
  };
  std::vector<StageAgg> stageAggs;
  for (const StatsRun& run : runs) {
    if (!run.has("stage.transactions")) continue;
    std::array<double, kStageCount> counts{};
    std::array<double, kStageCount> sums{};
    std::array<std::array<double, StageRecorder::kHistBuckets>, kStageCount>
        hists{};
    double totalSum = 0;
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const char* sn = stageName(static_cast<Stage>(s));
      for (std::size_t c = 0;
           c < static_cast<std::size_t>(MissClass::kCount); ++c) {
        const std::string base = std::string("stage.") +
                                 missClassName(static_cast<MissClass>(c)) +
                                 "." + sn;
        counts[s] += run.metric(base + ".lat.count");
        sums[s] += run.metric(base + ".lat.sum");
        for (std::size_t b = 0; b < StageRecorder::kHistBuckets; ++b)
          hists[s][b] += run.metric(base + ".hist." + std::to_string(b));
      }
      totalSum += sums[s];
    }
    StageAgg agg;
    agg.workload = run.workload;
    agg.protocol = run.protocol;
    for (std::size_t s = 0; s < kStageCount; ++s) {
      // The histograms hold participating (nonzero) samples only, so the
      // percentiles condition on the stage actually happening.
      double histTotal = 0;
      for (const double b : hists[s]) histTotal += b;
      StageLatencyRow row;
      row.workload = run.workload;
      row.protocol = run.protocol;
      row.stage = stageName(static_cast<Stage>(s));
      row.count = counts[s];
      row.sumCycles = sums[s];
      row.mean = counts[s] > 0 ? sums[s] / counts[s] : 0.0;
      row.p50 = histPercentile(hists[s], histTotal, 0.50, &row.p50Saturated);
      row.p99 = histPercentile(hists[s], histTotal, 0.99, &row.p99Saturated);
      row.share = totalSum > 0 ? sums[s] / totalSum : 0.0;
      agg.mean[s] = row.mean;
      rep.stageLatency.push_back(std::move(row));
    }
    stageAggs.push_back(std::move(agg));
  }
  // The decomposition verdict: against the workload's Directory run,
  // which stage's mean gap is the largest share of the protocol's total
  // miss-latency gap (ties resolve to the earliest stage).
  for (const StageAgg& agg : stageAggs) {
    if (agg.protocol == "Directory") continue;
    const StageAgg* base = nullptr;
    for (const StageAgg& cand : stageAggs)
      if (cand.workload == agg.workload && cand.protocol == "Directory") {
        base = &cand;
        break;
      }
    if (base == nullptr) continue;
    StageDominantRow row;
    row.workload = agg.workload;
    row.protocol = agg.protocol;
    row.base = base->protocol;
    std::size_t dom = 0;
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const double delta = agg.mean[s] - base->mean[s];
      row.totalDeltaCycles += delta;
      if (delta > agg.mean[dom] - base->mean[dom]) dom = s;
    }
    row.dominantStage = stageName(static_cast<Stage>(dom));
    row.stageDeltaCycles = agg.mean[dom] - base->mean[dom];
    rep.stageDominant.push_back(std::move(row));
  }

  // --- Scale-out rollups (runs recorded with --chips N) ---
  for (const StatsRun& run : runs) {
    if (!run.has("server.chips")) continue;
    ScaleoutSummaryRow sum;
    sum.workload = run.workload;
    sum.protocol = run.protocol;
    sum.chips = run.metric("server.chips");
    sum.churnApplied = run.metric("server.churnApplied");
    sum.boots = run.metric("server.boots");
    sum.shutdowns = run.metric("server.shutdowns");
    sum.migrationsStarted = run.metric("server.migrationsStarted");
    sum.migrationsCompleted = run.metric("server.migrationsCompleted");
    sum.storms = run.metric("server.storms");
    sum.totalVms = run.metric("server.totalVms");
    sum.messages = run.metric("interchip.messages");
    sum.flits = run.metric("interchip.flits");
    sum.remoteFetches = run.metric("interchip.remoteFetches");
    sum.migrationPages = run.metric("interchip.migrationPages");
    sum.latencyMean = run.metric("interchip.latency.mean");
    sum.interchipPj = run.metric("interchip.pj");
    sum.interchipMw = run.metric("interchip.mw");
    rep.scaleout.push_back(std::move(sum));

    for (std::size_t c = 0; c < static_cast<std::size_t>(
                                    run.metric("server.chips"));
         ++c) {
      const std::string p = "chip" + std::to_string(c) + ".";
      if (!run.has(p + "sys.cycles")) break;
      ScaleoutChipRow row;
      row.workload = run.workload;
      row.protocol = run.protocol;
      row.chip = c;
      row.cycles = run.metric(p + "sys.cycles");
      row.ops = run.metric(p + "sys.ops");
      row.throughput = run.metric(p + "sys.throughput");
      row.l1MissRate = run.metric(p + "proto.l1MissRate");
      row.nocFlits = run.metric(p + "net.linkFlits");
      row.dynamicPj = run.metric(p + "energy.pj.cache.total") +
                      run.metric(p + "energy.pj.noc.total");
      row.leakageMw = run.metric(p + "energy.leakage.chipMw");
      rep.scaleoutChips.push_back(std::move(row));
    }
  }
  return rep;
}

bool writeReportJson(const std::string& path, const Report& report) {
  AtomicFile out(path);
  if (!out) return false;
  {
    JsonWriter w(out.get());
    w.beginObject();
    w.field("areas", static_cast<std::uint64_t>(report.areas));
    w.key("energyBreakdown");
    w.beginArray();
    for (const EnergyBreakdownRow& r : report.energy) {
      w.beginObject();
      w.field("workload", r.workload);
      w.field("protocol", r.protocol);
      w.field("l1Pj", r.l1Pj);
      w.field("l1DirPj", r.l1DirPj);
      w.field("l2Pj", r.l2Pj);
      w.field("l2DirPj", r.l2DirPj);
      w.field("pointerPj", r.pointerPj);
      w.field("routingPj", r.routingPj);
      w.field("linkPj", r.linkPj);
      w.field("leakagePj", r.leakagePj);
      w.field("totalPj", r.totalPj());
      w.field("normalized", r.normalized);
      w.endObject();
    }
    w.endArray();
    w.key("perVm");
    w.beginArray();
    for (const PerVmRow& r : report.perVm) {
      w.beginObject();
      w.field("workload", r.workload);
      w.field("protocol", r.protocol);
      w.field("row", r.row);
      w.field("tiles", r.tiles);
      w.field("misses", r.misses);
      w.field("missShare", r.missShare);
      w.field("missLatencyMean", r.missLatencyMean);
      w.field("dynamicPj", r.dynamicPj);
      w.field("dynamicShare", r.dynamicShare);
      w.field("occShare", r.occShare);
      w.field("leakageMw", r.leakageMw);
      w.key("latencyHist");
      w.beginArray();
      for (const double v : r.latencyHist) w.value(v);
      w.endArray();
      w.endObject();
    }
    w.endArray();
    w.key("interference");
    w.beginArray();
    for (const InterferenceRow& r : report.interference) {
      w.beginObject();
      w.field("workload", r.workload);
      w.field("protocol", r.protocol);
      w.field("row", r.row);
      w.key("flitShareByArea");
      w.beginArray();
      for (const double v : r.flitShareByArea) w.value(v);
      w.endArray();
      w.field("remoteShare", r.remoteShare);
      w.endObject();
    }
    w.endArray();
    // Stage sections only for reports with flight-recorder runs, so
    // report.json output without --stage-trace is unchanged.
    if (!report.stageLatency.empty()) {
      w.key("stageLatency");
      w.beginArray();
      for (const StageLatencyRow& r : report.stageLatency) {
        w.beginObject();
        w.field("workload", r.workload);
        w.field("protocol", r.protocol);
        w.field("stage", r.stage);
        w.field("count", r.count);
        w.field("sumCycles", r.sumCycles);
        w.field("mean", r.mean);
        w.field("p50", r.p50);
        w.field("p99", r.p99);
        w.field("p50Saturated", r.p50Saturated);
        w.field("p99Saturated", r.p99Saturated);
        w.field("share", r.share);
        w.endObject();
      }
      w.endArray();
    }
    if (!report.stageDominant.empty()) {
      w.key("stageDominant");
      w.beginArray();
      for (const StageDominantRow& r : report.stageDominant) {
        w.beginObject();
        w.field("workload", r.workload);
        w.field("protocol", r.protocol);
        w.field("base", r.base);
        w.field("dominantStage", r.dominantStage);
        w.field("stageDeltaCycles", r.stageDeltaCycles);
        w.field("totalDeltaCycles", r.totalDeltaCycles);
        w.endObject();
      }
      w.endArray();
    }
    // Scale-out sections only for reports that have scale-out runs, so
    // single-chip report.json output is unchanged by the subsystem.
    if (!report.scaleout.empty()) {
      w.key("scaleout");
      w.beginArray();
      for (const ScaleoutSummaryRow& r : report.scaleout) {
        w.beginObject();
        w.field("workload", r.workload);
        w.field("protocol", r.protocol);
        w.field("chips", r.chips);
        w.field("churnApplied", r.churnApplied);
        w.field("boots", r.boots);
        w.field("shutdowns", r.shutdowns);
        w.field("migrationsStarted", r.migrationsStarted);
        w.field("migrationsCompleted", r.migrationsCompleted);
        w.field("storms", r.storms);
        w.field("totalVms", r.totalVms);
        w.field("interchipMessages", r.messages);
        w.field("interchipFlits", r.flits);
        w.field("remoteFetches", r.remoteFetches);
        w.field("migrationPages", r.migrationPages);
        w.field("interchipLatencyMean", r.latencyMean);
        w.field("interchipPj", r.interchipPj);
        w.field("interchipMw", r.interchipMw);
        w.endObject();
      }
      w.endArray();
      w.key("scaleoutChips");
      w.beginArray();
      for (const ScaleoutChipRow& r : report.scaleoutChips) {
        w.beginObject();
        w.field("workload", r.workload);
        w.field("protocol", r.protocol);
        w.field("chip", static_cast<std::uint64_t>(r.chip));
        w.field("cycles", r.cycles);
        w.field("ops", r.ops);
        w.field("throughput", r.throughput);
        w.field("l1MissRate", r.l1MissRate);
        w.field("nocFlits", r.nocFlits);
        w.field("dynamicPj", r.dynamicPj);
        w.field("leakageMw", r.leakageMw);
        w.endObject();
      }
      w.endArray();
    }
    w.endObject();
  }
  return out.commit();
}

bool writeStageLatencyCsv(const std::string& path, const Report& report) {
  AtomicFile out(path);
  if (!out) return false;
  std::FILE* f = out.get();
  std::fprintf(f,
               "workload,protocol,stage,count,sum_cycles,mean,p50,p99,"
               "p50_saturated,p99_saturated,share\n");
  for (const StageLatencyRow& r : report.stageLatency)
    std::fprintf(f, "%s,%s,%s,%s,%s,%s,%s,%s,%d,%d,%s\n",
                 r.workload.c_str(), r.protocol.c_str(), r.stage.c_str(),
                 fmt(r.count).c_str(), fmt(r.sumCycles).c_str(),
                 fmt(r.mean).c_str(), fmt(r.p50).c_str(),
                 fmt(r.p99).c_str(), r.p50Saturated ? 1 : 0,
                 r.p99Saturated ? 1 : 0, fmt(r.share).c_str());
  return out.commit();
}

bool writeScaleoutCsv(const std::string& path, const Report& report) {
  AtomicFile out(path);
  if (!out) return false;
  std::FILE* f = out.get();
  std::fprintf(f,
               "workload,protocol,scope,chips,churn_applied,boots,"
               "shutdowns,migrations_started,migrations_completed,storms,"
               "total_vms,ops,throughput,l1_miss_rate,noc_flits,"
               "dynamic_pj,leakage_mw,interchip_messages,interchip_flits,"
               "remote_fetches,migration_pages,interchip_latency_mean,"
               "interchip_pj,interchip_mw\n");
  // One `server` row per scale-out run, then its per-chip rollups (the
  // chip rows leave the server-only columns empty and vice versa).
  for (const ScaleoutSummaryRow& r : report.scaleout) {
    std::fprintf(f, "%s,%s,server,%s,%s,%s,%s,%s,%s,%s,%s,,,,,,,"
                    "%s,%s,%s,%s,%s,%s,%s\n",
                 r.workload.c_str(), r.protocol.c_str(), fmt(r.chips).c_str(),
                 fmt(r.churnApplied).c_str(), fmt(r.boots).c_str(),
                 fmt(r.shutdowns).c_str(), fmt(r.migrationsStarted).c_str(),
                 fmt(r.migrationsCompleted).c_str(), fmt(r.storms).c_str(),
                 fmt(r.totalVms).c_str(), fmt(r.messages).c_str(),
                 fmt(r.flits).c_str(), fmt(r.remoteFetches).c_str(),
                 fmt(r.migrationPages).c_str(), fmt(r.latencyMean).c_str(),
                 fmt(r.interchipPj).c_str(), fmt(r.interchipMw).c_str());
    for (const ScaleoutChipRow& c : report.scaleoutChips) {
      if (c.workload != r.workload || c.protocol != r.protocol) continue;
      std::fprintf(f, "%s,%s,chip%zu,,,,,,,,,%s,%s,%s,%s,%s,%s,,,,,,,\n",
                   c.workload.c_str(), c.protocol.c_str(), c.chip,
                   fmt(c.ops).c_str(), fmt(c.throughput).c_str(),
                   fmt(c.l1MissRate).c_str(), fmt(c.nocFlits).c_str(),
                   fmt(c.dynamicPj).c_str(), fmt(c.leakageMw).c_str());
    }
  }
  return out.commit();
}

bool writeEnergyBreakdownCsv(const std::string& path, const Report& report) {
  AtomicFile out(path);
  if (!out) return false;
  std::FILE* f = out.get();
  std::fprintf(f,
               "workload,protocol,l1_pj,l1_dir_pj,l2_pj,l2_dir_pj,"
               "pointer_pj,routing_pj,link_pj,leakage_pj,total_pj,"
               "normalized\n");
  for (const EnergyBreakdownRow& r : report.energy)
    std::fprintf(f, "%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n",
                 r.workload.c_str(), r.protocol.c_str(), fmt(r.l1Pj).c_str(),
                 fmt(r.l1DirPj).c_str(), fmt(r.l2Pj).c_str(),
                 fmt(r.l2DirPj).c_str(), fmt(r.pointerPj).c_str(),
                 fmt(r.routingPj).c_str(), fmt(r.linkPj).c_str(),
                 fmt(r.leakagePj).c_str(), fmt(r.totalPj()).c_str(),
                 fmt(r.normalized).c_str());
  return out.commit();
}

bool writePerVmCsv(const std::string& path, const Report& report) {
  AtomicFile out(path);
  if (!out) return false;
  std::FILE* f = out.get();
  std::fprintf(f,
               "workload,protocol,row,tiles,misses,miss_share,"
               "miss_latency_mean,dynamic_pj,dynamic_share,occ_share,"
               "leakage_mw");
  for (std::size_t b = 0; b < AttributionLedger::kHistBuckets; ++b)
    std::fprintf(f, ",hist_%zu", b);
  std::fprintf(f, "\n");
  for (const PerVmRow& r : report.perVm) {
    std::fprintf(f, "%s,%s,%s,%s,%s,%s,%s,%s,%s,%s,%s",
                 r.workload.c_str(), r.protocol.c_str(), r.row.c_str(),
                 fmt(r.tiles).c_str(), fmt(r.misses).c_str(),
                 fmt(r.missShare).c_str(), fmt(r.missLatencyMean).c_str(),
                 fmt(r.dynamicPj).c_str(), fmt(r.dynamicShare).c_str(),
                 fmt(r.occShare).c_str(), fmt(r.leakageMw).c_str());
    for (const double v : r.latencyHist)
      std::fprintf(f, ",%s", fmt(v).c_str());
    std::fprintf(f, "\n");
  }
  return out.commit();
}

bool writeInterferenceCsv(const std::string& path, const Report& report) {
  AtomicFile out(path);
  if (!out) return false;
  std::FILE* f = out.get();
  std::fprintf(f, "workload,protocol,row");
  for (std::size_t a = 0; a < report.areas; ++a)
    std::fprintf(f, ",area_%zu_share", a);
  std::fprintf(f, ",remote_share\n");
  for (const InterferenceRow& r : report.interference) {
    std::fprintf(f, "%s,%s,%s", r.workload.c_str(), r.protocol.c_str(),
                 r.row.c_str());
    for (std::size_t a = 0; a < report.areas; ++a)
      std::fprintf(f, ",%s",
                   a < r.flitShareByArea.size()
                       ? fmt(r.flitShareByArea[a]).c_str()
                       : "0");
    std::fprintf(f, ",%s\n", fmt(r.remoteShare).c_str());
  }
  return out.commit();
}

bool writeReportMarkdown(const std::string& path, const Report& report) {
  AtomicFile out(path);
  if (!out) return false;
  std::FILE* f = out.get();
  std::fprintf(f, "# EECC paper-figure report\n");

  std::fprintf(f,
               "\n## Energy breakdown (Figure 8)\n\n"
               "Dynamic + leakage energy over the measured window, in "
               "picojoules; `normalized` is against the Directory "
               "protocol's total for the same workload.\n\n");
  std::fprintf(f,
               "| workload | protocol | L1 | L1 dir | L2 | L2 dir | "
               "pointer | routing | link | leakage | total | normalized "
               "|\n");
  std::fprintf(f, "|---|---|---|---|---|---|---|---|---|---|---|---|\n");
  for (const EnergyBreakdownRow& r : report.energy)
    std::fprintf(f,
                 "| %s | %s | %s | %s | %s | %s | %s | %s | %s | %s | %s "
                 "| %s |\n",
                 r.workload.c_str(), r.protocol.c_str(), fmt(r.l1Pj).c_str(),
                 fmt(r.l1DirPj).c_str(), fmt(r.l2Pj).c_str(),
                 fmt(r.l2DirPj).c_str(), fmt(r.pointerPj).c_str(),
                 fmt(r.routingPj).c_str(), fmt(r.linkPj).c_str(),
                 fmt(r.leakagePj).c_str(), fmt(r.totalPj()).c_str(),
                 fmt(r.normalized).c_str());

  std::fprintf(f,
               "\n## Per-VM attribution\n\n"
               "Misses, dynamic energy and apportioned leakage per ledger "
               "row (leakage of unoccupied capacity is charged to "
               "`other`).\n\n");
  std::fprintf(f,
               "| workload | protocol | row | tiles | misses | miss share "
               "| mean latency | dynamic pJ | dynamic share | occ share | "
               "leakage mW |\n");
  std::fprintf(f, "|---|---|---|---|---|---|---|---|---|---|---|\n");
  for (const PerVmRow& r : report.perVm)
    std::fprintf(
        f, "| %s | %s | %s | %s | %s | %s | %s | %s | %s | %s | %s |\n",
        r.workload.c_str(), r.protocol.c_str(), r.row.c_str(),
        fmt(r.tiles).c_str(), fmt(r.misses).c_str(),
        fmt(r.missShare).c_str(), fmt(r.missLatencyMean).c_str(),
        fmt(r.dynamicPj).c_str(), fmt(r.dynamicShare).c_str(),
        fmt(r.occShare).c_str(), fmt(r.leakageMw).c_str());

  std::fprintf(f,
               "\n## Inter-VM interference (flit shares by area)\n\n"
               "Fraction of each row's NoC flits paid in each static chip "
               "area; `remote` is the fraction in areas where the row "
               "owns no tiles.\n\n");
  std::fprintf(f, "| workload | protocol | row |");
  for (std::size_t a = 0; a < report.areas; ++a)
    std::fprintf(f, " area %zu |", a);
  std::fprintf(f, " remote |\n|---|---|---|");
  for (std::size_t a = 0; a < report.areas; ++a) std::fprintf(f, "---|");
  std::fprintf(f, "---|\n");
  for (const InterferenceRow& r : report.interference) {
    std::fprintf(f, "| %s | %s | %s |", r.workload.c_str(),
                 r.protocol.c_str(), r.row.c_str());
    for (std::size_t a = 0; a < report.areas; ++a)
      std::fprintf(f, " %s |",
                   a < r.flitShareByArea.size()
                       ? fmt(r.flitShareByArea[a]).c_str()
                       : "0");
    std::fprintf(f, " %s |\n", fmt(r.remoteShare).c_str());
  }

  if (!report.stageLatency.empty()) {
    std::fprintf(f,
                 "\n## Miss-latency stage decomposition (flight "
                 "recorder)\n\n"
                 "Cycles per completed miss in each protocol stage "
                 "(`--stage-trace` runs; miss classes pooled, every "
                 "transaction contributes one sample per stage; p50/p99 "
                 "condition on the stage actually happening). The stage "
                 "sums reconcile exactly with the protocol's total miss "
                 "latency. A `>=` percentile landed in the histogram's "
                 "saturating top bucket: the true value is at least the "
                 "printed bound.\n\n");
    std::fprintf(f,
                 "| workload | protocol | stage | count | mean | p50 | "
                 "p99 | share |\n");
    std::fprintf(f, "|---|---|---|---|---|---|---|---|\n");
    const auto pct = [](double v, bool saturated) {
      return saturated ? ">=" + fmt(v) : fmt(v);
    };
    for (const StageLatencyRow& r : report.stageLatency)
      std::fprintf(f, "| %s | %s | %s | %s | %s | %s | %s | %s |\n",
                   r.workload.c_str(), r.protocol.c_str(), r.stage.c_str(),
                   fmt(r.count).c_str(), fmt(r.mean).c_str(),
                   pct(r.p50, r.p50Saturated).c_str(),
                   pct(r.p99, r.p99Saturated).c_str(),
                   fmt(r.share).c_str());
    if (!report.stageDominant.empty()) {
      std::fprintf(f,
                   "\n### Dominant stage vs Directory\n\n"
                   "Where each protocol's mean miss-latency gap against "
                   "the workload's Directory run comes from: the stage "
                   "with the largest mean-per-miss delta.\n\n");
      std::fprintf(f,
                   "| workload | protocol | total Δcycles | dominant "
                   "stage | stage Δcycles |\n");
      std::fprintf(f, "|---|---|---|---|---|\n");
      for (const StageDominantRow& r : report.stageDominant)
        std::fprintf(f, "| %s | %s | %s | %s | %s |\n", r.workload.c_str(),
                     r.protocol.c_str(), fmt(r.totalDeltaCycles).c_str(),
                     r.dominantStage.c_str(),
                     fmt(r.stageDeltaCycles).c_str());
    }
  }

  if (!report.scaleout.empty()) {
    std::fprintf(f,
                 "\n## Scale-out (multi-chip runs)\n\n"
                 "VM churn and inter-chip link traffic/energy per run, "
                 "then the per-chip rollups.\n\n");
    std::fprintf(f,
                 "| workload | protocol | chips | churn | boots | "
                 "shutdowns | migrations | storms | VMs | interchip msgs | "
                 "flits | remote fetches | latency | interchip mW |\n");
    std::fprintf(f, "|---|---|---|---|---|---|---|---|---|---|---|---|---|"
                    "---|\n");
    for (const ScaleoutSummaryRow& r : report.scaleout)
      std::fprintf(f,
                   "| %s | %s | %s | %s | %s | %s | %s/%s | %s | %s | %s | "
                   "%s | %s | %s | %s |\n",
                   r.workload.c_str(), r.protocol.c_str(),
                   fmt(r.chips).c_str(), fmt(r.churnApplied).c_str(),
                   fmt(r.boots).c_str(), fmt(r.shutdowns).c_str(),
                   fmt(r.migrationsCompleted).c_str(),
                   fmt(r.migrationsStarted).c_str(), fmt(r.storms).c_str(),
                   fmt(r.totalVms).c_str(), fmt(r.messages).c_str(),
                   fmt(r.flits).c_str(), fmt(r.remoteFetches).c_str(),
                   fmt(r.latencyMean).c_str(), fmt(r.interchipMw).c_str());
    std::fprintf(f,
                 "\n| workload | protocol | chip | ops | throughput | L1 "
                 "miss | NoC flits | dynamic pJ | leakage mW |\n");
    std::fprintf(f, "|---|---|---|---|---|---|---|---|---|\n");
    for (const ScaleoutChipRow& r : report.scaleoutChips)
      std::fprintf(f, "| %s | %s | %zu | %s | %s | %s | %s | %s | %s |\n",
                   r.workload.c_str(), r.protocol.c_str(), r.chip,
                   fmt(r.ops).c_str(), fmt(r.throughput).c_str(),
                   fmt(r.l1MissRate).c_str(), fmt(r.nocFlits).c_str(),
                   fmt(r.dynamicPj).c_str(), fmt(r.leakageMw).c_str());
  }
  return out.commit();
}

}  // namespace eecc
