#include "obs/selfprof.h"

#include <algorithm>

namespace eecc {

void SelfProfiler::install() {
  if (installed_) return;
  installed_ = true;
  selfprof_detail::gCurrent = this;
  selfprof_detail::gActive.fetch_add(1, std::memory_order_relaxed);
  wallStart_ = Clock::now();
}

void SelfProfiler::uninstall() {
  if (!installed_) return;
  wallNs_ += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           wallStart_)
          .count());
  selfprof_detail::gActive.fetch_sub(1, std::memory_order_relaxed);
  if (selfprof_detail::gCurrent == this) selfprof_detail::gCurrent = nullptr;
  installed_ = false;
}

void SelfProfiler::enterScope(ProfSection s) {
  if (depth_ < kMaxDepth) {
    Frame& f = stack_[depth_];
    f.sec = s;
    f.pathKey = (depth_ == 0 ? 0 : stack_[depth_ - 1].pathKey) |
                (static_cast<std::uint64_t>(static_cast<unsigned>(s) + 1)
                 << (8 * depth_));
    f.childNs = 0;
    f.t0 = Clock::now();
  }
  ++depth_;
}

void SelfProfiler::exitScope() {
  if (depth_ == 0) return;
  --depth_;
  if (depth_ >= kMaxDepth) return;  // folded into the parent frame
  const Frame& f = stack_[depth_];
  const auto elapsed = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           f.t0)
          .count());
  const std::uint64_t self =
      elapsed > f.childNs ? elapsed - f.childNs : 0;
  Cell& cell = paths_.at(f.pathKey);
  cell.calls += 1;
  cell.selfNs += self;
  if (depth_ > 0) stack_[depth_ - 1].childNs += elapsed;
}

std::uint64_t SelfProfiler::wallNs() const {
  if (!installed_) return wallNs_;
  return wallNs_ + static_cast<std::uint64_t>(
                       std::chrono::duration_cast<std::chrono::nanoseconds>(
                           Clock::now() - wallStart_)
                           .count());
}

namespace {

std::string pathString(std::uint64_t key) {
  std::string out;
  for (std::size_t d = 0; d < SelfProfiler::kMaxDepth; ++d) {
    const auto byte = static_cast<unsigned>((key >> (8 * d)) & 0xff);
    if (byte == 0) break;
    if (!out.empty()) out += ';';
    out += profSectionName(static_cast<ProfSection>(byte - 1));
  }
  return out;
}

}  // namespace

std::vector<SelfProfiler::Row> SelfProfiler::rows() const {
  std::vector<Row> out;
  paths_.forEach([&out](std::uint64_t key, const Cell& c) {
    out.push_back({pathString(key), c.calls, c.selfNs});
  });
  std::sort(out.begin(), out.end(),
            [](const Row& a, const Row& b) { return a.path < b.path; });
  return out;
}

std::vector<std::string> SelfProfiler::foldedStacks() const {
  std::vector<std::string> out;
  for (const Row& r : rows())
    out.push_back("eecc;" + r.path + " " + std::to_string(r.selfNs));
  return out;
}

}  // namespace eecc
