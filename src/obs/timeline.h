// TimelineSampler — periodic time series over registry metrics
// (DESIGN.md §10).
//
// Snapshots a selected set of MetricRegistry metrics every `every` cycles
// of simulated time into per-run rows. Driven by CmpSystem::run the same
// way the conformance sweeps are: the run loop is chunked at sample
// boundaries (a self-rescheduling queue event would keep the kernel
// non-empty and break the end-of-window drain), so sampling never
// perturbs event order and a run with a sampler attached is bit-identical
// to one without. One extra row is captured after the final drain.
//
// Cost model: a sample evaluates |selection| accessors — pure reads, no
// allocation beyond the row vector — so overhead is
// rows × |selection| ≈ (cycles/every) × metrics, independent of event
// rate. The default all-metrics selection on the 8x8 chip is ~600 reads
// per sample; at the default 10k-cycle period that is noise next to the
// ~10k+ events per chunk.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "obs/metric_registry.h"

namespace eecc {

class TimelineSampler {
 public:
  /// Samples `select` metrics (dotted registry names; empty = every
  /// registered metric) from `reg` every `every` cycles. The registry must
  /// outlive the sampler. Unknown names abort — a typo'd metric silently
  /// sampling nothing is worse than a crash.
  TimelineSampler(const MetricRegistry* reg, Tick every,
                  std::vector<std::string> select = {});

  Tick period() const { return every_; }

  /// Captures one row at simulated time `now` (idempotence is the
  /// caller's concern; CmpSystem::run never samples the same tick twice).
  void sample(Tick now);

  /// Column names, in row order.
  const std::vector<std::string>& names() const { return names_; }

  struct Row {
    Tick tick = 0;
    /// One value per names() entry; counters widen to double (exact up to
    /// 2^53, far beyond any run length the simulator reaches).
    std::vector<double> values;
  };
  const std::vector<Row>& rows() const { return rows_; }

 private:
  const MetricRegistry* reg_;
  Tick every_;
  std::vector<std::string> names_;
  std::vector<Row> rows_;
};

}  // namespace eecc
