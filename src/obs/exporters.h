// File exporters for the observability layer (DESIGN.md §10): the
// `--stats-json` / `--stats-csv` / `--timeline` / `--trace-out` outputs of
// eecc_sim. All JSON goes through common/json.h (escaped, comma-safe,
// non-finite -> null) and validates under `python3 -m json.tool`; the
// trace writer emits the Chrome trace_event array format, loadable in
// chrome://tracing and Perfetto.
#pragma once

#include <string>
#include <vector>

#include "obs/metric_registry.h"
#include "obs/selfprof.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace eecc {

/// One run's worth of metrics in a stats export (one per protocol when
/// eecc_sim sweeps several).
struct MetricsDoc {
  std::string workload;
  std::string protocol;
  std::vector<MetricRegistry::Sample> samples;
  /// Self-profiler attribution (--selfprof). Lands in its own "selfprof"
  /// section of the JSON, never under "metrics": wall-clock nanoseconds
  /// are inherently nondeterministic and must stay out of everything the
  /// determinism tests compare. Empty -> section omitted.
  std::vector<SelfProfiler::Row> selfprof;
  std::uint64_t selfprofWallNs = 0;
};

/// `{"runs": [{"workload", "protocol", "metrics": {name: value, ...}}]}`.
/// Counters are emitted as integers, gauges as doubles. Returns false when
/// the file cannot be opened (diagnostic on stderr).
bool writeStatsJson(const std::string& path,
                    const std::vector<MetricsDoc>& runs);

/// `workload,protocol,metric,value` rows, one per metric per run.
bool writeStatsCsv(const std::string& path,
                   const std::vector<MetricsDoc>& runs);

/// `{"every": N, "metrics": [...], "rows": [{"tick": T, "values": [...]}]}`.
bool writeTimelineJson(const std::string& path, const TimelineSampler& tl,
                       const std::string& workload,
                       const std::string& protocol);

/// Chrome trace_event JSON (array form). Transactions render as complete
/// ("X") spans on pid 0 with one thread per tile, named by MissClass;
/// messages as spans on pid 1, one thread per source node. Records whose
/// flow id is set (--stage-trace attaches the StageRecorder as the ring's
/// FlowSource) additionally carry flow events — a start ("s") on the miss
/// span and enclosing-slice steps ("t") on its messages — so Perfetto
/// draws each transaction's causal tree (an Arin broadcast invalidation
/// fans out visibly from its write miss). Opens in chrome://tracing and
/// ui.perfetto.dev.
bool writeChromeTrace(const std::string& path, const RingTraceSink& sink);

/// Flamegraph collapse format for the self-profiler (--selfprof): one
/// `eecc;<call;path> <selfNs>` line per row, ready for flamegraph.pl /
/// inferno / speedscope (docs/profiling.md).
bool writeFoldedStacks(const std::string& path,
                       const std::vector<SelfProfiler::Row>& rows);

}  // namespace eecc
