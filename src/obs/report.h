// Paper-figure report generator (DESIGN.md §11, tools/eecc_report).
//
// Consumes the stats-JSON files eecc_sim --stats-json writes (one
// metric-registry snapshot per protocol run) and reduces them to the
// figure-ready tables of the paper's evaluation section:
//
//  * Energy breakdown (Figure 8): per (workload, protocol), dynamic
//    energy split into the cache components (L1, L1 dir, L2, L2 dir,
//    pointer caches), NoC routing/link energy and the leakage energy of
//    the window, normalized against the Directory protocol's total for
//    the same workload.
//  * Per-VM attribution: per (workload, protocol, ledger row), miss
//    counts and shares, mean miss latency, dynamic energy and share,
//    and the chip leakage power apportioned by mean cache-occupancy
//    share (unoccupied capacity leaks into the `other` row, keeping the
//    per-row leakage an exact decomposition of energy.leakage.chipMw).
//  * Interference matrix: per ledger row, the fraction of its NoC flits
//    spent in each static chip area, plus the total fraction spent in
//    areas where the row owns no tiles ("remote share") — the server-
//    consolidation isolation question (can VM i's traffic burden VM j's
//    area?) as one number per VM.
//
// All emitted numbers go through a fixed %.10g formatting, so report
// files are byte-identical for bit-identical simulations (the golden
// tests and the EECC_JOBS determinism test rely on this).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace eecc {

class JsonValue;

/// One run (one protocol on one workload) of a stats-JSON file, with the
/// metric snapshot flattened to name → value.
struct StatsRun {
  std::string workload;
  std::string protocol;
  std::map<std::string, double> metrics;

  bool has(const std::string& name) const {
    return metrics.find(name) != metrics.end();
  }
  double metric(const std::string& name, double fallback = 0.0) const {
    const auto it = metrics.find(name);
    return it == metrics.end() ? fallback : it->second;
  }
};

/// Extracts the runs of a parsed stats document
/// (`{"runs": [{workload, protocol, metrics: {...}}]}`).
std::vector<StatsRun> statsRunsFromJson(const JsonValue& doc);

/// Reads and parses `path`; false + `error` on I/O or parse failure.
bool loadStatsRuns(const std::string& path, std::vector<StatsRun>& out,
                   std::string& error);

/// One (workload, protocol) row of the Figure 8 energy table. Energies in
/// picojoules over the measured window.
struct EnergyBreakdownRow {
  std::string workload;
  std::string protocol;
  double l1Pj = 0;
  double l1DirPj = 0;
  double l2Pj = 0;
  double l2DirPj = 0;
  double pointerPj = 0;
  double routingPj = 0;
  double linkPj = 0;
  double leakagePj = 0;  ///< energy.leakage.chipMw over the window.
  double totalPj() const {
    return l1Pj + l1DirPj + l2Pj + l2DirPj + pointerPj + routingPj +
           linkPj + leakagePj;
  }
  /// totalPj / the Directory run's totalPj for the same workload (the
  /// Figure 8 normalization; 1.0 for Directory itself).
  double normalized = 0;
};

/// One (workload, protocol, ledger row) of the per-VM attribution table.
struct PerVmRow {
  std::string workload;
  std::string protocol;
  std::string row;          ///< Ledger row label ("vm0".., "shared", "other").
  double tiles = 0;         ///< Tiles the layout assigns to this row.
  double misses = 0;        ///< L1 misses attributed to the row.
  double missShare = 0;     ///< misses / all attributed misses.
  double missLatencyMean = 0;
  double dynamicPj = 0;     ///< Cache + NoC dynamic energy of the row.
  double dynamicShare = 0;  ///< dynamicPj / chip dynamic total.
  double occShare = 0;      ///< Mean share of all cache lines occupied.
  double leakageMw = 0;     ///< Chip leakage apportioned by occShare.
  std::vector<double> latencyHist;  ///< 16-bucket miss-latency histogram.
};

/// One (workload, protocol, ledger row) of the interference matrix.
struct InterferenceRow {
  std::string workload;
  std::string protocol;
  std::string row;
  std::vector<double> flitShareByArea;  ///< Σ = 1 when the row has flits.
  double remoteShare = 0;  ///< Flits in areas where the row owns no tiles.
};

/// One chip of a scale-out run (eecc_sim --chips N). Scale-out stats
/// files carry the full per-chip snapshots under `chip<c>.`; this row is
/// the report's rollup of one chip.
struct ScaleoutChipRow {
  std::string workload;
  std::string protocol;
  std::size_t chip = 0;
  double cycles = 0;
  double ops = 0;
  double throughput = 0;
  double l1MissRate = 0;
  double nocFlits = 0;
  double dynamicPj = 0;   ///< Cache + NoC dynamic energy of the chip.
  double leakageMw = 0;
};

/// Server-level rollup of one scale-out run: VM churn tallies and the
/// inter-chip link's traffic/energy (the `server.*` and `interchip.*`
/// curated samples).
struct ScaleoutSummaryRow {
  std::string workload;
  std::string protocol;
  double chips = 0;
  double churnApplied = 0;
  double boots = 0;
  double shutdowns = 0;
  double migrationsStarted = 0;
  double migrationsCompleted = 0;
  double storms = 0;
  double totalVms = 0;
  double messages = 0;       ///< Inter-chip messages.
  double flits = 0;
  double remoteFetches = 0;
  double migrationPages = 0;
  double latencyMean = 0;    ///< Mean inter-chip message latency (cycles).
  double interchipPj = 0;
  double interchipMw = 0;
};

/// One (workload, protocol, stage) row of the miss-latency stage
/// decomposition (runs recorded with `eecc_sim --stage-trace`; miss
/// classes pooled — every completed transaction contributes one sample
/// per stage, zeros included, so `count` equals the run's transaction
/// count for every stage). p50/p99 are linear interpolations inside the
/// flight recorder's 16 x 64-cycle histogram buckets, which hold
/// *participating* (nonzero-latency) samples only — they answer "when
/// the stage happens, how long does it take"; the top bucket saturates
/// at 1024 cycles. When the quantile lands in (or beyond) that
/// saturating top bucket, the percentile's true value is unknown: the
/// row reports the top bucket's lower edge with the matching saturation
/// flag set, and the writers render it as a `>=` bound instead of a
/// plausible-looking exact number.
struct StageLatencyRow {
  std::string workload;
  std::string protocol;
  std::string stage;     ///< stageName() string ("request".."complete").
  double count = 0;      ///< Samples: completed miss transactions.
  double sumCycles = 0;  ///< Total cycles attributed to the stage.
  double mean = 0;       ///< sumCycles / count.
  double p50 = 0;
  double p99 = 0;
  bool p50Saturated = false;  ///< p50 is a lower bound (top bucket).
  bool p99Saturated = false;  ///< p99 is a lower bound (top bucket).
  double share = 0;      ///< sumCycles / all miss cycles of the run.
};

/// Stage-decomposition verdict against the workload's Directory run:
/// the stage whose mean-per-miss gap explains the largest part of the
/// protocol's total miss-latency gap (for DiCo-Arin this names the
/// broadcast invalidation/ack collection behind its write-miss cost).
struct StageDominantRow {
  std::string workload;
  std::string protocol;
  std::string base;              ///< Baseline protocol ("Directory").
  std::string dominantStage;
  double stageDeltaCycles = 0;   ///< Mean-per-miss gap from that stage.
  double totalDeltaCycles = 0;   ///< Total mean miss-latency gap.
};

struct Report {
  std::size_t areas = 0;  ///< Max area count across runs (matrix width).
  std::vector<EnergyBreakdownRow> energy;
  std::vector<PerVmRow> perVm;
  std::vector<InterferenceRow> interference;
  std::vector<StageLatencyRow> stageLatency;
  std::vector<StageDominantRow> stageDominant;
  std::vector<ScaleoutSummaryRow> scaleout;
  std::vector<ScaleoutChipRow> scaleoutChips;
};

/// Reduces the runs to the three tables. Runs without ledger metrics
/// still contribute energy rows; the per-VM and interference tables only
/// cover runs recorded with --ledger.
Report buildReport(const std::vector<StatsRun>& runs);

/// Writers. Each returns false (with a stderr diagnostic) when the file
/// cannot be opened. Deterministic output: fixed column order, fixed
/// %.10g number formatting, rows in input order.
bool writeReportJson(const std::string& path, const Report& report);
bool writeEnergyBreakdownCsv(const std::string& path, const Report& report);
bool writePerVmCsv(const std::string& path, const Report& report);
bool writeInterferenceCsv(const std::string& path, const Report& report);
/// Stage-decomposition table (flight-recorder runs); writes a header-only
/// file when no run carries stage metrics.
bool writeStageLatencyCsv(const std::string& path, const Report& report);
/// Scale-out table (server churn + inter-chip link + per-chip rollups);
/// writes a header-only file when no run is multi-chip.
bool writeScaleoutCsv(const std::string& path, const Report& report);
bool writeReportMarkdown(const std::string& path, const Report& report);

}  // namespace eecc
