#include "obs/metric_registry.h"

#include "common/check.h"

namespace eecc {

void MetricRegistry::addCounter(std::string name, CounterFn fn) {
  EECC_CHECK_MSG(static_cast<bool>(fn), "null counter accessor");
  const auto [it, inserted] = metrics_.emplace(
      std::move(name), Metric{Kind::Counter, std::move(fn), {}});
  EECC_CHECK_MSG(inserted, "duplicate metric name");
  (void)it;
}

void MetricRegistry::addGauge(std::string name, GaugeFn fn) {
  EECC_CHECK_MSG(static_cast<bool>(fn), "null gauge accessor");
  const auto [it, inserted] = metrics_.emplace(
      std::move(name), Metric{Kind::Gauge, {}, std::move(fn)});
  EECC_CHECK_MSG(inserted, "duplicate metric name");
  (void)it;
}

void MetricRegistry::addAccumulator(const std::string& prefix,
                                    const Accumulator* acc) {
  EECC_CHECK(acc != nullptr);
  addCounter(prefix + ".count", [acc] { return acc->count(); });
  addGauge(prefix + ".sum", [acc] { return acc->sum(); });
  addGauge(prefix + ".mean", [acc] { return acc->mean(); });
  addGauge(prefix + ".min", [acc] { return acc->min(); });
  addGauge(prefix + ".max", [acc] { return acc->max(); });
  addGauge(prefix + ".variance", [acc] { return acc->variance(); });
}

std::uint64_t MetricRegistry::counter(const std::string& name) const {
  const auto it = metrics_.find(name);
  EECC_CHECK_MSG(it != metrics_.end(), "unknown metric");
  EECC_CHECK_MSG(it->second.kind == Kind::Counter, "metric is not a counter");
  return it->second.counter();
}

double MetricRegistry::value(const std::string& name) const {
  const auto it = metrics_.find(name);
  EECC_CHECK_MSG(it != metrics_.end(), "unknown metric");
  return it->second.kind == Kind::Counter
             ? static_cast<double>(it->second.counter())
             : it->second.gauge();
}

std::vector<MetricRegistry::Sample> MetricRegistry::snapshot() const {
  std::vector<Sample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, m] : metrics_) {
    Sample s;
    s.name = name;
    s.kind = m.kind;
    if (m.kind == Kind::Counter) {
      s.u64 = m.counter();
      s.f64 = static_cast<double>(s.u64);
    } else {
      s.f64 = m.gauge();
    }
    out.push_back(std::move(s));
  }
  return out;
}

void MetricRegistry::forEachName(
    const std::function<void(const std::string&, Kind)>& fn) const {
  for (const auto& [name, m] : metrics_) fn(name, m.kind);
}

}  // namespace eecc
