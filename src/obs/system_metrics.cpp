#include "obs/system_metrics.h"

#include <optional>

#include "core/cmp_system.h"
#include "core/experiment.h"
#include "energy/energy_model.h"
#include "obs/ledger.h"
#include "obs/trace.h"
#include "protocols/protocol.h"
#include "protocols/protocol_stats.h"

namespace eecc {

namespace {

std::string idx(const std::string& prefix, std::size_t i) {
  return prefix + "." + std::to_string(i);
}

}  // namespace

void registerProtocolStats(MetricRegistry& reg, const std::string& prefix,
                           const ProtocolStats& stats) {
  const ProtocolStats* s = &stats;
  const auto counter = [&](const char* name, const std::uint64_t* field) {
    reg.addCounter(prefix + "." + name, [field] { return *field; });
  };
  counter("reads", &s->reads);
  counter("writes", &s->writes);
  counter("l1ReadHits", &s->l1ReadHits);
  counter("l1WriteHits", &s->l1WriteHits);
  counter("readMisses", &s->readMisses);
  counter("writeMisses", &s->writeMisses);
  counter("upgrades", &s->upgrades);
  counter("l2DataHits", &s->l2DataHits);
  counter("memoryFetches", &s->memoryFetches);
  counter("invalidationsSent", &s->invalidationsSent);
  counter("broadcastInvalidations", &s->broadcastInvalidations);
  counter("ownershipTransfers", &s->ownershipTransfers);
  counter("providershipTransfers", &s->providershipTransfers);
  counter("hintMessages", &s->hintMessages);
  counter("providerResolvedMisses", &s->providerResolvedMisses);
  counter("writebacks", &s->writebacks);
  counter("l2Evictions", &s->l2Evictions);
  counter("dirEvictionInvalidations", &s->dirEvictionInvalidations);

  for (std::size_t c = 0; c < static_cast<std::size_t>(MissClass::kCount);
       ++c) {
    const std::string base =
        prefix + ".miss." + missClassName(static_cast<MissClass>(c));
    reg.addCounter(base + ".count", [s, c] { return s->missByClass[c]; });
    reg.addAccumulator(base + ".latency", &s->latencyByClass[c]);
    reg.addAccumulator(base + ".links", &s->linksByClass[c]);
  }
  reg.addAccumulator(prefix + ".missLatency", &s->missLatency);

  reg.addGauge(prefix + ".l1MissRate", [s] { return s->l1MissRate(); });
  reg.addGauge(prefix + ".l2MissRate", [s] { return s->l2MissRate(); });
}

void registerProtocol(MetricRegistry& reg, const std::string& prefix,
                      const Protocol& proto) {
  registerProtocolStats(reg, prefix, proto.stats());
  const Protocol* p = &proto;
  reg.addCounter(prefix + ".unicastMessages",
                 [p] { return p->unicastMessages(); });
  reg.addCounter(prefix + ".interAreaMessages",
                 [p] { return p->interAreaMessages(); });
  reg.addGauge(prefix + ".interAreaFraction",
               [p] { return p->interAreaFraction(); });
  const auto& msgStats = proto.messageTypeStats();
  for (std::size_t t = 0; t < msgStats.size(); ++t) {
    const std::string base = idx(prefix + ".msg", t);
    reg.addCounter(base + ".count",
                   [p, t] { return p->messageTypeStats()[t].count; });
    reg.addCounter(base + ".links",
                   [p, t] { return p->messageTypeStats()[t].links; });
  }
  const auto& ddr = proto.ddrControllers();
  for (std::size_t i = 0; i < ddr.size(); ++i) {
    const DdrController* d = &ddr[i];
    const std::string base = idx("ddr", i);
    reg.addCounter(base + ".requests", [d] { return d->requests(); });
    reg.addCounter(base + ".rowHits", [d] { return d->rowHits(); });
    reg.addCounter(base + ".rowMisses", [d] { return d->rowMisses(); });
    reg.addCounter(base + ".rowConflicts", [d] { return d->rowConflicts(); });
  }
  // Chip-wide aggregates (timeline- and report-friendly: one column
  // instead of one per controller).
  const auto ddrTotal = [p](std::uint64_t (DdrController::*get)() const) {
    return [p, get] {
      std::uint64_t total = 0;
      for (const DdrController& d : p->ddrControllers()) total += (d.*get)();
      return total;
    };
  };
  reg.addCounter("ddr.total.requests", ddrTotal(&DdrController::requests));
  reg.addCounter("ddr.total.rowHits", ddrTotal(&DdrController::rowHits));
  reg.addCounter("ddr.total.rowMisses", ddrTotal(&DdrController::rowMisses));
  reg.addCounter("ddr.total.rowConflicts",
                 ddrTotal(&DdrController::rowConflicts));
}

void registerNocStats(MetricRegistry& reg, const std::string& prefix,
                      const NocStats& stats) {
  const NocStats* s = &stats;
  const auto counter = [&](const char* name, const std::uint64_t* field) {
    reg.addCounter(prefix + "." + name, [field] { return *field; });
  };
  counter("messages", &s->messages);
  counter("controlMessages", &s->controlMessages);
  counter("dataMessages", &s->dataMessages);
  counter("broadcasts", &s->broadcasts);
  counter("routings", &s->routings);
  counter("linkFlits", &s->linkFlits);
  counter("linksTraversed", &s->linksTraversed);
  reg.addAccumulator(prefix + ".unicastLatency", &s->unicastLatency);
  reg.addAccumulator(prefix + ".contentionWait", &s->contentionWait);
}

void registerCacheEnergy(MetricRegistry& reg, const std::string& prefix,
                         const CacheEnergyEvents& events) {
  const CacheEnergyEvents* e = &events;
  const auto counter = [&](const char* name, const std::uint64_t* field) {
    reg.addCounter(prefix + "." + name, [field] { return *field; });
  };
  counter("l1TagProbe", &e->l1TagProbe);
  counter("l1DataRead", &e->l1DataRead);
  counter("l1DataWrite", &e->l1DataWrite);
  counter("l1DirRead", &e->l1DirRead);
  counter("l1DirUpdate", &e->l1DirUpdate);
  counter("l2TagProbe", &e->l2TagProbe);
  counter("l2DataRead", &e->l2DataRead);
  counter("l2DataWrite", &e->l2DataWrite);
  counter("l2DirRead", &e->l2DirRead);
  counter("l2DirUpdate", &e->l2DirUpdate);
  counter("dirCacheProbe", &e->dirCacheProbe);
  counter("dirCacheUpdate", &e->dirCacheUpdate);
  counter("l1cProbe", &e->l1cProbe);
  counter("l1cUpdate", &e->l1cUpdate);
  counter("l2cProbe", &e->l2cProbe);
  counter("l2cUpdate", &e->l2cUpdate);
}

void registerEnergyModel(MetricRegistry& reg, const std::string& prefix,
                         const CmpSystem& sys) {
  // The model itself is a small value type of analytic constants — the
  // gauges capture a copy and apply it to the live counters on every read.
  const EnergyModel model(sys.protocol().kind(), chipParamsOf(sys.config()),
                          sys.protocol().kind() == ProtocolKind::Directory
                              ? sys.config().dirSharingCode
                              : SharingCode::FullMap);
  const CmpSystem* s = &sys;
  const auto cache = [s, model] {
    return model.cacheEnergy(s->protocol().energyEvents());
  };
  const auto noc = [s, model] {
    return model.nocEnergy(s->network().stats());
  };
  reg.addGauge(prefix + ".pj.cache.l1", [cache] { return cache().l1Pj; });
  reg.addGauge(prefix + ".pj.cache.l1Dir",
               [cache] { return cache().l1DirPj; });
  reg.addGauge(prefix + ".pj.cache.l2", [cache] { return cache().l2Pj; });
  reg.addGauge(prefix + ".pj.cache.l2Dir",
               [cache] { return cache().l2DirPj; });
  reg.addGauge(prefix + ".pj.cache.pointer",
               [cache] { return cache().pointerPj; });
  reg.addGauge(prefix + ".pj.cache.total",
               [cache] { return cache().total(); });
  reg.addGauge(prefix + ".pj.noc.routing",
               [noc] { return noc().routingPj; });
  reg.addGauge(prefix + ".pj.noc.link", [noc] { return noc().linkPj; });
  reg.addGauge(prefix + ".pj.noc.total", [noc] { return noc().total(); });
  reg.addGauge(prefix + ".mw.cache", [s, cache] {
    return EnergyModel::pjToMw(cache().total(), s->cycles());
  });
  reg.addGauge(prefix + ".mw.link", [s, noc] {
    return EnergyModel::pjToMw(noc().linkPj, s->cycles());
  });
  reg.addGauge(prefix + ".mw.routing", [s, noc] {
    return EnergyModel::pjToMw(noc().routingPj, s->cycles());
  });
  reg.addGauge(prefix + ".mw.totalDynamic", [s, cache, noc] {
    return EnergyModel::pjToMw(cache().total() + noc().total(), s->cycles());
  });
  const double tiles = static_cast<double>(sys.config().tiles());
  reg.addGauge(prefix + ".leakage.tagPerTileMw",
               [model] { return model.tagLeakagePerTileMw(); });
  reg.addGauge(prefix + ".leakage.totalPerTileMw",
               [model] { return model.totalLeakagePerTileMw(); });
  reg.addGauge(prefix + ".leakage.chipMw", [model, tiles] {
    return model.totalLeakagePerTileMw() * tiles;
  });
}

void registerLedger(MetricRegistry& reg, const AttributionLedger& ledger,
                    const CmpSystem* sys) {
  const AttributionLedger* l = &ledger;
  // Per-cell dynamic picojoules use the same analytic model as the
  // chip-level energy.pj.* gauges, applied to the cell's event counts —
  // the report's per-VM energy shares then need no model reconstruction
  // and sum to the chip totals (cacheEnergy is linear in the counts).
  std::optional<EnergyModel> model;
  if (sys != nullptr)
    model.emplace(sys->protocol().kind(), chipParamsOf(sys->config()),
                  sys->protocol().kind() == ProtocolKind::Directory
                      ? sys->config().dirSharingCode
                      : SharingCode::FullMap);
  reg.addCounter("ledger.vms",
                 [l] { return static_cast<std::uint64_t>(l->numVms()); });
  reg.addCounter("ledger.areas",
                 [l] { return static_cast<std::uint64_t>(l->numAreas()); });
  reg.addCounter("ledger.rows",
                 [l] { return static_cast<std::uint64_t>(l->rows()); });
  reg.addCounter("ledger.occ.samples",
                 [l] { return l->occupancySamples(); });
  for (std::size_t row = 0; row < l->rows(); ++row) {
    const std::string rbase = "ledger." + l->rowLabel(row);
    reg.addCounter(rbase + ".occ.l1Lines",
                   [l, row] { return l->l1OccupiedLines(row); });
    for (std::size_t b = 0; b < AttributionLedger::kHistBuckets; ++b)
      reg.addCounter(idx(rbase + ".hist", b), [l, row, b] {
        return l->latencyHistogram(row).buckets()[b];
      });
    for (std::size_t a = 0; a < l->numAreas(); ++a) {
      const std::string base = idx(rbase, a);
      reg.addCounter(base + ".tiles",
                     [l, row, a] { return l->layoutTiles(row, a); });
      for (std::size_t c = 0;
           c < static_cast<std::size_t>(MissClass::kCount); ++c) {
        reg.addCounter(
            base + ".miss." + missClassName(static_cast<MissClass>(c)) +
                ".count",
            [l, row, a, c] {
              return l->missCount(row, a, static_cast<MissClass>(c));
            });
      }
      reg.addAccumulator(base + ".missLatency", &l->missLatency(row, a));
      reg.addCounter(base + ".net.messages",
                     [l, row, a] { return l->net(row, a).messages; });
      reg.addCounter(base + ".net.broadcasts",
                     [l, row, a] { return l->net(row, a).broadcasts; });
      reg.addCounter(base + ".net.hops",
                     [l, row, a] { return l->net(row, a).hops; });
      reg.addCounter(base + ".net.flits",
                     [l, row, a] { return l->net(row, a).flits; });
      reg.addCounter(base + ".net.routings",
                     [l, row, a] { return l->net(row, a).routings; });
      for (const EnergyEventField& f : energyEventFields())
        reg.addCounter(base + ".energy." + f.name,
                       [l, row, a, field = f.field] {
                         return l->energy(row, a).*field;
                       });
      reg.addCounter(base + ".occ.l2Lines",
                     [l, row, a] { return l->l2OccupiedLines(row, a); });
      if (model.has_value()) {
        reg.addGauge(base + ".pj.cache", [l, row, a, m = *model] {
          return m.cacheEnergy(l->energy(row, a)).total();
        });
        reg.addGauge(base + ".pj.noc", [l, row, a, m = *model] {
          const AttributionLedger::NetCell& n = l->net(row, a);
          return static_cast<double>(n.routings) * m.routingPj() +
                 static_cast<double>(n.flits) * m.flitLinkPj();
        });
      }
    }
  }
}

void registerSystem(MetricRegistry& reg, const CmpSystem& sys) {
  const CmpSystem* s = &sys;
  reg.addCounter("sys.cycles",
                 [s] { return static_cast<std::uint64_t>(s->cycles()); });
  reg.addCounter("sys.ops", [s] { return s->opsCompleted(); });
  reg.addCounter("sys.events", [s] { return s->events().executedEvents(); });
  reg.addGauge("sys.throughput", [s] { return s->throughput(); });
  for (NodeId t = 0; t < s->config().tiles(); ++t) {
    reg.addCounter(idx("tile", static_cast<std::size_t>(t)) + ".core.opsDone",
                   [s, t] { return s->opsCompleted(t); });
  }
  // Static geometry, so exported stats files are self-describing (the
  // report generator reconstructs per-VM shares from these).
  const auto constant = [&](const char* name, std::uint64_t v) {
    reg.addCounter(name, [v] { return v; });
  };
  constant("cfg.tiles", static_cast<std::uint64_t>(s->config().tiles()));
  constant("cfg.areas", s->config().numAreas);
  constant("cfg.l1Entries", s->config().l1.entries);
  constant("cfg.l2Entries", s->config().l2.entries);
  registerProtocol(reg, "proto", sys.protocol());
  registerNocStats(reg, "net", sys.network().stats());
  registerCacheEnergy(reg, "energy", sys.protocol().energyEvents());
  registerEnergyModel(reg, "energy", sys);
}

void registerTraceSink(MetricRegistry& reg, const RingTraceSink& sink) {
  const RingTraceSink* t = &sink;
  reg.addCounter("trace.recorded", [t] { return t->recorded(); });
  reg.addCounter("trace.retained",
                 [t] { return static_cast<std::uint64_t>(t->size()); });
  reg.addCounter("trace.dropped", [t] { return t->dropped(); });
  reg.addCounter("trace.capacity",
                 [t] { return static_cast<std::uint64_t>(t->capacity()); });
}

}  // namespace eecc
