#include "obs/system_metrics.h"

#include "core/cmp_system.h"
#include "protocols/protocol.h"
#include "protocols/protocol_stats.h"

namespace eecc {

namespace {

std::string idx(const std::string& prefix, std::size_t i) {
  return prefix + "." + std::to_string(i);
}

}  // namespace

void registerProtocolStats(MetricRegistry& reg, const std::string& prefix,
                           const ProtocolStats& stats) {
  const ProtocolStats* s = &stats;
  const auto counter = [&](const char* name, const std::uint64_t* field) {
    reg.addCounter(prefix + "." + name, [field] { return *field; });
  };
  counter("reads", &s->reads);
  counter("writes", &s->writes);
  counter("l1ReadHits", &s->l1ReadHits);
  counter("l1WriteHits", &s->l1WriteHits);
  counter("readMisses", &s->readMisses);
  counter("writeMisses", &s->writeMisses);
  counter("upgrades", &s->upgrades);
  counter("l2DataHits", &s->l2DataHits);
  counter("memoryFetches", &s->memoryFetches);
  counter("invalidationsSent", &s->invalidationsSent);
  counter("broadcastInvalidations", &s->broadcastInvalidations);
  counter("ownershipTransfers", &s->ownershipTransfers);
  counter("providershipTransfers", &s->providershipTransfers);
  counter("hintMessages", &s->hintMessages);
  counter("providerResolvedMisses", &s->providerResolvedMisses);
  counter("writebacks", &s->writebacks);
  counter("l2Evictions", &s->l2Evictions);
  counter("dirEvictionInvalidations", &s->dirEvictionInvalidations);

  for (std::size_t c = 0; c < static_cast<std::size_t>(MissClass::kCount);
       ++c) {
    const std::string base =
        prefix + ".miss." + missClassName(static_cast<MissClass>(c));
    reg.addCounter(base + ".count", [s, c] { return s->missByClass[c]; });
    reg.addAccumulator(base + ".latency", &s->latencyByClass[c]);
    reg.addAccumulator(base + ".links", &s->linksByClass[c]);
  }
  reg.addAccumulator(prefix + ".missLatency", &s->missLatency);

  reg.addGauge(prefix + ".l1MissRate", [s] { return s->l1MissRate(); });
  reg.addGauge(prefix + ".l2MissRate", [s] { return s->l2MissRate(); });
}

void registerProtocol(MetricRegistry& reg, const std::string& prefix,
                      const Protocol& proto) {
  registerProtocolStats(reg, prefix, proto.stats());
  const Protocol* p = &proto;
  reg.addCounter(prefix + ".unicastMessages",
                 [p] { return p->unicastMessages(); });
  reg.addCounter(prefix + ".interAreaMessages",
                 [p] { return p->interAreaMessages(); });
  reg.addGauge(prefix + ".interAreaFraction",
               [p] { return p->interAreaFraction(); });
  const auto& msgStats = proto.messageTypeStats();
  for (std::size_t t = 0; t < msgStats.size(); ++t) {
    const std::string base = idx(prefix + ".msg", t);
    reg.addCounter(base + ".count",
                   [p, t] { return p->messageTypeStats()[t].count; });
    reg.addCounter(base + ".links",
                   [p, t] { return p->messageTypeStats()[t].links; });
  }
  const auto& ddr = proto.ddrControllers();
  for (std::size_t i = 0; i < ddr.size(); ++i) {
    const DdrController* d = &ddr[i];
    const std::string base = idx("ddr", i);
    reg.addCounter(base + ".requests", [d] { return d->requests(); });
    reg.addCounter(base + ".rowHits", [d] { return d->rowHits(); });
    reg.addCounter(base + ".rowMisses", [d] { return d->rowMisses(); });
    reg.addCounter(base + ".rowConflicts", [d] { return d->rowConflicts(); });
  }
}

void registerNocStats(MetricRegistry& reg, const std::string& prefix,
                      const NocStats& stats) {
  const NocStats* s = &stats;
  const auto counter = [&](const char* name, const std::uint64_t* field) {
    reg.addCounter(prefix + "." + name, [field] { return *field; });
  };
  counter("messages", &s->messages);
  counter("controlMessages", &s->controlMessages);
  counter("dataMessages", &s->dataMessages);
  counter("broadcasts", &s->broadcasts);
  counter("routings", &s->routings);
  counter("linkFlits", &s->linkFlits);
  counter("linksTraversed", &s->linksTraversed);
  reg.addAccumulator(prefix + ".unicastLatency", &s->unicastLatency);
  reg.addAccumulator(prefix + ".contentionWait", &s->contentionWait);
}

void registerCacheEnergy(MetricRegistry& reg, const std::string& prefix,
                         const CacheEnergyEvents& events) {
  const CacheEnergyEvents* e = &events;
  const auto counter = [&](const char* name, const std::uint64_t* field) {
    reg.addCounter(prefix + "." + name, [field] { return *field; });
  };
  counter("l1TagProbe", &e->l1TagProbe);
  counter("l1DataRead", &e->l1DataRead);
  counter("l1DataWrite", &e->l1DataWrite);
  counter("l1DirRead", &e->l1DirRead);
  counter("l1DirUpdate", &e->l1DirUpdate);
  counter("l2TagProbe", &e->l2TagProbe);
  counter("l2DataRead", &e->l2DataRead);
  counter("l2DataWrite", &e->l2DataWrite);
  counter("l2DirRead", &e->l2DirRead);
  counter("l2DirUpdate", &e->l2DirUpdate);
  counter("dirCacheProbe", &e->dirCacheProbe);
  counter("dirCacheUpdate", &e->dirCacheUpdate);
  counter("l1cProbe", &e->l1cProbe);
  counter("l1cUpdate", &e->l1cUpdate);
  counter("l2cProbe", &e->l2cProbe);
  counter("l2cUpdate", &e->l2cUpdate);
}

void registerSystem(MetricRegistry& reg, const CmpSystem& sys) {
  const CmpSystem* s = &sys;
  reg.addCounter("sys.cycles",
                 [s] { return static_cast<std::uint64_t>(s->cycles()); });
  reg.addCounter("sys.ops", [s] { return s->opsCompleted(); });
  reg.addCounter("sys.events", [s] { return s->events().executedEvents(); });
  reg.addGauge("sys.throughput", [s] { return s->throughput(); });
  for (NodeId t = 0; t < s->config().tiles(); ++t) {
    reg.addCounter(idx("tile", static_cast<std::size_t>(t)) + ".core.opsDone",
                   [s, t] { return s->opsCompleted(t); });
  }
  registerProtocol(reg, "proto", sys.protocol());
  registerNocStats(reg, "net", sys.network().stats());
  registerCacheEnergy(reg, "energy", sys.protocol().energyEvents());
}

}  // namespace eecc
