#include "obs/timeline.h"

#include "common/check.h"

namespace eecc {

TimelineSampler::TimelineSampler(const MetricRegistry* reg, Tick every,
                                 std::vector<std::string> select)
    : reg_(reg), every_(every > 0 ? every : 10'000) {
  EECC_CHECK(reg_ != nullptr);
  if (select.empty()) {
    reg_->forEachName([this](const std::string& name, MetricRegistry::Kind) {
      names_.push_back(name);
    });
  } else {
    for (std::string& name : select) {
      EECC_CHECK_MSG(reg_->contains(name), "unknown timeline metric");
      names_.push_back(std::move(name));
    }
  }
}

void TimelineSampler::sample(Tick now) {
  Row row;
  row.tick = now;
  row.values.reserve(names_.size());
  for (const std::string& name : names_)
    row.values.push_back(reg_->value(name));
  rows_.push_back(std::move(row));
}

}  // namespace eecc
