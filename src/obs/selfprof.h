// Simulator self-profiler (DESIGN.md §16).
//
// Answers "where does the *simulator's own* wall-time go?" — the
// companion question to the flight recorder's "where do the *modeled*
// cycles go?". ProfScope is a scoped steady_clock timer dropped into the
// simulator's hot components (event-kernel pop/dispatch, the
// table-engine interpreter, NoC send and batch drain, cache lookup and
// victim selection); nested scopes attribute self-time exclusively, so
// the per-section numbers sum to an attribution table and nest into
// call-path rows exportable as folded stacks for flamegraph tooling
// (docs/profiling.md).
//
// Cost contract: the profiler is OFF in every normal run. A detached
// ProfScope costs one relaxed atomic load and one predicted-untaken
// branch (bench/micro_stage_trace gates this at >= 0.97x the un-hooked
// hot path, like every other observation hook). When installed it calls
// steady_clock twice per scope — real observer overhead on sub-10ns
// scopes like a cache probe, which is why self-profiled wall-times are
// *excluded* from determinism comparisons and reported in their own
// stats section, never mixed into simulation metrics.
//
// Threading: experiments run concurrently on the EECC_JOBS pool, so the
// current profiler is thread-local — install() binds this profiler to
// the calling thread (the one that runs the experiment's event loop);
// the global active count only makes the detached fast path cheap.
//
// This header is dependency-light on purpose: sim/event_queue.h includes
// it, so it must not pull in protocol or obs machinery.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_hash.h"

namespace eecc {

/// Instrumented simulator components. Section names are dotted so call
/// paths join into flamegraph frames ("kernel.dispatch;table.interpret").
enum class ProfSection : std::uint8_t {
  KernelPop,       ///< EventQueue::runOne — earliest-event extraction.
  KernelDispatch,  ///< EventQueue::runOne — handler invocation.
  NocSend,         ///< Network::send — routing, timing, delivery setup.
  NocDrain,        ///< Network batch-delivery ring drain.
  TableInterpret,  ///< Protocol transition-table interpreter.
  CacheLookup,     ///< CacheArray::find probes.
  CacheVictim,     ///< CacheArray victim selection.
  kCount
};

inline const char* profSectionName(ProfSection s) {
  switch (s) {
    case ProfSection::KernelPop: return "kernel.pop";
    case ProfSection::KernelDispatch: return "kernel.dispatch";
    case ProfSection::NocSend: return "noc.send";
    case ProfSection::NocDrain: return "noc.drain";
    case ProfSection::TableInterpret: return "table.interpret";
    case ProfSection::CacheLookup: return "cache.lookup";
    case ProfSection::CacheVictim: return "cache.victim";
    case ProfSection::kCount: break;
  }
  return "?";
}

class SelfProfiler;

namespace selfprof_detail {
/// Non-zero while any thread has a profiler installed; the first word a
/// detached ProfScope reads. Relaxed everywhere — it only gates whether
/// the thread-local lookup is worth doing.
inline std::atomic<int> gActive{0};
inline thread_local SelfProfiler* gCurrent = nullptr;
}  // namespace selfprof_detail

/// Wall-time attribution for one experiment. install()/uninstall() wrap
/// the experiment's event loop on its own thread; rows() and
/// foldedStacks() extract the table afterwards.
class SelfProfiler {
 public:
  using Clock = std::chrono::steady_clock;

  /// Call-path nesting deeper than this is folded into the parent frame
  /// (seven sections; real nesting is kernel.dispatch > noc/table > cache,
  /// depth 3).
  static constexpr std::size_t kMaxDepth = 8;

  SelfProfiler() { paths_.reserve(64); }
  ~SelfProfiler() { uninstall(); }
  SelfProfiler(const SelfProfiler&) = delete;
  SelfProfiler& operator=(const SelfProfiler&) = delete;

  /// Binds this profiler to the calling thread's ProfScopes.
  void install();
  /// Unbinds; wall() stops accumulating. Idempotent.
  void uninstall();
  bool installed() const { return installed_; }

  static SelfProfiler* current() { return selfprof_detail::gCurrent; }
  static bool anyActive() {
    return selfprof_detail::gActive.load(std::memory_order_relaxed) != 0;
  }

  // --- ProfScope driver (out of line: only runs when installed) ---
  void enterScope(ProfSection s);
  void exitScope();

  /// One aggregated call path, exclusive of nested instrumented scopes.
  struct Row {
    std::string path;  ///< "kernel.dispatch;table.interpret"
    std::uint64_t calls = 0;
    std::uint64_t selfNs = 0;
  };
  /// All call paths, sorted by path string (deterministic output order —
  /// the timed values themselves are wall-clock and never compared).
  std::vector<Row> rows() const;
  /// Total wall-time between install() and uninstall(), nanoseconds.
  std::uint64_t wallNs() const;
  /// Flamegraph collapse format, one counted stack per line:
  /// "eecc;kernel.dispatch;table.interpret 1234567" (value = self ns).
  std::vector<std::string> foldedStacks() const;

 private:
  struct Frame {
    ProfSection sec = ProfSection::kCount;
    std::uint64_t pathKey = 0;
    Clock::time_point t0{};
    std::uint64_t childNs = 0;
  };
  struct Cell {
    std::uint64_t calls = 0;
    std::uint64_t selfNs = 0;
  };

  bool installed_ = false;
  Clock::time_point wallStart_{};
  std::uint64_t wallNs_ = 0;
  std::size_t depth_ = 0;
  std::array<Frame, kMaxDepth> stack_{};
  /// Aggregates keyed by the packed call path: byte i holds
  /// (section at depth i) + 1, root in the low byte.
  FlatHash<Cell> paths_;
};

/// RAII timing scope. Constructed with its section at every hot-path
/// site; free when no profiler is installed anywhere.
class ProfScope {
 public:
  explicit ProfScope(ProfSection s) {
    if (SelfProfiler::anyActive()) [[unlikely]] {
      prof_ = SelfProfiler::current();
      if (prof_ != nullptr) prof_->enterScope(s);
    }
  }
  ~ProfScope() {
    if (prof_ != nullptr) [[unlikely]]
      prof_->exitScope();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  SelfProfiler* prof_ = nullptr;
};

}  // namespace eecc
