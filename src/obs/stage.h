// Miss-path flight recorder (DESIGN.md §16).
//
// StageRecorder decomposes every completed miss transaction into the
// protocol-level stages its latency was spent in: request routing, home /
// owner service occupancy, invalidation fan-out, acknowledgement
// collection, data return, memory fetch, the inter-chip round trip, and
// completion. The protocol engines drive it through three hooks behind
// the same `[[unlikely]]`-guarded null-pointer contract as the trace sink
// and the check hooks (detached recording is free):
//
//  * begin(block)        — the miss transaction enters the miss path
//                          (Protocol::access, under the line lock).
//  * mark(block, stage)  — attributes the interval since the previous
//                          mark to `stage`. Called at the terminal event
//                          of each stage: a request's arrival at its
//                          serving node marks Request, the serve-delay
//                          lambda marks Service, an invalidation's
//                          arrival marks Fanout, and so on. Marks for
//                          blocks with no in-flight transaction are
//                          silent no-ops — background traffic
//                          (writebacks, hints, directory evictions,
//                          post-completion unblocks) never records.
//  * end(block, cls)     — the protocol's single recordMiss() site;
//                          attributes the residual to Complete and
//                          commits one sample per stage (zeros included)
//                          into the per-(MissClass × Stage) accumulators
//                          and histograms.
//
// Because the stage intervals partition [begin, end] by construction, the
// per-class invariants hold *exactly* (latencies are integer-valued
// doubles far below 2^53):
//
//     sum_s latency(cls, s).sum()   == ProtocolStats::latencyByClass[cls].sum()
//     latency(cls, s).count()       == ProtocolStats::missByClass[cls]
//
// reconciliation the obs tests pin bit-for-bit.
//
// The analytic inter-chip round trip (src/scaleout) adds latency without
// any event of its own, so it is attributed through a *credit*: the
// memory-request handler banks the extra cycles, and the next mark peels
// them off into Stage::InterChip before attributing the remainder.
// Observation never schedules events or changes simulation order.
//
// StageRecorder is also the trace sink's FlowSource: each transaction
// gets a sequential flow id, and the Chrome-trace exporter uses it to
// link NoC message spans to their parent transaction as Perfetto flows.
#pragma once

#include <array>
#include <cstdint>

#include "common/flat_hash.h"
#include "common/stats.h"
#include "common/types.h"
#include "obs/trace.h"
#include "protocols/protocol_stats.h"

namespace eecc {

class MetricRegistry;

/// Latency stages of a miss transaction, in rough critical-path order.
/// Metric names use the lowerCamel strings of stageName().
enum class Stage : std::uint8_t {
  Request,     ///< Issue and request routing up to the serving node.
  Service,     ///< Home / owner / directory occupancy (serve delays).
  Fanout,      ///< Forward / invalidation / snoop wave propagation.
  AckWait,     ///< Waiting on invalidation / snoop acknowledgements.
  DataReturn,  ///< Data response in flight back to the requestor.
  MemFetch,    ///< Memory controller service (DRAM latency, row schedule).
  InterChip,   ///< Scale-out inter-chip round trip (credited, analytic).
  Complete,    ///< Residual between the last mark and recordMiss().
  kCount
};

constexpr std::size_t kStageCount = static_cast<std::size_t>(Stage::kCount);

inline const char* stageName(Stage s) {
  switch (s) {
    case Stage::Request: return "request";
    case Stage::Service: return "service";
    case Stage::Fanout: return "fanout";
    case Stage::AckWait: return "ackWait";
    case Stage::DataReturn: return "dataReturn";
    case Stage::MemFetch: return "memFetch";
    case Stage::InterChip: return "interChip";
    case Stage::Complete: return "complete";
    case Stage::kCount: break;
  }
  return "?";
}

/// Per-(MissClass × Stage) latency decomposition over completed misses.
/// Not thread-safe; each CmpSystem (one event loop) gets its own recorder.
class StageRecorder final : public FlowSource {
 public:
  /// Stage-latency histograms: 16 uniform buckets over [0, 1024) cycles
  /// with saturating edges — one L2-round-trip granularity, memory and
  /// inter-chip tails land in the top bucket. Unlike the accumulators
  /// (one sample per stage per transaction, zeros included, so counts
  /// reconcile with the miss counters), the histograms only record
  /// *participating* transactions (nonzero stage latency): the report's
  /// p50/p99 answer "when the stage happens, how long does it take"
  /// rather than being flattened by the zero mass of stages most misses
  /// never enter.
  static constexpr std::size_t kHistBuckets = 16;
  static constexpr double kHistMax = 1024.0;

  StageRecorder() {
    inflight_.reserve(1024);
    for (auto& row : hist_)
      for (Histogram& h : row) h = Histogram(0.0, kHistMax, kHistBuckets);
  }
  StageRecorder(const StageRecorder&) = delete;
  StageRecorder& operator=(const StageRecorder&) = delete;

  /// Dispatch-only mode for the overhead bench (micro_stage_trace): a
  /// paused recorder accepts every hook call but begin() records
  /// nothing, so marks, credits and ends all degrade to the
  /// unknown-block fast path (one empty-table lookup). This is the
  /// measurable upper bound on what the detached null-pointer branches
  /// could possibly cost — the analogue of micro_obs_overhead's null
  /// trace sink.
  void setPaused(bool paused) { paused_ = paused; }

  /// A miss transaction on `block` enters the miss path at `now`.
  void begin(Addr block, Tick now) {
    if (paused_) [[unlikely]] return;
    Txn& t = inflight_.at(block);
    t = Txn{};
    t.id = ++nextId_;
    t.start = now;
    t.last = now;
  }

  /// Attributes [previous mark, now] to `s`; no-op when `block` has no
  /// in-flight transaction (background traffic).
  void mark(Addr block, Stage s, Tick now) {
    Txn* t = inflight_.find(block);
    if (t == nullptr) return;
    Tick interval = now - t->last;
    t->last = now;
    if (t->credit != 0) {
      const Tick c = t->credit < interval ? t->credit : interval;
      t->ticks[static_cast<std::size_t>(t->creditStage)] += c;
      t->credit = 0;
      interval -= c;
    }
    t->ticks[static_cast<std::size_t>(s)] += interval;
  }

  /// Banks `amount` cycles of analytic latency for `stage`; the next mark
  /// peels them off the interval it attributes. Used by the scale-out
  /// remote-memory hook, whose round trip has no event of its own.
  void credit(Addr block, Stage stage, Tick amount) {
    Txn* t = inflight_.find(block);
    if (t == nullptr) return;
    t->creditStage = stage;
    t->credit += amount;
  }

  /// The transaction completes (the protocol's recordMiss site): the
  /// residual goes to Complete and every stage commits one sample.
  void end(Addr block, MissClass cls, Tick now) {
    Txn* t = inflight_.find(block);
    if (t == nullptr) return;
    mark(block, Stage::Complete, now);
    const auto c = static_cast<std::size_t>(cls);
    for (std::size_t s = 0; s < kStageCount; ++s) {
      const auto lat = static_cast<double>(t->ticks[s]);
      lat_[c][s].add(lat);
      if (lat > 0) hist_[c][s].add(lat);
    }
    ++transactions_;
    lastEnded_ = {block, t->id};
    haveLastEnded_ = true;
    inflight_.erase(block);
  }

  // --- FlowSource ---
  /// Flow id of the in-flight transaction on `block` — or of the
  /// transaction that just ended there (the completion wrapper and the
  /// unblock messages it sends trace after end(), in the same call
  /// chain). 0 when none.
  std::uint64_t flowOf(Addr block) const override {
    const Txn* t = inflight_.find(block);
    if (t != nullptr) return t->id;
    if (haveLastEnded_ && lastEnded_.block == block) return lastEnded_.id;
    return 0;
  }

  const Accumulator& latency(MissClass cls, Stage s) const {
    return lat_[static_cast<std::size_t>(cls)][static_cast<std::size_t>(s)];
  }
  const Histogram& histogram(MissClass cls, Stage s) const {
    return hist_[static_cast<std::size_t>(cls)][static_cast<std::size_t>(s)];
  }
  /// Completed (committed) transactions.
  std::uint64_t transactions() const { return transactions_; }
  /// Transactions currently between begin() and end().
  std::size_t inFlight() const { return inflight_.size(); }

 private:
  struct Txn {
    std::uint64_t id = 0;
    Tick start = 0;
    Tick last = 0;
    Tick credit = 0;
    Stage creditStage = Stage::InterChip;
    std::array<Tick, kStageCount> ticks{};
  };
  struct Ended {
    Addr block = 0;
    std::uint64_t id = 0;
  };

  FlatHash<Txn> inflight_;
  bool paused_ = false;
  std::uint64_t nextId_ = 0;
  std::uint64_t transactions_ = 0;
  Ended lastEnded_;
  bool haveLastEnded_ = false;
  std::array<std::array<Accumulator, kStageCount>,
             static_cast<std::size_t>(MissClass::kCount)>
      lat_{};
  std::array<std::array<Histogram, kStageCount>,
             static_cast<std::size_t>(MissClass::kCount)>
      hist_;
};

/// Registers `stage.<missClass>.<stage>.lat.*` accumulator expansions,
/// `stage.<missClass>.<stage>.hist.<i>` bucket counters and
/// `stage.transactions` on `reg`. The recorder must outlive the registry.
void registerStageRecorder(MetricRegistry& reg, const StageRecorder& rec);

}  // namespace eecc
