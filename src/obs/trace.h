// Message-level trace sink (DESIGN.md §10).
//
// TraceSink is the observation interface the protocol engine and the NoC
// report fine-grained timing to: one span per core-visible coherence
// transaction (issue → completion, tagged with the Figure-9b MissClass)
// and one record per network message (send → modeled tail-flit arrival).
// Like the conformance CheckHooks (check/hooks.h), the sink pointer is
// null in normal runs and every hook site is a single [[unlikely]]-hinted
// null check — detached tracing is free (bench/micro_obs_overhead gates
// even *attached* null-sink dispatch at >= 0.97x the detached hot path).
//
// RingTraceSink is the standard implementation: a fixed-capacity ring of
// POD records, overwriting the oldest once full (the interesting part of
// a hung or misbehaving run is its tail), exported as Chrome trace_event
// JSON by obs/exporters.h for chrome://tracing / Perfetto.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "noc/message.h"
#include "protocols/protocol_stats.h"

namespace eecc {

/// Supplier of flow ids linking records that belong to one coherence
/// transaction (the StageRecorder of obs/stage.h). A sink with a flow
/// source tags every record with the id of the transaction in flight on
/// its block; the Chrome-trace exporter turns the ids into Perfetto flow
/// arrows, so an Arin broadcast invalidation reads as a causal tree.
class FlowSource {
 public:
  virtual ~FlowSource() = default;
  /// Flow id of the transaction in flight on `block`; 0 when none.
  virtual std::uint64_t flowOf(Addr block) const = 0;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// One core-visible access, issue to completion. `hit` marks L1 fast-path
  /// hits (start == end) and accesses satisfied while queued behind another
  /// transaction on the line; for genuine misses `cls` carries the
  /// Figure-9b classification and `links` the critical-path link count.
  virtual void onTransaction(NodeId tile, Addr block, AccessType type,
                             Tick start, Tick end, bool hit, MissClass cls,
                             std::uint32_t links) = 0;

  /// One unicast message: send time and the modeled tail-flit arrival.
  virtual void onMessage(const Message& msg, Tick sendTick, Tick arriveTick,
                         std::uint32_t hops) = 0;

  /// One broadcast: `lastArrive` is the arrival at the farthest node.
  virtual void onBroadcast(const Message& msg, Tick sendTick,
                           Tick lastArrive) = 0;
};

/// Ring-buffered trace recorder. Not thread-safe; each CmpSystem (one
/// event loop) gets its own sink.
class RingTraceSink final : public TraceSink {
 public:
  struct Record {
    enum class Kind : std::uint8_t { Hit, Miss, Message, Broadcast };
    Kind kind;
    std::uint8_t msgClass = 0;   ///< MsgClass (messages).
    std::uint16_t msgType = 0;   ///< Protocol opcode (messages).
    MissClass cls = MissClass::kCount;  ///< Miss classification.
    AccessType access = AccessType::Read;
    NodeId tile = kInvalidNode;  ///< Requestor tile / message source.
    NodeId dst = kInvalidNode;   ///< Message destination.
    std::uint32_t links = 0;     ///< Miss critical path / message hops.
    Addr block = 0;
    Tick start = 0;
    Tick end = 0;
    std::uint64_t flow = 0;      ///< Parent-transaction flow id; 0 = none.
  };

  /// `capacity` — maximum records held; older records are overwritten.
  /// `recordHits` — include L1 hits (default off: hits dominate the access
  /// stream and evict the transactions the trace exists to show).
  explicit RingTraceSink(std::size_t capacity = 1 << 16,
                         bool recordHits = false)
      : capacity_(capacity ? capacity : 1), recordHits_(recordHits) {
    ring_.reserve(capacity_);
  }

  void onTransaction(NodeId tile, Addr block, AccessType type, Tick start,
                     Tick end, bool hit, MissClass cls,
                     std::uint32_t links) override {
    if (hit && !recordHits_) return;
    Record r;
    r.kind = hit ? Record::Kind::Hit : Record::Kind::Miss;
    r.cls = cls;
    r.access = type;
    r.tile = tile;
    r.links = links;
    r.block = block;
    r.start = start;
    r.end = end;
    push(r, block);
  }

  void onMessage(const Message& msg, Tick sendTick, Tick arriveTick,
                 std::uint32_t hops) override {
    Record r;
    r.kind = Record::Kind::Message;
    r.msgClass = static_cast<std::uint8_t>(msg.cls);
    r.msgType = msg.type;
    r.tile = msg.src;
    r.dst = msg.dst;
    r.links = hops;
    r.block = msg.addr;
    r.start = sendTick;
    r.end = arriveTick;
    push(r, msg.addr);
  }

  void onBroadcast(const Message& msg, Tick sendTick,
                   Tick lastArrive) override {
    Record r;
    r.kind = Record::Kind::Broadcast;
    r.msgClass = static_cast<std::uint8_t>(msg.cls);
    r.msgType = msg.type;
    r.tile = msg.src;
    r.block = msg.addr;
    r.start = sendTick;
    r.end = lastArrive;
    push(r, msg.addr);
  }

  /// Attaches (or detaches, with nullptr) the flow-id source; subsequent
  /// records carry the id of the transaction in flight on their block.
  void setFlowSource(const FlowSource* src) { flowSource_ = src; }

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return ring_.size(); }
  std::uint64_t recorded() const { return recorded_; }
  /// Records overwritten because the ring was full.
  std::uint64_t dropped() const {
    return recorded_ - static_cast<std::uint64_t>(ring_.size());
  }

  /// Visits the retained records in recording order (oldest first).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    const std::size_t n = ring_.size();
    for (std::size_t i = 0; i < n; ++i)
      fn(ring_[(head_ + i) % n]);
  }

  void clear() {
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
  }

 private:
  void push(Record r, Addr block) {
    if (flowSource_ != nullptr) r.flow = flowSource_->flowOf(block);
    ++recorded_;
    if (ring_.size() < capacity_) {
      ring_.push_back(r);
      return;
    }
    ring_[head_] = r;  // overwrite the oldest
    head_ = (head_ + 1) % capacity_;
  }

  std::size_t capacity_;
  bool recordHits_;
  const FlowSource* flowSource_ = nullptr;
  std::vector<Record> ring_;
  std::size_t head_ = 0;  ///< Oldest retained record once the ring is full.
  std::uint64_t recorded_ = 0;
};

}  // namespace eecc
