// MetricRegistry — the observability layer's name space (DESIGN.md §10).
//
// Every counter the simulator keeps (ProtocolStats, NocStats, cache energy
// events, DDR controllers, per-tile core progress) is registered under a
// stable hierarchical dotted name — `proto.readMisses`, `net.linkFlits`,
// `ddr.0.rowHits`, `tile.3.core.opsDone` — as a *live* metric: the
// registry stores accessors, not values, so one registration at system
// construction serves the exporters, the timeline sampler, and the
// reconciliation tests alike. Reading a metric is always a pure
// observation of simulator state.
//
// Two metric kinds:
//  * Counter — an exact uint64 (event counts). Snapshot values compare
//    bit-for-bit against the legacy aggregate structs.
//  * Gauge   — a derived double (means, variances, rates).
// Accumulators expand into one counter (.count) and five gauges
// (.sum/.mean/.min/.max/.variance).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace eecc {

class MetricRegistry {
 public:
  enum class Kind : std::uint8_t { Counter, Gauge };

  using CounterFn = std::function<std::uint64_t()>;
  using GaugeFn = std::function<double()>;

  /// One evaluated metric (what exporters and the sampler consume).
  struct Sample {
    std::string name;
    Kind kind = Kind::Counter;
    std::uint64_t u64 = 0;  ///< Kind::Counter
    double f64 = 0.0;       ///< Kind::Gauge (and u64 mirrored as double)

    double asDouble() const {
      return kind == Kind::Counter ? static_cast<double>(u64) : f64;
    }
  };

  void addCounter(std::string name, CounterFn fn);
  void addGauge(std::string name, GaugeFn fn);
  /// Registers `prefix`.count/.sum/.mean/.min/.max/.variance over `acc`.
  /// The accumulator must outlive the registry.
  void addAccumulator(const std::string& prefix, const Accumulator* acc);

  std::size_t size() const { return metrics_.size(); }
  bool contains(const std::string& name) const {
    return metrics_.count(name) != 0;
  }

  /// Evaluates one counter metric; aborts if `name` is unknown or a gauge.
  std::uint64_t counter(const std::string& name) const;
  /// Evaluates any metric as a double.
  double value(const std::string& name) const;

  /// Evaluates every metric, in lexicographic name order (stable across
  /// runs and builds — names are the schema).
  std::vector<Sample> snapshot() const;

  /// Visits (name, kind) in lexicographic order without evaluating.
  void forEachName(
      const std::function<void(const std::string&, Kind)>& fn) const;

 private:
  struct Metric {
    Kind kind;
    CounterFn counter;  // Kind::Counter
    GaugeFn gauge;      // Kind::Gauge
  };

  std::map<std::string, Metric> metrics_;  // sorted => stable iteration
};

}  // namespace eecc
