// 2D mesh topology with dimension-order (XY) routing.
//
// Matches the paper's interconnect (Table III): a bidimensional mesh (8x8 in
// the default configuration) with deterministic XY routing. The topology is
// purely geometric — link timing and contention live in Network.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace eecc {

/// A directed link between two adjacent routers, identified by its index in
/// the topology's link table.
using LinkId = std::int32_t;

struct MeshCoord {
  std::int32_t x = 0;
  std::int32_t y = 0;
  bool operator==(const MeshCoord&) const = default;
};

class MeshTopology {
 public:
  MeshTopology(std::int32_t width, std::int32_t height);

  std::int32_t width() const { return width_; }
  std::int32_t height() const { return height_; }
  std::int32_t nodeCount() const { return width_ * height_; }
  std::int32_t linkCount() const {
    return static_cast<std::int32_t>(links_.size());
  }

  MeshCoord coordOf(NodeId n) const {
    EECC_CHECK(n >= 0 && n < nodeCount());
    return {n % width_, n / width_};
  }
  NodeId nodeAt(MeshCoord c) const {
    EECC_CHECK(c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_);
    return c.y * width_ + c.x;
  }

  /// Manhattan distance — the number of links an XY-routed message crosses.
  std::int32_t distance(NodeId a, NodeId b) const {
    const MeshCoord ca = coordOf(a);
    const MeshCoord cb = coordOf(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
  }

  /// Directed link from `from` to adjacent node `to`.
  LinkId linkBetween(NodeId from, NodeId to) const;

  /// Sequence of directed links an XY-routed message from `src` to `dst`
  /// traverses (X first, then Y). Empty when src == dst.
  std::vector<LinkId> route(NodeId src, NodeId dst) const;

  /// Directed links of the XY multicast tree rooted at `src` reaching every
  /// node of the mesh: the message travels along src's row, and every node
  /// of that row forwards up and down its column. This is the standard
  /// dimension-order broadcast used to add broadcast support to a mesh
  /// (cf. Duato et al. [20], used by the paper's modified Garnet).
  std::vector<LinkId> broadcastTree(NodeId src) const;

  /// Average XY distance between two uniformly random distinct nodes;
  /// the paper quotes the (2/3)*sqrt(ntc) approximation in Section V-D.
  double averageDistance() const;

  NodeId linkSource(LinkId l) const { return links_[checkLink(l)].from; }
  NodeId linkDest(LinkId l) const { return links_[checkLink(l)].to; }

 private:
  struct Link {
    NodeId from;
    NodeId to;
  };
  std::size_t checkLink(LinkId l) const {
    EECC_CHECK(l >= 0 && static_cast<std::size_t>(l) < links_.size());
    return static_cast<std::size_t>(l);
  }

  std::int32_t width_;
  std::int32_t height_;
  std::vector<Link> links_;
  // linkIndex_[from][direction] with directions E,W,N,S; -1 at edges.
  std::vector<std::array<LinkId, 4>> linkIndex_;
};

}  // namespace eecc
