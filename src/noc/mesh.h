// 2D mesh topology with dimension-order (XY) routing.
//
// Matches the paper's interconnect (Table III): a bidimensional mesh (8x8 in
// the default configuration) with deterministic XY routing. The topology is
// purely geometric — link timing and contention live in Network.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace eecc {

/// A directed link between two adjacent routers, identified by its index in
/// the topology's link table.
using LinkId = std::int32_t;

struct MeshCoord {
  std::int32_t x = 0;
  std::int32_t y = 0;
  bool operator==(const MeshCoord&) const = default;
};

class MeshTopology {
 public:
  MeshTopology(std::int32_t width, std::int32_t height);

  std::int32_t width() const { return width_; }
  std::int32_t height() const { return height_; }
  std::int32_t nodeCount() const { return width_ * height_; }
  std::int32_t linkCount() const {
    return static_cast<std::int32_t>(links_.size());
  }

  MeshCoord coordOf(NodeId n) const {
    EECC_CHECK(n >= 0 && n < nodeCount());
    return {n % width_, n / width_};
  }
  NodeId nodeAt(MeshCoord c) const {
    EECC_CHECK(c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_);
    return c.y * width_ + c.x;
  }

  /// Manhattan distance — the number of links an XY-routed message crosses.
  std::int32_t distance(NodeId a, NodeId b) const {
    const MeshCoord ca = coordOf(a);
    const MeshCoord cb = coordOf(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
  }

  /// Directed link from `from` to adjacent node `to`.
  LinkId linkBetween(NodeId from, NodeId to) const;

  /// Sequence of directed links an XY-routed message from `src` to `dst`
  /// traverses (X first, then Y). Empty when src == dst. Computes a fresh
  /// vector every call; the Network hot path uses routeSpan() instead.
  std::vector<LinkId> route(NodeId src, NodeId dst) const;

  /// Zero-allocation view into the precomputed route table (same links as
  /// route(), in the same order). Valid until the topology is destroyed.
  struct RouteSpan {
    const LinkId* links = nullptr;
    std::size_t count = 0;
    const LinkId* begin() const { return links; }
    const LinkId* end() const { return links + count; }
    std::size_t size() const { return count; }
  };
  RouteSpan routeSpan(NodeId src, NodeId dst) const;

  /// Directed links of the XY multicast tree rooted at `src` reaching every
  /// node of the mesh: the message travels along src's row, and every node
  /// of that row forwards up and down its column. This is the standard
  /// dimension-order broadcast used to add broadcast support to a mesh
  /// (cf. Duato et al. [20], used by the paper's modified Garnet).
  /// Recomputed on every call; the Network uses broadcastTreeCached().
  std::vector<LinkId> broadcastTree(NodeId src) const;

  /// The same tree, precomputed once per source at construction (the
  /// DiCo-Arin invalidation path recomputed it per broadcast; see
  /// DESIGN.md §13). Golden-tested equal to broadcastTree() per source.
  const std::vector<LinkId>& broadcastTreeCached(NodeId src) const;

  /// One broadcast destination with its tree distance from the source.
  struct BcastHop {
    std::int32_t dist = 0;
    NodeId node = kInvalidNode;
  };
  /// Every node of the mesh sorted by (distance, node) — the delivery
  /// order of a broadcast from `src`. Same-distance nodes keep ascending
  /// node order, so per-tick delivery FIFO order matches a plain
  /// node-ascending loop while same-tick deliveries become consecutive
  /// (which is what lets the Network batch them). Precomputed per source.
  const std::vector<BcastHop>& broadcastSchedule(NodeId src) const;

  /// Average XY distance between two uniformly random distinct nodes;
  /// the paper quotes the (2/3)*sqrt(ntc) approximation in Section V-D.
  double averageDistance() const;

  NodeId linkSource(LinkId l) const { return links_[checkLink(l)].from; }
  NodeId linkDest(LinkId l) const { return links_[checkLink(l)].to; }

 private:
  struct Link {
    NodeId from;
    NodeId to;
  };
  std::size_t checkLink(LinkId l) const {
    EECC_CHECK(l >= 0 && static_cast<std::size_t>(l) < links_.size());
    return static_cast<std::size_t>(l);
  }

  /// Meshes up to this many nodes precompute all N^2 routes and N trees at
  /// construction (every simulated chip qualifies: CmpConfig caps tiles at
  /// 256). Larger standalone topologies fall back to per-call scratch
  /// buffers so construction stays cheap.
  static constexpr std::int32_t kMaxCachedNodes = 1024;
  void buildCaches();

  std::int32_t width_;
  std::int32_t height_;
  std::vector<Link> links_;
  // linkIndex_[from][direction] with directions E,W,N,S; -1 at edges.
  std::vector<std::array<LinkId, 4>> linkIndex_;

  // Flattened route table: routeLinks_[routePos_[src*N+dst] ..
  // routePos_[src*N+dst+1]) is the XY route. Empty when not cached.
  std::vector<std::uint32_t> routePos_;
  std::vector<LinkId> routeLinks_;
  std::vector<std::vector<LinkId>> treeCache_;        // [src] -> tree links
  std::vector<std::vector<BcastHop>> bcastSched_;     // [src] -> (dist, node)
  // Fallbacks for beyond-cap meshes (and their lifetime anchors).
  mutable std::vector<LinkId> routeScratch_;
  mutable std::vector<LinkId> treeScratch_;
  mutable std::vector<BcastHop> schedScratch_;
};

}  // namespace eecc
