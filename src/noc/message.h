// On-chip network message. The NoC is protocol-agnostic: coherence
// protocols define their own message type enums and cast them into
// Message::type; the network only cares about source, destination and
// size class (control = 1 flit, data = 5 flits, per Table III).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace eecc {

enum class MsgClass : std::uint8_t {
  Control,  ///< 1 flit (requests, acks, hints, pointers).
  Data,     ///< 5 flits (carries a 64-byte block: 1 header + 4 payload).
};

struct Message {
  std::uint16_t type = 0;   ///< Protocol-defined message opcode.
  MsgClass cls = MsgClass::Control;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Addr addr = 0;            ///< Block address the message concerns.

  // Protocol payload. Fixed small fields instead of a variant keep the
  // message POD and cheap to copy into scheduled events.
  NodeId requestor = kInvalidNode;  ///< Original requestor of a transaction.
  NodeId forwarder = kInvalidNode;  ///< Identity of a forwarding cache
                                    ///< (DiCo-Arin provider repair, IV-B).
  /// Tile whose activity caused this message — the attribution tag the
  /// observability ledger maps to a VM. Left invalid by the protocol
  /// engines except where the cause is neither `requestor` nor `src`
  /// (Protocol::send defaults it to requestor-else-src). Never read by the
  /// NoC timing or coherence logic.
  NodeId origin = kInvalidNode;
  std::uint64_t aux = 0;            ///< Opcode-specific (ack counts, maps...).
  std::uint64_t value = 0;          ///< Modeled data value (verification).
};

}  // namespace eecc
