#include "noc/mesh.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>

namespace eecc {

namespace {
enum Direction : int { kEast = 0, kWest = 1, kNorth = 2, kSouth = 3 };
}  // namespace

MeshTopology::MeshTopology(std::int32_t width, std::int32_t height)
    : width_(width), height_(height) {
  EECC_CHECK(width >= 1 && height >= 1);
  linkIndex_.assign(static_cast<std::size_t>(nodeCount()),
                    {LinkId{-1}, LinkId{-1}, LinkId{-1}, LinkId{-1}});
  auto addLink = [this](NodeId from, NodeId to, int dir) {
    linkIndex_[static_cast<std::size_t>(from)][static_cast<std::size_t>(dir)] =
        static_cast<LinkId>(links_.size());
    links_.push_back({from, to});
  };
  for (std::int32_t y = 0; y < height_; ++y) {
    for (std::int32_t x = 0; x < width_; ++x) {
      const NodeId n = nodeAt({x, y});
      if (x + 1 < width_) addLink(n, nodeAt({x + 1, y}), kEast);
      if (x > 0) addLink(n, nodeAt({x - 1, y}), kWest);
      if (y + 1 < height_) addLink(n, nodeAt({x, y + 1}), kSouth);
      if (y > 0) addLink(n, nodeAt({x, y - 1}), kNorth);
    }
  }
  if (nodeCount() <= kMaxCachedNodes) buildCaches();
}

void MeshTopology::buildCaches() {
  const auto n = static_cast<std::size_t>(nodeCount());
  routePos_.assign(n * n + 1, 0);
  routeLinks_.clear();
  treeCache_.resize(n);
  bcastSched_.resize(n);
  for (NodeId src = 0; src < nodeCount(); ++src) {
    for (NodeId dst = 0; dst < nodeCount(); ++dst) {
      const auto r = route(src, dst);
      routeLinks_.insert(routeLinks_.end(), r.begin(), r.end());
      routePos_[static_cast<std::size_t>(src) * n +
                static_cast<std::size_t>(dst) + 1] =
          static_cast<std::uint32_t>(routeLinks_.size());
    }
    treeCache_[static_cast<std::size_t>(src)] = broadcastTree(src);
    auto& sched = bcastSched_[static_cast<std::size_t>(src)];
    sched.resize(n);
    for (NodeId d = 0; d < nodeCount(); ++d)
      sched[static_cast<std::size_t>(d)] = {distance(src, d), d};
    // Stable by construction: sorting (dist, node) keeps same-distance
    // nodes in ascending node order.
    std::sort(sched.begin(), sched.end(),
              [](const BcastHop& a, const BcastHop& b) {
                return a.dist != b.dist ? a.dist < b.dist : a.node < b.node;
              });
  }
}

MeshTopology::RouteSpan MeshTopology::routeSpan(NodeId src, NodeId dst) const {
  if (!routePos_.empty()) {
    const std::size_t idx =
        static_cast<std::size_t>(src) *
            static_cast<std::size_t>(nodeCount()) +
        static_cast<std::size_t>(dst);
    const std::uint32_t b = routePos_[idx];
    const std::uint32_t e = routePos_[idx + 1];
    return {routeLinks_.data() + b, e - b};
  }
  routeScratch_ = route(src, dst);
  return {routeScratch_.data(), routeScratch_.size()};
}

const std::vector<LinkId>& MeshTopology::broadcastTreeCached(
    NodeId src) const {
  if (!treeCache_.empty()) return treeCache_[static_cast<std::size_t>(src)];
  treeScratch_ = broadcastTree(src);
  return treeScratch_;
}

const std::vector<MeshTopology::BcastHop>& MeshTopology::broadcastSchedule(
    NodeId src) const {
  if (!bcastSched_.empty()) return bcastSched_[static_cast<std::size_t>(src)];
  schedScratch_.resize(static_cast<std::size_t>(nodeCount()));
  for (NodeId d = 0; d < nodeCount(); ++d)
    schedScratch_[static_cast<std::size_t>(d)] = {distance(src, d), d};
  std::sort(schedScratch_.begin(), schedScratch_.end(),
            [](const BcastHop& a, const BcastHop& b) {
              return a.dist != b.dist ? a.dist < b.dist : a.node < b.node;
            });
  return schedScratch_;
}

LinkId MeshTopology::linkBetween(NodeId from, NodeId to) const {
  const MeshCoord a = coordOf(from);
  const MeshCoord b = coordOf(to);
  int dir = -1;
  if (b.x == a.x + 1 && b.y == a.y) dir = kEast;
  else if (b.x == a.x - 1 && b.y == a.y) dir = kWest;
  else if (b.y == a.y - 1 && b.x == a.x) dir = kNorth;
  else if (b.y == a.y + 1 && b.x == a.x) dir = kSouth;
  EECC_CHECK_MSG(dir >= 0, "linkBetween on non-adjacent nodes");
  const LinkId l =
      linkIndex_[static_cast<std::size_t>(from)][static_cast<std::size_t>(dir)];
  EECC_CHECK(l >= 0);
  return l;
}

std::vector<LinkId> MeshTopology::route(NodeId src, NodeId dst) const {
  std::vector<LinkId> out;
  MeshCoord cur = coordOf(src);
  const MeshCoord end = coordOf(dst);
  out.reserve(static_cast<std::size_t>(distance(src, dst)));
  while (cur.x != end.x) {
    const std::int32_t nx = cur.x + (end.x > cur.x ? 1 : -1);
    out.push_back(linkBetween(nodeAt(cur), nodeAt({nx, cur.y})));
    cur.x = nx;
  }
  while (cur.y != end.y) {
    const std::int32_t ny = cur.y + (end.y > cur.y ? 1 : -1);
    out.push_back(linkBetween(nodeAt(cur), nodeAt({cur.x, ny})));
    cur.y = ny;
  }
  return out;
}

std::vector<LinkId> MeshTopology::broadcastTree(NodeId src) const {
  std::vector<LinkId> out;
  const MeshCoord s = coordOf(src);
  // Phase 1: along the source's row in both directions.
  for (std::int32_t x = s.x; x + 1 < width_; ++x)
    out.push_back(linkBetween(nodeAt({x, s.y}), nodeAt({x + 1, s.y})));
  for (std::int32_t x = s.x; x > 0; --x)
    out.push_back(linkBetween(nodeAt({x, s.y}), nodeAt({x - 1, s.y})));
  // Phase 2: every node of that row forwards up and down its column.
  for (std::int32_t x = 0; x < width_; ++x) {
    for (std::int32_t y = s.y; y + 1 < height_; ++y)
      out.push_back(linkBetween(nodeAt({x, y}), nodeAt({x, y + 1})));
    for (std::int32_t y = s.y; y > 0; --y)
      out.push_back(linkBetween(nodeAt({x, y}), nodeAt({x, y - 1})));
  }
  return out;
}

double MeshTopology::averageDistance() const {
  const std::int64_t n = nodeCount();
  std::int64_t total = 0;
  for (NodeId a = 0; a < n; ++a)
    for (NodeId b = 0; b < n; ++b) total += distance(a, b);
  return static_cast<double>(total) / static_cast<double>(n * n);
}

}  // namespace eecc
