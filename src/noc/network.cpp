#include "noc/network.h"

#include <cstdlib>

#include "obs/ledger.h"
#include "obs/selfprof.h"
#include "obs/trace.h"

namespace eecc {

namespace {

bool envUnbatched() {
  const char* v = std::getenv("EECC_NOC_UNBATCHED");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

Network::Network(EventQueue& events, const MeshTopology& topo,
                 NetworkConfig cfg)
    : events_(events),
      topo_(topo),
      cfg_(cfg),
      linkBusyUntil_(static_cast<std::size_t>(topo.linkCount()), Tick{0}),
      linkFlitSlot_(static_cast<std::size_t>(topo.linkCount()), Tick{0}),
      ring_(static_cast<std::size_t>(EventQueue::kWheelSize)),
      unbatched_(envUnbatched()) {}

void Network::deliverDirect(Tick when, const Message& msg) {
  // One inline-storage event per message: the Message capture fits the
  // kernel's 88-byte SBO slot, so this path is allocation-free. Measured
  // faster than ring bookkeeping for unicast traffic, whose same-tick
  // batches are mostly size 1 (see the class comment in network.h).
  events_.scheduleAt(when, [this, m = msg] { handler_(m); });
}

void Network::deliverAt(Tick when, Message msg) {
  EECC_CHECK_MSG(static_cast<bool>(handler_), "no network handler installed");
  const Tick now = events_.now();
  // Deliveries are always scheduled at least one tick ahead (self-sends
  // and broadcasts add +1; routed arrivals include hop latency), so a
  // drain never runs re-entrantly with the tick that scheduled it.
  if (unbatched_ || when - now >= EventQueue::kWheelSize) {
    // Legacy (and far-future) path: one event per message.
    deliverDirect(when, msg);
    return;
  }
  DeliverySlot& s =
      ring_[static_cast<std::size_t>(when & (EventQueue::kWheelSize - 1))];
  if (s.active && events_.tailIs(when, s.tailSeq)) {
    // The latest drain for this tick is still the tick's last pending
    // event: the append preserves FIFO order, so the batch absorbs it.
    s.msgs.push_back(msg);
    s.segEnd.back() = s.msgs.size();
    return;
  }
  if (!s.active) {
    s.when = when;
    s.active = true;
  }
  // The slot cannot still be busy with an aliased earlier tick: its drains
  // executed before the clock passed that tick, and `when` is < kWheelSize
  // ahead of now.
  EECC_CHECK(s.when == when);
  s.msgs.push_back(msg);
  s.segEnd.push_back(s.msgs.size());
  s.tailSeq = events_.scheduleAt(when, [this, when] { drainDeliveries(when); });
}

void Network::drainDeliveries(Tick when) {
  ProfScope prof(ProfSection::NocDrain);
  DeliverySlot& s =
      ring_[static_cast<std::size_t>(when & (EventQueue::kWheelSize - 1))];
  EECC_CHECK(s.active && s.when == when && s.segHead < s.segEnd.size());
  const std::size_t begin = s.next;
  const std::size_t end = s.segEnd[s.segHead++];
  s.next = end;
  // Handlers can schedule new deliveries, but never onto this tick (all
  // deliveries are >= now + 1), so `msgs` is stable during the loop.
  for (std::size_t i = begin; i < end; ++i) handler_(s.msgs[i]);
  // Keep executedEvents() identical to the per-message legacy path: this
  // one physical event stood in for (end - begin) deliveries.
  events_.creditExecuted(end - begin - 1);
  if (s.segHead == s.segEnd.size() && s.next == s.msgs.size()) {
    s.msgs.clear();
    s.segEnd.clear();
    s.next = 0;
    s.segHead = 0;
    s.active = false;
  }
}

Tick Network::flitLevelArrival(MeshTopology::RouteSpan route,
                               std::uint32_t flits) {
  // linkFlitSlot_ is sized in the constructor (it used to be lazily
  // initialized here, which reset paths could not see and clear).
  Tick tail = events_.now();
  for (std::uint32_t f = 0; f < flits; ++f) {
    Tick t = events_.now() + f;  // injection serialization
    for (const LinkId link : route) {
      auto& slot = linkFlitSlot_[static_cast<std::size_t>(link)];
      Tick start = t;
      if (cfg_.modelContention && slot > start) {
        stats_.contentionWait.add(static_cast<double>(slot - start));
        start = slot;
      }
      slot = start + 1;          // one flit per link per cycle
      t = start + cfg_.hopLatency();
    }
    if (t > tail) tail = t;
  }
  return tail;
}

void Network::send(const Message& msg) {
  ProfScope prof(ProfSection::NocSend);
  EECC_CHECK(msg.src >= 0 && msg.src < topo_.nodeCount());
  EECC_CHECK(msg.dst >= 0 && msg.dst < topo_.nodeCount());

  if (msg.src == msg.dst) {
    // Local controller-to-controller action: no NoC resources used.
    deliverDirect(events_.now() + 1, msg);
    return;
  }

  const std::uint32_t flits = flitsOf(msg.cls);
  const auto route = topo_.routeSpan(msg.src, msg.dst);

  Tick arrival = 0;
  if (cfg_.flitLevel) {
    arrival = flitLevelArrival(route, flits);
  } else {
    Tick head = events_.now();
    Tick waited = 0;
    for (const LinkId link : route) {
      auto& busy = linkBusyUntil_[static_cast<std::size_t>(link)];
      if (cfg_.modelContention && busy > head) {
        waited += busy - head;
        head = busy;
      }
      busy = head + flits;        // link occupied while all flits cross
      head += cfg_.hopLatency();  // head flit pipeline advance
    }
    arrival = head + (flits - 1);  // tail flit
    stats_.contentionWait.add(static_cast<double>(waited));
  }

  stats_.messages += 1;
  if (msg.cls == MsgClass::Data) stats_.dataMessages += 1;
  else stats_.controlMessages += 1;
  stats_.linksTraversed += route.count;
  stats_.linkFlits += static_cast<std::uint64_t>(route.count) * flits;
  stats_.routings += route.count + 1;  // every router visited incl. source
  stats_.unicastLatency.add(static_cast<double>(arrival - events_.now()));

  if (trace_ != nullptr) [[unlikely]]
    trace_->onMessage(msg, events_.now(), arrival,
                      static_cast<std::uint32_t>(route.count));
  if (ledger_ != nullptr) [[unlikely]]
    ledger_->onUnicast(msg, static_cast<std::uint32_t>(route.count), flits);

  deliverDirect(arrival, msg);
}

void Network::broadcast(const Message& msg) {
  EECC_CHECK(msg.src >= 0 && msg.src < topo_.nodeCount());
  const std::uint32_t flits = flitsOf(msg.cls);
  const auto& tree = topo_.broadcastTreeCached(msg.src);

  stats_.messages += 1;
  stats_.broadcasts += 1;
  if (msg.cls == MsgClass::Data) stats_.dataMessages += 1;
  else stats_.controlMessages += 1;
  stats_.linksTraversed += tree.size();
  stats_.linkFlits += static_cast<std::uint64_t>(tree.size()) * flits;
  // One routing per node of the mesh: every router replicates/forwards.
  stats_.routings += static_cast<std::uint64_t>(topo_.nodeCount());

  // Broadcast delivery time per destination follows its XY-tree distance.
  // Tree links are not tracked for contention (replicated flits would need
  // a flit-level model); broadcasts are rare enough that this is a
  // second-order effect, and their energy is fully charged above.
  //
  // Destinations are visited in (distance, node) order: same-arrival-tick
  // nodes stay in ascending node order (identical delivery FIFO to a plain
  // node loop) but are now consecutive, so each tick's copies coalesce
  // into a single delivery batch.
  const Tick base = events_.now();
  Tick lastArrive = base;
  Message copy = msg;
  for (const MeshTopology::BcastHop& hop : topo_.broadcastSchedule(msg.src)) {
    copy.dst = hop.node;
    const Tick delay = (hop.node == msg.src)
                           ? Tick{1}
                           : static_cast<Tick>(hop.dist) * cfg_.hopLatency() +
                                 (flits - 1);
    if (base + delay > lastArrive) lastArrive = base + delay;
    deliverAt(base + delay, copy);
  }
  if (trace_ != nullptr) [[unlikely]]
    trace_->onBroadcast(msg, base, lastArrive);
  if (ledger_ != nullptr) [[unlikely]]
    ledger_->onBroadcast(msg, static_cast<std::uint32_t>(tree.size()), flits,
                         topo_.nodeCount());
}

}  // namespace eecc
