#include "noc/network.h"

#include "obs/ledger.h"
#include "obs/trace.h"

namespace eecc {

void Network::deliverAt(Tick when, Message msg) {
  EECC_CHECK_MSG(static_cast<bool>(handler_), "no network handler installed");
  events_.scheduleAt(when, [this, m = std::move(msg)] { handler_(m); });
}

Tick Network::flitLevelArrival(const std::vector<LinkId>& route,
                               std::uint32_t flits) {
  // linkFlitSlot_ is sized in the constructor (it used to be lazily
  // initialized here, which reset paths could not see and clear).
  Tick tail = events_.now();
  for (std::uint32_t f = 0; f < flits; ++f) {
    Tick t = events_.now() + f;  // injection serialization
    for (const LinkId link : route) {
      auto& slot = linkFlitSlot_[static_cast<std::size_t>(link)];
      Tick start = t;
      if (cfg_.modelContention && slot > start) {
        stats_.contentionWait.add(static_cast<double>(slot - start));
        start = slot;
      }
      slot = start + 1;          // one flit per link per cycle
      t = start + cfg_.hopLatency();
    }
    if (t > tail) tail = t;
  }
  return tail;
}

void Network::send(const Message& msg) {
  EECC_CHECK(msg.src >= 0 && msg.src < topo_.nodeCount());
  EECC_CHECK(msg.dst >= 0 && msg.dst < topo_.nodeCount());

  if (msg.src == msg.dst) {
    // Local controller-to-controller action: no NoC resources used.
    deliverAt(events_.now() + 1, msg);
    return;
  }

  const std::uint32_t flits = flitsOf(msg.cls);
  const auto route = topo_.route(msg.src, msg.dst);

  Tick arrival = 0;
  if (cfg_.flitLevel) {
    arrival = flitLevelArrival(route, flits);
  } else {
    Tick head = events_.now();
    Tick waited = 0;
    for (const LinkId link : route) {
      auto& busy = linkBusyUntil_[static_cast<std::size_t>(link)];
      if (cfg_.modelContention && busy > head) {
        waited += busy - head;
        head = busy;
      }
      busy = head + flits;        // link occupied while all flits cross
      head += cfg_.hopLatency();  // head flit pipeline advance
    }
    arrival = head + (flits - 1);  // tail flit
    stats_.contentionWait.add(static_cast<double>(waited));
  }

  stats_.messages += 1;
  if (msg.cls == MsgClass::Data) stats_.dataMessages += 1;
  else stats_.controlMessages += 1;
  stats_.linksTraversed += route.size();
  stats_.linkFlits += static_cast<std::uint64_t>(route.size()) * flits;
  stats_.routings += route.size() + 1;  // every router visited incl. source
  stats_.unicastLatency.add(static_cast<double>(arrival - events_.now()));

  if (trace_ != nullptr) [[unlikely]]
    trace_->onMessage(msg, events_.now(), arrival,
                      static_cast<std::uint32_t>(route.size()));
  if (ledger_ != nullptr) [[unlikely]]
    ledger_->onUnicast(msg, static_cast<std::uint32_t>(route.size()), flits);

  deliverAt(arrival, msg);
}

void Network::broadcast(const Message& msg) {
  EECC_CHECK(msg.src >= 0 && msg.src < topo_.nodeCount());
  const std::uint32_t flits = flitsOf(msg.cls);
  const auto tree = topo_.broadcastTree(msg.src);

  stats_.messages += 1;
  stats_.broadcasts += 1;
  if (msg.cls == MsgClass::Data) stats_.dataMessages += 1;
  else stats_.controlMessages += 1;
  stats_.linksTraversed += tree.size();
  stats_.linkFlits += static_cast<std::uint64_t>(tree.size()) * flits;
  // One routing per node of the mesh: every router replicates/forwards.
  stats_.routings += static_cast<std::uint64_t>(topo_.nodeCount());

  // Broadcast delivery time per destination follows its XY-tree distance.
  // Tree links are not tracked for contention (replicated flits would need
  // a flit-level model); broadcasts are rare enough that this is a
  // second-order effect, and their energy is fully charged above.
  const Tick base = events_.now();
  Tick lastArrive = base;
  for (NodeId n = 0; n < topo_.nodeCount(); ++n) {
    Message copy = msg;
    copy.dst = n;
    const Tick dist = (n == msg.src)
                          ? Tick{1}
                          : static_cast<Tick>(topo_.distance(msg.src, n)) *
                                    cfg_.hopLatency() +
                                (flits - 1);
    if (base + dist > lastArrive) lastArrive = base + dist;
    deliverAt(base + dist, copy);
  }
  if (trace_ != nullptr) [[unlikely]]
    trace_->onBroadcast(msg, base, lastArrive);
  if (ledger_ != nullptr) [[unlikely]]
    ledger_->onBroadcast(msg, static_cast<std::uint32_t>(tree.size()), flits,
                         topo_.nodeCount());
}

}  // namespace eecc
