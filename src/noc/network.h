// Timed message-level NoC model with per-link contention and multicast.
//
// Timing (Table III): each hop costs link (2) + switch (2) + router (1)
// cycles for the head flit; the tail arrives flits-1 cycles after the head
// (16-byte flits, wormhole-style serialization). Contention is modeled by
// per-directed-link occupancy: a link is busy for `flits` cycles per
// message crossing it, and a head flit waits for the link to free up.
//
// Energy accounting follows Barrow-Williams et al. [22] (see
// energy/noc_energy.h): we count `routings` (router traversals) and
// `linkFlits` (flit × link crossings); broadcasts traverse a dimension-order
// multicast tree and are charged one routing per tree node and tree-links ×
// flits link crossings, matching the broadcast support added to Garnet.
#pragma once

#include <functional>
#include <vector>

#include "common/stats.h"
#include "noc/mesh.h"
#include "noc/message.h"
#include "sim/event_queue.h"

namespace eecc {

class TraceSink;
class AttributionLedger;

struct NetworkConfig {
  Tick linkCycles = 2;
  Tick switchCycles = 2;
  Tick routerCycles = 1;
  std::uint32_t controlFlits = 1;
  std::uint32_t dataFlits = 5;
  bool modelContention = true;
  /// Garnet-like per-flit link arbitration: each flit claims one cycle on
  /// each link it crosses (FCFS), so messages interleave at flit
  /// granularity instead of occupying links wholesale. Identical to the
  /// message-level model when uncontended; finer under load.
  bool flitLevel = false;

  Tick hopLatency() const { return linkCycles + switchCycles + routerCycles; }
};

struct NocStats {
  std::uint64_t messages = 0;
  std::uint64_t controlMessages = 0;
  std::uint64_t dataMessages = 0;
  std::uint64_t broadcasts = 0;
  std::uint64_t routings = 0;    ///< Router traversals (energy events).
  std::uint64_t linkFlits = 0;   ///< Flit-link crossings (energy events).
  std::uint64_t linksTraversed = 0;  ///< Per-message hop counts, summed.
  Accumulator unicastLatency;    ///< Delivery latency of unicast messages.
  Accumulator contentionWait;    ///< Cycles spent waiting on busy links.

  void merge(const NocStats& o) {
    messages += o.messages;
    controlMessages += o.controlMessages;
    dataMessages += o.dataMessages;
    broadcasts += o.broadcasts;
    routings += o.routings;
    linkFlits += o.linkFlits;
    linksTraversed += o.linksTraversed;
    unicastLatency += o.unicastLatency;
    contentionWait += o.contentionWait;
  }
};

// Delivery batching (DESIGN.md §13): broadcast deliveries land in a
// per-tick ring of Message slabs and a single drain event per (tick,
// batch) hands them to the protocol in FIFO order. A batch stays open for
// appends exactly while its drain event is still the LAST event pending
// on its tick (EventQueue::tailIs): the moment any other event is
// scheduled onto that tick the batch closes and later deliveries open a
// new batch behind it. This preserves the global same-tick FIFO execution
// order bit-for-bit — verified against the per-message legacy path, which
// stays selectable with EECC_NOC_UNBATCHED=1.
//
// Only broadcasts ride the ring. A broadcast's (distance, node)-ordered
// schedule makes same-tick deliveries consecutive, so a 64-node chip-wide
// invalidation collapses into ~a dozen drain events (one per distance
// group) — the DiCo-Arin hot path. Unicast deliveries go through one
// inline-storage event each (deliverDirect): with the event kernel's
// slab + small-buffer storage that path is already allocation-free, and
// measuring both shapes showed mostly-size-1 unicast batches pay more in
// ring bookkeeping (slot + segment bookkeeping + an extra Message copy)
// than the coalesced drain saves.
class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(EventQueue& events, const MeshTopology& topo, NetworkConfig cfg = {});

  /// Installs the single delivery handler (the protocol engine).
  void setHandler(Handler handler) { handler_ = std::move(handler); }

  const MeshTopology& topology() const { return topo_; }
  const NetworkConfig& config() const { return cfg_; }

  /// Attaches (or detaches, with nullptr) the observability trace sink:
  /// every NoC message reports its send time and modeled arrival. A single
  /// [[unlikely]] null check when detached (obs/trace.h).
  void setTraceSink(TraceSink* sink) { trace_ = sink; }
  TraceSink* traceSink() const { return trace_; }

  /// Attaches (or detaches, with nullptr) the attribution ledger
  /// (obs/ledger.h): every message's hop/flit/routing counts are also
  /// credited to the originating VM's row. The hook receives exactly the
  /// quantities added to NocStats, so the per-VM sums reconcile
  /// bit-for-bit. Same null-check-only cost when detached.
  void setLedger(AttributionLedger* ledger) { ledger_ = ledger; }
  AttributionLedger* ledger() const { return ledger_; }

  NocStats& stats() { return stats_; }
  const NocStats& stats() const { return stats_; }
  /// Clears the counters only. Link occupancy (message-level
  /// linkBusyUntil_ and flit-level linkFlitSlot_) deliberately survives:
  /// CmpSystem::warmup() uses this so in-flight traffic carries into the
  /// measured window on a warm NoC.
  void resetStats() { stats_ = NocStats{}; }
  /// Full reset for reuse from a fresh clock: counters *and* both link
  /// occupancy tables back to their just-constructed state. Required
  /// before re-driving one Network against a rewound or replaced event
  /// queue — stale future occupancy would otherwise leak contention into
  /// the next run (network_test pins back-to-back bit-identity).
  void reset() {
    resetStats();
    linkBusyUntil_.assign(linkBusyUntil_.size(), Tick{0});
    linkFlitSlot_.assign(linkFlitSlot_.size(), Tick{0});
    // The delivery ring is deliberately NOT cleared: it mirrors drain
    // events still scheduled in the event queue, and in-flight messages
    // sent before a reset must still arrive (the legacy per-message path
    // delivered them too — network_test pins this).
  }

  std::uint32_t flitsOf(MsgClass cls) const {
    return cls == MsgClass::Data ? cfg_.dataFlits : cfg_.controlFlits;
  }

  /// Sends `msg` from msg.src to msg.dst; schedules delivery at the arrival
  /// time of the tail flit. A message to self is delivered after one cycle
  /// and consumes no network resources (the controller acts locally).
  void send(const Message& msg);

  /// Broadcasts `msg` from msg.src to every node of the mesh (including the
  /// sender's own L1 controller, matching DiCo-Arin's chip-wide
  /// invalidation). Delivery time per node follows its tree distance.
  void broadcast(const Message& msg);

 private:
  /// One tick's pending deliveries. `segEnd[i]` is the end index (into
  /// `msgs`) of the i-th scheduled drain's batch; `next` is the delivery
  /// cursor and `segHead` the next drain's segment. A slot is recycled
  /// (active = false) once every batch has drained — always before the
  /// wheel wraps back onto it, since a delivery can only target a tick
  /// less than kWheelSize ahead and the drains for the slot's current tick
  /// execute before the clock passes it.
  struct DeliverySlot {
    std::vector<Message> msgs;
    std::vector<std::size_t> segEnd;
    std::size_t next = 0;
    std::size_t segHead = 0;
    Tick when = 0;
    std::uint64_t tailSeq = 0;  ///< seq of the most recent drain event
    bool active = false;
  };

  void deliverDirect(Tick when, const Message& msg);
  void deliverAt(Tick when, Message msg);
  void drainDeliveries(Tick when);

  Tick flitLevelArrival(MeshTopology::RouteSpan route, std::uint32_t flits);

  EventQueue& events_;
  const MeshTopology& topo_;
  NetworkConfig cfg_;
  Handler handler_;
  TraceSink* trace_ = nullptr;  ///< Observability trace sink; null = off.
  AttributionLedger* ledger_ = nullptr;  ///< Attribution ledger; null = off.
  std::vector<Tick> linkBusyUntil_;   // message-level occupancy
  std::vector<Tick> linkFlitSlot_;    // flit-level next free cycle
  std::vector<DeliverySlot> ring_;    // per-tick delivery batches
  bool unbatched_ = false;  ///< EECC_NOC_UNBATCHED=1: legacy per-msg events
  NocStats stats_;
};

}  // namespace eecc
