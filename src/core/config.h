// Chip-level configuration: Table III geometry, the static division of the
// chip into areas (Section III), home-bank and memory-controller mapping,
// and the VM-to-tile layouts of Figure 6 (matched and "-alt").
#pragma once

#include <cstdint>
#include <vector>

#include "common/bits.h"
#include "common/check.h"
#include "common/types.h"
#include "noc/network.h"

namespace eecc {

/// Geometry and latency of one cache array (per tile).
struct CacheGeometry {
  std::uint32_t entries = 0;
  std::uint32_t assoc = 1;
  Tick tagLatency = 1;
  Tick dataLatency = 2;
};

struct CmpConfig {
  // --- Chip (Table III defaults: 64-tile 8x8 CMP) ---
  std::int32_t meshWidth = 8;
  std::int32_t meshHeight = 8;
  std::uint32_t numAreas = 4;

  CacheGeometry l1{2048, 4, 1, 2};    // 128 KB split I&D, 4-way
  CacheGeometry l2{16384, 8, 2, 3};   // 1 MB bank, 8-way
  // Pointer caches and the flat directory's dir cache are direct-mapped in
  // the paper's storage accounting (their tag widths in Section V-B only
  // match 2048-set organizations); the simulator uses the same shape.
  std::uint32_t l1cEntries = 2048;
  std::uint32_t l2cEntries = 2048;
  std::uint32_t l1cAssoc = 4;  ///< Simulator organization (see dirCacheAssoc).
  std::uint32_t l2cAssoc = 4;
  std::uint32_t dirCacheEntries = 2048;
  /// The flat directory's dir cache is set-associative in the simulator
  /// (a "highly-optimized directory", Section II-A); the storage tables
  /// keep the paper's printed per-entry bit counts.
  std::uint32_t dirCacheAssoc = 8;

  Tick memLatency = 300;       ///< DRAM latency in cycles (+ on-chip delay).
  Tick memJitterMax = 16;      ///< "small random delay" added per access.
  std::uint32_t numMemControllers = 8;
  /// Memory timing model: the paper's default is a fixed latency plus a
  /// small random delay; `Ddr` swaps in the detailed bank/row-buffer
  /// controller of mem/ddr_controller.h (Section V-A's validation).
  enum class MemoryModel : std::uint8_t { FixedLatency, Ddr };
  MemoryModel memoryModel = MemoryModel::FixedLatency;

  NetworkConfig net{};

  /// Sharing code used by the flat directory's full-map fields. The
  /// paper's baseline is FullMap ("provides the best performance and
  /// lowest traffic"); coarser codes save storage but send spurious
  /// invalidations (bench/ablation_sharing_code re-validates the claim).
  SharingCode dirSharingCode = SharingCode::FullMap;

  /// Ablation knob: disables the L1C$ supplier prediction of the
  /// DiCo-family protocols (all misses go through the home).
  bool enablePrediction = true;

  std::int32_t tiles() const { return meshWidth * meshHeight; }
  std::int32_t tilesPerArea() const {
    return tiles() / static_cast<std::int32_t>(numAreas);
  }

  /// Home L2 bank for a block: fixed address bits, block-interleaved.
  NodeId homeOf(Addr block) const {
    return static_cast<NodeId>(blockIndex(block) %
                               static_cast<std::uint64_t>(tiles()));
  }

  /// Areas tile the mesh as a grid of equal rectangles (hard-wired static
  /// division, Section III). For the default 8x8 / 4 areas these are the
  /// four 4x4 quadrants of Figure 6 (left). One array read after
  /// buildCaches(); derived from the grid factorization otherwise.
  AreaId areaOf(NodeId tile) const {
    if (!areaCache_.empty()) [[likely]]
      return areaCache_[static_cast<std::size_t>(tile)];
    return areaOfSlow(tile);
  }

  /// Tiles belonging to `area`, ascending.
  std::vector<NodeId> tilesInArea(AreaId area) const;

  /// Memory controller tiles, spread along the top and bottom borders of
  /// the chip (Table III: "8 memory controllers along the borders").
  std::vector<NodeId> memControllerTiles() const;

  /// The controller serving a block (page-interleaved across controllers).
  NodeId memControllerOf(Addr block) const {
    const std::uint64_t page = block >> kPageOffsetBits;
    if (!mcCache_.empty()) [[likely]]
      return mcCache_[static_cast<std::size_t>(page % mcCache_.size())];
    return memControllerOfSlow(page);
  }

  void validate() const;

  /// Materializes the per-tile area table and the memory-controller list
  /// so the per-message hot paths (Protocol::countMsg, memFetch) stop
  /// re-deriving them (they used to factor the area grid and build a
  /// controller vector per call). Derivation-free: areaOf/memControllerOf
  /// answer identically before and after. Call after the geometry fields
  /// are final (Protocol's constructor does, right after validate()).
  void buildCaches();

 private:
  void areaGrid(std::int32_t* ax, std::int32_t* ay) const;
  AreaId areaOfSlow(NodeId tile) const;
  NodeId memControllerOfSlow(std::uint64_t page) const;

  std::vector<AreaId> areaCache_;  ///< [tile] -> area; empty until built.
  std::vector<NodeId> mcCache_;    ///< memControllerTiles(); empty until built.
};

/// Assignment of tiles to virtual machines.
struct VmLayout {
  std::uint32_t numVms = 0;
  std::vector<VmId> vmOfTile;  ///< size == tiles(); -1 for unassigned.

  VmId vmOf(NodeId tile) const {
    return vmOfTile[static_cast<std::size_t>(tile)];
  }
  std::vector<NodeId> tilesOfVm(VmId vm) const {
    std::vector<NodeId> out;
    for (std::size_t i = 0; i < vmOfTile.size(); ++i)
      if (vmOfTile[i] == vm) out.push_back(static_cast<NodeId>(i));
    return out;
  }

  /// VMs scheduled so that VM i occupies exactly area i (Figure 6, left).
  static VmLayout matched(const CmpConfig& cfg, std::uint32_t numVms);

  /// The "-alt" layout (Figure 6, right): VMs deliberately straddle area
  /// boundaries. Each VM takes a horizontal band of rows, which crosses
  /// the vertical area boundary of the default quadrant division.
  static VmLayout alternative(const CmpConfig& cfg, std::uint32_t numVms);

  /// Area-aligned layout covering *all* tiles: tiles are ordered by area
  /// and chunked into numVms equal groups, so each VM occupies whole
  /// areas (or whole fractions of one) for any area granularity. Used by
  /// the area-count ablation, where the VM size stays fixed while the
  /// hard-wired division varies.
  static VmLayout contiguous(const CmpConfig& cfg, std::uint32_t numVms);
};

}  // namespace eecc
