// Top-level system model: one in-order core per tile issuing the memory
// reference stream of its pinned thread into the coherence protocol over
// the NoC. This is the reproduction's stand-in for Virtual-GEMS's
// full-system timing simulation (see DESIGN.md).
//
// Core timing: 2-way in-order UltraSPARC-III+-style cores are modeled as
// an issue stream — each operation carries its compute gap (cycles of
// non-memory work) followed by one memory access; L1 hits cost
// tag+data latency; misses block the core until the coherence transaction
// completes. Cores execute hits in quanta of a few hundred cycles between
// event-queue synchronizations (hit-path state probes may be up to one
// quantum early relative to the modeled core clock; misses are issued at
// their exact modeled time).
#pragma once

#include <memory>
#include <vector>

#include "common/check.h"
#include "core/config.h"
#include "noc/network.h"
#include "protocols/protocol.h"
#include "sim/event_queue.h"
#include "workload/workload.h"

namespace eecc {

class MonitorSet;
class TimelineSampler;
class TraceSink;
class AttributionLedger;
class StageRecorder;

class CmpSystem {
 public:
  CmpSystem(const CmpConfig& cfg, ProtocolKind kind, const VmLayout& layout,
            std::vector<BenchmarkProfile> perVm, std::uint64_t seed = 1,
            bool dedupEnabled = true);

  /// Drives the cores from an arbitrary OpSource (e.g. a TraceSource);
  /// workload() is unavailable in this mode.
  CmpSystem(const CmpConfig& cfg, ProtocolKind kind,
            std::unique_ptr<OpSource> source);

  /// Runs all cores for a fixed window of `cycles` (the paper's
  /// "transactions in 500 million cycles" methodology), then drains
  /// in-flight misses.
  void run(Tick cycles);

  /// Runs `cycles` of warmup and then clears every measurement counter
  /// (caches stay warm; the measured window starts cold on statistics).
  void warmup(Tick cycles);

  /// Re-reads tileActive() from the source for every core. The VM
  /// lifecycle engine (src/scaleout) calls this at churn boundaries —
  /// after a boot, shutdown or migration repins threads — between run()
  /// segments, when every in-flight miss has drained. A reactivated
  /// core's clock jumps to now; its statistics keep accumulating.
  void refreshActive();

  /// Attaches the conformance monitors: `checker` observes every access
  /// and write commit through the protocol's check hooks, and run() is
  /// chunked so the full-state sweeps execute every `sweepEvery` cycles
  /// plus once after the final drain. Pass nullptr to detach. With no
  /// checker attached the protocol hot path pays a single untaken branch
  /// per access (see check/hooks.h).
  void attachChecker(MonitorSet* checker, Tick sweepEvery = 50'000);

  /// Attaches the observability timeline sampler: run() is chunked so
  /// `sampler` captures a metrics row every sampler->period() cycles, plus
  /// one after the final drain. Sampling is a pure observation — event
  /// order and every counter are bit-identical with or without it. Pass
  /// nullptr to detach.
  void attachTimeline(TimelineSampler* sampler);

  /// Attaches the message/transaction trace sink to both the protocol and
  /// the network (obs/trace.h); nullptr detaches. Zero-cost when detached.
  void attachTrace(TraceSink* sink);

  /// Attaches the miss-path flight recorder (obs/stage.h) to the protocol;
  /// nullptr detaches. Pure observation behind one untaken branch per
  /// hook site when detached.
  void attachStageRecorder(StageRecorder* rec);

  /// Attaches the per-VM/per-area attribution ledger (obs/ledger.h) to the
  /// protocol and the network, binds the protocol's live energy counters,
  /// and — when the ledger's occupancyEvery() is nonzero — chunks run() so
  /// cache occupancy is sampled on that cadence (plus once after the final
  /// drain). Pure observation: event order and every chip-level counter
  /// are bit-identical with or without it. Pass nullptr to detach.
  void attachLedger(AttributionLedger* ledger);

  Tick cycles() const { return cyclesRun_; }
  std::uint64_t opsCompleted() const;
  std::uint64_t opsCompleted(NodeId tile) const {
    return cores_[static_cast<std::size_t>(tile)].opsDone;
  }
  /// Throughput in completed memory operations per cycle — the basis of
  /// both of Table IV's performance metrics under a fixed window.
  double throughput() const;

  Protocol& protocol() { return *protocol_; }
  const Protocol& protocol() const { return *protocol_; }
  Network& network() { return net_; }
  const Network& network() const { return net_; }
  Workload& workload() {
    auto* w = dynamic_cast<Workload*>(source_.get());
    EECC_CHECK_MSG(w != nullptr, "system is not driven by a Workload");
    return *w;
  }
  const CmpConfig& config() const { return cfg_; }
  EventQueue& events() { return events_; }
  const EventQueue& events() const { return events_; }

 private:
  struct Core {
    NodeId tile = 0;
    bool active = false;
    Tick localTime = 0;
    std::uint64_t opsDone = 0;
    bool waiting = false;  ///< Blocked on an outstanding miss.
    // Hit/miss handshake between coreStep's issue loop and the access
    // completion callback (which runs synchronously on an L1 hit). One
    // access per core is outstanding at a time, so the flags can live
    // here instead of in per-call heap state.
    bool inCall = false;   ///< coreStep is inside protocol_->access().
    bool wasHit = false;   ///< The completion ran synchronously (a hit).
  };

  static constexpr Tick kQuantum = 200;

  void coreStep(NodeId tile);
  void finishLedger();
  Tick hitLatency() const {
    return cfg_.l1.tagLatency + cfg_.l1.dataLatency;
  }

  CmpConfig cfg_;
  EventQueue events_;
  MeshTopology topo_;
  Network net_;
  std::unique_ptr<OpSource> source_;
  std::unique_ptr<Protocol> protocol_;
  std::vector<Core> cores_;
  Tick stopAt_ = 0;
  Tick cyclesRun_ = 0;
  MonitorSet* checker_ = nullptr;  // not owned
  Tick sweepEvery_ = 50'000;
  TimelineSampler* timeline_ = nullptr;  // not owned
  AttributionLedger* ledger_ = nullptr;  // not owned
};

}  // namespace eecc
