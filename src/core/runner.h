// Parallel experiment runner: a fixed-size thread pool that executes
// independent ExperimentConfigs concurrently.
//
// Every CmpSystem is self-contained and seed-deterministic — no module
// keeps mutable global state — so N experiments shard perfectly across
// threads. Results (and the per-run metrics) are collected into
// submission-order slots, which makes the output bit-identical to a
// sequential loop regardless of completion order; runner_test asserts
// this down to every counter. The pool size comes from the EECC_JOBS
// environment variable, defaulting to std::thread::hardware_concurrency().
//
// Failure containment (DESIGN.md §12): an exception inside one
// experiment no longer kills the batch. runMany() catches per-task
// exceptions, optionally retries them (EECC_RETRIES / setRetries), and
// surfaces what survives as a structured ExperimentResult with `failed`
// set — the rest of the sweep runs to completion. Attach a SweepJournal
// (core/journal.h) to persist completed experiments and resume an
// interrupted sweep bit-identically.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"

namespace eecc {

class SweepJournal;

/// Wall-clock and throughput instrumentation for one experiment run —
/// the per-experiment rows of BENCH_sweep.json.
struct RunMetrics {
  std::string workload;
  ProtocolKind protocol = ProtocolKind::Directory;
  std::uint64_t simEvents = 0;  ///< Kernel events executed (incl. warmup).
  std::uint64_t ops = 0;        ///< Memory operations completed (measured).
  double wallSeconds = 0.0;
  bool failed = false;    ///< Experiment threw on every attempt.
  bool restored = false;  ///< Spliced from a sweep journal (wall is 0).
  double eventsPerSec() const {
    return wallSeconds > 0.0 ? static_cast<double>(simEvents) / wallSeconds
                             : 0.0;
  }
};

class ExperimentRunner {
 public:
  /// EECC_JOBS environment override, else hardware_concurrency (min 1).
  static unsigned defaultJobs();

  /// EECC_RETRIES environment override, else 0 (fail on first throw).
  static unsigned defaultRetries();

  /// jobs == 0 selects defaultJobs().
  explicit ExperimentRunner(unsigned jobs = 0);
  ~ExperimentRunner();

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  unsigned jobs() const { return jobs_; }

  /// Progress heartbeat on stderr (never stdout — stdout carries CSV and
  /// result tables): one line per completed experiment with done/total,
  /// cumulative kernel events per wall second, and a remaining-time
  /// estimate. Off by default; enable for long interactive sweeps
  /// (eecc_sim --progress).
  void enableProgress(bool on) { progress_ = on; }

  /// Bounded retry for throwing experiments: a task is re-attempted up to
  /// `retries` extra times before its slot becomes a failed result. The
  /// experiment seed is unchanged across attempts (results stay
  /// bit-identical); only the EECC_FAULT_RATE injection hash folds the
  /// attempt index in, so injected transient faults clear
  /// deterministically on retry. The constructor seeds this from
  /// EECC_RETRIES.
  void setRetries(unsigned retries) { retries_ = retries; }
  unsigned retries() const { return retries_; }

  /// Deterministic fault injection for testing the containment/retry/
  /// resume machinery (eecc_sim --inject-fault N): the experiment with
  /// global submission ordinal `nth` (1-based, counted across every
  /// runMany on this runner) throws on its first attempt. 0 disables.
  /// Journal-spliced experiments do not consume ordinals.
  void setInjectFault(std::uint64_t nth) { injectFaultAt_ = nth; }

  /// Attaches a sweep journal (not owned; may be nullptr to detach).
  /// Completed experiments are appended to it, and configs whose digest
  /// it already holds are spliced from it instead of executed — the
  /// restored results are bit-identical to live runs. Failed experiments
  /// are never journaled.
  void setJournal(SweepJournal* journal) { journal_ = journal; }

  /// Runs every configuration on the pool; returns results in submission
  /// order. Appends one RunMetrics per experiment (same order) to
  /// metrics(). A throwing experiment yields a result with `failed` set
  /// instead of propagating (see anyFailed()).
  std::vector<ExperimentResult> runMany(
      const std::vector<ExperimentConfig>& cfgs);

  /// The same workload under every protocol, in the paper's order.
  std::vector<ExperimentResult> runAllProtocols(ExperimentConfig cfg);

  /// Generic fan-out for drivers that build CmpSystems directly: executes
  /// all tasks on the pool and blocks until every one completed. Tasks
  /// must be mutually independent. A throwing task no longer terminates
  /// the process or deadlocks the batch: every task still runs, and the
  /// submission-order-first exception is rethrown here afterwards.
  void runTasks(std::vector<std::function<void()>> tasks);

  /// As runTasks, but returns the per-task exceptions (slots are null for
  /// tasks that completed) in submission order instead of rethrowing.
  std::vector<std::exception_ptr> runTasksCollect(
      std::vector<std::function<void()>> tasks);

  /// Metrics of every experiment run so far, in submission order.
  const std::vector<RunMetrics>& metrics() const { return metrics_; }
  void clearMetrics() { metrics_.clear(); }

 private:
  void workerLoop();

  unsigned jobs_;
  bool progress_ = false;
  unsigned retries_ = 0;
  std::uint64_t injectFaultAt_ = 0;
  std::uint64_t submitted_ = 0;  ///< Experiments submitted across runMany.
  SweepJournal* journal_ = nullptr;  // not owned
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  bool shutdown_ = false;

  std::vector<RunMetrics> metrics_;
};

/// True if any result in the batch carries a contained failure.
bool anyFailed(const std::vector<ExperimentResult>& results);

/// Writes a BENCH_sweep.json-style record: sweep name, pool width, total
/// wall clock, the per-experiment metrics rows, and any extra scalar
/// fields (e.g. the event-kernel microbenchmark speedup). The file is
/// written atomically (common/atomic_file.h); returns false on failure.
bool writeSweepJson(
    const std::string& path, const std::string& sweepName, unsigned jobs,
    double sweepWallSeconds, const std::vector<RunMetrics>& metrics,
    const std::vector<std::pair<std::string, double>>& extraFields = {});

}  // namespace eecc
