// Parallel experiment runner: a fixed-size thread pool that executes
// independent ExperimentConfigs concurrently.
//
// Every CmpSystem is self-contained and seed-deterministic — no module
// keeps mutable global state — so N experiments shard perfectly across
// threads. Results (and the per-run metrics) are collected into
// submission-order slots, which makes the output bit-identical to a
// sequential loop regardless of completion order; runner_test asserts
// this down to every counter. The pool size comes from the EECC_JOBS
// environment variable, defaulting to std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"

namespace eecc {

/// Wall-clock and throughput instrumentation for one experiment run —
/// the per-experiment rows of BENCH_sweep.json.
struct RunMetrics {
  std::string workload;
  ProtocolKind protocol = ProtocolKind::Directory;
  std::uint64_t simEvents = 0;  ///< Kernel events executed (incl. warmup).
  std::uint64_t ops = 0;        ///< Memory operations completed (measured).
  double wallSeconds = 0.0;
  double eventsPerSec() const {
    return wallSeconds > 0.0 ? static_cast<double>(simEvents) / wallSeconds
                             : 0.0;
  }
};

class ExperimentRunner {
 public:
  /// EECC_JOBS environment override, else hardware_concurrency (min 1).
  static unsigned defaultJobs();

  /// jobs == 0 selects defaultJobs().
  explicit ExperimentRunner(unsigned jobs = 0);
  ~ExperimentRunner();

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  unsigned jobs() const { return jobs_; }

  /// Progress heartbeat on stderr (never stdout — stdout carries CSV and
  /// result tables): one line per completed experiment with done/total,
  /// cumulative kernel events per wall second, and a remaining-time
  /// estimate. Off by default; enable for long interactive sweeps
  /// (eecc_sim --progress).
  void enableProgress(bool on) { progress_ = on; }

  /// Runs every configuration on the pool; returns results in submission
  /// order. Appends one RunMetrics per experiment (same order) to
  /// metrics().
  std::vector<ExperimentResult> runMany(
      const std::vector<ExperimentConfig>& cfgs);

  /// The same workload under every protocol, in the paper's order.
  std::vector<ExperimentResult> runAllProtocols(ExperimentConfig cfg);

  /// Generic fan-out for drivers that build CmpSystems directly: executes
  /// all tasks on the pool and blocks until every one completed. Tasks
  /// must be mutually independent.
  void runTasks(std::vector<std::function<void()>> tasks);

  /// Metrics of every experiment run so far, in submission order.
  const std::vector<RunMetrics>& metrics() const { return metrics_; }
  void clearMetrics() { metrics_.clear(); }

 private:
  void workerLoop();

  unsigned jobs_;
  bool progress_ = false;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  bool shutdown_ = false;

  std::vector<RunMetrics> metrics_;
};

/// Writes a BENCH_sweep.json-style record: sweep name, pool width, total
/// wall clock, the per-experiment metrics rows, and any extra scalar
/// fields (e.g. the event-kernel microbenchmark speedup).
void writeSweepJson(
    const std::string& path, const std::string& sweepName, unsigned jobs,
    double sweepWallSeconds, const std::vector<RunMetrics>& metrics,
    const std::vector<std::pair<std::string, double>>& extraFields = {});

}  // namespace eecc
