#include "core/cmp_system.h"

#include <algorithm>

#include "check/monitor.h"
#include "obs/ledger.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace eecc {

CmpSystem::CmpSystem(const CmpConfig& cfg, ProtocolKind kind,
                     const VmLayout& layout,
                     std::vector<BenchmarkProfile> perVm, std::uint64_t seed,
                     bool dedupEnabled)
    : cfg_(cfg),
      topo_(cfg.meshWidth, cfg.meshHeight),
      net_(events_, topo_, cfg.net),
      source_(std::make_unique<Workload>(cfg, layout, std::move(perVm),
                                         seed, dedupEnabled)),
      protocol_(makeProtocol(kind, events_, net_, cfg_)) {
  cores_.resize(static_cast<std::size_t>(cfg_.tiles()));
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    cores_[static_cast<std::size_t>(t)].tile = t;
    cores_[static_cast<std::size_t>(t)].active = source_->tileActive(t);
  }
}

CmpSystem::CmpSystem(const CmpConfig& cfg, ProtocolKind kind,
                     std::unique_ptr<OpSource> source)
    : cfg_(cfg),
      topo_(cfg.meshWidth, cfg.meshHeight),
      net_(events_, topo_, cfg.net),
      source_(std::move(source)),
      protocol_(makeProtocol(kind, events_, net_, cfg_)) {
  cores_.resize(static_cast<std::size_t>(cfg_.tiles()));
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    cores_[static_cast<std::size_t>(t)].tile = t;
    cores_[static_cast<std::size_t>(t)].active = source_->tileActive(t);
  }
}

void CmpSystem::coreStep(NodeId tile) {
  Core& core = cores_[static_cast<std::size_t>(tile)];
  if (!core.active || core.waiting) return;
  const Tick horizon = events_.now() + kQuantum;

  while (true) {
    if (core.localTime >= stopAt_) return;  // window over: stop issuing
    if (core.localTime >= horizon) {
      events_.scheduleAt(core.localTime, [this, tile] { coreStep(tile); });
      return;
    }
    if (source_->exhausted(tile)) {  // bounded stream fully issued
      core.active = false;
      return;
    }
    const MemOp op = source_->next(tile);
    core.localTime += op.computeCycles;
    const Addr block = blockAddr(op.addr);

    // The completion callback may run synchronously (L1 hit) or after the
    // miss transaction finishes, long past this stack frame. One access
    // per core is outstanding at a time, so the hit/miss handshake lives
    // in the Core itself (fits the callback in std::function's inline
    // storage; the old per-op make_shared pair dominated hit-path time).
    core.inCall = true;
    core.wasHit = false;
    protocol_->access(tile, block, op.type, [this, tile] {
      Core& c = cores_[static_cast<std::size_t>(tile)];
      c.opsDone += 1;
      if (c.inCall) {
        c.wasHit = true;  // L1 hit: the loop below continues
        return;
      }
      // Miss completion: the core resumes now.
      c.waiting = false;
      c.localTime = events_.now() + 1;
      events_.scheduleAfter(1, [this, tile] { coreStep(tile); });
    });
    core.inCall = false;
    if (core.wasHit) {
      core.localTime += hitLatency();
      continue;
    }
    core.waiting = true;
    return;
  }
}

void CmpSystem::run(Tick cycles) {
  stopAt_ = events_.now() + cycles;
  cyclesRun_ += cycles;
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    Core& core = cores_[static_cast<std::size_t>(t)];
    if (core.localTime < events_.now()) core.localTime = events_.now();
    events_.scheduleAfter(0, [this, t] { coreStep(t); });
  }
  const bool ledgerSamples =
      ledger_ != nullptr && ledger_->occupancyEvery() > 0;
  if (checker_ == nullptr && timeline_ == nullptr && !ledgerSamples) {
    events_.runUntil(stopAt_);
    // Drain in-flight misses (no new operations are issued past stopAt_).
    events_.runToCompletion();
    finishLedger();
    return;
  }
  // Chunked so the monitors' full-state sweeps, the timeline samples and
  // the ledger's occupancy samples run between event bursts. (A
  // self-rescheduling sweep/sample event would keep the queue non-empty
  // and break the runToCompletion() drain below.) None of them mutates
  // simulator state, so event order and every counter are identical to
  // the unchunked run.
  Tick lastSweep = kTickMax;
  Tick lastSample = kTickMax;
  Tick nextSample =
      timeline_ != nullptr ? events_.now() + timeline_->period() : Tick{0};
  Tick lastOcc = kTickMax;
  Tick nextOcc =
      ledgerSamples ? events_.now() + ledger_->occupancyEvery() : Tick{0};
  while (events_.now() < stopAt_ && !events_.empty()) {
    Tick target = stopAt_;
    if (checker_ != nullptr)
      target = std::min(target, events_.now() + sweepEvery_);
    if (timeline_ != nullptr) target = std::min(target, nextSample);
    if (ledgerSamples) target = std::min(target, nextOcc);
    events_.runUntil(target);
    if (checker_ != nullptr) {
      checker_->sweep(*protocol_, events_.now());
      lastSweep = events_.now();
    }
    if (timeline_ != nullptr && events_.now() >= nextSample) {
      timeline_->sample(events_.now());
      lastSample = events_.now();
      nextSample = events_.now() + timeline_->period();
    }
    if (ledgerSamples && events_.now() >= nextOcc) {
      ledger_->sampleOccupancy(*protocol_);
      lastOcc = events_.now();
      nextOcc = events_.now() + ledger_->occupancyEvery();
    }
  }
  events_.runToCompletion();  // drain in-flight misses
  if (checker_ != nullptr && events_.now() != lastSweep)
    checker_->sweep(*protocol_, events_.now());
  if (timeline_ != nullptr && events_.now() != lastSample)
    timeline_->sample(events_.now());
  if (ledger_ != nullptr && events_.now() != lastOcc) finishLedger();
  else if (ledger_ != nullptr) ledger_->finalize();
}

/// End-of-run ledger bookkeeping: one final occupancy sample at drain time
/// and a flush of any energy accrued outside a work scope, so snapshots
/// taken after run() decompose the chip counters exactly.
void CmpSystem::finishLedger() {
  if (ledger_ == nullptr) return;
  ledger_->sampleOccupancy(*protocol_);
  ledger_->finalize();
}

void CmpSystem::attachChecker(MonitorSet* checker, Tick sweepEvery) {
  checker_ = checker;
  sweepEvery_ = sweepEvery > 0 ? sweepEvery : 50'000;
  protocol_->setCheckHooks(checker);
}

void CmpSystem::attachTimeline(TimelineSampler* sampler) {
  timeline_ = sampler;
}

void CmpSystem::attachTrace(TraceSink* sink) {
  protocol_->setTraceSink(sink);
  net_.setTraceSink(sink);
}

void CmpSystem::attachStageRecorder(StageRecorder* rec) {
  protocol_->setStageRecorder(rec);
}

void CmpSystem::attachLedger(AttributionLedger* ledger) {
  ledger_ = ledger;
  protocol_->setLedger(ledger);
  net_.setLedger(ledger);
  if (ledger != nullptr) ledger->bindEnergy(&protocol_->energyEvents());
}

void CmpSystem::warmup(Tick cycles) {
  run(cycles);
  protocol_->resetStats();
  net_.resetStats();
  for (Core& c : cores_) c.opsDone = 0;
  cyclesRun_ = 0;
  // A ledger attached before warmup restarts its window with the stats:
  // warmup activity is dropped and the energy baseline re-snapped (the
  // counters it diffs against were just zeroed).
  if (ledger_ != nullptr) ledger_->resetWindow();
}

void CmpSystem::refreshActive() {
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    Core& core = cores_[static_cast<std::size_t>(t)];
    const bool nowActive = source_->tileActive(t);
    if (nowActive && !core.active && core.localTime < events_.now())
      core.localTime = events_.now();
    core.active = nowActive;
  }
}

std::uint64_t CmpSystem::opsCompleted() const {
  std::uint64_t total = 0;
  for (const Core& c : cores_) total += c.opsDone;
  return total;
}

double CmpSystem::throughput() const {
  if (cyclesRun_ == 0) return 0.0;
  return static_cast<double>(opsCompleted()) /
         static_cast<double>(cyclesRun_);
}

}  // namespace eecc
