#include "core/runner.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace eecc {

unsigned ExperimentRunner::defaultJobs() {
  if (const char* env = std::getenv("EECC_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs()) {
  workers_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ExperimentRunner::~ExperimentRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ExperimentRunner::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      taskReady_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ExperimentRunner::runTasks(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // Batch completion state shared with the workers; everything on the
  // stack because runTasks blocks until remaining hits zero.
  std::mutex doneMutex;
  std::condition_variable allDone;
  std::size_t remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::function<void()>& t : tasks) {
      tasks_.push([&doneMutex, &allDone, &remaining, task = std::move(t)] {
        task();
        std::lock_guard<std::mutex> doneLock(doneMutex);
        if (--remaining == 0) allDone.notify_one();
      });
    }
  }
  taskReady_.notify_all();
  std::unique_lock<std::mutex> lock(doneMutex);
  allDone.wait(lock, [&remaining] { return remaining == 0; });
}

std::vector<ExperimentResult> ExperimentRunner::runMany(
    const std::vector<ExperimentConfig>& cfgs) {
  std::vector<ExperimentResult> results(cfgs.size());
  std::vector<RunMetrics> batch(cfgs.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    tasks.push_back([&cfgs, &results, &batch, i] {
      const auto start = std::chrono::steady_clock::now();
      results[i] = runExperiment(cfgs[i]);
      const auto end = std::chrono::steady_clock::now();
      RunMetrics& m = batch[i];
      m.workload = cfgs[i].workloadName;
      m.protocol = cfgs[i].protocol;
      m.simEvents = results[i].simEvents;
      m.ops = results[i].ops;
      m.wallSeconds = std::chrono::duration<double>(end - start).count();
    });
  }
  runTasks(std::move(tasks));
  metrics_.insert(metrics_.end(), batch.begin(), batch.end());
  return results;
}

std::vector<ExperimentResult> ExperimentRunner::runAllProtocols(
    ExperimentConfig cfg) {
  std::vector<ExperimentConfig> cfgs;
  cfgs.reserve(allProtocolKinds().size());
  for (const ProtocolKind kind : allProtocolKinds()) {
    cfg.protocol = kind;
    cfgs.push_back(cfg);
  }
  return runMany(cfgs);
}

void writeSweepJson(
    const std::string& path, const std::string& sweepName, unsigned jobs,
    double sweepWallSeconds, const std::vector<RunMetrics>& metrics,
    const std::vector<std::pair<std::string, double>>& extraFields) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "writeSweepJson: cannot open %s\n", path.c_str());
    return;
  }
  std::uint64_t totalEvents = 0;
  double sumExpSeconds = 0.0;
  for (const RunMetrics& m : metrics) {
    totalEvents += m.simEvents;
    sumExpSeconds += m.wallSeconds;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"sweep\": \"%s\",\n", sweepName.c_str());
  std::fprintf(f, "  \"jobs\": %u,\n", jobs);
  std::fprintf(f, "  \"experiments\": %zu,\n", metrics.size());
  std::fprintf(f, "  \"wall_seconds\": %.3f,\n", sweepWallSeconds);
  std::fprintf(f, "  \"sum_experiment_seconds\": %.3f,\n", sumExpSeconds);
  std::fprintf(f, "  \"total_sim_events\": %llu,\n",
               static_cast<unsigned long long>(totalEvents));
  std::fprintf(f, "  \"events_per_wall_second\": %.0f,\n",
               sweepWallSeconds > 0.0
                   ? static_cast<double>(totalEvents) / sweepWallSeconds
                   : 0.0);
  for (const auto& [key, value] : extraFields)
    std::fprintf(f, "  \"%s\": %.4f,\n", key.c_str(), value);
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    const RunMetrics& m = metrics[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"protocol\": \"%s\", "
                 "\"sim_events\": %llu, \"ops\": %llu, "
                 "\"wall_seconds\": %.3f, \"events_per_sec\": %.0f}%s\n",
                 m.workload.c_str(), protocolName(m.protocol),
                 static_cast<unsigned long long>(m.simEvents),
                 static_cast<unsigned long long>(m.ops), m.wallSeconds,
                 m.eventsPerSec(), i + 1 < metrics.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace eecc
