#include "core/runner.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"
#include "common/json.h"

namespace eecc {

unsigned ExperimentRunner::defaultJobs() {
  if (const char* env = std::getenv("EECC_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs()) {
  workers_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ExperimentRunner::~ExperimentRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ExperimentRunner::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      taskReady_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ExperimentRunner::runTasks(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // Batch completion state shared with the workers; everything on the
  // stack because runTasks blocks until remaining hits zero.
  std::mutex doneMutex;
  std::condition_variable allDone;
  std::size_t remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::function<void()>& t : tasks) {
      tasks_.push([&doneMutex, &allDone, &remaining, task = std::move(t)] {
        task();
        std::lock_guard<std::mutex> doneLock(doneMutex);
        if (--remaining == 0) allDone.notify_one();
      });
    }
  }
  taskReady_.notify_all();
  std::unique_lock<std::mutex> lock(doneMutex);
  allDone.wait(lock, [&remaining] { return remaining == 0; });
}

std::vector<ExperimentResult> ExperimentRunner::runMany(
    const std::vector<ExperimentConfig>& cfgs) {
  std::vector<ExperimentResult> results(cfgs.size());
  std::vector<RunMetrics> batch(cfgs.size());
  // Heartbeat state shared by the tasks; stack-held because runTasks
  // blocks until the whole batch drained. The heartbeat only reads its
  // own counters, so it cannot perturb results (runner_test's
  // bit-identity holds with progress on).
  struct Progress {
    std::mutex mutex;
    std::size_t done = 0;
    std::uint64_t events = 0;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
  } progress;
  const bool heartbeat = progress_;
  const std::size_t total = cfgs.size();
  std::vector<std::function<void()>> tasks;
  tasks.reserve(cfgs.size());
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    tasks.push_back([&cfgs, &results, &batch, &progress, heartbeat, total,
                     i] {
      const auto start = std::chrono::steady_clock::now();
      results[i] = runExperiment(cfgs[i]);
      const auto end = std::chrono::steady_clock::now();
      RunMetrics& m = batch[i];
      m.workload = cfgs[i].workloadName;
      m.protocol = cfgs[i].protocol;
      m.simEvents = results[i].simEvents;
      m.ops = results[i].ops;
      m.wallSeconds = std::chrono::duration<double>(end - start).count();
      if (heartbeat) {
        std::lock_guard<std::mutex> lock(progress.mutex);
        progress.done += 1;
        progress.events += m.simEvents;
        const double elapsed =
            std::chrono::duration<double>(end - progress.start).count();
        const double rate =
            elapsed > 0.0 ? static_cast<double>(progress.events) / elapsed
                          : 0.0;
        const double eta =
            progress.done > 0
                ? elapsed / static_cast<double>(progress.done) *
                      static_cast<double>(total - progress.done)
                : 0.0;
        std::fprintf(stderr,
                     "[eecc] %zu/%zu experiments  %s %-15s  %.2f Mev/s  "
                     "ETA %.1fs\n",
                     progress.done, total, m.workload.c_str(),
                     protocolName(m.protocol), rate / 1e6, eta);
      }
    });
  }
  runTasks(std::move(tasks));
  metrics_.insert(metrics_.end(), batch.begin(), batch.end());
  return results;
}

std::vector<ExperimentResult> ExperimentRunner::runAllProtocols(
    ExperimentConfig cfg) {
  std::vector<ExperimentConfig> cfgs;
  cfgs.reserve(allProtocolKinds().size());
  for (const ProtocolKind kind : allProtocolKinds()) {
    cfg.protocol = kind;
    cfgs.push_back(cfg);
  }
  return runMany(cfgs);
}

void writeSweepJson(
    const std::string& path, const std::string& sweepName, unsigned jobs,
    double sweepWallSeconds, const std::vector<RunMetrics>& metrics,
    const std::vector<std::pair<std::string, double>>& extraFields) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "writeSweepJson: cannot open %s\n", path.c_str());
    return;
  }
  std::uint64_t totalEvents = 0;
  double sumExpSeconds = 0.0;
  for (const RunMetrics& m : metrics) {
    totalEvents += m.simEvents;
    sumExpSeconds += m.wallSeconds;
  }
  {
    // JsonWriter escapes every name — a sweep or workload called e.g.
    // `mixed"com` must still produce a parseable file.
    JsonWriter w(f);
    w.beginObject();
    w.field("sweep", sweepName);
    w.field("jobs", jobs);
    w.field("experiments", static_cast<std::uint64_t>(metrics.size()));
    w.field("wall_seconds", sweepWallSeconds);
    w.field("sum_experiment_seconds", sumExpSeconds);
    w.field("total_sim_events", totalEvents);
    w.field("events_per_wall_second",
            sweepWallSeconds > 0.0
                ? static_cast<double>(totalEvents) / sweepWallSeconds
                : 0.0);
    for (const auto& [key, value] : extraFields) w.field(key, value);
    w.key("runs");
    w.beginArray();
    for (const RunMetrics& m : metrics) {
      w.beginObject();
      w.field("workload", m.workload);
      w.field("protocol", protocolName(m.protocol));
      w.field("sim_events", m.simEvents);
      w.field("ops", m.ops);
      w.field("wall_seconds", m.wallSeconds);
      w.field("events_per_sec", m.eventsPerSec());
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  std::fclose(f);
}

}  // namespace eecc
