#include "core/runner.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/atomic_file.h"
#include "common/check.h"
#include "common/json.h"
#include "core/journal.h"

namespace eecc {

namespace {

/// what() of a captured exception, for failure reports.
std::string describeException(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

/// Structured error slot for an experiment that threw on every attempt.
ExperimentResult failedResult(const ExperimentConfig& cfg,
                              const std::exception_ptr& e,
                              std::uint32_t attempts) {
  ExperimentResult r;
  r.workload = cfg.workloadName;
  r.protocol = cfg.protocol;
  r.altLayout = cfg.altLayout;
  r.seed = cfg.seed;
  r.failed = true;
  r.error = describeException(e);
  r.attempts = attempts;
  return r;
}

/// EECC_FAULT_RATE: per-(experiment, attempt) injected fault probability
/// in [0, 1]. The decision is a pure hash of the config digest and the
/// attempt index — deterministic across runs, pool widths and schedules,
/// and a retry re-rolls deterministically (the "transient" fault model).
double faultRateFromEnv() {
  const char* env = std::getenv("EECC_FAULT_RATE");
  if (env == nullptr) return 0.0;
  const double rate = std::strtod(env, nullptr);
  return rate > 0.0 ? (rate < 1.0 ? rate : 1.0) : 0.0;
}

bool injectedFaultFires(const std::string& digest, std::uint32_t attempt,
                        double rate) {
  if (rate <= 0.0) return false;
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](unsigned char c) {
    h ^= c;
    h *= 1099511628211ull;
  };
  for (const char c : digest) mix(static_cast<unsigned char>(c));
  mix(':');
  for (std::uint32_t a = attempt; ; a >>= 8) {
    mix(static_cast<unsigned char>(a & 0xff));
    if (a < 0x100) break;
  }
  // FNV alone leaves the trailing bytes (the attempt index) in the low
  // bits only; avalanche so `h >> 11` below actually varies per attempt.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  const double unit =
      static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0, 1)
  return unit < rate;
}

}  // namespace

unsigned ExperimentRunner::defaultJobs() {
  if (const char* env = std::getenv("EECC_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

unsigned ExperimentRunner::defaultRetries() {
  if (const char* env = std::getenv("EECC_RETRIES")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 0) return static_cast<unsigned>(v);
  }
  return 0;
}

ExperimentRunner::ExperimentRunner(unsigned jobs)
    : jobs_(jobs > 0 ? jobs : defaultJobs()), retries_(defaultRetries()) {
  workers_.reserve(jobs_);
  for (unsigned i = 0; i < jobs_; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

ExperimentRunner::~ExperimentRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ExperimentRunner::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      taskReady_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with a drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

std::vector<std::exception_ptr> ExperimentRunner::runTasksCollect(
    std::vector<std::function<void()>> tasks) {
  std::vector<std::exception_ptr> errors(tasks.size());
  if (tasks.empty()) return errors;
  // Batch completion state shared with the workers; everything on the
  // stack because this call blocks until remaining hits zero. The
  // decrement sits outside the try: a throwing task must still count
  // down, or the submitting thread would wait forever (the pre-PR-5
  // deadlock — and with no catch at all, std::terminate).
  std::mutex doneMutex;
  std::condition_variable allDone;
  std::size_t remaining = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      tasks_.push([&doneMutex, &allDone, &remaining, &errors, i,
                   task = std::move(tasks[i])] {
        try {
          task();
        } catch (...) {
          errors[i] = std::current_exception();
        }
        std::lock_guard<std::mutex> doneLock(doneMutex);
        if (--remaining == 0) allDone.notify_one();
      });
    }
  }
  taskReady_.notify_all();
  std::unique_lock<std::mutex> lock(doneMutex);
  allDone.wait(lock, [&remaining] { return remaining == 0; });
  return errors;
}

void ExperimentRunner::runTasks(std::vector<std::function<void()>> tasks) {
  const std::vector<std::exception_ptr> errors =
      runTasksCollect(std::move(tasks));
  // Every task ran; surface the submission-order-first failure.
  for (const std::exception_ptr& e : errors)
    if (e) std::rethrow_exception(e);
}

std::vector<ExperimentResult> ExperimentRunner::runMany(
    const std::vector<ExperimentConfig>& cfgs) {
  std::vector<ExperimentResult> results(cfgs.size());
  std::vector<RunMetrics> batch(cfgs.size());
  const double faultRate = faultRateFromEnv();
  const bool wantDigest = journal_ != nullptr || faultRate > 0.0;

  // Journal splice: configs already completed in a resumed sweep get
  // their journaled result (bit-identical thanks to seed determinism)
  // and never reach the pool.
  std::vector<std::string> digests(cfgs.size());
  std::vector<std::size_t> toRun;
  toRun.reserve(cfgs.size());
  std::size_t spliced = 0;
  for (std::size_t i = 0; i < cfgs.size(); ++i) {
    if (wantDigest) digests[i] = SweepJournal::configDigest(cfgs[i]);
    const ExperimentResult* restored =
        journal_ != nullptr ? journal_->find(digests[i]) : nullptr;
    if (restored != nullptr) {
      results[i] = *restored;
      RunMetrics& m = batch[i];
      m.workload = results[i].workload;
      m.protocol = results[i].protocol;
      m.simEvents = results[i].simEvents;
      m.ops = results[i].ops;
      m.restored = true;
      ++spliced;
    } else {
      toRun.push_back(i);
    }
  }

  // Heartbeat state shared by the tasks; stack-held because runTasks
  // blocks until the whole batch drained. The heartbeat only reads its
  // own counters, so it cannot perturb results (runner_test's
  // bit-identity holds with progress on).
  struct Progress {
    std::mutex mutex;
    std::size_t done = 0;
    std::uint64_t events = 0;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
  } progress;
  progress.done = spliced;
  const bool heartbeat = progress_;
  const std::size_t total = cfgs.size();
  if (heartbeat && spliced > 0)
    std::fprintf(stderr, "[eecc] %zu/%zu experiments restored from %s\n",
                 spliced, total, journal_->path().c_str());

  const unsigned retries = retries_;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(toRun.size());
  for (const std::size_t i : toRun) {
    const std::uint64_t ordinal = ++submitted_;
    const std::uint64_t faultAt = injectFaultAt_;
    tasks.push_back([this, &cfgs, &results, &batch, &digests, &progress,
                     heartbeat, total, retries, faultRate, ordinal, faultAt,
                     i] {
      const auto start = std::chrono::steady_clock::now();
      for (std::uint32_t attempt = 0;; ++attempt) {
        try {
          if (faultAt != 0 && ordinal == faultAt && attempt == 0)
            throw std::runtime_error(
                "injected fault (--inject-fault " +
                std::to_string(faultAt) + ") in " + cfgs[i].workloadName);
          if (injectedFaultFires(digests[i], attempt, faultRate))
            throw std::runtime_error("injected fault (EECC_FAULT_RATE) in " +
                                     cfgs[i].workloadName);
          results[i] = runExperiment(cfgs[i]);
          results[i].attempts = attempt + 1;
          break;
        } catch (...) {
          const std::exception_ptr e = std::current_exception();
          if (attempt >= retries) {
            results[i] = failedResult(cfgs[i], e, attempt + 1);
            break;
          }
          std::fprintf(stderr, "[eecc] %s %s seed=%llu attempt %u failed "
                               "(%s); retrying\n",
                       cfgs[i].workloadName.c_str(),
                       protocolName(cfgs[i].protocol),
                       static_cast<unsigned long long>(cfgs[i].seed),
                       attempt + 1, describeException(e).c_str());
        }
      }
      const auto end = std::chrono::steady_clock::now();
      RunMetrics& m = batch[i];
      m.workload = cfgs[i].workloadName;
      m.protocol = cfgs[i].protocol;
      m.simEvents = results[i].simEvents;
      m.ops = results[i].ops;
      m.wallSeconds = std::chrono::duration<double>(end - start).count();
      m.failed = results[i].failed;
      if (journal_ != nullptr && !results[i].failed)
        journal_->append(digests[i], results[i]);
      if (heartbeat) {
        std::lock_guard<std::mutex> lock(progress.mutex);
        progress.done += 1;
        progress.events += m.simEvents;
        const double elapsed =
            std::chrono::duration<double>(end - progress.start).count();
        const double rate =
            elapsed > 0.0 ? static_cast<double>(progress.events) / elapsed
                          : 0.0;
        const double eta =
            progress.done > 0
                ? elapsed / static_cast<double>(progress.done) *
                      static_cast<double>(total - progress.done)
                : 0.0;
        std::fprintf(stderr,
                     "[eecc] %zu/%zu experiments  %s %-15s  %.2f Mev/s  "
                     "ETA %.1fs%s\n",
                     progress.done, total, m.workload.c_str(),
                     protocolName(m.protocol), rate / 1e6, eta,
                     m.failed ? "  [FAILED]" : "");
      }
    });
  }
  // Tasks catch everything themselves; runTasksCollect is belt and
  // braces so a throwing std::function move could still not deadlock us.
  runTasksCollect(std::move(tasks));
  metrics_.insert(metrics_.end(), batch.begin(), batch.end());
  return results;
}

std::vector<ExperimentResult> ExperimentRunner::runAllProtocols(
    ExperimentConfig cfg) {
  std::vector<ExperimentConfig> cfgs;
  cfgs.reserve(allProtocolKinds().size());
  for (const ProtocolKind kind : allProtocolKinds()) {
    cfg.protocol = kind;
    cfgs.push_back(cfg);
  }
  return runMany(cfgs);
}

bool anyFailed(const std::vector<ExperimentResult>& results) {
  for (const ExperimentResult& r : results)
    if (r.failed) return true;
  return false;
}

bool writeSweepJson(
    const std::string& path, const std::string& sweepName, unsigned jobs,
    double sweepWallSeconds, const std::vector<RunMetrics>& metrics,
    const std::vector<std::pair<std::string, double>>& extraFields) {
  AtomicFile out(path);
  if (!out) return false;
  std::uint64_t totalEvents = 0;
  double sumExpSeconds = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t restored = 0;
  for (const RunMetrics& m : metrics) {
    totalEvents += m.simEvents;
    sumExpSeconds += m.wallSeconds;
    if (m.failed) ++failures;
    if (m.restored) ++restored;
  }
  {
    // JsonWriter escapes every name — a sweep or workload called e.g.
    // `mixed"com` must still produce a parseable file.
    JsonWriter w(out.get());
    w.beginObject();
    w.field("sweep", sweepName);
    w.field("jobs", jobs);
    w.field("experiments", static_cast<std::uint64_t>(metrics.size()));
    w.field("failures", failures);
    w.field("restored", restored);
    w.field("wall_seconds", sweepWallSeconds);
    w.field("sum_experiment_seconds", sumExpSeconds);
    w.field("total_sim_events", totalEvents);
    w.field("events_per_wall_second",
            sweepWallSeconds > 0.0
                ? static_cast<double>(totalEvents) / sweepWallSeconds
                : 0.0);
    for (const auto& [key, value] : extraFields) w.field(key, value);
    w.key("runs");
    w.beginArray();
    for (const RunMetrics& m : metrics) {
      w.beginObject();
      w.field("workload", m.workload);
      w.field("protocol", protocolName(m.protocol));
      w.field("sim_events", m.simEvents);
      w.field("ops", m.ops);
      w.field("wall_seconds", m.wallSeconds);
      w.field("events_per_sec", m.eventsPerSec());
      if (m.failed) w.field("failed", true);
      if (m.restored) w.field("restored", true);
      w.endObject();
    }
    w.endArray();
    w.endObject();
  }
  return out.commit();
}

}  // namespace eecc
