#include "core/config.h"

#include <algorithm>

namespace eecc {

void CmpConfig::areaGrid(std::int32_t* ax, std::int32_t* ay) const {
  // Factor numAreas into ax*ay with ax across the width, preferring the
  // squarest split that divides the mesh evenly.
  const auto na = static_cast<std::int32_t>(numAreas);
  std::int32_t bestX = -1;
  for (std::int32_t x = 1; x <= na; ++x) {
    if (na % x != 0) continue;
    const std::int32_t y = na / x;
    if (meshWidth % x != 0 || meshHeight % y != 0) continue;
    if (bestX < 0 ||
        std::abs(meshWidth / x - meshHeight / y) <
            std::abs(meshWidth / bestX - meshHeight / (na / bestX)))
      bestX = x;
  }
  EECC_CHECK_MSG(bestX > 0, "numAreas does not tile the mesh evenly");
  *ax = bestX;
  *ay = na / bestX;
}

AreaId CmpConfig::areaOfSlow(NodeId tile) const {
  std::int32_t ax = 0;
  std::int32_t ay = 0;
  areaGrid(&ax, &ay);
  const std::int32_t aw = meshWidth / ax;   // area width in tiles
  const std::int32_t ah = meshHeight / ay;  // area height in tiles
  const std::int32_t x = tile % meshWidth;
  const std::int32_t y = tile / meshWidth;
  return (y / ah) * ax + (x / aw);
}

void CmpConfig::buildCaches() {
  areaCache_.resize(static_cast<std::size_t>(tiles()));
  for (NodeId t = 0; t < tiles(); ++t)
    areaCache_[static_cast<std::size_t>(t)] = areaOfSlow(t);
  mcCache_ = memControllerTiles();
}

std::vector<NodeId> CmpConfig::tilesInArea(AreaId area) const {
  std::vector<NodeId> out;
  for (NodeId t = 0; t < tiles(); ++t)
    if (areaOf(t) == area) out.push_back(t);
  return out;
}

std::vector<NodeId> CmpConfig::memControllerTiles() const {
  // Half the controllers on the top row, half on the bottom row, spread
  // evenly across the width.
  std::vector<NodeId> out;
  const std::uint32_t perRow = std::max(1u, numMemControllers / 2);
  for (std::uint32_t i = 0; i < perRow && out.size() < numMemControllers; ++i) {
    const std::int32_t x = static_cast<std::int32_t>(
        (2 * i + 1) * static_cast<std::uint32_t>(meshWidth) / (2 * perRow));
    out.push_back(x);  // top row: y == 0
  }
  for (std::uint32_t i = 0;
       i < numMemControllers - perRow && out.size() < numMemControllers; ++i) {
    const std::int32_t x = static_cast<std::int32_t>(
        (2 * i + 1) * static_cast<std::uint32_t>(meshWidth) /
        (2 * (numMemControllers - perRow)));
    out.push_back((meshHeight - 1) * meshWidth + x);  // bottom row
  }
  return out;
}

NodeId CmpConfig::memControllerOfSlow(std::uint64_t page) const {
  const auto mcs = memControllerTiles();
  return mcs[static_cast<std::size_t>(page % mcs.size())];
}

void CmpConfig::validate() const {
  EECC_CHECK(meshWidth >= 1 && meshHeight >= 1);
  EECC_CHECK(numAreas >= 1 &&
             tiles() % static_cast<std::int32_t>(numAreas) == 0);
  std::int32_t ax = 0;
  std::int32_t ay = 0;
  areaGrid(&ax, &ay);
  EECC_CHECK(l1.entries % l1.assoc == 0 && l2.entries % l2.assoc == 0);
  EECC_CHECK(numMemControllers >= 1);
  EECC_CHECK(tiles() <= 256);  // NodeSet capacity
}

VmLayout VmLayout::matched(const CmpConfig& cfg, std::uint32_t numVms) {
  VmLayout layout;
  layout.numVms = numVms;
  layout.vmOfTile.assign(static_cast<std::size_t>(cfg.tiles()), VmId{-1});
  if (numVms <= cfg.numAreas) {
    // One whole area (or several) per VM: VM i gets area i.
    for (NodeId t = 0; t < cfg.tiles(); ++t) {
      const AreaId a = cfg.areaOf(t);
      if (static_cast<std::uint32_t>(a) < numVms)
        layout.vmOfTile[static_cast<std::size_t>(t)] = a;
    }
    return layout;
  }
  // More VMs than areas: pack VMs into contiguous area-aligned tile
  // groups (each VM stays inside a single area when the counts divide).
  EECC_CHECK(numVms % cfg.numAreas == 0);
  std::vector<NodeId> ordered;
  for (AreaId a = 0; a < static_cast<AreaId>(cfg.numAreas); ++a)
    for (const NodeId t : cfg.tilesInArea(a)) ordered.push_back(t);
  const std::size_t perVm = ordered.size() / numVms;
  EECC_CHECK(perVm >= 1);
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const auto vm = static_cast<VmId>(i / perVm);
    if (static_cast<std::uint32_t>(vm) < numVms)
      layout.vmOfTile[static_cast<std::size_t>(ordered[i])] = vm;
  }
  return layout;
}

VmLayout VmLayout::contiguous(const CmpConfig& cfg, std::uint32_t numVms) {
  VmLayout layout;
  layout.numVms = numVms;
  layout.vmOfTile.assign(static_cast<std::size_t>(cfg.tiles()), VmId{-1});
  EECC_CHECK(cfg.tiles() % static_cast<std::int32_t>(numVms) == 0);
  std::vector<NodeId> ordered;
  for (AreaId a = 0; a < static_cast<AreaId>(cfg.numAreas); ++a)
    for (const NodeId t : cfg.tilesInArea(a)) ordered.push_back(t);
  const std::size_t perVm = ordered.size() / numVms;
  for (std::size_t i = 0; i < ordered.size(); ++i)
    layout.vmOfTile[static_cast<std::size_t>(ordered[i])] =
        static_cast<VmId>(i / perVm);
  return layout;
}

VmLayout VmLayout::alternative(const CmpConfig& cfg, std::uint32_t numVms) {
  VmLayout layout;
  layout.numVms = numVms;
  layout.vmOfTile.assign(static_cast<std::size_t>(cfg.tiles()), VmId{-1});
  // Assign tiles to VMs in horizontal bands (row-major round robin over
  // equally sized contiguous chunks), which crosses the quadrant
  // boundaries of the default area division.
  const std::int32_t perVm = cfg.tiles() / static_cast<std::int32_t>(numVms);
  for (NodeId t = 0; t < cfg.tiles(); ++t) {
    const auto vm = static_cast<VmId>(t / perVm);
    if (static_cast<std::uint32_t>(vm) < numVms)
      layout.vmOfTile[static_cast<std::size_t>(t)] = vm;
  }
  return layout;
}

}  // namespace eecc
