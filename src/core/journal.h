// Sweep journal: crash-safe progress persistence for long experiment
// sweeps (DESIGN.md §12).
//
// A journal is a JSON-Lines file with one record per *completed*
// experiment: a digest of the full ExperimentConfig plus a bit-exact
// snapshot of its ExperimentResult. Records are appended and fsync'd one
// at a time, so after a crash (or SIGKILL) the file holds every finished
// experiment and at worst one truncated trailing line, which the loader
// skips. Re-running the same sweep with resume enabled splices the
// journaled results back in by digest and executes only the remainder —
// and because every experiment is seed-deterministic, the spliced sweep
// is bit-identical to an uninterrupted one, down to every counter
// (fault_tolerance_test pins this).
//
// Encoding: every uint64 is a decimal string and every double is an
// IEEE-754 bit-pattern string (common/json.h jsonDoubleBits) — the DOM
// parser stores plain JSON numbers as double, which would round large
// counters and cannot represent the ±inf state of an empty Accumulator.
//
// Failed experiments are NOT journaled: resume retries them.
#pragma once

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "core/experiment.h"

namespace eecc {

class SweepJournal {
 public:
  SweepJournal() = default;
  ~SweepJournal();

  SweepJournal(const SweepJournal&) = delete;
  SweepJournal& operator=(const SweepJournal&) = delete;

  /// FNV-1a digest (16 hex chars) over a canonical rendering of every
  /// result-affecting ExperimentConfig field — workload, protocol, seed,
  /// layout, windows, chip geometry, NoC and memory model, observability
  /// attachments. Two configs collide only if they would produce the
  /// same result record.
  static std::string configDigest(const ExperimentConfig& cfg);

  /// Opens `path` for appending. With `resume` the existing records are
  /// loaded first (malformed lines — e.g. one truncated by a crash — are
  /// skipped with a stderr warning); without it any existing file is
  /// truncated: no --resume means a fresh sweep. Returns false with
  /// `error` set when the file cannot be opened.
  bool open(const std::string& path, bool resume, std::string* error);

  bool isOpen() const { return f_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Records loaded by open(..., resume=true).
  std::size_t restoredCount() const { return restored_.size(); }

  /// The journaled result for a config digest, or nullptr. The returned
  /// result has `restored` set.
  const ExperimentResult* find(const std::string& digest) const;

  /// Appends one completed experiment and fsyncs the line to disk before
  /// returning. Thread-safe (runner tasks complete concurrently). On a
  /// write failure, prints a diagnostic, closes the journal and returns
  /// false — the sweep carries on unjournaled rather than trusting a
  /// half-written file.
  bool append(const std::string& digest, const ExperimentResult& r);

 private:
  mutable std::mutex mutex_;
  std::FILE* f_ = nullptr;
  std::string path_;
  std::map<std::string, ExperimentResult> restored_;
};

}  // namespace eecc
