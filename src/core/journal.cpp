#include "core/journal.h"

#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/json.h"

namespace eecc {

namespace {

constexpr std::size_t kMissClasses =
    static_cast<std::size_t>(MissClass::kCount);

// --- Config digest ----------------------------------------------------

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Canonical '|'-separated rendering of every config field that can
/// change a result record. Bump the leading tag when adding fields: old
/// journals then simply fail to match and the sweep re-runs.
std::string canonicalConfig(const ExperimentConfig& cfg) {
  std::string s = "eecc-config-v1|";
  const auto u = [&s](std::uint64_t v) {
    s += std::to_string(v);
    s += '|';
  };
  const auto i = [&s](std::int64_t v) {
    s += std::to_string(v);
    s += '|';
  };
  const auto b = [&s](bool v) {
    s += v ? "1|" : "0|";
  };
  s += cfg.workloadName;
  s += '|';
  u(static_cast<std::uint64_t>(cfg.protocol));
  b(cfg.altLayout);
  b(cfg.contiguousLayout);
  b(cfg.dedupEnabled);
  u(cfg.windowCycles);
  u(cfg.warmupCycles);
  u(cfg.seed);
  b(cfg.conformanceCheck);
  u(cfg.checkSweepEvery);
  b(cfg.obs.snapshotMetrics);
  u(cfg.obs.timelineEvery);
  for (const std::string& m : cfg.obs.timelineMetrics) {
    s += m;
    s += ';';
  }
  s += '|';
  u(cfg.obs.traceCapacity);
  b(cfg.obs.traceHits);
  b(cfg.obs.ledger);
  u(cfg.obs.ledgerOccupancyEvery);
  const CmpConfig& c = cfg.chip;
  i(c.meshWidth);
  i(c.meshHeight);
  u(c.numAreas);
  for (const CacheGeometry& g : {c.l1, c.l2}) {
    u(g.entries);
    u(g.assoc);
    u(g.tagLatency);
    u(g.dataLatency);
  }
  u(c.l1cEntries);
  u(c.l2cEntries);
  u(c.l1cAssoc);
  u(c.l2cAssoc);
  u(c.dirCacheEntries);
  u(c.dirCacheAssoc);
  u(c.memLatency);
  u(c.memJitterMax);
  u(c.numMemControllers);
  u(static_cast<std::uint64_t>(c.memoryModel));
  u(c.net.linkCycles);
  u(c.net.switchCycles);
  u(c.net.routerCycles);
  u(c.net.controlFlits);
  u(c.net.dataFlits);
  b(c.net.modelContention);
  b(c.net.flitLevel);
  u(static_cast<std::uint64_t>(c.dirSharingCode));
  b(c.enablePrediction);
  // Scale-out fields are appended only when active: an inactive
  // ScaleoutConfig leaves the digest — and thus every existing journal —
  // exactly as it was before the subsystem existed.
  if (cfg.scaleout.active()) {
    s += "scaleout|";
    u(cfg.scaleout.chips);
    s += cfg.scaleout.churn;
    s += '|';
    u(cfg.scaleout.link.hopCycles);
    u(cfg.scaleout.link.cyclesPerFlit);
    s += jsonDoubleBits(cfg.scaleout.link.energyPerFlitX);
    s += '|';
    b(cfg.scaleout.link.ring);
  }
  // Same only-when-active pattern: the stage recorder adds "stage.*"
  // metrics to the snapshot, so a stage-traced run must not match a
  // journal written without one (and plain runs keep their old digests).
  // selfProf is deliberately absent — its output is never journaled and
  // does not perturb any journaled quantity.
  if (cfg.obs.stageTrace) s += "stage|";
  return s;
}

// --- Record encoding (JsonValue DOM -> one compact line) --------------

JsonValue jU(std::uint64_t v) { return JsonValue(std::to_string(v)); }
JsonValue jD(double v) { return JsonValue(jsonDoubleBits(v)); }

JsonValue jAcc(const Accumulator& a) {
  const Accumulator::State st = a.state();
  JsonValue v;
  auto& o = v.makeObject();
  o["count"] = jU(st.count);
  o["sum"] = jD(st.sum);
  o["mean"] = jD(st.mean);
  o["m2"] = jD(st.m2);
  o["min"] = jD(st.min);
  o["max"] = jD(st.max);
  return v;
}

std::uint64_t rU(const JsonValue& o, const char* k) {
  const JsonValue* v = o.find(k);
  if (v == nullptr || !v->isString()) return 0;
  return std::strtoull(v->asString().c_str(), nullptr, 10);
}

double rD(const JsonValue& o, const char* k) {
  const JsonValue* v = o.find(k);
  return v != nullptr && v->isString() ? jsonDoubleFromBits(v->asString())
                                       : 0.0;
}

bool rB(const JsonValue& o, const char* k) {
  const JsonValue* v = o.find(k);
  return v != nullptr && v->kind() == JsonValue::Kind::Bool && v->asBool();
}

Accumulator rAcc(const JsonValue& o, const char* k) {
  const JsonValue* v = o.find(k);
  if (v == nullptr || !v->isObject()) return Accumulator{};
  Accumulator::State st;
  st.count = rU(*v, "count");
  st.sum = rD(*v, "sum");
  st.mean = rD(*v, "mean");
  st.m2 = rD(*v, "m2");
  st.min = rD(*v, "min");
  st.max = rD(*v, "max");
  return Accumulator::fromState(st);
}

JsonValue jStats(const ProtocolStats& s) {
  JsonValue v;
  auto& o = v.makeObject();
  o["reads"] = jU(s.reads);
  o["writes"] = jU(s.writes);
  o["l1ReadHits"] = jU(s.l1ReadHits);
  o["l1WriteHits"] = jU(s.l1WriteHits);
  o["readMisses"] = jU(s.readMisses);
  o["writeMisses"] = jU(s.writeMisses);
  o["upgrades"] = jU(s.upgrades);
  o["l2DataHits"] = jU(s.l2DataHits);
  o["memoryFetches"] = jU(s.memoryFetches);
  o["invalidationsSent"] = jU(s.invalidationsSent);
  o["broadcastInvalidations"] = jU(s.broadcastInvalidations);
  o["ownershipTransfers"] = jU(s.ownershipTransfers);
  o["providershipTransfers"] = jU(s.providershipTransfers);
  o["hintMessages"] = jU(s.hintMessages);
  o["providerResolvedMisses"] = jU(s.providerResolvedMisses);
  o["writebacks"] = jU(s.writebacks);
  o["l2Evictions"] = jU(s.l2Evictions);
  o["dirEvictionInvalidations"] = jU(s.dirEvictionInvalidations);
  auto& byClass = o["missByClass"].makeArray();
  auto& latency = o["latencyByClass"].makeArray();
  auto& links = o["linksByClass"].makeArray();
  for (std::size_t c = 0; c < kMissClasses; ++c) {
    byClass.push_back(jU(s.missByClass[c]));
    latency.push_back(jAcc(s.latencyByClass[c]));
    links.push_back(jAcc(s.linksByClass[c]));
  }
  o["missLatency"] = jAcc(s.missLatency);
  return v;
}

void rStats(const JsonValue& o, ProtocolStats& s) {
  s.reads = rU(o, "reads");
  s.writes = rU(o, "writes");
  s.l1ReadHits = rU(o, "l1ReadHits");
  s.l1WriteHits = rU(o, "l1WriteHits");
  s.readMisses = rU(o, "readMisses");
  s.writeMisses = rU(o, "writeMisses");
  s.upgrades = rU(o, "upgrades");
  s.l2DataHits = rU(o, "l2DataHits");
  s.memoryFetches = rU(o, "memoryFetches");
  s.invalidationsSent = rU(o, "invalidationsSent");
  s.broadcastInvalidations = rU(o, "broadcastInvalidations");
  s.ownershipTransfers = rU(o, "ownershipTransfers");
  s.providershipTransfers = rU(o, "providershipTransfers");
  s.hintMessages = rU(o, "hintMessages");
  s.providerResolvedMisses = rU(o, "providerResolvedMisses");
  s.writebacks = rU(o, "writebacks");
  s.l2Evictions = rU(o, "l2Evictions");
  s.dirEvictionInvalidations = rU(o, "dirEvictionInvalidations");
  const JsonValue* byClass = o.find("missByClass");
  const JsonValue* latency = o.find("latencyByClass");
  const JsonValue* links = o.find("linksByClass");
  for (std::size_t c = 0; c < kMissClasses; ++c) {
    if (byClass != nullptr && byClass->isArray() &&
        c < byClass->asArray().size() && byClass->asArray()[c].isString())
      s.missByClass[c] =
          std::strtoull(byClass->asArray()[c].asString().c_str(), nullptr, 10);
    const auto accAt = [c](const JsonValue* arr) {
      if (arr == nullptr || !arr->isArray() || c >= arr->asArray().size())
        return Accumulator{};
      Accumulator::State st;
      const JsonValue& a = arr->asArray()[c];
      st.count = rU(a, "count");
      st.sum = rD(a, "sum");
      st.mean = rD(a, "mean");
      st.m2 = rD(a, "m2");
      st.min = rD(a, "min");
      st.max = rD(a, "max");
      return Accumulator::fromState(st);
    };
    s.latencyByClass[c] = accAt(latency);
    s.linksByClass[c] = accAt(links);
  }
  s.missLatency = rAcc(o, "missLatency");
}

JsonValue jEvents(const CacheEnergyEvents& e) {
  JsonValue v;
  auto& o = v.makeObject();
  o["l1TagProbe"] = jU(e.l1TagProbe);
  o["l1DataRead"] = jU(e.l1DataRead);
  o["l1DataWrite"] = jU(e.l1DataWrite);
  o["l1DirRead"] = jU(e.l1DirRead);
  o["l1DirUpdate"] = jU(e.l1DirUpdate);
  o["l2TagProbe"] = jU(e.l2TagProbe);
  o["l2DataRead"] = jU(e.l2DataRead);
  o["l2DataWrite"] = jU(e.l2DataWrite);
  o["l2DirRead"] = jU(e.l2DirRead);
  o["l2DirUpdate"] = jU(e.l2DirUpdate);
  o["dirCacheProbe"] = jU(e.dirCacheProbe);
  o["dirCacheUpdate"] = jU(e.dirCacheUpdate);
  o["l1cProbe"] = jU(e.l1cProbe);
  o["l1cUpdate"] = jU(e.l1cUpdate);
  o["l2cProbe"] = jU(e.l2cProbe);
  o["l2cUpdate"] = jU(e.l2cUpdate);
  return v;
}

void rEvents(const JsonValue& o, CacheEnergyEvents& e) {
  e.l1TagProbe = rU(o, "l1TagProbe");
  e.l1DataRead = rU(o, "l1DataRead");
  e.l1DataWrite = rU(o, "l1DataWrite");
  e.l1DirRead = rU(o, "l1DirRead");
  e.l1DirUpdate = rU(o, "l1DirUpdate");
  e.l2TagProbe = rU(o, "l2TagProbe");
  e.l2DataRead = rU(o, "l2DataRead");
  e.l2DataWrite = rU(o, "l2DataWrite");
  e.l2DirRead = rU(o, "l2DirRead");
  e.l2DirUpdate = rU(o, "l2DirUpdate");
  e.dirCacheProbe = rU(o, "dirCacheProbe");
  e.dirCacheUpdate = rU(o, "dirCacheUpdate");
  e.l1cProbe = rU(o, "l1cProbe");
  e.l1cUpdate = rU(o, "l1cUpdate");
  e.l2cProbe = rU(o, "l2cProbe");
  e.l2cUpdate = rU(o, "l2cUpdate");
}

JsonValue jNoc(const NocStats& n) {
  JsonValue v;
  auto& o = v.makeObject();
  o["messages"] = jU(n.messages);
  o["controlMessages"] = jU(n.controlMessages);
  o["dataMessages"] = jU(n.dataMessages);
  o["broadcasts"] = jU(n.broadcasts);
  o["routings"] = jU(n.routings);
  o["linkFlits"] = jU(n.linkFlits);
  o["linksTraversed"] = jU(n.linksTraversed);
  o["unicastLatency"] = jAcc(n.unicastLatency);
  o["contentionWait"] = jAcc(n.contentionWait);
  return v;
}

void rNoc(const JsonValue& o, NocStats& n) {
  n.messages = rU(o, "messages");
  n.controlMessages = rU(o, "controlMessages");
  n.dataMessages = rU(o, "dataMessages");
  n.broadcasts = rU(o, "broadcasts");
  n.routings = rU(o, "routings");
  n.linkFlits = rU(o, "linkFlits");
  n.linksTraversed = rU(o, "linksTraversed");
  n.unicastLatency = rAcc(o, "unicastLatency");
  n.contentionWait = rAcc(o, "contentionWait");
}

JsonValue jResult(const ExperimentResult& r) {
  JsonValue v;
  auto& o = v.makeObject();
  o["altLayout"] = JsonValue(r.altLayout);
  o["attempts"] = jU(r.attempts);
  o["cycles"] = jU(r.cycles);
  o["ops"] = jU(r.ops);
  o["throughput"] = jD(r.throughput);
  o["simEvents"] = jU(r.simEvents);
  o["checkViolations"] = jU(r.checkViolations);
  auto& msgs = o["checkMessages"].makeArray();
  for (const std::string& m : r.checkMessages) msgs.push_back(JsonValue(m));
  o["stats"] = jStats(r.stats);
  o["events"] = jEvents(r.events);
  o["noc"] = jNoc(r.noc);
  o["dedupSavedFraction"] = jD(r.dedupSavedFraction);
  auto& metrics = o["metrics"].makeArray();
  for (const MetricRegistry::Sample& s : r.metrics) {
    JsonValue m;
    auto& mo = m.makeObject();
    mo["n"] = JsonValue(s.name);
    if (s.kind == MetricRegistry::Kind::Counter) {
      mo["k"] = JsonValue(std::string("c"));
      mo["u"] = jU(s.u64);
    } else {
      mo["k"] = JsonValue(std::string("g"));
    }
    mo["f"] = jD(s.f64);
    metrics.push_back(std::move(m));
  }
  JsonValue cache;
  auto& co = cache.makeObject();
  co["l1Pj"] = jD(r.cachePj.l1Pj);
  co["l1DirPj"] = jD(r.cachePj.l1DirPj);
  co["l2Pj"] = jD(r.cachePj.l2Pj);
  co["l2DirPj"] = jD(r.cachePj.l2DirPj);
  co["pointerPj"] = jD(r.cachePj.pointerPj);
  o["cachePj"] = std::move(cache);
  JsonValue noc;
  auto& no = noc.makeObject();
  no["routingPj"] = jD(r.nocPj.routingPj);
  no["linkPj"] = jD(r.nocPj.linkPj);
  o["nocPj"] = std::move(noc);
  o["cacheMw"] = jD(r.cacheMw);
  o["linkMw"] = jD(r.linkMw);
  o["routingMw"] = jD(r.routingMw);
  // Scale-out block only for scale-out results: single-chip records keep
  // their exact pre-subsystem bytes. The guard is a pure function of the
  // serialized values, so restored records re-serialize identically.
  if (r.chips > 1 || r.churnApplied > 0 || r.interchip.messages > 0) {
    JsonValue sc;
    auto& so = sc.makeObject();
    so["chips"] = jU(r.chips);
    so["churnApplied"] = jU(r.churnApplied);
    so["messages"] = jU(r.interchip.messages);
    so["dataMessages"] = jU(r.interchip.dataMessages);
    so["flits"] = jU(r.interchip.flits);
    so["flitHops"] = jU(r.interchip.flitHops);
    so["remoteFetches"] = jU(r.interchip.remoteFetches);
    so["migrations"] = jU(r.interchip.migrations);
    so["migrationPages"] = jU(r.interchip.migrationPages);
    so["latency"] = jAcc(r.interchip.latency);
    so["wait"] = jAcc(r.interchip.wait);
    so["interchipPj"] = jD(r.interchipPj);
    so["interchipMw"] = jD(r.interchipMw);
    o["scaleout"] = std::move(sc);
  }
  return v;
}

void rResult(const JsonValue& o, ExperimentResult& r) {
  r.altLayout = rB(o, "altLayout");
  r.attempts = static_cast<std::uint32_t>(rU(o, "attempts"));
  if (r.attempts == 0) r.attempts = 1;
  r.cycles = rU(o, "cycles");
  r.ops = rU(o, "ops");
  r.throughput = rD(o, "throughput");
  r.simEvents = rU(o, "simEvents");
  r.checkViolations = rU(o, "checkViolations");
  if (const JsonValue* msgs = o.find("checkMessages");
      msgs != nullptr && msgs->isArray())
    for (const JsonValue& m : msgs->asArray())
      if (m.isString()) r.checkMessages.push_back(m.asString());
  if (const JsonValue* s = o.find("stats"); s != nullptr && s->isObject())
    rStats(*s, r.stats);
  if (const JsonValue* e = o.find("events"); e != nullptr && e->isObject())
    rEvents(*e, r.events);
  if (const JsonValue* n = o.find("noc"); n != nullptr && n->isObject())
    rNoc(*n, r.noc);
  r.dedupSavedFraction = rD(o, "dedupSavedFraction");
  if (const JsonValue* metrics = o.find("metrics");
      metrics != nullptr && metrics->isArray()) {
    for (const JsonValue& m : metrics->asArray()) {
      if (!m.isObject()) continue;
      MetricRegistry::Sample s;
      s.name = m.stringOr("n", "");
      s.kind = m.stringOr("k", "g") == "c" ? MetricRegistry::Kind::Counter
                                           : MetricRegistry::Kind::Gauge;
      s.u64 = rU(m, "u");
      s.f64 = rD(m, "f");
      r.metrics.push_back(std::move(s));
    }
  }
  if (const JsonValue* c = o.find("cachePj"); c != nullptr && c->isObject()) {
    r.cachePj.l1Pj = rD(*c, "l1Pj");
    r.cachePj.l1DirPj = rD(*c, "l1DirPj");
    r.cachePj.l2Pj = rD(*c, "l2Pj");
    r.cachePj.l2DirPj = rD(*c, "l2DirPj");
    r.cachePj.pointerPj = rD(*c, "pointerPj");
  }
  if (const JsonValue* n = o.find("nocPj"); n != nullptr && n->isObject()) {
    r.nocPj.routingPj = rD(*n, "routingPj");
    r.nocPj.linkPj = rD(*n, "linkPj");
  }
  r.cacheMw = rD(o, "cacheMw");
  r.linkMw = rD(o, "linkMw");
  r.routingMw = rD(o, "routingMw");
  if (const JsonValue* sc = o.find("scaleout");
      sc != nullptr && sc->isObject()) {
    r.chips = static_cast<std::uint32_t>(rU(*sc, "chips"));
    if (r.chips == 0) r.chips = 1;
    r.churnApplied = rU(*sc, "churnApplied");
    r.interchip.messages = rU(*sc, "messages");
    r.interchip.dataMessages = rU(*sc, "dataMessages");
    r.interchip.flits = rU(*sc, "flits");
    r.interchip.flitHops = rU(*sc, "flitHops");
    r.interchip.remoteFetches = rU(*sc, "remoteFetches");
    r.interchip.migrations = rU(*sc, "migrations");
    r.interchip.migrationPages = rU(*sc, "migrationPages");
    r.interchip.latency = rAcc(*sc, "latency");
    r.interchip.wait = rAcc(*sc, "wait");
    r.interchipPj = rD(*sc, "interchipPj");
    r.interchipMw = rD(*sc, "interchipMw");
  }
}

/// Single-line (no indentation) JSON rendering of a DOM value; object
/// members come out in std::map order, which keeps records canonical.
void writeCompact(const JsonValue& v, std::string& out) {
  switch (v.kind()) {
    case JsonValue::Kind::Null:
      out += "null";
      break;
    case JsonValue::Kind::Bool:
      out += v.asBool() ? "true" : "false";
      break;
    case JsonValue::Kind::Number: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", v.asNumber());
      out += buf;
      break;
    }
    case JsonValue::Kind::String:
      out += '"';
      out += jsonEscape(v.asString());
      out += '"';
      break;
    case JsonValue::Kind::Array: {
      out += '[';
      bool first = true;
      for (const JsonValue& e : v.asArray()) {
        if (!first) out += ',';
        first = false;
        writeCompact(e, out);
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::Object: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.asObject()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += jsonEscape(k);
        out += "\":";
        writeCompact(e, out);
      }
      out += '}';
      break;
    }
  }
}

bool readWholeFile(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace

std::string SweepJournal::configDigest(const ExperimentConfig& cfg) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a(canonicalConfig(cfg))));
  return buf;
}

SweepJournal::~SweepJournal() {
  if (f_ != nullptr) std::fclose(f_);
}

bool SweepJournal::open(const std::string& path, bool resume,
                        std::string* error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
  restored_.clear();
  if (resume) {
    std::string text;
    if (readWholeFile(path, text)) {
      std::size_t lineNo = 0;
      std::size_t pos = 0;
      while (pos < text.size()) {
        std::size_t end = text.find('\n', pos);
        const bool complete = end != std::string::npos;
        if (!complete) end = text.size();
        const std::string_view line(text.data() + pos, end - pos);
        pos = end + 1;
        ++lineNo;
        if (line.empty()) continue;
        JsonValue doc;
        std::string parseError;
        if (!complete || !jsonParse(line, doc, parseError) ||
            !doc.isObject()) {
          // The crash case: a record cut short mid-append. Warn and skip —
          // the experiment it would have recorded simply re-runs.
          std::fprintf(stderr,
                       "SweepJournal: %s:%zu: skipping unparseable record\n",
                       path.c_str(), lineNo);
          continue;
        }
        const std::string digest = doc.stringOr("digest", "");
        const JsonValue* result = doc.find("result");
        if (digest.empty() || result == nullptr || !result->isObject())
          continue;
        ExperimentResult r;
        r.workload = doc.stringOr("workload", "");
        r.protocol = static_cast<ProtocolKind>(rU(doc, "protoKind"));
        r.seed = rU(doc, "seed");
        r.restored = true;
        rResult(*result, r);
        restored_[digest] = std::move(r);
      }
    }
  }
  f_ = std::fopen(path.c_str(), resume ? "a" : "w");
  if (f_ == nullptr) {
    if (error != nullptr)
      *error = path + ": " + std::strerror(errno);
    restored_.clear();
    return false;
  }
  path_ = path;
  return true;
}

const ExperimentResult* SweepJournal::find(const std::string& digest) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = restored_.find(digest);
  return it == restored_.end() ? nullptr : &it->second;
}

bool SweepJournal::append(const std::string& digest,
                          const ExperimentResult& r) {
  JsonValue rec;
  auto& o = rec.makeObject();
  o["v"] = jU(1);
  o["digest"] = JsonValue(digest);
  o["workload"] = JsonValue(r.workload);
  o["protocol"] = JsonValue(std::string(protocolName(r.protocol)));
  o["protoKind"] = jU(static_cast<std::uint64_t>(r.protocol));
  o["seed"] = jU(r.seed);
  o["result"] = jResult(r);
  std::string line;
  writeCompact(rec, line);
  line += '\n';

  std::lock_guard<std::mutex> lock(mutex_);
  if (f_ == nullptr) return false;
  bool ok = std::fwrite(line.data(), 1, line.size(), f_) == line.size();
  ok = ok && std::fflush(f_) == 0;
  ok = ok && ::fsync(fileno(f_)) == 0;
  if (!ok) {
    // A journal we cannot trust is worse than none: close it and let the
    // sweep finish unjournaled (results are still returned in memory).
    std::fprintf(stderr,
                 "SweepJournal: append to %s failed (%s); journaling off\n",
                 path_.c_str(), std::strerror(errno));
    std::fclose(f_);
    f_ = nullptr;
    return false;
  }
  return true;
}

}  // namespace eecc
