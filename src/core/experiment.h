// Experiment harness: runs one (workload, protocol, layout) configuration
// and collects every quantity the paper's evaluation section reports —
// performance, the Figure 9b miss breakdown, cache/NoC energy, and the
// derived dynamic power numbers of Figures 7 and 8.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/cmp_system.h"
#include "energy/energy_model.h"
#include "obs/ledger.h"
#include "obs/metric_registry.h"
#include "obs/selfprof.h"
#include "obs/stage.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "scaleout/interchip.h"
#include "scaleout/scaleout_config.h"

namespace eecc {

/// Observability attachments for one experiment (DESIGN.md §10). All off
/// by default — a default-constructed ObsOptions adds zero work and zero
/// allocations to the run.
struct ObsOptions {
  /// Snapshot every registry metric into ExperimentResult::metrics after
  /// the run (the --stats-json / --stats-csv backing store).
  bool snapshotMetrics = false;
  /// Timeline sample period in cycles; 0 disables the sampler.
  Tick timelineEvery = 0;
  /// Metrics the timeline samples (registry names; empty = all).
  std::vector<std::string> timelineMetrics;
  /// Trace ring capacity in records; 0 disables the trace sink.
  std::size_t traceCapacity = 0;
  /// Record L1 hits in the trace (floods the ring; off by default).
  bool traceHits = false;
  /// Attach the per-VM/per-area attribution ledger (obs/ledger.h) over the
  /// measured window and register its matrices in the registry.
  bool ledger = false;
  /// Ledger occupancy sampling period in cycles (0 = end-of-run sample
  /// only). Drives the leakage apportioning of the report generator.
  Tick ledgerOccupancyEvery = 50'000;
  /// Attach the miss-path flight recorder (obs/stage.h): per-(miss-class
  /// × stage) latency decomposition under "stage." in the registry, plus
  /// flow ids on trace records linking message spans to their parent
  /// transaction. Stage sums reconcile exactly with the miss-latency
  /// accumulators.
  bool stageTrace = false;
  /// Run the simulator self-profiler (obs/selfprof.h) over the measured
  /// window: wall-clock attribution of kernel/NoC/table/cache phases.
  /// Host-dependent output — never journaled, compared or merged into
  /// `metrics`.
  bool selfProf = false;

  bool any() const {
    return snapshotMetrics || timelineEvery > 0 || traceCapacity > 0 ||
           ledger || stageTrace;
  }
};

struct ExperimentConfig {
  CmpConfig chip{};
  ProtocolKind protocol = ProtocolKind::Directory;
  std::string workloadName = "apache4x16p";  ///< A Table IV name.
  bool altLayout = false;  ///< Figure 6 right: VMs straddle areas.
  /// Area-count ablation: cover all tiles with area-aligned VMs even when
  /// areas outnumber VMs (overrides altLayout when set).
  bool contiguousLayout = false;
  bool dedupEnabled = true;  ///< Hypervisor page sharing (ablation knob).
  Tick windowCycles = 250'000;  ///< Scaled-down "500 million cycles".
  Tick warmupCycles = 200'000;  ///< Cache warmup before measuring.
  std::uint64_t seed = 1;
  /// Attach the conformance monitor battery (src/check) for the whole run
  /// including warmup. Violations land in ExperimentResult; the simulation
  /// itself is unaffected (monitors collect, they don't abort).
  bool conformanceCheck = false;
  Tick checkSweepEvery = 50'000;  ///< Full-state sweep period when checking.
  /// Observability attachments (metrics snapshot, timeline, trace). The
  /// timeline and trace observe the measured window only (attached after
  /// warmup); none of them perturbs simulation results.
  ObsOptions obs{};
  /// Multi-chip scale-out (src/scaleout): chip count, inter-chip link
  /// parameters and the VM churn schedule. Inactive by default — with
  /// chips == 1 and no churn the run takes the untouched single-chip path
  /// and is byte-identical to a build without the subsystem.
  ScaleoutConfig scaleout{};
};

/// Per-chip decomposition of a scale-out run. In-memory only, like the
/// ledger and timeline: journal-restored results don't carry it (the
/// journaled aggregate fields and the metrics snapshot hold everything
/// export-relevant).
struct ScaleoutChipSummary {
  Tick cycles = 0;
  std::uint64_t ops = 0;
  double throughput = 0.0;
  ProtocolStats stats;
  CacheEnergyEvents events;
  NocStats noc;
  /// Per-VM/per-area attribution for this chip (obs.ledger runs only).
  std::shared_ptr<AttributionLedger> ledger;
};

struct ScaleoutDetail {
  std::vector<ScaleoutChipSummary> chips;
  /// Inter-chip flits/messages per attribution row (same row space as the
  /// ledgers: vm0..vmN-1, shared, other). Sums reproduce the aggregate
  /// InterChipStats counters exactly.
  std::vector<std::uint64_t> interchipRowFlits;
  std::vector<std::uint64_t> interchipRowMessages;
  std::uint64_t boots = 0;
  std::uint64_t shutdowns = 0;
  std::uint64_t migrationsStarted = 0;
  std::uint64_t migrationsCompleted = 0;
  std::uint64_t storms = 0;
  std::uint64_t skippedEvents = 0;
  std::uint32_t totalVms = 0;  ///< VM ids ever created (incl. shut down).
  std::uint64_t cowEvents = 0;     ///< Server-wide copy-on-write breaks.
  std::uint64_t reclaimedPages = 0;  ///< Pages freed by VM shutdowns.
};

struct ExperimentResult {
  std::string workload;
  ProtocolKind protocol = ProtocolKind::Directory;
  bool altLayout = false;
  std::uint64_t seed = 0;  ///< Echo of cfg.seed (failure reports name it).

  // --- Failure containment (DESIGN.md §12) ---
  /// The experiment threw on every attempt. All measurement fields below
  /// are zero; `error` holds the exception's what(). A failed result
  /// never reaches the sweep journal, so --resume re-runs it.
  bool failed = false;
  std::string error;
  /// Attempts consumed (1 = first try succeeded; retries come from
  /// EECC_RETRIES / ExperimentRunner::setRetries).
  std::uint32_t attempts = 1;
  /// Result was spliced from a sweep journal instead of executed
  /// (ExperimentRunner journal resume). Bit-identical to a live run.
  bool restored = false;

  Tick cycles = 0;
  std::uint64_t ops = 0;
  double throughput = 0.0;  ///< Memory ops per cycle (performance metric).
  /// Kernel events executed over the whole run (incl. warmup) — the
  /// denominator-free work measure behind the runner's events/sec metric.
  std::uint64_t simEvents = 0;

  /// Conformance-check outcome (conformanceCheck runs only).
  std::uint64_t checkViolations = 0;
  std::vector<std::string> checkMessages;  ///< Capped diagnostic sample.

  ProtocolStats stats;
  CacheEnergyEvents events;
  NocStats noc;
  double dedupSavedFraction = 0.0;

  // --- Scale-out (src/scaleout; populated when cfg.scaleout.active()) ---
  /// Chips simulated; the server-level fields below stay zero when 1.
  /// For multi-chip runs `stats`/`events`/`noc` hold the field-wise sum
  /// over chips and `cycles`/`ops`/`throughput` the server aggregates.
  std::uint32_t chips = 1;
  /// Churn events applied (boots + shutdowns + migration starts and
  /// completions + storm starts/ends).
  std::uint64_t churnApplied = 0;
  InterChipStats interchip;
  double interchipPj = 0.0;  ///< Inter-chip link energy (flit-hop based).
  double interchipMw = 0.0;
  /// Per-chip decomposition + lifecycle tallies (in-memory only).
  std::shared_ptr<ScaleoutDetail> scaleout;

  // --- Observability artifacts (only populated when cfg.obs asks) ---
  /// Full registry snapshot taken after the run (obs.snapshotMetrics).
  std::vector<MetricRegistry::Sample> metrics;
  /// Per-run time series (obs.timelineEvery > 0).
  std::shared_ptr<TimelineSampler> timeline;
  /// Message/transaction trace of the measured window (obs.traceCapacity).
  std::shared_ptr<RingTraceSink> trace;
  /// Per-VM/per-area attribution matrices of the measured window
  /// (obs.ledger). Its metrics are part of `metrics` under "ledger.".
  std::shared_ptr<AttributionLedger> ledger;
  /// Miss-path stage decomposition of the measured window
  /// (obs.stageTrace). Its metrics are part of `metrics` under "stage.".
  std::shared_ptr<StageRecorder> stageRec;
  /// Simulator self-profile (obs.selfProf): per-phase wall-time rows and
  /// the window's total wall time. Host-dependent; excluded from result
  /// comparison and the sweep journal (a restored result has none).
  std::vector<SelfProfiler::Row> selfprof;
  std::uint64_t selfprofWallNs = 0;

  // Whole-chip dynamic power (mW) over the run window.
  CacheEnergyBreakdown cachePj;
  NocEnergyBreakdown nocPj;
  double cacheMw = 0.0;
  double linkMw = 0.0;
  double routingMw = 0.0;
  double totalDynamicMw() const {
    return cacheMw + linkMw + routingMw + interchipMw;
  }

  // Figure 9b: fraction of L1 misses per class and mean links traversed.
  double missFraction(MissClass c) const {
    const std::uint64_t total = stats.l1Misses();
    return total ? static_cast<double>(stats.missCount(c)) /
                       static_cast<double>(total)
                 : 0.0;
  }
  double meanLinks(MissClass c) const {
    return stats.linksByClass[static_cast<std::size_t>(c)].mean();
  }
};

/// Runs a single experiment.
ExperimentResult runExperiment(const ExperimentConfig& cfg);

/// Runs the same workload under every protocol (the paper's comparisons).
/// Executes through a default-width ExperimentRunner pool (EECC_JOBS);
/// results are in protocol order and bit-identical to a sequential loop.
std::vector<ExperimentResult> runAllProtocols(ExperimentConfig cfg);

/// ChipParams mirror of a CmpConfig (for the energy/storage models).
ChipParams chipParamsOf(const CmpConfig& cfg);

}  // namespace eecc
