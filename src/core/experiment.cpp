#include "core/experiment.h"

#include <memory>

#include "check/monitor.h"
#include "core/runner.h"
#include "obs/system_metrics.h"
#include "scaleout/server.h"
#include "workload/profile.h"

namespace eecc {

ChipParams chipParamsOf(const CmpConfig& cfg) {
  ChipParams p;
  p.tiles = static_cast<std::uint32_t>(cfg.tiles());
  p.areas = cfg.numAreas;
  p.l1Entries = cfg.l1.entries;
  p.l1Assoc = cfg.l1.assoc;
  p.l2Entries = cfg.l2.entries;
  p.l2Assoc = cfg.l2.assoc;
  p.l1cEntries = cfg.l1cEntries;
  p.l2cEntries = cfg.l2cEntries;
  p.dirCacheEntries = cfg.dirCacheEntries;
  return p;
}

ExperimentResult runExperiment(const ExperimentConfig& cfg) {
  // Multi-chip / churned runs take the scale-out path; an inactive
  // ScaleoutConfig (chips == 1, no churn) leaves the single-chip code
  // below untouched — byte-identical outputs to builds without it.
  if (cfg.scaleout.active()) return runScaleoutExperiment(cfg);

  const auto perVm = profiles::byWorkloadName(cfg.workloadName);
  const auto numVms = static_cast<std::uint32_t>(perVm.size());
  const VmLayout layout =
      cfg.contiguousLayout ? VmLayout::contiguous(cfg.chip, numVms)
      : cfg.altLayout      ? VmLayout::alternative(cfg.chip, numVms)
                           : VmLayout::matched(cfg.chip, numVms);

  CmpSystem system(cfg.chip, cfg.protocol, layout, perVm, cfg.seed,
                   cfg.dedupEnabled);
  std::unique_ptr<MonitorSet> monitors;
  if (cfg.conformanceCheck) {
    monitors = std::make_unique<MonitorSet>();
    system.attachChecker(monitors.get(), cfg.checkSweepEvery);
  }
  if (cfg.warmupCycles > 0) system.warmup(cfg.warmupCycles);

  // Observability attaches after warmup so the timeline, trace and
  // snapshot cover exactly the measured window.
  ExperimentResult r;
  MetricRegistry registry;
  if (cfg.obs.any()) registerSystem(registry, system);
  if (cfg.obs.timelineEvery > 0) {
    r.timeline = std::make_shared<TimelineSampler>(
        &registry, cfg.obs.timelineEvery, cfg.obs.timelineMetrics);
    system.attachTimeline(r.timeline.get());
  }
  if (cfg.obs.traceCapacity > 0) {
    r.trace = std::make_shared<RingTraceSink>(cfg.obs.traceCapacity,
                                              cfg.obs.traceHits);
    system.attachTrace(r.trace.get());
    registerTraceSink(registry, *r.trace);
  }
  if (cfg.obs.stageTrace) {
    // Attaching after warmup means every in-flight miss has drained: the
    // recorder sees whole transactions only, so its per-class sample
    // counts and stage sums reconcile exactly with the miss accumulators.
    r.stageRec = std::make_shared<StageRecorder>();
    system.attachStageRecorder(r.stageRec.get());
    registerStageRecorder(registry, *r.stageRec);
    if (r.trace != nullptr) r.trace->setFlowSource(r.stageRec.get());
  }
  if (cfg.obs.ledger) {
    r.ledger = std::make_shared<AttributionLedger>(
        cfg.chip, layout,
        [w = &system.workload()](Addr page) { return w->vmOfPage(page); },
        cfg.obs.ledgerOccupancyEvery);
    system.attachLedger(r.ledger.get());
    registerLedger(registry, *r.ledger, &system);
  }

  SelfProfiler selfprof;
  if (cfg.obs.selfProf) selfprof.install();
  system.run(cfg.windowCycles);
  if (cfg.obs.selfProf) {
    selfprof.uninstall();
    r.selfprof = selfprof.rows();
    r.selfprofWallNs = selfprof.wallNs();
  }

  if (cfg.obs.snapshotMetrics) r.metrics = registry.snapshot();
  if (monitors != nullptr) {
    r.checkViolations = monitors->log().total();
    for (const Violation& v : monitors->log().entries())
      r.checkMessages.push_back(v.str());
  }
  r.workload = cfg.workloadName;
  r.protocol = cfg.protocol;
  r.altLayout = cfg.altLayout;
  r.seed = cfg.seed;
  r.cycles = system.cycles();
  r.ops = system.opsCompleted();
  r.throughput = system.throughput();
  r.simEvents = system.events().executedEvents();
  r.stats = system.protocol().stats();
  r.events = system.protocol().energyEvents();
  r.noc = system.network().stats();
  r.dedupSavedFraction = system.workload().pages().savedFraction();

  const EnergyModel energy(cfg.protocol, chipParamsOf(cfg.chip),
                           cfg.protocol == ProtocolKind::Directory
                               ? cfg.chip.dirSharingCode
                               : SharingCode::FullMap);
  r.cachePj = energy.cacheEnergy(r.events);
  r.nocPj = energy.nocEnergy(r.noc);
  r.cacheMw = EnergyModel::pjToMw(r.cachePj.total(), r.cycles);
  r.linkMw = EnergyModel::pjToMw(r.nocPj.linkPj, r.cycles);
  r.routingMw = EnergyModel::pjToMw(r.nocPj.routingPj, r.cycles);
  return r;
}

std::vector<ExperimentResult> runAllProtocols(ExperimentConfig cfg) {
  ExperimentRunner runner;
  return runner.runAllProtocols(std::move(cfg));
}

}  // namespace eecc
