// Lightweight statistics primitives: named counters, scalar accumulators
// and fixed-bucket histograms. These back every metric the benchmark
// harness reports (message counts, link traversals, latency distributions).
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eecc {

/// Accumulates samples of a scalar quantity (e.g. miss latency).
///
/// Variance uses Welford's online algorithm: the textbook
/// `sumsq/n - mean^2` form suffers catastrophic cancellation for tight
/// distributions (millions of near-identical latencies drive it negative),
/// whereas Welford's recurrence keeps the centered second moment directly.
/// Merging two accumulators uses Chan's parallel formula.
class Accumulator {
 public:
  void add(double value) {
    count_ += 1;
    sum_ += value;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    if (count_ == 1 || value < min_) min_ = value;
    if (count_ == 1 || value > max_) max_ = value;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Population variance; never negative (the centered moment is clamped
  /// against the tiny negative residues rounding can still produce).
  double variance() const {
    if (count_ == 0) return 0.0;
    const double v = m2_ / static_cast<double>(count_);
    return v > 0.0 ? v : 0.0;
  }

  void reset() { *this = Accumulator{}; }

  /// Raw internal state, for bit-exact persistence (the sweep journal of
  /// core/journal.h). The public accessors are lossy on empty
  /// accumulators (min()/mean() return 0.0 when count is 0) and
  /// variance() clamps, so round-tripping through them would not restore
  /// the same bits.
  struct State {
    std::uint64_t count = 0;
    double sum = 0.0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  State state() const { return {count_, sum_, mean_, m2_, min_, max_}; }
  static Accumulator fromState(const State& s) {
    Accumulator a;
    a.count_ = s.count;
    a.sum_ = s.sum;
    a.mean_ = s.mean;
    a.m2_ = s.m2;
    a.min_ = s.min;
    a.max_ = s.max;
    return a;
  }

  Accumulator& operator+=(const Accumulator& other) {
    if (other.count_ == 0) return *this;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    // Chan et al.: M2 = M2_a + M2_b + delta^2 * n_a*n_b/(n_a+n_b).
    m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
    mean_ += delta * n2 / (n1 + n2);
    count_ += other.count_;
    sum_ += other.sum_;
    return *this;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  ///< Centered second moment: sum of (x - mean)^2.
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram with uniform buckets over [lo, hi); out-of-range samples land
/// in the saturating edge buckets. Non-finite samples are routed
/// deterministically: -inf to the lowest bucket, +inf and NaN to the
/// highest. summary() accumulates finite samples only (a single NaN would
/// otherwise poison every derived moment).
class Histogram {
 public:
  Histogram() : Histogram(0.0, 1.0, 1) {}
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void add(double value) {
    const std::size_t last = counts_.size() - 1;
    if (!std::isfinite(value)) {
      counts_[value < 0.0 ? 0 : last] += 1;  // NaN compares false: last
      return;
    }
    acc_.add(value);
    // Clamp in floating point *before* any integer cast: a huge sample
    // converted to int64 first is undefined behaviour, not saturation.
    const double span = hi_ - lo_;
    const double pos = (value - lo_) / span * static_cast<double>(counts_.size());
    std::size_t idx;
    if (!(pos > 0.0)) {
      idx = 0;
    } else if (pos >= static_cast<double>(counts_.size())) {
      idx = last;
    } else {
      idx = static_cast<std::size_t>(pos);
    }
    counts_[idx] += 1;
  }

  const std::vector<std::uint64_t>& buckets() const { return counts_; }
  const Accumulator& summary() const { return acc_; }
  double bucketLow(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  Accumulator acc_;
};

/// A bag of named integer counters, used where metrics are discovered
/// dynamically (per-message-type counts etc.).
class CounterSet {
 public:
  std::uint64_t& operator[](const std::string& name) { return counters_[name]; }
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }
  void merge(const CounterSet& other) {
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace eecc
