// Lightweight statistics primitives: named counters, scalar accumulators
// and fixed-bucket histograms. These back every metric the benchmark
// harness reports (message counts, link traversals, latency distributions).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace eecc {

/// Accumulates samples of a scalar quantity (e.g. miss latency).
class Accumulator {
 public:
  void add(double value) {
    count_ += 1;
    sum_ += value;
    sumsq_ += value * value;
    if (count_ == 1 || value < min_) min_ = value;
    if (count_ == 1 || value > max_) max_ = value;
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  /// Population variance.
  double variance() const {
    if (count_ == 0) return 0.0;
    const double m = mean();
    return sumsq_ / static_cast<double>(count_) - m * m;
  }

  void reset() { *this = Accumulator{}; }

  Accumulator& operator+=(const Accumulator& other) {
    if (other.count_ == 0) return *this;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (count_ == 0 || other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    sumsq_ += other.sumsq_;
    return *this;
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Histogram with uniform buckets over [lo, hi); out-of-range samples land
/// in the saturating edge buckets.
class Histogram {
 public:
  Histogram() : Histogram(0.0, 1.0, 1) {}
  Histogram(double lo, double hi, std::size_t buckets)
      : lo_(lo), hi_(hi), counts_(buckets, 0) {}

  void add(double value) {
    acc_.add(value);
    const double span = hi_ - lo_;
    auto idx = static_cast<std::int64_t>((value - lo_) / span *
                                         static_cast<double>(counts_.size()));
    if (idx < 0) idx = 0;
    if (idx >= static_cast<std::int64_t>(counts_.size()))
      idx = static_cast<std::int64_t>(counts_.size()) - 1;
    counts_[static_cast<std::size_t>(idx)] += 1;
  }

  const std::vector<std::uint64_t>& buckets() const { return counts_; }
  const Accumulator& summary() const { return acc_; }
  double bucketLow(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  Accumulator acc_;
};

/// A bag of named integer counters, used where metrics are discovered
/// dynamically (per-message-type counts etc.).
class CounterSet {
 public:
  std::uint64_t& operator[](const std::string& name) { return counters_[name]; }
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }
  void merge(const CounterSet& other) {
    for (const auto& [k, v] : other.counters_) counters_[k] += v;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace eecc
