// Minimal JSON utilities shared by every exporter (the sweep record of
// core/runner, the observability layer's stats/timeline/trace writers)
// and by the report generator that reads those files back. Three layers:
//
//  * jsonEscape() — RFC 8259 string escaping. Every string that reaches a
//    JSON file MUST pass through it: a workload or sweep name containing
//    `"` or `\` used to produce an unparseable BENCH_sweep.json.
//  * JsonWriter — a streaming writer over a FILE* that tracks the
//    object/array nesting and inserts commas and indentation itself, so
//    call sites cannot produce trailing-comma or unbalanced output.
//    Non-finite doubles are emitted as `null` (JSON has no NaN/Inf).
//  * JsonValue / jsonParse() — a small DOM parser for reading our own
//    emitted files back (tools/eecc_report). Strict RFC 8259 subset:
//    no comments, no trailing commas; numbers are stored as double.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace eecc {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): `"` and `\` are backslash-escaped, control characters become
/// \n \t \r \b \f or \u00XX.
std::string jsonEscape(std::string_view s);

// --- Bit-exact double round-trip for machine-only files ---------------
//
// JSON numbers cannot carry every double: JsonWriter turns non-finite
// values into `null`, and the DOM parser stores all numbers as double (a
// uint64 above 2^53 would round). The sweep journal (core/journal.h) must
// restore results *bit-identically* — including the ±inf min/max of an
// empty Accumulator — so it stores doubles as their IEEE-754 bit pattern
// in a string ("x" + 16 hex digits) and uint64 counters as decimal
// strings. These helpers are that encoding.

/// "x3ff0000000000000"-style bit-pattern encoding of `d` (any value,
/// including ±inf, NaN and -0.0).
std::string jsonDoubleBits(double d);

/// Inverse of jsonDoubleBits(). Returns 0.0 for malformed input.
double jsonDoubleFromBits(std::string_view s);

class JsonWriter {
 public:
  /// Writes to `f` (not owned; caller opens and closes).
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // --- Structure ---
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  /// Key of the next member (inside an object).
  void key(std::string_view k);

  // --- Values (as array elements or after key()) ---
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::uint64_t u);
  void value(std::int64_t i);
  void value(unsigned u) { value(static_cast<std::uint64_t>(u)); }
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void value(bool b);
  void null();

  // --- Convenience: key + value in one call ---
  template <class V>
  void field(std::string_view k, V v) {
    key(k);
    value(v);
  }

  /// Terminates the document with a final newline. All scopes must be
  /// closed. Implicit in the destructor for convenience.
  void finish();

  ~JsonWriter() { finish(); }

 private:
  enum class Scope : std::uint8_t { Object, Array };

  void beforeValue();   ///< Comma/indent bookkeeping before any value.
  void newlineIndent();

  std::FILE* f_;
  std::vector<Scope> stack_;
  bool firstInScope_ = true;   ///< No element emitted in the current scope.
  bool afterKey_ = false;      ///< A key was written; value comes inline.
  bool finished_ = false;
};

/// Parsed JSON document node. A tagged union over the seven RFC 8259
/// value kinds (numbers are doubles; `null` from JsonWriter's non-finite
/// doubles round-trips back to Null). Object member order is not
/// preserved — members are kept sorted by key (std::map), which is fine
/// for our own files and keeps lookups log-time.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;  ///< Null.
  explicit JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  explicit JsonValue(double d) : kind_(Kind::Number), num_(d) {}
  explicit JsonValue(std::string s)
      : kind_(Kind::String), str_(std::move(s)) {}

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isNumber() const { return kind_ == Kind::Number; }
  bool isString() const { return kind_ == Kind::String; }
  bool isArray() const { return kind_ == Kind::Array; }
  bool isObject() const { return kind_ == Kind::Object; }

  /// Value accessors; wrong-kind access aborts (these read files our own
  /// writer produced — a kind mismatch is a bug, not an input condition).
  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;
  const std::vector<JsonValue>& asArray() const;
  const std::map<std::string, JsonValue>& asObject() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// find() + asNumber(), with `fallback` when absent or non-numeric.
  double numberOr(std::string_view key, double fallback) const;
  /// find() + asString(), with `fallback` when absent or non-string.
  std::string stringOr(std::string_view key, std::string_view fallback) const;

  // Mutators used by the parser (and by tests building documents).
  std::vector<JsonValue>& makeArray();
  std::map<std::string, JsonValue>& makeObject();

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

/// Parses a complete JSON document. Returns false and fills `error` (with
/// a byte offset) on malformed input; `out` is unspecified on failure.
bool jsonParse(std::string_view text, JsonValue& out, std::string& error);

/// File convenience: reads `path` entirely and parses it.
bool jsonParseFile(const std::string& path, JsonValue& out,
                   std::string& error);

}  // namespace eecc
