// Minimal JSON emission utilities shared by every exporter (the sweep
// record of core/runner, the observability layer's stats/timeline/trace
// writers). Two layers:
//
//  * jsonEscape() — RFC 8259 string escaping. Every string that reaches a
//    JSON file MUST pass through it: a workload or sweep name containing
//    `"` or `\` used to produce an unparseable BENCH_sweep.json.
//  * JsonWriter — a streaming writer over a FILE* that tracks the
//    object/array nesting and inserts commas and indentation itself, so
//    call sites cannot produce trailing-comma or unbalanced output.
//    Non-finite doubles are emitted as `null` (JSON has no NaN/Inf).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace eecc {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included): `"` and `\` are backslash-escaped, control characters become
/// \n \t \r \b \f or \u00XX.
std::string jsonEscape(std::string_view s);

class JsonWriter {
 public:
  /// Writes to `f` (not owned; caller opens and closes).
  explicit JsonWriter(std::FILE* f) : f_(f) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  // --- Structure ---
  void beginObject();
  void endObject();
  void beginArray();
  void endArray();
  /// Key of the next member (inside an object).
  void key(std::string_view k);

  // --- Values (as array elements or after key()) ---
  void value(std::string_view s);
  void value(const char* s) { value(std::string_view(s)); }
  void value(double d);
  void value(std::uint64_t u);
  void value(std::int64_t i);
  void value(unsigned u) { value(static_cast<std::uint64_t>(u)); }
  void value(int i) { value(static_cast<std::int64_t>(i)); }
  void value(bool b);
  void null();

  // --- Convenience: key + value in one call ---
  template <class V>
  void field(std::string_view k, V v) {
    key(k);
    value(v);
  }

  /// Terminates the document with a final newline. All scopes must be
  /// closed. Implicit in the destructor for convenience.
  void finish();

  ~JsonWriter() { finish(); }

 private:
  enum class Scope : std::uint8_t { Object, Array };

  void beforeValue();   ///< Comma/indent bookkeeping before any value.
  void newlineIndent();

  std::FILE* f_;
  std::vector<Scope> stack_;
  bool firstInScope_ = true;   ///< No element emitted in the current scope.
  bool afterKey_ = false;      ///< A key was written; value comes inline.
  bool finished_ = false;
};

}  // namespace eecc
