// Open-addressing hash table for the simulator's hot per-event lookups
// (DESIGN.md §13): uint64 keys, linear probing, backward-shift deletion.
//
// The miss path touches several key->value tables on every access or
// message (the value oracle, memory values, pending memory fetches, the
// line-serialization table). std::unordered_map costs a heap node per
// entry and a pointer chase per probe; this table keeps control bytes and
// slots in two flat arrays, so the common probe is one cache line of
// metadata plus one slot read, and insertion never allocates until the
// table grows. Erasure uses backward shifting (no tombstones), so probe
// sequences never degrade over a long run.
//
// Keys are already well-distributed or cheap to mix; a splitmix64 finalizer
// is applied so block addresses (low bits zero) spread over the table.
// Not a general container: no iterators (forEach instead), values must be
// movable, and the empty key is not reserved (occupancy lives in the
// control bytes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace eecc {

template <typename V>
class FlatHash {
 public:
  explicit FlatHash(std::size_t initialCapacity = 16) {
    std::size_t cap = 16;
    while (cap < initialCapacity) cap <<= 1;
    ctrl_.assign(cap, kEmpty);
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  /// Grows so `n` entries fit without rehashing mid-stream.
  void reserve(std::size_t n) {
    std::size_t cap = slots_.size();
    while (n + n / 3 >= cap) cap <<= 1;
    if (cap != slots_.size()) rehash(cap);
  }

  bool contains(std::uint64_t key) const { return findSlot(key) != kNone; }

  V* find(std::uint64_t key) {
    const std::size_t i = findSlot(key);
    return i == kNone ? nullptr : &slots_[i].value;
  }
  const V* find(std::uint64_t key) const {
    const std::size_t i = findSlot(key);
    return i == kNone ? nullptr : &slots_[i].value;
  }

  /// Fast read with a default for absent keys (the common "value oracle
  /// never written" case) — one probe, no insertion.
  V getOr(std::uint64_t key, V fallback) const {
    const std::size_t i = findSlot(key);
    return i == kNone ? fallback : slots_[i].value;
  }

  /// Inserts or overwrites. Returns true when the key was newly inserted.
  bool put(std::uint64_t key, V value) {
    maybeGrow();
    std::size_t i = mix(key) & mask_;
    while (ctrl_[i] == kFull) {
      if (slots_[i].key == key) {
        slots_[i].value = std::move(value);
        return false;
      }
      i = (i + 1) & mask_;
    }
    ctrl_[i] = kFull;
    slots_[i].key = key;
    slots_[i].value = std::move(value);
    ++size_;
    return true;
  }

  /// operator[]-style access: default-constructs absent values.
  V& at(std::uint64_t key) {
    maybeGrow();
    std::size_t i = mix(key) & mask_;
    while (ctrl_[i] == kFull) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask_;
    }
    ctrl_[i] = kFull;
    slots_[i].key = key;
    slots_[i].value = V{};
    ++size_;
    return slots_[i].value;
  }

  /// Removes `key` if present (backward-shift deletion keeps probe chains
  /// dense — no tombstones). Returns true when an entry was removed.
  bool erase(std::uint64_t key) {
    std::size_t i = findSlot(key);
    if (i == kNone) return false;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (ctrl_[j] != kFull) break;
      // Move j back into the hole unless j already sits at (or after) its
      // ideal slot within the probe chain starting at the hole.
      const std::size_t ideal = mix(slots_[j].key) & mask_;
      if (((j - ideal) & mask_) >= ((j - i) & mask_)) {
        slots_[i] = std::move(slots_[j]);
        i = j;
      }
    }
    ctrl_[i] = kEmpty;
    slots_[i] = Slot{};
    --size_;
    return true;
  }

  void clear() {
    ctrl_.assign(ctrl_.size(), kEmpty);
    for (Slot& s : slots_) s = Slot{};
    size_ = 0;
  }

  /// Visits every (key, value) pair; insertion-order is NOT preserved, so
  /// callers that need a stable order must sort (audits do).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i)
      if (ctrl_[i] == kFull) fn(slots_[i].key, slots_[i].value);
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V value{};
  };

  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  static std::uint64_t mix(std::uint64_t k) {
    // splitmix64 finalizer.
    k += 0x9e3779b97f4a7c15ULL;
    k = (k ^ (k >> 30)) * 0xbf58476d1ce4e5b9ULL;
    k = (k ^ (k >> 27)) * 0x94d049bb133111ebULL;
    return k ^ (k >> 31);
  }

  std::size_t findSlot(std::uint64_t key) const {
    std::size_t i = mix(key) & mask_;
    while (ctrl_[i] == kFull) {
      if (slots_[i].key == key) return i;
      i = (i + 1) & mask_;
    }
    return kNone;
  }

  void maybeGrow() {
    // Grow at 3/4 occupancy; linear probing stays short well below that.
    if ((size_ + 1) * 4 > slots_.size() * 3) rehash(slots_.size() * 2);
  }

  void rehash(std::size_t cap) {
    std::vector<std::uint8_t> oldCtrl = std::move(ctrl_);
    std::vector<Slot> oldSlots = std::move(slots_);
    ctrl_.assign(cap, kEmpty);
    slots_.clear();
    slots_.resize(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < oldSlots.size(); ++i) {
      if (oldCtrl[i] != kFull) continue;
      std::size_t j = mix(oldSlots[i].key) & mask_;
      while (ctrl_[j] == kFull) j = (j + 1) & mask_;
      ctrl_[j] = kFull;
      slots_[j] = std::move(oldSlots[i]);
    }
  }

  std::vector<std::uint8_t> ctrl_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace eecc
