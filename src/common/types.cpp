#include "common/types.h"

namespace eecc {

const char* protocolName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::Directory: return "Directory";
    case ProtocolKind::DiCo: return "DiCo";
    case ProtocolKind::DiCoProviders: return "DiCo-Providers";
    case ProtocolKind::DiCoArin: return "DiCo-Arin";
    case ProtocolKind::Mesi: return "MESI-Snoop";
    case ProtocolKind::Moesi: return "MOESI-Snoop";
    case ProtocolKind::Dragon: return "Dragon";
    case ProtocolKind::Adapt: return "Hybrid-Adapt";
  }
  return "?";
}

const char* sharingCodeName(SharingCode code) {
  switch (code) {
    case SharingCode::FullMap: return "full-map";
    case SharingCode::CoarseVector2: return "coarse/2";
    case SharingCode::CoarseVector4: return "coarse/4";
    case SharingCode::LimitedPtr2: return "2-pointer";
    case SharingCode::LimitedPtr4: return "4-pointer";
  }
  return "?";
}

}  // namespace eecc
