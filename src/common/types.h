// Fundamental scalar types and small enums shared by every module.
//
// The simulator models a tiled CMP: `ntc` tiles arranged in a 2D mesh, each
// tile holding a core, an L1 cache, one bank of the shared L2 and a network
// interface. Addresses are physical byte addresses; coherence operates on
// 64-byte blocks.
#pragma once

#include <cstdint>
#include <limits>

namespace eecc {

/// Simulated time in core clock cycles (3 GHz in the paper's Table III).
using Tick = std::uint64_t;

/// Physical byte address (40 bits used, per the paper's Section V-B).
using Addr = std::uint64_t;

/// Identity of a tile (0 .. ntc-1). Also identifies the L1 cache, the L2
/// bank and the router co-located on that tile.
using NodeId = std::int32_t;

/// Identity of a virtual machine running on the chip.
using VmId = std::int32_t;

/// Identity of a static chip area (0 .. na-1).
using AreaId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr VmId kInvalidVm = -1;
/// Sentinel VM identity for pages shared across VMs by hypervisor
/// deduplication (no single VM owns them; the attribution ledger keeps a
/// dedicated row for their footprint).
inline constexpr VmId kVmShared = -2;
inline constexpr Tick kTickMax = std::numeric_limits<Tick>::max();

/// Size of a coherence block in bytes (Table III).
inline constexpr std::uint32_t kBlockBytes = 64;
inline constexpr std::uint32_t kBlockOffsetBits = 6;

/// Page size in bytes (Table III).
inline constexpr std::uint32_t kPageBytes = 4096;
inline constexpr std::uint32_t kPageOffsetBits = 12;

/// Physical address width assumed for tag sizing (Section V-B).
inline constexpr std::uint32_t kPhysAddrBits = 40;

/// Rounds a byte address down to its block address.
constexpr Addr blockAddr(Addr a) { return a & ~Addr{kBlockBytes - 1}; }

/// Rounds a byte address down to its page address.
constexpr Addr pageAddr(Addr a) { return a & ~Addr{kPageBytes - 1}; }

/// Block index within the physical address space.
constexpr std::uint64_t blockIndex(Addr a) { return a >> kBlockOffsetBits; }

/// Kind of memory access issued by a core.
enum class AccessType : std::uint8_t { Read, Write };

/// The four coherence protocols evaluated in the paper, plus the snooping
/// reference points built on the mesh broadcast path (MESI/MOESI
/// invalidate, Dragon update) and the per-line adaptive hybrid.
enum class ProtocolKind : std::uint8_t {
  Directory,      ///< Flat full-map MESI directory (baseline, Section II-A).
  DiCo,           ///< Original Direct Coherence [7].
  DiCoProviders,  ///< Section III-A.
  DiCoArin,       ///< Section III-B.
  Mesi,           ///< Broadcast-snooping MESI (no directory storage).
  Moesi,          ///< Broadcast-snooping MOESI (owned-state dirty sharing).
  Dragon,         ///< Write-update snooping (Dragon).
  Adapt,          ///< Hybrid-Adapt: per-line invalidate/update switching.
};

/// Human-readable protocol name matching the paper's tables.
const char* protocolName(ProtocolKind kind);

/// Alternative sharing codes for full-map fields (Section II-A): the
/// baseline uses a full map; coarse vectors and limited pointers trade
/// storage for spurious invalidations.
enum class SharingCode : std::uint8_t {
  FullMap,        ///< One bit per trackable node (the paper's default).
  CoarseVector2,  ///< One bit per 2 nodes.
  CoarseVector4,  ///< One bit per 4 nodes.
  LimitedPtr2,    ///< Two node pointers + overflow bit.
  LimitedPtr4,    ///< Four node pointers + overflow bit.
};

const char* sharingCodeName(SharingCode code);

}  // namespace eecc
