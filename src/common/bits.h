// Small bit-arithmetic helpers used by the storage model and cache indexing.
#pragma once

#include <bit>
#include <cstdint>

namespace eecc {

/// ceil(log2(n)) for n >= 1: the number of bits needed to name n distinct
/// values. log2ceil(1) == 0.
constexpr std::uint32_t log2ceil(std::uint64_t n) {
  if (n <= 1) return 0;
  return 64u - static_cast<std::uint32_t>(std::countl_zero(n - 1));
}

/// floor(log2(n)) for n >= 1.
constexpr std::uint32_t log2floor(std::uint64_t n) {
  return 63u - static_cast<std::uint32_t>(std::countl_zero(n));
}

constexpr bool isPow2(std::uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Converts a size in bits to KiB as a double (for Table V style reporting).
constexpr double bitsToKiB(std::uint64_t bits) {
  return static_cast<double>(bits) / 8.0 / 1024.0;
}

}  // namespace eecc
