#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/check.h"

namespace eecc {

std::string jsonDoubleBits(double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof d);
  std::memcpy(&bits, &d, sizeof bits);
  char buf[20];
  std::snprintf(buf, sizeof buf, "x%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

double jsonDoubleFromBits(std::string_view s) {
  if (s.size() != 17 || s[0] != 'x') return 0.0;
  char buf[17];
  std::memcpy(buf, s.data() + 1, 16);
  buf[16] = '\0';
  char* end = nullptr;
  const std::uint64_t bits = std::strtoull(buf, &end, 16);
  if (end != buf + 16) return 0.0;
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newlineIndent() {
  std::fputc('\n', f_);
  for (std::size_t i = 0; i < stack_.size(); ++i) std::fputs("  ", f_);
}

void JsonWriter::beforeValue() {
  EECC_CHECK_MSG(!finished_, "JsonWriter: write after finish()");
  if (afterKey_) {
    afterKey_ = false;
    return;  // value sits on the key's line
  }
  if (!stack_.empty()) {
    EECC_CHECK_MSG(stack_.back() == Scope::Array,
                   "JsonWriter: object member without key()");
    if (!firstInScope_) std::fputc(',', f_);
    newlineIndent();
  }
  firstInScope_ = false;
}

void JsonWriter::beginObject() {
  beforeValue();
  std::fputc('{', f_);
  stack_.push_back(Scope::Object);
  firstInScope_ = true;
}

void JsonWriter::endObject() {
  EECC_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::Object &&
                     !afterKey_,
                 "JsonWriter: unbalanced endObject");
  const bool empty = firstInScope_;
  stack_.pop_back();
  if (!empty) newlineIndent();
  std::fputc('}', f_);
  firstInScope_ = false;
}

void JsonWriter::beginArray() {
  beforeValue();
  std::fputc('[', f_);
  stack_.push_back(Scope::Array);
  firstInScope_ = true;
}

void JsonWriter::endArray() {
  EECC_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::Array,
                 "JsonWriter: unbalanced endArray");
  const bool empty = firstInScope_;
  stack_.pop_back();
  if (!empty) newlineIndent();
  std::fputc(']', f_);
  firstInScope_ = false;
}

void JsonWriter::key(std::string_view k) {
  EECC_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::Object &&
                     !afterKey_,
                 "JsonWriter: key() outside an object");
  if (!firstInScope_) std::fputc(',', f_);
  newlineIndent();
  std::fprintf(f_, "\"%s\": ", jsonEscape(k).c_str());
  firstInScope_ = false;
  afterKey_ = true;
}

void JsonWriter::value(std::string_view s) {
  beforeValue();
  std::fprintf(f_, "\"%s\"", jsonEscape(s).c_str());
}

void JsonWriter::value(double d) {
  if (!std::isfinite(d)) {
    null();
    return;
  }
  beforeValue();
  // %.17g round-trips every double; trim the common integral case.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  std::fputs(buf, f_);
}

void JsonWriter::value(std::uint64_t u) {
  beforeValue();
  std::fprintf(f_, "%llu", static_cast<unsigned long long>(u));
}

void JsonWriter::value(std::int64_t i) {
  beforeValue();
  std::fprintf(f_, "%lld", static_cast<long long>(i));
}

void JsonWriter::value(bool b) {
  beforeValue();
  std::fputs(b ? "true" : "false", f_);
}

void JsonWriter::null() {
  beforeValue();
  std::fputs("null", f_);
}

void JsonWriter::finish() {
  if (finished_) return;
  EECC_CHECK_MSG(stack_.empty() && !afterKey_,
                 "JsonWriter: finish() with open scopes");
  std::fputc('\n', f_);
  finished_ = true;
}

// --- JsonValue ------------------------------------------------------------

bool JsonValue::asBool() const {
  EECC_CHECK_MSG(kind_ == Kind::Bool, "JsonValue: not a bool");
  return bool_;
}

double JsonValue::asNumber() const {
  EECC_CHECK_MSG(kind_ == Kind::Number, "JsonValue: not a number");
  return num_;
}

const std::string& JsonValue::asString() const {
  EECC_CHECK_MSG(kind_ == Kind::String, "JsonValue: not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::asArray() const {
  EECC_CHECK_MSG(kind_ == Kind::Array, "JsonValue: not an array");
  return arr_;
}

const std::map<std::string, JsonValue>& JsonValue::asObject() const {
  EECC_CHECK_MSG(kind_ == Kind::Object, "JsonValue: not an object");
  return obj_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  const auto it = obj_.find(std::string(key));
  return it == obj_.end() ? nullptr : &it->second;
}

double JsonValue::numberOr(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->isNumber()) ? v->num_ : fallback;
}

std::string JsonValue::stringOr(std::string_view key,
                                std::string_view fallback) const {
  const JsonValue* v = find(key);
  return (v != nullptr && v->isString()) ? v->str_ : std::string(fallback);
}

std::vector<JsonValue>& JsonValue::makeArray() {
  kind_ = Kind::Array;
  return arr_;
}

std::map<std::string, JsonValue>& JsonValue::makeObject() {
  kind_ = Kind::Object;
  return obj_;
}

// --- Parser ---------------------------------------------------------------

namespace {

/// Recursive-descent parser over the input span. Position is a byte
/// offset so errors can point at the offending character.
class Parser {
 public:
  Parser(std::string_view text, std::string& error)
      : text_(text), error_(error) {}

  bool parseDocument(JsonValue& out) {
    skipWs();
    if (!parseValue(out, /*depth=*/0)) return false;
    skipWs();
    if (pos_ != text_.size()) return fail("trailing characters");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;  ///< Recursion guard.

  bool fail(const std::string& what) {
    error_ = "JSON parse error at offset " + std::to_string(pos_) + ": " +
             what;
    return false;
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skipWs() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool consume(char expect) {
    if (eof() || peek() != expect)
      return fail(std::string("expected '") + expect + "'");
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parseObject(out, depth);
      case '[': return parseArray(out, depth);
      case '"': {
        std::string s;
        if (!parseString(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = JsonValue(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = JsonValue(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = JsonValue();
        return true;
      default: return parseNumber(out);
    }
  }

  bool parseObject(JsonValue& out, int depth) {
    ++pos_;  // '{'
    auto& members = out.makeObject();
    skipWs();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      std::string key;
      if (!parseString(key)) return false;
      skipWs();
      if (!consume(':')) return false;
      skipWs();
      JsonValue v;
      if (!parseValue(v, depth + 1)) return false;
      members.insert_or_assign(std::move(key), std::move(v));
      skipWs();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume('}');
    }
  }

  bool parseArray(JsonValue& out, int depth) {
    ++pos_;  // '['
    auto& elems = out.makeArray();
    skipWs();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skipWs();
      JsonValue v;
      if (!parseValue(v, depth + 1)) return false;
      elems.push_back(std::move(v));
      skipWs();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      return consume(']');
    }
  }

  bool parseString(std::string& out) {
    if (eof() || peek() != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("invalid \\u escape");
          }
          // Encode the code point as UTF-8. Surrogate pairs are not
          // recombined — our writer only emits \u00XX control escapes.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("invalid escape");
      }
    }
    return fail("unterminated string");
  }

  bool parseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (!eof() && peek() == '.') {
      ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek())))
        ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str())
      return fail("malformed number");
    out = JsonValue(d);
    return true;
  }

  std::string_view text_;
  std::string& error_;
  std::size_t pos_ = 0;
};

}  // namespace

bool jsonParse(std::string_view text, JsonValue& out, std::string& error) {
  Parser p(text, error);
  return p.parseDocument(out);
}

bool jsonParseFile(const std::string& path, JsonValue& out,
                   std::string& error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    error = "cannot open " + path;
    return false;
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return jsonParse(text, out, error);
}

}  // namespace eecc
