#include "common/json.h"

#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace eecc {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newlineIndent() {
  std::fputc('\n', f_);
  for (std::size_t i = 0; i < stack_.size(); ++i) std::fputs("  ", f_);
}

void JsonWriter::beforeValue() {
  EECC_CHECK_MSG(!finished_, "JsonWriter: write after finish()");
  if (afterKey_) {
    afterKey_ = false;
    return;  // value sits on the key's line
  }
  if (!stack_.empty()) {
    EECC_CHECK_MSG(stack_.back() == Scope::Array,
                   "JsonWriter: object member without key()");
    if (!firstInScope_) std::fputc(',', f_);
    newlineIndent();
  }
  firstInScope_ = false;
}

void JsonWriter::beginObject() {
  beforeValue();
  std::fputc('{', f_);
  stack_.push_back(Scope::Object);
  firstInScope_ = true;
}

void JsonWriter::endObject() {
  EECC_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::Object &&
                     !afterKey_,
                 "JsonWriter: unbalanced endObject");
  const bool empty = firstInScope_;
  stack_.pop_back();
  if (!empty) newlineIndent();
  std::fputc('}', f_);
  firstInScope_ = false;
}

void JsonWriter::beginArray() {
  beforeValue();
  std::fputc('[', f_);
  stack_.push_back(Scope::Array);
  firstInScope_ = true;
}

void JsonWriter::endArray() {
  EECC_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::Array,
                 "JsonWriter: unbalanced endArray");
  const bool empty = firstInScope_;
  stack_.pop_back();
  if (!empty) newlineIndent();
  std::fputc(']', f_);
  firstInScope_ = false;
}

void JsonWriter::key(std::string_view k) {
  EECC_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::Object &&
                     !afterKey_,
                 "JsonWriter: key() outside an object");
  if (!firstInScope_) std::fputc(',', f_);
  newlineIndent();
  std::fprintf(f_, "\"%s\": ", jsonEscape(k).c_str());
  firstInScope_ = false;
  afterKey_ = true;
}

void JsonWriter::value(std::string_view s) {
  beforeValue();
  std::fprintf(f_, "\"%s\"", jsonEscape(s).c_str());
}

void JsonWriter::value(double d) {
  if (!std::isfinite(d)) {
    null();
    return;
  }
  beforeValue();
  // %.17g round-trips every double; trim the common integral case.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  std::fputs(buf, f_);
}

void JsonWriter::value(std::uint64_t u) {
  beforeValue();
  std::fprintf(f_, "%llu", static_cast<unsigned long long>(u));
}

void JsonWriter::value(std::int64_t i) {
  beforeValue();
  std::fprintf(f_, "%lld", static_cast<long long>(i));
}

void JsonWriter::value(bool b) {
  beforeValue();
  std::fputs(b ? "true" : "false", f_);
}

void JsonWriter::null() {
  beforeValue();
  std::fputs("null", f_);
}

void JsonWriter::finish() {
  if (finished_) return;
  EECC_CHECK_MSG(stack_.empty() && !afterKey_,
                 "JsonWriter: finish() with open scopes");
  std::fputc('\n', f_);
  finished_ = true;
}

}  // namespace eecc
