// Move-only callable with small-buffer storage — the same trick as the
// event queue's inline action storage (sim/event_queue.h), packaged as a
// reusable type for tables that hold callbacks (the line-serialization
// waiter slab, pending memory fetches).
//
// std::function costs a heap allocation for captures beyond ~16 bytes and
// always carries copy machinery; the simulator's queued continuations are
// move-only, invoked exactly once, and almost always fit in a fixed small
// buffer. InlineFn stores the callable inline up to `Bytes`, falls back to
// a single heap allocation for oversized captures, and type-erases through
// two raw function pointers (invoke, manage) — no virtual dispatch, no RTTI.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace eecc {

template <typename Sig, std::size_t Bytes = 64>
class InlineFn;

template <typename R, typename... Args, std::size_t Bytes>
class InlineFn<R(Args...), Bytes> {
 public:
  InlineFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  InlineFn(InlineFn&& o) noexcept { moveFrom(o); }
  InlineFn& operator=(InlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      moveFrom(o);
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    EECC_CHECK_MSG(invoke_ != nullptr, "empty InlineFn invoked");
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  void reset() {
    if (manage_ != nullptr) manage_(storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  // manage(src, dst): dst == nullptr destroys *src; otherwise relocates
  // *src into dst (move-construct + destroy source).
  using Invoke = R (*)(std::byte*, Args&&...);
  using Manage = void (*)(std::byte*, std::byte*);

  template <typename F>
  void emplace(F&& fn) {
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= Bytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(fn));
      invoke_ = [](std::byte* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(s)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](std::byte* src, std::byte* dst) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(src));
        if (dst != nullptr) ::new (static_cast<void*>(dst)) Fn(std::move(*f));
        f->~Fn();
      };
    } else {
      // Oversized capture: one heap allocation, pointer stored inline.
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(fn)));
      invoke_ = [](std::byte* s, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(s)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](std::byte* src, std::byte* dst) {
        Fn** p = std::launder(reinterpret_cast<Fn**>(src));
        if (dst != nullptr) ::new (static_cast<void*>(dst)) Fn*(*p);
        else delete *p;
        *p = nullptr;
      };
    }
  }

  void moveFrom(InlineFn& o) {
    if (o.invoke_ == nullptr) return;
    o.manage_(o.storage_, storage_);
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    o.invoke_ = nullptr;
    o.manage_ = nullptr;
  }

  alignas(std::max_align_t) std::byte storage_[Bytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace eecc
