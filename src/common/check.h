// Internal invariant checking. EECC_CHECK is active in all build types:
// a coherence simulator that silently corrupts its own state produces
// plausible-looking but meaningless numbers, so the (cheap) checks stay on.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace eecc::detail {
[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "EECC_CHECK failed: %s at %s:%d%s%s\n", expr, file,
               line, msg[0] ? " — " : "", msg);
  std::abort();
}
}  // namespace eecc::detail

#define EECC_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) ::eecc::detail::checkFailed(#expr, __FILE__, __LINE__, \
                                             "");                       \
  } while (false)

#define EECC_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) ::eecc::detail::checkFailed(#expr, __FILE__, __LINE__, \
                                             (msg));                    \
  } while (false)
