// Deterministic pseudo-random number generation for workload synthesis.
//
// We use xoshiro256** (public-domain algorithm by Blackman & Vigna): fast,
// high quality, and — unlike std::mt19937 — trivially seedable with
// guaranteed identical streams across platforms, which our differential
// protocol tests rely on.
#pragma once

#include <cstdint>

namespace eecc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a single seed via splitmix64.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace eecc
