// Crash-safe file writes for every exporter (DESIGN.md §12). The old
// pattern — fopen(path, "w"), write, fclose — leaves a truncated but
// present file after a crash or ENOSPC mid-write, and downstream readers
// (eecc_report, sweep --resume) would trust it. AtomicFile writes to
// `<path>.tmp` and only renames over the destination after the stream
// flushed, ferror() came back clean and the data reached the disk
// (fsync), so `path` either keeps its previous content or holds the
// complete new file — never a prefix.
//
// Not for concurrent writers of the same path (the .tmp name would
// collide); every exporter in this codebase writes distinct paths.
#pragma once

#include <cstdio>
#include <string>

namespace eecc {

class AtomicFile {
 public:
  /// Opens `<path>.tmp` for writing. On failure get() is nullptr and a
  /// diagnostic naming `path` is printed to stderr.
  explicit AtomicFile(std::string path);

  /// Discards the temporary file when commit() was never called (or
  /// failed): the destination is left untouched.
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  std::FILE* get() const { return f_; }
  explicit operator bool() const { return f_ != nullptr; }

  /// Flushes, checks ferror(), fsyncs, closes, and renames the temporary
  /// over the destination. Returns false (diagnostic on stderr, temporary
  /// removed) if any step failed — the destination is never replaced with
  /// partial data. Idempotent: a second call returns the first outcome.
  bool commit();

 private:
  std::string path_;
  std::string tmpPath_;
  std::FILE* f_ = nullptr;
  bool committed_ = false;
};

}  // namespace eecc
