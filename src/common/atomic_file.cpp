#include "common/atomic_file.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace eecc {

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmpPath_(path_ + ".tmp") {
  f_ = std::fopen(tmpPath_.c_str(), "w");
  if (f_ == nullptr)
    std::fprintf(stderr, "AtomicFile: cannot open %s for %s: %s\n",
                 tmpPath_.c_str(), path_.c_str(), std::strerror(errno));
}

AtomicFile::~AtomicFile() {
  if (f_ != nullptr) {
    std::fclose(f_);
    std::remove(tmpPath_.c_str());
  }
}

bool AtomicFile::commit() {
  if (f_ == nullptr) return committed_;
  std::FILE* f = f_;
  f_ = nullptr;  // whatever happens, the destructor has nothing to do ...
  bool ok = std::fflush(f) == 0;
  ok = ok && std::ferror(f) == 0;
  ok = ok && ::fsync(fileno(f)) == 0;
  ok = std::fclose(f) == 0 && ok;  // ... except removing a failed tmp
  if (ok && std::rename(tmpPath_.c_str(), path_.c_str()) != 0) ok = false;
  if (!ok) {
    std::fprintf(stderr, "AtomicFile: write to %s failed: %s\n",
                 path_.c_str(), std::strerror(errno));
    std::remove(tmpPath_.c_str());
  }
  committed_ = ok;
  return ok;
}

}  // namespace eecc
