// Physical page allocation with hypervisor-style memory deduplication.
//
// Models what KVM/Xen/VMware page sharing gives the coherence protocols
// (Section I): identical read-only pages in several VMs are backed by one
// physical page; the first write by a VM triggers copy-on-write and gives
// that VM a private copy. The manager also tracks the memory saved by
// deduplication, the quantity the paper reports in Table IV.
//
// Every content page carries its sharer set — the VMs whose logical
// mapping still points at it — so dedup savings are attributable per VM
// and the scale-out VM lifecycle (boot / shutdown / migration) can unmap
// and reclaim pages without corrupting the other sharers' accounting.
// The legacy operations (mapContent / copyOnWrite / translate) keep their
// exact counter semantics: a run that never unmaps produces bit-identical
// physicalPages / logicalMappings / savedFraction values.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/types.h"

namespace eecc {

class PageManager {
 public:
  /// `firstPage`: lowest physical page number handed out (leaves room for
  /// firmware/IO the way a real machine would).
  explicit PageManager(std::uint64_t firstPage = 64)
      : nextPage_(firstPage) {}

  /// Allocates a fresh physical page private to one mapping.
  Addr allocPrivatePage() {
    ++physPages_;
    ++logicalMappings_;
    return static_cast<Addr>(nextPage_++) << kPageOffsetBits;
  }

  /// Releases a page obtained from allocPrivatePage() (VM shutdown /
  /// reclaim). Page numbers are never reused — release is pure accounting.
  void releasePrivatePage(Addr /*page*/) {
    EECC_CHECK(physPages_ > 0 && logicalMappings_ > 0);
    --physPages_;
    --logicalMappings_;
    ++reclaimedPages_;
  }

  /// Maps a logical page with content identity `contentKey` for VM `vm`.
  /// Identical content across VMs shares one physical page (deduplication);
  /// `vm` joins the content's sharer set.
  Addr mapContent(std::uint64_t contentKey, VmId vm) {
    ++logicalMappings_;
    ++vmLogical_[vm];
    auto it = content_.find(contentKey);
    if (it != content_.end()) {
      addSharer(it->second, contentKey, vm);
      return it->second.page;
    }
    ++physPages_;
    const Addr page = static_cast<Addr>(nextPage_++) << kPageOffsetBits;
    ContentEntry entry;
    entry.page = page;
    addSharer(entry, contentKey, vm);
    content_.emplace(contentKey, std::move(entry));
    return page;
  }

  /// Removes `vm` from the content's sharer set (VM shutdown or a
  /// migration that re-homes sole-sharer pages). Releases the VM's
  /// copy-on-write copy if one exists, and frees the shared physical page
  /// when the last sharer leaves. Returns true when the shared page was
  /// freed. No-op (returns false) if `vm` never mapped the content.
  bool unmapContent(std::uint64_t contentKey, VmId vm) {
    auto it = content_.find(contentKey);
    if (it == content_.end()) return false;
    ContentEntry& e = it->second;
    auto s = std::find(e.sharers.begin(), e.sharers.end(), vm);
    if (s == e.sharers.end()) return false;
    e.sharers.erase(s);
    EECC_CHECK(logicalMappings_ > 0);
    --logicalMappings_;
    --vmLogical_[vm];
    auto& keys = vmKeys_[vm];
    keys.erase(std::find(keys.begin(), keys.end(), contentKey));
    if (auto c = cow_.find(cowKey(contentKey, vm)); c != cow_.end()) {
      cow_.erase(c);
      EECC_CHECK(physPages_ > 0);
      --physPages_;
      ++reclaimedPages_;
    }
    if (!e.sharers.empty()) return false;
    content_.erase(it);
    EECC_CHECK(physPages_ > 0);
    --physPages_;
    ++reclaimedPages_;
    return true;
  }

  /// Unmaps every content page `vm` still shares (its copy-on-write copies
  /// go with them). Returns the number of physical pages freed. The
  /// caller releases the VM's private pages itself — the manager does not
  /// know which allocPrivatePage() results belong to whom.
  std::uint64_t reclaimVm(VmId vm) {
    const std::uint64_t before = reclaimedPages_;
    auto it = vmKeys_.find(vm);
    if (it == vmKeys_.end()) return 0;
    // unmapContent edits the key list; walk a copy.
    const std::vector<std::uint64_t> keys = it->second;
    for (const std::uint64_t key : keys) unmapContent(key, vm);
    vmKeys_.erase(vm);
    vmLogical_.erase(vm);
    return reclaimedPages_ - before;
  }

  /// Copy-on-write: VM `vm` writes a deduplicated page. Returns the VM's
  /// private copy, allocating it on first write. Other VMs keep reading
  /// the shared original.
  Addr copyOnWrite(std::uint64_t contentKey, VmId vm) {
    EECC_CHECK_MSG(content_.contains(contentKey),
                   "copy-on-write of a page that was never deduplicated");
    const std::uint64_t key = cowKey(contentKey, vm);
    auto it = cow_.find(key);
    if (it != cow_.end()) return it->second;
    ++physPages_;
    ++cowEvents_;
    const Addr page = static_cast<Addr>(nextPage_++) << kPageOffsetBits;
    cow_.emplace(key, page);
    return page;
  }

  /// The VM's current translation for a deduplicated logical page: the
  /// private copy if it was ever written, otherwise the shared page.
  Addr translate(std::uint64_t contentKey, VmId vm) const {
    auto it = cow_.find(cowKey(contentKey, vm));
    if (it != cow_.end()) return it->second;
    auto c = content_.find(contentKey);
    EECC_CHECK(c != content_.end());
    return c->second.page;
  }

  // --- Sharer introspection (per-VM attribution, migration re-homing) ---

  /// VMs whose logical mapping still targets the content (map order).
  /// Empty if the content was never mapped or fully unmapped.
  std::vector<VmId> sharersOf(std::uint64_t contentKey) const {
    auto it = content_.find(contentKey);
    return it == content_.end() ? std::vector<VmId>{} : it->second.sharers;
  }
  std::uint32_t sharerCount(std::uint64_t contentKey) const {
    auto it = content_.find(contentKey);
    return it == content_.end()
               ? 0
               : static_cast<std::uint32_t>(it->second.sharers.size());
  }
  bool isSharer(std::uint64_t contentKey, VmId vm) const {
    auto it = content_.find(contentKey);
    return it != content_.end() &&
           std::find(it->second.sharers.begin(), it->second.sharers.end(),
                     vm) != it->second.sharers.end();
  }
  /// The single remaining sharer, or kInvalidVm when there are zero or
  /// several. A migrating VM re-homes exactly these pages.
  VmId soleSharer(std::uint64_t contentKey) const {
    auto it = content_.find(contentKey);
    if (it == content_.end() || it->second.sharers.size() != 1)
      return kInvalidVm;
    return it->second.sharers.front();
  }

  /// Live logical content mappings held by `vm`.
  std::uint64_t vmLogicalMappings(VmId vm) const {
    auto it = vmLogical_.find(vm);
    return it == vmLogical_.end() ? 0 : it->second;
  }
  /// Physical pages deduplication currently saves on `vm`'s behalf: each
  /// content page with n sharers backs n logical mappings with one frame,
  /// so every sharer is credited (n-1)/n of a page. Summing over all VMs
  /// yields exactly the total pages saved by sharing.
  double vmSavedPages(VmId vm) const {
    auto it = vmKeys_.find(vm);
    if (it == vmKeys_.end()) return 0.0;
    double saved = 0.0;
    for (const std::uint64_t key : it->second) {
      const auto n = static_cast<double>(sharerCount(key));
      if (n > 0.0) saved += (n - 1.0) / n;
    }
    return saved;
  }

  std::uint64_t physicalPages() const { return physPages_; }
  std::uint64_t logicalMappings() const { return logicalMappings_; }
  std::uint64_t cowEvents() const { return cowEvents_; }
  /// Physical pages freed by unmap/reclaim (monotonic).
  std::uint64_t reclaimedPages() const { return reclaimedPages_; }

  /// Fraction of memory saved by deduplication: 1 - physical/logical.
  /// This is the "Memory saved by deduplication" column of Table IV.
  double savedFraction() const {
    if (logicalMappings_ == 0) return 0.0;
    return 1.0 - static_cast<double>(physPages_) /
                     static_cast<double>(logicalMappings_);
  }

 private:
  struct ContentEntry {
    Addr page = 0;
    std::vector<VmId> sharers;  // map order; small (one slot per VM)
  };

  void addSharer(ContentEntry& e, std::uint64_t contentKey, VmId vm) {
    if (std::find(e.sharers.begin(), e.sharers.end(), vm) !=
        e.sharers.end())
      return;  // re-mapping the same content is one sharer, many mappings
    e.sharers.push_back(vm);
    vmKeys_[vm].push_back(contentKey);
  }

  static std::uint64_t cowKey(std::uint64_t contentKey, VmId vm) {
    return contentKey * 1000003ULL + static_cast<std::uint64_t>(vm) + 1;
  }

  std::uint64_t nextPage_;
  std::uint64_t physPages_ = 0;
  std::uint64_t logicalMappings_ = 0;
  std::uint64_t cowEvents_ = 0;
  std::uint64_t reclaimedPages_ = 0;
  std::unordered_map<std::uint64_t, ContentEntry> content_;
  std::unordered_map<std::uint64_t, Addr> cow_;
  std::unordered_map<VmId, std::vector<std::uint64_t>> vmKeys_;
  std::unordered_map<VmId, std::uint64_t> vmLogical_;
};

}  // namespace eecc
