// Physical page allocation with hypervisor-style memory deduplication.
//
// Models what KVM/Xen/VMware page sharing gives the coherence protocols
// (Section I): identical read-only pages in several VMs are backed by one
// physical page; the first write by a VM triggers copy-on-write and gives
// that VM a private copy. The manager also tracks the memory saved by
// deduplication, the quantity the paper reports in Table IV.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/check.h"
#include "common/types.h"

namespace eecc {

class PageManager {
 public:
  /// `firstPage`: lowest physical page number handed out (leaves room for
  /// firmware/IO the way a real machine would).
  explicit PageManager(std::uint64_t firstPage = 64)
      : nextPage_(firstPage) {}

  /// Allocates a fresh physical page private to one mapping.
  Addr allocPrivatePage() {
    ++physPages_;
    ++logicalMappings_;
    return static_cast<Addr>(nextPage_++) << kPageOffsetBits;
  }

  /// Maps a logical page with content identity `contentKey` for VM `vm`.
  /// Identical content across VMs shares one physical page (deduplication).
  Addr mapContent(std::uint64_t contentKey, VmId vm) {
    ++logicalMappings_;
    auto it = content_.find(contentKey);
    if (it != content_.end()) {
      (void)vm;
      return it->second;
    }
    ++physPages_;
    const Addr page = static_cast<Addr>(nextPage_++) << kPageOffsetBits;
    content_.emplace(contentKey, page);
    return page;
  }

  /// Copy-on-write: VM `vm` writes a deduplicated page. Returns the VM's
  /// private copy, allocating it on first write. Other VMs keep reading
  /// the shared original.
  Addr copyOnWrite(std::uint64_t contentKey, VmId vm) {
    EECC_CHECK_MSG(content_.contains(contentKey),
                   "copy-on-write of a page that was never deduplicated");
    const std::uint64_t key = cowKey(contentKey, vm);
    auto it = cow_.find(key);
    if (it != cow_.end()) return it->second;
    ++physPages_;
    ++cowEvents_;
    const Addr page = static_cast<Addr>(nextPage_++) << kPageOffsetBits;
    cow_.emplace(key, page);
    return page;
  }

  /// The VM's current translation for a deduplicated logical page: the
  /// private copy if it was ever written, otherwise the shared page.
  Addr translate(std::uint64_t contentKey, VmId vm) const {
    auto it = cow_.find(cowKey(contentKey, vm));
    if (it != cow_.end()) return it->second;
    auto c = content_.find(contentKey);
    EECC_CHECK(c != content_.end());
    return c->second;
  }

  std::uint64_t physicalPages() const { return physPages_; }
  std::uint64_t logicalMappings() const { return logicalMappings_; }
  std::uint64_t cowEvents() const { return cowEvents_; }

  /// Fraction of memory saved by deduplication: 1 - physical/logical.
  /// This is the "Memory saved by deduplication" column of Table IV.
  double savedFraction() const {
    if (logicalMappings_ == 0) return 0.0;
    return 1.0 - static_cast<double>(physPages_) /
                     static_cast<double>(logicalMappings_);
  }

 private:
  static std::uint64_t cowKey(std::uint64_t contentKey, VmId vm) {
    return contentKey * 1000003ULL + static_cast<std::uint64_t>(vm) + 1;
  }

  std::uint64_t nextPage_;
  std::uint64_t physPages_ = 0;
  std::uint64_t logicalMappings_ = 0;
  std::uint64_t cowEvents_ = 0;
  std::unordered_map<std::uint64_t, Addr> content_;
  std::unordered_map<std::uint64_t, Addr> cow_;
};

}  // namespace eecc
