// Memory-reference trace capture and replay.
//
// Simulation campaigns often want the exact same reference stream across
// tools or runs (e.g. to hand a stream to another simulator, or to replay
// a workload without its generator). A trace stores, per record, the
// issuing tile, the access type, the compute gap preceding the access and
// the block address, in a simple little-endian binary format:
//
//   header:  "EECCTRC1" (8 bytes), u32 tileCount, u64 recordCount
//   record:  u16 tile, u8 type (0=read 1=write), u8 pad, u32 gapCycles,
//            u64 addr                                     (16 bytes)
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "workload/workload.h"

namespace eecc {

struct TraceRecord {
  NodeId tile = 0;
  AccessType type = AccessType::Read;
  Tick gapCycles = 0;
  Addr addr = 0;
  bool operator==(const TraceRecord&) const = default;
};

/// Draws `opsPerTile` operations per active tile from `workload`
/// (round-robin, matching the interleaving a uniform run would see) into
/// an in-memory trace.
class Trace recordTrace(Workload& workload, const CmpConfig& cfg,
                        std::uint64_t opsPerTile);

/// recordTrace + save to `path`. Returns the number of records written.
std::uint64_t writeTrace(Workload& workload, const CmpConfig& cfg,
                         std::uint64_t opsPerTile, const std::string& path);

/// Replays a recorded trace as a per-tile reference stream. Each tile's
/// stream wraps around when exhausted, so fixed-window measurements can
/// run longer than the recording (document the wrap in results if the
/// trace is short).
class TraceSource final : public OpSource {
 public:
  /// `bounded = true` turns wraparound off: each tile's stream ends after
  /// its last record and the tile reports exhausted(). Bounded replays
  /// execute the trace exactly once, so runs over the same trace complete
  /// the same operations under every protocol (conformance fuzzing).
  explicit TraceSource(const class Trace& trace, bool bounded = false);

  /// Tiles beyond the recorded tile count (replaying a small-chip trace
  /// on a larger chip) are simply inactive.
  bool tileActive(NodeId tile) const override {
    const auto i = static_cast<std::size_t>(tile);
    return i < streams_.size() && !streams_[i].empty();
  }
  MemOp next(NodeId tile) override;
  bool exhausted(NodeId tile) const override {
    const auto i = static_cast<std::size_t>(tile);
    if (i >= streams_.size()) return true;
    return bounded_ && positions_[i] >= streams_[i].size();
  }

  /// How many times any tile's stream has wrapped around.
  std::uint64_t wraparounds() const { return wraparounds_; }

 private:
  std::vector<std::vector<TraceRecord>> streams_;
  std::vector<std::size_t> positions_;
  bool bounded_ = false;
  std::uint64_t wraparounds_ = 0;
};

/// In-memory trace, loadable from the file format above.
class Trace {
 public:
  /// Loads a trace; aborts (EECC_CHECK) on a malformed file.
  static Trace load(const std::string& path);

  const std::vector<TraceRecord>& records() const { return records_; }
  std::uint32_t tileCount() const { return tileCount_; }

  /// Per-tile streams in record order (for replay through a core model).
  std::vector<std::vector<TraceRecord>> splitByTile() const;

  void append(const TraceRecord& r) { records_.push_back(r); }
  void setTileCount(std::uint32_t n) { tileCount_ = n; }
  void save(const std::string& path) const;

 private:
  std::uint32_t tileCount_ = 0;
  std::vector<TraceRecord> records_;
};

/// Result of ingesting an *external* text trace (loadTextTrace): the
/// replayable trace plus the memory image reconstructed from it.
struct TextTraceImage {
  Trace trace;
  /// Page accounting of the reconstruction — physical pages, dedup
  /// sharer sets and copy-on-write events are inspectable exactly as for
  /// a synthetic workload (pages.savedFraction() etc.).
  PageManager pages;
  std::uint32_t processes = 0;    ///< Distinct process ids seen.
  std::uint64_t opLines = 0;      ///< Parsed operation lines.
  std::uint64_t sharedPages = 0;  ///< Virtual pages referenced by >1 process.
};

/// Ingests an external text trace: one `proc op addr` triple per line,
/// where `proc` is a decimal process id (mapped onto tile `proc` and VM
/// `proc`), `op` starts with R/r or W/w, and `addr` is a byte address in
/// hex (0x...), octal (0...) or decimal. Lines may be arbitrarily long.
/// Blank lines and lines starting with '#' are skipped; malformed lines
/// (including negative or overflowing fields) abort (EECC_CHECK) with the
/// offending line number.
///
/// Address mapping rebuilds a consolidated-server memory image from the
/// virtual addresses: each (process, virtual page) gets its own physical
/// page, except that virtual pages referenced by *several* processes are
/// treated as deduplicated content — every process maps the same content
/// key, sharing one physical page until a write triggers copy-on-write
/// onto the writer's private copy (all through the PageManager, so the
/// dedup savings of the trace are reported like any synthetic run's).
/// Records carry a uniform 1-cycle compute gap (external traces have no
/// timing); tileCount is the highest process id + 1.
TextTraceImage loadTextTrace(const std::string& path);

}  // namespace eecc
