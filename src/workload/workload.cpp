#include "workload/workload.h"

#include <cmath>

namespace eecc {

namespace workload_detail {

// FNV-1a over a string plus a slot number — stable content identities for
// deduplicated pages. Shared with the scale-out ServerWorkload so VMs on
// different chips deduplicate against the same content space.
std::uint64_t contentKey(const std::string& group, std::uint64_t slot) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : group) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  h ^= slot;
  h *= 1099511628211ULL;
  return h;
}

// Geometric-ish compute gap with the profile's mean, never negative.
Tick sampleGap(Rng& rng, double mean) {
  const double u = rng.uniform();
  const double g = -mean * std::log(1.0 - u);
  return static_cast<Tick>(g + 0.5);
}

}  // namespace workload_detail

using workload_detail::contentKey;
using workload_detail::sampleGap;

std::uint64_t Workload::dedupPagesFor(const BenchmarkProfile& p,
                                      std::uint32_t numVms) {
  // With v identical VMs, D deduplicated pages per VM and B = non-dedup
  // pages per VM, memory saved = (v-1)*D / (v*(B+D)). Solving for D at the
  // profile's Table IV target:
  const double v = static_cast<double>(numVms);
  const double base = static_cast<double>(16 * p.privatePagesPerThread +
                                          p.vmSharedPages);
  const double s = p.dedupSavedTarget;
  const double denom = (v - 1.0) - s * v;
  EECC_CHECK_MSG(denom > 0, "dedup savings target unreachable");
  return static_cast<std::uint64_t>(s * v * base / denom + 0.5);
}

Workload::Workload(const CmpConfig& cfg, const VmLayout& layout,
                   std::vector<BenchmarkProfile> perVm, std::uint64_t seed,
                   bool dedupEnabled)
    : cfg_(cfg), layout_(layout), dedupEnabled_(dedupEnabled) {
  EECC_CHECK(perVm.size() == layout.numVms);
  threadOfTile_.assign(static_cast<std::size_t>(cfg.tiles()), nullptr);

  for (VmId vm = 0; static_cast<std::size_t>(vm) < perVm.size(); ++vm) {
    auto image = std::make_unique<VmImage>();
    image->profile = perVm[static_cast<std::size_t>(vm)];
    const BenchmarkProfile& p = image->profile;
    const auto vmTiles = layout.tilesOfVm(vm);
    const auto nThreads = static_cast<std::uint32_t>(vmTiles.size());

    // Private pools, one per thread.
    image->privatePages.resize(nThreads);
    for (std::uint32_t t = 0; t < nThreads; ++t)
      for (std::uint64_t i = 0; i < p.privatePagesPerThread; ++i) {
        const Addr page = pages_.allocPrivatePage();
        image->privatePages[t].push_back(page);
        pageVm_.emplace(page, vm);
      }

    // Intra-VM shared pool.
    for (std::uint64_t i = 0; i < p.vmSharedPages; ++i) {
      const Addr page = pages_.allocPrivatePage();
      image->sharedPages.push_back(page);
      pageVm_.emplace(page, vm);
    }

    // Deduplicated pool: D pages sized from the Table IV target assuming
    // 4 identical VMs (the paper's homogeneous configurations). A slice
    // of them is OS content (shared chip-wide), the rest app content
    // (shared by same-benchmark VMs only).
    const std::uint64_t dedup = dedupPagesFor(p, 4);
    const auto osPages =
        static_cast<std::uint64_t>(p.osDedupFraction *
                                   static_cast<double>(dedup));
    for (std::uint64_t i = 0; i < dedup; ++i) {
      const std::uint64_t key = i < osPages
                                    ? contentKey("os", i)
                                    : contentKey(p.name, i - osPages);
      image->dedupKeys.push_back(key);
      const Addr page = dedupEnabled ? pages_.mapContent(key, vm)
                                     : pages_.allocPrivatePage();
      image->dedupView.push_back(page);
      if (dedupEnabled) sharedDedupPages_.insert(page);
      // A deduplicated page has no single owner; a disabled-dedup private
      // copy belongs to this VM outright.
      pageVm_.emplace(page, dedupEnabled ? kVmShared : vm);
    }

    image->privateZipf = std::make_unique<ZipfSampler>(
        std::max<std::uint64_t>(1, p.privatePagesPerThread), p.zipfAlpha);
    image->sharedZipf = std::make_unique<ZipfSampler>(
        std::max<std::uint64_t>(1, p.vmSharedPages), p.zipfAlpha);
    image->dedupZipf = std::make_unique<ZipfSampler>(
        std::max<std::uint64_t>(1, dedup),
        p.dedupZipfAlpha >= 0 ? p.dedupZipfAlpha : p.zipfAlpha);

    // Pin one thread per tile of the VM.
    for (std::uint32_t t = 0; t < nThreads; ++t) {
      auto thread = std::make_unique<Thread>();
      thread->vm = image.get();
      thread->vmId = vm;
      thread->threadIdx = t;
      thread->rng.reseed(seed * 1000003ULL +
                         static_cast<std::uint64_t>(vm) * 131ULL + t);
      thread->recentBlocks.assign(p.reuseWindow, 0);
      if (p.historyReuseProb > 0.0)
        thread->historyBlocks.assign(p.historyWindow, 0);
      threadOfTile_[static_cast<std::size_t>(vmTiles[t])] = thread.get();
      threads_.push_back(std::move(thread));
    }
    vms_.push_back(std::move(image));
  }
}

const BenchmarkProfile& Workload::profileOf(NodeId tile) const {
  const Thread* t = threadOfTile_[static_cast<std::size_t>(tile)];
  EECC_CHECK(t != nullptr);
  return t->vm->profile;
}

Addr Workload::pickBlock(Thread& t, Addr page, bool shared) {
  const Addr block =
      page + (t.rng.below(kPageBytes / kBlockBytes) << kBlockOffsetBits);
  return remember(t, block, shared);
}

Addr Workload::remember(Thread& t, Addr block, bool shared) {
  if (!t.recentBlocks.empty()) {
    t.recentBlocks[t.recentPos] = block;
    t.recentPos = (t.recentPos + 1) %
                  static_cast<std::uint32_t>(t.recentBlocks.size());
  }
  // Only shared/deduplicated blocks enter the long-range history: their
  // re-misses are the ones the L1C$ can predict (retained supplier
  // pointers and invalidation updates both target shared lines).
  if (shared && !t.historyBlocks.empty()) {
    t.historyBlocks[t.historyPos] = block;
    t.historyPos = (t.historyPos + 1) %
                   static_cast<std::uint32_t>(t.historyBlocks.size());
  }
  return block;
}

MemOp Workload::genFresh(Thread& t) {
  VmImage& vm = *t.vm;
  const BenchmarkProfile& p = vm.profile;
  MemOp op;
  op.computeCycles = sampleGap(t.rng, p.meanGapCycles);

  const double u = t.rng.uniform();
  if (u < p.privateAccessFraction || vm.dedupView.empty()) {
    auto& pool = vm.privatePages[t.threadIdx %
                                 static_cast<std::uint32_t>(
                                     vm.privatePages.size())];
    const Addr page = pool[vm.privateZipf->sample(t.rng) % pool.size()];
    op.addr = pickBlock(t, page, false);
    op.type = t.rng.chance(p.privateWriteFraction) ? AccessType::Write
                                                   : AccessType::Read;
  } else if (u < p.privateAccessFraction + p.vmSharedAccessFraction &&
             !vm.sharedPages.empty()) {
    const Addr page =
        vm.sharedPages[vm.sharedZipf->sample(t.rng) % vm.sharedPages.size()];
    op.addr = pickBlock(t, page, true);
    op.type = t.rng.chance(p.sharedWriteFraction) ? AccessType::Write
                                                  : AccessType::Read;
  } else {
    // Deduplicated inter-VM data: read-only in the common case. A write
    // models the guest dirtying a formerly deduplicated page: the
    // hypervisor breaks the sharing (copy-on-write) and the write goes to
    // the VM's fresh private copy — cached copies of the shared original
    // stay valid for the other VMs, so no invalidation storm occurs.
    const std::size_t slot = vm.dedupZipf->sample(t.rng) %
                             vm.dedupView.size();
    if (t.rng.chance(p.dedupWriteFraction)) {
      // With deduplication disabled, the page is already private — the
      // write needs no hypervisor copy.
      const Addr target =
          dedupEnabled_ ? pages_.copyOnWrite(vm.dedupKeys[slot], t.vmId)
                        : vm.dedupView[slot];
      // The fresh COW copy is private to the writing VM (no-op when the
      // copy already existed, or when dedup is off and the page was ours).
      pageVm_.insert_or_assign(target, t.vmId);
      vm.dedupView[slot] = target;
      op.addr = pickBlock(t, target, false);
      op.type = AccessType::Write;
    } else {
      op.addr = pickBlock(t, vm.dedupView[slot], true);
      op.type = AccessType::Read;
    }
  }
  return op;
}

MemOp Workload::next(NodeId tile) {
  Thread* t = threadOfTile_[static_cast<std::size_t>(tile)];
  EECC_CHECK_MSG(t != nullptr, "no thread pinned to this tile");
  const BenchmarkProfile& p = t->vm->profile;

  // Long-range re-reference: re-touch a block from the access history
  // (usually evicted from the L1 by now, but still predictable through
  // the L1C$). Reads only — writes to shared pages must go through the
  // fresh path's pool logic.
  if (!t->historyBlocks.empty() && t->rng.chance(p.historyReuseProb)) {
    const Addr block = t->historyBlocks[t->rng.below(t->historyBlocks.size())];
    if (block != 0) {
      MemOp op;
      op.computeCycles = sampleGap(t->rng, p.meanGapCycles);
      op.addr = remember(*t, block, true);
      op.type = AccessType::Read;
      return op;
    }
  }
  // Temporal reuse: with probability blockReuseProb, re-touch one of the
  // recently accessed blocks instead of generating a fresh reference.
  if (!t->recentBlocks.empty() && t->recentBlocks[0] != 0 &&
      t->rng.chance(p.blockReuseProb)) {
    MemOp op;
    op.computeCycles = sampleGap(t->rng, p.meanGapCycles);
    const Addr block =
        t->recentBlocks[t->rng.below(t->recentBlocks.size())];
    if (block != 0) {
      op.addr = block;
      // Reused blocks keep the pool's dominant read bias; writes to
      // dedup pages are only generated on the fresh path (COW handling).
      op.type = t->rng.chance(0.2 * p.privateWriteFraction)
                    ? AccessType::Write
                    : AccessType::Read;
      // Never write a shared deduplicated page directly — real hardware
      // would trap into the hypervisor first (COW handled on fresh path).
      if (op.type == AccessType::Write &&
          sharedDedupPages_.contains(pageAddr(block)))
        op.type = AccessType::Read;
      return op;
    }
  }
  return genFresh(*t);
}

}  // namespace eecc
