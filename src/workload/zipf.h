// Zipf-distributed sampling of page indices — the standard model for
// page-popularity skew in server workloads. Precomputes the CDF once and
// samples by binary search, so sampling is O(log n) and allocation-free.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace eecc {

class ZipfSampler {
 public:
  /// Ranks 0..n-1 with P(rank k) proportional to 1/(k+1)^alpha.
  ZipfSampler(std::size_t n, double alpha) : cdf_(n) {
    EECC_CHECK(n >= 1);
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      total += 1.0 / std::pow(static_cast<double>(k + 1), alpha);
      cdf_[k] = total;
    }
    for (auto& c : cdf_) c /= total;
  }

  std::size_t size() const { return cdf_.size(); }

  std::size_t sample(Rng& rng) const {
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace eecc
