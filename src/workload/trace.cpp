#include "workload/trace.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace eecc {

namespace {

constexpr char kMagic[8] = {'E', 'E', 'C', 'C', 'T', 'R', 'C', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void put(std::FILE* f, const void* data, std::size_t n) {
  EECC_CHECK_MSG(std::fwrite(data, 1, n, f) == n, "trace write failed");
}
void get(std::FILE* f, void* data, std::size_t n) {
  EECC_CHECK_MSG(std::fread(data, 1, n, f) == n, "trace read failed");
}

void putRecord(std::FILE* f, const TraceRecord& r) {
  const std::uint16_t tile = static_cast<std::uint16_t>(r.tile);
  const std::uint8_t type = r.type == AccessType::Write ? 1 : 0;
  const std::uint8_t pad = 0;
  const std::uint32_t gap = static_cast<std::uint32_t>(r.gapCycles);
  put(f, &tile, sizeof tile);
  put(f, &type, sizeof type);
  put(f, &pad, sizeof pad);
  put(f, &gap, sizeof gap);
  put(f, &r.addr, sizeof r.addr);
}

TraceRecord getRecord(std::FILE* f) {
  std::uint16_t tile = 0;
  std::uint8_t type = 0;
  std::uint8_t pad = 0;
  std::uint32_t gap = 0;
  Addr addr = 0;
  get(f, &tile, sizeof tile);
  get(f, &type, sizeof type);
  get(f, &pad, sizeof pad);
  get(f, &gap, sizeof gap);
  get(f, &addr, sizeof addr);
  TraceRecord r;
  r.tile = static_cast<NodeId>(tile);
  r.type = type != 0 ? AccessType::Write : AccessType::Read;
  r.gapCycles = gap;
  r.addr = addr;
  return r;
}

}  // namespace

Trace recordTrace(Workload& workload, const CmpConfig& cfg,
                  std::uint64_t opsPerTile) {
  Trace trace;
  trace.setTileCount(static_cast<std::uint32_t>(cfg.tiles()));
  for (std::uint64_t i = 0; i < opsPerTile; ++i) {
    for (NodeId t = 0; t < cfg.tiles(); ++t) {
      if (!workload.tileActive(t)) continue;
      const MemOp op = workload.next(t);
      trace.append({t, op.type, op.computeCycles, op.addr});
    }
  }
  return trace;
}

std::uint64_t writeTrace(Workload& workload, const CmpConfig& cfg,
                         std::uint64_t opsPerTile, const std::string& path) {
  const Trace trace = recordTrace(workload, cfg, opsPerTile);
  trace.save(path);
  return trace.records().size();
}

void Trace::save(const std::string& path) const {
  File f(std::fopen(path.c_str(), "wb"));
  EECC_CHECK_MSG(f != nullptr, "cannot open trace file for writing");
  put(f.get(), kMagic, sizeof kMagic);
  put(f.get(), &tileCount_, sizeof tileCount_);
  const std::uint64_t count = records_.size();
  put(f.get(), &count, sizeof count);
  for (const TraceRecord& r : records_) putRecord(f.get(), r);
}

Trace Trace::load(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  EECC_CHECK_MSG(f != nullptr, "cannot open trace file for reading");
  char magic[8];
  get(f.get(), magic, sizeof magic);
  EECC_CHECK_MSG(std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                 "not an EECC trace file");
  Trace trace;
  get(f.get(), &trace.tileCount_, sizeof trace.tileCount_);
  std::uint64_t count = 0;
  get(f.get(), &count, sizeof count);
  trace.records_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i)
    trace.records_.push_back(getRecord(f.get()));
  return trace;
}

TraceSource::TraceSource(const Trace& trace, bool bounded)
    : streams_(trace.splitByTile()),
      positions_(streams_.size(), 0),
      bounded_(bounded) {}

MemOp TraceSource::next(NodeId tile) {
  EECC_CHECK_MSG(static_cast<std::size_t>(tile) < streams_.size(),
                 "next() on a tile beyond the recorded tile count");
  auto& stream = streams_[static_cast<std::size_t>(tile)];
  EECC_CHECK_MSG(!stream.empty(), "next() on an inactive tile");
  auto& pos = positions_[static_cast<std::size_t>(tile)];
  EECC_CHECK_MSG(pos < stream.size(), "next() past a bounded stream's end");
  const TraceRecord& r = stream[pos];
  pos += 1;
  if (pos == stream.size() && !bounded_) {
    pos = 0;
    ++wraparounds_;
  }
  MemOp op;
  op.computeCycles = r.gapCycles;
  op.addr = r.addr;
  op.type = r.type;
  return op;
}

namespace {

struct TextOp {
  std::uint32_t proc = 0;
  bool write = false;
  Addr addr = 0;
};

/// Abort-message prefix for a malformed line (built only on failure).
std::string traceLineError(std::uint64_t lineNo, const char* what) {
  return "text trace line " + std::to_string(lineNo) + ": " + what;
}

/// Checked unsigned field parse, consistent with tools/cli_parse.h:
/// rejects a leading `-` (std::strtoull would silently wrap -1 to
/// 0xFFFF…) and ERANGE overflow, with a line-numbered error.
unsigned long long parseTraceU64(const char** pp, int base,
                                 std::uint64_t lineNo, const char* field) {
  const char* p = *pp;
  EECC_CHECK_MSG(*p != '-',
                 (traceLineError(lineNo, field) + " must not be negative")
                     .c_str());
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(p, &end, base);
  EECC_CHECK_MSG(end != p,
                 (traceLineError(lineNo, "bad ") + field).c_str());
  EECC_CHECK_MSG(errno != ERANGE,
                 (traceLineError(lineNo, field) + " out of range").c_str());
  *pp = end;
  return v;
}

/// Parses one `proc op addr` line; returns false for blank/comment lines.
bool parseTextLine(const char* line, std::uint64_t lineNo, TextOp* out) {
  const char* p = line;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p == '\0' || *p == '\n' || *p == '\r' || *p == '#') return false;

  const unsigned long long proc =
      parseTraceU64(&p, 10, lineNo, "process id");
  EECC_CHECK_MSG(
      proc < 65536,
      (traceLineError(lineNo, "process id exceeds 16-bit tiles")).c_str());
  while (*p == ' ' || *p == '\t') ++p;

  const char op = *p;
  EECC_CHECK_MSG(
      op == 'R' || op == 'r' || op == 'W' || op == 'w',
      (traceLineError(lineNo, "op must start with R or W")).c_str());
  while (*p != '\0' && *p != ' ' && *p != '\t') ++p;
  while (*p == ' ' || *p == '\t') ++p;

  const unsigned long long addr = parseTraceU64(&p, 0, lineNo, "address");

  out->proc = static_cast<std::uint32_t>(proc);
  out->write = op == 'W' || op == 'w';
  out->addr = static_cast<Addr>(addr);
  return true;
}

/// Reads one full line of unbounded length into `*out` (newline kept).
/// Returns false at EOF with nothing read. A fixed fgets buffer would
/// split a >255-byte line and re-parse its tail as a fresh record.
bool readTraceLine(std::FILE* f, std::string* out) {
  out->clear();
  char chunk[256];
  while (std::fgets(chunk, sizeof chunk, f) != nullptr) {
    out->append(chunk);
    if (!out->empty() && out->back() == '\n') return true;
  }
  return !out->empty();
}

}  // namespace

TextTraceImage loadTextTrace(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  EECC_CHECK_MSG(f != nullptr, "cannot open text trace file for reading");

  // Pass 1: parse every line and find virtual pages touched by more than
  // one process — those are the dedup candidates of the reconstruction.
  std::vector<TextOp> ops;
  // vpage -> (first process, shared-by-several flag)
  std::unordered_map<std::uint64_t, std::pair<std::uint32_t, bool>> vpages;
  std::string line;
  std::uint64_t lineNo = 0;
  std::uint32_t maxProc = 0;
  while (readTraceLine(f.get(), &line)) {
    ++lineNo;
    TextOp op;
    if (!parseTextLine(line.c_str(), lineNo, &op)) continue;
    ops.push_back(op);
    if (op.proc > maxProc) maxProc = op.proc;
    const std::uint64_t vpage = op.addr >> kPageOffsetBits;
    auto [it, fresh] = vpages.try_emplace(vpage, op.proc, false);
    if (!fresh && it->second.first != op.proc) it->second.second = true;
  }

  TextTraceImage image;
  image.opLines = ops.size();
  image.processes = ops.empty() ? 0 : maxProc + 1;
  image.trace.setTileCount(image.processes);
  for (const auto& [vpage, info] : vpages)
    if (info.second) ++image.sharedPages;

  // Pass 2: rebuild the memory image. Shared virtual pages go through the
  // dedup content space (one physical page until a write copies), private
  // ones get a per-(process, vpage) physical page.
  std::unordered_map<std::uint64_t, Addr> privatePage;  // (vm,vpage) -> page
  std::unordered_map<std::uint64_t, bool> mapped;       // (vm,vpage) mapped?
  const auto vmPageKey = [](std::uint32_t proc, std::uint64_t vpage) {
    return vpage * 1000003ULL + proc + 1;
  };
  for (const TextOp& op : ops) {
    const std::uint64_t vpage = op.addr >> kPageOffsetBits;
    const Addr offset = op.addr & (kPageBytes - 1);
    const VmId vm = static_cast<VmId>(op.proc);
    Addr phys = 0;
    if (vpages.at(vpage).second) {
      const std::uint64_t key = workload_detail::contentKey("trace", vpage);
      auto [it, fresh] = mapped.try_emplace(vmPageKey(op.proc, vpage), true);
      (void)it;
      if (fresh) image.pages.mapContent(key, vm);
      phys = op.write ? image.pages.copyOnWrite(key, vm)
                      : image.pages.translate(key, vm);
    } else {
      auto [it, fresh] = privatePage.try_emplace(vmPageKey(op.proc, vpage), 0);
      if (fresh) it->second = image.pages.allocPrivatePage();
      phys = it->second;
    }
    image.trace.append({static_cast<NodeId>(op.proc),
                        op.write ? AccessType::Write : AccessType::Read,
                        /*gapCycles=*/1, phys | offset});
  }
  return image;
}

std::vector<std::vector<TraceRecord>> Trace::splitByTile() const {
  std::vector<std::vector<TraceRecord>> out(tileCount_);
  for (const TraceRecord& r : records_) {
    EECC_CHECK(static_cast<std::uint32_t>(r.tile) < tileCount_);
    out[static_cast<std::size_t>(r.tile)].push_back(r);
  }
  return out;
}

}  // namespace eecc
