#include "workload/trace.h"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/check.h"

namespace eecc {

namespace {

constexpr char kMagic[8] = {'E', 'E', 'C', 'C', 'T', 'R', 'C', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using File = std::unique_ptr<std::FILE, FileCloser>;

void put(std::FILE* f, const void* data, std::size_t n) {
  EECC_CHECK_MSG(std::fwrite(data, 1, n, f) == n, "trace write failed");
}
void get(std::FILE* f, void* data, std::size_t n) {
  EECC_CHECK_MSG(std::fread(data, 1, n, f) == n, "trace read failed");
}

void putRecord(std::FILE* f, const TraceRecord& r) {
  const std::uint16_t tile = static_cast<std::uint16_t>(r.tile);
  const std::uint8_t type = r.type == AccessType::Write ? 1 : 0;
  const std::uint8_t pad = 0;
  const std::uint32_t gap = static_cast<std::uint32_t>(r.gapCycles);
  put(f, &tile, sizeof tile);
  put(f, &type, sizeof type);
  put(f, &pad, sizeof pad);
  put(f, &gap, sizeof gap);
  put(f, &r.addr, sizeof r.addr);
}

TraceRecord getRecord(std::FILE* f) {
  std::uint16_t tile = 0;
  std::uint8_t type = 0;
  std::uint8_t pad = 0;
  std::uint32_t gap = 0;
  Addr addr = 0;
  get(f, &tile, sizeof tile);
  get(f, &type, sizeof type);
  get(f, &pad, sizeof pad);
  get(f, &gap, sizeof gap);
  get(f, &addr, sizeof addr);
  TraceRecord r;
  r.tile = static_cast<NodeId>(tile);
  r.type = type != 0 ? AccessType::Write : AccessType::Read;
  r.gapCycles = gap;
  r.addr = addr;
  return r;
}

}  // namespace

Trace recordTrace(Workload& workload, const CmpConfig& cfg,
                  std::uint64_t opsPerTile) {
  Trace trace;
  trace.setTileCount(static_cast<std::uint32_t>(cfg.tiles()));
  for (std::uint64_t i = 0; i < opsPerTile; ++i) {
    for (NodeId t = 0; t < cfg.tiles(); ++t) {
      if (!workload.tileActive(t)) continue;
      const MemOp op = workload.next(t);
      trace.append({t, op.type, op.computeCycles, op.addr});
    }
  }
  return trace;
}

std::uint64_t writeTrace(Workload& workload, const CmpConfig& cfg,
                         std::uint64_t opsPerTile, const std::string& path) {
  const Trace trace = recordTrace(workload, cfg, opsPerTile);
  trace.save(path);
  return trace.records().size();
}

void Trace::save(const std::string& path) const {
  File f(std::fopen(path.c_str(), "wb"));
  EECC_CHECK_MSG(f != nullptr, "cannot open trace file for writing");
  put(f.get(), kMagic, sizeof kMagic);
  put(f.get(), &tileCount_, sizeof tileCount_);
  const std::uint64_t count = records_.size();
  put(f.get(), &count, sizeof count);
  for (const TraceRecord& r : records_) putRecord(f.get(), r);
}

Trace Trace::load(const std::string& path) {
  File f(std::fopen(path.c_str(), "rb"));
  EECC_CHECK_MSG(f != nullptr, "cannot open trace file for reading");
  char magic[8];
  get(f.get(), magic, sizeof magic);
  EECC_CHECK_MSG(std::memcmp(magic, kMagic, sizeof kMagic) == 0,
                 "not an EECC trace file");
  Trace trace;
  get(f.get(), &trace.tileCount_, sizeof trace.tileCount_);
  std::uint64_t count = 0;
  get(f.get(), &count, sizeof count);
  trace.records_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i)
    trace.records_.push_back(getRecord(f.get()));
  return trace;
}

TraceSource::TraceSource(const Trace& trace, bool bounded)
    : streams_(trace.splitByTile()),
      positions_(streams_.size(), 0),
      bounded_(bounded) {}

MemOp TraceSource::next(NodeId tile) {
  EECC_CHECK_MSG(static_cast<std::size_t>(tile) < streams_.size(),
                 "next() on a tile beyond the recorded tile count");
  auto& stream = streams_[static_cast<std::size_t>(tile)];
  EECC_CHECK_MSG(!stream.empty(), "next() on an inactive tile");
  auto& pos = positions_[static_cast<std::size_t>(tile)];
  EECC_CHECK_MSG(pos < stream.size(), "next() past a bounded stream's end");
  const TraceRecord& r = stream[pos];
  pos += 1;
  if (pos == stream.size() && !bounded_) {
    pos = 0;
    ++wraparounds_;
  }
  MemOp op;
  op.computeCycles = r.gapCycles;
  op.addr = r.addr;
  op.type = r.type;
  return op;
}

std::vector<std::vector<TraceRecord>> Trace::splitByTile() const {
  std::vector<std::vector<TraceRecord>> out(tileCount_);
  for (const TraceRecord& r : records_) {
    EECC_CHECK(static_cast<std::uint32_t>(r.tile) < tileCount_);
    out[static_cast<std::size_t>(r.tile)].push_back(r);
  }
  return out;
}

}  // namespace eecc
