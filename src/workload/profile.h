// Synthetic benchmark profiles standing in for the paper's full-system
// workloads (Table IV): Apache, SPECjbb, and the SPLASH/SPEC scientific
// codes radix, lu, volrend and tomcatv, each run as 4 VMs x 16 cores.
//
// We cannot boot Solaris inside this reproduction, so each workload is a
// parameterized reference-stream generator exposing exactly the traits the
// paper's results hinge on:
//   * working-set size vs. L1/L2 capacity — separates the paper's
//     "L1-power-dominated" (tomcatv, lu, radix, volrend) from
//     "L2-power-dominated" (apache, jbb) workloads;
//   * the fraction of accesses to deduplicated inter-VM read-only pages
//     (sized from Table IV's memory savings);
//   * intra-VM read/write sharing;
//   * temporal locality (page popularity skew + block reuse).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace eecc {

struct BenchmarkProfile {
  std::string name;

  // --- Issue behaviour ---
  /// Mean compute cycles between two memory operations of one core
  /// (2-way in-order core; memory ops are roughly 1/3 of instructions).
  double meanGapCycles = 2.0;
  /// Memory operations per "transaction" for throughput-metric workloads.
  std::uint64_t opsPerTransaction = 2000;
  /// True for commercial workloads measured in transactions / 500M cycles
  /// (apache, jbb); false for scientific ones measured in execution time.
  bool commercial = false;

  // --- Footprint (pages of 4 KB) ---
  std::uint64_t privatePagesPerThread = 16;
  std::uint64_t vmSharedPages = 32;      ///< Intra-VM shared, read-write.
  /// Target "memory saved by deduplication" when 4 VMs of this benchmark
  /// run together (Table IV). The number of deduplicated pages per VM is
  /// derived from it in WorkloadSpec::build.
  double dedupSavedTarget = 0.20;

  // --- Access mix ---
  double privateAccessFraction = 0.55;
  double vmSharedAccessFraction = 0.30;  ///< Remainder goes to dedup pages.
  double privateWriteFraction = 0.30;
  double sharedWriteFraction = 0.12;
  /// Probability that an access to a deduplicated page is a write
  /// (triggers hypervisor copy-on-write; should be tiny, Section I).
  double dedupWriteFraction = 0.0;
  /// Fraction of this benchmark's deduplicated pages that are OS/common
  /// pages (identical across *all* VMs); the rest are application pages
  /// (identical only across VMs running the same benchmark). Scientific
  /// codes have small footprints, so most of their Table IV savings come
  /// from the guest OS; commercial images dedup mostly on app content.
  double osDedupFraction = 0.49;

  // --- Locality ---
  double zipfAlpha = 0.9;       ///< Page popularity skew within each pool.
  /// Dedup pages get their own skew (shared libraries/JVM text are very
  /// hot even when the heap's popularity is flat). <0 means "use
  /// zipfAlpha".
  double dedupZipfAlpha = -1.0;
  double blockReuseProb = 0.6;  ///< Re-touch one of the recent blocks.
  std::uint32_t reuseWindow = 48;
  /// Probability of re-touching a block from the longer access history —
  /// typically evicted from the L1 already but still covered by the
  /// L1C$'s retained supplier pointers (the re-reference behaviour behind
  /// DiCo's prediction accuracy).
  double historyReuseProb = 0.0;
  std::uint32_t historyWindow = 16384;

  double dedupAccessFraction() const {
    return 1.0 - privateAccessFraction - vmSharedAccessFraction;
  }
};

/// The eight workload configurations of Table IV.
namespace profiles {
BenchmarkProfile apache();
BenchmarkProfile jbb();
BenchmarkProfile radix();
BenchmarkProfile lu();
BenchmarkProfile volrend();
BenchmarkProfile tomcatv();

/// Per-VM profile lists for the 4-VM configurations.
std::vector<BenchmarkProfile> uniform4(const BenchmarkProfile& p);
std::vector<BenchmarkProfile> mixedCom();  ///< 2x apache + 2x jbb.
std::vector<BenchmarkProfile> mixedSci();  ///< radix + lu + volrend + tomcatv.

/// Profile by Table IV workload name ("apache4x16p", "mixed-sci", ...).
std::vector<BenchmarkProfile> byWorkloadName(const std::string& name);
/// All Table IV workload names in the paper's order.
std::vector<std::string> allWorkloadNames();
}  // namespace profiles

}  // namespace eecc
