#include "workload/profile.h"

#include "common/check.h"

namespace eecc::profiles {

// Calibration notes. L1 = 128 KB = 32 pages per tile; one L2 bank = 1 MB =
// 256 pages; whole-chip L2 = 64 MB = 16384 pages. A 16-thread VM therefore
// stays L1-resident when its per-thread hot set is well under ~32 pages and
// thrashes the L2 when its VM footprint approaches ~4096 pages (a quarter
// of the shared L2, with 4 VMs).

BenchmarkProfile apache() {
  BenchmarkProfile p;
  p.name = "apache";
  p.commercial = true;
  p.meanGapCycles = 2.0;
  p.opsPerTransaction = 2000;   // one static-content HTTP transaction
  // Hot page-cache/docroot pages stay L1-resident between the frequent
  // metadata/content updates that invalidate them, so the miss stream is
  // dominated by coherence misses: re-reads of freshly written shared
  // blocks, which the L1C$ predicts from the invalidations themselves
  // (Fig. 5) — the behaviour behind DiCo's high prediction accuracy.
  p.privatePagesPerThread = 16;
  p.vmSharedPages = 192;
  p.dedupSavedTarget = 0.2172;  // Table IV
  p.privateAccessFraction = 0.40;
  p.vmSharedAccessFraction = 0.38;
  p.privateWriteFraction = 0.30;
  p.sharedWriteFraction = 0.12;  // connection tables / cache metadata
  p.dedupWriteFraction = 0.0002;
  p.osDedupFraction = 0.05;
  p.zipfAlpha = 1.1;
  p.blockReuseProb = 0.50;
  p.reuseWindow = 64;
  p.historyReuseProb = 0.30;
  p.historyWindow = 8192;
  return p;
}

BenchmarkProfile jbb() {
  BenchmarkProfile p;
  p.name = "jbb";
  p.commercial = true;
  p.meanGapCycles = 2.0;
  p.opsPerTransaction = 2500;
  p.privatePagesPerThread = 96;  // per-warehouse heap slices
  p.vmSharedPages = 4096;        // 16 MB shared heap -> L2 thrashing
  p.dedupSavedTarget = 0.2388;   // Table IV
  p.privateAccessFraction = 0.34;
  p.vmSharedAccessFraction = 0.48;
  p.privateWriteFraction = 0.32;
  p.sharedWriteFraction = 0.18;
  p.dedupWriteFraction = 0.0002;
  p.osDedupFraction = 0.05;
  p.zipfAlpha = 0.55;            // flat popularity -> poor L2 locality
  p.dedupZipfAlpha = 1.3;        // ...but the JVM/jar pages are hot
  p.blockReuseProb = 0.80;
  p.reuseWindow = 64;
  return p;
}

BenchmarkProfile radix() {
  BenchmarkProfile p;
  p.name = "radix";
  p.meanGapCycles = 2.5;
  p.privatePagesPerThread = 20;  // per-thread key partitions
  p.vmSharedPages = 24;          // global histograms / rank arrays
  p.dedupSavedTarget = 0.2418;   // Table IV
  p.privateAccessFraction = 0.72;
  p.vmSharedAccessFraction = 0.18;
  p.privateWriteFraction = 0.45; // permutation writes
  p.sharedWriteFraction = 0.20;
  p.zipfAlpha = 1.0;
  p.blockReuseProb = 0.94;
  return p;
}

BenchmarkProfile lu() {
  BenchmarkProfile p;
  p.name = "lu";
  p.meanGapCycles = 3.0;         // dense FP kernels between loads
  p.privatePagesPerThread = 12;
  p.vmSharedPages = 64;          // the 512x512 matrix blocks
  p.dedupSavedTarget = 0.3271;   // Table IV
  p.privateAccessFraction = 0.55;
  p.vmSharedAccessFraction = 0.35;
  p.privateWriteFraction = 0.35;
  p.sharedWriteFraction = 0.25;  // pivot row/column updates
  p.zipfAlpha = 1.1;
  p.blockReuseProb = 0.95;
  return p;
}

BenchmarkProfile volrend() {
  BenchmarkProfile p;
  p.name = "volrend";
  p.meanGapCycles = 2.5;
  p.privatePagesPerThread = 10;  // per-ray scratch
  p.vmSharedPages = 48;          // the volume data set, read-mostly
  p.dedupSavedTarget = 0.30;     // Table IV leaves this cell blank
  p.privateAccessFraction = 0.48;
  p.vmSharedAccessFraction = 0.42;
  p.privateWriteFraction = 0.25;
  p.sharedWriteFraction = 0.04;  // image buffer only
  p.zipfAlpha = 1.05;
  p.blockReuseProb = 0.95;
  return p;
}

BenchmarkProfile tomcatv() {
  BenchmarkProfile p;
  p.name = "tomcatv";
  p.meanGapCycles = 3.0;
  p.privatePagesPerThread = 14;  // mesh row bands, 256x256 grid
  p.vmSharedPages = 20;
  p.dedupSavedTarget = 0.3682;   // Table IV
  p.privateAccessFraction = 0.70;
  p.vmSharedAccessFraction = 0.22;
  p.privateWriteFraction = 0.40;
  p.sharedWriteFraction = 0.10;
  p.zipfAlpha = 1.1;
  p.blockReuseProb = 0.95;
  return p;
}

std::vector<BenchmarkProfile> uniform4(const BenchmarkProfile& p) {
  return {p, p, p, p};
}

std::vector<BenchmarkProfile> mixedCom() {
  return {apache(), apache(), jbb(), jbb()};
}

std::vector<BenchmarkProfile> mixedSci() {
  return {radix(), lu(), volrend(), tomcatv()};
}

std::vector<BenchmarkProfile> byWorkloadName(const std::string& name) {
  if (name == "apache4x16p") return uniform4(apache());
  if (name == "jbb4x16p") return uniform4(jbb());
  if (name == "radix4x16p") return uniform4(radix());
  if (name == "lu4x16p") return uniform4(lu());
  if (name == "volrend4x16p") return uniform4(volrend());
  if (name == "tomcatv4x16p") return uniform4(tomcatv());
  if (name == "mixed-com") return mixedCom();
  if (name == "mixed-sci") return mixedSci();
  EECC_CHECK_MSG(false, "unknown workload name");
  return {};
}

std::vector<std::string> allWorkloadNames() {
  return {"apache4x16p", "jbb4x16p",     "radix4x16p", "lu4x16p",
          "volrend4x16p", "tomcatv4x16p", "mixed-com",  "mixed-sci"};
}

}  // namespace eecc::profiles
