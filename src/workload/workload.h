// Builds the physical-memory image of a consolidated server (per-thread
// private pools, per-VM shared pools, deduplicated inter-VM pools) and
// generates per-tile memory reference streams from it.
//
// Deduplicated content comes in two flavours with distinct content keys:
// OS/common pages (identical across *all* VMs — same guest OS) and
// application pages (identical across VMs running the *same* benchmark).
// This split is what makes the mixed workloads of Table IV save less
// memory than the homogeneous ones, exactly as the paper reports.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "core/config.h"
#include "vm/page_manager.h"
#include "workload/profile.h"
#include "workload/zipf.h"

namespace eecc {

namespace workload_detail {
/// FNV-1a content identity of a deduplicated page ("os" pages are shared
/// by every VM, benchmark-named pages by same-benchmark VMs). One content
/// space for the single-chip Workload and the scale-out ServerWorkload.
std::uint64_t contentKey(const std::string& group, std::uint64_t slot);
/// Geometric-ish compute gap with the profile's mean, never negative.
Tick sampleGap(Rng& rng, double mean);
}  // namespace workload_detail

/// One operation of a core's stream: `computeCycles` of non-memory work
/// followed by one memory access.
struct MemOp {
  Tick computeCycles = 0;
  Addr addr = 0;
  AccessType type = AccessType::Read;
};

/// Anything that can feed per-tile reference streams to the core model:
/// the synthetic Workload generator, or a recorded TraceSource.
class OpSource {
 public:
  virtual ~OpSource() = default;
  virtual bool tileActive(NodeId tile) const = 0;
  virtual MemOp next(NodeId tile) = 0;
  /// True once `tile` has no further operations (bounded sources only;
  /// generators and wrapping replays never exhaust). A core whose source
  /// is exhausted stops issuing, which lets bounded runs terminate with
  /// every tile having executed its exact stream — the property the
  /// conformance fuzzer's cross-protocol comparison relies on.
  virtual bool exhausted(NodeId /*tile*/) const { return false; }
};

class Workload : public OpSource {
 public:
  /// `perVm[i]` is the benchmark VM i runs; threads are pinned one per
  /// tile according to `layout`.
  /// `dedupEnabled = false` disables hypervisor page sharing: every VM
  /// gets private copies of its "deduplicated" pages (the ablation of the
  /// paper's Section I claim via [6]).
  Workload(const CmpConfig& cfg, const VmLayout& layout,
           std::vector<BenchmarkProfile> perVm, std::uint64_t seed = 1,
           bool dedupEnabled = true);

  /// Whether `tile` runs a thread at all.
  bool tileActive(NodeId tile) const override {
    return threadOfTile_[static_cast<std::size_t>(tile)] != nullptr;
  }

  /// Next operation of the thread pinned to `tile`.
  MemOp next(NodeId tile) override;

  const BenchmarkProfile& profileOf(NodeId tile) const;
  const VmLayout& layout() const { return layout_; }
  const PageManager& pages() const { return pages_; }

  /// Owning VM of a physical page: the VM whose pool it belongs to,
  /// kVmShared for hypervisor-deduplicated pages (no single owner), or
  /// kInvalidVm for addresses outside any pool. Copy-on-write copies are
  /// owned by the writing VM from the moment the hypervisor creates them.
  /// Backs the attribution ledger's occupancy sampling.
  VmId vmOfPage(Addr page) const {
    auto it = pageVm_.find(pageAddr(page));
    return it == pageVm_.end() ? kInvalidVm : it->second;
  }

  /// Derives the number of deduplicated pages per VM needed to hit the
  /// profile's Table IV memory-savings target when `numVms` identical VMs
  /// share them. Exposed for tests.
  static std::uint64_t dedupPagesFor(const BenchmarkProfile& p,
                                     std::uint32_t numVms);

 private:
  struct VmImage {
    BenchmarkProfile profile;
    std::vector<std::vector<Addr>> privatePages;  // [thread][page]
    std::vector<Addr> sharedPages;
    // Deduplicated logical slots: content key + current translation for
    // this VM (changes after copy-on-write).
    std::vector<std::uint64_t> dedupKeys;
    std::vector<Addr> dedupView;
    std::unique_ptr<ZipfSampler> privateZipf;
    std::unique_ptr<ZipfSampler> sharedZipf;
    std::unique_ptr<ZipfSampler> dedupZipf;
  };

  struct Thread {
    VmImage* vm = nullptr;
    VmId vmId = -1;
    std::uint32_t threadIdx = 0;
    Rng rng;
    std::vector<Addr> recentBlocks;   // short reuse ring (L1-resident)
    std::uint32_t recentPos = 0;
    std::vector<Addr> historyBlocks;  // long ring (L1C$-covered re-misses)
    std::uint32_t historyPos = 0;
  };

  Addr pickBlock(Thread& t, Addr page, bool shared);
  Addr remember(Thread& t, Addr block, bool shared);
  MemOp genFresh(Thread& t);

  CmpConfig cfg_;
  VmLayout layout_;
  PageManager pages_;
  bool dedupEnabled_ = true;
  std::unordered_set<Addr> sharedDedupPages_;
  std::unordered_map<Addr, VmId> pageVm_;  ///< page address -> owner.
  std::vector<std::unique_ptr<VmImage>> vms_;
  std::vector<std::unique_ptr<Thread>> threads_;
  std::vector<Thread*> threadOfTile_;
};

}  // namespace eecc
