#include "protocols/adapt.h"
#include "protocols/dico.h"
#include "protocols/dico_arin.h"
#include "protocols/dico_providers.h"
#include "protocols/directory.h"
#include "protocols/dragon.h"
#include "protocols/mesi.h"
#include "protocols/moesi.h"
#include "protocols/protocol.h"

namespace eecc {

std::unique_ptr<Protocol> makeProtocol(ProtocolKind kind, EventQueue& events,
                                       Network& net, const CmpConfig& cfg) {
  switch (kind) {
    case ProtocolKind::Directory:
      return std::make_unique<DirectoryProtocol>(events, net, cfg);
    case ProtocolKind::DiCo:
      return std::make_unique<DiCoProtocol>(events, net, cfg);
    case ProtocolKind::DiCoProviders:
      return std::make_unique<DiCoProvidersProtocol>(events, net, cfg);
    case ProtocolKind::DiCoArin:
      return std::make_unique<DiCoArinProtocol>(events, net, cfg);
    case ProtocolKind::Mesi:
      return std::make_unique<MesiProtocol>(events, net, cfg);
    case ProtocolKind::Moesi:
      return std::make_unique<MoesiProtocol>(events, net, cfg);
    case ProtocolKind::Dragon:
      return std::make_unique<DragonProtocol>(events, net, cfg);
    case ProtocolKind::Adapt:
      return std::make_unique<AdaptProtocol>(events, net, cfg);
  }
  EECC_CHECK_MSG(false, "unknown protocol kind");
  return nullptr;
}

}  // namespace eecc
