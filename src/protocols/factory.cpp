#include "protocols/dico.h"
#include "protocols/dico_arin.h"
#include "protocols/dico_providers.h"
#include "protocols/directory.h"
#include "protocols/mesi.h"
#include "protocols/protocol.h"

namespace eecc {

std::unique_ptr<Protocol> makeProtocol(ProtocolKind kind, EventQueue& events,
                                       Network& net, const CmpConfig& cfg) {
  switch (kind) {
    case ProtocolKind::Directory:
      return std::make_unique<DirectoryProtocol>(events, net, cfg);
    case ProtocolKind::DiCo:
      return std::make_unique<DiCoProtocol>(events, net, cfg);
    case ProtocolKind::DiCoProviders:
      return std::make_unique<DiCoProvidersProtocol>(events, net, cfg);
    case ProtocolKind::DiCoArin:
      return std::make_unique<DiCoArinProtocol>(events, net, cfg);
    case ProtocolKind::Mesi:
      return std::make_unique<MesiProtocol>(events, net, cfg);
  }
  EECC_CHECK_MSG(false, "unknown protocol kind");
  return nullptr;
}

}  // namespace eecc
