// DiCo-Providers (Section III-A / IV-A).
//
// The chip is statically divided into areas. Coherence information is kept
// per area: the owner L1 tracks the sharers of *its* area (full map of nta
// bits) plus one provider pointer (ProPo) per remote area; each provider
// tracks the sharers of its own area. A read from a remote area is served
// by (or creates) a provider in the requestor's area, so misses to data
// shared between areas — deduplicated pages — resolve inside the area
// ("shortened misses") while a single copy stays in the shared L2.
// The owner remains the only ordering point (one-level protocol).
#pragma once

#include <array>
#include <unordered_map>

#include "cache/cache_array.h"
#include "common/bits.h"
#include "cache/coherence_cache.h"
#include "cache/node_set.h"
#include "protocols/protocol.h"
#include "protocols/table_engine.h"

namespace eecc {

class DiCoProvidersProtocol final : public Protocol {
 public:
  /// Simulation supports up to this many areas (analytic storage results
  /// for larger splits come from energy/storage_model.h).
  static constexpr std::uint32_t kMaxAreas = 16;

  DiCoProvidersProtocol(EventQueue& events, Network& net,
                        const CmpConfig& cfg);

  ProtocolKind kind() const override { return ProtocolKind::DiCoProviders; }
  bool tryHit(NodeId tile, Addr block, AccessType type) override;
  void auditInvariants(const AuditFailFn& fail) const override;
  void forEachL1Copy(
      const std::function<void(const L1CopyView&)>& fn) const override;
  void forEachL2Block(
      const std::function<void(NodeId tile, Addr block)>& fn) const override;

  struct LineView {
    bool valid = false;
    char state = 'I';  // I/S/E/M/O/P
    std::uint64_t value = 0;
    std::int32_t sharerCount = 0;
    std::int32_t providerCount = 0;
  };
  LineView l1Line(NodeId tile, Addr block) const;
  NodeId l2cOwner(Addr block) const;
  /// The provider recorded for (block, area) at the current owner, or
  /// kInvalidNode (test hook).
  NodeId providerOf(Addr block, AreaId area) const;

  /// The MOSI+E+P stable-state table this engine interprets (DESIGN.md
  /// §15); exposed so tests/table_engine_test.cpp can audit it.
  static tbl::ProtocolTable makeStableTable();

 protected:
  void startMiss(NodeId tile, Addr block, AccessType type,
                 DoneFn done) override;
  void onMessage(const Message& msg) override;

 private:
  enum class L1State : std::uint8_t { S, E, M, O, P };

  using ProPoArray = std::array<NodeId, kMaxAreas>;
  static ProPoArray emptyProPos() {
    ProPoArray a;
    a.fill(kInvalidNode);
    return a;
  }

  struct L1Line : CacheLineBase {
    L1State state = L1State::S;
    bool dirty = false;
    std::uint64_t value = 0;
    NodeId supplier = kInvalidNode;  ///< Embedded prediction GenPo.
    NodeSet areaSharers;             ///< Local-area sharing map (owner/provider).
    ProPoArray providers = emptyProPos();  ///< Per-area ProPos (owner only).

    bool isOwner() const {
      return state == L1State::E || state == L1State::M ||
             state == L1State::O;
    }
    bool isSupplier() const { return isOwner() || state == L1State::P; }
  };

  struct L2Line : CacheLineBase {
    bool dirty = false;
    std::uint64_t value = 0;
    ProPoArray providers = emptyProPos();  ///< When the home L2 is owner.
  };

  struct Tile {
    CacheArray<L1Line> l1;
    CoherenceCache l1c;
    explicit Tile(const CmpConfig& c)
        : l1(c.l1.entries, c.l1.assoc), l1c(c.l1cEntries, c.l1cAssoc) {}
  };
  struct Bank {
    CacheArray<L2Line> l2;
    CoherenceCache l2c;
    explicit Bank(const CmpConfig& c)
        : l2(c.l2.entries, c.l2.assoc,
             log2ceil(static_cast<std::uint64_t>(c.tiles()))),
          l2c(c.l2cEntries, c.l2cAssoc,
              log2ceil(static_cast<std::uint64_t>(c.tiles()))) {}
  };

  struct Txn {
    NodeId requestor = kInvalidNode;
    AccessType type = AccessType::Read;
    DoneFn done;
    Tick start = 0;
    std::uint32_t links = 0;
    bool predicted = false;
    bool throughHome = false;
    bool needsData = true;
    // Write invalidation: the two MSHR counters of Section IV-A.
    std::int32_t providerAcks = 0;
    std::int32_t sharerAcks = 0;
    bool ackCountKnown = false;
    bool dataArrived = false;
    bool grantArrived = false;  ///< Grant / ack-count message landed.
    bool coreNotified = false;
    std::uint64_t value = 0;
    NodeId supplier = kInvalidNode;
    MissClass cls = MissClass::UnpredL2;
    // Grant contents.
    bool becomeOwner = false;
    bool becomeProvider = false;
    bool grantDirty = false;
    NodeSet grantSharers;
    ProPoArray grantProviders = emptyProPos();
    // Self-invalidation when the writing requestor was a provider.
    NodeSet selfSharers;
    // Background L2-owner eviction.
    bool background = false;
    std::int32_t bgAcks = 0;
  };

  Tile& tileOf(NodeId t) { return tiles_[static_cast<std::size_t>(t)]; }
  Bank& bankOf(NodeId h) { return banks_[static_cast<std::size_t>(h)]; }
  std::uint32_t areas() const { return cfg_.numAreas; }

  // --- L1 management ---
  void installL1(NodeId tile, Addr block, L1State state, bool dirty,
                 std::uint64_t value, NodeId supplier, const NodeSet& sharers,
                 const ProPoArray& providers);
  void evictL1Line(NodeId tile, L1Line& line);
  /// Replace-event table escape: a sharer retains its supplier prediction
  /// in the L1C$ on silent eviction (Section IV-A2).
  void retainSupplierHint(NodeId tile, const L1Line& line);
  void evictProviderLine(NodeId tile, L1Line& line);
  void evictOwnerLine(NodeId tile, L1Line& line);
  NodeId findLiveSharer(Addr block, const NodeSet& candidates, NodeId except,
                        NodeId chargeFrom);

  // --- Ownership bookkeeping ---
  /// Current owner location: an L1 tile, the home (L2 owner), or none.
  enum class OwnerKind { None, L1, HomeL2 };
  OwnerKind ownerOf(Addr block, NodeId* node);
  void setL2cOwner(Addr block, NodeId owner);
  void recallOwnership(Addr block, NodeId owner);
  void storeAtL2(NodeId home, Addr block, std::uint64_t value, bool dirty,
                 const ProPoArray& providers);
  void evictL2Line(NodeId home, L2Line& line);
  /// Atomically updates the provider pointer for (block, area) at the
  /// current owner (L1 line or home L2 line), charging the message.
  void updateProviderAtOwner(Addr block, AreaId area, NodeId provider,
                             NodeId notifier);

  // --- Transaction steps ---
  void handleRequestAtL1(const Message& msg);
  void handleRequestAtHome(const Message& msg);
  /// SnoopRead table escape at an owner: repairs stale ProPos named by the
  /// forwarder, then serves in-area reads directly and remote-area reads
  /// through (or by creating) a provider (Table I).
  void ownerServeRead(NodeId tile, L1Line& line, const Message& msg);
  void supplierServeRead(NodeId node, L1Line& line, const Message& msg);
  void ownerServeWrite(NodeId node, L1Line& line, const Message& msg);
  void invalidateProviders(const ProPoArray& providers, Addr block,
                           NodeId from, NodeId ackTo, Txn& txn);
  void maybeCompleteAccess(Addr block);
  void maybeCompleteBackground(Addr block);

  tbl::ProtocolTable table_;
  std::vector<Tile> tiles_;
  std::vector<Bank> banks_;
  std::unordered_map<Addr, Txn> txns_;
};

}  // namespace eecc
