// Direct Coherence (DiCo) — Ros et al. [7], the paper's second baseline
// and the base of DiCo-Providers / DiCo-Arin.
//
// The coherence information and the ownership of a block live with the
// data in an L1 cache (the *owner*). An L1 miss predicts the owner through
// the L1C$ and goes straight to it (2 hops, no home indirection); a
// misprediction detours through the home, whose L2C$ knows the precise
// owner. On a write the owner itself invalidates the sharers it tracks.
// Ownership migrates to requestors so that subsequent misses resolve
// within two hops.
#pragma once

#include <unordered_map>

#include "cache/cache_array.h"
#include "common/bits.h"
#include "cache/coherence_cache.h"
#include "cache/node_set.h"
#include "protocols/protocol.h"
#include "protocols/table_engine.h"

namespace eecc {

class DiCoProtocol final : public Protocol {
 public:
  DiCoProtocol(EventQueue& events, Network& net, const CmpConfig& cfg);

  ProtocolKind kind() const override { return ProtocolKind::DiCo; }
  bool tryHit(NodeId tile, Addr block, AccessType type) override;
  void auditInvariants(const AuditFailFn& fail) const override;
  void forEachL1Copy(
      const std::function<void(const L1CopyView&)>& fn) const override;
  void forEachL2Block(
      const std::function<void(NodeId tile, Addr block)>& fn) const override;

  struct LineView {
    bool valid = false;
    char state = 'I';  // I/S/E/M/O
    std::uint64_t value = 0;
    std::int32_t sharerCount = 0;
  };
  LineView l1Line(NodeId tile, Addr block) const;
  /// Precise L1 owner recorded at the home, or kInvalidNode.
  NodeId l2cOwner(Addr block) const;

  /// The MOSI+E stable-state table this engine interprets (DESIGN.md §15);
  /// exposed so tests/table_engine_test.cpp can audit well-formedness.
  static tbl::ProtocolTable makeStableTable();

 protected:
  void startMiss(NodeId tile, Addr block, AccessType type,
                 DoneFn done) override;
  void onMessage(const Message& msg) override;

 private:
  enum class L1State : std::uint8_t { S, E, M, O };

  struct L1Line : CacheLineBase {
    L1State state = L1State::S;
    bool dirty = false;
    std::uint64_t value = 0;
    /// Supplier prediction kept in the line's sharing-code field ("L1
    /// cache entries can store one GenPo at no additional cost").
    NodeId supplier = kInvalidNode;
    NodeSet sharers;  ///< Sharing code (meaningful when owner).
  };

  struct L2Line : CacheLineBase {
    bool dirty = false;
    std::uint64_t value = 0;
    NodeSet sharers;  ///< Sharing code when the home L2 is the owner.
  };

  struct Tile {
    CacheArray<L1Line> l1;
    CoherenceCache l1c;
    explicit Tile(const CmpConfig& c)
        : l1(c.l1.entries, c.l1.assoc), l1c(c.l1cEntries, c.l1cAssoc) {}
  };
  struct Bank {
    CacheArray<L2Line> l2;
    CoherenceCache l2c;
    explicit Bank(const CmpConfig& c)
        : l2(c.l2.entries, c.l2.assoc,
             log2ceil(static_cast<std::uint64_t>(c.tiles()))),
          l2c(c.l2cEntries, c.l2cAssoc,
              log2ceil(static_cast<std::uint64_t>(c.tiles()))) {}
  };

  struct Txn {
    NodeId requestor = kInvalidNode;
    AccessType type = AccessType::Read;
    DoneFn done;
    Tick start = 0;
    std::uint32_t links = 0;
    bool predicted = false;    ///< An L1C$ prediction was used.
    bool throughHome = false;  ///< The request detoured through the home.
    bool needsData = true;
    std::int32_t acksOutstanding = 0;
    bool ackCountKnown = false;
    bool dataArrived = false;
    bool grantArrived = false;  ///< The grant/ack-count message landed.
    bool coreNotified = false;
    std::uint64_t value = 0;
    NodeId supplier = kInvalidNode;  ///< Who sent the data (L1C$ update).
    MissClass cls = MissClass::UnpredL2;
    // Ownership grant attached to the data (reads from the home / writes).
    bool becomeOwner = false;
    bool grantDirty = false;
    NodeSet grantSharers;
    // Background L2-eviction invalidation.
    bool background = false;
    std::int32_t bgAcks = 0;
  };

  Tile& tileOf(NodeId t) { return tiles_[static_cast<std::size_t>(t)]; }
  Bank& bankOf(NodeId h) { return banks_[static_cast<std::size_t>(h)]; }

  // --- L1 management ---
  void installL1(NodeId tile, Addr block, L1State state, bool dirty,
                 std::uint64_t value, NodeId supplier,
                 const NodeSet& sharers);
  void evictL1Line(NodeId tile, L1Line& line);
  /// Replace-event table escapes: S retains its supplier prediction in
  /// the L1C$; owner states hand the ownership to a live sharer or back
  /// to the home (Section IV-A1).
  void retainSupplierHint(NodeId tile, const L1Line& line);
  void evictOwnerLine(NodeId tile, L1Line& line);
  void relinquishToHome(NodeId tile, const L1Line& line);
  void transferOwnership(NodeId from, const L1Line& line, NodeId to);

  // --- Home management ---
  /// Records `owner` in the home's L2C$; a displaced entry triggers an
  /// ownership recall of its block (Section IV-A1).
  void setL2cOwner(Addr block, NodeId owner);
  void clearL2cOwner(Addr block);
  void recallOwnership(Addr block, NodeId owner);
  void storeAtL2(NodeId home, Addr block, std::uint64_t value, bool dirty,
                 const NodeSet& sharers);
  void evictL2Line(NodeId home, L2Line& line);

  // --- Transaction steps ---
  void handleRequestAtL1(const Message& msg);
  void handleRequestAtHome(const Message& msg);
  void ownerServeRead(NodeId owner, L1Line& line, const Message& msg);
  void ownerServeWrite(NodeId owner, L1Line& line, const Message& msg);
  void maybeCompleteAccess(Addr block);
  void finishClassification(Txn& txn, bool servedByL1Owner, bool fromMemory,
                            bool servedByL2);

  tbl::ProtocolTable table_;
  std::vector<Tile> tiles_;
  std::vector<Bank> banks_;
  std::unordered_map<Addr, Txn> txns_;

  /// EECC_CHECK_SELFTEST (env, read at construction): intentionally drops
  /// the sharer registration when the owner serves a remote read, leaving
  /// untracked shared copies that later writes fail to invalidate. Used to
  /// prove the conformance monitors catch real coherence bugs end-to-end
  /// (value violation online, uncovered-sharer violation at sweeps).
  bool selftestFault_ = false;
};

}  // namespace eecc
