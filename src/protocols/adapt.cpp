#include "protocols/adapt.h"

#include <algorithm>

namespace eecc {

namespace {
enum AdaptMsg : std::uint16_t {
  kSnoopReq = Protocol::kFirstProtocolMsg,  // requestor -> every tile
               // (aux bit0 = write, bit1 = update mode; value = the
               //  committed update payload when bit1 is set)
  kSnoopAck,   // snooped tile -> requestor (aux bit0 = keeps a copy,
               // bit1 = supplies data, bit2 = held a copy when probed;
               // Data class iff supplying)
  kHomeReq,    // requestor -> home (no cache supplied; fallback)
  kHomeData,   // home -> requestor
  kWbData      // dirty (M/O) eviction writeback -> home
};

// The Hybrid-Adapt stable-state automaton as table data (DESIGN.md §15).
// State ids mirror AdaptProtocol::L1State declaration order. Reads are
// MOESI-Snoop rows verbatim; the adaptive machinery rides the escapes:
//   Escape0  classifier write note on silent E/M write hits
//   Escape1  classifier remote-read note on snooped owners
//   Escape2  the per-copy policy fork — update in place or invalidate —
//            resolved from the broadcast's update-mode bit
constexpr std::uint8_t kS = 0, kE = 1, kM = 2, kO = 3;
constexpr tbl::Transition kAdaptTable[] = {
    // Core reads hit on any valid copy.
    {kS, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kE, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kM, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    {kO, tbl::Event::LocalRead, tbl::Guard::Always, tbl::Outcome::Hit,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::Touch, tbl::Action::RecordRead}},
    // Core writes: E upgrades silently (noting the write so the classifier
    // sees uncontended streaks); S and O need the broadcast — under either
    // policy the other copies must be told.
    {kS, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    {kE, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write, tbl::Action::Touch,
      tbl::Action::Escape0}},
    {kM, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Hit, kM,
     {tbl::Action::CommitWrite, tbl::Action::ChargeL1Write, tbl::Action::Touch,
      tbl::Action::Escape0}},
    {kO, tbl::Event::LocalWrite, tbl::Guard::Always, tbl::Outcome::Miss,
     tbl::kKeepState, {}},
    // Replacement: clean states evict silently; dirty (M/O) data writes
    // through to the home L2 bank.
    {kS, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kE, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kM, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::WritebackData, tbl::Action::Invalidate}},
    {kO, tbl::Event::Replace, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::WritebackData, tbl::Action::Invalidate}},
    // Totality rows for external invalidation.
    {kS, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kE, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kM, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    {kO, tbl::Event::Inval, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Invalidate}},
    // Snooped reads — MOESI: sharers stay, owners supply and keep dirty
    // data (M -> O, O stays), E downgrades clean. Owners also feed the
    // classifier: a snooped read is the producer-consumer tell.
    {kS, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {}},
    {kE, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled, kS,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::Escape1}},
    {kM, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled, kO,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::Escape1}},
    {kO, tbl::Event::SnoopRead, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::Escape1}},
    // Snooped writes — the adaptive fork. Owners hand over their data
    // either way; Escape2 then applies the broadcast's verdict to the
    // copy: take the update in place (stay valid as S) or die.
    {kS, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState, {tbl::Action::Escape2}},
    {kE, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::Escape2}},
    {kM, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::Escape2}},
    {kO, tbl::Event::SnoopWrite, tbl::Guard::Always, tbl::Outcome::Handled,
     tbl::kKeepState,
     {tbl::Action::ChargeL1Read, tbl::Action::SupplyData,
      tbl::Action::Escape2}},
};
}  // namespace

tbl::ProtocolTable AdaptProtocol::makeStableTable() {
  return tbl::ProtocolTable("adapt", kAdaptTable, /*numStates=*/4,
                            /*sharedState=*/kS, /*modifiedState=*/kM);
}

AdaptProtocol::AdaptProtocol(EventQueue& events, Network& net,
                             const CmpConfig& cfg)
    : Protocol(events, net, cfg), table_(makeStableTable()) {
  tiles_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  banks_.reserve(static_cast<std::size_t>(cfg_.tiles()));
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_.emplace_back(cfg_);
    banks_.emplace_back(cfg_);
  }
  maxDist_.resize(static_cast<std::size_t>(cfg_.tiles()), 0);
  for (NodeId t = 0; t < cfg_.tiles(); ++t)
    for (NodeId u = 0; u < cfg_.tiles(); ++u)
      maxDist_[static_cast<std::size_t>(t)] =
          std::max(maxDist_[static_cast<std::size_t>(t)],
                   static_cast<std::uint32_t>(distance(t, u)));
}

// ---------------------------------------------------------------- L1 side

bool AdaptProtocol::tryHit(NodeId tile, Addr block, AccessType type) {
  auto& l1 = tileOf(tile).l1;
  energy_.l1TagProbe += 1;
  L1Line* line = l1.find(block);
  if (line == nullptr) return false;
  struct Ops {
    AdaptProtocol& p;
    CacheArray<L1Line>& l1;
    L1Line& line;
    NodeId tile;
    Addr block;
    bool guard(tbl::Guard) const { return true; }
    void setState(std::uint8_t s) { line.state = static_cast<L1State>(s); }
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::ChargeL1Read: p.energy_.l1DataRead += 1; break;
        case tbl::Action::ChargeL1Write: p.energy_.l1DataWrite += 1; break;
        case tbl::Action::Touch: l1.touch(line); break;
        case tbl::Action::RecordRead: p.recordRead(tile, line.value); break;
        case tbl::Action::CommitWrite:
          line.value = p.commitWrite(block);
          break;
        case tbl::Action::Escape0:
          // Silent E/M write hit: nobody else held a copy.
          p.classifier_.noteWrite(block, tile, /*sharedSeen=*/false);
          break;
        default: EECC_CHECK_MSG(false, "action not in the hit vocabulary");
      }
    }
  } ops{*this, l1, *line, tile, block};
  return table_.run(static_cast<std::uint8_t>(line->state),
                    type == AccessType::Read ? tbl::Event::LocalRead
                                             : tbl::Event::LocalWrite,
                    ops) == tbl::Outcome::Hit;
}

void AdaptProtocol::installL1(NodeId tile, Addr block, L1State state,
                              std::uint64_t value) {
  auto& l1 = tileOf(tile).l1;
  if (L1Line* existing = l1.find(block)) {
    existing->state = state;
    existing->value = value;
    l1.touch(*existing);
    energy_.l1DataWrite += 1;
    return;
  }
  L1Line* victim = l1.selectVictim(
      block, [this](const L1Line& l) { return lineBusy(l.addr); });
  if (victim == nullptr) victim = l1.selectVictim(block, nullptr);
  EECC_CHECK(victim != nullptr);
  if (victim->valid) evictL1Line(tile, *victim);
  L1Line& line = l1.install(*victim, block);
  line.state = state;
  line.value = value;
  energy_.l1DataWrite += 1;
  energy_.l1TagProbe += 1;
}

void AdaptProtocol::evictL1Line(NodeId tile, L1Line& line) {
  struct Ops {
    AdaptProtocol& p;
    NodeId tile;
    L1Line& line;
    bool guard(tbl::Guard) const { return true; }
    void setState(std::uint8_t) {}
    void act(tbl::Action a) {
      switch (a) {
        case tbl::Action::WritebackData:
          p.writebackToHome(tile, line);
          break;
        case tbl::Action::Invalidate:
          p.tileOf(tile).l1.invalidate(line);
          break;
        default:
          EECC_CHECK_MSG(false, "action not in the replace vocabulary");
      }
    }
  } ops{*this, tile, line};
  table_.run(static_cast<std::uint8_t>(line.state), tbl::Event::Replace, ops);
}

void AdaptProtocol::writebackToHome(NodeId tile, const L1Line& line) {
  stats_.writebacks += 1;
  energy_.l1DataRead += 1;
  PendingWb& pending = pendingWb_[line.addr];
  pending.value = line.value;
  pending.count += 1;
  Message wb;
  wb.type = kWbData;
  wb.cls = MsgClass::Data;
  wb.src = tile;
  wb.dst = homeOf(line.addr);
  wb.addr = line.addr;
  wb.value = line.value;
  send(wb);
}

void AdaptProtocol::handleSnoop(const Message& msg) {
  stageMark(msg.addr, Stage::Fanout);  // the snoop wave reached a tile
  const NodeId tile = msg.dst;
  if (tile == msg.requestor) return;  // the broadcast's self-copy
  const bool isWrite = (msg.aux & 1) != 0;
  const bool updateMode = (msg.aux & 2) != 0;
  auto& tl = tileOf(tile);
  energy_.l1TagProbe += 1;
  L1Line* line = tl.l1.find(msg.addr);
  const bool hadCopy = line != nullptr;

  bool supplied = false;
  std::uint64_t value = 0;
  if (line != nullptr) {
    struct Ops {
      AdaptProtocol& p;
      Tile& tl;
      NodeId tile;
      L1Line& line;
      const Message& msg;
      bool updateMode;
      bool& supplied;
      std::uint64_t& value;
      bool guard(tbl::Guard) const { return true; }
      void setState(std::uint8_t s) { line.state = static_cast<L1State>(s); }
      void act(tbl::Action a) {
        switch (a) {
          case tbl::Action::ChargeL1Read: p.energy_.l1DataRead += 1; break;
          case tbl::Action::SupplyData:
            supplied = true;
            value = line.value;
            break;
          case tbl::Action::WritebackData:
            p.writebackToHome(tile, line);
            break;
          case tbl::Action::Invalidate: tl.l1.invalidate(line); break;
          case tbl::Action::Escape1:
            // A remote tile is reading data this tile owns.
            p.classifier_.noteRemoteRead(msg.addr);
            break;
          case tbl::Action::Escape2:
            // The policy fork, per the broadcast's verdict.
            if (updateMode) {
              line.value = msg.value;
              line.state = L1State::S;
              p.energy_.l1DataWrite += 1;
            } else {
              tl.l1.invalidate(line);
            }
            break;
          default:
            EECC_CHECK_MSG(false, "action not in the snoop vocabulary");
        }
      }
    } ops{*this, tl, tile, *line, msg, updateMode, supplied, value};
    table_.run(static_cast<std::uint8_t>(line->state),
               isWrite ? tbl::Event::SnoopWrite : tbl::Event::SnoopRead, ops);
  }
  // Valid after the probe: always for reads, only in update mode for
  // writes (Escape2 invalidated the copy otherwise).
  const bool keepsShared = line != nullptr && line->valid;

  Message ack;
  ack.type = kSnoopAck;
  ack.cls = supplied ? MsgClass::Data : MsgClass::Control;
  ack.src = tile;
  ack.dst = msg.requestor;
  ack.origin = msg.requestor;
  ack.addr = msg.addr;
  ack.aux = (keepsShared ? 1u : 0u) | (supplied ? 2u : 0u) |
            (hadCopy ? 4u : 0u);
  ack.value = value;
  const Tick delay =
      cfg_.l1.tagLatency + (supplied ? cfg_.l1.dataLatency : 0);
  after(delay, [this, ack] { send(ack); });
}

// --------------------------------------------------------------- Home side

void AdaptProtocol::storeAtL2(NodeId home, Addr block, std::uint64_t value,
                              bool dirty) {
  Bank& bank = bankOf(home);
  energy_.l2DataWrite += 1;
  if (L2Line* line = bank.l2.find(block)) {
    line->value = value;
    line->dirty = line->dirty || dirty;
    bank.l2.touch(*line);
    return;
  }
  L2Line* victim = bank.l2.selectVictim(
      block, [this](const L2Line& l) { return lineBusy(l.addr); });
  if (victim == nullptr) victim = bank.l2.selectVictim(block, nullptr);
  EECC_CHECK(victim != nullptr);
  if (victim->valid) evictL2Line(home, *victim);
  L2Line& line = bank.l2.install(*victim, block);
  line.value = value;
  line.dirty = dirty;
}

void AdaptProtocol::evictL2Line(NodeId home, L2Line& line) {
  stats_.l2Evictions += 1;
  if (line.dirty) {
    energy_.l2DataRead += 1;
    memWriteback(line.addr, home, line.value);
  }
  bankOf(home).l2.invalidate(line);
}

void AdaptProtocol::homeHandleRequest(const Message& msg) {
  const NodeId home = msg.dst;
  const NodeId requestor = msg.requestor;
  const Addr block = msg.addr;
  stageMark(block, Stage::Request);  // home fallback request leg
  Bank& bank = bankOf(home);
  energy_.l2TagProbe += 1;

  auto it = txns_.find(block);
  EECC_CHECK_MSG(it != txns_.end(), "home request without transaction");
  Txn& txn = it->second;

  // Catch any writeback still in flight for this block: its value is the
  // freshest copy anywhere, and the stale L2 array must not win the race.
  if (auto wb = pendingWb_.find(block); wb != pendingWb_.end())
    storeAtL2(home, block, wb->second.value, /*dirty=*/true);

  if (L2Line* line = bank.l2.find(block)) {
    energy_.l2DataRead += 1;
    stats_.l2DataHits += 1;
    bank.l2.touch(*line);
    txn.cls = MissClass::UnpredL2;
    txn.links += static_cast<std::uint32_t>(distance(home, requestor));
    Message data;
    data.type = kHomeData;
    data.cls = MsgClass::Data;
    data.src = home;
    data.dst = requestor;
    data.origin = requestor;
    data.addr = block;
    data.value = line->value;
    after(cfg_.l2.tagLatency + cfg_.l2.dataLatency, [this, data] {
      stageMark(data.addr, Stage::Service);  // home occupancy
      send(data);
    });
    return;
  }
  // Off-chip; the home keeps a clean copy of the fill for later readers.
  txn.cls = MissClass::Memory;
  txn.links += static_cast<std::uint32_t>(
      distance(home, cfg_.memControllerOf(block)) +
      distance(cfg_.memControllerOf(block), requestor));
  storeAtL2(home, block, memoryValue(block), /*dirty=*/false);
  memFetch(block, home, requestor, [this, block](std::uint64_t value) {
    auto t = txns_.find(block);
    EECC_CHECK(t != txns_.end());
    t->second.dataArrived = true;
    t->second.value = value;
    completeAccess(block);
  });
}

// ------------------------------------------------------------ Transactions

void AdaptProtocol::startMiss(NodeId tile, Addr block, AccessType type,
                              DoneFn done) {
  Txn& txn = txns_[block];
  txn = Txn{};
  txn.requestor = tile;
  txn.type = type;
  txn.done = std::move(done);
  txn.start = events_.now();

  if (type == AccessType::Write) {
    // Resolve the policy once, here, so every snooper in the wave applies
    // the same verdict. Update mode commits up front (Dragon-style) so
    // the broadcast carries the new value; the line lock makes that safe.
    txn.updateMode = classifier_.updatePolicy(block);
    if (txn.updateMode) txn.newValue = commitWrite(block);
    if (tileOf(tile).l1.find(block) != nullptr) {
      txn.needsData = false;  // upgrade from S or O (valid local data)
      stats_.upgrades += 1;
    }
  }

  txn.acksOutstanding = static_cast<std::int32_t>(cfg_.tiles()) - 1;
  // Critical path: the snoop wave out to the farthest tile and its ack
  // back; the home fallback adds its own hops on top.
  txn.links += 2 * maxDist_[static_cast<std::size_t>(tile)];

  Message req;
  req.type = kSnoopReq;
  req.src = tile;
  req.addr = block;
  req.requestor = tile;
  req.aux = (type == AccessType::Write ? 1u : 0u) |
            (txn.updateMode ? 2u : 0u);
  req.value = txn.newValue;
  // An update wave pushes a data payload to every tile; invalidations
  // stay control-class. This asymmetry is exactly what the adaptive
  // policy trades on in the energy ledger.
  if (txn.updateMode) req.cls = MsgClass::Data;
  sendBroadcast(req);
  if (txn.acksOutstanding == 0) onAllAcks(block, txn);  // single-tile chip
}

void AdaptProtocol::onAllAcks(Addr block, Txn& txn) {
  if (txn.needsData && !txn.dataArrived) {
    // No cache supplied: fall back to the home bank (then memory).
    if (!txn.homeAsked) {
      txn.homeAsked = true;
      const NodeId home = homeOf(block);
      txn.links +=
          static_cast<std::uint32_t>(distance(txn.requestor, home));
      Message req;
      req.type = kHomeReq;
      req.src = txn.requestor;
      req.dst = home;
      req.addr = block;
      req.requestor = txn.requestor;
      send(req);
    }
    return;
  }
  completeAccess(block);
}

void AdaptProtocol::completeAccess(Addr block) {
  auto it = txns_.find(block);
  EECC_CHECK(it != txns_.end());
  Txn& txn = it->second;
  if (txn.type == AccessType::Read) {
    // E iff no other tile kept a copy (an owner's ack says "shared").
    installL1(txn.requestor, block,
              txn.sharedSeen ? L1State::S : L1State::E, txn.value);
    recordRead(txn.requestor, txn.value);
  } else {
    if (txn.updateMode) {
      // Sharers kept their updated copies: the writer owns a shared
      // line (O), or M when the wave found nobody after all.
      installL1(txn.requestor, block,
                txn.sharedSeen ? L1State::O : L1State::M, txn.newValue);
    } else {
      installL1(txn.requestor, block, L1State::M, commitWrite(block));
    }
    classifier_.noteWrite(block, txn.requestor, txn.copiesSeen);
  }
  recordMiss(block, txn.cls, txn.start, txn.links);
  const DoneFn done = std::move(txn.done);
  txns_.erase(it);
  done();
  releaseLine(block);
}

void AdaptProtocol::onMessage(const Message& msg) {
  switch (msg.type) {
    case kSnoopReq:
      handleSnoop(msg);
      return;

    case kSnoopAck: {
      // An ack carrying data is the cache-to-cache transfer itself.
      stageMark(msg.addr,
                (msg.aux & 2) != 0 ? Stage::DataReturn : Stage::AckWait);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      Txn& txn = it->second;
      txn.acksOutstanding -= 1;
      EECC_CHECK(txn.acksOutstanding >= 0);
      if ((msg.aux & 1) != 0) txn.sharedSeen = true;
      if ((msg.aux & 2) != 0) {
        txn.dataArrived = true;
        txn.value = msg.value;
        txn.cls = MissClass::UnpredOwner;  // cache-to-cache transfer
      }
      if ((msg.aux & 4) != 0) txn.copiesSeen = true;
      if (txn.acksOutstanding == 0) onAllAcks(msg.addr, txn);
      return;
    }

    case kHomeReq:
      homeHandleRequest(msg);
      return;

    case kHomeData: {
      stageMark(msg.addr, Stage::DataReturn);
      auto it = txns_.find(msg.addr);
      EECC_CHECK(it != txns_.end());
      it->second.dataArrived = true;
      it->second.value = msg.value;
      completeAccess(msg.addr);
      return;
    }

    case kWbData: {
      // Apply the buffered (latest) value, not the message's: same-block
      // writebacks can be delivered out of order.
      auto wb = pendingWb_.find(msg.addr);
      EECC_CHECK(wb != pendingWb_.end());
      storeAtL2(msg.dst, msg.addr, wb->second.value, /*dirty=*/true);
      if (--wb->second.count == 0) pendingWb_.erase(wb);
      return;
    }
  }
  EECC_CHECK_MSG(false, "unknown Hybrid-Adapt message type");
}

// ------------------------------------------------------------- Test hooks

namespace {
char adaptStateChar(std::uint8_t s) {
  switch (s) {
    case kS: return 'S';
    case kE: return 'E';
    case kM: return 'M';
    case kO: return 'O';
  }
  return '?';
}
}  // namespace

AdaptProtocol::LineView AdaptProtocol::l1Line(NodeId tile, Addr block) const {
  const auto& l1 = tiles_[static_cast<std::size_t>(tile)].l1;
  LineView v;
  if (const L1Line* line = l1.find(block)) {
    v.valid = true;
    v.value = line->value;
    v.state = adaptStateChar(static_cast<std::uint8_t>(line->state));
  }
  return v;
}

std::uint8_t AdaptProtocol::classifierScore(Addr block) const {
  return classifier_.score(block);
}

bool AdaptProtocol::wouldUpdate(Addr block) const {
  return classifier_.updatePolicy(block);
}

void AdaptProtocol::forEachL1Copy(
    const std::function<void(const L1CopyView&)>& fn) const {
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          L1CopyView v;
          v.tile = t;
          v.block = line.addr;
          v.state = adaptStateChar(static_cast<std::uint8_t>(line.state));
          v.value = line.value;
          v.busy = lineBusy(line.addr);
          fn(v);
        });
  }
}

void AdaptProtocol::forEachL2Block(
    const std::function<void(NodeId tile, Addr block)>& fn) const {
  for (NodeId h = 0; h < cfg_.tiles(); ++h)
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) { fn(h, line.addr); });
}

void AdaptProtocol::auditInvariants(const AuditFailFn& fail) const {
  // Assumes quiesced blocks (in-flight ones are skipped). Per block: at
  // most one owner (E/M/O); E/M excludes other copies (O legally coexists
  // with S sharers, both after update-mode writes and after reads of a
  // dirty line); every copy holds the committed value; the home L2 value
  // matches the committed value unless an owner exists.
  std::unordered_map<Addr, NodeId> owner;
  std::unordered_map<Addr, NodeId> exclusiveHolder;
  std::unordered_map<Addr, std::vector<NodeId>> holders;
  for (NodeId t = 0; t < cfg_.tiles(); ++t) {
    tiles_[static_cast<std::size_t>(t)].l1.forEachValid(
        [&](const L1Line& line) {
          if (lineBusy(line.addr)) return;
          holders[line.addr].push_back(t);
          if (line.state != L1State::S) {
            if (owner.contains(line.addr))
              fail("two owners (E/M/O): tiles " +
                   std::to_string(owner[line.addr]) + " and " +
                   std::to_string(t) + ", " + describeBlock(line.addr));
            owner[line.addr] = t;
          }
          if (line.state == L1State::E || line.state == L1State::M)
            exclusiveHolder[line.addr] = t;
          if (line.value != committedValue(line.addr))
            fail("L1 copy holds a stale value: tile " + std::to_string(t) +
                 ", " + describeBlock(line.addr));
        });
  }
  for (const auto& [block, list] : holders)
    if (exclusiveHolder.contains(block) && list.size() != 1)
      fail("E/M copy coexists with other copies: " + describeBlock(block));
  for (NodeId h = 0; h < cfg_.tiles(); ++h) {
    banks_[static_cast<std::size_t>(h)].l2.forEachValid(
        [&](const L2Line& line) {
          if (lineBusy(line.addr)) return;
          if (pendingWb_.contains(line.addr)) return;  // wb in flight
          if (!owner.contains(line.addr) &&
              line.value != committedValue(line.addr))
            fail("L2 value stale with no L1 owner: " +
                 describeBlock(line.addr));
        });
  }
}

}  // namespace eecc
