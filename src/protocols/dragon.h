// Dragon — write-update snooping, the classic foil to invalidation under
// producer-consumer sharing.
//
// Same directory-less broadcast skeleton as mesi.h, but a write to a
// shared line never invalidates the other copies: the writer commits its
// new value first, the snoop wave *updates* every remote copy in place
// (tbl::Action::UpdateData), and the sharers stay valid. The writer ends
// the transaction as Sm — the shared-modified owner responsible for
// supplying data and for the eventual writeback — or M when no sharer
// remained. Consumers whose copies are kept fresh by the producer's
// update waves read with L1 hits forever; the price is that every such
// write costs a chip-wide broadcast even when nobody will ever read the
// updated copies again (the migratory pathology Hybrid-Adapt targets).
//
// States: Sc (shared clean), E (exclusive clean), Sm (shared modified,
// the owner), M (modified). SWMR nuance: Dragon's writes don't create an
// exclusive copy — the *transaction* serializes writers through the line
// lock, while Sm coexists with Sc copies exactly like a MOESI owner (it
// reports as 'O' to the monitors). The value monitor is the interesting
// check here: update waves land in every sharer before the transaction
// completes, so every quiesced copy equals the golden value.
#pragma once

#include <unordered_map>

#include "cache/cache_array.h"
#include "common/bits.h"
#include "protocols/protocol.h"
#include "protocols/table_engine.h"

namespace eecc {

class DragonProtocol final : public Protocol {
 public:
  DragonProtocol(EventQueue& events, Network& net, const CmpConfig& cfg);

  ProtocolKind kind() const override { return ProtocolKind::Dragon; }
  bool tryHit(NodeId tile, Addr block, AccessType type) override;
  void auditInvariants(const AuditFailFn& fail) const override;
  void forEachL1Copy(
      const std::function<void(const L1CopyView&)>& fn) const override;
  void forEachL2Block(
      const std::function<void(NodeId tile, Addr block)>& fn) const override;

  /// Test hooks.
  struct LineView {
    bool valid = false;
    char state = 'I';  // I / S(c) / E / O(=Sm) / M
    std::uint64_t value = 0;
  };
  LineView l1Line(NodeId tile, Addr block) const;

  /// The Dragon stable-state table this engine interprets (DESIGN.md §15);
  /// exposed so tests/table_engine_test.cpp can audit well-formedness.
  static tbl::ProtocolTable makeStableTable();

 protected:
  void startMiss(NodeId tile, Addr block, AccessType type,
                 DoneFn done) override;
  void onMessage(const Message& msg) override;

 private:
  enum class L1State : std::uint8_t { Sc, E, Sm, M };

  struct L1Line : CacheLineBase {
    L1State state = L1State::Sc;
    std::uint64_t value = 0;
  };

  struct L2Line : CacheLineBase {
    bool dirty = false;
    std::uint64_t value = 0;
  };

  struct Tile {
    CacheArray<L1Line> l1;
    explicit Tile(const CmpConfig& c) : l1(c.l1.entries, c.l1.assoc) {}
  };
  struct Bank {
    CacheArray<L2Line> l2;
    explicit Bank(const CmpConfig& c)
        : l2(c.l2.entries, c.l2.assoc,
             log2ceil(static_cast<std::uint64_t>(c.tiles()))) {}
  };

  struct Txn {
    NodeId requestor = kInvalidNode;
    AccessType type = AccessType::Read;
    DoneFn done;
    Tick start = 0;
    std::uint32_t links = 0;
    MissClass cls = MissClass::UnpredL2;
    std::int32_t acksOutstanding = 0;  ///< tiles-1 snoop acks owed.
    bool sharedSeen = false;   ///< Some tile keeps a copy (write -> Sm).
    bool dataArrived = false;  ///< A snooper or the home supplied data.
    bool needsData = true;     ///< False for Sc/Sm update transactions.
    bool homeAsked = false;    ///< Fallback request already sent.
    std::uint64_t value = 0;     ///< Fetched data (reads, write fills).
    std::uint64_t newValue = 0;  ///< Committed value the update carries.
  };

  Tile& tileOf(NodeId t) { return tiles_[static_cast<std::size_t>(t)]; }
  Bank& bankOf(NodeId h) { return banks_[static_cast<std::size_t>(h)]; }

  // --- L1 side ---
  void installL1(NodeId tile, Addr block, L1State state, std::uint64_t value);
  void evictL1Line(NodeId tile, L1Line& line);
  /// Eviction of an owned (Sm/M) line — the only writeback Dragon has.
  void writebackToHome(NodeId tile, const L1Line& line);
  void handleSnoop(const Message& msg);

  // --- Home side ---
  void storeAtL2(NodeId home, Addr block, std::uint64_t value, bool dirty);
  void evictL2Line(NodeId home, L2Line& line);
  void homeHandleRequest(const Message& msg);

  // --- Transaction steps ---
  void onAllAcks(Addr block, Txn& txn);
  void completeAccess(Addr block);

  tbl::ProtocolTable table_;
  std::vector<Tile> tiles_;
  std::vector<Bank> banks_;
  std::unordered_map<Addr, Txn> txns_;
  /// In-flight dirty writebacks (see mesi.h): the home serves these ahead
  /// of its stale L2 array; the audit exempts covered blocks.
  struct PendingWb {
    std::uint64_t value = 0;
    int count = 0;
  };
  std::unordered_map<Addr, PendingWb> pendingWb_;
  /// Mesh distance to the farthest tile, per requestor (broadcast depth).
  std::vector<std::uint32_t> maxDist_;
};

}  // namespace eecc
