// Declarative transition-table core for the coherence protocols
// (DESIGN.md §15, ROADMAP item 4).
//
// Following BedRock's observation that the stable-state part of a coherence
// engine is better expressed as data than as control flow, each protocol
// declares its L1 stable-state automaton as a constexpr array of
// `Transition` rows — `state × event (× guard) → {outcome, next state,
// action list}` — and drives every stable-state dispatch site (core
// hit/upgrade, replacement, invalidation, snooped/forwarded requests)
// through one compact interpreter. Genuinely novel mechanisms (DiCo owner
// handoff, provider prediction, Arin's globalization/three-way broadcast)
// stay hand-written behind `Escape` actions: the table still names *which*
// states take the mechanism, the adapter binds what it does.
//
// The interpreter is templated over a per-dispatch-site `Ops` adapter so
// every action inlines into the caller — the refactor must not cost the
// miss path anything (bench/micro_table_engine holds the gate). The
// adapter contract:
//
//   bool guard(Guard g) const;   // evaluate a protocol-defined predicate
//   void setState(std::uint8_t); // store the row's next-state in the line
//   void act(Action a);          // perform one action, in row order
//
// `run()` applies the first row whose guard passes: next-state first, then
// the actions left to right (adapters needing pre-transition state — e.g.
// "was the line dirty?" — capture it at construction). Tables are
// validated for well-formedness (full state × event coverage, guard
// totality, next-state range) by `validate()`, exercised in
// tests/table_engine_test.cpp.
//
// EECC_TABLE_SELFTEST=<tag|all> corrupts one row of the matching
// protocol's table at construction (a write hit on Shared that never
// invalidates the other sharers) — the transcription-audit drill proving
// the differential fuzzer actually watches the tables
// (`eecc_check --table-selftest`, CI).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/selfprof.h"

namespace eecc::tbl {

/// Stable-state events a protocol routes through its table. Every event is
/// raised with the line's serialization and probe energy already handled
/// by the dispatch site; the table owns what happens *to the line*.
enum class Event : std::uint8_t {
  LocalRead,   ///< Core read on a valid local line (hit fast path).
  LocalWrite,  ///< Core write on a valid local line (hit or upgrade miss).
  Replace,     ///< The line was chosen as an eviction victim.
  Inval,       ///< An invalidation request arrived at this holder.
  SnoopRead,   ///< A remote read reached this holder (forward or snoop).
  SnoopWrite,  ///< A remote write reached this holder (forward or snoop).
};
inline constexpr std::size_t kEventCount = 6;

/// Row predicates, evaluated by the protocol's Ops adapter — the table
/// names the condition, the protocol defines it (DiCo's "sole copy" reads
/// its sharing code, Providers' additionally its ProPo array).
enum class Guard : std::uint8_t {
  Always,    ///< Unconditional (the required final row of a pair).
  SoleCopy,  ///< No other copy the protocol's metadata can still see.
  SameArea,  ///< The requestor lives in this tile's static area.
};

/// The action vocabulary. Charges mirror the energy events of Table V;
/// Escape0..3 are protocol-mechanism hooks whose meaning is defined by the
/// Ops adapter of the dispatch site that raised the event.
enum class Action : std::uint8_t {
  None,            ///< List terminator (implicit in trailing slots).
  ChargeL1Read,    ///< energy: one L1 data-array read.
  ChargeL1Write,   ///< energy: one L1 data-array write.
  ChargeL1DirRead, ///< energy: one read of the line's sharing code.
  Touch,           ///< Refresh the line's replacement stamp.
  RecordRead,      ///< Expose the line's value to the core (oracle).
  CommitWrite,     ///< Commit a store: new oracle value into the line.
  Invalidate,      ///< Drop the line from this cache.
  WritebackClean,  ///< Clean eviction notice toward the home.
  WritebackData,   ///< Dirty data writeback/write-through toward the home.
  SupplyData,      ///< Answer the in-flight request with the line's data.
  UpdateData,      ///< Apply an in-flight write-update's value to this copy
                   ///< (Dragon-style update snooping; the copy stays valid).
  Escape0,         ///< Protocol-specific mechanism (adapter-defined).
  Escape1,
  Escape2,
  Escape3,
};

/// How the dispatch site should proceed after the row ran.
enum class Outcome : std::uint8_t {
  Hit,      ///< The access completed locally.
  Miss,     ///< Not satisfiable here — start/forward a transaction.
  Handled,  ///< Event consumed (replacements, invalidations, serves).
};

/// Sentinel for rows that leave the line's state untouched.
inline constexpr std::uint8_t kKeepState = 0xff;

struct Transition {
  std::uint8_t state = 0;
  Event event = Event::LocalRead;
  Guard guard = Guard::Always;
  Outcome outcome = Outcome::Handled;
  std::uint8_t next = kKeepState;
  std::array<Action, 5> actions{};  ///< None-terminated, run left to right.
};

/// One protocol's compiled table: the constexpr rows plus a dense
/// (state, event) index built at construction. Instances are tiny and
/// per-protocol-object so the selftest typo can corrupt one engine
/// without leaking into the reference runs of a differential campaign.
class ProtocolTable {
 public:
  /// `tag` names the protocol for EECC_TABLE_SELFTEST matching ("dir",
  /// "dico", "providers", "arin", "mesi", "moesi", "dragon", "adapt").
  /// `sharedState`/`modifiedState` locate the row the selftest drill
  /// corrupts.
  ProtocolTable(const char* tag, std::span<const Transition> rows,
                std::uint8_t numStates, std::uint8_t sharedState,
                std::uint8_t modifiedState);

  /// Dispatches one event: applies the first matching row (guards checked
  /// through `ops`), next-state first, then the action list. Returns the
  /// row's outcome, or Outcome::Miss when no row matches (validated
  /// tables only reach that for genuinely uncovered guard chains, which
  /// validate() rejects).
  template <class Ops>
  Outcome run(std::uint8_t state, Event ev, Ops&& ops) const {
    ProfScope prof(ProfSection::TableInterpret);
    const Slot s = index_[slot(state, ev)];
    for (std::uint32_t i = 0; i < s.count; ++i) {
      const Transition& t = rows_[s.begin + i];
      if (t.guard != Guard::Always && !ops.guard(t.guard)) continue;
      if (t.next != kKeepState) ops.setState(t.next);
      for (const Action a : t.actions) {
        if (a == Action::None) break;
        ops.act(a);
      }
      return t.outcome;
    }
    return Outcome::Miss;
  }

  /// Well-formedness audit (tests/table_engine_test.cpp): every
  /// state × event pair covered, every chain ends in an Always row, every
  /// state and next-state within the protocol's enum, action lists
  /// None-terminated. Returns human-readable defects; empty = sound.
  std::vector<std::string> validate() const;

  std::uint8_t numStates() const { return numStates_; }
  const std::vector<Transition>& rows() const { return rows_; }
  /// Whether the EECC_TABLE_SELFTEST drill corrupted this instance.
  bool typoInjected() const { return typoInjected_; }

 private:
  std::size_t slot(std::uint8_t state, Event ev) const {
    return static_cast<std::size_t>(state) * kEventCount +
           static_cast<std::size_t>(ev);
  }
  struct Slot {
    std::uint32_t begin = 0;
    std::uint32_t count = 0;
  };

  std::vector<Transition> rows_;
  std::vector<Slot> index_;
  std::uint8_t numStates_ = 0;
  bool typoInjected_ = false;
};

/// True when EECC_TABLE_SELFTEST requests a typo for `tag` ("all" or "1"
/// match every protocol) — exposed for the tools' drill plumbing.
bool tableSelftestRequested(const char* tag);

}  // namespace eecc::tbl
