// Broadcast-snooping MESI — a directory-less reference point alongside
// the paper's four protocols.
//
// Every L1 miss broadcasts a snoop request over the mesh's XY broadcast
// tree (the memoized batched path of noc/mesh.h); every other tile probes
// its L1 and acknowledges, an E/M holder supplies the data directly, and
// the requestor completes once all tiles-1 acks are in — falling back to
// the home L2 bank (and memory below it) only when no cache supplied.
// There is no coherence *storage* anywhere — no sharer maps, no owner
// pointers, no pointer caches — the cost shows up as network energy
// instead: every miss costs a chip-wide broadcast plus a full ack wave.
// That trade is exactly the contrast the paper's storage/traffic tables
// draw, which makes this protocol a useful calibration point for both.
#pragma once

#include <unordered_map>

#include "cache/cache_array.h"
#include "common/bits.h"
#include "protocols/protocol.h"
#include "protocols/table_engine.h"

namespace eecc {

class MesiProtocol final : public Protocol {
 public:
  MesiProtocol(EventQueue& events, Network& net, const CmpConfig& cfg);

  ProtocolKind kind() const override { return ProtocolKind::Mesi; }
  bool tryHit(NodeId tile, Addr block, AccessType type) override;
  void auditInvariants(const AuditFailFn& fail) const override;
  void forEachL1Copy(
      const std::function<void(const L1CopyView&)>& fn) const override;
  void forEachL2Block(
      const std::function<void(NodeId tile, Addr block)>& fn) const override;

  /// Test hooks.
  struct LineView {
    bool valid = false;
    char state = 'I';  // I/S/E/M
    std::uint64_t value = 0;
  };
  LineView l1Line(NodeId tile, Addr block) const;

  /// The MESI stable-state table this engine interprets (DESIGN.md §15);
  /// exposed so tests/table_engine_test.cpp can audit well-formedness.
  static tbl::ProtocolTable makeStableTable();

 protected:
  void startMiss(NodeId tile, Addr block, AccessType type,
                 DoneFn done) override;
  void onMessage(const Message& msg) override;

 private:
  enum class L1State : std::uint8_t { S, E, M };

  struct L1Line : CacheLineBase {
    L1State state = L1State::S;
    std::uint64_t value = 0;
  };

  struct L2Line : CacheLineBase {
    bool dirty = false;
    std::uint64_t value = 0;
  };

  struct Tile {
    CacheArray<L1Line> l1;
    explicit Tile(const CmpConfig& c) : l1(c.l1.entries, c.l1.assoc) {}
  };
  struct Bank {
    CacheArray<L2Line> l2;
    explicit Bank(const CmpConfig& c)
        : l2(c.l2.entries, c.l2.assoc,
             log2ceil(static_cast<std::uint64_t>(c.tiles()))) {}
  };

  struct Txn {
    NodeId requestor = kInvalidNode;
    AccessType type = AccessType::Read;
    DoneFn done;
    Tick start = 0;
    std::uint32_t links = 0;
    MissClass cls = MissClass::UnpredL2;
    std::int32_t acksOutstanding = 0;  ///< tiles-1 snoop acks owed.
    bool sharedSeen = false;   ///< Some tile keeps a shared copy.
    bool dataArrived = false;  ///< A snooper or the home supplied data.
    bool needsData = true;     ///< False for S->M upgrades.
    bool homeAsked = false;    ///< Fallback request already sent.
    std::uint64_t value = 0;
  };

  Tile& tileOf(NodeId t) { return tiles_[static_cast<std::size_t>(t)]; }
  Bank& bankOf(NodeId h) { return banks_[static_cast<std::size_t>(h)]; }

  // --- L1 side ---
  void installL1(NodeId tile, Addr block, L1State state, std::uint64_t value);
  void evictL1Line(NodeId tile, L1Line& line);
  /// Snoop/Replace table escape: write a dirty block through to its home
  /// L2 bank (the only way data ever reaches the L2 besides fills).
  void writebackToHome(NodeId tile, const L1Line& line);
  void handleSnoop(const Message& msg);

  // --- Home side ---
  void storeAtL2(NodeId home, Addr block, std::uint64_t value, bool dirty);
  void evictL2Line(NodeId home, L2Line& line);
  void homeHandleRequest(const Message& msg);

  // --- Transaction steps ---
  void onAllAcks(Addr block, Txn& txn);
  void completeAccess(Addr block);

  tbl::ProtocolTable table_;
  std::vector<Tile> tiles_;
  std::vector<Bank> banks_;
  std::unordered_map<Addr, Txn> txns_;
  /// In-flight dirty writebacks — the snooped writeback buffer every real
  /// snooping MESI needs: until the kWbData lands, the home's L2 copy is
  /// stale with no L1 owner, so the home serves these values ahead of its
  /// own array and the audit treats covered blocks as still owned.
  struct PendingWb {
    std::uint64_t value = 0;
    int count = 0;
  };
  std::unordered_map<Addr, PendingWb> pendingWb_;
  /// Mesh distance to the farthest tile, per requestor: the broadcast's
  /// critical-path depth, charged once out and once back per miss.
  std::vector<std::uint32_t> maxDist_;
};

}  // namespace eecc
