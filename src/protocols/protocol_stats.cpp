#include "protocols/protocol_stats.h"

namespace eecc {

const char* missClassName(MissClass c) {
  switch (c) {
    case MissClass::PredOwnerHit: return "pred-owner-hit";
    case MissClass::PredProviderHit: return "pred-provider-hit";
    case MissClass::PredMiss: return "pred-miss";
    case MissClass::UnpredOwner: return "unpred-owner";
    case MissClass::UnpredL2: return "unpred-l2";
    case MissClass::Memory: return "memory";
    case MissClass::kCount: break;
  }
  return "?";
}

}  // namespace eecc
