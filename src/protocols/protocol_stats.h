// Statistics every protocol reports: hit/miss counts, the six-way L1 miss
// classification of Figure 9b, latency and link-distance distributions,
// and the cache energy-event counters behind Figures 7 and 8a.
#pragma once

#include <array>
#include <cstdint>

#include "common/stats.h"

namespace eecc {

/// Figure 9b classification of L1 misses: predicted or not, resolved by an
/// owner or an in-area provider, and whether the prediction succeeded.
enum class MissClass : std::uint8_t {
  PredOwnerHit,     ///< L1C$ prediction hit an owner (2-hop miss).
  PredProviderHit,  ///< Prediction hit a provider in the area ("shortened").
  PredMiss,         ///< Misprediction: forwarded through the home.
  UnpredOwner,      ///< No prediction; home forwarded to an owner/provider.
  UnpredL2,         ///< No prediction; home supplied the data itself.
  Memory,           ///< Off-chip access.
  kCount,
};

const char* missClassName(MissClass c);

struct ProtocolStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t l1ReadHits = 0;
  std::uint64_t l1WriteHits = 0;
  std::uint64_t readMisses = 0;
  std::uint64_t writeMisses = 0;
  std::uint64_t upgrades = 0;  ///< Write misses that hit a Shared L1 line.

  std::uint64_t l2DataHits = 0;    ///< Misses served with data from home L2.
  std::uint64_t memoryFetches = 0;

  std::uint64_t invalidationsSent = 0;
  std::uint64_t broadcastInvalidations = 0;  ///< DiCo-Arin three-way invals.
  std::uint64_t ownershipTransfers = 0;
  std::uint64_t providershipTransfers = 0;
  std::uint64_t hintMessages = 0;
  /// Misses whose data came from a provider in the requestor's own area
  /// — the paper's "shortened misses" (Section V-D).
  std::uint64_t providerResolvedMisses = 0;
  std::uint64_t writebacks = 0;
  std::uint64_t l2Evictions = 0;
  std::uint64_t dirEvictionInvalidations = 0;

  std::array<std::uint64_t, static_cast<std::size_t>(MissClass::kCount)>
      missByClass{};
  std::array<Accumulator, static_cast<std::size_t>(MissClass::kCount)>
      latencyByClass{};
  std::array<Accumulator, static_cast<std::size_t>(MissClass::kCount)>
      linksByClass{};
  Accumulator missLatency;

  std::uint64_t l1Accesses() const { return reads + writes; }
  std::uint64_t l1Misses() const { return readMisses + writeMisses; }
  double l1MissRate() const {
    return l1Accesses() ? static_cast<double>(l1Misses()) /
                              static_cast<double>(l1Accesses())
                        : 0.0;
  }
  double l2MissRate() const {
    const std::uint64_t l2Lookups = l1Misses();
    return l2Lookups ? static_cast<double>(memoryFetches) /
                           static_cast<double>(l2Lookups)
                     : 0.0;
  }
  std::uint64_t& miss(MissClass c) {
    return missByClass[static_cast<std::size_t>(c)];
  }
  std::uint64_t missCount(MissClass c) const {
    return missByClass[static_cast<std::size_t>(c)];
  }
};

/// Cache energy events, counted per access class (Figure 8a breakdown).
/// Each counter maps to a per-access energy in energy/energy_model.h.
struct CacheEnergyEvents {
  std::uint64_t l1TagProbe = 0;
  std::uint64_t l1DataRead = 0;
  std::uint64_t l1DataWrite = 0;
  std::uint64_t l1DirRead = 0;    ///< Sharing code kept in L1 (DiCo family).
  std::uint64_t l1DirUpdate = 0;
  std::uint64_t l2TagProbe = 0;
  std::uint64_t l2DataRead = 0;
  std::uint64_t l2DataWrite = 0;
  std::uint64_t l2DirRead = 0;
  std::uint64_t l2DirUpdate = 0;
  std::uint64_t dirCacheProbe = 0;   ///< Flat directory's dir cache.
  std::uint64_t dirCacheUpdate = 0;
  std::uint64_t l1cProbe = 0;
  std::uint64_t l1cUpdate = 0;
  std::uint64_t l2cProbe = 0;
  std::uint64_t l2cUpdate = 0;
};

}  // namespace eecc
