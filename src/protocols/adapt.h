// Hybrid-Adapt — per-line adaptive coherence: invalidate or update,
// whichever the line's observed sharing pattern favors.
//
// The read side is MOESI-Snoop verbatim (snooped M keeps its dirty data
// as O, owners supply cache-to-cache, writeback only on eviction). The
// write side is chosen per line by a SharingClassifier (line_table.h):
// lines that look producer-consumer — one writer, remote readers between
// writes — switch to Dragon-style update waves so the consumers' copies
// stay valid and their reads keep hitting; lines that look migratory —
// writer hops with no intervening readers — stay on invalidation so the
// chip is not flooded with updates nobody reads. The policy is resolved
// once per write at startMiss and carried in the broadcast, so every
// snooper applies the same verdict.
//
// The classifier and the policy fork are the only parts outside the
// shared table vocabulary, so they ride the Escape hooks (DESIGN.md §15):
// Escape0 = classifier write note on silent upgrade hits, Escape1 =
// remote-read note on snooped owners, Escape2 = the per-copy
// update-or-invalidate resolution inside the snoop wave.
#pragma once

#include <unordered_map>

#include "cache/cache_array.h"
#include "common/bits.h"
#include "protocols/line_table.h"
#include "protocols/protocol.h"
#include "protocols/table_engine.h"

namespace eecc {

class AdaptProtocol final : public Protocol {
 public:
  AdaptProtocol(EventQueue& events, Network& net, const CmpConfig& cfg);

  ProtocolKind kind() const override { return ProtocolKind::Adapt; }
  bool tryHit(NodeId tile, Addr block, AccessType type) override;
  void auditInvariants(const AuditFailFn& fail) const override;
  void forEachL1Copy(
      const std::function<void(const L1CopyView&)>& fn) const override;
  void forEachL2Block(
      const std::function<void(NodeId tile, Addr block)>& fn) const override;

  /// Test hooks.
  struct LineView {
    bool valid = false;
    char state = 'I';  // I/S/E/M/O
    std::uint64_t value = 0;
  };
  LineView l1Line(NodeId tile, Addr block) const;
  /// The classifier's saturating policy score for `block` (test hook).
  std::uint8_t classifierScore(Addr block) const;
  /// Whether the next write to `block` would broadcast updates.
  bool wouldUpdate(Addr block) const;

  /// The Hybrid-Adapt stable-state table this engine interprets
  /// (DESIGN.md §15); exposed for tests/table_engine_test.cpp.
  static tbl::ProtocolTable makeStableTable();

 protected:
  void startMiss(NodeId tile, Addr block, AccessType type,
                 DoneFn done) override;
  void onMessage(const Message& msg) override;

 private:
  enum class L1State : std::uint8_t { S, E, M, O };

  struct L1Line : CacheLineBase {
    L1State state = L1State::S;
    std::uint64_t value = 0;
  };

  struct L2Line : CacheLineBase {
    bool dirty = false;
    std::uint64_t value = 0;
  };

  struct Tile {
    CacheArray<L1Line> l1;
    explicit Tile(const CmpConfig& c) : l1(c.l1.entries, c.l1.assoc) {}
  };
  struct Bank {
    CacheArray<L2Line> l2;
    explicit Bank(const CmpConfig& c)
        : l2(c.l2.entries, c.l2.assoc,
             log2ceil(static_cast<std::uint64_t>(c.tiles()))) {}
  };

  struct Txn {
    NodeId requestor = kInvalidNode;
    AccessType type = AccessType::Read;
    DoneFn done;
    Tick start = 0;
    std::uint32_t links = 0;
    MissClass cls = MissClass::UnpredL2;
    std::int32_t acksOutstanding = 0;  ///< tiles-1 snoop acks owed.
    bool sharedSeen = false;   ///< Some tile keeps a (valid) copy.
    bool copiesSeen = false;   ///< Some tile *held* a copy (classifier).
    bool dataArrived = false;  ///< A snooper or the home supplied data.
    bool needsData = true;     ///< False for upgrade transactions.
    bool homeAsked = false;    ///< Fallback request already sent.
    bool updateMode = false;   ///< This write broadcasts updates.
    std::uint64_t value = 0;     ///< Fetched data (reads, write fills).
    std::uint64_t newValue = 0;  ///< Committed value (update mode).
  };

  Tile& tileOf(NodeId t) { return tiles_[static_cast<std::size_t>(t)]; }
  Bank& bankOf(NodeId h) { return banks_[static_cast<std::size_t>(h)]; }

  // --- L1 side ---
  void installL1(NodeId tile, Addr block, L1State state, std::uint64_t value);
  void evictL1Line(NodeId tile, L1Line& line);
  void writebackToHome(NodeId tile, const L1Line& line);
  void handleSnoop(const Message& msg);

  // --- Home side ---
  void storeAtL2(NodeId home, Addr block, std::uint64_t value, bool dirty);
  void evictL2Line(NodeId home, L2Line& line);
  void homeHandleRequest(const Message& msg);

  // --- Transaction steps ---
  void onAllAcks(Addr block, Txn& txn);
  void completeAccess(Addr block);

  tbl::ProtocolTable table_;
  SharingClassifier classifier_;
  std::vector<Tile> tiles_;
  std::vector<Bank> banks_;
  std::unordered_map<Addr, Txn> txns_;
  /// In-flight dirty writebacks (see mesi.h): the home serves these ahead
  /// of its stale L2 array; the audit exempts covered blocks.
  struct PendingWb {
    std::uint64_t value = 0;
    int count = 0;
  };
  std::unordered_map<Addr, PendingWb> pendingWb_;
  /// Mesh distance to the farthest tile, per requestor (broadcast depth).
  std::vector<std::uint32_t> maxDist_;
};

}  // namespace eecc
