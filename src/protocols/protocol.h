// Abstract coherence protocol and the machinery all four implementations
// share: per-line transaction serialization, memory-controller traffic,
// the data-value oracle used for verification, and miss bookkeeping.
//
// Concurrency model (see DESIGN.md): stable coherence state is exact and
// updated atomically at message-handling events; *conflicting* transactions
// on the same block are serialized through a per-line queue at the
// protocol engine, standing in for the transient-state/NACK machinery of
// the real implementations. All messages, hops, forwards and
// acknowledgements of the stable-state protocol are modeled and charged.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/hooks.h"
#include "common/flat_hash.h"
#include "common/inline_fn.h"
#include "common/rng.h"
#include "common/types.h"
#include "core/config.h"
#include "mem/ddr_controller.h"
#include "noc/network.h"
#include "obs/stage.h"
#include "protocols/line_table.h"
#include "protocols/protocol_stats.h"
#include "sim/event_queue.h"

namespace eecc {

class TraceSink;
class AttributionLedger;

/// The four protocols of the paper in its evaluation order (Directory
/// baseline first), plus the snooping reference points (MESI/MOESI
/// invalidate, Dragon update) and the per-line Hybrid-Adapt protocol.
/// The canonical list for every sweep — benches, examples and
/// runAllProtocols all iterate this.
inline const std::array<ProtocolKind, 8>& allProtocolKinds() {
  static const std::array<ProtocolKind, 8> kinds = {
      ProtocolKind::Directory, ProtocolKind::DiCo,
      ProtocolKind::DiCoProviders, ProtocolKind::DiCoArin,
      ProtocolKind::Mesi,      ProtocolKind::Moesi,
      ProtocolKind::Dragon,    ProtocolKind::Adapt};
  return kinds;
}

class Protocol {
 public:
  using DoneFn = std::function<void()>;

  Protocol(EventQueue& events, Network& net, const CmpConfig& cfg);
  virtual ~Protocol() = default;

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  virtual ProtocolKind kind() const = 0;

  /// Fast path: attempts to satisfy the access in the local L1 (reads need
  /// any valid copy; writes need a writable one — E/M — and E upgrades to
  /// M silently). Charges tag/data energy. Returns true on hit.
  virtual bool tryHit(NodeId tile, Addr block, AccessType type) = 0;

  /// Full access: hit fast-path, else a miss transaction. `done` fires at
  /// completion time. Used by the core model and the tests.
  void access(NodeId tile, Addr block, AccessType type, DoneFn done);

  /// Asserts every protocol invariant (SWMR, pointer sanity, value
  /// coherence). Aborts on violation. O(cache size); meant for tests.
  void checkInvariants() const;

  // --- Conformance introspection (src/check/) ---

  /// Walks the protocol state and reports every invariant violation —
  /// directory/owner/provider-metadata consistency, inclusion, SWMR,
  /// value coherence — through `fail` with a human-readable diagnostic,
  /// instead of aborting. Blocks with an in-flight transaction are
  /// skipped (their stable state is not yet defined). O(cache size).
  using AuditFailFn = std::function<void(const std::string&)>;
  virtual void auditInvariants(const AuditFailFn& fail) const = 0;

  /// One valid L1 line, protocol-agnostic: `state` uses the MOESI+P
  /// letters of the engines ('S','E','M','O','P'); `busy` marks blocks
  /// with an in-flight transaction. The generic SWMR and value monitors
  /// are built on this view.
  struct L1CopyView {
    NodeId tile = kInvalidNode;
    Addr block = 0;
    char state = 'I';
    std::uint64_t value = 0;
    bool busy = false;
  };
  virtual void forEachL1Copy(
      const std::function<void(const L1CopyView&)>& fn) const = 0;

  /// Attaches (or detaches, with nullptr) the conformance observation
  /// hooks. The pointer is not owned and must outlive the protocol's use.
  void setCheckHooks(CheckHooks* hooks) { hooks_ = hooks; }
  CheckHooks* checkHooks() const { return hooks_; }

  /// Attaches (or detaches, with nullptr) the observability trace sink
  /// (obs/trace.h): every access completion reports a span tagged with its
  /// MissClass. Same zero-cost-when-detached contract as the check hooks.
  void setTraceSink(TraceSink* sink) { trace_ = sink; }
  TraceSink* traceSink() const { return trace_; }

  /// Attaches (or detaches, with nullptr) the per-VM/per-area attribution
  /// ledger (obs/ledger.h): misses, messages and energy deltas are
  /// bracketed and attributed to their originating VM. Same
  /// zero-cost-when-detached contract as the trace sink.
  void setLedger(AttributionLedger* ledger) { ledger_ = ledger; }
  AttributionLedger* ledger() const { return ledger_; }

  /// Attaches (or detaches, with nullptr) the miss-path flight recorder
  /// (obs/stage.h): every miss transaction's latency is decomposed into
  /// per-stage intervals at the protocols' stageMark() sites. Same
  /// zero-cost-when-detached contract as the trace sink.
  void setStageRecorder(StageRecorder* rec) { stageRec_ = rec; }
  StageRecorder* stageRecorder() const { return stageRec_; }

  /// Attaches (or detaches, with an empty function) the scale-out remote
  /// memory model (src/scaleout): called once per off-chip fetch with the
  /// block and the controller-side service time, it returns the *extra*
  /// cycles the fetch pays when the block's home chip is not this one
  /// (the inter-chip round trip, including link contention). Single-chip
  /// systems never install it, so the hot path pays one untaken
  /// [[unlikely]] branch — the same contract as the other hooks.
  void setRemoteMemory(std::function<Tick(Addr, Tick)> fn) {
    remoteMem_ = std::move(fn);
  }

  /// One valid L2 line: the bank's tile and the block it caches. Used by
  /// the ledger's occupancy sampling (leakage apportioning); the default
  /// reports nothing so mock protocols need not implement it.
  virtual void forEachL2Block(
      const std::function<void(NodeId tile, Addr block)>& /*fn*/) const {}

  /// Whether a miss transaction currently holds `block`'s serialization
  /// lock (monitors use this to skip transient state during sweeps).
  bool transactionInFlight(Addr block) const { return lineBusy(block); }

  /// The last value committed to `block` by any completed write (the
  /// data-value oracle). Reads observed by cores must equal this.
  std::uint64_t committedValue(Addr block) const {
    return committed_.getOr(block, 0);
  }
  /// Value the most recent read by the core on `tile` returned.
  std::uint64_t lastReadValue(NodeId tile) const {
    return lastRead_[static_cast<std::size_t>(tile)];
  }

  const ProtocolStats& stats() const { return stats_; }
  const CacheEnergyEvents& energyEvents() const { return energy_; }
  /// Clears measurement counters (after warmup). Cache/coherence state,
  /// the value oracle and in-flight transactions are untouched.
  void resetStats() {
    stats_ = ProtocolStats{};
    energy_ = CacheEnergyEvents{};
  }
  const CmpConfig& config() const { return cfg_; }
  EventQueue& events() { return events_; }
  Network& network() { return net_; }

  /// Number of in-flight transactions (all protocols; for draining).
  std::size_t inFlight() const { return lines_.heldCount(); }

  /// Messages sent per protocol-defined opcode, with the mesh distance
  /// they covered (diagnostics for the traffic benches).
  struct MsgTypeStats {
    std::uint64_t count = 0;
    std::uint64_t links = 0;
  };
  const std::array<MsgTypeStats, 64>& messageTypeStats() const {
    return msgTypeStats_;
  }

  /// Unicast messages whose source and destination lie in different
  /// static areas — the quantitative face of the paper's "(partial)
  /// isolation among cores of different VMs" claim (Section I).
  std::uint64_t interAreaMessages() const { return interAreaMessages_; }
  std::uint64_t unicastMessages() const { return unicastMessages_; }
  double interAreaFraction() const {
    return unicastMessages_ ? static_cast<double>(interAreaMessages_) /
                                  static_cast<double>(unicastMessages_)
                            : 0.0;
  }

  /// Detailed DDR controllers (empty when memoryModel == FixedLatency);
  /// indexed like CmpConfig::memControllerTiles().
  const std::vector<DdrController>& ddrControllers() const {
    return ddr_;
  }

  /// Message-type space: the base class owns types below this bound
  /// (memory traffic); protocols define their opcodes from it upward.
  static constexpr std::uint16_t kFirstProtocolMsg = 16;

 protected:
  /// Starts the protocol-specific miss transaction. The line lock for
  /// `block` is already held; implementations must call finishAccess()
  /// exactly once.
  virtual void startMiss(NodeId tile, Addr block, AccessType type,
                         DoneFn done) = 0;

  /// Protocol-specific message dispatch (types >= kFirstProtocolMsg).
  virtual void onMessage(const Message& msg) = 0;

  // --- Line serialization (arena-backed, see protocols/line_table.h) ---
  /// Runs `fn` immediately if no transaction holds `block`, else queues it.
  /// Templated so the continuation lands in the waiter slab's inline
  /// storage without a std::function detour.
  template <typename F>
  void withLine(Addr block, F&& fn) {
    if (lines_.tryAcquire(block)) {
      fn();
    } else {
      lines_.enqueue(block, std::forward<F>(fn));
    }
  }
  /// Releases the line lock and starts the next queued transaction.
  void releaseLine(Addr block);
  bool lineBusy(Addr block) const { return lines_.busy(block); }

  // --- Messaging ---
  static constexpr std::uint16_t kMemReq = 1;
  static constexpr std::uint16_t kMemResp = 2;

  void send(Message msg) {
    tagOrigin(msg);
    countMsg(msg);
    net_.send(msg);
  }
  void sendBroadcast(Message msg) {
    tagOrigin(msg);
    countMsg(msg);
    net_.broadcast(msg);
  }
  /// Schedules `fn` after `delay` cycles (cache access latencies etc.).
  /// Templated so lambdas reach the event queue's inline storage directly
  /// instead of being boxed into a std::function first.
  template <class F>
  void after(Tick delay, F&& fn) {
    events_.scheduleAfter(delay, std::forward<F>(fn));
  }

  /// Off-chip fetch: a request message from `from` to the block's memory
  /// controller, the DRAM latency (+jitter), then a data message to
  /// `dataDst`; `cb` runs when the data arrives carrying the memory value.
  /// Templated so the callback lands in the pending-fetch table's inline
  /// storage directly.
  template <typename Cb>
  void memFetch(Addr block, NodeId from, NodeId dataDst, Cb&& cb) {
    stats_.memoryFetches += 1;
    const std::uint64_t token = ++memToken_;
    memPending_.put(token, MemCallback(std::forward<Cb>(cb)));
    Message req;
    req.type = kMemReq;
    req.cls = MsgClass::Control;
    req.src = from;
    req.dst = cfg_.memControllerOf(block);
    req.addr = block;
    req.aux =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dataDst))
         << 32) |
        token;
    // Attribution: the fetch serves whoever receives the data (usually the
    // requestor), not the controller-facing sender.
    req.origin = dataDst;
    send(req);
  }

  /// Fire-and-forget writeback of a dirty block to memory.
  void memWriteback(Addr block, NodeId from, std::uint64_t value);

  /// Default-zero fast path: one flat-table probe, no node allocation ever
  /// (blocks never written read as 0, matching the oracle's convention).
  std::uint64_t memoryValue(Addr block) const {
    return memValue_.getOr(block, 0);
  }

  // --- Value oracle ---
  /// Commits a write: returns the fresh value the new owner's line holds.
  std::uint64_t commitWrite(Addr block) {
    const std::uint64_t v = ++writeSeq_;
    committed_.put(block, v);
    if (hooks_ != nullptr) [[unlikely]]
      hooks_->onWriteCommitted(block, v, events_.now());
    return v;
  }
  void recordRead(NodeId tile, std::uint64_t value) {
    lastRead_[static_cast<std::size_t>(tile)] = value;
  }
  void setMemoryValue(Addr block, std::uint64_t v) { memValue_.put(block, v); }

  // --- Stage instrumentation (obs/stage.h; no-ops when detached) ---
  /// Attributes the interval since the previous mark of `block`'s
  /// transaction to `s`. Placed at the terminal event of each stage
  /// (handler entries, serve-delay lambdas); silent for blocks with no
  /// transaction in flight, so background traffic needs no guards.
  void stageMark(Addr block, Stage s) {
    if (stageRec_ != nullptr) [[unlikely]]
      stageRec_->mark(block, s, events_.now());
  }
  /// Banks analytic latency (no event of its own) for `s`; the next mark
  /// attributes it. Used for the scale-out inter-chip round trip.
  void stageCredit(Addr block, Stage s, Tick amount) {
    if (stageRec_ != nullptr) [[unlikely]]
      stageRec_->credit(block, s, amount);
  }

  // --- Miss bookkeeping ---
  /// Records a classified miss completion of the transaction on `block`:
  /// latency from `start`, `links` mesh links traversed on the critical
  /// path. Each protocol calls this exactly once per miss, immediately
  /// before invoking the completion callback.
  void recordMiss(Addr block, MissClass cls, Tick start,
                  std::uint32_t links) {
    stats_.miss(cls) += 1;
    const auto lat = static_cast<double>(events_.now() - start);
    stats_.latencyByClass[static_cast<std::size_t>(cls)].add(lat);
    stats_.linksByClass[static_cast<std::size_t>(cls)].add(links);
    stats_.missLatency.add(lat);
    if (stageRec_ != nullptr) [[unlikely]]
      stageRec_->end(block, cls, events_.now());
    if (trace_ != nullptr || ledger_ != nullptr) [[unlikely]] {
      // Every protocol records the classification immediately before
      // invoking the completion callback (same tick, same call chain), so
      // the observation wrapper in access() can pick it up from here.
      obsCls_ = cls;
      obsLinks_ = links;
      obsLat_ = lat;
      obsClsTick_ = events_.now();
      obsClsValid_ = true;
    }
  }

  /// "block 0x2a40 (home 5)" — diagnostic prefix for audit messages.
  std::string describeBlock(Addr block) const;

  std::int32_t distance(NodeId a, NodeId b) const {
    return net_.topology().distance(a, b);
  }
  NodeId homeOf(Addr block) const { return cfg_.homeOf(block); }
  AreaId areaOf(NodeId tile) const { return cfg_.areaOf(tile); }
  bool sameArea(NodeId a, NodeId b) const { return areaOf(a) == areaOf(b); }

  EventQueue& events_;
  Network& net_;
  CmpConfig cfg_;
  ProtocolStats stats_;
  CacheEnergyEvents energy_;
  Rng memJitterRng_{0xEECCULL};
  CheckHooks* hooks_ = nullptr;  ///< Conformance monitors; null = off.
  TraceSink* trace_ = nullptr;   ///< Observability trace sink; null = off.
  AttributionLedger* ledger_ = nullptr;  ///< Attribution ledger; null = off.
  StageRecorder* stageRec_ = nullptr;    ///< Flight recorder; null = off.
  std::function<Tick(Addr, Tick)> remoteMem_;  ///< Scale-out hook; empty = off.

 private:
  /// The value a just-completed access exposed to its core: the last read
  /// value for loads, the current oracle value for stores.
  std::uint64_t observedValue(NodeId tile, Addr block,
                              AccessType type) const {
    return type == AccessType::Read ? lastReadValue(tile)
                                    : committedValue(block);
  }

  /// Defaults the attribution tag of an untagged message: the requestor a
  /// transaction runs on behalf of, else the sender. Protocols override
  /// only where neither is the cause (e.g. data responses, which carry no
  /// requestor field — the destination is the served VM).
  static void tagOrigin(Message& msg) {
    if (msg.origin == kInvalidNode)
      msg.origin = msg.requestor != kInvalidNode ? msg.requestor : msg.src;
  }

  void countMsg(const Message& msg) {
    if (msg.dst != kInvalidNode && msg.src != msg.dst) {
      ++unicastMessages_;
      if (areaOf(msg.src) != areaOf(msg.dst)) ++interAreaMessages_;
    }
    if (msg.type >= msgTypeStats_.size()) return;
    auto& s = msgTypeStats_[msg.type];
    s.count += 1;
    if (msg.dst != kInvalidNode && msg.src != msg.dst)
      s.links += static_cast<std::uint64_t>(
          net_.topology().distance(msg.src, msg.dst));
  }

  std::array<MsgTypeStats, 64> msgTypeStats_{};
  std::uint64_t interAreaMessages_ = 0;
  std::uint64_t unicastMessages_ = 0;

  void handleBaseMessage(const Message& msg);
  void dispatchMessage(const Message& msg);

  LineLockTable lines_;

  // Hand-off from recordMiss() to the access() observation wrapper: the
  // pending classification of the miss whose completion chain is running
  // right now (consumed by the trace sink and the attribution ledger).
  MissClass obsCls_ = MissClass::kCount;
  std::uint32_t obsLinks_ = 0;
  double obsLat_ = 0.0;
  Tick obsClsTick_ = 0;
  bool obsClsValid_ = false;

  // Flat per-block tables (DESIGN.md §13): probed on every write commit,
  // memory fetch and value check; pre-sized in the constructor so the
  // measured window never rehashes for typical working sets.
  FlatHash<std::uint64_t> committed_;
  FlatHash<std::uint64_t> memValue_;
  std::vector<std::uint64_t> lastRead_;
  std::uint64_t writeSeq_ = 0;

  /// Pending off-chip fetch callbacks, keyed by sequential token. 40
  /// inline bytes covers the protocols' [this, block] continuations.
  using MemCallback = InlineFn<void(std::uint64_t), 40>;
  FlatHash<MemCallback> memPending_;
  std::uint64_t memToken_ = 0;
  std::vector<DdrController> ddr_;           // MemoryModel::Ddr only
  std::vector<std::int32_t> ddrIndex_;       // tile -> ddr_ index; -1 = none
};

/// Factory covering every ProtocolKind.
std::unique_ptr<Protocol> makeProtocol(ProtocolKind kind, EventQueue& events,
                                       Network& net, const CmpConfig& cfg);

}  // namespace eecc
