// Broadcast-snooping MOESI — MESI-Snoop plus the Owned state: dirty
// sharing without a memory writeback.
//
// Same directory-less skeleton as mesi.h (every L1 miss broadcasts over
// the mesh's XY tree, all tiles-1 ack, home/memory fallback only when no
// cache supplied), but a snooped M holder downgrades to O and *keeps* its
// dirty data instead of writing it through to the home L2. The O holder
// answers later readers cache-to-cache and only writes back on eviction —
// the classic MOESI trade: read-shared dirty lines cost no L2/memory
// write traffic while they stay resident, at the price of the home's L2
// array staying stale for as long as an owner exists (the audit and the
// home fallback both treat owned blocks exactly like M-held ones).
#pragma once

#include <unordered_map>

#include "cache/cache_array.h"
#include "common/bits.h"
#include "protocols/protocol.h"
#include "protocols/table_engine.h"

namespace eecc {

class MoesiProtocol final : public Protocol {
 public:
  MoesiProtocol(EventQueue& events, Network& net, const CmpConfig& cfg);

  ProtocolKind kind() const override { return ProtocolKind::Moesi; }
  bool tryHit(NodeId tile, Addr block, AccessType type) override;
  void auditInvariants(const AuditFailFn& fail) const override;
  void forEachL1Copy(
      const std::function<void(const L1CopyView&)>& fn) const override;
  void forEachL2Block(
      const std::function<void(NodeId tile, Addr block)>& fn) const override;

  /// Test hooks.
  struct LineView {
    bool valid = false;
    char state = 'I';  // I/S/E/M/O
    std::uint64_t value = 0;
  };
  LineView l1Line(NodeId tile, Addr block) const;

  /// The MOESI stable-state table this engine interprets (DESIGN.md §15);
  /// exposed so tests/table_engine_test.cpp can audit well-formedness.
  static tbl::ProtocolTable makeStableTable();

 protected:
  void startMiss(NodeId tile, Addr block, AccessType type,
                 DoneFn done) override;
  void onMessage(const Message& msg) override;

 private:
  enum class L1State : std::uint8_t { S, E, M, O };

  struct L1Line : CacheLineBase {
    L1State state = L1State::S;
    std::uint64_t value = 0;
  };

  struct L2Line : CacheLineBase {
    bool dirty = false;
    std::uint64_t value = 0;
  };

  struct Tile {
    CacheArray<L1Line> l1;
    explicit Tile(const CmpConfig& c) : l1(c.l1.entries, c.l1.assoc) {}
  };
  struct Bank {
    CacheArray<L2Line> l2;
    explicit Bank(const CmpConfig& c)
        : l2(c.l2.entries, c.l2.assoc,
             log2ceil(static_cast<std::uint64_t>(c.tiles()))) {}
  };

  struct Txn {
    NodeId requestor = kInvalidNode;
    AccessType type = AccessType::Read;
    DoneFn done;
    Tick start = 0;
    std::uint32_t links = 0;
    MissClass cls = MissClass::UnpredL2;
    std::int32_t acksOutstanding = 0;  ///< tiles-1 snoop acks owed.
    bool sharedSeen = false;   ///< Some tile keeps a shared copy.
    bool dataArrived = false;  ///< A snooper or the home supplied data.
    bool needsData = true;     ///< False for S/O->M upgrades.
    bool homeAsked = false;    ///< Fallback request already sent.
    std::uint64_t value = 0;
  };

  Tile& tileOf(NodeId t) { return tiles_[static_cast<std::size_t>(t)]; }
  Bank& bankOf(NodeId h) { return banks_[static_cast<std::size_t>(h)]; }

  // --- L1 side ---
  void installL1(NodeId tile, Addr block, L1State state, std::uint64_t value);
  void evictL1Line(NodeId tile, L1Line& line);
  /// Eviction of a dirty (M/O) line: the one place owned data ever
  /// reaches the home L2 bank besides fills.
  void writebackToHome(NodeId tile, const L1Line& line);
  void handleSnoop(const Message& msg);

  // --- Home side ---
  void storeAtL2(NodeId home, Addr block, std::uint64_t value, bool dirty);
  void evictL2Line(NodeId home, L2Line& line);
  void homeHandleRequest(const Message& msg);

  // --- Transaction steps ---
  void onAllAcks(Addr block, Txn& txn);
  void completeAccess(Addr block);

  tbl::ProtocolTable table_;
  std::vector<Tile> tiles_;
  std::vector<Bank> banks_;
  std::unordered_map<Addr, Txn> txns_;
  /// In-flight dirty writebacks (see mesi.h): until the kWbData lands the
  /// home's L2 copy is stale with no L1 owner, so the home serves these
  /// values ahead of its own array and the audit exempts covered blocks.
  struct PendingWb {
    std::uint64_t value = 0;
    int count = 0;
  };
  std::unordered_map<Addr, PendingWb> pendingWb_;
  /// Mesh distance to the farthest tile, per requestor (broadcast depth).
  std::vector<std::uint32_t> maxDist_;
};

}  // namespace eecc
