#include "protocols/protocol.h"

#include "obs/ledger.h"
#include "obs/trace.h"

namespace eecc {

namespace {

/// RAII energy-attribution bracket: opens a ledger work scope on entry and
/// closes it on every exit path. No-op (one untaken branch) when detached.
struct LedgerScope {
  AttributionLedger* ledger;
  LedgerScope(AttributionLedger* l, NodeId tile) : ledger(l) {
    if (ledger != nullptr) [[unlikely]]
      ledger->workBegin(tile);
  }
  LedgerScope(AttributionLedger* l, const Message& msg) : ledger(l) {
    if (ledger != nullptr) [[unlikely]]
      ledger->msgWorkBegin(msg);
  }
  ~LedgerScope() {
    if (ledger != nullptr) [[unlikely]]
      ledger->workEnd();
  }
  LedgerScope(const LedgerScope&) = delete;
  LedgerScope& operator=(const LedgerScope&) = delete;
};

}  // namespace

Protocol::Protocol(EventQueue& events, Network& net, const CmpConfig& cfg)
    : events_(events), net_(net), cfg_(cfg) {
  cfg_.validate();
  cfg_.buildCaches();  // areaOf/memControllerOf run per message from here on
  lastRead_.assign(static_cast<std::size_t>(cfg_.tiles()), 0);
  // Pre-size the per-block flat tables so a typical measured window never
  // rehashes mid-run (the value oracle covers the touched working set).
  committed_.reserve(8192);
  memValue_.reserve(8192);
  memPending_.reserve(1024);
  if (cfg_.memoryModel == CmpConfig::MemoryModel::Ddr) {
    const auto mcs = cfg_.memControllerTiles();
    ddr_.resize(mcs.size());
    ddrIndex_.assign(static_cast<std::size_t>(cfg_.tiles()), -1);
    for (std::size_t i = 0; i < mcs.size(); ++i)
      ddrIndex_[static_cast<std::size_t>(mcs[i])] =
          static_cast<std::int32_t>(i);
  }
  net_.setHandler([this](const Message& msg) { handleBaseMessage(msg); });
}

void Protocol::handleBaseMessage(const Message& msg) {
  // Every message handler runs inside an energy-attribution bracket: cache
  // energy charged while handling `msg` belongs to the VM of its origin,
  // paid in the destination tile's area.
  LedgerScope scope(ledger_, msg);
  dispatchMessage(msg);
}

void Protocol::dispatchMessage(const Message& msg) {
  if (msg.type >= kFirstProtocolMsg) {
    onMessage(msg);
    return;
  }
  switch (msg.type) {
    case kMemReq: {
      if ((msg.aux >> 32) == 0xffffffffULL) break;  // writeback: sink it
      // The controller serves the request after the DRAM latency plus a
      // small random delay (Section V-A) — or, under MemoryModel::Ddr,
      // after the detailed bank/row-buffer schedule — then ships the
      // block.
      Tick latency = 0;
      if (cfg_.memoryModel == CmpConfig::MemoryModel::Ddr) {
        const std::int32_t di = ddrIndex_[static_cast<std::size_t>(msg.dst)];
        EECC_CHECK(di >= 0);
        latency = ddr_[static_cast<std::size_t>(di)].schedule(
                      msg.addr, events_.now()) -
                  events_.now();
      } else {
        latency =
            cfg_.memLatency + memJitterRng_.below(cfg_.memJitterMax + 1);
      }
      // Scale-out: a block homed on another chip pays the inter-chip
      // round trip on top of the DRAM service time (src/scaleout). The
      // round trip is analytic (no event of its own), so the flight
      // recorder takes it as a credit the next mark peels off.
      if (remoteMem_) [[unlikely]] {
        const Tick extra = remoteMem_(msg.addr, events_.now());
        latency += extra;
        if (extra != 0) stageCredit(msg.addr, Stage::InterChip, extra);
      }
      Message resp;
      resp.type = kMemResp;
      resp.cls = MsgClass::Data;
      resp.src = msg.dst;
      resp.dst = static_cast<NodeId>(msg.aux >> 32);  // data destination
      resp.addr = msg.addr;
      resp.aux = msg.aux & 0xffffffffULL;             // token
      resp.value = memoryValue(msg.addr);
      resp.origin = msg.origin;  // data is on behalf of the fetch's cause
      after(latency, [this, resp] {
        stageMark(resp.addr, Stage::MemFetch);
        send(resp);
      });
      break;
    }
    case kMemResp: {
      stageMark(msg.addr, Stage::DataReturn);
      MemCallback* slot = memPending_.find(msg.aux);
      EECC_CHECK_MSG(slot != nullptr, "orphan memory response");
      MemCallback cb = std::move(*slot);
      memPending_.erase(msg.aux);
      cb(msg.value);
      break;
    }
    default:
      EECC_CHECK_MSG(false, "unknown base message type");
  }
}

void Protocol::memWriteback(Addr block, NodeId from, std::uint64_t value) {
  setMemoryValue(block, value);
  Message wb;
  wb.type = kMemReq;  // reuse the request channel; controllers sink it
  wb.cls = MsgClass::Data;
  wb.src = from;
  wb.dst = cfg_.memControllerOf(block);
  wb.addr = block;
  wb.aux = (static_cast<std::uint64_t>(0xffffffffULL) << 32);
  send(wb);
}

void Protocol::releaseLine(Addr block) {
  LineLockTable::Waiter next;
  // release() keeps the lock held when handing it to a queued waiter.
  if (lines_.release(block, &next)) {
    // Run queued work in a fresh event so completion handlers unwind first.
    events_.scheduleAfter(1, std::move(next));
  }
}

void Protocol::checkInvariants() const {
  auditInvariants([](const std::string& msg) {
    EECC_CHECK_MSG(false, msg.c_str());
  });
}

std::string Protocol::describeBlock(Addr block) const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "block 0x%llx (home %d)",
                static_cast<unsigned long long>(block),
                static_cast<int>(homeOf(block)));
  return buf;
}

void Protocol::access(NodeId tile, Addr block, AccessType type, DoneFn done) {
  EECC_CHECK(blockAddr(block) == block);
  // Energy charged during the synchronous part of an access (L1/L1C$
  // probes of tryHit and the miss start) belongs to the issuing tile's VM.
  LedgerScope scope(ledger_, tile);
  if (type == AccessType::Read) stats_.reads += 1;
  else stats_.writes += 1;

  if (hooks_ != nullptr) [[unlikely]]
    hooks_->onAccessIssued(tile, block, type, events_.now());

  if (tryHit(tile, block, type)) {
    if (type == AccessType::Read) stats_.l1ReadHits += 1;
    else stats_.l1WriteHits += 1;
    // Hit-path observations may race a *foreign* in-flight transaction on
    // the block (hits bypass the line lock), so the monitor is told when
    // exact-value checks must be relaxed to monotonicity.
    if (hooks_ != nullptr) [[unlikely]]
      hooks_->onAccessDone(tile, block, type, events_.now(),
                           observedValue(tile, block, type),
                           lineBusy(block));
    if (trace_ != nullptr) [[unlikely]]
      trace_->onTransaction(tile, block, type, events_.now(), events_.now(),
                            /*hit=*/true, MissClass::kCount, 0);
    done();
    return;
  }
  if (type == AccessType::Read) stats_.readMisses += 1;
  else stats_.writeMisses += 1;

  if (hooks_ != nullptr) [[unlikely]] {
    // Miss completions run under the block's own serialization lock, so
    // conflicting writes are queued behind us: the observation is exact.
    // Fire before the core's callback — on completion the core immediately
    // issues its next access, which would overwrite lastReadValue().
    done = [this, tile, block, type, done = std::move(done)] {
      hooks_->onAccessDone(tile, block, type, events_.now(),
                           observedValue(tile, block, type),
                           /*lineBusy=*/false);
      done();
    };
  }

  if (trace_ != nullptr || ledger_ != nullptr) [[unlikely]] {
    // Outermost wrapper: runs first in the completion chain, right after
    // the protocol's recordMiss() call. An unconsumed classification at
    // the current tick belongs to this transaction; without one the access
    // was satisfied by the re-check hit after queueing behind another
    // transaction on the line ("queued hit", MissClass::kCount). The
    // hand-off is consumed once, and feeds the trace sink and the
    // attribution ledger the same classification and latency recordMiss()
    // fed the chip-level stats.
    const Tick t0 = events_.now();
    done = [this, tile, block, type, t0, done = std::move(done)] {
      const bool classified = obsClsValid_ && obsClsTick_ == events_.now();
      obsClsValid_ = false;
      if (ledger_ != nullptr && classified)
        ledger_->onMiss(tile, block, obsCls_, obsLat_, obsLinks_);
      if (trace_ != nullptr)
        trace_->onTransaction(tile, block, type, t0, events_.now(),
                              /*hit=*/!classified,
                              classified ? obsCls_ : MissClass::kCount,
                              classified ? obsLinks_ : 0);
      done();
    };
  }

  withLine(block, [this, tile, block, type, done = std::move(done)]() mutable {
    // State may have changed while queued behind another transaction on
    // this line (e.g. it brought the block into our L1) — re-check. When
    // the queued start runs in its own event (deferred by releaseLine),
    // its energy needs its own attribution bracket.
    LedgerScope qscope(ledger_, tile);
    if (tryHit(tile, block, type)) {
      releaseLine(block);
      done();
      return;
    }
    if (stageRec_ != nullptr) [[unlikely]]
      stageRec_->begin(block, events_.now());
    startMiss(tile, block, type, std::move(done));
  });
}

}  // namespace eecc
