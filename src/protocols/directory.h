// Flat full-map MESI directory protocol — the paper's highly-optimized
// baseline (Section II-A).
//
// Every block has a home L2 bank selected by address bits. Directory
// information (full-map sharer vector + owner pointer) lives with the L2
// line when the block is cached in L2, and otherwise in a directory cache
// built from extra L2 tags (NCID [17]), so evicting L2 data does not force
// L1 invalidations; only evicting the *directory entry* does. L1 misses
// indirect through the home: 2 hops when the home supplies the data, 3
// hops when it forwards to the owning L1.
#pragma once

#include <unordered_map>

#include "cache/cache_array.h"
#include "common/bits.h"
#include "cache/node_set.h"
#include "protocols/protocol.h"
#include "protocols/table_engine.h"

namespace eecc {

class DirectoryProtocol final : public Protocol {
 public:
  DirectoryProtocol(EventQueue& events, Network& net, const CmpConfig& cfg);

  ProtocolKind kind() const override { return ProtocolKind::Directory; }
  bool tryHit(NodeId tile, Addr block, AccessType type) override;
  void auditInvariants(const AuditFailFn& fail) const override;
  void forEachL1Copy(
      const std::function<void(const L1CopyView&)>& fn) const override;
  void forEachL2Block(
      const std::function<void(NodeId tile, Addr block)>& fn) const override;

  /// Test hooks.
  struct LineView {
    bool valid = false;
    char state = 'I';  // I/S/E/M
    std::uint64_t value = 0;
  };
  LineView l1Line(NodeId tile, Addr block) const;

  /// The MESI stable-state table this engine interprets (DESIGN.md §15);
  /// exposed so tests/table_engine_test.cpp can audit well-formedness.
  static tbl::ProtocolTable makeStableTable();

 protected:
  void startMiss(NodeId tile, Addr block, AccessType type,
                 DoneFn done) override;
  void onMessage(const Message& msg) override;

 private:
  enum class L1State : std::uint8_t { S, E, M };

  struct L1Line : CacheLineBase {
    L1State state = L1State::S;
    std::uint64_t value = 0;
  };

  struct DirInfo {
    NodeSet sharers;
    NodeId owner = kInvalidNode;  ///< L1 holding the block in E/M.
    bool empty() const { return sharers.empty() && owner == kInvalidNode; }
  };

  struct L2Line : CacheLineBase {
    bool dirty = false;
    std::uint64_t value = 0;
    DirInfo dir;
  };

  struct DirEntry : CacheLineBase {
    DirInfo dir;
  };

  struct Tile {
    CacheArray<L1Line> l1;
    explicit Tile(const CmpConfig& c) : l1(c.l1.entries, c.l1.assoc) {}
  };
  struct Bank {
    CacheArray<L2Line> l2;
    CacheArray<DirEntry> dirCache;
    explicit Bank(const CmpConfig& c)
        : l2(c.l2.entries, c.l2.assoc,
             log2ceil(static_cast<std::uint64_t>(c.tiles()))),
          dirCache(c.dirCacheEntries, c.dirCacheAssoc,
                   log2ceil(static_cast<std::uint64_t>(c.tiles()))) {}
  };

  struct Txn {
    NodeId requestor = kInvalidNode;
    AccessType type = AccessType::Read;
    DoneFn done;
    Tick start = 0;
    std::uint32_t links = 0;
    MissClass cls = MissClass::UnpredL2;
    // Write completion bookkeeping.
    std::int32_t acksOutstanding = 0;
    bool ackCountKnown = false;
    bool dataArrived = false;
    bool grantArrived = false;  ///< Grant / ack-count message landed.
    bool needsData = true;        ///< False for upgrades.
    bool exclusiveGrant = false;  ///< Read fill from memory installs E.
    bool wbPending = false;       ///< A dirty-owner writeback must still
                                  ///< reach the home before release.
    bool coreNotified = false;
    std::uint64_t value = 0;
    // Background directory-eviction invalidation.
    bool background = false;
    std::int32_t bgAcks = 0;
    bool bgDirty = false;
  };

  // --- Home-side directory access ---
  DirInfo* findDir(Bank& bank, Addr block);
  const DirInfo* findDir(const Bank& bank, Addr block) const;
  /// Directory record for a block that is about to gain L1 copies; creates
  /// a dir-cache entry when the block is not in L2 (may evict, triggering
  /// a background invalidation of the victim block).
  DirInfo& ensureDir(NodeId home, Addr block);
  void dropDirIfEmpty(Bank& bank, Addr block);

  /// Stores `value` into the home's L2 data array (allocating a line and
  /// migrating any dir-cache info into it).
  void storeAtL2(NodeId home, Addr block, std::uint64_t value, bool dirty);
  void evictL2Line(NodeId home, L2Line& line);
  void evictDirEntry(NodeId home, DirEntry& entry);

  // --- L1 side ---
  void installL1(NodeId tile, Addr block, L1State state, std::uint64_t value);
  void evictL1Line(NodeId tile, L1Line& line);
  /// Forward-path table actions: the owner supplies the requestor with
  /// the data (SupplyData) and, on reads, writes the block through to the
  /// home so the shared L2 can serve subsequent readers (WritebackData).
  void serveFwdSupply(NodeId tile, L1Line& line, const Message& msg);
  void fwdWriteThrough(NodeId tile, L1Line& line, const Message& msg,
                       bool wasDirty);

  // --- Transaction steps ---
  void homeHandleRead(const Message& msg);
  void homeHandleWrite(const Message& msg);
  void maybeCompleteAccess(Addr block);
  void maybeReleaseWrite(Addr block);
  void startDirEvictionInvalidation(NodeId home, Addr block, DirInfo snapshot);

  Bank& bankOf(NodeId home) { return banks_[static_cast<std::size_t>(home)]; }

  tbl::ProtocolTable table_;
  std::vector<Tile> tiles_;
  std::vector<Bank> banks_;
  std::unordered_map<Addr, Txn> txns_;
  /// Directory records whose dir-cache way was fully busy at insertion
  /// time (MSHR-like transient holding area; see CoherenceCache docs).
  std::unordered_map<Addr, DirInfo> dirOverflow_;
};

}  // namespace eecc
